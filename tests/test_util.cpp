/// Serialization, CLI parsing, timers, logging plumbing.
#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/serialize.hpp"
#include "util/timer.hpp"

namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  std::stringstream ss;
  nc::util::write_u32(ss, 0xDEADBEEFu);
  nc::util::write_u64(ss, 0x0123456789ABCDEFull);
  nc::util::write_i64(ss, -42);
  nc::util::write_f32(ss, 3.25f);
  nc::util::write_f64(ss, -1.5e300);
  nc::util::write_string(ss, "wedge");

  EXPECT_EQ(nc::util::read_u32(ss), 0xDEADBEEFu);
  EXPECT_EQ(nc::util::read_u64(ss), 0x0123456789ABCDEFull);
  EXPECT_EQ(nc::util::read_i64(ss), -42);
  EXPECT_EQ(nc::util::read_f32(ss), 3.25f);
  EXPECT_EQ(nc::util::read_f64(ss), -1.5e300);
  EXPECT_EQ(nc::util::read_string(ss), "wedge");
}

TEST(Serialize, PodVectorRoundTrip) {
  std::stringstream ss;
  std::vector<std::int32_t> v{1, -2, 3, -4};
  nc::util::write_pod_vector(ss, v);
  EXPECT_EQ(nc::util::read_pod_vector<std::int32_t>(ss), v);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  nc::util::write_u32(ss, 7);
  (void)nc::util::read_u32(ss);
  EXPECT_THROW(nc::util::read_u64(ss), nc::util::SerializeError);
}

TEST(Serialize, MagicValidation) {
  std::stringstream ss;
  nc::util::write_magic(ss, "ABCD", 3);
  EXPECT_EQ(nc::util::read_magic(ss, "ABCD"), 3u);

  std::stringstream bad;
  nc::util::write_magic(bad, "ABCD", 3);
  EXPECT_THROW(nc::util::read_magic(bad, "WXYZ"), nc::util::SerializeError);
}

TEST(Cli, ParsesOptionsFlagsAndPositionals) {
  nc::util::ArgParser p("prog", "test");
  p.add_option("events", "16", "number of events");
  p.add_option("scale", "0.25", "geometry scale");
  p.add_flag("verbose", "chatty output");
  const char* argv[] = {"prog", "--events", "32", "--scale=0.5", "--verbose",
                        "input.bin"};
  ASSERT_TRUE(p.parse(6, argv));
  EXPECT_EQ(p.get_int("events"), 32);
  EXPECT_DOUBLE_EQ(p.get_double("scale"), 0.5);
  EXPECT_TRUE(p.get_bool("verbose"));
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "input.bin");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  nc::util::ArgParser p("prog", "test");
  p.add_option("events", "16", "n");
  p.add_flag("verbose", "v");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_int("events"), 16);
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(Cli, UnknownFlagRejected) {
  nc::util::ArgParser p("prog", "test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(p.parse(3, argv));
}

TEST(Cli, UnregisteredGetThrows) {
  nc::util::ArgParser p("prog", "test");
  EXPECT_THROW(p.get("nope"), std::invalid_argument);
}

TEST(Timer, MeasuresElapsedTime) {
  nc::util::Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  EXPECT_GT(t.elapsed_s(), 0.0);
  EXPECT_NEAR(t.elapsed_ms(), t.elapsed_s() * 1e3, t.elapsed_ms() * 0.5);
}

TEST(Accumulator, SumsWindows) {
  nc::util::Accumulator acc;
  for (int i = 0; i < 3; ++i) {
    acc.start();
    volatile double sink = 0;
    for (int j = 0; j < 100000; ++j) sink = sink + j;
    acc.stop();
  }
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_GT(acc.total_s(), 0.0);
  EXPECT_NEAR(acc.mean_s(), acc.total_s() / 3.0, 1e-12);
  acc.clear();
  EXPECT_EQ(acc.count(), 0u);
}

}  // namespace
