/// im2col / col2im lowering: consistency with direct convolution and the
/// adjoint property that makes backward-data correct.
#include <gtest/gtest.h>

#include <vector>

#include "core/im2col.hpp"
#include "tests/reference.hpp"

namespace {

using nc::core::Conv2dGeom;
using nc::core::Conv3dGeom;
using nc::core::Tensor;
using nc::testref::random_tensor;

TEST(Im2col, GeometryArithmetic) {
  Conv2dGeom g;
  g.c = 3;
  g.h = 10;
  g.w = 12;
  g.kh = g.kw = 3;
  g.sh = g.sw = 2;
  g.ph = g.pw = 1;
  EXPECT_EQ(g.out_h(), 5);
  EXPECT_EQ(g.out_w(), 6);
  EXPECT_EQ(g.rows(), 27);
  EXPECT_EQ(g.cols(), 30);
}

TEST(Im2col, ReproducesPatchExtraction) {
  // 1 channel, 3x3 image, k=2, s=1, p=0: four 2x2 patches.
  Conv2dGeom g;
  g.c = 1;
  g.h = 3;
  g.w = 3;
  g.kh = g.kw = 2;
  const Tensor x = Tensor::from_vector({9}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  nc::core::im2col_2d(x.data(), g, cols.data());
  // Row r of cols = kernel offset r, column o = output position o.
  // Kernel offset (0,0) across outputs: 1, 2, 4, 5.
  EXPECT_EQ(cols[0], 1.f);
  EXPECT_EQ(cols[1], 2.f);
  EXPECT_EQ(cols[2], 4.f);
  EXPECT_EQ(cols[3], 5.f);
  // Kernel offset (1,1): 5, 6, 8, 9.
  EXPECT_EQ(cols[12], 5.f);
  EXPECT_EQ(cols[15], 9.f);
}

TEST(Im2col, PaddingYieldsZeros) {
  Conv2dGeom g;
  g.c = 1;
  g.h = 2;
  g.w = 2;
  g.kh = g.kw = 3;
  g.ph = g.pw = 1;
  const Tensor x = Tensor::from_vector({4}, {1, 2, 3, 4});
  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  nc::core::im2col_2d(x.data(), g, cols.data());
  // First row = kernel offset (-1,-1): samples entirely in the top-left pad
  // except output (1,1) which reads input (0,0).
  EXPECT_EQ(cols[0], 0.f);
  EXPECT_EQ(cols[1], 0.f);
  EXPECT_EQ(cols[2], 0.f);
  EXPECT_EQ(cols[3], 1.f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <col2im(C), X> == <C, im2col(X)> for all C, X — the defining property
  // that makes conv backward-data (and deconv forward) correct.
  Conv2dGeom g;
  g.c = 2;
  g.h = 7;
  g.w = 6;
  g.kh = 3;
  g.kw = 2;
  g.sh = 2;
  g.sw = 1;
  g.ph = 1;
  g.pw = 1;
  const Tensor x = random_tensor({g.c * g.h * g.w}, 91);
  const Tensor c = random_tensor({g.rows() * g.cols()}, 92);

  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  nc::core::im2col_2d(x.data(), g, cols.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < c.numel(); ++i) lhs += static_cast<double>(c[i]) *
               static_cast<double>(cols[static_cast<std::size_t>(i)]);

  std::vector<float> img(static_cast<std::size_t>(g.c * g.h * g.w), 0.f);
  nc::core::col2im_2d(c.data(), g, img.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) *
               static_cast<double>(img[static_cast<std::size_t>(i)]);

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Vol2col, Col2volIsAdjoint) {
  Conv3dGeom g;
  g.c = 2;
  g.d = 4;
  g.h = 5;
  g.w = 6;
  g.kd = 2;
  g.kh = 3;
  g.kw = 3;
  g.sd = 1;
  g.sh = 2;
  g.sw = 2;
  g.pd = 0;
  g.ph = 1;
  g.pw = 1;
  const Tensor x = random_tensor({g.c * g.d * g.h * g.w}, 93);
  const Tensor c = random_tensor({g.rows() * g.cols()}, 94);

  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  nc::core::vol2col_3d(x.data(), g, cols.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < c.numel(); ++i) lhs += static_cast<double>(c[i]) *
               static_cast<double>(cols[static_cast<std::size_t>(i)]);

  std::vector<float> vol(static_cast<std::size_t>(g.c * g.d * g.h * g.w), 0.f);
  nc::core::col2vol_3d(c.data(), g, vol.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) *
               static_cast<double>(vol[static_cast<std::size_t>(i)]);

  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, HalfDestinationMatchesFloatWithinRounding) {
  Conv2dGeom g;
  g.c = 3;
  g.h = 8;
  g.w = 8;
  g.kh = g.kw = 3;
  g.ph = g.pw = 1;
  const Tensor x = random_tensor({g.c * g.h * g.w}, 95);
  std::vector<float> cols_f(static_cast<std::size_t>(g.rows() * g.cols()));
  std::vector<nc::util::half> cols_h(cols_f.size());
  nc::core::im2col_2d(x.data(), g, cols_f.data());

  // Half path: pre-convert the source, then lower half -> half.
  std::vector<nc::util::half> xh(static_cast<std::size_t>(x.numel()));
  nc::util::float_to_half_n(x.data(), xh.data(), x.numel());
  nc::core::im2col_2d(xh.data(), g, cols_h.data());

  for (std::size_t i = 0; i < cols_f.size(); ++i) {
    EXPECT_NEAR(static_cast<float>(cols_h[i]), cols_f[i], 1e-3);
  }
}

}  // namespace
