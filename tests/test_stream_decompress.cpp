/// Read-side streaming: StreamDecompressor round-trips, batched decode
/// equivalence, and corrupt-input containment.  The write side feeds the
/// read side exactly as the deployment does: compress -> serialize ->
/// deserialize -> decompress.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "codec/bcae_codec.hpp"
#include "codec/stream.hpp"
#include "tests/stream_test_utils.hpp"

namespace {

using nc::codec::BcaeCodec;
using nc::codec::BcaeWedgeCodec;
using nc::codec::CompressedWedge;
using nc::codec::IntakeMode;
using nc::codec::StreamCompressor;
using nc::codec::StreamDecompressor;
using nc::codec::StreamOptions;
using nc::codec::WedgeEnvelope;
using nc::core::Mode;
using nc::core::Tensor;
using nc::testutil::compressed_wedges;
using nc::testutil::enveloped_wedges;
using nc::testutil::expect_bit_identical;
using nc::testutil::raw_wedge;

TEST(BcaeCodec, DecompressBatchMatchesSingleDecompression) {
  auto model = nc::bcae::make_bcae_ht(67);
  BcaeCodec codec(model, Mode::kEval);
  const auto cws = compressed_wedges(codec, 4);
  const auto batch = codec.decompress_batch(cws);
  ASSERT_EQ(batch.size(), cws.size());
  for (std::size_t i = 0; i < cws.size(); ++i) {
    expect_bit_identical(batch[i], codec.decompress(cws[i]));
  }
}

TEST(BcaeCodec, DecompressBatchRejectsInconsistentPayload) {
  auto model = nc::bcae::make_bcae_ht(69);
  BcaeCodec codec(model, Mode::kEval);
  auto cw = codec.compress(raw_wedge(0));
  cw.code.resize(cw.code.size() / 2);  // payload no longer matches the shape
  EXPECT_THROW(codec.decompress_batch({cw}), std::invalid_argument);
  CompressedWedge empty_shape = codec.compress(raw_wedge(0));
  empty_shape.code_shape.clear();
  EXPECT_THROW((void)codec.decompress(empty_shape), std::invalid_argument);
}

TEST(StreamDecompressor, UnorderedSingleWorkerMatchesDirectDecompress) {
  auto model = nc::bcae::make_bcae_ht(71);
  BcaeWedgeCodec codec(model, Mode::kEval);
  const int n = 6;
  const auto cws = enveloped_wedges(codec, n);

  StreamOptions opt;
  opt.queue_capacity = 16;
  opt.batch_size = 2;
  opt.n_workers = 1;
  std::map<std::uint64_t, Tensor> decoded;  // single worker: no lock needed
  StreamDecompressor stream(codec, opt,
                            [&](std::uint64_t seq, Tensor&& wedge) {
                              decoded.emplace(seq, std::move(wedge));
                            });
  for (const auto& cw : cws) stream.submit(cw);
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_failed, 0);
  EXPECT_GT(stats.throughput_wps(), 0.0);
  ASSERT_EQ(decoded.size(), static_cast<std::size_t>(n));
  std::int64_t decoded_bytes = 0;
  for (int i = 0; i < n; ++i) {
    const auto& wedge = decoded.at(static_cast<std::uint64_t>(i));
    expect_bit_identical(wedge, codec.decompress(cws[static_cast<std::size_t>(i)]));
    decoded_bytes += wedge.numel() * 2;
  }
  EXPECT_EQ(stats.payload_bytes, decoded_bytes);  // fp16-accounted output volume
}

/// Multi-worker read-side contracts must hold for both intake layers (the
/// shared queue and the sharded work-stealing intake).
class StreamDecompressorIntake : public nc::testutil::IntakeParamTest {};

NC_INSTANTIATE_BOTH_INTAKES(StreamDecompressorIntake);

TEST_P(StreamDecompressorIntake, UnorderedFourWorkersMatchesDirectDecompress) {
  auto model = nc::bcae::make_bcae_ht(73);
  BcaeWedgeCodec codec(model, Mode::kEval);
  const int n = 16;
  const auto cws = enveloped_wedges(codec, n);

  StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 4;
  std::mutex decoded_mutex;  // unordered sink runs concurrently
  std::map<std::uint64_t, Tensor> decoded;
  StreamDecompressor stream(codec, opt,
                            [&](std::uint64_t seq, Tensor&& wedge) {
                              std::lock_guard<std::mutex> lock(decoded_mutex);
                              decoded.emplace(seq, std::move(wedge));
                            });
  for (const auto& cw : cws) stream.submit(cw);
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_failed, 0);
  ASSERT_EQ(decoded.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    expect_bit_identical(decoded.at(static_cast<std::uint64_t>(i)),
                         codec.decompress(cws[static_cast<std::size_t>(i)]));
  }
}

TEST_P(StreamDecompressorIntake, OrderedFourWorkersEmitInSubmissionOrder) {
  auto model = nc::bcae::make_bcae_ht(75);
  BcaeWedgeCodec codec(model, Mode::kEval);
  const int n = 12;
  const auto cws = enveloped_wedges(codec, n);

  StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 4;
  opt.ordered = true;
  opt.reorder_capacity = 4;  // exercise the bounded buffer on the read side
  std::vector<std::uint64_t> seqs;  // ordered sink: serialized, no lock
  std::vector<Tensor> decoded;
  StreamDecompressor stream(codec, opt,
                            [&](std::uint64_t seq, Tensor&& wedge) {
                              seqs.push_back(seq);
                              decoded.push_back(std::move(wedge));
                            });
  for (const auto& cw : cws) stream.submit(cw);
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
    expect_bit_identical(decoded[static_cast<std::size_t>(i)],
                         codec.decompress(cws[static_cast<std::size_t>(i)]));
  }
}

TEST_P(StreamDecompressorIntake, PoisonedPayloadLandsInFailedWithoutKillingWorkers) {
  auto model = nc::bcae::make_bcae_ht(77);
  BcaeWedgeCodec codec(model, Mode::kEval);
  const int n = 10;
  auto cws = enveloped_wedges(codec, n);
  // Poison one wedge mid-stream: its payload is truncated and can no longer
  // deserialize into a CompressedWedge.
  cws[4].payload.resize(cws[4].payload.size() / 2);

  StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 16;
  opt.batch_size = 1;  // contain the failure to the poisoned wedge
  opt.n_workers = 2;
  opt.ordered = true;
  std::vector<std::uint64_t> seqs;
  StreamDecompressor stream(codec, opt,
                            [&](std::uint64_t seq, Tensor&&) {
                              seqs.push_back(seq);
                            });
  for (const auto& cw : cws) stream.submit(cw);
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_failed, 1);
  EXPECT_EQ(stats.wedges_compressed, n - 1);
  // Wedges after the poisoned one still decoded: the workers survived, and
  // the ordered cursor advanced over the failed sequence number.
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n - 1));
  std::uint64_t expect = 0;
  for (const auto seq : seqs) {
    if (expect == 4) ++expect;  // the poisoned wedge
    EXPECT_EQ(seq, expect++);
  }
}

TEST_P(StreamDecompressorIntake, FullChainCompressSerializeDeserializeDecompress) {
  // The deployment path end-to-end: StreamCompressor -> byte store ->
  // StreamDecompressor, with seq numbers tying stored blobs to submissions.
  auto model = nc::bcae::make_bcae_ht(79);
  BcaeWedgeCodec codec(model, Mode::kEval);
  const int n = 8;

  StreamOptions copt;
  copt.intake = GetParam();
  copt.queue_capacity = 8;
  copt.batch_size = 2;
  copt.n_workers = 2;
  std::mutex store_mutex;
  std::map<std::uint64_t, std::string> storage;
  StreamCompressor compressor(codec, copt,
                              [&](std::uint64_t seq, WedgeEnvelope&& env) {
                                std::ostringstream os;
                                env.serialize(os);
                                std::lock_guard<std::mutex> lock(store_mutex);
                                storage.emplace(seq, os.str());
                              });
  for (int i = 0; i < n; ++i) {
    compressor.submit(raw_wedge(static_cast<std::size_t>(i) % 8));
  }
  const auto cstats = compressor.finish();
  EXPECT_EQ(cstats.wedges_compressed, n);
  ASSERT_EQ(storage.size(), static_cast<std::size_t>(n));

  StreamOptions dopt;
  dopt.intake = GetParam();
  dopt.queue_capacity = 8;
  dopt.batch_size = 2;
  dopt.n_workers = 4;
  dopt.ordered = true;
  std::vector<Tensor> decoded;
  StreamDecompressor decompressor(
      codec, dopt, [&](std::uint64_t, Tensor&& w) { decoded.push_back(std::move(w)); });
  std::vector<WedgeEnvelope> deserialized;
  for (const auto& [seq, bytes] : storage) {  // map iterates in seq order
    std::istringstream is(bytes);
    deserialized.push_back(WedgeEnvelope::deserialize(is));
    decompressor.submit(deserialized.back());
  }
  const auto dstats = decompressor.finish();
  EXPECT_EQ(dstats.wedges_compressed, n);
  EXPECT_EQ(dstats.wedges_failed, 0);
  ASSERT_EQ(decoded.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& wedge = decoded[static_cast<std::size_t>(i)];
    // The stream result equals a direct decode of the same stored bytes, and
    // its shape matches the original wedge it came from.
    expect_bit_identical(wedge,
                         codec.decompress(deserialized[static_cast<std::size_t>(i)]));
    EXPECT_EQ(wedge.shape(), raw_wedge(static_cast<std::size_t>(i) % 8).shape());
    // BCAE invariant: reconstructed voxels are 0 or above the threshold (§2.2).
    for (std::int64_t v = 0; v < wedge.numel(); ++v) {
      ASSERT_TRUE(wedge[v] == 0.f || wedge[v] >= 6.f) << wedge[v];
    }
  }
}

}  // namespace
