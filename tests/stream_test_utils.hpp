/// \file stream_test_utils.hpp
/// \brief Shared scaffolding for the streaming suites (test_stream_pipeline,
///        test_stream_decompress, test_sharded_intake, test_spill).
///
/// Every stream contract must hold identically under both intake layers, so
/// the suites parameterize over IntakeMode; several also need a worker
/// stalled mid-transform (to pin down reorder bounds, steal fairness,
/// adaptive batching) and sinks that record what arrived.  That machinery
/// was copy-pasted three times before this header existed — keep it here so
/// a fourth suite can't drift.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "codec/bcae_codec.hpp"
#include "codec/stream_pipeline.hpp"
#include "codec/wedge_codec.hpp"
#include "tpc/dataset.hpp"

namespace nc::testutil {

/// The synthetic pipeline most generic suites instantiate.
using IntPipeline = codec::StreamPipeline<int, int>;

/// Base fixture for suites parameterized over both intake layers.
class IntakeParamTest : public ::testing::TestWithParam<codec::IntakeMode> {
 protected:
  codec::StreamOptions base_options() const {
    codec::StreamOptions opt;
    opt.intake = GetParam();
    return opt;
  }
};

/// Instantiates `suite` once per intake mode with readable test names
/// (".../single", ".../sharded").
#define NC_INSTANTIATE_BOTH_INTAKES(suite)                               \
  INSTANTIATE_TEST_SUITE_P(                                              \
      BothIntakes, suite,                                                \
      ::testing::Values(::nc::codec::IntakeMode::kSingleQueue,           \
                        ::nc::codec::IntakeMode::kSharded),              \
      [](const ::testing::TestParamInfo<::nc::codec::IntakeMode>& tpi) {  \
        return std::string(::nc::codec::to_string(tpi.param));           \
      })

/// One-shot gate a transform blocks on to stall a worker mid-batch.
class StallLatch {
 public:
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return released_; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool released_ = false;
};

/// Poll `pred` in 5 ms steps until it holds or `max_spins` expire; returns
/// the final pred() so callers can EXPECT_TRUE it.
inline bool spin_until(const std::function<bool()>& pred, int max_spins = 1000) {
  for (int i = 0; i < max_spins && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Thread-safe sequence-number recorder for sinks.  Unordered sinks push
/// concurrently; ordered users may read after finish() without the lock,
/// but snapshot() is always safe.
class SeqLog {
 public:
  void push(std::uint64_t seq) {
    std::lock_guard<std::mutex> lock(mutex_);
    seqs_.push_back(seq);
  }
  std::vector<std::uint64_t> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seqs_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seqs_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> seqs_;
};

/// Expect exactly the identity emission 0..n-1 (the ordered-mode contract).
inline void expect_ordered_identity(const std::vector<std::uint64_t>& seqs,
                                    std::uint64_t n) {
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(i)], i) << "position " << i;
  }
}

// --- codec-facing fixtures (tiny dataset, shared by every stream suite
// --- that pushes real wedges) ----------------------------------------------

inline const tpc::WedgeDataset& tiny_dataset() {
  static const tpc::WedgeDataset ds = [] {
    tpc::DatasetConfig cfg;
    cfg.n_events = 2;
    cfg.geometry.scale = 0.125;
    cfg.train_fraction = 0.5;
    return tpc::WedgeDataset::generate(cfg);
  }();
  return ds;
}

/// One of the 8 tiny training wedges, clipped to the valid horizontal span.
inline core::Tensor raw_wedge(std::size_t i) {
  const auto& ds = tiny_dataset();
  return tpc::clip_horizontal(ds.train().at(i % 8), ds.valid_horiz());
}

/// Compress n wedges directly (no stream) as round-trip input.
inline std::vector<codec::CompressedWedge> compressed_wedges(
    const codec::BcaeCodec& codec, int n) {
  std::vector<codec::CompressedWedge> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(codec.compress(raw_wedge(static_cast<std::size_t>(i))));
  }
  return out;
}

/// Envelope twin of compressed_wedges: compress n wedges directly through
/// any WedgeCodec (no stream) as stream round-trip input.
inline std::vector<codec::WedgeEnvelope> enveloped_wedges(
    const codec::WedgeCodec& codec, int n) {
  std::vector<codec::WedgeEnvelope> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(codec.compress(raw_wedge(static_cast<std::size_t>(i))));
  }
  return out;
}

inline void expect_bit_identical(const core::Tensor& a, const core::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "voxel " << i;
  }
}

}  // namespace nc::testutil
