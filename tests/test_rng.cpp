/// Statistical and determinism tests for the xoshiro256** RNG wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace {

using nc::util::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundedAndCoversRange) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_GT(c, 4000);  // ~5000 expected
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLargeLambda) {
  Rng rng(17);
  for (double lambda : {0.5, 4.0, 30.0, 200.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, lambda * 0.05 + 0.05) << "lambda=" << lambda;
  }
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, PowerLawWithinBounds) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.power_law(2.7, 0.15, 8.0);
    EXPECT_GE(x, 0.15);
    EXPECT_LE(x, 8.0);
  }
}

TEST(Rng, PowerLawFavorsSmallValues) {
  Rng rng(23);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.power_law(2.7, 0.15, 8.0);
    (x < 1.0 ? low : high) += 1;
  }
  EXPECT_GT(low, 5 * high);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v.begin(), v.end());
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // Overwhelmingly unlikely to be identity.
  std::vector<int> identity(100);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_EQ(same, 0);
}

}  // namespace
