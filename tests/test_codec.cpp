/// BCAE codec: round-trip format, compression-ratio accounting, streaming
/// pipeline semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "codec/bcae_codec.hpp"
#include "codec/stream.hpp"
#include "tests/reference.hpp"
#include "tpc/dataset.hpp"

namespace {

using nc::codec::BcaeCodec;
using nc::codec::CompressedWedge;
using nc::core::Mode;
using nc::core::Tensor;

const nc::tpc::WedgeDataset& tiny_dataset() {
  static const nc::tpc::WedgeDataset ds = [] {
    nc::tpc::DatasetConfig cfg;
    cfg.n_events = 2;
    cfg.geometry.scale = 0.125;
    cfg.train_fraction = 0.5;
    return nc::tpc::WedgeDataset::generate(cfg);
  }();
  return ds;
}

/// Unpadded wedge from the dataset pool (the padded store clipped back).
Tensor raw_wedge(std::size_t i) {
  const auto& ds = tiny_dataset();
  return nc::tpc::clip_horizontal(ds.train().at(i), ds.valid_horiz());
}

TEST(BcaeCodec, CompressProducesDeclaredRatio) {
  auto model = nc::bcae::make_bcae_2d(nc::bcae::Bcae2dConfig{}, 31);
  BcaeCodec codec(model, Mode::kEval);
  const auto cw = codec.compress(raw_wedge(0));
  // Scaled wedge (16, 32, 31) -> padded (16, 32, 32): code (32, 4, 4).
  EXPECT_EQ(cw.code_shape, (nc::core::Shape{32, 4, 4}));
  EXPECT_EQ(cw.payload_bytes(), 512 * 2);
  EXPECT_NEAR(cw.compression_ratio(), 16.0 * 32 * 31 / 512.0, 1e-9);
}

TEST(BcaeCodec, RoundTripShapeAndMaskSemantics) {
  auto model = nc::bcae::make_bcae_ht(33);
  BcaeCodec codec(model, Mode::kEval);
  const Tensor original = raw_wedge(1);
  const auto cw = codec.compress(original);
  const Tensor recon = codec.decompress(cw);
  ASSERT_EQ(recon.shape(), original.shape());
  // BCAE invariant: every reconstructed voxel is 0 or above 6 (§2.2).
  for (std::int64_t i = 0; i < recon.numel(); ++i) {
    EXPECT_TRUE(recon[i] == 0.f || recon[i] >= 6.f) << recon[i];
  }
}

TEST(BcaeCodec, SerializeDeserializeRoundTrip) {
  auto model = nc::bcae::make_bcae_ht(35);
  BcaeCodec codec(model, Mode::kEval);
  const auto cw = codec.compress(raw_wedge(2));

  std::stringstream buffer;
  cw.serialize(buffer);
  const auto back = CompressedWedge::deserialize(buffer);
  EXPECT_EQ(back.wedge_shape, cw.wedge_shape);
  EXPECT_EQ(back.code_shape, cw.code_shape);
  ASSERT_EQ(back.code.size(), cw.code.size());
  for (std::size_t i = 0; i < cw.code.size(); ++i) {
    EXPECT_EQ(back.code[i].bits(), cw.code[i].bits());
  }
}

TEST(BcaeCodec, BatchMatchesSingleCompression) {
  auto model = nc::bcae::make_bcae_ht(37);
  BcaeCodec codec(model, Mode::kEval);
  const auto singles = {codec.compress(raw_wedge(0)), codec.compress(raw_wedge(1))};
  const auto batch = codec.compress_batch({raw_wedge(0), raw_wedge(1)});
  ASSERT_EQ(batch.size(), 2u);
  std::size_t wi = 0;
  for (const auto& s : singles) {
    ASSERT_EQ(batch[wi].code.size(), s.code.size());
    for (std::size_t i = 0; i < s.code.size(); ++i) {
      EXPECT_NEAR(static_cast<float>(batch[wi].code[i]),
                  static_cast<float>(s.code[i]), 1e-4);
    }
    ++wi;
  }
}

TEST(BcaeCodec, HalfAndFullModeCodesAgree) {
  auto model = nc::bcae::make_bcae_ht(39);
  BcaeCodec full(model, Mode::kEval);
  BcaeCodec half(model, Mode::kEvalHalf);
  const Tensor w = raw_wedge(3);
  const auto cf = full.compress(w);
  const auto ch = half.compress(w);
  double max_diff = 0, scale = 0;
  for (std::size_t i = 0; i < cf.code.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(static_cast<float>(cf.code[i])) -
                                 static_cast<float>(ch.code[i])));
    scale = std::max(scale, std::abs(static_cast<double>(static_cast<float>(cf.code[i]))));
  }
  EXPECT_LT(max_diff, 0.02 * (scale + 1.0));
}

TEST(BcaeCodec, RejectsBadInputs) {
  auto model = nc::bcae::make_bcae_ht(41);
  EXPECT_THROW(BcaeCodec(model, Mode::kTrain), std::invalid_argument);
  BcaeCodec codec(model, Mode::kEval);
  EXPECT_THROW(codec.compress(Tensor({4, 4})), std::invalid_argument);
}

TEST(BoundedQueue, BackpressureAndClose) {
  nc::codec::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  q.close();
  EXPECT_FALSE(q.try_push(4));
  EXPECT_TRUE(q.pop(v));  // drains remaining
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // closed + empty
}

TEST(BoundedQueue, CloseWhileDrainDeliversRemainingItems) {
  nc::codec::BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  q.close();
  // A closed queue must still hand out what it holds, batch by batch.
  std::vector<int> drained;
  EXPECT_EQ(q.pop_batch(drained, 3), 3u);
  EXPECT_EQ(q.pop_batch(drained, 3), 2u);
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.pop_batch(drained, 3), 0u);  // closed + empty
}

TEST(StreamCompressor, CompressesEverySubmittedWedge) {
  auto model = nc::bcae::make_bcae_ht(43);
  BcaeCodec codec(model, Mode::kEval);
  std::atomic<int> received{0};
  std::atomic<std::int64_t> bytes{0};
  nc::codec::StreamCompressor stream(
      codec, /*queue_capacity=*/64, /*batch_size=*/4,
      [&](CompressedWedge&& cw) {
        received.fetch_add(1);
        bytes.fetch_add(cw.payload_bytes());
      });
  const int n = 12;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i % 8)));
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(stats.payload_bytes, bytes.load());
  EXPECT_GT(stats.throughput_wps(), 0.0);
}

TEST(StreamCompressor, CountsDropsUnderBackpressure) {
  auto model = nc::bcae::make_bcae_ht(45);
  BcaeCodec codec(model, Mode::kEval);
  // Tiny queue + a sink that can't be outrun: some try_submits must fail.
  nc::codec::StreamCompressor stream(codec, /*queue_capacity=*/1,
                                     /*batch_size=*/1,
                                     [](CompressedWedge&&) {});
  int accepted = 0;
  const int offered = 200;
  for (int i = 0; i < offered; ++i) {
    accepted += stream.try_submit(raw_wedge(static_cast<std::size_t>(i % 8))) ? 1 : 0;
  }
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, accepted);
  EXPECT_EQ(stats.wedges_in + stats.wedges_dropped, offered);
  EXPECT_EQ(stats.wedges_compressed, accepted);
}

TEST(StreamCompressor, SubmitAfterFinishCountsAsDropped) {
  auto model = nc::bcae::make_bcae_ht(47);
  BcaeCodec codec(model, Mode::kEval);
  std::atomic<int> received{0};
  nc::codec::StreamCompressor stream(codec, /*queue_capacity=*/8,
                                     /*batch_size=*/2,
                                     [&](CompressedWedge&&) { received.fetch_add(1); });
  const int n = 3;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i)));
  (void)stream.finish();
  // The intake is closed: both submit paths must account the loss.
  stream.submit(raw_wedge(0));
  EXPECT_FALSE(stream.try_submit(raw_wedge(1)));
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_dropped, 2);
  EXPECT_EQ(received.load(), n);
}

}  // namespace
