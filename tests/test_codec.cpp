/// BCAE codec: round-trip format, compression-ratio accounting, streaming
/// pipeline semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "codec/bcae_codec.hpp"
#include "codec/stream.hpp"
#include "tests/reference.hpp"
#include "tpc/dataset.hpp"

namespace {

using nc::codec::BcaeCodec;
using nc::codec::BcaeWedgeCodec;
using nc::codec::CompressedWedge;
using nc::codec::WedgeEnvelope;
using nc::codec::IntakeMode;
using nc::core::Mode;
using nc::core::Tensor;

const nc::tpc::WedgeDataset& tiny_dataset() {
  static const nc::tpc::WedgeDataset ds = [] {
    nc::tpc::DatasetConfig cfg;
    cfg.n_events = 2;
    cfg.geometry.scale = 0.125;
    cfg.train_fraction = 0.5;
    return nc::tpc::WedgeDataset::generate(cfg);
  }();
  return ds;
}

/// Unpadded wedge from the dataset pool (the padded store clipped back).
Tensor raw_wedge(std::size_t i) {
  const auto& ds = tiny_dataset();
  return nc::tpc::clip_horizontal(ds.train().at(i), ds.valid_horiz());
}

TEST(BcaeCodec, CompressProducesDeclaredRatio) {
  auto model = nc::bcae::make_bcae_2d(nc::bcae::Bcae2dConfig{}, 31);
  BcaeCodec codec(model, Mode::kEval);
  const auto cw = codec.compress(raw_wedge(0));
  // Scaled wedge (16, 32, 31) -> padded (16, 32, 32): code (32, 4, 4).
  EXPECT_EQ(cw.code_shape, (nc::core::Shape{32, 4, 4}));
  EXPECT_EQ(cw.payload_bytes(), 512 * 2);
  EXPECT_NEAR(cw.compression_ratio(), 16.0 * 32 * 31 / 512.0, 1e-9);
}

TEST(BcaeCodec, RoundTripShapeAndMaskSemantics) {
  auto model = nc::bcae::make_bcae_ht(33);
  BcaeCodec codec(model, Mode::kEval);
  const Tensor original = raw_wedge(1);
  const auto cw = codec.compress(original);
  const Tensor recon = codec.decompress(cw);
  ASSERT_EQ(recon.shape(), original.shape());
  // BCAE invariant: every reconstructed voxel is 0 or above 6 (§2.2).
  for (std::int64_t i = 0; i < recon.numel(); ++i) {
    EXPECT_TRUE(recon[i] == 0.f || recon[i] >= 6.f) << recon[i];
  }
}

TEST(BcaeCodec, SerializeDeserializeRoundTrip) {
  auto model = nc::bcae::make_bcae_ht(35);
  BcaeCodec codec(model, Mode::kEval);
  const auto cw = codec.compress(raw_wedge(2));

  std::stringstream buffer;
  cw.serialize(buffer);
  const auto back = CompressedWedge::deserialize(buffer);
  EXPECT_EQ(back.wedge_shape, cw.wedge_shape);
  EXPECT_EQ(back.code_shape, cw.code_shape);
  ASSERT_EQ(back.code.size(), cw.code.size());
  for (std::size_t i = 0; i < cw.code.size(); ++i) {
    EXPECT_EQ(back.code[i].bits(), cw.code[i].bits());
  }
}

TEST(BcaeCodec, BatchMatchesSingleCompression) {
  auto model = nc::bcae::make_bcae_ht(37);
  BcaeCodec codec(model, Mode::kEval);
  const auto singles = {codec.compress(raw_wedge(0)), codec.compress(raw_wedge(1))};
  const auto batch = codec.compress_batch({raw_wedge(0), raw_wedge(1)});
  ASSERT_EQ(batch.size(), 2u);
  std::size_t wi = 0;
  for (const auto& s : singles) {
    ASSERT_EQ(batch[wi].code.size(), s.code.size());
    for (std::size_t i = 0; i < s.code.size(); ++i) {
      EXPECT_NEAR(static_cast<float>(batch[wi].code[i]),
                  static_cast<float>(s.code[i]), 1e-4);
    }
    ++wi;
  }
}

TEST(BcaeCodec, HalfAndFullModeCodesAgree) {
  auto model = nc::bcae::make_bcae_ht(39);
  BcaeCodec full(model, Mode::kEval);
  BcaeCodec half(model, Mode::kEvalHalf);
  const Tensor w = raw_wedge(3);
  const auto cf = full.compress(w);
  const auto ch = half.compress(w);
  double max_diff = 0, scale = 0;
  for (std::size_t i = 0; i < cf.code.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(static_cast<float>(cf.code[i])) -
                                 static_cast<double>(static_cast<float>(ch.code[i]))));
    scale = std::max(scale, std::abs(static_cast<double>(static_cast<float>(cf.code[i]))));
  }
  EXPECT_LT(max_diff, 0.02 * (scale + 1.0));
}

TEST(BcaeCodec, HalfModeDecompressStaysFiniteOnUntrainedWeights) {
  // Untrained random weights drive the decoder's intermediate activations
  // past the fp16 range; the saturating activation cast must clamp them so
  // every reconstructed voxel is finite (the ROADMAP fp16-overflow item).
  auto model = nc::bcae::make_bcae_ht(83);
  BcaeCodec codec(model, Mode::kEvalHalf);
  const auto cw = codec.compress(raw_wedge(0));
  const Tensor recon = codec.decompress(cw);
  for (std::int64_t i = 0; i < recon.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(recon[i])) << "voxel " << i << " = " << recon[i];
  }
}

TEST(BcaeCodec, RejectsBadInputs) {
  auto model = nc::bcae::make_bcae_ht(41);
  EXPECT_THROW(BcaeCodec(model, Mode::kTrain), std::invalid_argument);
  BcaeCodec codec(model, Mode::kEval);
  EXPECT_THROW(codec.compress(Tensor({4, 4})), std::invalid_argument);
}

TEST(BoundedQueue, BackpressureAndClose) {
  nc::codec::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  int v = 0;
  EXPECT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  q.close();
  EXPECT_FALSE(q.try_push(4));
  EXPECT_TRUE(q.pop(v));  // drains remaining
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // closed + empty
}

TEST(BoundedQueue, CloseWhileDrainDeliversRemainingItems) {
  nc::codec::BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  q.close();
  // A closed queue must still hand out what it holds, batch by batch.
  std::vector<int> drained;
  EXPECT_EQ(q.pop_batch(drained, 3), 3u);
  EXPECT_EQ(q.pop_batch(drained, 3), 2u);
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.pop_batch(drained, 3), 0u);  // closed + empty
}

TEST(BoundedQueue, PopBatchZeroMeansClosedAndDrained) {
  // pop_batch shares pop's terminal contract: while the queue is open it
  // blocks until it can deliver >= 1 item — a 0 return is never a spurious
  // wakeup, only the closed-and-drained shutdown signal.
  nc::codec::BoundedQueue<int> q(4);
  std::thread pusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    (void)q.try_push(7);
  });
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 2), 1u);  // woke for the item, not spuriously
  EXPECT_EQ(out, (std::vector<int>{7}));
  pusher.join();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    q.close();
  });
  EXPECT_EQ(q.pop_batch(out, 2), 0u);  // 0 <=> closed and drained...
  closer.join();
  EXPECT_EQ(q.pop_batch(out, 2), 0u);  // ...and it is terminal
  int v = 0;
  EXPECT_FALSE(q.pop(v));  // pop agrees: same contract
}

TEST(BoundedQueue, PopBatchMaxItemsZeroStillDeliversOne) {
  // max_items == 0 is clamped to 1: returning 0 from an open queue would
  // violate the 0-iff-closed contract above.
  nc::codec::BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(3));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 0), 1u);
  EXPECT_EQ(out, (std::vector<int>{3}));
}

TEST(StreamCompressor, CompressesEverySubmittedWedge) {
  auto model = nc::bcae::make_bcae_ht(43);
  BcaeWedgeCodec codec(model, Mode::kEval);
  std::atomic<int> received{0};
  std::atomic<std::int64_t> bytes{0};
  nc::codec::StreamCompressor stream(
      codec, /*queue_capacity=*/64, /*batch_size=*/4,
      [&](WedgeEnvelope&& cw) {
        received.fetch_add(1);
        bytes.fetch_add(cw.payload_bytes());
      });
  const int n = 12;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i % 8)));
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(stats.payload_bytes, bytes.load());
  EXPECT_GT(stats.throughput_wps(), 0.0);
}

TEST(StreamCompressor, CountsDropsUnderBackpressure) {
  auto model = nc::bcae::make_bcae_ht(45);
  BcaeWedgeCodec codec(model, Mode::kEval);
  // Tiny queue + a sink that can't be outrun: some try_submits must fail.
  nc::codec::StreamCompressor stream(codec, /*queue_capacity=*/1,
                                     /*batch_size=*/1,
                                     [](WedgeEnvelope&&) {});
  int accepted = 0;
  const int offered = 200;
  for (int i = 0; i < offered; ++i) {
    accepted += stream.try_submit(raw_wedge(static_cast<std::size_t>(i % 8))) ? 1 : 0;
  }
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, accepted);
  EXPECT_EQ(stats.wedges_in + stats.wedges_dropped, offered);
  EXPECT_EQ(stats.wedges_compressed, accepted);
}

TEST(BoundedQueue, WaitForSpaceUnblocksOnCloseAndReportsIt) {
  nc::codec::BoundedQueue<int> q(1);
  EXPECT_TRUE(q.wait_for_space());  // space available: returns immediately
  EXPECT_TRUE(q.try_push(1));
  std::thread closer([&] { q.close(); });
  EXPECT_FALSE(q.wait_for_space());  // full queue: unblocked by close
  closer.join();
}

TEST(StreamCompressor, BlockingSubmitRidesOutTinyQueue) {
  auto model = nc::bcae::make_bcae_ht(63);
  BcaeWedgeCodec codec(model, Mode::kEval);
  nc::codec::StreamOptions opt;
  opt.queue_capacity = 1;  // every submit after the first must wait for space
  opt.batch_size = 1;
  opt.n_workers = 1;
  std::atomic<int> received{0};
  nc::codec::StreamCompressor stream(
      codec, opt, [&](WedgeEnvelope&&) { received.fetch_add(1); });
  const int n = 6;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i)));
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_EQ(received.load(), n);
}

/// Multi-worker compressor contracts must hold for both intake layers (the
/// shared queue and the sharded work-stealing intake).
class StreamCompressorIntake : public ::testing::TestWithParam<IntakeMode> {};

INSTANTIATE_TEST_SUITE_P(
    BothIntakes, StreamCompressorIntake,
    ::testing::Values(IntakeMode::kSingleQueue, IntakeMode::kSharded),
    [](const ::testing::TestParamInfo<IntakeMode>& tpi) {
      return std::string(nc::codec::to_string(tpi.param));
    });

TEST_P(StreamCompressorIntake, MultiWorkerCompressesEverySubmittedWedge) {
  auto model = nc::bcae::make_bcae_ht(49);
  BcaeWedgeCodec codec(model, Mode::kEval);
  nc::codec::StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 16;
  opt.batch_size = 2;
  opt.n_workers = 3;
  std::atomic<int> received{0};
  std::atomic<std::int64_t> bytes{0};
  nc::codec::StreamCompressor stream(codec, opt, [&](WedgeEnvelope&& cw) {
    received.fetch_add(1);
    bytes.fetch_add(cw.payload_bytes());
  });
  const int n = 18;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i % 8)));
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_EQ(stats.wedges_failed, 0);
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(stats.payload_bytes, bytes.load());
  // Per-worker breakdown must reconcile with the aggregate totals.
  ASSERT_EQ(stats.per_worker.size(), 3u);
  std::int64_t per_worker_sum = 0;
  double cpu_sum = 0.0;
  for (const auto& ws : stats.per_worker) {
    per_worker_sum += ws.wedges_compressed;
    cpu_sum += ws.active_s;
  }
  EXPECT_EQ(per_worker_sum, stats.wedges_compressed);
  EXPECT_DOUBLE_EQ(cpu_sum, stats.cpu_s);
  // elapsed_s is the busy-interval union: positive, and bounded by the
  // summed thread-time plus per-batch bookkeeping slack (the busy window
  // brackets the timed region, so the union picks up a few us per batch).
  EXPECT_GT(stats.elapsed_s, 0.0);
  EXPECT_LE(stats.elapsed_s, stats.cpu_s + 0.05);
  EXPECT_GT(stats.throughput_wps(), 0.0);
}

TEST_P(StreamCompressorIntake, MultiWorkerDropAccountingUnderBackpressure) {
  auto model = nc::bcae::make_bcae_ht(51);
  BcaeWedgeCodec codec(model, Mode::kEval);
  nc::codec::StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 1;
  opt.batch_size = 1;
  opt.n_workers = 2;
  std::atomic<int> received{0};
  nc::codec::StreamCompressor stream(
      codec, opt, [&](WedgeEnvelope&&) { received.fetch_add(1); });
  int accepted = 0;
  const int offered = 120;
  for (int i = 0; i < offered; ++i) {
    accepted += stream.try_submit(raw_wedge(static_cast<std::size_t>(i % 8))) ? 1 : 0;
  }
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, accepted);
  EXPECT_EQ(stats.wedges_in + stats.wedges_dropped, offered);
  EXPECT_EQ(stats.wedges_compressed, accepted);
  EXPECT_EQ(received.load(), accepted);
}

TEST_P(StreamCompressorIntake, OrderedSinkEmitsInSubmissionOrder) {
  auto model = nc::bcae::make_bcae_ht(53);
  BcaeWedgeCodec codec(model, Mode::kEval);
  nc::codec::StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 4;
  opt.ordered = true;
  // Ordered mode serializes sink invocations, so no lock is needed here.
  std::vector<std::uint64_t> seqs;
  nc::codec::StreamCompressor stream(
      codec, opt,
      [&](std::uint64_t seq, WedgeEnvelope&&) { seqs.push_back(seq); });
  const int n = 16;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i % 8)));
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
  }
}

TEST_P(StreamCompressorIntake, UnorderedSeqsArePermutationOfSubmissions) {
  auto model = nc::bcae::make_bcae_ht(55);
  BcaeWedgeCodec codec(model, Mode::kEval);
  nc::codec::StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 3;
  std::mutex seq_mutex;  // unordered sink runs concurrently
  std::vector<std::uint64_t> seqs;
  nc::codec::StreamCompressor stream(
      codec, opt, [&](std::uint64_t seq, WedgeEnvelope&&) {
        std::lock_guard<std::mutex> lock(seq_mutex);
        seqs.push_back(seq);
      });
  const int n = 12;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i % 8)));
  (void)stream.finish();
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n));
  std::sort(seqs.begin(), seqs.end());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
  }
}

TEST_P(StreamCompressorIntake, ThrowingSinkDoesNotKillOrderedPipeline) {
  auto model = nc::bcae::make_bcae_ht(65);
  BcaeWedgeCodec codec(model, Mode::kEval);
  nc::codec::StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 2;
  opt.ordered = true;
  std::vector<std::uint64_t> seqs;
  nc::codec::StreamCompressor stream(
      codec, opt, [&](std::uint64_t seq, WedgeEnvelope&&) {
        if (seq == 1) throw std::runtime_error("storage refused wedge");
        seqs.push_back(seq);
      });
  const int n = 8;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i)));
  const auto stats = stream.finish();
  // Compression succeeded for every wedge; only delivery of seq 1 was lost.
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_failed, 0);
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n - 1));
  std::uint64_t expect = 0;
  for (const auto seq : seqs) {
    if (expect == 1) ++expect;  // the refused wedge
    EXPECT_EQ(seq, expect++);
  }
}

TEST_P(StreamCompressorIntake, ConcurrentProducersWithConcurrentFinish) {
  auto model = nc::bcae::make_bcae_ht(57);
  BcaeWedgeCodec codec(model, Mode::kEval);
  nc::codec::StreamOptions opt;
  opt.intake = GetParam();
  opt.queue_capacity = 4;
  opt.batch_size = 2;
  opt.n_workers = 2;
  std::atomic<int> received{0};
  nc::codec::StreamCompressor stream(
      codec, opt, [&](WedgeEnvelope&&) { received.fetch_add(1); });
  constexpr int kProducers = 3, kPerProducer = 40;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        (void)stream.try_submit(raw_wedge(static_cast<std::size_t>(i % 8)));
      }
    });
  }
  // Close the intake while producers are (possibly) still submitting: late
  // submissions must land in the drop count, not crash or hang.
  const auto mid = stream.finish();
  for (auto& t : producers) t.join();
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in + stats.wedges_dropped, kProducers * kPerProducer);
  EXPECT_EQ(stats.wedges_compressed, stats.wedges_in);
  EXPECT_EQ(received.load(), stats.wedges_compressed);
  // Compression totals are frozen at the first finish.
  EXPECT_EQ(mid.wedges_compressed, stats.wedges_compressed);
}

TEST(StreamCompressor, DoubleFinishIsIdempotent) {
  auto model = nc::bcae::make_bcae_ht(59);
  BcaeWedgeCodec codec(model, Mode::kEval);
  std::atomic<int> received{0};
  {
    nc::codec::StreamCompressor stream(
        codec, /*queue_capacity=*/8, /*batch_size=*/2,
        [&](WedgeEnvelope&&) { received.fetch_add(1); });
    for (int i = 0; i < 5; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i)));
    const auto first = stream.finish();
    const auto second = stream.finish();
    EXPECT_EQ(first.wedges_compressed, 5);
    EXPECT_EQ(second.wedges_compressed, 5);
    EXPECT_DOUBLE_EQ(second.elapsed_s, first.elapsed_s);
    // Destructor runs after the explicit finishes: must be a safe no-op.
  }
  EXPECT_EQ(received.load(), 5);
}

TEST(StreamCompressor, FinishFromAnotherThreadThenDestroy) {
  auto model = nc::bcae::make_bcae_ht(61);
  BcaeWedgeCodec codec(model, Mode::kEval);
  std::atomic<int> received{0};
  {
    nc::codec::StreamCompressor stream(
        codec, /*queue_capacity=*/8, /*batch_size=*/2,
        [&](WedgeEnvelope&&) { received.fetch_add(1); });
    for (int i = 0; i < 4; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i)));
    std::thread finisher([&] { (void)stream.finish(); });
    finisher.join();
  }
  EXPECT_EQ(received.load(), 4);
}

TEST(StreamCompressor, SubmitAfterFinishCountsAsDropped) {
  auto model = nc::bcae::make_bcae_ht(47);
  BcaeWedgeCodec codec(model, Mode::kEval);
  std::atomic<int> received{0};
  nc::codec::StreamCompressor stream(codec, /*queue_capacity=*/8,
                                     /*batch_size=*/2,
                                     [&](WedgeEnvelope&&) { received.fetch_add(1); });
  const int n = 3;
  for (int i = 0; i < n; ++i) stream.submit(raw_wedge(static_cast<std::size_t>(i)));
  (void)stream.finish();
  // The intake is closed: both submit paths must account the loss.
  stream.submit(raw_wedge(0));
  EXPECT_FALSE(stream.try_submit(raw_wedge(1)));
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_dropped, 2);
  EXPECT_EQ(received.load(), n);
}

}  // namespace
