/// Corrupt-input hardening: malformed checkpoint files and CompressedWedge
/// streams must fail with SerializeError — never bad_alloc, integer overflow
/// or a crash.  Every stream here is hand-crafted with the serialize
/// primitives so each corruption is exact and deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "codec/bcae_codec.hpp"
#include "core/checkpoint.hpp"
#include "tpc/dataset.hpp"
#include "util/serialize.hpp"

namespace {

using nc::codec::CompressedWedge;
using nc::util::SerializeError;

constexpr char kCheckpointKind[4] = {'C', 'K', 'P', 'T'};
constexpr char kWedgeKind[4] = {'C', 'W', 'D', 'G'};

// -- checkpoint streams -------------------------------------------------------

/// One-entry checkpoint whose tensor header declares `dims`, followed by
/// `payload_floats` float32 values of payload.
std::string checkpoint_bytes(const std::vector<std::int64_t>& dims,
                             std::size_t payload_floats) {
  std::ostringstream os;
  nc::util::write_magic(os, kCheckpointKind, 1);
  nc::util::write_u64(os, 1);
  nc::util::write_string(os, "layer.weight");
  nc::util::write_u64(os, dims.size());
  for (const auto d : dims) nc::util::write_i64(os, d);
  const std::vector<float> payload(payload_floats, 0.f);
  nc::util::write_bytes(os, payload.data(), payload.size() * sizeof(float));
  return os.str();
}

void expect_checkpoint_rejected(const std::string& bytes) {
  std::istringstream is(bytes);
  EXPECT_THROW(nc::core::load_checkpoint(is, std::vector<nc::core::Param*>{}),
               SerializeError);
}

TEST(CorruptCheckpoint, NegativeDimRejected) {
  expect_checkpoint_rejected(checkpoint_bytes({-4, 4}, 0));
}

TEST(CorruptCheckpoint, HugeDimRejectedBeforeAllocation) {
  // 2^40 floats would be a 4 TiB vector; must throw, not bad_alloc.
  expect_checkpoint_rejected(checkpoint_bytes({std::int64_t{1} << 40}, 0));
}

TEST(CorruptCheckpoint, OverflowingDimProductRejected) {
  // Each dim passes a naive per-dim check but the product overflows int64
  // (2^20^4 = 2^80); the guarded accumulation must catch it.
  expect_checkpoint_rejected(checkpoint_bytes(
      {1 << 20, 1 << 20, 1 << 20, 1 << 20}, 0));
}

TEST(CorruptCheckpoint, TruncatedPayloadRejected) {
  // Header says 2x2 floats, stream holds only one.
  expect_checkpoint_rejected(checkpoint_bytes({2, 2}, 1));
}

TEST(CorruptCheckpoint, WrongMagicRejected) {
  std::ostringstream os;
  nc::util::write_magic(os, kWedgeKind, 1);  // wedge magic in a checkpoint
  std::istringstream is(os.str());
  EXPECT_THROW(nc::core::load_checkpoint(is, std::vector<nc::core::Param*>{}),
               SerializeError);
}

TEST(CorruptCheckpoint, UnknownVersionRejected) {
  // A bumped version byte over an otherwise well-formed v1 body must be
  // rejected up front, not misparsed as v1 fields.
  std::ostringstream os;
  nc::util::write_magic(os, kCheckpointKind, 2);
  nc::util::write_u64(os, 0);  // zero parameters: valid v1 payload
  std::istringstream is(os.str());
  EXPECT_THROW(nc::core::load_checkpoint(is, std::vector<nc::core::Param*>{}),
               SerializeError);
}

TEST(CorruptCheckpoint, ValidFileStillLoads) {
  // The hardening must not reject well-formed input: round-trip a tensor.
  nc::core::Param p("layer.weight", nc::core::Tensor({2, 2}));
  for (std::int64_t i = 0; i < 4; ++i) p.value[i] = static_cast<float>(i);
  std::stringstream buffer;
  nc::core::save_checkpoint(buffer, {&p});
  nc::core::Param q("layer.weight", nc::core::Tensor({2, 2}));
  nc::core::load_checkpoint(buffer, {&q});
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(q.value[i], p.value[i]);
}

// -- CompressedWedge streams --------------------------------------------------

/// Hand-crafted CompressedWedge stream with full control over every field.
std::string wedge_bytes(std::int64_t radial, std::int64_t azim,
                        std::int64_t horiz,
                        const std::vector<std::int64_t>& code_dims,
                        std::uint64_t declared_n, std::size_t payload_halfs) {
  std::ostringstream os;
  nc::util::write_magic(os, kWedgeKind, 1);
  nc::util::write_i64(os, radial);
  nc::util::write_i64(os, azim);
  nc::util::write_i64(os, horiz);
  nc::util::write_u64(os, code_dims.size());
  for (const auto d : code_dims) nc::util::write_i64(os, d);
  nc::util::write_u64(os, declared_n);
  const std::vector<nc::util::half> payload(payload_halfs);
  nc::util::write_bytes(os, payload.data(),
                        payload.size() * sizeof(nc::util::half));
  return os.str();
}

void expect_wedge_rejected(const std::string& bytes) {
  std::istringstream is(bytes);
  EXPECT_THROW(CompressedWedge::deserialize(is), SerializeError);
}

TEST(CorruptWedge, NegativeWedgeDimRejected) {
  expect_wedge_rejected(wedge_bytes(-16, 32, 31, {32, 4, 4}, 512, 512));
}

TEST(CorruptWedge, ZeroWedgeDimRejected) {
  expect_wedge_rejected(wedge_bytes(16, 0, 31, {32, 4, 4}, 512, 512));
}

TEST(CorruptWedge, NonPositiveCodeDimRejected) {
  expect_wedge_rejected(wedge_bytes(16, 32, 31, {32, -4, 4}, 512, 512));
}

TEST(CorruptWedge, OverflowingCodeShapeRejected) {
  // Before the guard, 2^20 * 2^20 * 2^20 * 2^20 wrapped modulo 2^64 and
  // could be made to agree with a tiny declared payload.
  expect_wedge_rejected(wedge_bytes(
      16, 32, 31, {1 << 20, 1 << 20, 1 << 20, 1 << 20}, 0, 0));
}

TEST(CorruptWedge, CodeRankZeroRejected) {
  expect_wedge_rejected(wedge_bytes(16, 32, 31, {}, 1, 1));
}

TEST(CorruptWedge, CodeRankImplausibleRejected) {
  expect_wedge_rejected(wedge_bytes(
      16, 32, 31, std::vector<std::int64_t>(9, 2), 512, 512));
}

TEST(CorruptWedge, SizeShapeMismatchRejected) {
  expect_wedge_rejected(wedge_bytes(16, 32, 31, {32, 4, 4}, 100, 100));
}

TEST(CorruptWedge, TruncatedPayloadRejected) {
  expect_wedge_rejected(wedge_bytes(16, 32, 31, {32, 4, 4}, 512, 100));
}

TEST(CorruptWedge, TruncatedHeaderRejected) {
  const std::string full = wedge_bytes(16, 32, 31, {32, 4, 4}, 512, 512);
  std::istringstream is(full.substr(0, 20));  // cut inside the wedge shape
  EXPECT_THROW(CompressedWedge::deserialize(is), SerializeError);
}

TEST(CorruptWedge, WrongMagicRejected) {
  std::ostringstream os;
  nc::util::write_magic(os, kCheckpointKind, 1);
  std::istringstream is(os.str());
  EXPECT_THROW(CompressedWedge::deserialize(is), SerializeError);
}

TEST(CorruptWedge, UnknownVersionRejected) {
  // Same version gate as the checkpoint: a v2 stream with a valid v1 body
  // must fail loudly at the header.
  std::ostringstream os;
  nc::util::write_magic(os, kWedgeKind, 2);
  nc::util::write_i64(os, 16);
  nc::util::write_i64(os, 32);
  nc::util::write_i64(os, 31);
  nc::util::write_u64(os, 3);
  for (const auto d : {32, 4, 4}) nc::util::write_i64(os, d);
  nc::util::write_u64(os, 512);
  const std::vector<nc::util::half> payload(512);
  nc::util::write_bytes(os, payload.data(),
                        payload.size() * sizeof(nc::util::half));
  expect_wedge_rejected(os.str());
}

TEST(CorruptDataset, UnknownVersionRejected) {
  // The third serialized format carries the same version gate as the
  // checkpoint and wedge streams.
  const std::string path = ::testing::TempDir() + "nc_corrupt_dataset.bin";
  {
    std::ofstream os(path, std::ios::binary);
    constexpr char kDatasetKind[4] = {'W', 'D', 'G', 'S'};
    nc::util::write_magic(os, kDatasetKind, 2);
    for (int i = 0; i < 3; ++i) nc::util::write_i64(os, 4);  // valid v1 shape
    nc::util::write_u64(os, 0);  // empty train pool
    nc::util::write_u64(os, 0);  // empty test pool
  }
  EXPECT_THROW((void)nc::tpc::WedgeDataset::load(path), SerializeError);
  std::remove(path.c_str());
}

TEST(CorruptWedge, ValidStreamStillRoundTrips) {
  CompressedWedge cw;
  cw.wedge_shape = nc::tpc::WedgeShape{4, 8, 7};
  cw.code_shape = {2, 2, 2};
  cw.code.resize(8);
  for (std::size_t i = 0; i < 8; ++i) {
    cw.code[i] = nc::util::half(static_cast<float>(i));
  }
  std::stringstream buffer;
  cw.serialize(buffer);
  const auto back = CompressedWedge::deserialize(buffer);
  EXPECT_EQ(back.wedge_shape, cw.wedge_shape);
  EXPECT_EQ(back.code_shape, cw.code_shape);
  ASSERT_EQ(back.code.size(), cw.code.size());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(back.code[i].bits(), cw.code[i].bits());
  }
}

}  // namespace
