/// BCAE models: code shapes, parameter counts, head semantics, training
/// behaviour, evaluation, checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bcae/evaluator.hpp"
#include "bcae/model.hpp"
#include "bcae/trainer.hpp"
#include "core/checkpoint.hpp"
#include "core/loss.hpp"
#include "core/ops.hpp"
#include "util/serialize.hpp"
#include "tests/reference.hpp"
#include "tpc/dataset.hpp"

namespace {

using nc::bcae::Bcae2dConfig;
using nc::bcae::Bcae3dConfig;
using nc::bcae::BcaeModel;
using nc::core::Mode;
using nc::core::Shape;
using nc::core::Tensor;

/// Tiny shared dataset (scale 1/8 wedges: (16, 32, 31) -> padded 32).
const nc::tpc::WedgeDataset& tiny_dataset() {
  static const nc::tpc::WedgeDataset ds = [] {
    nc::tpc::DatasetConfig cfg;
    cfg.n_events = 2;
    cfg.geometry.scale = 0.125;
    cfg.train_fraction = 0.5;
    return nc::tpc::WedgeDataset::generate(cfg);
  }();
  return ds;
}

TEST(BcaeModel, CodeShape3dMatchesPaper) {
  // §3.1: BCAE++ / BCAE-HT code shape (8, 16, 12, 16) at paper scale.
  const Shape code = nc::bcae::code_shape_3d(Bcae3dConfig::bcae_pp(), 16, 192, 256);
  EXPECT_EQ(code, (Shape{8, 16, 12, 16}));
  EXPECT_EQ(nc::core::shape_numel(code), 24576);
}

TEST(BcaeModel, CodeShape2dMatchesPaper) {
  // §2.4/§3.1: BCAE-2D with d = 3 produces code (32, 24, 32).
  const Shape code = nc::bcae::code_shape_2d(Bcae2dConfig{}, 192, 256);
  EXPECT_EQ(code, (Shape{32, 24, 32}));
  EXPECT_EQ(nc::core::shape_numel(code), 24576);
}

TEST(BcaeModel, EncoderForwardProducesDeclaredCodeShape) {
  auto model2d = nc::bcae::make_bcae_2d(Bcae2dConfig{}, 1);
  const Tensor x2 = nc::testref::random_tensor({1, 16, 48, 64}, 81);
  const Tensor c2 = model2d.encode(x2, Mode::kEval);
  EXPECT_EQ(c2.shape(), (Shape{1, 32, 6, 8}));

  auto model3d = nc::bcae::make_bcae_pp(1);
  const Tensor x3 = nc::testref::random_tensor({1, 1, 16, 48, 64}, 82);
  const Tensor c3 = model3d.encode(x3, Mode::kEval);
  EXPECT_EQ(c3.shape(), (Shape{1, 8, 16, 3, 4}));
}

TEST(BcaeModel, DecodersReturnInputShape) {
  auto model = nc::bcae::make_bcae_2d(Bcae2dConfig{}, 2);
  const Tensor x = nc::testref::random_tensor({2, 16, 48, 64}, 83);
  const auto heads = model.forward(x, Mode::kEval);
  EXPECT_EQ(heads.seg_logits.shape(), x.shape());
  EXPECT_EQ(heads.reg.shape(), x.shape());
}

TEST(BcaeModel, EncoderParamCountsNearPaper) {
  // Paper §3.2 Table 1: 226.2k / 9.8k / 169.0k / 201.7k.  Our architecture
  // reconstruction lands within 10% for ++/HT (see DESIGN.md).
  auto pp = nc::bcae::make_bcae_pp(1);
  EXPECT_EQ(pp.encoder_param_count(), 215312);  // golden; paper 226.2k (~5%)
  auto ht = nc::bcae::make_bcae_ht(1);
  EXPECT_EQ(ht.encoder_param_count(), 9974);    // golden; paper 9.8k (~2%)
  auto b2 = nc::bcae::make_bcae_2d(Bcae2dConfig{}, 1);
  EXPECT_EQ(b2.encoder_param_count(), 174144);  // golden; paper 169.0k (~3%)
}

TEST(BcaeModel, Fig6eEncoderSizeIncrementPerBlock) {
  // Fig. 6E: encoder size grows ~36.1k per extra block (m).  Ours grows by
  // exactly two ResBlocks = 36 992.
  std::int64_t prev = 0;
  for (std::int64_t m = 3; m <= 7; ++m) {
    Bcae2dConfig cfg;
    cfg.m = m;
    auto model = nc::bcae::make_bcae_2d(cfg, 1);
    const std::int64_t size = model.encoder_param_count();
    if (prev) {
      EXPECT_EQ(size - prev, 36992);
    }
    prev = size;
  }
}

TEST(BcaeModel, HtEncoderIsTinyFractionOfPp) {
  // §2.3: BCAE-HT's encoder is ~5% of BCAE++'s.
  auto pp = nc::bcae::make_bcae_pp(1);
  auto ht = nc::bcae::make_bcae_ht(1);
  const double frac = static_cast<double>(ht.encoder_param_count()) /
                      static_cast<double>(pp.encoder_param_count());
  EXPECT_LT(frac, 0.06);
  EXPECT_GT(frac, 0.03);
}

TEST(BcaeModel, OriginalBcaeHasNormLayers) {
  auto orig = nc::bcae::make_bcae_original(1);
  bool has_gamma = false;
  for (const auto* p : orig.params()) {
    if (p->name.find("gamma") != std::string::npos) has_gamma = true;
  }
  EXPECT_TRUE(has_gamma);

  auto pp = nc::bcae::make_bcae_pp(1);
  for (const auto* p : pp.params()) {
    EXPECT_EQ(p->name.find("gamma"), std::string::npos) << p->name;
  }
}

TEST(BcaeModel, ReconstructionMaskSemantics) {
  BcaeModel::Heads heads;
  heads.reg = Tensor::from_vector({4}, {7.f, 8.f, 9.f, 6.5f});
  heads.seg_logits = Tensor::from_vector({4}, {3.f, -3.f, 1.f, -1.f});
  const Tensor recon = BcaeModel::reconstruct(heads, 0.5f);
  EXPECT_EQ(recon[0], 7.f);
  EXPECT_EQ(recon[1], 0.f);
  EXPECT_EQ(recon[2], 9.f);
  EXPECT_EQ(recon[3], 0.f);
}

TEST(BcaeModel, RegressionHeadAlwaysAboveSix) {
  // §2.2: the output transform pins regression predictions above 6.
  auto model = nc::bcae::make_bcae_2d(Bcae2dConfig{}, 3);
  const Tensor x = nc::testref::random_tensor({1, 16, 24, 32}, 84);
  const auto heads = model.forward(x, Mode::kEval);
  EXPECT_GE(nc::core::min_value(heads.reg), 6.f);
}

TEST(BcaeModel, HalfModeMatchesFullForAllVariants) {
  // Table 2's parity claim at the model level: identical inputs, fp32 vs
  // fp16 storage inference, small elementwise deviation.
  const auto& ds = tiny_dataset();
  const std::vector<std::int64_t> idx{0, 1};
  {
    auto model = nc::bcae::make_bcae_2d(Bcae2dConfig{}, 5);
    const Tensor x = ds.batch_2d(ds.train(), idx);
    const Tensor full = model.encode(x, Mode::kEval);
    const Tensor half = model.encode(x, Mode::kEvalHalf);
    const float scale = std::max(std::abs(nc::core::max_value(full)),
                                 std::abs(nc::core::min_value(full)));
    EXPECT_LT(nc::testref::max_abs_diff(full, half),
              0.01 * (static_cast<double>(scale) + 1.0));
  }
  {
    auto model = nc::bcae::make_bcae_ht(5);
    const Tensor x = ds.batch_3d(ds.train(), idx);
    const Tensor full = model.encode(x, Mode::kEval);
    const Tensor half = model.encode(x, Mode::kEvalHalf);
    const float scale = std::max(std::abs(nc::core::max_value(full)),
                                 std::abs(nc::core::min_value(full)));
    EXPECT_LT(nc::testref::max_abs_diff(full, half),
              0.01 * (static_cast<double>(scale) + 1.0));
  }
}

TEST(Trainer, OccupancyLabels) {
  const Tensor batch = Tensor::from_vector({4}, {0.f, 6.5f, 0.f, 9.9f});
  const Tensor labels = nc::bcae::occupancy_labels(batch);
  EXPECT_EQ(labels[0], 0.f);
  EXPECT_EQ(labels[1], 1.f);
  EXPECT_EQ(labels[2], 0.f);
  EXPECT_EQ(labels[3], 1.f);
}

TEST(Trainer, LossesDecreaseOverEpochs) {
  const auto& ds = tiny_dataset();
  Bcae2dConfig cfg;
  cfg.m = 2;
  cfg.n = 2;
  cfg.d = 2;
  auto model = nc::bcae::make_bcae_2d(cfg, 7);
  nc::bcae::TrainerConfig tc;
  tc.epochs = 4;
  tc.batch_size = 4;
  tc.max_wedges_per_epoch = 16;
  nc::bcae::Trainer trainer(model, ds, tc);
  const auto history = trainer.fit();
  ASSERT_EQ(history.size(), 4u);
  // Both losses must come down substantially from the first epoch.
  EXPECT_LT(history.back().seg_loss, history.front().seg_loss * 0.5);
  EXPECT_LT(history.back().reg_loss, history.front().reg_loss);
  // Coefficient starts at c0 and follows the recurrence.
  EXPECT_DOUBLE_EQ(history[0].coefficient, tc.c0);
  EXPECT_NEAR(history[1].coefficient,
              nc::core::next_seg_coefficient(tc.c0, history[0].seg_loss,
                                             history[0].reg_loss),
              1e-9);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto& ds = tiny_dataset();
  Bcae2dConfig cfg;
  cfg.m = 1;
  cfg.n = 1;
  cfg.d = 1;
  auto run = [&] {
    auto model = nc::bcae::make_bcae_2d(cfg, 11);
    nc::bcae::TrainerConfig tc;
    tc.epochs = 2;
    tc.batch_size = 2;
    tc.max_wedges_per_epoch = 8;
    nc::bcae::Trainer trainer(model, ds, tc);
    return trainer.fit().back().reg_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Evaluator, PerfectReconstructionScoresPerfectly) {
  // Feed the evaluator a model-free sanity case through the metrics path.
  const auto& ds = tiny_dataset();
  const auto truth = ds.batch_2d(ds.test(), {0, 1});
  const auto m = nc::metrics::evaluate_reconstruction(truth, truth);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(Evaluator, UntrainedModelHasPoorMetrics) {
  const auto& ds = tiny_dataset();
  auto model = nc::bcae::make_bcae_2d(Bcae2dConfig{.m = 1, .n = 1, .d = 1}, 13);
  const auto m =
      nc::bcae::evaluate_model(model, ds, ds.test(), Mode::kEval, 8);
  EXPECT_GT(m.mae, 0.1);  // untrained: far from zero error
}

TEST(Evaluator, ThroughputIsPositiveAndHalfRuns) {
  const auto& ds = tiny_dataset();
  auto model = nc::bcae::make_bcae_ht(17);
  const double full = nc::bcae::encoder_throughput(model, ds, 4, Mode::kEval, 0.05);
  const double half = nc::bcae::encoder_throughput(model, ds, 4, Mode::kEvalHalf, 0.05);
  EXPECT_GT(full, 0.0);
  EXPECT_GT(half, 0.0);
}

TEST(Checkpoint, RoundTripRestoresForwardOutputs) {
  const auto& ds = tiny_dataset();
  Bcae2dConfig cfg;
  cfg.m = 1;
  cfg.n = 1;
  cfg.d = 1;
  auto model_a = nc::bcae::make_bcae_2d(cfg, 19);
  const Tensor x = ds.batch_2d(ds.train(), {0});
  const Tensor code_a = model_a.encode(x, Mode::kEval);

  std::stringstream buffer;
  nc::core::save_checkpoint(buffer, model_a.params());

  auto model_b = nc::bcae::make_bcae_2d(cfg, 999);  // different init
  const Tensor code_before = model_b.encode(x, Mode::kEval);
  EXPECT_GT(nc::testref::max_abs_diff(code_a, code_before), 1e-3);

  nc::core::load_checkpoint(buffer, model_b.params());
  const Tensor code_after = model_b.encode(x, Mode::kEval);
  EXPECT_LT(nc::testref::max_abs_diff(code_a, code_after), 1e-7);
}

TEST(Checkpoint, ShapeMismatchThrows) {
  Bcae2dConfig small;
  small.m = 1;
  small.n = 1;
  small.d = 1;
  auto model_a = nc::bcae::make_bcae_2d(small, 21);
  std::stringstream buffer;
  nc::core::save_checkpoint(buffer, model_a.params());

  Bcae2dConfig big = small;
  big.m = 2;
  auto model_b = nc::bcae::make_bcae_2d(big, 23);
  EXPECT_THROW(nc::core::load_checkpoint(buffer, model_b.params()),
               nc::util::SerializeError);
}

}  // namespace
