/// \file test_service.cpp
/// \brief The multi-stream compression service: session multiplexing over
///        one shared pipeline, per-session ordered emission, DRR fairness,
///        and degradation-ladder admission.
///
/// Determinism strategy: admission runs in manual mode (admission_interval_s
/// = 0, driven by admission_tick()), and overload is created with a *gated*
/// codec that blocks the shared pool's single worker on a latch — so staging
/// backs up for certain, not probabilistically.  The scheduler drains
/// staging concurrently with the fill loops, so overload tests use a
/// fill-then-tick loop (refill, tick, check) instead of assuming one fill
/// leaves the queue exactly full.  The concurrency tests at the bottom
/// (finish / close_session racing in-flight submits) run under TSan in CI
/// via the suite's `tsan` label.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bcae/model.hpp"
#include "codec/service.hpp"
#include "codec/wedge_codec.hpp"
#include "tests/stream_test_utils.hpp"

namespace {

using nc::codec::CompressionService;
using nc::codec::ServiceOptions;
using nc::codec::SessionId;
using nc::codec::SessionOptions;
using nc::codec::SubmitResult;
using nc::codec::WedgeCodec;
using nc::codec::WedgeEnvelope;
using nc::core::Tensor;
using nc::testutil::raw_wedge;
using nc::testutil::spin_until;
using nc::testutil::StallLatch;

/// The fast, deterministic, model-free codec every test rung bottoms out on.
const WedgeCodec& zfp_codec() {
  static nc::bcae::BcaeModel model = nc::bcae::make_bcae_ht(81);
  static const std::unique_ptr<WedgeCodec> codec =
      nc::codec::make_wedge_codec("zfp", model);
  return *codec;
}

/// Delegating codec whose compress_batch blocks on a latch: the service's
/// shared worker stalls deterministically, so staging queues genuinely back
/// up instead of draining as fast as tests can fill them.
class GatedCodec : public WedgeCodec {
 public:
  explicit GatedCodec(const WedgeCodec& inner) : inner_(inner) {}

  std::uint8_t codec_id() const override { return inner_.codec_id(); }
  std::string name() const override { return "gated-" + inner_.name(); }
  std::vector<WedgeEnvelope> compress_batch(
      const std::vector<Tensor>& wedges) const override {
    gate_.wait();
    return inner_.compress_batch(wedges);
  }
  std::vector<Tensor> decompress_batch(
      const std::vector<WedgeEnvelope>& envelopes) const override {
    return inner_.decompress_batch(envelopes);
  }
  void release() const { gate_.release(); }

 private:
  const WedgeCodec& inner_;
  mutable StallLatch gate_;
};

/// Delegating codec that throttles each batch: keeps a backlog standing for
/// a bounded, known time without ever blocking forever.
class SlowCodec : public WedgeCodec {
 public:
  SlowCodec(const WedgeCodec& inner, std::chrono::milliseconds per_batch)
      : inner_(inner), per_batch_(per_batch) {}

  std::uint8_t codec_id() const override { return inner_.codec_id(); }
  std::string name() const override { return "slow-" + inner_.name(); }
  std::vector<WedgeEnvelope> compress_batch(
      const std::vector<Tensor>& wedges) const override {
    std::this_thread::sleep_for(per_batch_);
    return inner_.compress_batch(wedges);
  }
  std::vector<Tensor> decompress_batch(
      const std::vector<WedgeEnvelope>& envelopes) const override {
    return inner_.decompress_batch(envelopes);
  }

 private:
  const WedgeCodec& inner_;
  std::chrono::milliseconds per_batch_;
};

/// Thread-safe ordered-emission recorder for a session sink.
struct SinkLog {
  mutable std::mutex mutex;
  std::vector<std::uint64_t> seqs;
  std::vector<WedgeEnvelope> envelopes;

  void push(std::uint64_t seq, WedgeEnvelope&& env) {
    std::lock_guard<std::mutex> lock(mutex);
    seqs.push_back(seq);
    envelopes.push_back(std::move(env));
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex);
    return seqs.size();
  }
};

SessionOptions session(const WedgeCodec& codec, SinkLog* log,
                       std::size_t queue_capacity = 64) {
  SessionOptions opt;
  opt.ladder = {&codec};
  opt.queue_capacity = queue_capacity;
  if (log != nullptr) {
    opt.sink = [log](std::uint64_t seq, WedgeEnvelope&& env) {
      log->push(seq, std::move(env));
    };
  }
  return opt;
}

/// Manual-admission service options: small shared pool, deterministic ticks.
ServiceOptions manual_options(std::size_t n_workers = 2,
                              std::size_t queue = 16) {
  ServiceOptions opt;
  opt.pipeline.n_workers = n_workers;
  opt.pipeline.queue_capacity = queue;
  opt.pipeline.batch_size = 2;
  opt.admission_interval_s = 0.0;  // admission_tick() only
  opt.admission.window = 1;
  opt.admission.cooldown = 0;
  return opt;
}

/// Fill the session's staging queue to the brim and admission-tick until the
/// predicate holds (the scheduler drains staging concurrently, so one fill
/// pass may leave the queue transiently shallower than a tick wants to see).
/// Returns the number of accepted submits; stops filling once `done` holds.
template <typename Pred>
int fill_and_tick_until(CompressionService& service, SessionId id,
                        Pred&& done) {
  int accepted = 0;
  const bool ok = spin_until([&] {
    if (done()) return true;
    while (service.try_submit(id, raw_wedge(0)) == SubmitResult::kAccepted) {
      ++accepted;
    }
    service.admission_tick();
    return done();
  });
  EXPECT_TRUE(ok) << "admission never reached the expected state";
  return accepted;
}

TEST(Service, OpenSessionValidatesLadder) {
  CompressionService service(manual_options());
  EXPECT_THROW(service.open_session(SessionOptions{}), std::invalid_argument);
  SessionOptions null_rung;
  null_rung.ladder = {nullptr};
  EXPECT_THROW(service.open_session(std::move(null_rung)),
               std::invalid_argument);
  EXPECT_EQ(service.open_sessions(), 0u);
}

TEST(Service, UnknownSessionIdsAreRejected) {
  CompressionService service(manual_options());
  EXPECT_EQ(service.submit(42, raw_wedge(0)), SubmitResult::kClosed);
  EXPECT_THROW(service.close_session(42), std::invalid_argument);
  EXPECT_THROW(service.session_stats(42), std::invalid_argument);
}

TEST(Service, RoundTripMatchesDirectCompressionBitExact) {
  // Three interleaved sessions over one shared pool: every session's sink
  // must see the identity sequence 0..n-1 with envelopes bit-identical to
  // compressing its own wedges directly — multiplexing must be invisible.
  CompressionService service(manual_options(/*n_workers=*/3));
  const int kSessions = 3;
  const int n = 12;
  std::vector<SinkLog> logs(kSessions);
  std::vector<SessionId> ids;
  for (int s = 0; s < kSessions; ++s) {
    ids.push_back(service.open_session(
        session(zfp_codec(), &logs[static_cast<std::size_t>(s)])));
  }
  for (int i = 0; i < n; ++i) {
    for (int s = 0; s < kSessions; ++s) {
      // Session s streams wedges s, s+1, ... so the three streams differ.
      EXPECT_EQ(service.submit(ids[static_cast<std::size_t>(s)],
                               raw_wedge(static_cast<std::size_t>(s + i))),
                SubmitResult::kAccepted);
    }
  }
  for (int s = 0; s < kSessions; ++s) {
    const auto stats = service.close_session(ids[static_cast<std::size_t>(s)]);
    EXPECT_EQ(stats.submitted, n);
    EXPECT_EQ(stats.compressed, n);
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.failed, 0);
    EXPECT_EQ(stats.codec, zfp_codec().name());
    auto& log = logs[static_cast<std::size_t>(s)];
    nc::testutil::expect_ordered_identity(log.seqs,
                                          static_cast<std::uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto direct =
          zfp_codec().compress(raw_wedge(static_cast<std::size_t>(s + i)));
      const auto& emitted = log.envelopes[static_cast<std::size_t>(i)];
      EXPECT_EQ(emitted.codec_id, direct.codec_id);
      ASSERT_EQ(emitted.payload.size(), direct.payload.size());
      EXPECT_EQ(emitted.payload, direct.payload)
          << "session " << s << " wedge " << i << " bitstream diverged";
    }
  }
  EXPECT_EQ(service.open_sessions(), 0u);
  const auto totals = service.finish();
  EXPECT_EQ(totals.sessions_opened, kSessions);
  EXPECT_EQ(totals.wedges_scheduled, kSessions * n);
  EXPECT_EQ(totals.wedges_shed, 0);
}

TEST(Service, TrySubmitReportsQueueFullOnABackedUpSession) {
  // One gated worker: nothing drains, so the session's staging queue (plus
  // the small pipeline intake the scheduler feeds) absorbs a bounded number
  // of wedges and try_submit must then report the full queue.  No admission
  // ticks run, so nothing may shed.
  GatedCodec gated(zfp_codec());
  auto opt = manual_options(/*n_workers=*/1, /*queue=*/2);
  opt.drr_quantum = 1;
  CompressionService service(opt);
  const auto id = service.open_session(session(gated, nullptr,
                                               /*queue_capacity=*/4));
  int accepted = 0;
  int full = 0;
  for (int i = 0; i < 64; ++i) {
    switch (service.try_submit(id, raw_wedge(0))) {
      case SubmitResult::kAccepted:
        ++accepted;
        break;
      case SubmitResult::kQueueFull:
        ++full;
        break;
      default:
        FAIL() << "only kAccepted/kQueueFull are possible here";
    }
  }
  EXPECT_GT(full, 0) << "an unbounded session queue would hide overload";
  EXPECT_LT(accepted, 64);
  gated.release();
  const auto stats = service.close_session(id);
  EXPECT_EQ(stats.submitted, accepted);
  EXPECT_EQ(stats.compressed, accepted);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_GT(stats.queue_depth_hwm, 0);
  service.finish();
}

TEST(Service, DrrRoundRobinKeepsAPoliteSessionFlowing) {
  // A firehose session with ~100 ms of throttled backlog and a polite
  // session submitting one fast wedge: DRR must schedule the polite wedge
  // within a round or two, so it emerges while the firehose still has most
  // of its backlog staged — not after it.
  SlowCodec slow(zfp_codec(), std::chrono::milliseconds(5));
  auto opt = manual_options(/*n_workers=*/1, /*queue=*/2);
  opt.drr_quantum = 2;
  CompressionService service(opt);
  SinkLog fire_log;
  SinkLog polite_log;
  const auto fire =
      service.open_session(session(slow, &fire_log, /*queue_capacity=*/64));
  const auto polite = service.open_session(
      session(zfp_codec(), &polite_log, /*queue_capacity=*/4));
  for (int i = 0; i < 48; ++i) {
    ASSERT_EQ(service.submit(fire, raw_wedge(static_cast<std::size_t>(i))),
              SubmitResult::kAccepted);
  }
  ASSERT_EQ(service.submit(polite, raw_wedge(1)), SubmitResult::kAccepted);
  ASSERT_TRUE(spin_until([&] { return polite_log.size() == 1; }));
  EXPECT_LT(fire_log.size(), 48u)
      << "polite session waited behind the entire firehose backlog";
  service.close_session(fire);
  service.close_session(polite);
  service.finish();
}

TEST(Service, ShedsOnlyWithLadderExhaustedAndCountsGaps) {
  // Single-rung ladder + gated worker: admission has nowhere to degrade,
  // so a sustained full staging queue must latch shedding — early, counted
  // drops whose sequence numbers surface as sink gaps, never reordering.
  GatedCodec gated(zfp_codec());
  auto opt = manual_options(/*n_workers=*/1, /*queue=*/2);
  opt.drr_quantum = 1;
  CompressionService service(opt);
  SinkLog log;
  const auto id = service.open_session(session(gated, &log,
                                               /*queue_capacity=*/4));
  int accepted = 0;
  int shed_in_fill = 0;
  ASSERT_TRUE(spin_until([&] {
    for (;;) {
      const auto r = service.try_submit(id, raw_wedge(0));
      if (r == SubmitResult::kAccepted) {
        ++accepted;
        continue;
      }
      if (r == SubmitResult::kShed) {
        ++shed_in_fill;
        return true;  // the latch engaged
      }
      break;  // kQueueFull: not latched yet, let admission look
    }
    service.admission_tick();
    return false;
  }));
  ASSERT_GT(accepted, 0);
  EXPECT_EQ(service.session_stats(id).rung, 0u)
      << "nowhere to degrade on a one-rung ladder";
  const int kShedWedges = 5;
  for (int i = 0; i < kShedWedges; ++i) {
    EXPECT_EQ(service.submit(id, raw_wedge(0)), SubmitResult::kShed)
        << "latched shedding must drop immediately, not block";
  }
  gated.release();
  const auto closed = service.close_session(id);
  EXPECT_EQ(closed.shed, shed_in_fill + kShedWedges);
  EXPECT_EQ(closed.compressed + closed.shed, closed.submitted);
  EXPECT_EQ(closed.degradations, 0);
  // Ordered emission with gaps: exactly the accepted wedges come out, in
  // strictly increasing seq order.
  std::lock_guard<std::mutex> lock(log.mutex);
  EXPECT_EQ(static_cast<std::int64_t>(log.seqs.size()), closed.compressed);
  EXPECT_TRUE(std::is_sorted(log.seqs.begin(), log.seqs.end()));
  service.finish();
}

TEST(Service, DegradesDownTheLadderBeforeShedding) {
  // Two-rung ladder: the same sustained overload that sheds a one-rung
  // session must first hop this one to its cheaper codec, with nothing
  // dropped while a rung remained.
  GatedCodec gated(zfp_codec());
  auto opt = manual_options(/*n_workers=*/1, /*queue=*/2);
  opt.drr_quantum = 1;
  CompressionService service(opt);
  SinkLog log;
  SessionOptions sopt;
  sopt.ladder = {&gated, &zfp_codec()};
  sopt.queue_capacity = 4;
  sopt.sink = [&log](std::uint64_t seq, WedgeEnvelope&& env) {
    log.push(seq, std::move(env));
  };
  const auto id = service.open_session(std::move(sopt));
  const int accepted = fill_and_tick_until(
      service, id, [&] { return service.session_stats(id).rung == 1; });
  const auto mid = service.session_stats(id);
  EXPECT_EQ(mid.degradations, 1);
  EXPECT_EQ(mid.codec, zfp_codec().name());
  EXPECT_EQ(mid.shed, 0) << "a rung was available: nothing may shed";
  gated.release();
  // More work flows normally under the cheaper codec.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(service.submit(id, raw_wedge(0)), SubmitResult::kAccepted);
  }
  const auto closed = service.close_session(id);
  EXPECT_EQ(closed.compressed, accepted + 4);
  EXPECT_EQ(closed.shed, 0);
  EXPECT_EQ(closed.degradations, 1);
  EXPECT_EQ(static_cast<int>(log.size()), accepted + 4);
  service.finish();
}

TEST(Service, RecoveryClimbsBackAfterQuietWindows) {
  GatedCodec gated(zfp_codec());
  auto opt = manual_options(/*n_workers=*/1, /*queue=*/2);
  opt.drr_quantum = 1;
  opt.admission.recover_window = 2;
  CompressionService service(opt);
  SessionOptions sopt;
  sopt.ladder = {&gated, &zfp_codec()};
  sopt.queue_capacity = 4;
  const auto id = service.open_session(std::move(sopt));
  fill_and_tick_until(service, id,
                      [&] { return service.session_stats(id).rung == 1; });
  gated.release();
  // Once the backlog drains, quiet admission windows climb back to rung 0.
  ASSERT_TRUE(spin_until([&] {
    service.admission_tick();
    return service.session_stats(id).rung == 0;
  }));
  const auto stats = service.close_session(id);
  EXPECT_EQ(stats.degradations, 1);
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.codec, "gated-" + zfp_codec().name());
  service.finish();
}

// ---------------------------------------------------------------------------
// Concurrency (the suite runs under TSan in CI via the tsan label)
// ---------------------------------------------------------------------------

TEST(Service, ConcurrentFinishVsInFlightSubmits) {
  // Submitter threads hammer their sessions while the main thread tears the
  // whole service down: every submit must resolve cleanly (kAccepted wedges
  // fully emitted, late ones kClosed), with no lost or duplicated wedges.
  CompressionService service(manual_options(/*n_workers=*/3, /*queue=*/8));
  const int kThreads = 4;
  std::vector<SinkLog> logs(kThreads);
  std::vector<SessionId> ids;
  for (int t = 0; t < kThreads; ++t) {
    ids.push_back(service.open_session(
        session(zfp_codec(), &logs[static_cast<std::size_t>(t)],
                /*queue_capacity=*/8)));
  }
  std::vector<std::int64_t> accepted(kThreads, 0);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        const auto result =
            service.try_submit(ids[static_cast<std::size_t>(t)],
                               raw_wedge(static_cast<std::size_t>(i)));
        if (result == SubmitResult::kAccepted) {
          ++accepted[static_cast<std::size_t>(t)];
        } else if (result == SubmitResult::kClosed) {
          break;  // finish() won the race
        }
        std::this_thread::yield();
      }
    });
  }
  // Tear down while submitters are mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.finish();
  for (auto& t : submitters) t.join();
  for (int t = 0; t < kThreads; ++t) {
    const auto stats = service.close_session(ids[static_cast<std::size_t>(t)]);
    EXPECT_EQ(stats.submitted, accepted[static_cast<std::size_t>(t)]);
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.compressed + stats.failed, stats.submitted);
    auto& log = logs[static_cast<std::size_t>(t)];
    std::lock_guard<std::mutex> lock(log.mutex);
    EXPECT_EQ(static_cast<std::int64_t>(log.seqs.size()), stats.compressed);
    EXPECT_TRUE(std::is_sorted(log.seqs.begin(), log.seqs.end()));
  }
}

TEST(Service, ConcurrentSessionChurn) {
  // Sessions opening, streaming and closing concurrently while admission
  // ticks race them: the session map, scheduler rounds and admission passes
  // all contend here.  Queues are deep enough (16 wedges into capacity 32,
  // depth <= 0.5) that admission always holds — nothing may shed.
  CompressionService service(manual_options(/*n_workers=*/3, /*queue=*/8));
  std::atomic<std::int64_t> total_compressed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        const auto id = service.open_session(
            session(zfp_codec(), nullptr, /*queue_capacity=*/32));
        for (int i = 0; i < 16; ++i) {
          EXPECT_EQ(
              service.submit(id, raw_wedge(static_cast<std::size_t>(t + i))),
              SubmitResult::kAccepted);
        }
        service.admission_tick();  // races the other clients' churn
        total_compressed.fetch_add(service.close_session(id).compressed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total_compressed.load(), 4 * 3 * 16);
  const auto totals = service.finish();
  EXPECT_EQ(totals.sessions_opened, 12);
  EXPECT_EQ(totals.wedges_shed, 0);
  EXPECT_EQ(totals.pipeline.wedges_failed, 0);
}

}  // namespace
