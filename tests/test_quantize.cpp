/// Post-training optimization (§4 future work): int8 quantization and
/// magnitude pruning.
#include <gtest/gtest.h>

#include <cmath>

#include "bcae/evaluator.hpp"
#include "bcae/model.hpp"
#include "core/conv.hpp"
#include "core/ops.hpp"
#include "core/quantize.hpp"
#include "tests/reference.hpp"
#include "tpc/dataset.hpp"

namespace {

using nc::core::Mode;
using nc::core::Tensor;

TEST(Quantize, RowQuantizationBoundsError) {
  const Tensor w = nc::testref::random_tensor({8, 64}, 11);
  const auto q = nc::core::quantize_rows(w.data(), 8, 64);
  for (std::int64_t r = 0; r < 8; ++r) {
    const float scale = q.scales[static_cast<std::size_t>(r)];
    for (std::int64_t k = 0; k < 64; ++k) {
      const float back = static_cast<float>(q.values[r * 64 + k]) * scale;
      // Symmetric int8: error <= scale / 2.
      EXPECT_LE(std::abs(back - w[r * 64 + k]), scale * 0.5f + 1e-7f);
    }
  }
}

TEST(Quantize, TensorQuantizationRoundTrip) {
  const Tensor x = nc::testref::random_tensor({300}, 13);
  std::vector<std::int8_t> q(300);
  const float scale = nc::core::quantize_tensor(x.data(), 300, q.data());
  for (std::int64_t i = 0; i < 300; ++i) {
    EXPECT_LE(std::abs(static_cast<float>(q[i]) * scale - x[i]),
              scale * 0.5f + 1e-7f);
  }
}

TEST(Quantize, ZeroTensorQuantizesToZeros) {
  const Tensor x({16});
  std::vector<std::int8_t> q(16);
  const float scale = nc::core::quantize_tensor(x.data(), 16, q.data());
  EXPECT_GT(scale, 0.f);
  for (auto v : q) EXPECT_EQ(v, 0);
}

TEST(Quantize, QgemmMatchesFloatGemmWithinQuantError) {
  const std::int64_t m = 6, n = 50, k = 40;
  const Tensor a = nc::testref::random_tensor({m, k}, 17);
  const Tensor b = nc::testref::random_tensor({k, n}, 19);
  Tensor c_ref({m, n});
  nc::testref::naive_gemm(false, false, m, n, k, 1.f, a.data(), k, b.data(), n,
                          0.f, c_ref.data(), n);

  const auto qa = nc::core::quantize_rows(a.data(), m, k);
  std::vector<std::int8_t> qb(static_cast<std::size_t>(k * n));
  const float b_scale = nc::core::quantize_tensor(b.data(), k * n, qb.data());
  Tensor c_q({m, n});
  nc::core::qgemm(m, n, k, qa.values.data(), qa.scales.data(), qb.data(),
                  b_scale, c_q.data(), n);

  // Per-element quantization noise ~ (|a| + |b|) / 254 accumulated over k.
  EXPECT_LT(nc::testref::max_abs_diff(c_ref, c_q), 0.02 * k);
}

TEST(Quantize, Conv2dInt8ForwardCloseToFloat) {
  nc::util::Rng rng(21);
  nc::core::Conv2d conv(4, 8, {3, 3}, {1, 1}, {1, 1}, true, rng);
  const Tensor x = nc::testref::random_tensor({2, 4, 10, 12}, 23);
  const Tensor full = conv.forward(x, Mode::kEval);
  const Tensor int8 = conv.forward(x, Mode::kEvalInt8);
  ASSERT_EQ(int8.shape(), full.shape());
  const float scale = std::max(std::abs(nc::core::max_value(full)),
                               std::abs(nc::core::min_value(full)));
  EXPECT_LT(nc::testref::max_abs_diff(full, int8),
            0.05 * (static_cast<double>(scale) + 1.0));
}

TEST(Quantize, EncoderInt8CodeCloseToFloat) {
  nc::tpc::DatasetConfig cfg;
  cfg.n_events = 2;
  cfg.geometry.scale = 0.125;
  const auto ds = nc::tpc::WedgeDataset::generate(cfg);
  auto model = nc::bcae::make_bcae_2d(nc::bcae::Bcae2dConfig{}, 25);
  const Tensor x = ds.batch_2d(ds.train(), {0, 1});
  const Tensor full = model.encode(x, Mode::kEval);
  const Tensor int8 = model.encode(x, Mode::kEvalInt8);
  const float scale = std::max(std::abs(nc::core::max_value(full)),
                               std::abs(nc::core::min_value(full)));
  // int8 error accumulates across ~10 conv layers; 10% of dynamic range is
  // the loose-but-meaningful contract (the ablation bench quantifies the
  // accuracy cost on real reconstructions).
  EXPECT_LT(nc::testref::max_abs_diff(full, int8),
            0.1 * (static_cast<double>(scale) + 1.0));
}

TEST(Quantize, Int8CacheInvalidationPicksUpNewWeights) {
  nc::util::Rng rng(27);
  nc::core::Conv2d conv(1, 1, {1, 1}, {1, 1}, {0, 0}, false, rng);
  const Tensor x = Tensor::full({1, 1, 2, 2}, 1.f);
  const Tensor before = conv.forward(x, Mode::kEvalInt8);
  std::vector<nc::core::Param*> params;
  conv.collect_params(params);
  params[0]->value[0] *= 2.f;
  conv.invalidate_half_cache();
  const Tensor after = conv.forward(x, Mode::kEvalInt8);
  EXPECT_NEAR(after[0], before[0] * 2.f,
              static_cast<double>(std::abs(before[0])) * 0.05 + 1e-4);
}

TEST(Prune, ZeroesRequestedFractionGlobally) {
  nc::util::Rng rng(31);
  nc::core::Conv2d conv(8, 8, {3, 3}, {1, 1}, {1, 1}, true, rng);
  std::vector<nc::core::Param*> params;
  conv.collect_params(params);
  EXPECT_NEAR(nc::core::weight_sparsity(params), 0.0, 1e-9);

  const auto zeroed = nc::core::prune_by_magnitude(params, 0.5);
  const double sparsity = nc::core::weight_sparsity(params);
  EXPECT_NEAR(sparsity, 0.5, 0.02);
  EXPECT_GT(zeroed, 0);
  // Biases (1-D) must be untouched.
  for (std::int64_t i = 0; i < params[1]->value.numel(); ++i) {
    EXPECT_NE(params[1]->value[i], 0.f);
  }
}

TEST(Prune, KeepsLargestWeights) {
  nc::core::Param p("w", Tensor::from_vector({2, 4}, {0.1f, -5.f, 0.2f, 3.f,
                                                      -0.05f, 1.f, -0.3f, 2.f}));
  nc::core::prune_by_magnitude({&p}, 0.5);
  // The four largest magnitudes (5, 3, 2, 1) survive.
  EXPECT_EQ(p.value[0], 0.f);
  EXPECT_EQ(p.value[1], -5.f);
  EXPECT_EQ(p.value[2], 0.f);
  EXPECT_EQ(p.value[3], 3.f);
  EXPECT_EQ(p.value[4], 0.f);
  EXPECT_EQ(p.value[5], 1.f);
  EXPECT_EQ(p.value[6], 0.f);
  EXPECT_EQ(p.value[7], 2.f);
}

TEST(Prune, PrunedModelStillRuns) {
  auto model = nc::bcae::make_bcae_ht(35);
  const auto params = model.encoder_params();
  nc::core::prune_by_magnitude(params, 0.7);
  model.invalidate_half_cache();
  EXPECT_NEAR(nc::core::weight_sparsity(params), 0.7, 0.02);
  const Tensor x = nc::testref::random_tensor({1, 1, 16, 32, 32}, 37);
  const Tensor code = model.encode(x, Mode::kEval);
  EXPECT_EQ(code.dim(1), 8);
  for (std::int64_t i = 0; i < code.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(code[i]));
  }
}

TEST(Prune, FractionZeroIsNoOp) {
  nc::util::Rng rng(41);
  nc::core::Conv2d conv(2, 2, {3, 3}, {1, 1}, {1, 1}, false, rng);
  std::vector<nc::core::Param*> params;
  conv.collect_params(params);
  EXPECT_EQ(nc::core::prune_by_magnitude(params, 0.0), 0);
  EXPECT_EQ(nc::core::prune_by_magnitude(params, -1.0), 0);
}

}  // namespace
