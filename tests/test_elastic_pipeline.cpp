/// \file test_elastic_pipeline.cpp
/// \brief Elastic worker pool inside StreamPipeline: manual and
///        controller-driven scaling, under both intake layers.
///
/// The scaling *policy* is tested deterministically in test_autoscale.cpp;
/// this suite covers the impure half — the pipeline keeping every existing
/// contract (loss-free ordered output, spill replay, stats accounting)
/// while the live worker set changes underneath it.  The concurrency tests
/// drive scaling through the manual entry point (`scale_interval_s = 0`,
/// no controller thread) from a dedicated scaler thread, so they stress the
/// park/unpark machinery as hard as possible without depending on
/// controller timing; the controller tests at the bottom only assert
/// eventual reactions via spin_until.  Runs under TSan (tsan label) and
/// again with NC_TOPOLOGY=off (the ".notopo" ctest variant) to exercise
/// the no-affinity degradation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tests/stream_test_utils.hpp"
#include "util/serialize.hpp"
#include "util/topology.hpp"

namespace {

using nc::codec::ScaleEvent;
using nc::codec::StreamOptions;
using nc::testutil::IntPipeline;

/// Elastic manual-mode base: pool of 4, floor 1, no controller thread.
StreamOptions elastic_options(nc::codec::IntakeMode intake) {
  StreamOptions opt;
  opt.intake = intake;
  opt.elastic = true;
  opt.scale_interval_s = 0.0;  // manual: scaling only via set_live_workers
  opt.min_workers = 1;
  opt.max_workers = 4;
  opt.n_workers = 4;
  return opt;
}

IntPipeline::SpillCodec int_spill_codec() {
  return {[](const int& v) {
            return std::string(reinterpret_cast<const char*>(&v), sizeof(int));
          },
          [](const std::string& s) {
            if (s.size() != sizeof(int)) {
              throw nc::util::SerializeError("spilled int size mismatch");
            }
            int v = 0;
            std::memcpy(&v, s.data(), sizeof(int));
            return v;
          }};
}

std::string fresh_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "-" + info->name();
  std::replace(name.begin(), name.end(), '/', '-');
  return ::testing::TempDir() + "nc-elastic-" + name;
}

/// Cycles the live target through up/down transitions until stopped.
class ScalerThread {
 public:
  template <typename Pipeline>
  explicit ScalerThread(Pipeline& pipeline) {
    thread_ = std::thread([this, &pipeline] {
      const std::size_t targets[] = {1, 4, 2, 3};
      std::size_t i = 0;
      while (!stop_.load(std::memory_order_acquire)) {
        pipeline.set_live_workers(targets[i++ % 4]);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }
  ~ScalerThread() { stop(); }
  void stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

class ElasticPipelineIntake : public nc::testutil::IntakeParamTest {};

TEST_P(ElasticPipelineIntake, ManualScaleClampsAndCounts) {
  StreamOptions opt = elastic_options(GetParam());
  std::mutex events_mutex;
  std::vector<ScaleEvent> events;
  opt.on_scale_event = [&](const ScaleEvent& e) {
    std::lock_guard<std::mutex> lock(events_mutex);
    events.push_back(e);
  };
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt, [](std::vector<int>&& in) { return std::move(in); }, nullptr,
      [&](std::uint64_t, int&&) { received.fetch_add(1); });
  EXPECT_EQ(pipeline.live_workers(), 4u);
  EXPECT_EQ(pipeline.set_live_workers(99), 4u) << "clamped to max_workers";
  EXPECT_EQ(pipeline.set_live_workers(0), 1u) << "clamped to min_workers";
  EXPECT_EQ(pipeline.live_workers(), 1u);
  EXPECT_EQ(pipeline.set_live_workers(3), 3u);
  for (int i = 0; i < 32; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, 32);
  EXPECT_EQ(stats.wedges_dropped, 0);
  // 4 -> 1 -> 3: one down, one up; extremes recorded.
  EXPECT_EQ(stats.scale_down_events, 1);
  EXPECT_EQ(stats.scale_up_events, 1);
  EXPECT_EQ(stats.workers_lwm, 1);
  EXPECT_EQ(stats.workers_hwm, 4);
  EXPECT_GE(stats.avg_live_workers, 1.0);
  EXPECT_LE(stats.avg_live_workers, 4.0);
  std::lock_guard<std::mutex> lock(events_mutex);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].from, 4u);
  EXPECT_EQ(events[0].to, 1u);
  EXPECT_STREQ(events[0].reason, "manual");
  EXPECT_EQ(events[1].from, 1u);
  EXPECT_EQ(events[1].to, 3u);
  EXPECT_GE(events[1].t_s, events[0].t_s);
}

TEST_P(ElasticPipelineIntake, StaticPoolIgnoresScaling) {
  StreamOptions opt = base_options();
  opt.n_workers = 2;
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt, [](std::vector<int>&& in) { return std::move(in); }, nullptr,
      [&](std::uint64_t, int&&) { received.fetch_add(1); });
  // The static range is a point: every request clamps back to n_workers.
  EXPECT_EQ(pipeline.set_live_workers(1), 2u);
  EXPECT_EQ(pipeline.set_live_workers(8), 2u);
  EXPECT_EQ(pipeline.live_workers(), 2u);
  for (int i = 0; i < 16; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, 16);
  EXPECT_EQ(stats.scale_up_events, 0);
  EXPECT_EQ(stats.scale_down_events, 0);
  EXPECT_EQ(stats.workers_hwm, 2);
  EXPECT_EQ(stats.workers_lwm, 2);
  EXPECT_NEAR(stats.avg_live_workers, 2.0, 1e-9);
  EXPECT_EQ(stats.per_worker.size(), 2u) << "static pool size unchanged";
}

TEST_P(ElasticPipelineIntake, OrderedIdentitySurvivesConcurrentScaling) {
  // The hard invariant: the bounded reorder gate's escape condition counts
  // live poppers, and parking removes a worker from that count — so ordered
  // emission must stay a loss-free identity while a scaler thread yo-yos
  // the live set under load.
  StreamOptions opt = elastic_options(GetParam());
  opt.queue_capacity = 16;
  opt.batch_size = 4;
  opt.ordered = true;
  opt.reorder_capacity = 8;  // tight bound: force gate traffic
  nc::testutil::SeqLog log;
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t seq, int&&) { log.push(seq); });
  const int n = 512;
  {
    ScalerThread scaler(pipeline);
    for (int i = 0; i < n; ++i) pipeline.submit(i);
    // Scaler keeps running while finish() drains and joins: teardown must
    // tolerate concurrent set_live_workers too.
    const auto stats = pipeline.finish();
    EXPECT_EQ(stats.wedges_compressed, n);
    EXPECT_EQ(stats.wedges_dropped, 0);
    EXPECT_EQ(stats.wedges_failed, 0);
    EXPECT_GE(stats.scale_up_events + stats.scale_down_events, 1);
  }
  nc::testutil::expect_ordered_identity(log.snapshot(),
                                        static_cast<std::uint64_t>(n));
}

TEST_P(ElasticPipelineIntake, UnorderedLossFreeUnderConcurrentScaling) {
  StreamOptions opt = elastic_options(GetParam());
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t, int&&) { received.fetch_add(1); });
  const int n = 512;
  {
    ScalerThread scaler(pipeline);
    for (int i = 0; i < n; ++i) pipeline.submit(i);
    const auto stats = pipeline.finish();
    EXPECT_EQ(stats.wedges_in, n);
    EXPECT_EQ(stats.wedges_compressed, n);
    EXPECT_EQ(stats.wedges_dropped, 0);
  }
  EXPECT_EQ(received.load(), n);
}

TEST_P(ElasticPipelineIntake, SpillReplaySurvivesConcurrentScaling) {
  // Spill + replay + ordered reorder + live set changing — every moving
  // part of the pipeline at once, with loss-freedom as the oracle.
  StreamOptions opt = elastic_options(GetParam());
  opt.queue_capacity = 4;
  opt.batch_size = 2;
  opt.ordered = true;
  opt.reorder_capacity = 8;
  opt.spill_dir = fresh_dir();
  nc::testutil::SeqLog log;
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t seq, int&&) { log.push(seq); },
      int_spill_codec());
  const int n = 128;
  {
    ScalerThread scaler(pipeline);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(pipeline.try_submit(i)) << "accepted or spilled, never lost";
    }
    const auto stats = pipeline.finish();
    EXPECT_EQ(stats.wedges_in, n);
    EXPECT_EQ(stats.wedges_compressed, n);
    EXPECT_EQ(stats.wedges_dropped, 0);
    EXPECT_EQ(stats.wedges_replayed, stats.wedges_spilled);
  }
  nc::testutil::expect_ordered_identity(log.snapshot(),
                                        static_cast<std::uint64_t>(n));
}

NC_INSTANTIATE_BOTH_INTAKES(ElasticPipelineIntake);

// --- controller thread (eventual assertions via spin_until) ----------------

TEST(ElasticController, ScalesUpUnderSustainedBacklog) {
  StreamOptions opt;
  opt.elastic = true;
  opt.min_workers = 1;
  opt.max_workers = 4;
  opt.n_workers = 1;
  opt.queue_capacity = 8;
  opt.batch_size = 1;
  opt.scale_interval_s = 0.001;
  opt.scale_window = 2;
  opt.scale_cooldown = 1;
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t, int&&) { received.fetch_add(1); });
  const int n = 400;
  for (int i = 0; i < n; ++i) pipeline.submit(i);  // keeps the intake full
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_GE(stats.scale_up_events, 1) << "backlog never triggered scale-up";
  EXPECT_GE(stats.workers_hwm, 2);
  EXPECT_EQ(stats.workers_lwm, 1);
}

TEST(ElasticController, ScalesDownWhenQuiet) {
  StreamOptions opt;
  opt.elastic = true;
  opt.min_workers = 1;
  opt.max_workers = 4;
  opt.n_workers = 4;  // born at the ceiling, nothing to do
  opt.scale_interval_s = 0.001;
  opt.scale_window = 2;
  opt.scale_cooldown = 0;
  IntPipeline pipeline(
      opt, [](std::vector<int>&& in) { return std::move(in); }, nullptr,
      [](std::uint64_t, int&&) {});
  EXPECT_TRUE(nc::testutil::spin_until(
      [&] { return pipeline.live_workers() <= 2; }))
      << "idle pool never scaled down";
  const auto stats = pipeline.finish();
  EXPECT_GE(stats.scale_down_events, 1);
  EXPECT_LE(stats.workers_lwm, 2);
}

TEST(ElasticController, SpillJumpsStraightToCeiling) {
  // Window and cooldown far too long for the gradual path inside the test
  // budget: only the spill emergency jump can raise the target quickly.
  StreamOptions opt;
  opt.elastic = true;
  opt.min_workers = 1;
  opt.max_workers = 4;
  opt.n_workers = 1;
  opt.queue_capacity = 4;
  opt.batch_size = 2;
  opt.scale_interval_s = 0.001;
  opt.scale_window = 1000;
  opt.scale_cooldown = 1000;
  opt.spill_dir = fresh_dir();
  std::mutex events_mutex;
  std::vector<std::string> reasons;
  opt.on_scale_event = [&](const ScaleEvent& e) {
    std::lock_guard<std::mutex> lock(events_mutex);
    reasons.push_back(e.reason);
  };
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t, int&&) { received.fetch_add(1); },
      int_spill_codec());
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(pipeline.try_submit(i));  // overflow lands on disk
  }
  EXPECT_TRUE(nc::testutil::spin_until(
      [&] { return pipeline.live_workers() == 4; }))
      << "spill never forced the ceiling";
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_GT(stats.wedges_spilled, 0) << "test never exercised the spill path";
  std::lock_guard<std::mutex> lock(events_mutex);
  EXPECT_NE(std::find(reasons.begin(), reasons.end(), "spill"), reasons.end())
      << "no scale event carried the spill reason";
}

// --- pinning / topology degradation ----------------------------------------

TEST(ElasticPinning, PinnedCountMatchesTopologySupport) {
  StreamOptions opt;
  opt.n_workers = 2;
  opt.pin_workers = true;
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt, [](std::vector<int>&& in) { return std::move(in); }, nullptr,
      [&](std::uint64_t, int&&) { received.fetch_add(1); });
  for (int i = 0; i < 16; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, 16);
  const auto& topo = nc::util::system_topology();
  if (topo.affinity_supported) {
    EXPECT_EQ(stats.workers_pinned, 2);
    EXPECT_EQ(pipeline.placement().size(), 2u);
  } else {
    // Graceful no-op (non-Linux, or the NC_TOPOLOGY=off ctest variant):
    // nothing pinned, placement empty, pipeline fully functional.
    EXPECT_EQ(stats.workers_pinned, 0);
    EXPECT_TRUE(pipeline.placement().empty());
  }
}

}  // namespace
