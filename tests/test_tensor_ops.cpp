/// Tensor container semantics and elementwise/reduction kernels.
#include <gtest/gtest.h>

#include "core/ops.hpp"
#include "core/tensor.hpp"
#include "tests/reference.hpp"

namespace {

using nc::core::Shape;
using nc::core::Tensor;

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4, 5});
  EXPECT_EQ(t.numel(), 60);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.f);
}

TEST(Tensor, FromVectorAndAt) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at({0, 0}), 1.f);
  EXPECT_EQ(t.at({0, 2}), 3.f);
  EXPECT_EQ(t.at({1, 0}), 4.f);
  EXPECT_EQ(t.at({1, 2}), 6.f);
}

TEST(Tensor, FromVectorSizeMismatchThrows) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, AtOutOfRangeThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0, -1}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);  // rank mismatch
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t({2, 6});
  Tensor r = t.reshaped({3, 4});
  EXPECT_TRUE(t.shares_storage_with(r));
  r[5] = 42.f;
  EXPECT_EQ(t[5], 42.f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::full({4}, 1.f);
  Tensor c = t.clone();
  EXPECT_FALSE(t.shares_storage_with(c));
  c[0] = 9.f;
  EXPECT_EQ(t[0], 1.f);
}

TEST(Tensor, HalfTensorRoundTrip) {
  Tensor t = nc::testref::random_tensor({128}, 5);
  auto h = nc::core::HalfTensor::from_float(t);
  Tensor back = h.to_float();
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(back[i], t[i], 1e-3);
  }
}

TEST(Ops, FillScaleAxpy) {
  Tensor t({100});
  nc::core::fill(t, 2.f);
  nc::core::scale(t, 3.f);
  EXPECT_EQ(t[50], 6.f);
  Tensor y({100});
  nc::core::axpy(0.5f, t, y);
  EXPECT_EQ(y[0], 3.f);
  nc::core::add_scalar(y, 1.f);
  EXPECT_EQ(y[99], 4.f);
}

TEST(Ops, AddSubMul) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor b = Tensor::from_vector({3}, {10, 20, 30});
  const Tensor s = nc::core::add(a, b);
  EXPECT_EQ(s[1], 22.f);
  const Tensor d = nc::core::sub(b, a);
  EXPECT_EQ(d[2], 27.f);
  const Tensor m = nc::core::mul(a, b);
  EXPECT_EQ(m[0], 10.f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a({3}), b({4});
  EXPECT_THROW(nc::core::add(a, b), std::invalid_argument);
  EXPECT_THROW(nc::core::mean_abs_diff(a, b), std::invalid_argument);
}

TEST(Ops, Reductions) {
  Tensor t = Tensor::from_vector({5}, {1, -2, 3, -4, 5});
  EXPECT_DOUBLE_EQ(nc::core::sum(t), 3.0);
  EXPECT_DOUBLE_EQ(nc::core::mean(t), 0.6);
  EXPECT_EQ(nc::core::max_value(t), 5.f);
  EXPECT_EQ(nc::core::min_value(t), -4.f);
  EXPECT_EQ(nc::core::count_greater(t, 0.f), 3);
  EXPECT_EQ(nc::core::count_greater(t, 4.9f), 1);
}

TEST(Ops, MeanAbsDiff) {
  Tensor a = Tensor::from_vector({4}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({4}, {2, 2, 1, 4});
  EXPECT_DOUBLE_EQ(nc::core::mean_abs_diff(a, b), (1 + 0 + 2 + 0) / 4.0);
}

TEST(Ops, LargeTensorParallelReductionMatchesSerial) {
  // Exercise the OpenMP reduction path (> 2^16 elements).
  Tensor t = nc::testref::random_tensor({1 << 18}, 77);
  double serial = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    serial += static_cast<double>(t[i]);
  }
  EXPECT_NEAR(nc::core::sum(t), serial, 1e-6 * static_cast<double>(t.numel()));
}

}  // namespace
