/// Activations, pooling, upsampling, normalization, residual blocks,
/// sequential containers: values + gradient checks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/act.hpp"
#include "core/block.hpp"
#include "core/conv.hpp"
#include "core/gradcheck.hpp"
#include "core/norm.hpp"
#include "core/pool.hpp"
#include "tests/reference.hpp"

namespace {

using nc::core::Mode;
using nc::core::Shape;
using nc::core::Tensor;
using nc::testref::random_tensor;

TEST(Activations, ReLUValues) {
  nc::core::ReLU relu;
  const Tensor x = Tensor::from_vector({4}, {-2, -0.5, 0, 3});
  const Tensor y = relu.forward(x, Mode::kEval);
  EXPECT_EQ(y[0], 0.f);
  EXPECT_EQ(y[1], 0.f);
  EXPECT_EQ(y[2], 0.f);
  EXPECT_EQ(y[3], 3.f);
}

TEST(Activations, LeakyReLUValues) {
  nc::core::LeakyReLU leaky(0.1f);
  const Tensor x = Tensor::from_vector({3}, {-2, 0, 4});
  const Tensor y = leaky.forward(x, Mode::kEval);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[2], 4.f);
}

TEST(Activations, SigmoidValues) {
  nc::core::Sigmoid sig;
  const Tensor x = Tensor::from_vector({3}, {0.f, 100.f, -100.f});
  const Tensor y = sig.forward(x, Mode::kEval);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_NEAR(y[1], 1.f, 1e-6);
  EXPECT_NEAR(y[2], 0.f, 1e-6);
}

TEST(Activations, OutputTransformPinsAboveOffset) {
  // T(x) = 6 + 3 exp(x): every output must exceed the zero-suppression
  // edge at 6 (§2.2) regardless of input.
  nc::core::OutputTransform t;
  const Tensor x = Tensor::from_vector({4}, {-50.f, -1.f, 0.f, 50.f});
  const Tensor y = t.forward(x, Mode::kEval);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_GE(y[i], 6.f);
  EXPECT_FLOAT_EQ(y[2], 9.f);  // 6 + 3*e^0
  // Clamp keeps untrained outputs finite.
  EXPECT_TRUE(std::isfinite(y[3]));
}

TEST(Activations, GradChecks) {
  // Keep inputs away from the ReLU-family kink at 0: a finite difference
  // straddling the kink would disagree with either one-sided derivative.
  Tensor x = random_tensor({2, 3, 4}, 31);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = (x[i] >= 0.f ? x[i] + 0.1f : x[i] - 0.1f);
  }
  {
    nc::core::ReLU layer;
    EXPECT_LT(nc::core::gradcheck_layer(layer, x, 201, 1e-3).max_rel_err, 5e-2);
  }
  {
    nc::core::LeakyReLU layer(0.01f);
    EXPECT_LT(nc::core::gradcheck_layer(layer, x, 202, 1e-3).max_rel_err, 5e-2);
  }
  {
    nc::core::Sigmoid layer;
    EXPECT_LT(nc::core::gradcheck_layer(layer, x, 203).max_rel_err, 5e-2);
  }
  {
    nc::core::OutputTransform layer;
    EXPECT_LT(nc::core::gradcheck_layer(layer, x, 204).max_rel_err, 5e-2);
  }
}

TEST(AvgPool2d, Values) {
  nc::core::AvgPool2d pool(2);
  const Tensor x = Tensor::from_vector({1, 1, 2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor y = pool.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], (1 + 2 + 5 + 6) / 4.f);
  EXPECT_FLOAT_EQ(y[1], (3 + 4 + 7 + 8) / 4.f);
}

TEST(AvgPool2d, RejectsIndivisibleInput) {
  nc::core::AvgPool2d pool(2);
  EXPECT_THROW(pool.forward(Tensor({1, 1, 3, 4}), Mode::kEval),
               std::invalid_argument);
}

TEST(Upsample2d, NearestNeighbourValues) {
  nc::core::Upsample2d up(2);
  const Tensor x = Tensor::from_vector({1, 1, 1, 2}, {3, 7});
  const Tensor y = up.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 4}));
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 3.f);
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 3.f);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 2}), 7.f);
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 3}), 7.f);
}

TEST(PoolUpsample, GradChecks) {
  {
    nc::core::AvgPool2d layer(2);
    const Tensor x = random_tensor({2, 2, 4, 4}, 32);
    EXPECT_LT(nc::core::gradcheck_layer(layer, x, 205).max_rel_err, 5e-2);
  }
  {
    nc::core::Upsample2d layer(2);
    const Tensor x = random_tensor({2, 2, 3, 3}, 33);
    EXPECT_LT(nc::core::gradcheck_layer(layer, x, 206).max_rel_err, 5e-2);
  }
  {
    nc::core::AvgPool3d layer({1, 2, 2});
    const Tensor x = random_tensor({1, 2, 3, 4, 4}, 34);
    EXPECT_LT(nc::core::gradcheck_layer(layer, x, 207).max_rel_err, 5e-2);
  }
  {
    nc::core::Upsample3d layer({1, 2, 2});
    const Tensor x = random_tensor({1, 2, 2, 3, 3}, 35);
    EXPECT_LT(nc::core::gradcheck_layer(layer, x, 208).max_rel_err, 5e-2);
  }
}

TEST(Upsample3d, AnisotropicScales) {
  nc::core::Upsample3d up({1, 2, 3});
  const Tensor x = random_tensor({1, 2, 2, 2, 2}, 36);
  const Tensor y = up.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2, 4, 6}));
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 3, 5}), x.at({0, 0, 1, 1, 1}));
}

TEST(InstanceNorm, NormalizesPerChannelPerSample) {
  nc::util::Rng rng(37);
  nc::core::InstanceNorm norm(3);
  const Tensor x = random_tensor({2, 3, 8, 8}, 38);
  const Tensor y = norm.forward(x, Mode::kEval);
  // gamma=1, beta=0 at init: each (n, c) plane has ~0 mean and ~unit var.
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t c = 0; c < 3; ++c) {
      double s = 0, s2 = 0;
      for (std::int64_t i = 0; i < 64; ++i) {
        const double v = static_cast<double>(y[((n * 3 + c) * 64) + i]);
        s += v;
        s2 += v * v;
      }
      EXPECT_NEAR(s / 64.0, 0.0, 1e-4);
      EXPECT_NEAR(s2 / 64.0, 1.0, 1e-2);
    }
  }
}

TEST(InstanceNorm, GradCheck) {
  nc::core::InstanceNorm norm(2);
  const Tensor x = random_tensor({2, 2, 3, 5}, 39);
  const auto res = nc::core::gradcheck_layer(norm, x, 209, 1e-3);
  EXPECT_LT(res.max_rel_err, 5e-2) << "worst: " << res.worst_param;
}

TEST(InstanceNorm, WorksOn5dInput) {
  nc::core::InstanceNorm norm(2);
  const Tensor x = random_tensor({1, 2, 3, 4, 5}, 40);
  const Tensor y = norm.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(ResBlock, IdentitySkipWhenChannelsMatch) {
  nc::util::Rng rng(41);
  auto block = nc::core::ResBlock::make_2d(4, 4, 3, 1, false, rng);
  std::vector<nc::core::Param*> ps;
  block->collect_params(ps);
  // Two convs only (w + b each): no skip projection.
  EXPECT_EQ(ps.size(), 4u);
}

TEST(ResBlock, ProjectionSkipWhenChannelsDiffer) {
  nc::util::Rng rng(42);
  auto block = nc::core::ResBlock::make_2d(2, 4, 3, 1, false, rng);
  std::vector<nc::core::Param*> ps;
  block->collect_params(ps);
  EXPECT_EQ(ps.size(), 6u);  // conv1 + conv2 + skip
}

TEST(ResBlock, GradCheck2d) {
  nc::util::Rng rng(43);
  auto block = nc::core::ResBlock::make_2d(2, 3, 3, 1, false, rng);
  const Tensor x = random_tensor({1, 2, 4, 4}, 44);
  const auto res = nc::core::gradcheck_layer(*block, x, 210, 1e-3);
  EXPECT_LT(res.max_rel_err, 8e-2) << "worst: " << res.worst_param;
}

TEST(ResBlock, GradCheck3dWithNorm) {
  nc::util::Rng rng(45);
  auto block = nc::core::ResBlock::make_3d(2, 2, {3, 3, 3}, {1, 1, 1},
                                           /*use_norm=*/true, rng);
  const Tensor x = random_tensor({1, 2, 3, 4, 4}, 46);
  const auto res = nc::core::gradcheck_layer(*block, x, 211, 1e-3);
  // Loose bound: InstanceNorm centers pre-activations at 0, so a few finite
  // differences inevitably straddle the LeakyReLU kink; the constituent
  // layers are each gradchecked tightly on their own above.
  EXPECT_LT(res.max_rel_err, 0.3) << "worst: " << res.worst_param;
}

TEST(ResBlock, ParamCountMatchesArithmetic) {
  // 32 -> 32, k=3: two convs of 32*32*9 + 32 = 9248 each => 18 496.
  nc::util::Rng rng(47);
  auto block = nc::core::ResBlock::make_2d(32, 32, 3, 1, false, rng);
  EXPECT_EQ(block->param_count(), 18496);
}

TEST(Sequential, ComposesAndBackpropagates) {
  nc::util::Rng rng(48);
  auto seq = std::make_unique<nc::core::Sequential>("test_seq");
  seq->add(std::make_unique<nc::core::Conv2d>(
      2, 3, std::array<std::int64_t, 2>{3, 3}, std::array<std::int64_t, 2>{1, 1},
      std::array<std::int64_t, 2>{1, 1}, true, rng));
  seq->add(std::make_unique<nc::core::LeakyReLU>());
  seq->add(std::make_unique<nc::core::AvgPool2d>(2));
  const Tensor x = random_tensor({1, 2, 4, 4}, 49);
  const Tensor y = seq->forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_EQ(seq->size(), 3u);

  const auto res = nc::core::gradcheck_layer(*seq, x, 212);
  EXPECT_LT(res.max_rel_err, 5e-2) << "worst: " << res.worst_param;
}

}  // namespace
