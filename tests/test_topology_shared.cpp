/// \file test_topology_shared.cpp
/// \brief Two pipelines sharing one process topology: the system_topology()
///        cache must be safe under concurrent first use, and concurrent
///        claim_cpu_slots() callers must never double-book a core slot.
///
/// This suite runs in its own binary so the FIRST touch of the topology
/// cache happens here, concurrently — linking it into an existing suite
/// would let some earlier test warm the cache single-threaded and the race
/// would never be exercised.  The suite carries the `tsan` label; its
/// `notopo` variant (NC_TOPOLOGY=off) covers the everything-disabled path
/// where every claim is empty and every pipeline runs unpinned.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "codec/stream_pipeline.hpp"
#include "tests/stream_test_utils.hpp"
#include "util/topology.hpp"

namespace {

using nc::testutil::IntPipeline;
using nc::util::CpuInfo;
using nc::util::system_topology;

/// MUST run first in this binary: many threads race the topology cache's
/// one-time detection.  Every thread must observe the same fully-built
/// object (same address, same contents) — a torn or doubly-run detection
/// shows up here as a TSan report or a mismatched snapshot.
TEST(SharedTopology, ConcurrentFirstUseYieldsOneTopology) {
  const int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<const nc::util::Topology*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        // busy-spin so all threads hit the cache as close together as we
        // can arrange
      }
      seen[static_cast<std::size_t>(t)] = &system_topology();
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0])
        << "thread " << t << " saw a different Topology object";
  }
  ASSERT_NE(seen[0], nullptr);
  EXPECT_GE(seen[0]->cpus.size(), seen[0]->affinity_supported ? 1u : 0u);
  EXPECT_GE(seen[0]->n_nodes, 1);
}

TEST(SharedTopology, ConcurrentClaimsNeverOverlapUntilWrap) {
  // Concurrent claimers must get non-overlapping slot runs as long as the
  // combined claim fits in the CPU set; past that the cursor wraps by
  // design and overlap is legal.
  const auto& topo = system_topology();
  if (!topo.affinity_supported || topo.cpus.empty()) {
    EXPECT_TRUE(nc::util::claim_cpu_slots(4).empty())
        << "claims must be empty when affinity is unavailable";
    GTEST_SKIP() << "affinity unsupported or disabled; nothing to book";
  }
  const std::size_t per_claim = 2;
  const std::size_t n_claimers = topo.cpus.size() / per_claim;
  if (n_claimers < 2) {
    GTEST_SKIP() << "needs >= 4 allowed CPUs to see two disjoint claims";
  }
  std::vector<std::vector<CpuInfo>> claims(n_claimers);
  {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < n_claimers; ++c) {
      threads.emplace_back(
          [&, c] { claims[c] = nc::util::claim_cpu_slots(per_claim); });
    }
    for (auto& t : threads) t.join();
  }
  // Claims are consecutive cursor ranges mapped mod cpus.size(): two slots
  // collide only when their indices differ by a full pass, and this test's
  // combined claim (n_claimers * per_claim <= cpus.size()) never spans one —
  // wherever earlier tests left the cursor.  So every booked cpu is unique.
  std::multiset<int> booked;
  for (const auto& claim : claims) {
    ASSERT_EQ(claim.size(), per_claim);
    for (const auto& slot : claim) booked.insert(slot.cpu);
  }
  for (const int cpu : std::set<int>(booked.begin(), booked.end())) {
    EXPECT_EQ(booked.count(cpu), 1u) << "cpu " << cpu << " double-booked";
  }
}

TEST(SharedTopology, TwoPinnedPipelinesGetDisjointCores) {
  // The regression this PR's scheduler work exposed: two pipelines built in
  // one process must not both pin worker 0 to cpu 0.  Skipped (vacuous)
  // when there are not enough cores for two disjoint pools.
  const auto& topo = system_topology();
  const std::size_t kWorkers = 2;
  nc::codec::StreamOptions opt;
  opt.n_workers = kWorkers;
  opt.max_workers = kWorkers;
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.pin_workers = true;

  std::atomic<int> sink_count{0};
  const auto make = [&] {
    return std::make_unique<IntPipeline>(
        opt,
        [](std::vector<int>&& batch) {
          std::vector<int> out;
          for (int v : batch) out.push_back(v + 1);
          return out;
        },
        [](const int&) { return std::size_t{0}; },
        [&](std::uint64_t, int&&) { sink_count.fetch_add(1); });
  };
  // Build both pipelines concurrently: their claim_cpu_slots calls race.
  std::unique_ptr<IntPipeline> a;
  std::unique_ptr<IntPipeline> b;
  {
    std::thread ta([&] { a = make(); });
    std::thread tb([&] { b = make(); });
    ta.join();
    tb.join();
  }
  for (int i = 0; i < 16; ++i) {
    a->submit(i);
    b->submit(i);
  }
  if (!topo.affinity_supported || topo.cpus.empty()) {
    EXPECT_TRUE(a->placement().empty());
    EXPECT_TRUE(b->placement().empty());
  } else if (topo.cpus.size() >= 2 * kWorkers) {
    ASSERT_EQ(a->placement().size(), kWorkers);
    ASSERT_EQ(b->placement().size(), kWorkers);
    std::set<int> cores_a;
    std::set<int> cores_b;
    for (const auto& slot : a->placement()) cores_a.insert(slot.cpu);
    for (const auto& slot : b->placement()) cores_b.insert(slot.cpu);
    // The two pools' claims are consecutive cursor ranges totalling
    // 2 * kWorkers <= cpus.size() slots, so they can never collide mod the
    // CPU count — wherever earlier tests left the cursor.
    EXPECT_EQ(cores_a.size(), kWorkers) << "pipeline A double-booked itself";
    EXPECT_EQ(cores_b.size(), kWorkers) << "pipeline B double-booked itself";
    std::vector<int> shared;
    std::set_intersection(cores_a.begin(), cores_a.end(), cores_b.begin(),
                          cores_b.end(), std::back_inserter(shared));
    EXPECT_TRUE(shared.empty())
        << "pipelines share a core despite " << topo.cpus.size()
        << " allowed CPUs";
  }
  a->finish();
  b->finish();
  EXPECT_EQ(sink_count.load(), 32);
}

}  // namespace
