/// Loss functions (focal, masked MAE), dynamic balancing, AdamW, schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "core/loss.hpp"
#include "core/optim.hpp"
#include "core/ops.hpp"
#include "tests/reference.hpp"

namespace {

using nc::core::Tensor;

/// Numerical gradient of a scalar loss w.r.t. one input tensor.
template <typename LossFn>
void check_loss_gradient(LossFn&& fn, Tensor& x, const Tensor& grad,
                         double eps = 1e-3, double tol = 2e-2) {
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double lp = fn();
    x[i] = orig - static_cast<float>(eps);
    const double lm = fn();
    x[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric,
                tol * std::max({1.0, std::abs(numeric), std::abs((double)grad[i])}))
        << "element " << i;
  }
}

TEST(FocalLoss, MatchesManualComputationGammaZero) {
  // With gamma = 0 the focal loss reduces to BCE / ln2 (log base 2).
  const Tensor logits = Tensor::from_vector({4}, {0.f, 2.f, -2.f, 1.f});
  const Tensor labels = Tensor::from_vector({4}, {1.f, 1.f, 0.f, 0.f});
  const auto focal = nc::core::focal_loss_with_logits(logits, labels, 0.f);
  const auto bce = nc::core::bce_loss_with_logits(logits, labels);
  EXPECT_NEAR(focal.value, bce.value / std::log(2.0), 1e-9);
}

TEST(FocalLoss, ManualSingleVoxel) {
  // Positive voxel, p = sigmoid(0) = 0.5, gamma = 2:
  // L = -log2(0.5) * 0.5^2 = 1 * 0.25.
  const Tensor logits = Tensor::from_vector({1}, {0.f});
  const Tensor labels = Tensor::from_vector({1}, {1.f});
  const auto l = nc::core::focal_loss_with_logits(logits, labels, 2.f);
  EXPECT_NEAR(l.value, 0.25, 1e-6);
}

TEST(FocalLoss, DownweightsEasyExamples) {
  // An easy positive (large logit) must contribute far less than a hard one.
  const Tensor easy = Tensor::from_vector({1}, {4.f});
  const Tensor hard = Tensor::from_vector({1}, {-2.f});
  const Tensor pos = Tensor::from_vector({1}, {1.f});
  const auto le = nc::core::focal_loss_with_logits(easy, pos, 2.f);
  const auto lh = nc::core::focal_loss_with_logits(hard, pos, 2.f);
  EXPECT_LT(le.value * 100, lh.value);
}

TEST(FocalLoss, GradientMatchesNumeric) {
  Tensor logits = nc::testref::random_tensor({12}, 51);
  nc::core::scale(logits, 2.f);
  Tensor labels({12});
  for (std::int64_t i = 0; i < 12; ++i) labels[i] = (i % 3 == 0) ? 1.f : 0.f;
  const auto l = nc::core::focal_loss_with_logits(logits, labels, 2.f);
  check_loss_gradient(
      [&] { return nc::core::focal_loss_with_logits(logits, labels, 2.f).value; },
      logits, l.grad);
}

TEST(FocalLoss, GammaSweepGradients) {
  for (float gamma : {0.f, 1.f, 2.f, 3.f}) {
    Tensor logits = nc::testref::random_tensor({8}, 52 + static_cast<int>(gamma));
    Tensor labels({8});
    for (std::int64_t i = 0; i < 8; ++i) labels[i] = (i % 2) ? 1.f : 0.f;
    const auto l = nc::core::focal_loss_with_logits(logits, labels, gamma);
    check_loss_gradient(
        [&] {
          return nc::core::focal_loss_with_logits(logits, labels, gamma).value;
        },
        logits, l.grad);
  }
}

TEST(BceLoss, GradientMatchesNumeric) {
  Tensor logits = nc::testref::random_tensor({10}, 53);
  Tensor labels({10});
  for (std::int64_t i = 0; i < 10; ++i) labels[i] = (i % 2) ? 1.f : 0.f;
  const auto l = nc::core::bce_loss_with_logits(logits, labels);
  check_loss_gradient(
      [&] { return nc::core::bce_loss_with_logits(logits, labels).value; },
      logits, l.grad);
}

TEST(MaskedMae, MaskSemantics) {
  // Voxels with seg logit below logit(h) are reconstructed as zero: their
  // contribution is |target| and their prediction gradient is zero.
  const Tensor pred = Tensor::from_vector({4}, {7.f, 8.f, 9.f, 6.5f});
  const Tensor target = Tensor::from_vector({4}, {7.f, 0.f, 8.f, 7.f});
  const Tensor logits = Tensor::from_vector({4}, {5.f, 5.f, -5.f, -5.f});
  const auto l = nc::core::masked_mae_loss(pred, target, logits, 0.5f);
  // voxel 0: mask on, |7-7| = 0; voxel 1: mask on, |8-0| = 8;
  // voxel 2: mask off, |0-8| = 8; voxel 3: mask off, |0-7| = 7.
  EXPECT_NEAR(l.value, (0 + 8 + 8 + 7) / 4.0, 1e-6);
  EXPECT_EQ(l.grad[2], 0.f);
  EXPECT_EQ(l.grad[3], 0.f);
  EXPECT_GT(l.grad[1], 0.f);  // over-prediction: positive gradient
}

TEST(MaskedMae, GradientMatchesNumericOnMaskedVoxels) {
  Tensor pred = nc::testref::random_tensor({10}, 54);
  nc::core::add_scalar(pred, 7.f);
  Tensor target = nc::testref::random_tensor({10}, 55);
  nc::core::add_scalar(target, 7.f);
  Tensor logits = nc::testref::random_tensor({10}, 56);
  nc::core::scale(logits, 4.f);
  const auto l = nc::core::masked_mae_loss(pred, target, logits, 0.5f);
  check_loss_gradient(
      [&] {
        return nc::core::masked_mae_loss(pred, target, logits, 0.5f).value;
      },
      pred, l.grad);
}

TEST(MaeMseLoss, ValuesAndGradients) {
  Tensor pred = Tensor::from_vector({3}, {1.f, 2.f, 3.f});
  const Tensor target = Tensor::from_vector({3}, {2.f, 2.f, 1.f});
  const auto mae = nc::core::mae_loss(pred, target);
  EXPECT_NEAR(mae.value, (1 + 0 + 2) / 3.0, 1e-6);
  const auto mse = nc::core::mse_loss(pred, target);
  EXPECT_NEAR(mse.value, (1 + 0 + 4) / 3.0, 1e-6);
  check_loss_gradient([&] { return nc::core::mse_loss(pred, target).value; },
                      pred, mse.grad);
}

TEST(ApplySegmentationMask, ThresholdBehaviour) {
  const Tensor pred = Tensor::from_vector({2}, {7.f, 8.f});
  const Tensor logits = Tensor::from_vector({2}, {0.1f, -0.1f});
  const Tensor recon = nc::core::apply_segmentation_mask(pred, logits, 0.5f);
  EXPECT_EQ(recon[0], 7.f);  // sigmoid(0.1) > 0.5
  EXPECT_EQ(recon[1], 0.f);  // sigmoid(-0.1) < 0.5
}

TEST(DynamicBalancing, CoefficientRecurrence) {
  // c_{t+1} = 0.5 c_t + (rho_r / rho_s) * 1.5, c_0 = 2000 (§2.5).
  EXPECT_NEAR(nc::core::next_seg_coefficient(2000.0, 1.0, 1.0), 1001.5, 1e-9);
  EXPECT_NEAR(nc::core::next_seg_coefficient(100.0, 0.5, 2.0), 50.0 + 6.0, 1e-9);
  // Fixed point: c* = 3 rho_r / rho_s.
  double c = 2000.0;
  for (int i = 0; i < 60; ++i) c = nc::core::next_seg_coefficient(c, 2.0, 4.0);
  EXPECT_NEAR(c, 3.0 * 4.0 / 2.0, 1e-6);
}

TEST(AdamW, ConvergesOnQuadratic) {
  // Minimize f(w) = ||w - target||^2 with AdamW (weight decay off).
  nc::core::Param w("w", Tensor({8}));
  const Tensor target = nc::testref::random_tensor({8}, 57);
  nc::core::AdamWConfig cfg;
  cfg.lr = 0.05;
  cfg.weight_decay = 0.0;
  nc::core::AdamW opt({&w}, cfg);
  for (int step = 0; step < 500; ++step) {
    for (std::int64_t i = 0; i < 8; ++i) {
      w.grad[i] = 2.f * (w.value[i] - target[i]);
    }
    opt.step();
    nc::core::zero_grads({&w});
  }
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_NEAR(w.value[i], target[i], 1e-2);
}

TEST(AdamW, WeightDecayShrinksWeightsWithZeroGrad) {
  nc::core::Param w("w", Tensor::full({4}, 10.f));
  nc::core::AdamWConfig cfg;
  cfg.lr = 0.1;
  cfg.weight_decay = 0.1;
  nc::core::AdamW opt({&w}, cfg);
  // Gradient identically zero: the only effect is decoupled decay.
  opt.step();
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value[i], 10.f * (1.f - 0.1f * 0.1f), 1e-5);
  }
}

TEST(StepDecaySchedule, PaperSchedules) {
  // BCAE++/HT: constant for 100 epochs, then x0.95 every 20 (§2.5).
  nc::core::StepDecaySchedule s3d(1e-3, 100, 20);
  EXPECT_DOUBLE_EQ(s3d.lr_for_epoch(0), 1e-3);
  EXPECT_DOUBLE_EQ(s3d.lr_for_epoch(99), 1e-3);
  EXPECT_DOUBLE_EQ(s3d.lr_for_epoch(100), 1e-3 * 0.95);
  EXPECT_DOUBLE_EQ(s3d.lr_for_epoch(119), 1e-3 * 0.95);
  EXPECT_DOUBLE_EQ(s3d.lr_for_epoch(120), 1e-3 * 0.95 * 0.95);
  // BCAE-2D: constant 50, then every 10 (§2.5).
  nc::core::StepDecaySchedule s2d(1e-3, 50, 10);
  EXPECT_DOUBLE_EQ(s2d.lr_for_epoch(49), 1e-3);
  EXPECT_DOUBLE_EQ(s2d.lr_for_epoch(50), 1e-3 * 0.95);
  EXPECT_NEAR(s2d.lr_for_epoch(499), 1e-3 * std::pow(0.95, 45), 1e-12);
}

}  // namespace
