/// Reconstruction metrics (§3.3): hand-computed cases + accumulator merging.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.hpp"
#include "tests/reference.hpp"

namespace {

using nc::core::Tensor;
using nc::metrics::evaluate_reconstruction;

TEST(Metrics, HandComputedCase) {
  // recon:  [7, 0, 8, 0]  (positives at 0, 2)
  // truth:  [7, 6.5, 0, 0] (positives at 0, 1)
  const Tensor recon = Tensor::from_vector({4}, {7.f, 0.f, 8.f, 0.f});
  const Tensor truth = Tensor::from_vector({4}, {7.f, 6.5f, 0.f, 0.f});
  const auto m = evaluate_reconstruction(recon, truth);

  EXPECT_NEAR(m.mae, (0 + 6.5 + 8 + 0) / 4.0, 1e-6);
  EXPECT_NEAR(m.mse, (0 + 6.5 * 6.5 + 64 + 0) / 4.0, 1e-5);
  EXPECT_NEAR(m.psnr, 10.0 * std::log10(100.0 / m.mse), 1e-9);
  EXPECT_EQ(m.true_positive, 1);
  EXPECT_EQ(m.predicted_positive, 2);
  EXPECT_EQ(m.actual_positive, 2);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(Metrics, PerfectReconstruction) {
  const Tensor t = Tensor::from_vector({3}, {0.f, 7.f, 9.f});
  const auto m = evaluate_reconstruction(t, t);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_TRUE(std::isinf(m.psnr));
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(Metrics, AllZeroPredictionHasZeroRecall) {
  const Tensor recon({4});
  const Tensor truth = Tensor::from_vector({4}, {7.f, 8.f, 0.f, 0.f});
  const auto m = evaluate_reconstruction(recon, truth);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);  // no predicted positives
}

TEST(Metrics, PositiveThresholdIsSix) {
  // Truth voxels at exactly <= 6 are not counted positive (log-ADC of
  // nonzero values always exceeds 6).
  const Tensor recon = Tensor::from_vector({2}, {7.f, 7.f});
  const Tensor truth = Tensor::from_vector({2}, {6.0f, 6.01f});
  const auto m = evaluate_reconstruction(recon, truth);
  EXPECT_EQ(m.actual_positive, 1);
}

TEST(Metrics, AccumulatorEqualsGlobalEvaluation) {
  const Tensor ra = nc::testref::random_tensor({1000}, 101);
  const Tensor rb = nc::testref::random_tensor({500}, 102);
  Tensor ta = nc::testref::random_tensor({1000}, 103);
  Tensor tb = nc::testref::random_tensor({500}, 104);
  // Shift some voxels above 6 so precision/recall are nontrivial.
  for (std::int64_t i = 0; i < ta.numel(); i += 7) ta[i] += 7.f;
  for (std::int64_t i = 0; i < tb.numel(); i += 5) tb[i] += 7.f;

  nc::metrics::MetricsAccumulator acc;
  acc.add(evaluate_reconstruction(ra, ta), ra.numel());
  acc.add(evaluate_reconstruction(rb, tb), rb.numel());
  const auto merged = acc.result();

  // Global evaluation over the concatenation.
  std::vector<float> rv(1500), tv(1500);
  std::copy(ra.data(), ra.data() + 1000, rv.begin());
  std::copy(rb.data(), rb.data() + 500, rv.begin() + 1000);
  std::copy(ta.data(), ta.data() + 1000, tv.begin());
  std::copy(tb.data(), tb.data() + 500, tv.begin() + 1000);
  const auto global = evaluate_reconstruction(
      Tensor::from_vector({1500}, std::move(rv)),
      Tensor::from_vector({1500}, std::move(tv)));

  EXPECT_NEAR(merged.mae, global.mae, 1e-9);
  EXPECT_NEAR(merged.mse, global.mse, 1e-9);
  EXPECT_DOUBLE_EQ(merged.precision, global.precision);
  EXPECT_DOUBLE_EQ(merged.recall, global.recall);
}

TEST(Metrics, ShapeMismatchThrows) {
  EXPECT_THROW(evaluate_reconstruction(Tensor({3}), Tensor({4})),
               std::invalid_argument);
}

}  // namespace
