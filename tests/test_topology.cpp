/// \file test_topology.cpp
/// \brief CPU/NUMA discovery and pinning (util/topology).
///
/// The detection core is pure — `parse_cpu_list` and `detect_topology` take
/// injected sysfs strings — so most of this suite is exact-value assertions
/// with no platform dependence.  The live-system tests at the bottom only
/// assert invariants that hold on every host, including the degraded paths:
/// ctest registers a second run of this binary with NC_TOPOLOGY=off (the
/// ".notopo" variant), where affinity must report unsupported and every pin
/// must be a graceful false.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/topology.hpp"

namespace {

using nc::util::CpuInfo;
using nc::util::detect_topology;
using nc::util::parse_cpu_list;
using nc::util::Topology;

bool topology_env_off() {
  const char* env = std::getenv("NC_TOPOLOGY");
  return env != nullptr && std::string(env) == "off";
}

TEST(Topology, HardwareThreadsIsPositive) {
  EXPECT_GE(nc::util::hardware_threads(), 1u);
}

TEST(Topology, ParseCpuListHandlesSysfsForms) {
  EXPECT_EQ(parse_cpu_list(""), (std::vector<int>{}));
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0,2,4"), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(parse_cpu_list("0-1,4-5"), (std::vector<int>{0, 1, 4, 5}));
  // Real /sys lines end in a newline; tokens may carry spaces.
  EXPECT_EQ(parse_cpu_list("0-2\n"), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parse_cpu_list(" 1 , 3 "), (std::vector<int>{1, 3}));
  // Duplicates collapse, output is ascending.
  EXPECT_EQ(parse_cpu_list("3,1,1-2"), (std::vector<int>{1, 2, 3}));
}

TEST(Topology, ParseCpuListRejectsGarbageWholesale) {
  EXPECT_TRUE(parse_cpu_list("abc").empty());
  EXPECT_TRUE(parse_cpu_list("-1").empty());
  EXPECT_TRUE(parse_cpu_list("3-1").empty());  // inverted range
  EXPECT_TRUE(parse_cpu_list("0-99999999").empty());  // absurd span
}

TEST(Topology, DetectOrdersNodeMajor) {
  // Interleaved node membership (the common SMT layout: even CPUs node 0,
  // odd CPUs node 1) must come out node-major, CPU-ascending — the order
  // that packs the elastic floor's low-index workers onto one node.
  const Topology topo =
      detect_topology({0, 1, 2, 3}, {"0,2", "1,3"}, /*affinity=*/true);
  ASSERT_EQ(topo.cpus.size(), 4u);
  EXPECT_EQ(topo.cpus[0].cpu, 0);
  EXPECT_EQ(topo.cpus[1].cpu, 2);
  EXPECT_EQ(topo.cpus[2].cpu, 1);
  EXPECT_EQ(topo.cpus[3].cpu, 3);
  EXPECT_EQ(topo.cpus[0].node, 0);
  EXPECT_EQ(topo.cpus[1].node, 0);
  EXPECT_EQ(topo.cpus[2].node, 1);
  EXPECT_EQ(topo.cpus[3].node, 1);
  EXPECT_EQ(topo.n_nodes, 2);
  EXPECT_TRUE(topo.numa_from_sysfs);
  EXPECT_TRUE(topo.affinity_supported);
}

TEST(Topology, DetectRespectsAllowedSubset) {
  // A cgroup/cpuset restriction: only CPUs 1 and 3 are schedulable.
  const Topology topo = detect_topology({1, 3}, {"0-3"}, true);
  ASSERT_EQ(topo.cpus.size(), 2u);
  EXPECT_EQ(topo.cpus[0].cpu, 1);
  EXPECT_EQ(topo.cpus[1].cpu, 3);
  EXPECT_EQ(topo.n_nodes, 1);
}

TEST(Topology, DetectWithoutSysfsFallsFlat) {
  const Topology topo = detect_topology({0, 1, 2}, {}, false);
  ASSERT_EQ(topo.cpus.size(), 3u);
  for (const auto& c : topo.cpus) EXPECT_EQ(c.node, 0);
  EXPECT_EQ(topo.n_nodes, 1);
  EXPECT_FALSE(topo.numa_from_sysfs);
  EXPECT_FALSE(topo.affinity_supported);
}

TEST(Topology, DetectUnknownCpuLandsOnNodeZero) {
  // A CPU absent from every cpulist keeps placement working, just without
  // locality information.
  const Topology topo = detect_topology({0, 9}, {"0", "1-3"}, true);
  ASSERT_EQ(topo.cpus.size(), 2u);
  EXPECT_EQ(topo.cpus[0].cpu, 0);
  EXPECT_EQ(topo.cpus[0].node, 0);
  EXPECT_EQ(topo.cpus[1].cpu, 9);
  EXPECT_EQ(topo.cpus[1].node, 0);
}

TEST(Topology, DetectEmptyAllowedStillYieldsOneCpu) {
  // Degenerate input must never produce an empty placement table (the
  // pipeline indexes cpus[w % size]).
  const Topology topo = detect_topology({}, {}, false);
  ASSERT_EQ(topo.cpus.size(), 1u);
  EXPECT_EQ(topo.cpus[0].cpu, 0);
}

// --- live system (both the native and the NC_TOPOLOGY=off ctest runs) ------

TEST(Topology, SystemTopologyInvariants) {
  const Topology& topo = nc::util::system_topology();
  ASSERT_FALSE(topo.cpus.empty());
  EXPECT_GE(topo.n_nodes, 1);
  // Node-major order and node ids covered by n_nodes.
  for (std::size_t i = 1; i < topo.cpus.size(); ++i) {
    EXPECT_LE(topo.cpus[i - 1].node, topo.cpus[i].node);
  }
  for (const auto& c : topo.cpus) {
    EXPECT_GE(c.cpu, 0);
    EXPECT_GE(c.node, 0);
  }
  if (topology_env_off()) {
    // The escape hatch: discovery disabled, flat single node, no pinning.
    EXPECT_FALSE(topo.affinity_supported);
    EXPECT_FALSE(topo.numa_from_sysfs);
    EXPECT_EQ(topo.n_nodes, 1);
  }
}

TEST(Topology, PinUnpinRoundTripOrGracefulNoOp) {
  const Topology& topo = nc::util::system_topology();
  if (topo.affinity_supported) {
    EXPECT_TRUE(nc::util::pin_current_thread(topo.cpus.front().cpu));
    EXPECT_TRUE(nc::util::unpin_current_thread());
  } else {
    // Unsupported (non-Linux, or NC_TOPOLOGY=off): both must refuse
    // gracefully rather than touch affinity.
    EXPECT_FALSE(nc::util::pin_current_thread(topo.cpus.front().cpu));
    EXPECT_FALSE(nc::util::unpin_current_thread());
  }
  // Nonsense CPU ids never succeed, supported or not.
  EXPECT_FALSE(nc::util::pin_current_thread(-1));
}

}  // namespace
