/// Profiler accounting and OpenMP helper semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "codec/stream.hpp"
#include "core/profiler.hpp"
#include "util/parallel.hpp"

namespace {

TEST(Profiler, DisabledByDefaultAndRecordsWhenEnabled) {
  auto& p = nc::core::Profiler::instance();
  p.clear();
  EXPECT_FALSE(p.enabled());

  p.set_enabled(true);
  p.record("conv_a", 0.010, 2e6, 8, 128, 64);
  p.record("conv_a", 0.020, 4e6, 8, 128, 64);
  p.record("conv_b", 0.005, 1e6, 2, 64, 16);
  p.set_enabled(false);

  const auto entries = p.entries();
  ASSERT_EQ(entries.size(), 2u);
  // Sorted by descending total time.
  EXPECT_EQ(entries[0].first, "conv_a");
  EXPECT_NEAR(entries[0].second.total_s, 0.030, 1e-12);
  EXPECT_EQ(entries[0].second.calls, 2u);
  EXPECT_NEAR(entries[0].second.flops, 6e6, 1.0);
  EXPECT_EQ(entries[0].second.gemm_m, 8);
  EXPECT_EQ(entries[1].first, "conv_b");

  const std::string report = p.report();
  EXPECT_NE(report.find("conv_a"), std::string::npos);
  EXPECT_NE(report.find("conv_b"), std::string::npos);
  p.clear();
  EXPECT_TRUE(p.entries().empty());
}

TEST(Profiler, ThreadSafeRecording) {
  auto& p = nc::core::Profiler::instance();
  p.clear();
  p.set_enabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) p.record("shared", 0.001, 100.0);
    });
  }
  for (auto& t : threads) t.join();
  p.set_enabled(false);
  const auto entries = p.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].second.calls, 8000u);
  p.clear();
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  nc::util::parallel_for(0, 1000, [&](std::int64_t i) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleElementRanges) {
  int calls = 0;
  nc::util::parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  nc::util::parallel_for(3, 2, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  nc::util::parallel_for(7, 8, [&](std::int64_t i) {
    EXPECT_EQ(i, 7);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, GrainSuppressesParallelismButNotExecution) {
  // With a grain larger than the trip count the loop must still run — just
  // serially (counts checked; serial execution itself is an implementation
  // detail we cannot observe portably).
  std::vector<int> hits(64, 0);
  nc::util::parallel_for(
      0, 64, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)] += 1; },
      1 << 20);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, NestedInvocationStaysCorrect) {
  // An inner parallel_for inside an outer one must serialize (no nested omp
  // regions) and still produce correct results.
  std::vector<std::atomic<int>> counts(256);
  nc::util::parallel_for(0, 16, [&](std::int64_t outer) {
    nc::util::parallel_for(0, 16, [&](std::int64_t inner) {
      counts[static_cast<std::size_t>(outer * 16 + inner)].fetch_add(1);
    });
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelHelpers, ThreadCountIsPositive) {
  EXPECT_GE(nc::util::num_threads(), 1);
  EXPECT_GE(nc::util::thread_index(), 0);
}

TEST(BoundedQueue, CloseReleasesConsumerBlockedInPopBatch) {
  nc::codec::BoundedQueue<int> q(4);
  std::atomic<int> drained{0};
  std::atomic<bool> consumer_done{false};
  std::thread consumer([&] {
    std::vector<int> batch;
    std::size_t n = 0;
    while ((n = q.pop_batch(batch, 4)) > 0) {
      drained.fetch_add(static_cast<int>(n));
      batch.clear();
    }
    consumer_done.store(true);
  });
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  // Once the consumer has drained everything it blocks inside pop_batch on
  // the empty queue; close() must wake it and return 0 so it can exit.
  while (drained.load() < 2) std::this_thread::yield();
  q.close();
  consumer.join();
  EXPECT_TRUE(consumer_done.load());
  EXPECT_EQ(drained.load(), 2);
  EXPECT_FALSE(q.push(3));  // closed intake rejects blocking pushes too
}

}  // namespace
