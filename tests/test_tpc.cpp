/// TPC substrate: geometry, helix tracking, digitization, event generation,
/// dataset handling.  These tests pin down the data properties the paper's
/// method depends on (sparsity, log-ADC bimodality, wedge partitioning).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numbers>

#include "tpc/dataset.hpp"
#include "tpc/digitizer.hpp"
#include "tpc/event_gen.hpp"
#include "tpc/geometry.hpp"
#include "tpc/track.hpp"

namespace {

using nc::tpc::TpcGeometry;
using nc::tpc::WedgeShape;

TEST(Geometry, PaperScaleWedgeShape) {
  const auto g = TpcGeometry::paper_scale();
  const WedgeShape w = g.wedge_shape();
  EXPECT_EQ(w.radial, 16);
  EXPECT_EQ(w.azim, 192);   // 2304 / 12 sectors
  EXPECT_EQ(w.horiz, 249);  // 498 / 2 halves
  EXPECT_EQ(w.padded_horiz(), 256);  // §2.3: pad 249 -> 256
  EXPECT_EQ(w.voxels(), 16 * 192 * 249);
}

TEST(Geometry, BenchScaleWedgeShape) {
  const auto g = TpcGeometry::bench_scale();
  const WedgeShape w = g.wedge_shape();
  EXPECT_EQ(w.radial, 16);
  EXPECT_EQ(w.azim, 48);
  EXPECT_EQ(w.horiz, 62);
  EXPECT_EQ(w.padded_horiz(), 64);
}

TEST(Geometry, CompressionRatioMatchesPaper) {
  // §3.1: CR = 31.125 for code size 24 576 at paper scale.
  const WedgeShape w = TpcGeometry::paper_scale().wedge_shape();
  EXPECT_NEAR(nc::tpc::compression_ratio(w, 32 * 24 * 32), 31.125, 1e-9);
  EXPECT_NEAR(nc::tpc::compression_ratio(w, 8 * 16 * 12 * 16), 31.125, 1e-9);
  // Original BCAE: code (8, 17, 13, 16) -> 27.041 (§3.1).
  EXPECT_NEAR(nc::tpc::compression_ratio(w, 8 * 17 * 13 * 16), 27.041, 1e-2);
}

TEST(Geometry, ScaledCompressionRatioStaysClose) {
  // The scaled geometry must preserve the compression-ratio arithmetic.
  const auto g = TpcGeometry::bench_scale();
  const WedgeShape w = g.wedge_shape();
  const std::int64_t code = 32 * (w.azim / 8) * (w.padded_horiz() / 8);
  EXPECT_NEAR(nc::tpc::compression_ratio(w, code), 31.0, 0.5);
}

TEST(Geometry, LayerRadiiMonotoneAndGrouped) {
  const TpcGeometry g;
  using nc::tpc::LayerGroup;
  double prev = 0.0;
  for (auto grp : {LayerGroup::kInner, LayerGroup::kMiddle, LayerGroup::kOuter}) {
    for (int l = 0; l < g.layers_per_group; ++l) {
      const double r = g.layer_radius(grp, l);
      EXPECT_GT(r, prev);
      prev = r;
    }
  }
  EXPECT_GT(g.layer_radius(LayerGroup::kOuter, 0), 62.0);
  EXPECT_LT(g.layer_radius(LayerGroup::kOuter, 15), 78.0);
}

TEST(Helix, HighPtTrackIsNearlyStraight) {
  // 8 GeV track: curvature radius ~19m, so phi barely changes across the TPC.
  nc::tpc::TrackParams t;
  t.pt = 8.0;
  t.phi0 = 1.0;
  t.eta = 0.0;
  const nc::tpc::Helix h(t, 1.4);
  const auto c = h.cross_layer(70.0, 105.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->phi, 1.0, 0.05);
  EXPECT_NEAR(c->z, 0.0, 1e-9);  // eta = 0: stays at z0
}

TEST(Helix, OppositeChargesBendOppositeWays) {
  nc::tpc::TrackParams plus, minus;
  plus.pt = minus.pt = 0.7;
  plus.phi0 = minus.phi0 = 2.0;
  plus.charge = 1;
  minus.charge = -1;
  const auto cp = nc::tpc::Helix(plus, 1.4).cross_layer(70.0, 105.0);
  const auto cm = nc::tpc::Helix(minus, 1.4).cross_layer(70.0, 105.0);
  ASSERT_TRUE(cp && cm);
  EXPECT_GT(cp->phi, 2.0);
  EXPECT_LT(cm->phi, 2.0);
  EXPECT_NEAR((cp->phi - 2.0), -(cm->phi - 2.0), 1e-9);  // symmetric
}

TEST(Helix, ZAdvancesWithEta) {
  nc::tpc::TrackParams t;
  t.pt = 1.0;
  t.eta = 1.0;
  t.z0 = 3.0;
  const auto c = nc::tpc::Helix(t, 1.4).cross_layer(70.0, 105.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_GT(c->z, 3.0 + 70.0);  // sinh(1) ~ 1.175 > 1: z grows faster than r
}

TEST(Helix, LowPtCurlsUpBeforeOuterLayers) {
  // pT = 0.1 GeV: R ~ 23.8 cm, 2R < 62 cm: never reaches the outer group.
  nc::tpc::TrackParams t;
  t.pt = 0.1;
  const auto c = nc::tpc::Helix(t, 1.4).cross_layer(62.0, 105.0);
  EXPECT_FALSE(c.has_value());
}

TEST(Helix, LeavesDriftVolume) {
  nc::tpc::TrackParams t;
  t.pt = 2.0;
  t.eta = 1.05;
  t.z0 = 100.0;  // vertex close to the endcap
  const auto c = nc::tpc::Helix(t, 1.4).cross_layer(70.0, 105.0);
  EXPECT_FALSE(c.has_value());
}

TEST(Digitizer, ZeroSuppressionGap) {
  // After zero suppression no ADC value may land in (0, 64).
  nc::tpc::Digitizer dig;
  nc::util::Rng rng(61);
  int nonzero = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto adc = dig.digitize_voxel(static_cast<float>(i % 300), rng);
    if (adc != 0) {
      EXPECT_GE(adc, 64);
      EXPECT_LE(adc, 1023);
      ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 0);
}

TEST(Digitizer, SaturatesAtTenBits) {
  nc::tpc::Digitizer dig;
  nc::util::Rng rng(62);
  EXPECT_EQ(dig.digitize_voxel(1e9f, rng), 1023);
}

TEST(Digitizer, LogAdcTransform) {
  EXPECT_FLOAT_EQ(nc::tpc::log_adc(0), 0.f);
  EXPECT_NEAR(nc::tpc::log_adc(64), 6.022, 1e-3);
  EXPECT_NEAR(nc::tpc::log_adc(1023), 10.0, 1e-3);
  // Inverse round-trips the integer grid exactly.
  for (std::uint16_t adc : {std::uint16_t{0}, std::uint16_t{64},
                            std::uint16_t{100}, std::uint16_t{777},
                            std::uint16_t{1023}}) {
    EXPECT_EQ(nc::tpc::inverse_log_adc(nc::tpc::log_adc(adc)), adc);
  }
}

class EventGenTest : public ::testing::Test {
 protected:
  static const nc::tpc::EventAdc& event() {
    static const nc::tpc::EventAdc e = [] {
      nc::tpc::EventGenerator gen(TpcGeometry::bench_scale(), {}, 71);
      return gen.generate_event();
    }();
    return e;
  }
};

TEST_F(EventGenTest, OccupancyNearPaperValue) {
  // §2.1: ~10.8% occupancy after zero suppression.  The simulator is tuned
  // to land in a band around that.
  const auto& e = event();
  std::int64_t nonzero = 0;
  for (const auto v : e.adc) nonzero += (v != 0);
  const double occ = static_cast<double>(nonzero) / static_cast<double>(e.adc.size());
  EXPECT_GT(occ, 0.06);
  EXPECT_LT(occ, 0.18);
}

TEST_F(EventGenTest, AdcValuesAreZeroSuppressedTenBit) {
  for (const auto v : event().adc) {
    EXPECT_TRUE(v == 0 || (v >= 64 && v <= 1023));
  }
}

TEST_F(EventGenTest, TrackStructureIsSpatiallyCorrelated) {
  // Occupied voxels must cluster (tracks), not be iid noise: the fraction of
  // occupied voxels with at least one occupied azimuthal neighbour must far
  // exceed the occupancy itself.
  const auto& e = event();
  std::int64_t occupied = 0, with_neighbour = 0;
  for (std::int64_t r = 0; r < e.radial; ++r) {
    for (std::int64_t a = 1; a + 1 < e.azim; ++a) {
      for (std::int64_t z = 0; z < e.z; ++z) {
        if (e.at(r, a, z) == 0) continue;
        ++occupied;
        if (e.at(r, a - 1, z) != 0 || e.at(r, a + 1, z) != 0) ++with_neighbour;
      }
    }
  }
  ASSERT_GT(occupied, 0);
  EXPECT_GT(static_cast<double>(with_neighbour) / occupied, 0.5);
}

TEST_F(EventGenTest, SlicingProduces24Wedges) {
  nc::tpc::EventGenerator gen(TpcGeometry::bench_scale(), {}, 72);
  const auto wedges = gen.slice_wedges(event());
  EXPECT_EQ(wedges.size(), 24u);
  const WedgeShape ws = TpcGeometry::bench_scale().wedge_shape();
  for (const auto& w : wedges) {
    EXPECT_EQ(w.shape(), (nc::core::Shape{ws.radial, ws.azim, ws.horiz}));
  }
}

TEST_F(EventGenTest, WedgesTileTheEventExactly) {
  // Every voxel of the event grid appears in exactly one wedge.
  nc::tpc::EventGenerator gen(TpcGeometry::bench_scale(), {}, 73);
  const auto& e = event();
  const auto wedges = gen.slice_wedges(e);
  double event_sum = 0, wedge_sum = 0;
  for (const auto v : e.adc) {
    event_sum += static_cast<double>(nc::tpc::log_adc(v));
  }
  for (const auto& w : wedges) {
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      wedge_sum += static_cast<double>(w[i]);
    }
  }
  EXPECT_NEAR(event_sum, wedge_sum, 1e-9 * event_sum + 1e-6);
}

TEST_F(EventGenTest, DeterministicForSeed) {
  nc::tpc::EventGenerator a(TpcGeometry::bench_scale(), {}, 99);
  nc::tpc::EventGenerator b(TpcGeometry::bench_scale(), {}, 99);
  const auto ea = a.generate_event();
  const auto eb = b.generate_event();
  EXPECT_EQ(ea.adc, eb.adc);
  nc::tpc::EventGenerator c(TpcGeometry::bench_scale(), {}, 100);
  EXPECT_NE(c.generate_event().adc, ea.adc);
}

TEST(LogAdcDistribution, BimodalWithEdgeAtSix) {
  // Fig. 3: a large zero population, an empty gap (0, 6), and a decaying
  // tail in (6, 10].
  nc::tpc::DatasetConfig cfg;
  cfg.n_events = 2;
  const auto ds = nc::tpc::WedgeDataset::generate(cfg);
  const auto hist = ds.log_adc_histogram(20);  // bins of 0.5
  const std::int64_t zeros = hist[0];
  std::int64_t gap = 0, tail = 0;
  for (int b = 1; b < 12; ++b) gap += hist[static_cast<std::size_t>(b)];
  for (int b = 12; b < 20; ++b) tail += hist[static_cast<std::size_t>(b)];
  EXPECT_GT(zeros, 5 * tail);  // sparse
  EXPECT_EQ(gap, 0);           // hard edge at 6 (zero suppression at ADC 64)
  EXPECT_GT(tail, 0);
  // Tail decays: first tail bin above later bins.
  EXPECT_GT(hist[12], hist[18]);
}

TEST(WedgeDataset, SplitPaddingAndBatching) {
  nc::tpc::DatasetConfig cfg;
  cfg.n_events = 3;
  cfg.train_fraction = 2.0 / 3.0;
  const auto ds = nc::tpc::WedgeDataset::generate(cfg);
  EXPECT_EQ(ds.train().size(), 48u);  // 2 events x 24 wedges
  EXPECT_EQ(ds.test().size(), 24u);
  EXPECT_EQ(ds.valid_horiz(), 62);
  EXPECT_EQ(ds.padded_horiz(), 64);

  // Padding region must be exactly zero.
  const auto& w = ds.train()[0];
  for (std::int64_t ra = 0; ra < 16 * 48; ++ra) {
    EXPECT_EQ(w[ra * 64 + 62], 0.f);
    EXPECT_EQ(w[ra * 64 + 63], 0.f);
  }

  const auto b2 = ds.batch_2d(ds.train(), {0, 1, 2});
  EXPECT_EQ(b2.shape(), (nc::core::Shape{3, 16, 48, 64}));
  const auto b3 = ds.batch_3d(ds.train(), {5});
  EXPECT_EQ(b3.shape(), (nc::core::Shape{1, 1, 16, 48, 64}));

  const double occ = ds.occupancy();
  EXPECT_GT(occ, 0.05);
  EXPECT_LT(occ, 0.2);
}

TEST(WedgeDataset, ClipHorizontalInvertsPadding) {
  nc::core::Tensor raw({2, 3, 5});
  for (std::int64_t i = 0; i < raw.numel(); ++i) raw[i] = static_cast<float>(i);
  const auto padded = nc::tpc::pad_wedge(raw, 8);
  EXPECT_EQ(padded.shape(), (nc::core::Shape{2, 3, 8}));
  const auto clipped = nc::tpc::clip_horizontal(padded, 5);
  EXPECT_EQ(clipped.shape(), raw.shape());
  for (std::int64_t i = 0; i < raw.numel(); ++i) EXPECT_EQ(clipped[i], raw[i]);
  EXPECT_THROW(nc::tpc::pad_wedge(raw, 4), std::invalid_argument);
  EXPECT_THROW(nc::tpc::clip_horizontal(raw, 9), std::invalid_argument);
}

TEST(WedgeDataset, SaveLoadRoundTrip) {
  nc::tpc::DatasetConfig cfg;
  cfg.n_events = 1;
  cfg.geometry.scale = 0.125;
  const auto ds = nc::tpc::WedgeDataset::generate(cfg);
  const auto path = std::filesystem::temp_directory_path() / "nc_test_ds.bin";
  ds.save(path.string());
  const auto loaded = nc::tpc::WedgeDataset::load(path.string());
  ASSERT_EQ(loaded.train().size(), ds.train().size());
  ASSERT_EQ(loaded.test().size(), ds.test().size());
  EXPECT_EQ(loaded.wedge_shape(), ds.wedge_shape());
  for (std::size_t i = 0; i < ds.train().size(); ++i) {
    const auto& a = ds.train()[i];
    const auto& b = loaded.train()[i];
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t j = 0; j < a.numel(); ++j) ASSERT_EQ(a[j], b[j]);
  }
  std::filesystem::remove(path);
}

}  // namespace
