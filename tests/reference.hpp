/// \file reference.hpp
/// \brief Naive reference implementations the optimized kernels are tested
///        against.  Deliberately simple (quadruple loops, no lowering, no
///        parallelism) so they are obviously correct.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"
#include "util/rng.hpp"

namespace nc::testref {

/// C = alpha * op(A) * op(B) + beta * C, row-major, no blocking.
inline void naive_gemm(bool trans_a, bool trans_b, std::int64_t m,
                       std::int64_t n, std::int64_t k, float alpha,
                       const float* a, std::int64_t lda, const float* b,
                       std::int64_t ldb, float beta, float* c,
                       std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a[kk * lda + i] : a[i * lda + kk];
        const float bv = trans_b ? b[j * ldb + kk] : b[kk * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * ldc + j] = alpha * static_cast<float>(acc) + beta * c[i * ldc + j];
    }
  }
}

/// Direct 2-D convolution: x (N,C,H,W), w (O,C,KH,KW), bias (O) optional.
inline nc::core::Tensor naive_conv2d(const nc::core::Tensor& x,
                                     const nc::core::Tensor& w,
                                     const float* bias, std::int64_t sh,
                                     std::int64_t sw, std::int64_t ph,
                                     std::int64_t pw) {
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const std::int64_t o = w.dim(0), kh = w.dim(2), kw = w.dim(3);
  const std::int64_t oh = (h + 2 * ph - kh) / sh + 1;
  const std::int64_t ow = (wd + 2 * pw - kw) / sw + 1;
  nc::core::Tensor out({n, o, oh, ow});
  for (std::int64_t s = 0; s < n; ++s)
    for (std::int64_t oc = 0; oc < o; ++oc)
      for (std::int64_t oy = 0; oy < oh; ++oy)
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = bias ? static_cast<double>(bias[oc]) : 0.0;
          for (std::int64_t ic = 0; ic < c; ++ic)
            for (std::int64_t ky = 0; ky < kh; ++ky)
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t iy = oy * sh - ph + ky;
                const std::int64_t ix = ox * sw - pw + kx;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wd) continue;
                acc += static_cast<double>(x.at({s, ic, iy, ix})) *
                       static_cast<double>(w.at({oc, ic, ky, kx}));
              }
          out.at({s, oc, oy, ox}) = static_cast<float>(acc);
        }
  return out;
}

/// Direct 3-D convolution: x (N,C,D,H,W), w (O,C,KD,KH,KW).
inline nc::core::Tensor naive_conv3d(const nc::core::Tensor& x,
                                     const nc::core::Tensor& w,
                                     const float* bias, std::int64_t sd,
                                     std::int64_t sh, std::int64_t sw,
                                     std::int64_t pd, std::int64_t ph,
                                     std::int64_t pw) {
  const std::int64_t n = x.dim(0), c = x.dim(1), d = x.dim(2), h = x.dim(3),
                     wd = x.dim(4);
  const std::int64_t o = w.dim(0), kd = w.dim(2), kh = w.dim(3), kw = w.dim(4);
  const std::int64_t od = (d + 2 * pd - kd) / sd + 1;
  const std::int64_t oh = (h + 2 * ph - kh) / sh + 1;
  const std::int64_t ow = (wd + 2 * pw - kw) / sw + 1;
  nc::core::Tensor out({n, o, od, oh, ow});
  for (std::int64_t s = 0; s < n; ++s)
    for (std::int64_t oc = 0; oc < o; ++oc)
      for (std::int64_t oz = 0; oz < od; ++oz)
        for (std::int64_t oy = 0; oy < oh; ++oy)
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            double acc = bias ? static_cast<double>(bias[oc]) : 0.0;
            for (std::int64_t ic = 0; ic < c; ++ic)
              for (std::int64_t kz = 0; kz < kd; ++kz)
                for (std::int64_t ky = 0; ky < kh; ++ky)
                  for (std::int64_t kx = 0; kx < kw; ++kx) {
                    const std::int64_t iz = oz * sd - pd + kz;
                    const std::int64_t iy = oy * sh - ph + ky;
                    const std::int64_t ix = ox * sw - pw + kx;
                    if (iz < 0 || iz >= d || iy < 0 || iy >= h || ix < 0 ||
                        ix >= wd)
                      continue;
                    acc += static_cast<double>(x.at({s, ic, iz, iy, ix})) *
                           static_cast<double>(w.at({oc, ic, kz, ky, kx}));
                  }
            out.at({s, oc, oz, oy, ox}) = static_cast<float>(acc);
          }
  return out;
}

/// Direct transposed 2-D convolution (scatter form): x (N,C,H,W),
/// w (C,O,KH,KW) — PyTorch deconv weight convention.
inline nc::core::Tensor naive_deconv2d(const nc::core::Tensor& x,
                                       const nc::core::Tensor& w,
                                       const float* bias, std::int64_t sh,
                                       std::int64_t sw, std::int64_t ph,
                                       std::int64_t pw) {
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), wd = x.dim(3);
  const std::int64_t o = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  const std::int64_t oh = (h - 1) * sh - 2 * ph + kh;
  const std::int64_t ow = (wd - 1) * sw - 2 * pw + kw;
  nc::core::Tensor out({n, o, oh, ow});
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t oc = 0; oc < o; ++oc)
      for (std::int64_t oy = 0; oy < oh; ++oy)
        for (std::int64_t ox = 0; ox < ow; ++ox)
          out.at({s, oc, oy, ox}) = bias ? bias[oc] : 0.f;
    for (std::int64_t ic = 0; ic < c; ++ic)
      for (std::int64_t iy = 0; iy < h; ++iy)
        for (std::int64_t ix = 0; ix < wd; ++ix) {
          const float xv = x.at({s, ic, iy, ix});
          for (std::int64_t oc = 0; oc < o; ++oc)
            for (std::int64_t ky = 0; ky < kh; ++ky)
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t oy = iy * sh - ph + ky;
                const std::int64_t ox = ix * sw - pw + kx;
                if (oy < 0 || oy >= oh || ox < 0 || ox >= ow) continue;
                out.at({s, oc, oy, ox}) += xv * w.at({ic, oc, ky, kx});
              }
        }
  }
  return out;
}

/// Random tensor in [-1, 1].
inline nc::core::Tensor random_tensor(nc::core::Shape shape, std::uint64_t seed) {
  nc::util::Rng rng(seed);
  nc::core::Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Max |a - b| over two same-shaped tensors.
inline double max_abs_diff(const nc::core::Tensor& a, const nc::core::Tensor& b) {
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(
        m, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return m;
}

}  // namespace nc::testref
