/// Sharded work-stealing intake: shard routing, steal policies, cross-shard
/// backpressure, the pop_batch terminal contract, and — at the pipeline
/// level — the fairness guarantee the stealing exists for: a stalled
/// worker's shard backlog is drained by its siblings, so no wedge is ever
/// stranded in a parked shard at finish().
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "codec/sharded_queue.hpp"
#include "codec/stream_pipeline.hpp"
#include "tests/stream_test_utils.hpp"

namespace {

using nc::codec::IntakeMode;
using nc::codec::ShardedQueue;
using nc::codec::StealPolicy;
using nc::codec::StreamOptions;
using nc::codec::StreamPipeline;
using nc::testutil::IntPipeline;
using nc::testutil::spin_until;
using nc::testutil::StallLatch;

// ---------------------------------------------------------------------------
// ShardedQueue as a concurrent container
// ---------------------------------------------------------------------------

TEST(ShardedQueue, RoundRobinRoutesAcrossShardsAndOwnShardDrainsFirst) {
  // Tickets 0..5 round-robin over 2 shards: shard0 = {0,2,4}, shard1 =
  // {1,3,5}.  Under kDeepest a worker drains its own shard first (not
  // stolen), then steals the sibling's batch.
  ShardedQueue<int> q(/*n_shards=*/2, /*capacity=*/8, StealPolicy::kDeepest);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size(), 6u);

  std::vector<int> got;
  bool stolen = true;
  EXPECT_EQ(q.pop_batch(/*worker=*/0, got, 3, /*adaptive_share=*/0, &stolen), 3u);
  EXPECT_FALSE(stolen);
  EXPECT_EQ(got, (std::vector<int>{0, 2, 4}));

  got.clear();
  EXPECT_EQ(q.pop_batch(/*worker=*/0, got, 3, /*adaptive_share=*/0, &stolen), 3u);
  EXPECT_TRUE(stolen);  // own shard dry: served from the sibling
  EXPECT_EQ(got, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(ShardedQueue, OldestHeadPolicyPopsInGlobalSubmissionOrder) {
  // kOldestHead approximates a global FIFO: single-item pops come back in
  // ticket order even though the items alternate between shards.
  ShardedQueue<int> q(2, 8, StealPolicy::kOldestHead);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(i));
  for (int i = 0; i < 6; ++i) {
    std::vector<int> got;
    ASSERT_EQ(q.pop_batch(/*worker=*/0, got, 1, /*adaptive_share=*/0, nullptr), 1u);
    EXPECT_EQ(got.front(), i);
  }
}

TEST(ShardedQueue, TryPushFallsBackToSiblingAndFailsOnlyWhenAllFull) {
  // Capacity 4 over 2 shards = 2 per shard.  Pushing 4 items fills both
  // shards (round-robin), a 5th fails; the round-robin target being full
  // must not fail a push while the sibling has space.
  ShardedQueue<int> q(2, 4, StealPolicy::kDeepest);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(4));  // every shard full: real backpressure

  // Drain shard0 only; the next two pushes both land (one round-robin, one
  // fallback into the freed shard), and the one after that fails again.
  std::vector<int> got;
  ASSERT_EQ(q.pop_batch(/*worker=*/0, got, 2, /*adaptive_share=*/0, nullptr), 2u);
  EXPECT_EQ(got, (std::vector<int>{0, 2}));
  EXPECT_TRUE(q.try_push(5));
  EXPECT_TRUE(q.try_push(6));
  EXPECT_FALSE(q.try_push(7));
  EXPECT_EQ(q.size(), 4u);
}

TEST(ShardedQueue, PopBatchZeroIffClosedAndDrained) {
  ShardedQueue<int> q(2, 8, StealPolicy::kDeepest);
  // An open, empty intake parks the popper until an item arrives — a 0
  // return is never a spurious wakeup.
  std::thread pusher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    (void)q.try_push(7);
  });
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(0, out, 2, /*adaptive_share=*/0, nullptr), 1u);
  EXPECT_EQ(out, (std::vector<int>{7}));
  pusher.join();

  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    q.close();
  });
  EXPECT_EQ(q.pop_batch(0, out, 2, /*adaptive_share=*/0, nullptr), 0u);  // closed and drained...
  closer.join();
  EXPECT_EQ(q.pop_batch(0, out, 2, /*adaptive_share=*/0, nullptr), 0u);  // ...and it is terminal
}

TEST(ShardedQueue, CloseWhileDrainDeliversRemainingItemsAcrossShards) {
  ShardedQueue<int> q(3, 9, StealPolicy::kDeepest);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(q.try_push(i));
  q.close();
  EXPECT_FALSE(q.try_push(99));  // closed to producers
  // A closed intake still hands out everything it holds — from every shard,
  // to any worker — before signalling terminal drain.
  std::vector<int> drained;
  while (q.pop_batch(/*worker=*/1, drained, 2, /*adaptive_share=*/0, nullptr) != 0) {
  }
  std::sort(drained.begin(), drained.end());
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(ShardedQueue, WaitForSpaceUnblocksOnPopAndOnClose) {
  ShardedQueue<int> q(2, 2, StealPolicy::kDeepest);  // 1 slot per shard
  ASSERT_TRUE(q.try_push(0));
  ASSERT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));

  std::atomic<bool> unblocked{false};
  std::thread waiter([&] {
    EXPECT_TRUE(q.wait_for_space());  // space appears: true
    unblocked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unblocked.load());
  std::vector<int> out;
  ASSERT_EQ(q.pop_batch(0, out, 1, /*adaptive_share=*/0, nullptr), 1u);
  waiter.join();
  EXPECT_TRUE(unblocked.load());

  ASSERT_TRUE(q.try_push(2));  // full again
  std::thread closer([&] { q.close(); });
  EXPECT_FALSE(q.wait_for_space());  // closed: false
  closer.join();
}

TEST(ShardedQueue, DepthHighWaterTracksAggregateDepth) {
  ShardedQueue<int> q(2, 16, StealPolicy::kDeepest);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  std::vector<int> out;
  while (q.size() > 0) (void)q.pop_batch(0, out, 4, /*adaptive_share=*/0, nullptr);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_EQ(q.depth_high_water(), 5u);  // the first wave, not the second
}

TEST(ShardedQueue, ConcurrentProducersAndWorkersDeliverEveryItemOnce) {
  constexpr int kProducers = 3, kWorkers = 4, kPerProducer = 200;
  ShardedQueue<int> q(kWorkers, 32, StealPolicy::kDeepest);
  std::atomic<int> next{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = next.fetch_add(1);
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }
  std::mutex seen_mutex;
  std::vector<int> seen;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::vector<int> got;
      while (q.pop_batch(static_cast<std::size_t>(w), got, 8, /*adaptive_share=*/0, nullptr) != 0) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        seen.insert(seen.end(), got.begin(), got.end());
        got.clear();
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : workers) t.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);  // each exactly once
  }
}

// ---------------------------------------------------------------------------
// Pipeline-level steal fairness and ordered-mode liveness
// ---------------------------------------------------------------------------

TEST(ShardedIntakePipeline, SiblingsStealAStalledWorkersBacklog) {
  // One worker stalls inside the transform; round-robin keeps routing
  // submissions into its shard.  The free worker must drain that backlog by
  // stealing — every wedge except the one in the stalled worker's hands
  // completes while it sleeps, so nothing is stranded in a parked shard.
  StreamOptions opt;
  opt.intake = IntakeMode::kSharded;
  opt.queue_capacity = 64;
  opt.batch_size = 1;
  opt.n_workers = 2;

  StallLatch stall;
  std::atomic<int> completed{0};
  IntPipeline pipeline(
      opt,
      [&](std::vector<int>&& in) {
        if (in.front() == 0) stall.wait();
        completed.fetch_add(static_cast<int>(in.size()));
        return std::move(in);
      },
      nullptr, [](std::uint64_t, int&&) {});

  const int n = 16;
  for (int i = 0; i < n; ++i) pipeline.submit(i);
  // Everything except the stalled wedge must complete without the release.
  EXPECT_TRUE(spin_until([&] { return completed.load() >= n - 1; }));
  EXPECT_EQ(completed.load(), n - 1);

  stall.release();
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_failed, 0);
  // Half the submissions were routed to the sleeping worker's shard: the
  // free worker can only have finished them by stealing.
  EXPECT_GT(stats.batches_stolen, 0);
}

TEST(ShardedIntakePipeline, FinishDrainsEveryShardAtClose) {
  // finish() must not return while any shard still holds accepted items,
  // whichever worker's shard they sit in.
  StreamOptions opt;
  opt.intake = IntakeMode::kSharded;
  opt.queue_capacity = 128;
  opt.batch_size = 4;
  opt.n_workers = 4;
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t, int&&) { received.fetch_add(1); });
  const int n = 100;
  for (int i = 0; i < n; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();  // close + drain: no stragglers
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(received.load(), n);
}

TEST(ShardedIntakePipeline, OrderedBoundedReorderFinishesUnderContention) {
  // Stress for the ordered-mode progress guarantee with a sharded intake: a
  // tight reorder bound, uneven per-item latency and more workers than
  // buffer slots.  Pops are not globally FIFO here, so this exercises the
  // gate-escape path (the next-to-emit item parked in a shard while every
  // worker holds a later batch); the run must drain, stay in order and
  // count every item.
  StreamOptions opt;
  opt.intake = IntakeMode::kSharded;
  opt.queue_capacity = 64;
  opt.batch_size = 2;
  opt.n_workers = 4;
  opt.ordered = true;
  opt.reorder_capacity = 2;
  std::vector<std::uint64_t> seqs;
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        // Deterministic jitter: some batches take 30x longer than others.
        std::this_thread::sleep_for(
            std::chrono::microseconds(50 + (in.front() % 7) * 450));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t seq, int&&) { seqs.push_back(seq); });
  const int n = 200;
  for (int i = 0; i < n; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_failed, 0);
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
  }
}

TEST(ShardedIntakePipeline, ExplicitShardCountDecouplesFromWorkers) {
  StreamOptions opt;
  opt.intake = IntakeMode::kSharded;
  opt.n_shards = 8;  // more shards than workers: reached only by stealing
  opt.queue_capacity = 64;
  opt.batch_size = 2;
  opt.n_workers = 2;
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt, [](std::vector<int>&& in) { return std::move(in); }, nullptr,
      [&](std::uint64_t, int&&) { received.fetch_add(1); });
  const int n = 64;
  for (int i = 0; i < n; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(pipeline.options().n_shards, 8u);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(received.load(), n);
}

}  // namespace
