/// \file test_admission.cpp
/// \brief Deterministic unit tests for the service's per-session admission
///        policy (degrade down the codec ladder first, shed last).
///
/// AdmissionController is a pure sample-in / decision-out state machine (no
/// clocks, no threads), so every test drives it with an injected sample
/// sequence and asserts the exact decision trace — window averaging,
/// cooldown hysteresis, the spill emergency path, shed latching and rung
/// recovery — with zero sleeps.  The impure service driver around it is
/// covered by test_service.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "codec/admission.hpp"

namespace {

using nc::codec::AdmissionConfig;
using nc::codec::AdmissionController;
using nc::codec::AdmissionDecision;
using nc::codec::AdmissionSample;

AdmissionConfig config(std::size_t window, std::size_t cooldown) {
  AdmissionConfig cfg;
  cfg.window = window;
  cfg.cooldown = cooldown;
  return cfg;  // depth thresholds keep their defaults
}

/// A deep staging queue with `left` ladder rungs still below the current
/// codec and `used` already descended.
AdmissionSample deep(std::size_t left, std::size_t used = 0) {
  return {1.0, false, left, used};
}
AdmissionSample quiet(std::size_t left, std::size_t used = 0) {
  return {0.0, false, left, used};
}
AdmissionSample spilling_deep(std::size_t left) { return {1.0, true, left, 0}; }

TEST(Admission, HoldsUntilWindowFills) {
  AdmissionController ctl(config(4, 0));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ctl.observe(deep(1)), AdmissionDecision::kHold) << "tick " << i;
  }
  EXPECT_EQ(ctl.observe(deep(1)), AdmissionDecision::kDegrade)
      << "fourth sample completes the window";
}

TEST(Admission, CooldownDiscardsSamplesAfterADecision) {
  AdmissionController ctl(config(1, 3));
  EXPECT_EQ(ctl.observe(deep(2)), AdmissionDecision::kDegrade);
  // Three held ticks, then a fresh one-sample window decides again.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ctl.observe(deep(1)), AdmissionDecision::kHold) << "hold " << i;
  }
  EXPECT_EQ(ctl.observe(deep(1)), AdmissionDecision::kDegrade);
}

TEST(Admission, ShedOnlyWithLadderExhausted) {
  // Depth 1.0 clears both degrade_depth and shed_depth; with a rung left
  // the decision must be kDegrade, never kShed.
  AdmissionController ctl(config(1, 0));
  EXPECT_EQ(ctl.observe(deep(1)), AdmissionDecision::kDegrade);
  EXPECT_EQ(ctl.observe(deep(0)), AdmissionDecision::kShed)
      << "only the exhausted ladder may shed";
  EXPECT_TRUE(ctl.shedding());
}

TEST(Admission, MidBandDepthNeverSheds) {
  // Between degrade_depth and shed_depth with no rungs left: hold (spill
  // still bounded by the pipeline tier), don't drop.
  AdmissionConfig cfg = config(1, 0);
  AdmissionController ctl(cfg);
  AdmissionSample s{0.8, false, 0, 1};  // 0.75 <= 0.8 < 0.95
  EXPECT_EQ(ctl.observe(s), AdmissionDecision::kHold);
}

TEST(Admission, SpillEmergencyBypassesWindowAndCooldown) {
  // A giant window and cooldown must not delay the emergency hop when the
  // shared tier is already writing to disk and this session is deep.
  AdmissionController ctl(config(64, 64));
  EXPECT_EQ(ctl.observe(spilling_deep(1)), AdmissionDecision::kDegrade);
  // ...and the emergency decision still starts a cooldown: the next
  // spilling sample with a rung left fires again only because the
  // emergency path deliberately pierces it.
  EXPECT_EQ(ctl.observe(deep(1)), AdmissionDecision::kHold);
}

TEST(Admission, SpillEmergencyNeedsDepthAndARung) {
  AdmissionController ctl(config(64, 0));
  // Spilling but this session is shallow: someone else's firehose, hold.
  EXPECT_EQ(ctl.observe({0.1, true, 1, 0}), AdmissionDecision::kHold);
  // Spilling and deep but the ladder is exhausted: no emergency hop
  // (shedding stays a windowed decision).
  EXPECT_EQ(ctl.observe(spilling_deep(0)), AdmissionDecision::kHold);
}

TEST(Admission, ShedLatchesUntilDepthRecovers) {
  AdmissionController ctl(config(1, 0));
  EXPECT_EQ(ctl.observe(deep(0)), AdmissionDecision::kShed);
  EXPECT_TRUE(ctl.shedding());
  // Still deep: stay latched (kHold, not another kShed).
  EXPECT_EQ(ctl.observe(deep(0)), AdmissionDecision::kHold);
  EXPECT_TRUE(ctl.shedding());
  // Depth at/below recover_depth: release.
  EXPECT_EQ(ctl.observe(quiet(0)), AdmissionDecision::kStopShed);
  EXPECT_FALSE(ctl.shedding());
}

TEST(Admission, RecoveryClimbsAfterConsecutiveQuietWindows) {
  AdmissionConfig cfg = config(1, 0);
  cfg.recover_window = 3;
  AdmissionController ctl(cfg);
  // Two quiet windows, interrupted, then three straight: only the straight
  // run recovers.
  EXPECT_EQ(ctl.observe(quiet(1, 1)), AdmissionDecision::kHold);
  EXPECT_EQ(ctl.observe(quiet(1, 1)), AdmissionDecision::kHold);
  EXPECT_EQ(ctl.observe({0.5, false, 1, 1}), AdmissionDecision::kHold);
  EXPECT_EQ(ctl.observe(quiet(1, 1)), AdmissionDecision::kHold);
  EXPECT_EQ(ctl.observe(quiet(1, 1)), AdmissionDecision::kHold);
  EXPECT_EQ(ctl.observe(quiet(1, 1)), AdmissionDecision::kRecover);
}

TEST(Admission, NoRecoveryAtRungZeroOrWhenDisabled) {
  {
    AdmissionConfig cfg = config(1, 0);
    cfg.recover_window = 1;
    AdmissionController ctl(cfg);
    // rungs_used == 0: already on the preferred codec, nothing to climb.
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(ctl.observe(quiet(1, 0)), AdmissionDecision::kHold);
    }
  }
  {
    // recover_window == 0 (the default): degradations stick.
    AdmissionController ctl(config(1, 0));
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(ctl.observe(quiet(1, 1)), AdmissionDecision::kHold);
    }
  }
}

TEST(Admission, NormalizesDegenerateConfig) {
  AdmissionConfig cfg;
  cfg.window = 0;        // -> 1 (decision every sample)
  cfg.degrade_depth = 0.9;
  cfg.shed_depth = 0.5;  // below degrade: clamped up to 0.9
  AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.config().window, 1u);
  EXPECT_DOUBLE_EQ(ctl.config().shed_depth, 0.9);
}

TEST(Admission, DeterministicAcrossRuns) {
  const std::vector<AdmissionSample> trace = {
      deep(2),         quiet(2),    deep(2, 0), spilling_deep(1),
      deep(1, 1),      quiet(1, 1), deep(0, 2), deep(0, 2),
      quiet(0, 2),     quiet(0, 2), deep(2),    spilling_deep(0),
      {0.5, false, 1, 1},
  };
  const auto run = [&] {
    AdmissionConfig cfg = config(2, 1);
    cfg.recover_window = 1;
    AdmissionController ctl(cfg);
    std::vector<AdmissionDecision> decisions;
    for (const auto& s : trace) decisions.push_back(ctl.observe(s));
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
