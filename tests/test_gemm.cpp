/// GEMM kernels vs the naive reference, across transpose modes and shapes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/gemm.hpp"
#include "core/ops.hpp"
#include "tests/reference.hpp"
#include "util/half.hpp"

namespace {

using nc::core::hgemm;
using nc::core::sgemm;
using nc::testref::naive_gemm;
using nc::testref::random_tensor;

struct GemmCase {
  std::int64_t m, n, k;
  bool trans_a, trans_b;
  float alpha, beta;
};

class GemmParam : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParam, MatchesNaive) {
  const auto& p = GetParam();
  // Stored matrix extents depend on the transpose flags.
  const auto a = random_tensor({p.trans_a ? p.k : p.m, p.trans_a ? p.m : p.k}, 1);
  const auto b = random_tensor({p.trans_b ? p.n : p.k, p.trans_b ? p.k : p.n}, 2);
  auto c_ref = random_tensor({p.m, p.n}, 3);
  auto c_opt = c_ref.clone();

  const std::int64_t lda = a.dim(1), ldb = b.dim(1), ldc = p.n;
  naive_gemm(p.trans_a, p.trans_b, p.m, p.n, p.k, p.alpha, a.data(), lda,
             b.data(), ldb, p.beta, c_ref.data(), ldc);
  sgemm(p.trans_a, p.trans_b, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(),
        ldb, p.beta, c_opt.data(), ldc);

  EXPECT_LT(nc::testref::max_abs_diff(c_ref, c_opt), 1e-3)
      << "m=" << p.m << " n=" << p.n << " k=" << p.k << " tA=" << p.trans_a
      << " tB=" << p.trans_b;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmParam,
    ::testing::Values(
        // Typical conv-forward shapes: small M, huge N.
        GemmCase{8, 3072, 48, false, false, 1.f, 0.f},
        GemmCase{32, 768, 288, false, false, 1.f, 0.f},
        // Backward-weight (NT) and backward-data (TN) shapes.
        GemmCase{32, 288, 768, false, true, 1.f, 1.f},
        GemmCase{288, 768, 32, true, false, 1.f, 0.f},
        // TT for completeness.
        GemmCase{17, 19, 23, true, true, 1.f, 0.f},
        // Degenerate and boundary sizes.
        GemmCase{1, 1, 1, false, false, 1.f, 0.f},
        GemmCase{1, 129, 1, false, false, 2.f, 0.f},
        GemmCase{16, 128, 16, false, false, 1.f, 0.f},
        GemmCase{33, 257, 65, false, false, 1.f, 0.5f},
        GemmCase{5, 7, 11, false, false, -1.5f, 2.f},
        // Exactly one tile, and one-past-a-tile.
        GemmCase{16, 128, 32, false, false, 1.f, 0.f},
        GemmCase{17, 129, 32, false, false, 1.f, 0.f}));

TEST(Gemm, AlphaZeroOnlyAppliesBeta) {
  auto c = random_tensor({4, 4}, 9);
  auto expect = c.clone();
  for (std::int64_t i = 0; i < expect.numel(); ++i) expect[i] *= 0.5f;
  const auto a = random_tensor({4, 4}, 10);
  sgemm(false, false, 4, 4, 4, 0.f, a.data(), 4, a.data(), 4, 0.5f, c.data(), 4);
  EXPECT_LT(nc::testref::max_abs_diff(c, expect), 1e-7);
}

TEST(Gemm, HalfGemmMatchesFloatWithinFp16Tolerance) {
  const std::int64_t m = 16, n = 200, k = 64;
  const auto a = random_tensor({m, k}, 21);
  const auto b = random_tensor({k, n}, 22);
  std::vector<nc::util::half> ah(static_cast<std::size_t>(m * k));
  std::vector<nc::util::half> bh(static_cast<std::size_t>(k * n));
  nc::util::float_to_half_n(a.data(), ah.data(), m * k);
  nc::util::float_to_half_n(b.data(), bh.data(), k * n);

  nc::core::Tensor c_ref({m, n}), c_half({m, n});
  naive_gemm(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.f,
             c_ref.data(), n);
  hgemm(m, n, k, ah.data(), k, bh.data(), n, c_half.data(), n);

  // fp16 operand rounding: relative error ~2^-11 per operand, accumulation
  // in fp32.  |c| <= k here since inputs are in [-1, 1].
  EXPECT_LT(nc::testref::max_abs_diff(c_ref, c_half), k * 2e-3);
}

TEST(Gemm, HalfGemmRaggedWidths) {
  // Exercise the 16/8/scalar tail split in the F16C kernel.
  for (std::int64_t n : {1, 7, 8, 9, 15, 16, 17, 23, 31, 33}) {
    const std::int64_t m = 3, k = 5;
    const auto a = random_tensor({m, k}, 30 + n);
    const auto b = random_tensor({k, n}, 60 + n);
    std::vector<nc::util::half> ah(static_cast<std::size_t>(m * k));
    std::vector<nc::util::half> bh(static_cast<std::size_t>(k * n));
    nc::util::float_to_half_n(a.data(), ah.data(), m * k);
    nc::util::float_to_half_n(b.data(), bh.data(), k * n);
    nc::core::Tensor c_ref({m, n}), c_half({m, n});
    naive_gemm(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.f,
               c_ref.data(), n);
    hgemm(m, n, k, ah.data(), k, bh.data(), n, c_half.data(), n);
    EXPECT_LT(nc::testref::max_abs_diff(c_ref, c_half), 0.02) << "n=" << n;
  }
}

TEST(Gemm, ZeroDimensionsAreNoOps) {
  nc::core::Tensor c({2, 2});
  nc::core::fill(c, 5.f);
  const auto a = random_tensor({2, 2}, 40);
  sgemm(false, false, 2, 2, 0, 1.f, a.data(), 2, a.data(), 2, 1.f, c.data(), 2);
  EXPECT_EQ(c[0], 5.f);  // k = 0: C unchanged (beta = 1)
}

}  // namespace
