/// Convolution layers vs direct references + gradient checks.
#include <gtest/gtest.h>

#include "core/conv.hpp"
#include "core/gradcheck.hpp"
#include "tests/reference.hpp"

namespace {

using nc::core::Conv2d;
using nc::core::Conv3d;
using nc::core::ConvTranspose2d;
using nc::core::ConvTranspose3d;
using nc::core::Mode;
using nc::core::Tensor;
using nc::testref::max_abs_diff;
using nc::testref::random_tensor;

using A2 = std::array<std::int64_t, 2>;
using A3 = std::array<std::int64_t, 3>;

struct Conv2dCase {
  std::int64_t in_c, out_c, h, w, k, s, p;
  bool bias;
};

class Conv2dParam : public ::testing::TestWithParam<Conv2dCase> {};

TEST_P(Conv2dParam, ForwardMatchesDirect) {
  const auto& c = GetParam();
  nc::util::Rng rng(3);
  Conv2d layer(c.in_c, c.out_c, A2{c.k, c.k}, A2{c.s, c.s}, A2{c.p, c.p},
               c.bias, rng);
  const Tensor x = random_tensor({2, c.in_c, c.h, c.w}, 11);
  const Tensor got = layer.forward(x, Mode::kEval);

  std::vector<nc::core::Param*> params;
  layer.collect_params(params);
  const float* bias = c.bias ? params[1]->value.data() : nullptr;
  const Tensor ref =
      nc::testref::naive_conv2d(x, params[0]->value, bias, c.s, c.s, c.p, c.p);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_LT(max_abs_diff(got, ref), 1e-3);
}

TEST_P(Conv2dParam, HalfForwardCloseToFloat) {
  const auto& c = GetParam();
  nc::util::Rng rng(4);
  Conv2d layer(c.in_c, c.out_c, A2{c.k, c.k}, A2{c.s, c.s}, A2{c.p, c.p},
               c.bias, rng);
  const Tensor x = random_tensor({2, c.in_c, c.h, c.w}, 12);
  const Tensor full = layer.forward(x, Mode::kEval);
  const Tensor half = layer.forward(x, Mode::kEvalHalf);
  ASSERT_EQ(full.shape(), half.shape());
  EXPECT_LT(max_abs_diff(full, half), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    GeometrySweep, Conv2dParam,
    ::testing::Values(Conv2dCase{3, 5, 12, 14, 3, 1, 1, true},
                      Conv2dCase{1, 4, 16, 16, 4, 2, 1, true},   // BCAE downsample
                      Conv2dCase{4, 2, 9, 11, 3, 2, 1, false},
                      Conv2dCase{16, 32, 12, 16, 7, 1, 3, true}, // Algorithm 1 L_in
                      Conv2dCase{8, 8, 8, 8, 1, 1, 0, true},     // 1x1 fast path
                      Conv2dCase{2, 3, 5, 5, 5, 1, 2, true},
                      Conv2dCase{3, 3, 7, 9, 3, 3, 0, false}));

TEST(Conv2d, GradCheck) {
  nc::util::Rng rng(5);
  Conv2d layer(2, 3, A2{3, 3}, A2{2, 2}, A2{1, 1}, true, rng);
  const Tensor x = random_tensor({2, 2, 6, 6}, 13);
  const auto res = nc::core::gradcheck_layer(layer, x, 101);
  EXPECT_LT(res.max_rel_err, 5e-2) << "worst: " << res.worst_param;
}

TEST(Conv2d, OneByOneGradCheck) {
  nc::util::Rng rng(6);
  Conv2d layer(3, 4, A2{1, 1}, A2{1, 1}, A2{0, 0}, true, rng);
  const Tensor x = random_tensor({1, 3, 5, 5}, 14);
  const auto res = nc::core::gradcheck_layer(layer, x, 102);
  EXPECT_LT(res.max_rel_err, 5e-2) << "worst: " << res.worst_param;
}

TEST(Conv2d, RejectsWrongInputRankOrChannels) {
  nc::util::Rng rng(7);
  Conv2d layer(3, 4, A2{3, 3}, A2{1, 1}, A2{1, 1}, true, rng);
  EXPECT_THROW(layer.forward(Tensor({1, 2, 5, 5}), Mode::kEval),
               std::invalid_argument);
  EXPECT_THROW(layer.forward(Tensor({3, 5, 5}), Mode::kEval),
               std::invalid_argument);
}

TEST(Conv2d, BackwardBeforeForwardThrows) {
  nc::util::Rng rng(8);
  Conv2d layer(1, 1, A2{3, 3}, A2{1, 1}, A2{1, 1}, false, rng);
  EXPECT_THROW(layer.backward(Tensor({1, 1, 3, 3})), std::logic_error);
}

struct Conv3dCase {
  std::int64_t in_c, out_c, d, h, w;
  A3 k, s, p;
};

class Conv3dParam : public ::testing::TestWithParam<Conv3dCase> {};

TEST_P(Conv3dParam, ForwardMatchesDirect) {
  const auto& c = GetParam();
  nc::util::Rng rng(9);
  Conv3d layer(c.in_c, c.out_c, c.k, c.s, c.p, true, rng);
  const Tensor x = random_tensor({2, c.in_c, c.d, c.h, c.w}, 15);
  const Tensor got = layer.forward(x, Mode::kEval);

  std::vector<nc::core::Param*> params;
  layer.collect_params(params);
  const Tensor ref = nc::testref::naive_conv3d(
      x, params[0]->value, params[1]->value.data(), c.s[0], c.s[1], c.s[2],
      c.p[0], c.p[1], c.p[2]);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_LT(max_abs_diff(got, ref), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    GeometrySweep, Conv3dParam,
    ::testing::Values(
        // The BCAE 3-D downsampling geometry: halve azim/horiz, keep radial.
        Conv3dCase{1, 4, 6, 8, 8, A3{3, 4, 4}, A3{1, 2, 2}, A3{1, 1, 1}},
        Conv3dCase{2, 3, 4, 6, 6, A3{3, 3, 3}, A3{1, 1, 1}, A3{1, 1, 1}},
        Conv3dCase{3, 2, 5, 5, 5, A3{1, 1, 1}, A3{1, 1, 1}, A3{0, 0, 0}},
        Conv3dCase{2, 2, 4, 5, 7, A3{2, 3, 2}, A3{2, 1, 2}, A3{0, 1, 0}}));

TEST(Conv3d, GradCheck) {
  nc::util::Rng rng(10);
  Conv3d layer(2, 2, A3{2, 3, 3}, A3{1, 2, 2}, A3{0, 1, 1}, true, rng);
  const Tensor x = random_tensor({1, 2, 3, 6, 6}, 16);
  const auto res = nc::core::gradcheck_layer(layer, x, 103);
  EXPECT_LT(res.max_rel_err, 5e-2) << "worst: " << res.worst_param;
}

TEST(Conv3d, HalfForwardCloseToFloat) {
  nc::util::Rng rng(11);
  Conv3d layer(1, 8, A3{3, 4, 4}, A3{1, 2, 2}, A3{1, 1, 1}, true, rng);
  const Tensor x = random_tensor({2, 1, 6, 12, 12}, 17);
  const Tensor full = layer.forward(x, Mode::kEval);
  const Tensor half = layer.forward(x, Mode::kEvalHalf);
  EXPECT_LT(max_abs_diff(full, half), 0.05);
}

TEST(ConvTranspose2d, ForwardMatchesDirectScatter) {
  nc::util::Rng rng(12);
  ConvTranspose2d layer(3, 2, A2{4, 4}, A2{2, 2}, A2{1, 1}, true, rng);
  const Tensor x = random_tensor({2, 3, 5, 6}, 18);
  const Tensor got = layer.forward(x, Mode::kEval);

  std::vector<nc::core::Param*> params;
  layer.collect_params(params);
  const Tensor ref = nc::testref::naive_deconv2d(
      x, params[0]->value, params[1]->value.data(), 2, 2, 1, 1);
  ASSERT_EQ(got.shape(), ref.shape());
  // (in-1)*2 - 2 + 4: doubles the spatial size.
  EXPECT_EQ(got.dim(2), 10);
  EXPECT_EQ(got.dim(3), 12);
  EXPECT_LT(max_abs_diff(got, ref), 1e-3);
}

TEST(ConvTranspose2d, GradCheck) {
  nc::util::Rng rng(13);
  ConvTranspose2d layer(2, 2, A2{4, 4}, A2{2, 2}, A2{1, 1}, true, rng);
  const Tensor x = random_tensor({1, 2, 3, 4}, 19);
  const auto res = nc::core::gradcheck_layer(layer, x, 104);
  EXPECT_LT(res.max_rel_err, 5e-2) << "worst: " << res.worst_param;
}

TEST(ConvTranspose2d, HalfForwardCloseToFloat) {
  nc::util::Rng rng(14);
  ConvTranspose2d layer(4, 3, A2{4, 4}, A2{2, 2}, A2{1, 1}, true, rng);
  const Tensor x = random_tensor({2, 4, 6, 6}, 20);
  const Tensor full = layer.forward(x, Mode::kEval);
  const Tensor half = layer.forward(x, Mode::kEvalHalf);
  EXPECT_LT(max_abs_diff(full, half), 0.05);
}

TEST(ConvTranspose3d, InvertsDownsampleShape) {
  // The BCAE decoder stage must exactly undo the encoder stage's shape map.
  nc::util::Rng rng(15);
  Conv3d down(1, 4, A3{3, 4, 4}, A3{1, 2, 2}, A3{1, 1, 1}, true, rng);
  ConvTranspose3d up(4, 1, A3{3, 4, 4}, A3{1, 2, 2}, A3{1, 1, 1}, true, rng);
  const Tensor x = random_tensor({1, 1, 6, 12, 16}, 21);
  const Tensor code = down.forward(x, Mode::kEval);
  EXPECT_EQ(code.shape(), (nc::core::Shape{1, 4, 6, 6, 8}));
  const Tensor back = up.forward(code, Mode::kEval);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(ConvTranspose3d, GradCheck) {
  nc::util::Rng rng(16);
  ConvTranspose3d layer(2, 2, A3{2, 4, 4}, A3{1, 2, 2}, A3{0, 1, 1}, true, rng);
  const Tensor x = random_tensor({1, 2, 2, 3, 3}, 22);
  const auto res = nc::core::gradcheck_layer(layer, x, 105);
  EXPECT_LT(res.max_rel_err, 5e-2) << "worst: " << res.worst_param;
}

TEST(ConvTranspose3d, HalfForwardCloseToFloat) {
  nc::util::Rng rng(17);
  ConvTranspose3d layer(4, 2, A3{3, 4, 4}, A3{1, 2, 2}, A3{1, 1, 1}, true, rng);
  const Tensor x = random_tensor({1, 4, 4, 5, 5}, 23);
  const Tensor full = layer.forward(x, Mode::kEval);
  const Tensor half = layer.forward(x, Mode::kEvalHalf);
  EXPECT_LT(max_abs_diff(full, half), 0.05);
}

TEST(Conv2d, HalfCacheInvalidationPicksUpNewWeights) {
  nc::util::Rng rng(18);
  Conv2d layer(1, 1, A2{1, 1}, A2{1, 1}, A2{0, 0}, false, rng);
  const Tensor x = Tensor::full({1, 1, 2, 2}, 1.f);
  const Tensor before = layer.forward(x, Mode::kEvalHalf);
  std::vector<nc::core::Param*> params;
  layer.collect_params(params);
  params[0]->value[0] += 1.f;
  // Without invalidation the stale fp16 weight would be reused.
  layer.invalidate_half_cache();
  const Tensor after = layer.forward(x, Mode::kEvalHalf);
  EXPECT_NEAR(after[0] - before[0], 1.f, 1e-2);
}

}  // namespace
