/// The codec-pluggable contract, held uniformly: every registered WedgeCodec
/// must round-trip bit-exactly through the streamed deployment path under
/// both intake layers, corrupt envelopes must fail loudly at the right layer
/// (deserialize for unknown ids, wedges_failed for poisoned payloads and
/// wrong-codec decodes), and the spill tier must stay lossless under a
/// baseline codec just as it does under the BCAE.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "codec/stream.hpp"
#include "codec/wedge_codec.hpp"
#include "tests/stream_test_utils.hpp"
#include "util/serialize.hpp"

namespace {

using nc::codec::IntakeMode;
using nc::codec::StreamCompressor;
using nc::codec::StreamDecompressor;
using nc::codec::StreamOptions;
using nc::codec::WedgeCodec;
using nc::codec::WedgeCodecId;
using nc::codec::WedgeEnvelope;
using nc::core::Tensor;
using nc::testutil::expect_bit_identical;
using nc::testutil::raw_wedge;
using nc::util::SerializeError;

/// One model shared by every arena instantiation: the BCAE adapters borrow
/// it, the baselines ignore it.  BCAE-2D matches the deployment example
/// (streaming_daq); its saturating fp16 activation cast keeps the untrained
/// decoder finite, so bit-exactness assertions never compare NaNs.
nc::bcae::BcaeModel& arena_model() {
  static nc::bcae::BcaeModel model =
      nc::bcae::make_bcae_2d(nc::bcae::Bcae2dConfig{}, 81);
  return model;
}

std::unique_ptr<WedgeCodec> arena_codec(const std::string& name) {
  return nc::codec::make_wedge_codec(name, arena_model());
}

std::string serialized(const WedgeEnvelope& env) {
  std::ostringstream os;
  env.serialize(os);
  return os.str();
}

/// Every registered codec, under both intake layers.
class CodecArena
    : public ::testing::TestWithParam<std::tuple<IntakeMode, std::string>> {
 protected:
  IntakeMode intake() const { return std::get<0>(GetParam()); }
  std::string codec_name() const { return std::get<1>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecArena,
    ::testing::Combine(::testing::Values(IntakeMode::kSingleQueue,
                                         IntakeMode::kSharded),
                       ::testing::ValuesIn(nc::codec::registered_codec_names())),
    [](const ::testing::TestParamInfo<std::tuple<IntakeMode, std::string>>& tpi) {
      std::string name = std::string(nc::codec::to_string(std::get<0>(tpi.param))) +
                         "_" + std::get<1>(tpi.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(CodecArena, StreamRoundTripMatchesDirectCodecCallsBitExact) {
  const auto codec = arena_codec(codec_name());
  const int n = 5;

  // Ground truth: direct (unstreamed) codec calls on the same wedges.
  std::vector<WedgeEnvelope> direct;
  std::vector<Tensor> direct_decoded;
  for (int i = 0; i < n; ++i) {
    direct.push_back(codec->compress(raw_wedge(static_cast<std::size_t>(i))));
    direct_decoded.push_back(codec->decompress(direct.back()));
  }

  StreamOptions opt;
  opt.intake = intake();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 2;

  // Write side: streamed envelopes must be byte-identical to direct ones.
  std::mutex store_mutex;
  std::map<std::uint64_t, WedgeEnvelope> storage;
  StreamCompressor compressor(*codec, opt,
                              [&](std::uint64_t seq, WedgeEnvelope&& env) {
                                std::lock_guard<std::mutex> lock(store_mutex);
                                storage.emplace(seq, std::move(env));
                              });
  for (int i = 0; i < n; ++i) {
    compressor.submit(raw_wedge(static_cast<std::size_t>(i)));
  }
  const auto cstats = compressor.finish();
  EXPECT_EQ(cstats.wedges_compressed, n);
  EXPECT_EQ(cstats.wedges_failed, 0);
  ASSERT_EQ(storage.size(), static_cast<std::size_t>(n));
  std::int64_t payload_total = 0;
  for (int i = 0; i < n; ++i) {
    const auto& env = storage.at(static_cast<std::uint64_t>(i));
    const auto& want = direct[static_cast<std::size_t>(i)];
    EXPECT_EQ(env.codec_id, codec->codec_id());
    EXPECT_EQ(env.wedge_shape, want.wedge_shape);
    EXPECT_EQ(serialized(env), serialized(want)) << "wedge " << i;
    payload_total += env.payload_bytes();
  }
  EXPECT_EQ(cstats.payload_bytes, payload_total);

  // Read side: a serialize/deserialize hop (the storage format), then the
  // streamed decode must match the direct decode voxel for voxel.
  StreamOptions dopt = opt;
  dopt.ordered = true;
  std::vector<Tensor> decoded;
  StreamDecompressor decompressor(
      *codec, dopt, [&](std::uint64_t, Tensor&& w) { decoded.push_back(std::move(w)); });
  for (const auto& [seq, env] : storage) {
    std::istringstream is(serialized(env));
    decompressor.submit(WedgeEnvelope::deserialize(is));
  }
  const auto dstats = decompressor.finish();
  EXPECT_EQ(dstats.wedges_compressed, n);
  EXPECT_EQ(dstats.wedges_failed, 0);
  ASSERT_EQ(decoded.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    expect_bit_identical(decoded[static_cast<std::size_t>(i)],
                         direct_decoded[static_cast<std::size_t>(i)]);
  }
}

TEST_P(CodecArena, TruncatedPayloadFailsWedgeWithoutKillingStream) {
  const auto codec = arena_codec(codec_name());
  const int n = 4;
  std::vector<WedgeEnvelope> envs;
  for (int i = 0; i < n; ++i) {
    envs.push_back(codec->compress(raw_wedge(static_cast<std::size_t>(i))));
  }
  // Every codec's payload embeds structure (CompressedWedge header or the
  // baseline bitstream); cutting it in half must fail decode, not crash.
  envs[1].payload.resize(envs[1].payload.size() / 2);

  StreamOptions opt;
  opt.intake = intake();
  opt.batch_size = 1;  // contain the failure to the poisoned wedge
  opt.n_workers = 2;
  std::atomic<int> decoded{0};
  StreamDecompressor stream(*codec, opt,
                            [&](std::uint64_t, Tensor&&) { ++decoded; });
  for (const auto& env : envs) stream.submit(env);
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_failed, 1);
  EXPECT_EQ(stats.wedges_compressed, n - 1);
  EXPECT_EQ(decoded.load(), n - 1);
}

// --- envelope wire-format hardening (codec-independent) ---------------------

// Wire layout: magic "NCMP"+"WENV" (8) | u32 version (at 8) | u32 codec_id
// (at 12) | 3x i64 wedge dims (at 16) | u64 payload length (at 40) | payload.
constexpr std::size_t kEnvVersionOffset = 8;
constexpr std::size_t kEnvCodecIdOffset = 12;
constexpr std::size_t kEnvPayloadLenOffset = 40;

TEST(WedgeEnvelope, DeserializeRejectsUnknownCodecId) {
  const auto codec = arena_codec("zfp");
  auto bytes = serialized(codec->compress(raw_wedge(0)));
  bytes[kEnvCodecIdOffset] = 0x7F;  // id 127: in no registry, present or future
  std::istringstream is(bytes);
  EXPECT_THROW((void)WedgeEnvelope::deserialize(is), SerializeError);
}

TEST(WedgeEnvelope, DeserializeRejectsVersionBump) {
  const auto codec = arena_codec("sz");
  auto bytes = serialized(codec->compress(raw_wedge(0)));
  bytes[kEnvVersionOffset] = 0x2;  // version 2 does not exist yet
  std::istringstream is(bytes);
  EXPECT_THROW((void)WedgeEnvelope::deserialize(is), SerializeError);
}

TEST(WedgeEnvelope, DeserializeRejectsPayloadLengthBeyondBuffer) {
  // A length field pointing past the end of the actual bytes must surface
  // as SerializeError from the bounded payload read — not a giant
  // allocation, not a short read silently accepted.
  const auto codec = arena_codec("zfp");
  auto bytes = serialized(codec->compress(raw_wedge(0)));
  const std::uint64_t claimed =
      bytes.size();  // > remaining payload by the header size
  std::memcpy(bytes.data() + kEnvPayloadLenOffset, &claimed, sizeof(claimed));
  std::istringstream is(bytes);
  EXPECT_THROW((void)WedgeEnvelope::deserialize(is), SerializeError);
}

TEST(WedgeEnvelope, DeserializeRejectsHugePayloadLengthWithoutAllocating) {
  // Same attack with an absurd length: the plausibility cap must reject it
  // before any allocation happens.
  const auto codec = arena_codec("sz");
  auto bytes = serialized(codec->compress(raw_wedge(0)));
  const std::uint64_t claimed = std::uint64_t{1} << 62;
  std::memcpy(bytes.data() + kEnvPayloadLenOffset, &claimed, sizeof(claimed));
  std::istringstream is(bytes);
  EXPECT_THROW((void)WedgeEnvelope::deserialize(is), SerializeError);
}

TEST(WedgeEnvelope, DeserializeRejectsTruncatedStream) {
  const auto codec = arena_codec("mgard");
  const auto bytes = serialized(codec->compress(raw_wedge(0)));
  std::istringstream is(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)WedgeEnvelope::deserialize(is), SerializeError);
}

TEST(WedgeEnvelope, WrongCodecDecodeThrowsDirectly) {
  const auto zfp = arena_codec("zfp");
  const auto sz = arena_codec("sz");
  const auto env = zfp->compress(raw_wedge(0));
  EXPECT_THROW((void)sz->decompress(env), std::invalid_argument);
}

TEST(WedgeEnvelope, WrongCodecStreamDecodeLandsInFailed) {
  // A mixed-up deployment: zfp-tagged envelopes fed to an sz-backed
  // decompressor.  Every wedge must land in wedges_failed — never be
  // misdecoded with the wrong mechanism — and the workers must survive.
  const auto zfp = arena_codec("zfp");
  const auto sz = arena_codec("sz");
  const int n = 4;
  StreamOptions opt;
  opt.batch_size = 1;
  opt.n_workers = 2;
  std::atomic<int> decoded{0};
  StreamDecompressor stream(*sz, opt,
                            [&](std::uint64_t, Tensor&&) { ++decoded; });
  for (int i = 0; i < n; ++i) {
    stream.submit(zfp->compress(raw_wedge(static_cast<std::size_t>(i))));
  }
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_failed, n);
  EXPECT_EQ(stats.wedges_compressed, 0);
  EXPECT_EQ(decoded.load(), 0);
}

// --- spill tier under a baseline codec --------------------------------------

TEST(CodecArenaSpill, BaselineCodecSpillReplayCycleIsLossless) {
  // The read-side spill stores serialized WedgeEnvelope bytes, so the tier
  // must be codec-agnostic: a burst of mgard envelopes beyond the intake
  // bound lands on disk and every wedge still comes out.
  const auto codec = arena_codec("mgard");
  const int n = 48;
  std::vector<WedgeEnvelope> envs;
  for (int i = 0; i < n; ++i) {
    envs.push_back(codec->compress(raw_wedge(static_cast<std::size_t>(i))));
  }

  StreamOptions opt;
  opt.queue_capacity = 4;  // force the burst past the intake bound
  opt.batch_size = 2;
  opt.n_workers = 1;
  opt.spill_dir = ::testing::TempDir() + "nc-codec-arena-spill";
  opt.spill_deadline_s = 10.0;
  std::atomic<int> decoded{0};
  StreamDecompressor stream(*codec, opt,
                            [&](std::uint64_t, Tensor&&) { ++decoded; });
  for (const auto& env : envs) {
    EXPECT_TRUE(stream.try_submit(env));  // accepted or spilled, never lost
  }
  const auto stats = stream.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_replayed, stats.wedges_spilled);
  EXPECT_EQ(decoded.load(), n);
  std::filesystem::remove_all(opt.spill_dir);
}

}  // namespace
