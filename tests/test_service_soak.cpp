/// \file test_service_soak.cpp
/// \brief Slow-labeled overload soak for the compression service: a firehose
///        driven well past the shared pool's capacity with a degradation
///        ladder and a spill tier configured.
///
/// What the soak must show (the PR's acceptance demo, in test form):
///  * the firehose session degrades down its ladder — and if it ever sheds,
///    the ladder was exhausted first (degradations strictly before sheds);
///  * a polite session riding the same pool finishes with zero shed;
///  * on-disk spill stays under spill_max_bytes throughout;
///  * per-session ordered emission survives spill replay and codec hops.
///
/// Unlike test_service.cpp this runs the REAL admission thread
/// (admission_interval_s > 0) and real time-based overload, so it lives in
/// the slow suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bcae/model.hpp"
#include "codec/service.hpp"
#include "codec/wedge_codec.hpp"
#include "tests/stream_test_utils.hpp"

namespace {

namespace fs = std::filesystem;

using nc::codec::CompressionService;
using nc::codec::ServiceOptions;
using nc::codec::SessionOptions;
using nc::codec::SubmitResult;
using nc::codec::WedgeCodec;
using nc::codec::WedgeEnvelope;
using nc::core::Tensor;
using nc::testutil::raw_wedge;

const WedgeCodec& zfp_codec() {
  static nc::bcae::BcaeModel model = nc::bcae::make_bcae_ht(81);
  static const std::unique_ptr<WedgeCodec> codec =
      nc::codec::make_wedge_codec("zfp", model);
  return *codec;
}

/// Rung-0 codec: real zfp output, but throttled hard enough that the
/// firehose outruns the pool by >2x and admission has to act.
class ThrottledCodec : public WedgeCodec {
 public:
  explicit ThrottledCodec(const WedgeCodec& inner) : inner_(inner) {}
  std::uint8_t codec_id() const override { return inner_.codec_id(); }
  std::string name() const override { return "throttled-" + inner_.name(); }
  std::vector<WedgeEnvelope> compress_batch(
      const std::vector<Tensor>& wedges) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return inner_.compress_batch(wedges);
  }
  std::vector<Tensor> decompress_batch(
      const std::vector<WedgeEnvelope>& envelopes) const override {
    return inner_.decompress_batch(envelopes);
  }

 private:
  const WedgeCodec& inner_;
};

TEST(ServiceSoak, OverloadDegradesBeforeSheddingAndBoundsSpill) {
  const fs::path dir = fs::temp_directory_path() / "nc_service_soak";
  fs::remove_all(dir);
  fs::create_directories(dir);

  ThrottledCodec throttled(zfp_codec());
  ServiceOptions opt;
  opt.pipeline.n_workers = 2;
  opt.pipeline.queue_capacity = 4;
  opt.pipeline.batch_size = 2;
  opt.pipeline.spill_dir = dir.string();
  // Generous bound (the quota-exhaustion path itself is covered by the SPIL
  // format tests; tripping it here would drop wedges and stall session
  // cursors by design) — the soak asserts the hwm honors it.
  opt.pipeline.spill_max_bytes = std::size_t{256} << 20;
  // Each spilled submit first waits 1 ms for intake space: this throttles
  // the scheduler's drain rate below the firehose's submit rate, so the
  // firehose staging queue deterministically backs up while spill evidence
  // accumulates — exactly the state the emergency degrade path watches.
  opt.pipeline.spill_deadline_s = 0.001;
  opt.admission_interval_s = 0.002;  // real admission thread
  CompressionService service(opt);

  std::mutex fire_mutex;
  std::vector<std::uint64_t> fire_seqs;
  SessionOptions fire_opt;
  fire_opt.ladder = {&throttled, &zfp_codec()};
  fire_opt.queue_capacity = 16;
  fire_opt.sink = [&](std::uint64_t seq, WedgeEnvelope&&) {
    std::lock_guard<std::mutex> lock(fire_mutex);
    fire_seqs.push_back(seq);
  };
  const auto fire = service.open_session(std::move(fire_opt));

  std::mutex polite_mutex;
  std::vector<std::uint64_t> polite_seqs;
  SessionOptions polite_opt;
  polite_opt.ladder = {&zfp_codec()};
  polite_opt.queue_capacity = 16;
  polite_opt.sink = [&](std::uint64_t seq, WedgeEnvelope&&) {
    std::lock_guard<std::mutex> lock(polite_mutex);
    polite_seqs.push_back(seq);
  };
  const auto polite = service.open_session(std::move(polite_opt));

  // ~2s of firehose: far more than the throttled rung-0 pool can absorb.
  const int kFireWedges = 1200;
  const int kPoliteWedges = 100;
  std::int64_t fire_offered = 0;
  std::thread firehose([&] {
    for (int i = 0; i < kFireWedges; ++i) {
      const auto r =
          service.try_submit(fire, raw_wedge(static_cast<std::size_t>(i)));
      if (r == SubmitResult::kAccepted || r == SubmitResult::kShed) {
        ++fire_offered;
      }
      if (i % 8 == 0) std::this_thread::yield();
    }
  });
  std::thread polite_client([&] {
    for (int i = 0; i < kPoliteWedges; ++i) {
      ASSERT_EQ(service.submit(polite, raw_wedge(static_cast<std::size_t>(i))),
                SubmitResult::kAccepted);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  firehose.join();
  polite_client.join();

  const auto fire_stats = service.close_session(fire);
  const auto polite_stats = service.close_session(polite);
  const auto totals = service.finish();
  fs::remove_all(dir);

  // The polite session never pays for the firehose.
  EXPECT_EQ(polite_stats.shed, 0);
  EXPECT_EQ(polite_stats.compressed, kPoliteWedges);
  {
    std::lock_guard<std::mutex> lock(polite_mutex);
    nc::testutil::expect_ordered_identity(
        polite_seqs, static_cast<std::uint64_t>(kPoliteWedges));
  }

  // The firehose was made to degrade; any shed implies the ladder was
  // already exhausted (rung pinned at the bottom), never a skipped rung.
  EXPECT_GE(fire_stats.degradations, 1)
      << "2x overload for ~2s must trip the ladder";
  if (fire_stats.shed > 0) {
    EXPECT_EQ(fire_stats.rung, 1u) << "shed with a rung still available";
    EXPECT_GE(fire_stats.degradations, 1);
  }
  EXPECT_EQ(fire_stats.submitted, fire_offered);
  EXPECT_EQ(fire_stats.compressed + fire_stats.shed + fire_stats.failed,
            fire_stats.submitted);
  EXPECT_EQ(fire_stats.failed, 0);
  {
    std::lock_guard<std::mutex> lock(fire_mutex);
    EXPECT_EQ(static_cast<std::int64_t>(fire_seqs.size()),
              fire_stats.compressed);
    EXPECT_TRUE(std::is_sorted(fire_seqs.begin(), fire_seqs.end()));
    EXPECT_EQ(std::adjacent_find(fire_seqs.begin(), fire_seqs.end()),
              fire_seqs.end())
        << "duplicate emission";
  }

  // Spill stayed bounded and (with a throttled pool and a 4-deep intake)
  // was actually exercised, round-tripping service items through the
  // session-tagged spill codec.
  EXPECT_GT(totals.pipeline.wedges_spilled, 0)
      << "soak never reached the spill tier; overload too weak";
  EXPECT_LE(totals.pipeline.spill_bytes_hwm,
            static_cast<std::int64_t>(opt.pipeline.spill_max_bytes));
  EXPECT_EQ(totals.wedges_shed, fire_stats.shed);
  EXPECT_GE(totals.degradations, 1);
}

}  // namespace
