/// Tests for the binary16 storage type: exactness, rounding, edge cases,
/// and agreement between the native (_Float16/F16C) and software paths.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/half.hpp"

namespace {

using nc::util::float_to_half_bits_sw;
using nc::util::half;
using nc::util::half_bits_to_float_sw;

TEST(Half, ExactlyRepresentableValuesRoundTrip) {
  // All integers up to 2048 and power-of-two fractions are exact in fp16.
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(static_cast<float>(half(f)), f) << "i=" << i;
  }
  for (float f : {0.5f, 0.25f, 0.125f, 1.5f, 3.75f, 0.0625f}) {
    EXPECT_EQ(static_cast<float>(half(f)), f);
    EXPECT_EQ(static_cast<float>(half(-f)), -f);
  }
}

TEST(Half, ZeroPreservesSign) {
  EXPECT_EQ(half(0.f).bits(), 0x0000);
  EXPECT_EQ(half(-0.f).bits(), 0x8000);
}

TEST(Half, RelativeErrorBounded) {
  // fp16 has 11 significand bits: relative error <= 2^-11 for normal range.
  for (float f = 1e-3f; f < 6e4f; f *= 1.37f) {
    const float back = static_cast<float>(half(f));
    EXPECT_NEAR(back, f, f * 0x1.0p-10f) << "f=" << f;
  }
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(static_cast<float>(half(1e6f))));
  EXPECT_TRUE(std::isinf(static_cast<float>(half(-1e6f))));
  EXPECT_GT(static_cast<float>(half(1e6f)), 0.f);
  EXPECT_LT(static_cast<float>(half(-1e6f)), 0.f);
}

TEST(Half, MaxFiniteValue) {
  // Largest finite fp16 value is 65504.
  EXPECT_EQ(static_cast<float>(half(65504.f)), 65504.f);
}

TEST(Half, SubnormalsRepresented) {
  // Smallest positive subnormal: 2^-24.
  const float tiny = 0x1.0p-24f;
  EXPECT_EQ(static_cast<float>(half(tiny)), tiny);
  // Below half of that underflows to zero.
  EXPECT_EQ(static_cast<float>(half(0x1.0p-26f)), 0.f);
}

TEST(Half, NanPropagates) {
  EXPECT_TRUE(std::isnan(static_cast<float>(half(std::nanf("")))));
}

TEST(Half, SoftwareConversionMatchesNativeBits) {
  // The software converter must agree with whatever the storage type does
  // (on x86-64 the native path uses hardware conversions).
  for (int i = 0; i < 20000; ++i) {
    float f;
    if (i % 3 == 0) {
      f = static_cast<float>((i - 10000) * 0.37);
    } else if (i % 3 == 1) {
      f = std::ldexp(1.f + 0.001f * static_cast<float>(i % 997), (i % 40) - 20);
    } else {
      f = -std::ldexp(1.f + 0.003f * static_cast<float>(i % 991), (i % 30) - 15);
    }
    EXPECT_EQ(half(f).bits(), float_to_half_bits_sw(f)) << "f=" << f;
  }
}

TEST(Half, SoftwareWidenInvertsSoftwareNarrowExactly) {
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const bool is_nan = ((h >> 10) & 0x1F) == 0x1F && (h & 0x3FF) != 0;
    const float f = half_bits_to_float_sw(h);
    if (is_nan) {
      EXPECT_TRUE(std::isnan(f));
      continue;
    }
    // Narrowing an exactly-representable value must return the same bits.
    EXPECT_EQ(float_to_half_bits_sw(f), h) << "bits=" << bits;
  }
}

TEST(Half, RoundToNearestEven) {
  // 2049 is exactly between 2048 and 2050 in fp16 -> ties to even (2048).
  EXPECT_EQ(static_cast<float>(half(2049.f)), 2048.f);
  // 2051 is between 2050 and 2052 -> ties to even (2052).
  EXPECT_EQ(static_cast<float>(half(2051.f)), 2052.f);
}

TEST(Half, SaturatingConversionClampsInsteadOfOverflowing) {
  // float_to_half_sat_n: out-of-range -> +/-65504 (tensor-core saturating
  // cast), NaN propagates, in-range bit-identical to the plain conversion.
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> src = {1e6f,   -1e6f, 65504.f, -65504.f, 65520.f,
                            1e38f,  inf,   -inf,    0.f,      -0.f,
                            1.5f,   -3.75f, std::nanf(""),    65519.f};
  std::vector<half> dst(src.size());
  nc::util::float_to_half_sat_n(src.data(), dst.data(),
                                static_cast<std::int64_t>(src.size()));
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float back = static_cast<float>(dst[i]);
    if (std::isnan(src[i])) {
      EXPECT_TRUE(std::isnan(back)) << i;
    } else if (src[i] > nc::util::kHalfMax) {
      // Includes 65520.f, which the plain conversion ties-to-even up to
      // infinity; saturation pins it to the max finite value instead.
      EXPECT_EQ(back, nc::util::kHalfMax) << "src=" << src[i];
    } else if (src[i] < -nc::util::kHalfMax) {
      EXPECT_EQ(back, -nc::util::kHalfMax) << "src=" << src[i];
    } else {
      // In range: must agree bit-for-bit with the non-saturating path.
      EXPECT_EQ(dst[i].bits(), half(src[i]).bits()) << "src=" << src[i];
      EXPECT_TRUE(std::isfinite(back)) << "src=" << src[i];
    }
  }
}

TEST(Half, SaturatingBulkMatchesScalarTail) {
  // Exercise both the 8-lane F16C path and the scalar tail with a length
  // that is not a multiple of 8; every finite input must land finite.
  std::vector<float> src(1003);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = std::sin(static_cast<float>(i)) * 1e6f;  // half overflows at 65504
  }
  std::vector<half> dst(src.size());
  nc::util::float_to_half_sat_n(src.data(), dst.data(),
                                static_cast<std::int64_t>(src.size()));
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float back = static_cast<float>(dst[i]);
    EXPECT_TRUE(std::isfinite(back)) << i;
    EXPECT_LE(std::abs(back), nc::util::kHalfMax) << i;
    if (std::abs(src[i]) <= nc::util::kHalfMax) {
      EXPECT_EQ(dst[i].bits(), half(src[i]).bits()) << i;  // in-range exact
    }
  }
}

TEST(Half, BulkConversionMatchesScalar) {
  std::vector<float> src(1003);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = std::sin(static_cast<float>(i)) * 100.f;
  }
  std::vector<half> dst(src.size());
  nc::util::float_to_half_n(src.data(), dst.data(), static_cast<std::int64_t>(src.size()));
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i].bits(), half(src[i]).bits()) << i;
  }
  std::vector<float> back(src.size());
  nc::util::half_to_float_n(dst.data(), back.data(), static_cast<std::int64_t>(src.size()));
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(back[i], static_cast<float>(dst[i])) << i;
  }
}

}  // namespace
