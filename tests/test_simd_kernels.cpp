/// Per-ISA equivalence suite for the runtime SIMD kernel layer
/// (core/simd_dispatch.hpp).  The contract under test: the integer kernels
/// (`qgemm`, `max_abs`, `quantize_scaled`) are bit-exact across every ISA
/// tier the host supports, `tile_hh` is ULP-bounded (FMA contraction), and
/// the dispatcher resolves NC_SIMD-style requests correctly.  Shapes are
/// deliberately awkward — k not a multiple of the packing quad, n straddling
/// the 16-column tile, degenerate m/n/k — so tail paths get the same
/// scrutiny as the vector body.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/conv.hpp"
#include "core/quantize.hpp"
#include "core/simd_dispatch.hpp"
#include "tests/reference.hpp"
#include "util/half.hpp"
#include "util/rng.hpp"

namespace {

using nc::core::Tensor;
using nc::core::simd::Isa;
using nc::core::simd::Kernels;

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (nc::core::simd::isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

/// Deterministic int8 fill in [lo, hi] (inclusive).
void fill_i8(nc::util::Rng& rng, std::int8_t* p, std::int64_t n, int lo,
             int hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::int8_t>(lo + static_cast<int>(rng.next_u64() % span));
  }
}

struct QShape {
  std::int64_t m, n, k;
};

// Awkward on purpose: k % 4 != 0 exercises the padded-A path, n % 16 != 0
// the tail tile, and the degenerate entries the early-outs.
const QShape kQgemmShapes[] = {
    {1, 1, 1},   {1, 16, 4},  {2, 15, 3},  {3, 17, 5},   {6, 33, 40},
    {4, 64, 1},  {5, 1, 7},   {2, 31, 0},  {7, 16, 129}, {16, 100, 37},
};

TEST(SimdDispatch, QgemmBitExactAcrossIsas) {
  nc::util::Rng rng(101);
  const Kernels& ref = nc::core::simd::kernels_for(Isa::kScalar);
  for (const QShape& s : kQgemmShapes) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(s.m * s.k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(s.k * s.n));
    std::vector<float> a_scales(static_cast<std::size_t>(s.m));
    // Weights obey the quantize_rows guarantee ([-127, 127], never -128);
    // activations use the full int8 range.
    fill_i8(rng, a.data(), s.m * s.k, -127, 127);
    fill_i8(rng, b.data(), s.k * s.n, -128, 127);
    for (auto& sc : a_scales) sc = 0.001f + 0.01f * (rng.next_u64() % 100);
    const float b_scale = 0.0375f;

    std::vector<float> c_ref(static_cast<std::size_t>(s.m * s.n), -7.f);
    ref.qgemm(s.m, s.n, s.k, a.data(), a_scales.data(), b.data(), b_scale,
              c_ref.data(), s.n);
    for (Isa isa : supported_isas()) {
      std::vector<float> c(static_cast<std::size_t>(s.m * s.n), -7.f);
      nc::core::simd::kernels_for(isa).qgemm(s.m, s.n, s.k, a.data(),
                                             a_scales.data(), b.data(),
                                             b_scale, c.data(), s.n);
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(c[i], c_ref[i])
            << "isa=" << nc::core::simd::isa_name(isa) << " shape={" << s.m
            << "," << s.n << "," << s.k << "} idx=" << i;
      }
    }
  }
}

TEST(SimdDispatch, QgemmSaturationExtremesBitExact) {
  // Worst-case accumulation magnitudes: every product is ±(127*128).  The
  // AVX2 sign-transfer kernel must not saturate its i16 pair sums and the
  // AVX-512 bias trick must apply the exact row-sum correction.
  const std::int64_t m = 3, n = 17, k = 33;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
  for (std::int64_t i = 0; i < m * k; ++i) {
    a[static_cast<std::size_t>(i)] = (i % 2 == 0) ? std::int8_t{127}
                                                  : std::int8_t{-127};
  }
  for (std::int64_t i = 0; i < k * n; ++i) {
    b[static_cast<std::size_t>(i)] = (i % 3 == 0) ? std::int8_t{-128}
                                                  : std::int8_t{127};
  }
  const std::vector<float> a_scales(static_cast<std::size_t>(m), 1.f);

  std::vector<float> c_ref(static_cast<std::size_t>(m * n));
  nc::core::simd::kernels_for(Isa::kScalar)
      .qgemm(m, n, k, a.data(), a_scales.data(), b.data(), 1.f, c_ref.data(),
             n);
  for (Isa isa : supported_isas()) {
    std::vector<float> c(static_cast<std::size_t>(m * n));
    nc::core::simd::kernels_for(isa).qgemm(m, n, k, a.data(), a_scales.data(),
                                           b.data(), 1.f, c.data(), n);
    for (std::size_t i = 0; i < c.size(); ++i) {
      ASSERT_EQ(c[i], c_ref[i]) << "isa=" << nc::core::simd::isa_name(isa)
                                << " idx=" << i;
    }
  }
}

TEST(SimdDispatch, QgemmZeroRowsAndZeroK) {
  // All-zero weight rows hit the zero-quad skip; k == 0 must still write C
  // (the apply-scale contract) on every tier.
  const std::int64_t m = 4, n = 19;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * 8), 0);
  std::vector<std::int8_t> b(static_cast<std::size_t>(8 * n), 55);
  const std::vector<float> a_scales(static_cast<std::size_t>(m), 2.f);
  for (Isa isa : supported_isas()) {
    std::vector<float> c(static_cast<std::size_t>(m * n), 9.f);
    nc::core::simd::kernels_for(isa).qgemm(m, n, 8, a.data(), a_scales.data(),
                                           b.data(), 0.5f, c.data(), n);
    for (float v : c) ASSERT_EQ(v, 0.f) << nc::core::simd::isa_name(isa);

    std::vector<float> c0(static_cast<std::size_t>(m * n), 9.f);
    nc::core::simd::kernels_for(isa).qgemm(m, n, 0, a.data(), a_scales.data(),
                                           b.data(), 0.5f, c0.data(), n);
    for (float v : c0) ASSERT_EQ(v, 0.f) << nc::core::simd::isa_name(isa);
  }
}

TEST(SimdDispatch, MaxAbsBitExactAcrossIsas) {
  nc::util::Rng rng(202);
  for (std::int64_t n : {0, 1, 7, 8, 9, 31, 32, 33, 257}) {
    std::vector<float> x(static_cast<std::size_t>(n > 0 ? n : 1));
    for (auto& v : x) v = static_cast<float>(rng.normal() * 10.0);
    if (n > 2) x[static_cast<std::size_t>(n / 2)] = -123.5f;  // negative peak
    const float ref =
        nc::core::simd::kernels_for(Isa::kScalar).max_abs(x.data(), n);
    for (Isa isa : supported_isas()) {
      EXPECT_EQ(nc::core::simd::kernels_for(isa).max_abs(x.data(), n), ref)
          << "isa=" << nc::core::simd::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdDispatch, QuantizeScaledBitExactAndRoundsToNearestEven) {
  // inv_scale = 1 makes the expected integers readable: RNE ties go to the
  // even neighbor (0.5 -> 0, 1.5 -> 2, 2.5 -> 2), matching VCVTPS2DQ.
  const std::vector<float> x = {0.5f,   -0.5f, 1.5f,  -1.5f,  2.5f,  -2.5f,
                                3.5f,   126.6f, 127.4f, 200.f, -200.f, 0.f,
                                -0.49f, 0.49f,  96.5f,  -96.5f, 33.f};
  const std::vector<std::int8_t> want = {0,   0,   2,    -2,  2,    -2,
                                         4,   127, 127,  127, -127, 0,
                                         0,   0,   96,   -96, 33};
  ASSERT_EQ(x.size(), want.size());
  for (Isa isa : supported_isas()) {
    std::vector<std::int8_t> got(x.size(), 99);
    nc::core::simd::kernels_for(isa).quantize_scaled(
        x.data(), static_cast<std::int64_t>(x.size()), 1.f, got.data());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(got[i], want[i])
          << "isa=" << nc::core::simd::isa_name(isa) << " x=" << x[i];
    }
  }

  // Random sweep across vector-body + tail lengths, all tiers bit-equal.
  nc::util::Rng rng(303);
  for (std::int64_t n : {1, 15, 32, 33, 64, 100, 255}) {
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto& f : v) f = static_cast<float>(rng.normal() * 80.0);
    std::vector<std::int8_t> ref(static_cast<std::size_t>(n));
    nc::core::simd::kernels_for(Isa::kScalar)
        .quantize_scaled(v.data(), n, 0.731f, ref.data());
    for (Isa isa : supported_isas()) {
      std::vector<std::int8_t> got(static_cast<std::size_t>(n));
      nc::core::simd::kernels_for(isa).quantize_scaled(v.data(), n, 0.731f,
                                                       got.data());
      EXPECT_EQ(got, ref) << "isa=" << nc::core::simd::isa_name(isa)
                          << " n=" << n;
    }
  }
}

TEST(SimdDispatch, QuantizeTensorRoundsToNearestEven) {
  // max|x| = 127 gives scale exactly 1, so q[0] is RNE(2.5) = 2 (the old
  // round-half-away implementation produced 3).
  const float x[] = {2.5f, 127.f};
  std::int8_t q[2] = {0, 0};
  const float scale = nc::core::quantize_tensor(x, 2, q);
  EXPECT_EQ(scale, 1.f);
  EXPECT_EQ(q[0], 2);
  EXPECT_EQ(q[1], 127);
}

TEST(SimdDispatch, TileHhUlpBounded) {
  nc::util::Rng rng(404);
  const std::int64_t m = 9, n = 37, k = 41;
  std::vector<nc::util::half> a(static_cast<std::size_t>(m * k));
  std::vector<nc::util::half> b(static_cast<std::size_t>(k * n));
  for (auto& h : a) h = nc::util::half(static_cast<float>(rng.normal()));
  for (auto& h : b) h = nc::util::half(static_cast<float>(rng.normal()));

  std::vector<float> c_ref(static_cast<std::size_t>(m * n), 0.f);
  nc::core::simd::kernels_for(Isa::kScalar)
      .tile_hh(0, m, 0, n, k, a.data(), k, b.data(), n, c_ref.data(), n);
  for (Isa isa : supported_isas()) {
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.f);
    nc::core::simd::kernels_for(isa).tile_hh(0, m, 0, n, k, a.data(), k,
                                             b.data(), n, c.data(), n);
    for (std::size_t i = 0; i < c.size(); ++i) {
      // FMA contraction reassociates; bound the drift tightly relative to
      // the accumulated magnitude.
      const float tol = 1e-5f * (1.f + std::abs(c_ref[i])) * std::sqrt(float(k));
      EXPECT_NEAR(c[i], c_ref[i], tol)
          << "isa=" << nc::core::simd::isa_name(isa) << " idx=" << i;
    }
  }
}

TEST(SimdDispatch, ResolveIsaParsing) {
  using nc::core::simd::resolve_isa;
  const Isa best = nc::core::simd::best_isa();
  EXPECT_EQ(resolve_isa(nullptr), best);
  EXPECT_EQ(resolve_isa(""), best);
  EXPECT_EQ(resolve_isa("auto"), best);
  EXPECT_EQ(resolve_isa("scalar"), Isa::kScalar);
  // Requests clamp down to what the host supports, never up.
  const Isa avx2 = resolve_isa("avx2");
  EXPECT_EQ(avx2, nc::core::simd::isa_supported(Isa::kAvx2) ? Isa::kAvx2
                                                            : Isa::kScalar);
  const Isa avx512 = resolve_isa("avx512");
  EXPECT_LE(static_cast<int>(avx512), static_cast<int>(best));
  // Unknown strings warn and fall back to auto.
  EXPECT_EQ(resolve_isa("pentium"), best);
}

TEST(SimdDispatch, ActiveTableMatchesPublicQgemm) {
  // nc::core::qgemm must be a pure forward to the active dispatch table.
  nc::util::Rng rng(505);
  const std::int64_t m = 5, n = 23, k = 18;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
  fill_i8(rng, a.data(), m * k, -127, 127);
  fill_i8(rng, b.data(), k * n, -128, 127);
  const std::vector<float> a_scales(static_cast<std::size_t>(m), 0.25f);

  std::vector<float> c_pub(static_cast<std::size_t>(m * n));
  std::vector<float> c_tab(static_cast<std::size_t>(m * n));
  nc::core::qgemm(m, n, k, a.data(), a_scales.data(), b.data(), 0.125f,
                  c_pub.data(), n);
  nc::core::simd::kernels().qgemm(m, n, k, a.data(), a_scales.data(), b.data(),
                                  0.125f, c_tab.data(), n);
  EXPECT_EQ(c_pub, c_tab);
  EXPECT_TRUE(nc::core::simd::isa_supported(nc::core::simd::active_isa()));
}

// Labeled tsan via NC_TSAN_SUITES: concurrent kEvalInt8 forwards race on the
// conv layer's lazily quantized weight cache and (first call) the dispatch
// table's magic statics.  TSan verifies both are publication-safe.
TEST(SimdDispatch, ConcurrentInt8ForwardIsRaceFree) {
  nc::util::Rng rng(606);
  nc::core::Conv2d conv(3, 6, {3, 3}, {1, 1}, {1, 1}, true, rng);
  const Tensor x = nc::testref::random_tensor({1, 3, 12, 14}, 31);

  constexpr int kThreads = 4;
  std::vector<Tensor> outs;
  for (int t = 0; t < kThreads; ++t) outs.emplace_back();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      outs[static_cast<std::size_t>(t)] =
          conv.forward(x, nc::core::Mode::kEvalInt8);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(outs[static_cast<std::size_t>(t)].shape(), outs[0].shape());
    EXPECT_EQ(nc::testref::max_abs_diff(outs[static_cast<std::size_t>(t)],
                                        outs[0]),
              0.0);
  }
}

}  // namespace
