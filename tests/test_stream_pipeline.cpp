/// Generic StreamPipeline semantics, tested with synthetic transforms so the
/// worker-pool machinery (sequencing, reorder bound, failure containment,
/// finish) is exercised without the codec in the way.  Every suite runs
/// twice — once per intake layer (single shared queue, sharded
/// work-stealing) — since the pipeline contracts must hold identically for
/// both.  StreamCompressor / StreamDecompressor are thin adapters over this
/// class — the codec-facing behavior lives in test_codec.cpp and
/// test_stream_decompress.cpp; sharded-intake-specific behavior (stealing,
/// backpressure across shards) lives in test_sharded_intake.cpp; the spill
/// tier in test_spill.cpp.  Shared scaffolding: stream_test_utils.hpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "codec/stream_pipeline.hpp"
#include "tests/stream_test_utils.hpp"

namespace {

using nc::codec::IntakeMode;
using nc::codec::StreamOptions;
using nc::codec::StreamPipeline;
using nc::testutil::IntPipeline;
using nc::testutil::spin_until;
using nc::testutil::StallLatch;

/// Transform doubling every item; counts completed (returned) transforms.
IntPipeline::BatchFn doubling(std::atomic<int>& completed) {
  return [&completed](std::vector<int>&& in) {
    std::vector<int> out;
    out.reserve(in.size());
    for (const int v : in) out.push_back(2 * v);
    completed.fetch_add(static_cast<int>(in.size()));
    return out;
  };
}

/// Every pipeline contract below must hold for both intake layers.
class StreamPipelineIntake : public nc::testutil::IntakeParamTest {};

NC_INSTANTIATE_BOTH_INTAKES(StreamPipelineIntake);

TEST_P(StreamPipelineIntake, GenericTransformProcessesEverySubmission) {
  StreamOptions opt = base_options();
  opt.queue_capacity = 16;
  opt.batch_size = 4;
  opt.n_workers = 3;
  std::atomic<int> completed{0};
  std::mutex sink_mutex;
  std::vector<std::pair<std::uint64_t, int>> received;
  IntPipeline pipeline(opt, doubling(completed),
                       [](const int&) { return std::int64_t{4}; },
                       [&](std::uint64_t seq, int&& v) {
                         std::lock_guard<std::mutex> lock(sink_mutex);
                         received.emplace_back(seq, v);
                       });
  const int n = 25;
  for (int i = 0; i < n; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_EQ(stats.wedges_failed, 0);
  EXPECT_EQ(stats.payload_bytes, 4 * n);
  EXPECT_GT(stats.queue_depth_hwm, 0);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(n));
  for (const auto& [seq, v] : received) {
    EXPECT_EQ(v, 2 * static_cast<int>(seq));  // seq identifies the input
  }
  ASSERT_EQ(stats.per_worker.size(), 3u);
  std::int64_t per_worker_sum = 0;
  std::int64_t stolen_sum = 0;
  for (const auto& ws : stats.per_worker) {
    per_worker_sum += ws.wedges_compressed;
    stolen_sum += ws.batches_stolen;
  }
  EXPECT_EQ(per_worker_sum, n);
  EXPECT_EQ(stolen_sum, stats.batches_stolen);
  if (GetParam() == IntakeMode::kSingleQueue) {
    EXPECT_EQ(stats.batches_stolen, 0);  // one shared queue: nothing to steal
  }
}

TEST_P(StreamPipelineIntake, OrderedModeEmitsInSubmissionOrder) {
  StreamOptions opt = base_options();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 4;
  opt.ordered = true;
  std::atomic<int> completed{0};
  // Ordered mode serializes sink invocations: no lock needed.
  std::vector<std::uint64_t> seqs;
  IntPipeline pipeline(opt, doubling(completed), nullptr,
                       [&](std::uint64_t seq, int&&) { seqs.push_back(seq); });
  const int n = 40;
  for (int i = 0; i < n; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_EQ(stats.payload_bytes, 0);  // null byte counter
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
  }
}

TEST_P(StreamPipelineIntake, ThrowingTransformLandsInFailedAndKeepsWorkersAlive) {
  StreamOptions opt = base_options();
  opt.queue_capacity = 16;
  opt.batch_size = 1;  // one victim per failure
  opt.n_workers = 2;
  opt.ordered = true;
  std::vector<std::uint64_t> seqs;
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        for (const int v : in) {
          if (v % 5 == 3) throw std::runtime_error("poisoned item");
        }
        return std::move(in);
      },
      nullptr, [&](std::uint64_t seq, int&&) { seqs.push_back(seq); });
  const int n = 20;
  for (int i = 0; i < n; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_failed, 4);  // 3, 8, 13, 18
  EXPECT_EQ(stats.wedges_compressed, n - 4);
  // The ordered cursor advanced past every failed seq: the survivors arrive
  // in submission order with exactly the poisoned seqs missing.
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(n - 4));
  std::size_t at = 0;
  for (int i = 0; i < n; ++i) {
    if (i % 5 == 3) continue;
    EXPECT_EQ(seqs[at++], static_cast<std::uint64_t>(i));
  }
}

TEST_P(StreamPipelineIntake, WrongSizedTransformOutputCountsAsFailure) {
  StreamOptions opt = base_options();
  opt.batch_size = 4;
  opt.n_workers = 1;
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        in.pop_back();  // contract violation: one output short
        return std::move(in);
      },
      nullptr, [&](std::uint64_t, int&&) { received.fetch_add(1); });
  for (int i = 0; i < 8; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, 0);
  EXPECT_EQ(stats.wedges_failed, 8);
  EXPECT_EQ(received.load(), 0);
}

TEST_P(StreamPipelineIntake, ReorderCapacityBoundsBufferWithStalledWorker) {
  // One worker stalls inside the transform while holding the next-to-emit
  // item; the other worker races ahead.  Without the bound it would buffer
  // every remaining item; with reorder_capacity it must park after filling
  // the buffer (capacity entries) plus the one output in its hands.  (The
  // gate escape does not fire here: the stalled worker is inside the
  // transform, not parked on the bound, so a free popper still exists.)
  constexpr int kItems = 32;
  constexpr std::size_t kCapacity = 4;
  StreamOptions opt = base_options();
  opt.queue_capacity = 64;  // all submissions fit: intake never backpressures
  opt.batch_size = 1;
  opt.n_workers = 2;
  opt.ordered = true;
  opt.reorder_capacity = kCapacity;

  StallLatch stall;
  std::atomic<int> completed{0};

  std::vector<std::uint64_t> seqs;
  IntPipeline pipeline(
      opt,
      [&](std::vector<int>&& in) {
        if (in.front() == 0) stall.wait();
        completed.fetch_add(static_cast<int>(in.size()));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t seq, int&&) { seqs.push_back(seq); });

  for (int i = 0; i < kItems; ++i) pipeline.submit(i);

  // The free worker can complete at most kCapacity buffered transforms plus
  // the one whose emit is parked on the full buffer.
  constexpr int kBound = static_cast<int>(kCapacity) + 1;
  EXPECT_TRUE(spin_until([&] { return completed.load() >= kBound; }, 500));
  EXPECT_EQ(completed.load(), kBound);
  // Hold the stall a little longer: without the capacity the free worker
  // would keep draining the intake into the reorder buffer unbounded.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(completed.load(), kBound);

  stall.release();
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, kItems);
  EXPECT_EQ(stats.wedges_failed, 0);
  EXPECT_EQ(completed.load(), kItems);
  ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
  }
}

TEST_P(StreamPipelineIntake, ReorderCapacityAdmitsFailedBatchesWithoutDeadlock) {
  // Failed batches occupy reorder slots (as skips) under the same capacity
  // rule; a mix of failures and successes must still drain and finish.
  StreamOptions opt = base_options();
  opt.queue_capacity = 64;
  opt.batch_size = 2;
  opt.n_workers = 4;
  opt.ordered = true;
  opt.reorder_capacity = 2;  // tighter than the worker count
  std::vector<std::uint64_t> seqs;
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        for (const int v : in) {
          if (v % 7 == 2) throw std::runtime_error("poisoned item");
        }
        return std::move(in);
      },
      nullptr, [&](std::uint64_t seq, int&&) { seqs.push_back(seq); });
  const int n = 56;
  for (int i = 0; i < n; ++i) pipeline.submit(i);
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed + stats.wedges_failed, n);
  EXPECT_GT(stats.wedges_failed, 0);
  // Order is preserved across the failure gaps.
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_LT(seqs[i - 1], seqs[i]);
  }
}

TEST_P(StreamPipelineIntake, FinishIdempotentWithGenericTransform) {
  StreamOptions opt = base_options();
  opt.batch_size = 2;
  std::atomic<int> completed{0};
  IntPipeline pipeline(opt, doubling(completed), nullptr,
                       [](std::uint64_t, int&&) {});
  for (int i = 0; i < 6; ++i) pipeline.submit(i);
  const auto first = pipeline.finish();
  const auto second = pipeline.finish();
  EXPECT_EQ(first.wedges_compressed, 6);
  EXPECT_EQ(second.wedges_compressed, 6);
  EXPECT_DOUBLE_EQ(second.elapsed_s, first.elapsed_s);
  // Submit after finish: both paths account the loss.
  pipeline.submit(99);
  EXPECT_FALSE(pipeline.try_submit(100));
  EXPECT_EQ(pipeline.finish().wedges_dropped, 2);
}

TEST(StreamPipeline, AutoIntakeResolvesByWorkerCount) {
  std::atomic<int> completed{0};
  StreamOptions opt;  // kAuto
  opt.n_workers = 1;
  IntPipeline single(opt, doubling(completed), nullptr,
                     [](std::uint64_t, int&&) {});
  EXPECT_EQ(single.options().intake, IntakeMode::kSingleQueue);
  (void)single.finish();
  opt.n_workers = 4;
  IntPipeline sharded(opt, doubling(completed), nullptr,
                      [](std::uint64_t, int&&) {});
  EXPECT_EQ(sharded.options().intake, IntakeMode::kSharded);
  EXPECT_EQ(sharded.options().n_shards, 4u);
  (void)sharded.finish();
}

TEST(StreamPipeline, AdaptiveBatchingGrowsWithBacklog) {
  // With a deep backlog a worker's drain grows to batch_size; a released
  // stall guarantees the backlog exists when the worker resumes popping.
  StreamOptions opt;
  opt.intake = IntakeMode::kSharded;
  opt.queue_capacity = 64;
  opt.batch_size = 8;
  opt.n_workers = 1;
  ASSERT_TRUE(opt.adaptive_batch);  // the default under test

  StallLatch stall;
  std::mutex sizes_mutex;
  std::vector<std::size_t> batch_sizes;
  StreamPipeline<int, int> pipeline(
      opt,
      [&](std::vector<int>&& in) {
        {
          std::lock_guard<std::mutex> lock(sizes_mutex);
          batch_sizes.push_back(in.size());
        }
        for (const int v : in) {
          if (v == 0) stall.wait();
        }
        return std::move(in);
      },
      nullptr, [](std::uint64_t, int&&) {});
  const int n = 33;
  for (int i = 0; i < n; ++i) pipeline.submit(i);  // 32 queue behind the stall
  stall.release();
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_compressed, n);
  std::size_t max_batch = 0;
  for (const auto s : batch_sizes) max_batch = std::max(max_batch, s);
  // The backlog was 32 deep with one worker: adaptive sizing must have
  // reached the full batch_size at least once.
  EXPECT_EQ(max_batch, opt.batch_size);
}

}  // namespace
