/// Learning-free baseline codecs: round-trips, error bounds, sparse-data
/// behaviour, corruption handling.
#include <gtest/gtest.h>

#include "baselines/bitstream.hpp"
#include "baselines/mgard_lite.hpp"
#include "baselines/sz_lite.hpp"
#include "baselines/zfp_lite.hpp"
#include "tests/reference.hpp"
#include "tpc/dataset.hpp"

namespace {

using nc::core::Tensor;

Tensor sparse_wedge() {
  static const Tensor w = [] {
    nc::tpc::DatasetConfig cfg;
    cfg.n_events = 1;
    cfg.geometry.scale = 0.125;
    const auto ds = nc::tpc::WedgeDataset::generate(cfg);
    return nc::tpc::clip_horizontal(ds.train().front(), ds.valid_horiz());
  }();
  return w;
}

TEST(Bitstream, VarintRoundTrip) {
  nc::baselines::ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1ull << 20, 1ull << 40,
                                  ~0ull};
  for (auto v : values) w.put_varint(v);
  w.put_svarint(-1);
  w.put_svarint(0);
  w.put_svarint(123456789);
  w.put_svarint(-987654321);
  w.put_f32(3.5f);
  w.put_u16(0xBEEF);
  w.put_i64(-42);

  const auto bytes = w.take();
  nc::baselines::ByteReader r(bytes);
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_EQ(r.get_svarint(), -1);
  EXPECT_EQ(r.get_svarint(), 0);
  EXPECT_EQ(r.get_svarint(), 123456789);
  EXPECT_EQ(r.get_svarint(), -987654321);
  EXPECT_EQ(r.get_f32(), 3.5f);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bitstream, UnderrunThrows) {
  nc::baselines::ByteWriter w;
  w.put_u8(0x80);  // unterminated varint
  const auto bytes = w.take();
  nc::baselines::ByteReader r(bytes);
  EXPECT_THROW(r.get_varint(), std::runtime_error);
}

class ErrorBoundedParam
    : public ::testing::TestWithParam<float> {};  // error bound sweep

TEST_P(ErrorBoundedParam, SzLiteRespectsErrorBound) {
  const float eb = GetParam();
  nc::baselines::SzLite codec(eb);
  const Tensor w = sparse_wedge();
  const auto bytes = codec.compress(w);
  const Tensor back = codec.decompress(bytes);
  ASSERT_EQ(back.shape(), w.shape());
  EXPECT_LE(nc::testref::max_abs_diff(w, back),
            static_cast<double>(eb) + 1e-5);
}

TEST_P(ErrorBoundedParam, MgardLiteRespectsErrorBound) {
  const float eb = GetParam();
  nc::baselines::MgardLite codec(eb, 3);
  const Tensor w = sparse_wedge();
  const auto bytes = codec.compress(w);
  const Tensor back = codec.decompress(bytes);
  ASSERT_EQ(back.shape(), w.shape());
  EXPECT_LE(nc::testref::max_abs_diff(w, back),
            static_cast<double>(eb) + 1e-5);
}

INSTANTIATE_TEST_SUITE_P(ErrorBounds, ErrorBoundedParam,
                         ::testing::Values(0.05f, 0.1f, 0.25f, 0.5f, 1.0f));

TEST(SzLite, TighterBoundCostsMoreBytes) {
  const Tensor w = sparse_wedge();
  nc::baselines::SzLite tight(0.05f), loose(0.5f);
  EXPECT_GT(tight.compress(w).size(), loose.compress(w).size());
}

TEST(SzLite, CompressesSparseDataWell) {
  const Tensor w = sparse_wedge();
  nc::baselines::SzLite codec(0.25f);
  const auto bytes = codec.compress(w);
  const double ratio =
      nc::baselines::baseline_compression_ratio(w.numel(), bytes.size());
  EXPECT_GT(ratio, 2.5);  // zero runs must comfortably beat raw fp16
}

TEST(SzLite, ExactOnConstantInput) {
  Tensor flat = Tensor::full({4, 5, 6}, 7.25f);
  nc::baselines::SzLite codec(0.1f);
  const auto bytes = codec.compress(flat);
  const Tensor back = codec.decompress(bytes);
  // First voxel per row quantizes from pred 0; all others predict exactly.
  EXPECT_LE(nc::testref::max_abs_diff(flat, back), 0.1 + 1e-5);
  EXPECT_LT(bytes.size(), 400u);  // runs collapse
}

TEST(SzLite, TruncatedStreamThrows) {
  const Tensor w = sparse_wedge();
  nc::baselines::SzLite codec(0.25f);
  auto bytes = codec.compress(w);
  bytes.resize(bytes.size() / 2);  // drop the tail
  EXPECT_THROW(codec.decompress(bytes), std::runtime_error);
}

TEST(ZfpLite, EmptyBlocksDecodeToExactZeros) {
  // A few isolated deposits: most 4x4x4 blocks are entirely empty.  (A
  // realistic wedge at ~12% occupancy leaves almost no fully-empty block —
  // diffusion spreads every track across block boundaries — which is itself
  // part of why block codecs struggle on this data.)
  Tensor w({8, 16, 16});
  w.at({1, 2, 3}) = 7.5f;
  w.at({5, 9, 12}) = 9.0f;
  w.at({5, 9, 13}) = 6.5f;
  nc::baselines::ZfpLite codec(4);
  const Tensor back = codec.decompress(codec.compress(w));
  ASSERT_EQ(back.shape(), w.shape());
  const std::int64_t d0 = w.dim(0), d1 = w.dim(1), d2 = w.dim(2);
  // For every 4x4x4 block that is entirely zero in the input, the output
  // must be exactly zero (the 1-byte empty-block fast path).  Voxels inside
  // occupied blocks may ring — that is the transform-coder behaviour that
  // makes generic codecs a poor fit for sparse wedges (§1).
  std::int64_t checked = 0;
  for (std::int64_t bi = 0; bi < d0 / 4; ++bi) {
    for (std::int64_t bj = 0; bj < d1 / 4; ++bj) {
      for (std::int64_t bk = 0; bk < d2 / 4; ++bk) {
        bool empty = true;
        for (std::int64_t i = 0; i < 4 && empty; ++i)
          for (std::int64_t j = 0; j < 4 && empty; ++j)
            for (std::int64_t k = 0; k < 4; ++k)
              if (w.at({bi * 4 + i, bj * 4 + j, bk * 4 + k}) != 0.f) {
                empty = false;
                break;
              }
        if (!empty) continue;
        ++checked;
        for (std::int64_t i = 0; i < 4; ++i)
          for (std::int64_t j = 0; j < 4; ++j)
            for (std::int64_t k = 0; k < 4; ++k)
              ASSERT_EQ(back.at({bi * 4 + i, bj * 4 + j, bk * 4 + k}), 0.f);
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(ZfpLite, HigherRateIsMoreAccurate) {
  const Tensor w = sparse_wedge();
  nc::baselines::ZfpLite low(2), high(12);
  const Tensor back_low = low.decompress(low.compress(w));
  const Tensor back_high = high.decompress(high.compress(w));
  double mae_low = 0, mae_high = 0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    mae_low += std::abs(static_cast<double>(w[i]) - static_cast<double>(back_low[i]));
    mae_high += std::abs(static_cast<double>(w[i]) - static_cast<double>(back_high[i]));
  }
  EXPECT_LT(mae_high, mae_low);
}

TEST(ZfpLite, AllZeroInputIsOneByteNonHeaderPerBlock) {
  Tensor zeros({8, 8, 8});  // 8 blocks of 4^3
  nc::baselines::ZfpLite codec(8);
  const auto bytes = codec.compress(zeros);
  const Tensor back = codec.decompress(bytes);
  EXPECT_EQ(nc::testref::max_abs_diff(zeros, back), 0.0);
  EXPECT_LT(bytes.size(), 64u);  // header + 8 flag bytes
}

TEST(ZfpLite, RejectsNon3d) {
  nc::baselines::ZfpLite codec(4);
  EXPECT_THROW(codec.compress(Tensor({4, 4})), std::invalid_argument);
}

TEST(MgardLite, SparseRatioFarBelowBcae) {
  // MGARD's smoothness assumption is a poor fit for sparse track data — the
  // paper's motivating observation.  We assert the direction (it at least
  // beats raw fp16 thanks to zero runs) and that it is nowhere near 31x.
  const Tensor w = sparse_wedge();
  nc::baselines::MgardLite codec(0.25f, 3);
  const auto bytes = codec.compress(w);
  const double ratio =
      nc::baselines::baseline_compression_ratio(w.numel(), bytes.size());
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 31.125);
}

TEST(MgardLite, OddExtentsRoundTrip) {
  // Non-power-of-two extents exercise the ceil decimation chain.
  const Tensor w = nc::testref::random_tensor({3, 13, 17}, 71);
  nc::baselines::MgardLite codec(0.1f, 2);
  const Tensor back = codec.decompress(codec.compress(w));
  ASSERT_EQ(back.shape(), w.shape());
  EXPECT_LE(nc::testref::max_abs_diff(w, back), 0.1 + 1e-5);
}

TEST(Baselines, BcaeMotivatingClaim) {
  // The paper's premise: at comparable reconstruction error, generic
  // compressors reach far lower ratios than BCAE's 31x on sparse wedges.
  const Tensor w = sparse_wedge();
  nc::baselines::SzLite sz(0.12f);  // MAE-comparable error bound
  const double sz_ratio = nc::baselines::baseline_compression_ratio(
      w.numel(), sz.compress(w).size());
  EXPECT_LT(sz_ratio, 31.125);
}

}  // namespace
