/// Spill tier: the segmented on-disk overflow log (SpillLog/SpillReader)
/// and its integration into StreamPipeline.
///
/// Two layers under test.  (1) The log itself, with fault injection:
/// truncated/short-written segments, flipped CRC bytes, unknown format
/// versions and a full disk must all surface as SerializeError or counted
/// drops — never UB, silent garbage, or a hung pipeline.  (2) The lossless
/// backpressure contract: a burst far beyond the intake bound completes
/// with zero drops, every spilled wedge replayed, and ordered output
/// bit-identical to an unbounded run — under both intake layers (the spill
/// drainer races workers, producers and finish(), so this suite also runs
/// under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "codec/spill.hpp"
#include "codec/stream.hpp"
#include "codec/stream_pipeline.hpp"
#include "tests/stream_test_utils.hpp"
#include "util/serialize.hpp"

namespace {

namespace fs = std::filesystem;
using nc::codec::BcaeWedgeCodec;
using nc::codec::WedgeEnvelope;
using nc::codec::SpillLog;
using nc::codec::SpillOptions;
using nc::codec::SpillReader;
using nc::codec::SpillRecord;
using nc::codec::StreamCompressor;
using nc::codec::StreamOptions;
using nc::core::Mode;
using nc::core::Tensor;
using nc::testutil::IntPipeline;
using nc::testutil::raw_wedge;
using nc::util::SerializeError;

/// Fresh per-test scratch directory under the gtest temp root (unique per
/// suite instantiation so parallel ctest runs never collide).
std::string fresh_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "-" + info->name();
  std::replace(name.begin(), name.end(), '/', '-');
  const std::string dir = ::testing::TempDir() + "nc-spill-" + name;
  fs::remove_all(dir);
  return dir;
}

std::string payload_for(int i) {
  // Variable lengths so offsets aren't accidentally aligned.
  return std::string(static_cast<std::size_t>(7 + i % 5),
                     static_cast<char>('a' + i % 26)) +
         std::to_string(i);
}

/// Segment files currently in `dir`, oldest first (the %06zu numbering
/// sorts lexicographically).
std::vector<std::string> segment_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".seg") out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Spill codec for the synthetic int pipeline.
IntPipeline::SpillCodec int_spill_codec() {
  return {[](const int& v) {
            return std::string(reinterpret_cast<const char*>(&v), sizeof(int));
          },
          [](const std::string& s) {
            if (s.size() != sizeof(int)) {
              throw SerializeError("spilled int payload size mismatch");
            }
            int v = 0;
            std::memcpy(&v, s.data(), sizeof(int));
            return v;
          }};
}

// ---------------------------------------------------------------------------
// SpillLog as a disk-backed FIFO
// ---------------------------------------------------------------------------

TEST(SpillLog, RoundTripsRecordsInFifoOrder) {
  SpillOptions opt;
  opt.dir = fresh_dir();
  SpillLog log(opt);
  const int n = 25;
  for (int i = 0; i < n; ++i) log.append(static_cast<std::uint64_t>(i), payload_for(i));
  EXPECT_EQ(log.pending(), static_cast<std::size_t>(n));
  EXPECT_GT(log.bytes_hwm(), 0u);
  for (int i = 0; i < n; ++i) {
    const auto rec = log.pop();
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(rec->ok);
    EXPECT_EQ(rec->seq, static_cast<std::uint64_t>(i));
    EXPECT_EQ(rec->payload, payload_for(i));
  }
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_FALSE(log.pop().has_value());
}

TEST(SpillLog, SegmentsRollAndDrainedOnesAreReaped) {
  SpillOptions opt;
  opt.dir = fresh_dir();
  opt.segment_bytes = 64;  // a couple of records per segment
  SpillLog log(opt);
  const int n = 20;
  for (int i = 0; i < n; ++i) log.append(static_cast<std::uint64_t>(i), payload_for(i));
  EXPECT_GT(log.segment_paths().size(), 3u);  // rolling actually happened
  for (int i = 0; i < n; ++i) {
    const auto rec = log.pop();
    ASSERT_TRUE(rec.has_value() && rec->ok);
    EXPECT_EQ(rec->payload, payload_for(i));  // FIFO across segment boundaries
  }
  // Drained non-tail segments were deleted as replay progressed; at most
  // the write tail remains until close().
  EXPECT_LE(log.segment_paths().size(), 1u);
  log.close();
  EXPECT_TRUE(segment_files(opt.dir).empty());
}

TEST(SpillLog, QuotaExceededThrowsAndLeavesLogUsable) {
  SpillOptions opt;
  opt.dir = fresh_dir();
  const std::string payload = payload_for(0);
  // Room for the header plus exactly two records.
  opt.max_bytes = 16 + 2 * (20 + payload.size());
  SpillLog log(opt);
  log.append(0, payload);
  log.append(1, payload);
  EXPECT_THROW(log.append(2, payload), SerializeError);
  // The over-quota append left everything already spilled intact…
  auto rec = log.pop();
  ASSERT_TRUE(rec.has_value() && rec->ok);
  EXPECT_EQ(rec->seq, 0u);
  rec = log.pop();
  ASSERT_TRUE(rec.has_value() && rec->ok);
  EXPECT_EQ(rec->seq, 1u);
  EXPECT_EQ(log.pending(), 0u);
}

TEST(SpillLog, UnwritableDirThrowsSerializeError) {
  const std::string dir = fresh_dir();
  fs::create_directories(dir);
  std::ofstream(dir + "/file").put('x');
  SpillOptions opt;
  opt.dir = dir + "/file/nested";  // a path under a regular file
  EXPECT_THROW(SpillLog log(opt), SerializeError);
}

// ---------------------------------------------------------------------------
// SpillReader fault injection
// ---------------------------------------------------------------------------

/// Write `n` records through a keep-mode SpillLog and return the single
/// segment path (segment_bytes large enough not to roll).
std::string write_kept_segment(const std::string& dir, int n) {
  SpillOptions opt;
  opt.dir = dir;
  opt.keep = true;
  SpillLog log(opt);
  for (int i = 0; i < n; ++i) log.append(static_cast<std::uint64_t>(i), payload_for(i));
  log.close();
  const auto files = segment_files(dir);
  EXPECT_EQ(files.size(), 1u);
  return files.front();
}

TEST(SpillReader, RoundTripsAKeptSegmentBitExact) {
  const std::string dir = fresh_dir();
  const int n = 12;
  const std::string path = write_kept_segment(dir, n);
  SpillReader reader(path);
  SpillRecord rec;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.seq, static_cast<std::uint64_t>(i));
    EXPECT_EQ(rec.payload, payload_for(i));
  }
  EXPECT_FALSE(reader.next(rec));  // clean EOF, not an error
}

TEST(SpillReader, TruncatedSegmentThrowsNotUB) {
  const std::string dir = fresh_dir();
  const std::string path = write_kept_segment(dir, 3);
  // Chop into the last record's CRC; earlier records must still read.
  fs::resize_file(path, fs::file_size(path) - 2);
  SpillReader reader(path);
  SpillRecord rec;
  ASSERT_TRUE(reader.next(rec));
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.payload, payload_for(1));
  EXPECT_THROW(reader.next(rec), SerializeError);

  // Chop mid-header too (a short write that died between fwrites).
  fs::resize_file(path, 16 + 5);
  SpillReader short_reader(path);
  EXPECT_THROW(short_reader.next(rec), SerializeError);
}

TEST(SpillReader, FlippedPayloadByteFailsCrc) {
  const std::string dir = fresh_dir();
  const std::string path = write_kept_segment(dir, 1);
  {
    // Record starts after the 16-byte segment header; its payload after the
    // 16-byte record header.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(16 + 16);
    char c = static_cast<char>(f.get());
    f.seekp(16 + 16);
    f.put(static_cast<char>(c ^ 0x40));
  }
  SpillReader reader(path);
  SpillRecord rec;
  EXPECT_THROW(reader.next(rec), SerializeError);
}

TEST(SpillReader, ZeroByteSegmentRejected) {
  // A zero-byte file (open() succeeded, the header write never landed —
  // e.g. disk filled between open and flush) must fail the magic check,
  // not read uninitialized garbage or report a clean empty log.
  const std::string dir = fresh_dir();
  fs::create_directories(dir);
  const std::string path = dir + "/empty.seg";
  { std::ofstream f(path, std::ios::binary); }
  ASSERT_TRUE(fs::exists(path));
  ASSERT_EQ(fs::file_size(path), 0u);
  EXPECT_THROW(SpillReader reader(path), SerializeError);
}

TEST(SpillReader, TruncatedMidSegmentHeaderRejected) {
  // Chop inside the 16-byte segment header itself (mid-magic, mid-version
  // and mid-codec-id): the constructor must throw, as existing tests only
  // cover cuts inside a record.
  const std::string dir = fresh_dir();
  const std::string path = write_kept_segment(dir, 1);
  for (const std::uintmax_t keep : {5u, 10u, 14u}) {
    fs::resize_file(path, keep);
    EXPECT_THROW(SpillReader reader(path), SerializeError)
        << "segment truncated to " << keep << " bytes must not parse";
  }
}

TEST(SpillReader, UnknownVersionRejected) {
  const std::string dir = fresh_dir();
  const std::string path = write_kept_segment(dir, 1);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);  // the u32 version that follows "NCMP" "SPIL"
    f.put(static_cast<char>(0x7F));
  }
  EXPECT_THROW(SpillReader reader(path), SerializeError);
}

/// write_kept_segment with a codec id stamped into the segment header (the
/// v2 format gate under test below).
std::string write_tagged_segment(const std::string& dir, std::uint32_t codec_id,
                                 int n) {
  // fresh_dir() only cleans the exact per-test path; callers pass suffixed
  // variants too, so scrub here or a prior run's segment doubles the count.
  fs::remove_all(dir);
  SpillOptions opt;
  opt.dir = dir;
  opt.keep = true;
  opt.codec_id = codec_id;
  SpillLog log(opt);
  for (int i = 0; i < n; ++i) {
    log.append(static_cast<std::uint64_t>(i), payload_for(i));
  }
  log.close();
  const auto files = segment_files(dir);
  EXPECT_EQ(files.size(), 1u);
  return files.front();
}

TEST(SpillReader, CodecIdMismatchRejectedAtOpen) {
  // A keep-mode log written under one --codec and replayed under another
  // used to feed foreign payloads to the decoder and fail per-wedge as
  // wedges_failed; the v2 header gate must reject it at open instead.
  const std::string dir = fresh_dir();
  const std::string path = write_tagged_segment(dir, /*codec_id=*/3, 2);
  EXPECT_THROW(SpillReader reader(path, /*expected_codec_id=*/16),
               SerializeError);
}

TEST(SpillReader, CodecIdMatchAndUntaggedBothAccepted) {
  const std::string dir = fresh_dir();
  const std::string path = write_tagged_segment(dir, /*codec_id=*/3, 2);
  {
    // Exact match: reads through.
    SpillReader reader(path, /*expected_codec_id=*/3);
    EXPECT_EQ(reader.header().codec_id, 3u);
    SpillRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.payload, payload_for(0));
  }
  {
    // A reader that does not care (expected 0) skips the gate but still
    // surfaces the stamp for its own bookkeeping.
    SpillReader reader(path);
    EXPECT_EQ(reader.header().codec_id, 3u);
  }
  // An untagged (pre-tagging writer) segment passes any expectation.
  const std::string dir2 = fresh_dir() + "-untagged";
  const std::string path2 = write_tagged_segment(dir2, /*codec_id=*/0, 1);
  SpillReader reader(path2, /*expected_codec_id=*/16);
  EXPECT_EQ(reader.header().codec_id, 0u);
}

// ---------------------------------------------------------------------------
// Pipeline integration: lossless backpressure under both intake layers
// ---------------------------------------------------------------------------

class SpillPipelineIntake : public nc::testutil::IntakeParamTest {};

NC_INSTANTIATE_BOTH_INTAKES(SpillPipelineIntake);

TEST_P(SpillPipelineIntake, BurstBeyondCapacityCompletesWithoutDrops) {
  // A burst of 4x the intake capacity, try_submitted back-to-back against
  // deliberately slow workers: without the spill tier most of it would
  // drop; with it the run must be lossless and, in ordered mode, emit the
  // identity sequence.
  StreamOptions opt = base_options();
  opt.queue_capacity = 16;
  opt.batch_size = 2;
  opt.n_workers = 3;
  opt.ordered = true;
  opt.spill_dir = fresh_dir();
  std::vector<std::uint64_t> seqs;
  std::vector<int> values;
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        return std::move(in);
      },
      nullptr,
      [&](std::uint64_t seq, int&& v) {
        seqs.push_back(seq);
        values.push_back(v);
      },
      int_spill_codec());
  const int n = 4 * 16;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(pipeline.try_submit(i));  // accepted or spilled, never lost
  }
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_EQ(stats.wedges_failed, 0);
  EXPECT_EQ(stats.wedges_compressed, n);
  EXPECT_GT(stats.wedges_spilled, 0);
  EXPECT_EQ(stats.wedges_replayed, stats.wedges_spilled);
  EXPECT_GT(stats.spill_bytes_hwm, 0);
  nc::testutil::expect_ordered_identity(seqs, static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(values[static_cast<std::size_t>(i)], i);  // payloads round-tripped
  }
  // Nothing left behind: the tier is transient unless spill_keep is set.
  EXPECT_TRUE(!fs::exists(opt.spill_dir) || segment_files(opt.spill_dir).empty());
}

TEST_P(SpillPipelineIntake, DeadlineLetsWorkersCatchUpBeforeSpilling) {
  // With a generous spill deadline and fast workers, a burst is absorbed by
  // waiting — nothing should ever reach the disk.
  StreamOptions opt = base_options();
  opt.queue_capacity = 4;
  opt.batch_size = 2;
  opt.n_workers = 2;
  opt.spill_dir = fresh_dir();
  opt.spill_deadline_s = 5.0;
  std::atomic<int> received{0};
  IntPipeline pipeline(
      opt, [](std::vector<int>&& in) { return std::move(in); }, nullptr,
      [&](std::uint64_t, int&&) { received.fetch_add(1); }, int_spill_codec());
  const int n = 64;
  for (int i = 0; i < n; ++i) EXPECT_TRUE(pipeline.try_submit(i));
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_in, n);
  EXPECT_EQ(stats.wedges_dropped, 0);
  EXPECT_EQ(stats.wedges_spilled, 0);
  EXPECT_EQ(received.load(), n);
}

TEST_P(SpillPipelineIntake, DiskFullSurfacesAsCountedDropsNotAHang) {
  // A tiny spill quota simulates ENOSPC: the burst overflows the intake,
  // some wedges spill, the rest are *counted* drops — and the pipeline
  // still drains and finishes.
  StreamOptions opt = base_options();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 2;
  opt.ordered = true;
  opt.spill_dir = fresh_dir();
  opt.spill_max_bytes = 16 + 3 * (20 + sizeof(int));  // header + ~3 records
  std::vector<std::uint64_t> seqs;
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return std::move(in);
      },
      nullptr, [&](std::uint64_t seq, int&&) { seqs.push_back(seq); },
      int_spill_codec());
  const int n = 64;
  int accepted = 0;
  for (int i = 0; i < n; ++i) {
    if (pipeline.try_submit(i)) ++accepted;
  }
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_in, accepted);
  EXPECT_GT(stats.wedges_spilled, 0);
  EXPECT_GT(stats.wedges_dropped, 0);  // the quota bit, loudly
  EXPECT_EQ(stats.wedges_dropped, n - accepted);
  EXPECT_EQ(stats.wedges_replayed, stats.wedges_spilled);
  EXPECT_EQ(stats.wedges_compressed, accepted);
  // Ordered mode still emits every accepted seq in order: drops consumed no
  // sequence numbers, so the stream has no holes to hang on.
  nc::testutil::expect_ordered_identity(seqs,
                                        static_cast<std::uint64_t>(accepted));
}

TEST_P(SpillPipelineIntake, SubmitAfterFinishCountsDroppedNotSpilled) {
  // Regression: with the spill tier enabled, a submit after finish() must
  // land in wedges_dropped — not spill into a file nobody will replay.
  StreamOptions opt = base_options();
  opt.queue_capacity = 4;
  opt.n_workers = 2;
  opt.spill_dir = fresh_dir();
  IntPipeline pipeline(
      opt, [](std::vector<int>&& in) { return std::move(in); }, nullptr,
      [](std::uint64_t, int&&) {}, int_spill_codec());
  for (int i = 0; i < 8; ++i) pipeline.submit(i);
  const auto first = pipeline.finish();
  EXPECT_EQ(first.wedges_dropped, 0);
  pipeline.submit(99);
  EXPECT_FALSE(pipeline.try_submit(100));
  const auto stats = pipeline.finish();
  EXPECT_EQ(stats.wedges_dropped, 2);
  EXPECT_EQ(stats.wedges_in, 8);
  // And no stray spill segments appeared for the rejected submits.
  EXPECT_TRUE(!fs::exists(opt.spill_dir) || segment_files(opt.spill_dir).empty());
}

TEST_P(SpillPipelineIntake, KeptSegmentsReplayBitExactAfterClose) {
  // spill_keep retains the segments a finished pipeline spilled; a
  // SpillReader over them must reproduce the exact spilled payloads — the
  // recovery path for a run that died before (or instead of) replaying.
  StreamOptions opt = base_options();
  opt.queue_capacity = 8;
  opt.batch_size = 2;
  opt.n_workers = 2;
  opt.spill_dir = fresh_dir();
  opt.spill_keep = true;
  IntPipeline pipeline(
      opt,
      [](std::vector<int>&& in) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return std::move(in);
      },
      nullptr, [](std::uint64_t, int&&) {}, int_spill_codec());
  const int n = 48;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(pipeline.try_submit(i));
  const auto stats = pipeline.finish();
  ASSERT_GT(stats.wedges_spilled, 0);
  EXPECT_EQ(stats.wedges_replayed, stats.wedges_spilled);

  const auto codec = int_spill_codec();
  std::int64_t replayed = 0;
  for (const auto& path : segment_files(opt.spill_dir)) {
    SpillReader reader(path);
    SpillRecord rec;
    while (reader.next(rec)) {
      // Seq numbers double as the submitted values here, so the payload
      // must decode to exactly its own seq.
      EXPECT_EQ(codec.decode(rec.payload), static_cast<int>(rec.seq));
      ++replayed;
    }
  }
  EXPECT_EQ(replayed, stats.wedges_spilled);
}

// ---------------------------------------------------------------------------
// Codec-level acceptance: ordered spilled output is bit-identical
// ---------------------------------------------------------------------------

TEST_P(SpillPipelineIntake, CompressorBurstMatchesUnboundedRunBitExact) {
  // The acceptance criterion: a 4x-capacity burst through the real encoder
  // with the spill tier on yields the same ordered bitstream as a run whose
  // queue holds everything — spilling must be invisible downstream.
  auto model = nc::bcae::make_bcae_ht(81);
  BcaeWedgeCodec codec(model, Mode::kEval);
  const int n = 32;

  const auto run = [&](StreamOptions opt) {
    std::map<std::uint64_t, WedgeEnvelope> out;  // ordered sink: no lock
    StreamCompressor stream(codec, opt,
                            [&](std::uint64_t seq, WedgeEnvelope&& env) {
                              out.emplace(seq, std::move(env));
                            });
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(stream.try_submit(raw_wedge(static_cast<std::size_t>(i))));
    }
    return std::make_pair(stream.finish(), std::move(out));
  };

  StreamOptions burst = base_options();
  burst.queue_capacity = 8;  // burst is 4x this
  burst.batch_size = 2;
  burst.n_workers = 2;
  burst.ordered = true;
  burst.spill_dir = fresh_dir();
  const auto [bstats, bout] = run(burst);
  EXPECT_EQ(bstats.wedges_in, n);
  EXPECT_EQ(bstats.wedges_dropped, 0);
  EXPECT_GT(bstats.wedges_spilled, 0);  // the burst really overflowed
  EXPECT_EQ(bstats.wedges_replayed, bstats.wedges_spilled);
  EXPECT_EQ(bstats.wedges_compressed, n);

  StreamOptions unbounded = base_options();
  unbounded.queue_capacity = 64;  // single queue holds the whole burst
  unbounded.batch_size = 2;
  unbounded.n_workers = 2;
  unbounded.ordered = true;
  const auto [ustats, uout] = run(unbounded);
  EXPECT_EQ(ustats.wedges_spilled, 0);
  EXPECT_EQ(ustats.wedges_compressed, n);

  ASSERT_EQ(bout.size(), static_cast<std::size_t>(n));
  ASSERT_EQ(uout.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& a = bout.at(static_cast<std::uint64_t>(i));
    const auto& b = uout.at(static_cast<std::uint64_t>(i));
    EXPECT_EQ(a.wedge_shape, b.wedge_shape);
    EXPECT_EQ(a.codec_id, b.codec_id);
    ASSERT_EQ(a.payload.size(), b.payload.size());
    EXPECT_EQ(std::memcmp(a.payload.data(), b.payload.data(), a.payload.size()),
              0)
        << "wedge " << i << " bitstream diverged";
  }
}

TEST(SpillCodecId, CompressorStampsItsCodecIntoKeptSegments) {
  // The stream layer fills StreamOptions::spill_codec_id from its codec, so
  // every kept segment is tagged — replay tooling pointed at the wrong
  // codec is rejected at open (the satellite bugfix), and the right codec
  // sails through.
  auto model = nc::bcae::make_bcae_ht(81);
  BcaeWedgeCodec codec(model, Mode::kEval);
  StreamOptions opt;
  opt.queue_capacity = 4;
  opt.batch_size = 2;
  opt.n_workers = 2;
  opt.spill_dir = fresh_dir();
  opt.spill_keep = true;
  StreamCompressor stream(codec, opt, [](WedgeEnvelope&&) {});
  const int n = 24;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(stream.try_submit(raw_wedge(static_cast<std::size_t>(i))));
  }
  const auto stats = stream.finish();
  ASSERT_GT(stats.wedges_spilled, 0);
  const auto files = segment_files(opt.spill_dir);
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SpillReader reader(path, codec.codec_id());  // matching id: opens fine
    EXPECT_EQ(reader.header().codec_id,
              static_cast<std::uint32_t>(codec.codec_id()));
    EXPECT_THROW(SpillReader(path, codec.codec_id() + 1), SerializeError)
        << "a different codec must be rejected at open";
  }
}

}  // namespace
