/// \file test_autoscale.cpp
/// \brief Deterministic unit tests for the elastic pool's scaling policy.
///
/// AutoscaleController is a pure sample-in / target-out state machine (no
/// clocks, no threads), so every test here drives it with an injected sample
/// sequence and asserts the exact decision trace — hysteresis, floor/ceiling
/// clamps, spill-triggered scale-up — with zero sleeps.  The impure pipeline
/// driver around it is covered by test_elastic_pipeline.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "codec/autoscale.hpp"

namespace {

using nc::codec::AutoscaleConfig;
using nc::codec::AutoscaleController;
using nc::codec::AutoscaleSample;

AutoscaleConfig config(std::size_t min_workers, std::size_t max_workers,
                       std::size_t window, std::size_t cooldown) {
  AutoscaleConfig cfg;
  cfg.min_workers = min_workers;
  cfg.max_workers = max_workers;
  cfg.window = window;
  cfg.cooldown = cooldown;
  return cfg;  // up_depth 0.5 / down_busy 0.25 / down_depth derived
}

AutoscaleSample loaded() { return {1.0, 1.0, false}; }
AutoscaleSample idle() { return {0.0, 0.0, false}; }
AutoscaleSample spilling() { return {1.0, 1.0, true}; }

TEST(Autoscale, InitialTargetClampsToRange) {
  EXPECT_EQ(AutoscaleController(config(2, 4, 1, 0), 100).target(), 4u);
  EXPECT_EQ(AutoscaleController(config(2, 4, 1, 0), 0).target(), 2u);
  EXPECT_EQ(AutoscaleController(config(2, 4, 1, 0), 3).target(), 3u);
}

TEST(Autoscale, BacklogDoublesOnlyAfterFullWindow) {
  AutoscaleController ctl(config(1, 8, 4, 0), 1);
  // Three loaded samples: window not full, no decision yet.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(ctl.observe(loaded()), 1u);
  // Fourth completes the window: geometric ramp, 1 -> 2.
  EXPECT_EQ(ctl.observe(loaded()), 2u);
  EXPECT_STREQ(ctl.last_reason(), "backlog");
  // Each further full window doubles again, clamped at the ceiling.
  for (int i = 0; i < 4; ++i) ctl.observe(loaded());
  EXPECT_EQ(ctl.target(), 4u);
  for (int i = 0; i < 4; ++i) ctl.observe(loaded());
  EXPECT_EQ(ctl.target(), 8u);
  for (int i = 0; i < 8; ++i) ctl.observe(loaded());
  EXPECT_EQ(ctl.target(), 8u) << "ceiling must hold";
}

TEST(Autoscale, CooldownDiscardsSamples) {
  // window 2, cooldown 3: after the first decision, three loaded samples
  // are discarded outright — the next decision needs a fresh window after
  // the hold, so it lands exactly on sample 2 + 3 + 2.
  AutoscaleController ctl(config(1, 8, 2, 3), 1);
  EXPECT_EQ(ctl.observe(loaded()), 1u);
  EXPECT_EQ(ctl.observe(loaded()), 2u);  // decision #1
  EXPECT_EQ(ctl.observe(loaded()), 2u);  // cooldown 3
  EXPECT_EQ(ctl.observe(loaded()), 2u);  // cooldown 2
  EXPECT_EQ(ctl.observe(loaded()), 2u);  // cooldown 1
  EXPECT_EQ(ctl.observe(loaded()), 2u);  // fresh window, 1 of 2
  EXPECT_EQ(ctl.observe(loaded()), 4u);  // decision #2
}

TEST(Autoscale, SpillJumpsToMaxBypassingWindowAndCooldown) {
  // A giant window and cooldown must not delay the emergency path.
  AutoscaleController ctl(config(1, 8, 64, 64), 1);
  EXPECT_EQ(ctl.observe(spilling()), 8u);
  EXPECT_STREQ(ctl.last_reason(), "spill");
}

TEST(Autoscale, SpillOverridesCooldownHold) {
  AutoscaleConfig cfg = config(1, 8, 1, 16);
  AutoscaleController ctl(cfg, 1);
  EXPECT_EQ(ctl.observe(loaded()), 2u);  // decision starts a 16-tick hold
  EXPECT_EQ(ctl.observe(loaded()), 2u);  // held
  EXPECT_EQ(ctl.observe(spilling()), 8u) << "spill must pierce the hold";
}

TEST(Autoscale, SpillAtCeilingChangesNothing) {
  AutoscaleController ctl(config(1, 4, 2, 0), 4);
  EXPECT_EQ(ctl.observe(spilling()), 4u);
  EXPECT_STREQ(ctl.last_reason(), "") << "no decision was made";
}

TEST(Autoscale, SpillJumpLeavesCooldownBehind) {
  // The emergency jump bypasses the cooldown on the way UP, but must leave
  // one behind: without it, the very next idle window would step straight
  // back down and a transient spill thrashes 1 -> max -> max-1 within a few
  // ticks.  window 1 makes every post-hold sample a decision point.
  AutoscaleController ctl(config(1, 4, 1, 3), 1);
  EXPECT_EQ(ctl.observe(spilling()), 4u);
  EXPECT_STREQ(ctl.last_reason(), "spill");
  EXPECT_EQ(ctl.observe(idle()), 4u);  // cooldown 3
  EXPECT_EQ(ctl.observe(idle()), 4u);  // cooldown 2
  EXPECT_EQ(ctl.observe(idle()), 4u);  // cooldown 1
  EXPECT_EQ(ctl.observe(idle()), 3u);  // hold expired: normal step-down
}

TEST(Autoscale, SustainedSpillAtCeilingRefreshesCooldown) {
  // Spilling ticks at the ceiling used to fall into the cooldown decrement:
  // a long spill burned the hold sample by sample, so the first quiet tick
  // after the backlog drained stepped down immediately — the thrash the
  // cooldown exists to prevent.  They must refresh the hold instead: after
  // ANY spill run, a full cooldown + window of quiet evidence is required
  // before stepping down.
  AutoscaleConfig cfg = config(1, 4, 4, 4);
  AutoscaleController ctl(cfg, 1);
  EXPECT_EQ(ctl.observe(spilling()), 4u);  // jump to ceiling
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ctl.observe(spilling()), 4u) << "spill tick " << i;
  }
  // Quiet ticks 1..4 burn the (refreshed) cooldown, 5..8 fill the window.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ctl.observe(idle()), 4u) << "cooldown tick " << i;
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ctl.observe(idle()), 4u) << "window tick " << i;
  }
  EXPECT_EQ(ctl.observe(idle()), 3u) << "full quiet window: step down once";
  EXPECT_STREQ(ctl.last_reason(), "quiet");
}

TEST(Autoscale, QuietStepsDownOneAtATimeToFloor) {
  AutoscaleController ctl(config(2, 8, 2, 0), 5);
  EXPECT_EQ(ctl.observe(idle()), 5u);
  EXPECT_EQ(ctl.observe(idle()), 4u);  // -1 per full idle window
  EXPECT_STREQ(ctl.last_reason(), "quiet");
  ctl.observe(idle());
  EXPECT_EQ(ctl.observe(idle()), 3u);
  ctl.observe(idle());
  EXPECT_EQ(ctl.observe(idle()), 2u);
  for (int i = 0; i < 6; ++i) ctl.observe(idle());
  EXPECT_EQ(ctl.target(), 2u) << "floor must hold";
}

TEST(Autoscale, ScaleDownNeedsBothDepthAndBusyLow) {
  {
    // Near-empty intake but busy workers: a trickle that saturates the
    // current pool is not "quiet".
    AutoscaleController ctl(config(1, 8, 2, 0), 4);
    ctl.observe({0.0, 0.9, false});
    EXPECT_EQ(ctl.observe({0.0, 0.9, false}), 4u);
  }
  {
    // Idle workers but a standing backlog above down_depth (= up_depth/4):
    // mid-band holds in both directions.
    AutoscaleController ctl(config(1, 8, 2, 0), 4);
    ctl.observe({0.3, 0.0, false});
    EXPECT_EQ(ctl.observe({0.3, 0.0, false}), 4u);
  }
}

TEST(Autoscale, DownDepthDerivesFromUpDepth) {
  AutoscaleConfig cfg = config(1, 8, 1, 0);
  cfg.up_depth = 0.8;
  AutoscaleController ctl(cfg, 4);
  EXPECT_DOUBLE_EQ(ctl.config().down_depth, 0.2);
  EXPECT_EQ(ctl.observe({0.19, 0.0, false}), 3u);  // below derived threshold
  EXPECT_EQ(ctl.observe({0.21, 0.0, false}), 3u);  // above: hold
}

TEST(Autoscale, NormalizesDegenerateConfig) {
  AutoscaleConfig cfg;
  cfg.min_workers = 0;  // -> 1
  cfg.max_workers = 0;  // -> max(min, ..) = 1
  cfg.window = 0;       // -> 1 (decision every sample)
  AutoscaleController ctl(cfg, 5);
  EXPECT_EQ(ctl.config().min_workers, 1u);
  EXPECT_EQ(ctl.config().max_workers, 1u);
  EXPECT_EQ(ctl.config().window, 1u);
  EXPECT_EQ(ctl.target(), 1u);
  EXPECT_EQ(ctl.observe(loaded()), 1u);  // degenerate range: never moves
  EXPECT_EQ(ctl.observe(idle()), 1u);
}

TEST(Autoscale, DeterministicAcrossRuns) {
  // Same sample sequence, same decision trace — the property every other
  // test in this file (and resumable CI debugging) rests on.
  const std::vector<AutoscaleSample> trace = {
      loaded(), loaded(), idle(),     loaded(), loaded(), spilling(),
      idle(),   idle(),   idle(),     idle(),   idle(),   idle(),
      loaded(), idle(),   spilling(), idle(),   idle(),   idle(),
  };
  const auto run = [&] {
    AutoscaleController ctl(config(1, 8, 2, 1), 2);
    std::vector<std::size_t> targets;
    for (const auto& s : trace) targets.push_back(ctl.observe(s));
    return targets;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
