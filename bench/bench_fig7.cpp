/// Regenerates Figure 7: BCAE-2D reconstruction accuracy (MAE, precision,
/// recall) over the encoder-depth x decoder-depth grid — m in [3, 7],
/// n in {3, 5, 7, 9, 11} (the paper sweeps n in [3, 11]; we take the odd
/// values to keep the 25-training grid inside the CPU budget; set
/// NC_BENCH_GRID_FULL=1 for all 45 cells).
///
/// Expected shape (§3.5): accuracy improves markedly with *decoder* depth n
/// at every m (this is the unbalanced-autoencoder claim — a larger decoder
/// buys accuracy without touching encoder throughput), while the influence
/// of encoder depth m is comparatively ambiguous.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace nc;
  const auto& ds = bench::grid_dataset();

  const std::vector<std::int64_t> ms{3, 4, 5, 6, 7};
  std::vector<std::int64_t> ns{3, 5, 7, 9, 11};
  if (bench::env_int("NC_BENCH_GRID_FULL", 0)) ns = {3, 4, 5, 6, 7, 8, 9, 10, 11};

  std::map<std::pair<std::int64_t, std::int64_t>,
           metrics::ReconstructionMetrics>
      grid;
  for (const auto m : ms) {
    for (const auto n : ns) {
      bcae::Bcae2dConfig cfg;
      cfg.m = m;
      cfg.n = n;
      auto model = bcae::make_bcae_2d(cfg, 2023);
      bcae::TrainerConfig tc;
      tc.epochs = bench::env_int("NC_BENCH_GRID_EPOCHS", 4);
      tc.batch_size = 4;
      tc.max_wedges_per_epoch = bench::env_int("NC_BENCH_GRID_WEDGES", 24);
      bcae::Trainer trainer(model, ds, tc);
      trainer.fit();
      grid[{m, n}] =
          bcae::evaluate_model(model, ds, ds.test(), core::Mode::kEvalHalf, 8);
      std::fprintf(stderr, "[bench] grid m=%lld n=%lld: MAE %.4f\n",
                   static_cast<long long>(m), static_cast<long long>(n),
                   grid[{m, n}].mae);
    }
  }

  auto heat = [&](const char* title, auto getter, const char* direction) {
    std::printf("\nFigure 7 — %s (%s; rows m=3..7, cols n = ", title, direction);
    for (auto n : ns) std::printf("%lld ", static_cast<long long>(n));
    std::printf(")\n");
    bench::print_rule(14 + 10 * static_cast<int>(ns.size()));
    std::printf("%6s", "m \\ n");
    for (auto n : ns) std::printf("%10lld", static_cast<long long>(n));
    std::printf("\n");
    for (const auto m : ms) {
      std::printf("%6lld", static_cast<long long>(m));
      for (const auto n : ns) std::printf("%10.4f", getter(grid[{m, n}]));
      std::printf("\n");
    }
    bench::print_rule(14 + 10 * static_cast<int>(ns.size()));
  };

  heat("MAE", [](const auto& m) { return m.mae; }, "lower is better");
  heat("precision", [](const auto& m) { return m.precision; }, "higher is better");
  heat("recall", [](const auto& m) { return m.recall; }, "higher is better");

  // The §3.5 "deeper decoders help" trend: compare MAE at the shallowest and
  // deepest decoder, averaged over m.
  double shallow = 0.0, deep = 0.0;
  for (const auto m : ms) {
    shallow += grid[{m, ns.front()}].mae;
    deep += grid[{m, ns.back()}].mae;
  }
  shallow /= static_cast<double>(ms.size());
  deep /= static_cast<double>(ms.size());
  std::printf("\nunbalanced-autoencoder check (§3.5): mean MAE at n=%lld: %.4f "
              "vs n=%lld: %.4f — deeper decoders better: %s\n",
              static_cast<long long>(ns.front()), shallow,
              static_cast<long long>(ns.back()), deep,
              deep < shallow ? "yes" : "NO");
  std::printf("(encoder throughput is untouched by n — the decoder runs "
              "offline; see bench_fig6 panel E for the m dependence.)\n");
  return 0;
}
