/// \file bench_rd.cpp
/// \brief Rate–distortion–throughput arena over every registered WedgeCodec.
///
/// The paper's core claim (§1, Table 1) is comparative: the learned BCAE
/// holds a much higher compression ratio than generic lossy compressors at
/// comparable reconstruction quality on sparse zero-suppressed wedges.
/// bench_baselines measures that with direct single-threaded codec calls;
/// this bench re-asks the question through the *deployment* path — every
/// codec the registry knows (bcae-fp32/fp16/int8, zfp, sz, mgard) streamed
/// through the same StreamCompressor -> envelope store -> StreamDecompressor
/// workload, so ratio, distortion and throughput are measured under the
/// exact machinery production would use (batching, worker pool, ordered
/// reorder, codec-tagged envelopes).
///
/// The final stdout line is a single machine-readable JSON document — the
/// per-codec {ratio, MAE, PSNR, wedges/s} matrix — greppable with '^{';
/// CI uploads it as the BENCH_rd.json artifact next to BENCH_stream.json.
///
/// Run:  ./bench_rd [--wedges 16] [--workers 0] [--batch 4]
///       (--workers 0 = min(4, hardware_concurrency))
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "codec/stream.hpp"
#include "codec/wedge_codec.hpp"
#include "metrics/metrics.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/topology.hpp"

namespace {

struct ArenaRow {
  std::string name;
  unsigned codec_id = 0;
  double ratio = 0.0;
  double mae = 0.0;
  double psnr = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double compress_wps = 0.0;
  double decompress_wps = 0.0;
  long long failed = 0;
};

std::string json_rows(const std::vector<ArenaRow>& rows) {
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"codec_id\":%u,\"ratio\":%.4f,"
                  "\"mae\":%.6f,\"psnr\":%.3f,\"precision\":%.4f,"
                  "\"recall\":%.4f,\"compress_wps\":%.2f,"
                  "\"decompress_wps\":%.2f,\"failed\":%lld}",
                  i ? "," : "", rows[i].name.c_str(), rows[i].codec_id,
                  rows[i].ratio, rows[i].mae, rows[i].psnr, rows[i].precision,
                  rows[i].recall, rows[i].compress_wps, rows[i].decompress_wps,
                  rows[i].failed);
    out += buf;
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("bench_rd",
                       "rate-distortion arena: every registered codec through "
                       "the streamed deployment path");
  args.add_option("wedges", "16", "test wedges pushed through each codec");
  args.add_option("workers", "0",
                  "stream workers (0 = min(4, hardware_concurrency))");
  args.add_option("batch", "4", "codec batch size");
  if (!args.parse(argc, argv)) return 1;

  const auto& ds = bench::bench_dataset();
  std::vector<core::Tensor> wedges;
  const std::size_t want =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("wedges")));
  for (std::size_t i = 0; i < want && i < ds.test().size(); ++i) {
    wedges.push_back(tpc::clip_horizontal(ds.test()[i], ds.valid_horiz()));
  }
  const std::int64_t voxels_per_wedge = wedges.front().numel();
  const std::int64_t total_voxels =
      voxels_per_wedge * static_cast<std::int64_t>(wedges.size());

  // One briefly-trained BCAE-2D backs all three bcae-* arena entries; the
  // baselines ignore the model.  Same training protocol as bench_baselines
  // so the two benches' BCAE rows are comparable.
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 2023);
  const auto tc = bench::bench_trainer_config(false);
  const double train_s = bench::train_model(model, ds, tc);
  std::fprintf(stderr, "[bench] trained %s in %.1fs\n", model.name().c_str(),
               train_s);

  std::size_t n_workers = static_cast<std::size_t>(
      std::max<std::int64_t>(0, args.get_int("workers")));
  if (n_workers == 0) {
    n_workers = std::min<std::size_t>(4, util::hardware_threads());
  }
  // Worker-pool parallelism only — same pinning as bench_stream, so
  // wedges/s columns are comparable across benches.
  util::set_num_threads(1);

  codec::StreamOptions opt;
  opt.n_workers = n_workers;
  opt.batch_size =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("batch")));
  opt.queue_capacity = std::max<std::size_t>(16, 2 * wedges.size());

  std::vector<ArenaRow> rows;
  for (const auto& name : codec::registered_codec_names()) {
    const auto wedge_codec = codec::make_wedge_codec(name, model);

    // Write side: raw wedges -> codec-tagged envelopes, keyed by seq.
    std::mutex store_mutex;
    std::map<std::uint64_t, codec::WedgeEnvelope> storage;
    util::Timer ctimer;
    codec::StreamCompressor compressor(
        *wedge_codec, opt,
        [&](std::uint64_t seq, codec::WedgeEnvelope&& env) {
          std::lock_guard<std::mutex> lock(store_mutex);
          storage.emplace(seq, std::move(env));
        });
    for (const auto& w : wedges) compressor.submit(w);
    const auto cstats = compressor.finish();
    const double compress_s = ctimer.elapsed_s();

    // Read side: envelopes -> reconstructions, in submission order.
    codec::StreamOptions dopt = opt;
    dopt.ordered = true;
    std::vector<core::Tensor> decoded;
    util::Timer dtimer;
    codec::StreamDecompressor decompressor(
        *wedge_codec, dopt, [&](std::uint64_t, core::Tensor&& w) {
          decoded.push_back(std::move(w));
        });
    for (const auto& [seq, env] : storage) decompressor.submit(env);
    const auto dstats = decompressor.finish();
    const double decompress_s = dtimer.elapsed_s();

    metrics::MetricsAccumulator acc;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      acc.add(metrics::evaluate_reconstruction(decoded[i], wedges[i]),
              wedges[i].numel());
    }
    const auto m = acc.result();

    ArenaRow row;
    row.name = name;
    row.codec_id = static_cast<unsigned>(wedge_codec->codec_id());
    // The envelope's uniform fp16 accounting (§3.1): fp16 wedge volume over
    // stored payload bytes, identical formula for every codec.
    row.ratio = baselines::fp16_storage_ratio(total_voxels,
                                              cstats.payload_bytes);
    row.mae = m.mae;
    row.psnr = m.psnr;
    row.precision = m.precision;
    row.recall = m.recall;
    row.compress_wps = static_cast<double>(cstats.wedges_compressed) / compress_s;
    row.decompress_wps =
        static_cast<double>(dstats.wedges_compressed) / decompress_s;
    row.failed = cstats.wedges_failed + dstats.wedges_failed;
    rows.push_back(row);
  }

  std::printf("\nRate-distortion arena — %zu wedges of %s through the "
              "streamed path (%zu workers, batch %zu)\n",
              wedges.size(), ds.wedge_shape().to_string().c_str(), n_workers,
              opt.batch_size);
  bench::print_rule(104);
  std::printf("%-12s %4s %8s %10s %9s %10s %8s %13s %13s\n", "codec", "id",
              "ratio", "MAE", "PSNR", "precision", "recall", "enc wedges/s",
              "dec wedges/s");
  bench::print_rule(104);
  for (const auto& r : rows) {
    std::printf("%-12s %4u %8.2f %10.4f %9.2f %10.3f %8.3f %13.1f %13.1f\n",
                r.name.c_str(), r.codec_id, r.ratio, r.mae, r.psnr,
                r.precision, r.recall, r.compress_wps, r.decompress_wps);
  }
  bench::print_rule(104);
  std::printf("BCAE rows hold a fixed code-size ratio; the generic codecs "
              "trade ratio for error wedge by wedge (paper Table 1 shape).\n");

  // Machine-readable trailer (single line, greppable with '^{').
  std::printf("\n{\"bench\":\"rd\",\"wedges\":%zu,\"voxels_per_wedge\":%lld,"
              "\"workers\":%zu,\"batch\":%zu,\"train_s\":%.1f,\"codecs\":%s}\n",
              wedges.size(), static_cast<long long>(voxels_per_wedge),
              n_workers, opt.batch_size, train_s, json_rows(rows).c_str());
  return 0;
}
