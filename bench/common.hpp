/// \file common.hpp
/// \brief Shared harness for the table/figure regeneration benches.
///
/// Every bench uses the same scaled experiment setup (see DESIGN.md §1):
/// wedges of (16, 48, 62)->64 instead of the paper's (16, 192, 249)->256,
/// short trainings instead of 500-1000 epochs.  Paper reference values are
/// printed next to measured ones so the *shape* comparison (who wins, by
/// roughly what factor) is direct; absolute values are not expected to
/// match (CPU substrate, reduced scale — EXPERIMENTS.md discusses this).
///
/// Environment knobs:
///   NC_BENCH_EVENTS  — simulated events for the dataset (default 6)
///   NC_BENCH_EPOCHS  — training epochs per model (default 6)
///   NC_BENCH_WEDGES  — train wedges per epoch cap (default 24)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bcae/evaluator.hpp"
#include "bcae/model.hpp"
#include "bcae/trainer.hpp"
#include "tpc/dataset.hpp"
#include "util/timer.hpp"

namespace nc::bench {

inline std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoll(v) : fallback;
}

/// Canonical bench dataset: generated once per process, deterministic.
inline const tpc::WedgeDataset& bench_dataset() {
  static const tpc::WedgeDataset ds = [] {
    tpc::DatasetConfig cfg;
    cfg.geometry = tpc::TpcGeometry::bench_scale();
    cfg.n_events = env_int("NC_BENCH_EVENTS", 6);
    cfg.train_fraction = 0.75;
    std::fprintf(stderr, "[bench] generating %lld events at scale %.3g ...\n",
                 static_cast<long long>(cfg.n_events), cfg.geometry.scale);
    util::Timer t;
    auto d = tpc::WedgeDataset::generate(cfg);
    std::fprintf(stderr,
                 "[bench] dataset: %zu train / %zu test wedges %s (pad %lld), "
                 "occupancy %.3f (%.1fs)\n",
                 d.train().size(), d.test().size(),
                 d.wedge_shape().to_string().c_str(),
                 static_cast<long long>(d.padded_horiz()), d.occupancy(),
                 t.elapsed_s());
    return d;
  }();
  return ds;
}

/// Smaller dataset for the Fig. 7 grid search (25 trainings).
inline const tpc::WedgeDataset& grid_dataset() {
  static const tpc::WedgeDataset ds = [] {
    tpc::DatasetConfig cfg;
    cfg.geometry.scale = 0.125;  // wedges (16, 32, 31) -> 32
    cfg.n_events = env_int("NC_BENCH_GRID_EVENTS", 4);
    cfg.train_fraction = 0.75;
    return tpc::WedgeDataset::generate(cfg);
  }();
  return ds;
}

/// Paper-matched trainer configuration, scaled down in epochs.  The paper's
/// schedules: 3-D variants 1000 epochs (flat 100, decay every 20); 2-D 500
/// epochs (flat 50, decay every 10).  We keep the flat:decay structure at
/// 1/100 scale by default.
inline bcae::TrainerConfig bench_trainer_config(bool is_3d) {
  bcae::TrainerConfig tc;
  tc.epochs = env_int("NC_BENCH_EPOCHS", 6);
  tc.batch_size = 4;  // paper: 4
  tc.lr = 1e-3;       // paper: 1e-3
  tc.flat_epochs = is_3d ? std::max<std::int64_t>(1, tc.epochs / 10)
                         : std::max<std::int64_t>(1, tc.epochs / 10);
  tc.decay_every = 1;
  tc.max_wedges_per_epoch = env_int("NC_BENCH_WEDGES", 24);
  return tc;
}

/// Train a model on the bench dataset with progress logging; returns
/// training wall time in seconds.
inline double train_model(bcae::BcaeModel& model,
                          const tpc::WedgeDataset& dataset,
                          const bcae::TrainerConfig& tc) {
  util::Timer t;
  bcae::Trainer trainer(model, dataset, tc);
  trainer.fit([&](const bcae::EpochStats& s) {
    std::fprintf(stderr, "[bench] %-16s epoch %2lld: seg %.4g reg %.4g lr %.2e\n",
                 model.name().c_str(), static_cast<long long>(s.epoch),
                 s.seg_loss, s.reg_loss, s.lr);
  });
  return t.elapsed_s();
}

/// Throughput protocol shared by Table 1 and Fig. 6: batch of 32, half or
/// full precision, inputs pre-staged (no file IO in the timed region).
inline double bench_throughput(bcae::BcaeModel& model,
                               const tpc::WedgeDataset& ds, core::Mode mode,
                               std::int64_t batch = 32) {
  return bcae::encoder_throughput(model, ds, batch, mode, 1.0);
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace nc::bench
