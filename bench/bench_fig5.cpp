/// Regenerates Figure 5: qualitative reconstruction comparison on one test
/// wedge for BCAE-2D, BCAE++ and BCAE-HT.
///
/// The paper shows image panels (ground truth, reconstruction, difference).
/// Here one radial layer of the chosen wedge is rendered as ASCII intensity
/// maps, and per-model difference statistics are printed.  Expected shape:
/// BCAE++ produces the visually closest reconstruction (smallest difference
/// energy), mirroring the paper's "noticeably different plots" observation.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "metrics/metrics.hpp"
#include "tpc/dataset.hpp"

namespace {

/// ASCII intensity map of one radial layer (azim x horiz), downsampled 2x.
void render_layer(const nc::core::Tensor& wedge, std::int64_t layer,
                  const char* title) {
  const std::int64_t azim = wedge.dim(1), horiz = wedge.dim(2);
  static const char* shades = " .:-=+*#%@";
  std::printf("%s (layer %lld, %lldx%lld, 6..10 -> ' '..'@')\n", title,
              static_cast<long long>(layer), static_cast<long long>(azim / 2),
              static_cast<long long>(horiz / 2));
  for (std::int64_t a = 0; a + 1 < azim; a += 2) {
    for (std::int64_t h = 0; h + 1 < horiz; h += 2) {
      float v = 0.f;
      for (std::int64_t da = 0; da < 2; ++da)
        for (std::int64_t dh = 0; dh < 2; ++dh)
          v = std::max(v, wedge.at({layer, a + da, h + dh}));
      int idx = 0;
      if (v > 0.f) {
        idx = 1 + static_cast<int>((std::min(v, 10.f) - 6.f) / 4.f * 8.f);
        idx = std::clamp(idx, 1, 9);
      }
      std::putchar(shades[idx]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  using namespace nc;
  const auto& ds = bench::bench_dataset();

  // One fixed test wedge (the paper also shows a single example).
  const core::Tensor truth =
      tpc::clip_horizontal(ds.test().front(), ds.valid_horiz());
  const std::int64_t layer = 8;

  render_layer(truth, layer, "\nground truth");

  auto run = [&](bcae::BcaeModel&& model) {
    auto tc = bench::bench_trainer_config(model.is_3d());
    bench::train_model(model, ds, tc);

    std::vector<std::int64_t> idx{0};
    const core::Tensor batch = model.is_3d() ? ds.batch_3d(ds.test(), idx)
                                             : ds.batch_2d(ds.test(), idx);
    const auto heads = model.forward(batch, core::Mode::kEvalHalf);
    core::Tensor recon = bcae::BcaeModel::reconstruct(heads);
    recon = tpc::clip_horizontal(
        recon.reshaped({truth.dim(0), truth.dim(1), ds.padded_horiz()}),
        ds.valid_horiz());

    std::printf("\n");
    render_layer(recon, layer, ("reconstruction — " + model.name()).c_str());

    const auto m = metrics::evaluate_reconstruction(recon, truth);
    std::printf("difference stats — %s: MAE %.4f, max|diff| over layer: ",
                model.name().c_str(), m.mae);
    float max_diff = 0.f;
    for (std::int64_t a = 0; a < truth.dim(1); ++a) {
      for (std::int64_t h = 0; h < truth.dim(2); ++h) {
        max_diff = std::max(max_diff, std::abs(recon.at({layer, a, h}) -
                                               truth.at({layer, a, h})));
      }
    }
    std::printf("%.3f, precision %.3f, recall %.3f\n",
                static_cast<double>(max_diff),
                static_cast<double>(m.precision),
                static_cast<double>(m.recall));
    return m.mae;
  };

  const double mae_2d = run(bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 2023));
  const double mae_pp = run(bcae::make_bcae_pp(2023));
  const double mae_ht = run(bcae::make_bcae_ht(2023));

  std::printf("\nshape check (paper: BCAE++ visibly most accurate): "
              "BCAE++ MAE %.4f <= BCAE-2D %.4f: %s; <= BCAE-HT %.4f: %s\n",
              mae_pp, mae_2d, mae_pp <= mae_2d ? "yes" : "NO", mae_ht,
              mae_pp <= mae_ht ? "yes" : "NO");
  return 0;
}
