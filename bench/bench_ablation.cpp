/// Ablation bench for the paper's §4 future-work directions and the design
/// choices DESIGN.md calls out:
///   1. post-training int8 quantization of the encoder (accuracy cost,
///      throughput, 4x weight-size reduction),
///   2. magnitude pruning (sparse-CNN direction) — our fp32 GEMM skips zero
///      weights, so pruning converts directly into encoder throughput,
///   3. normalization-layer ablation (§2.3's second modification): the same
///      3-D architecture with and without InstanceNorm.
#include <cstdio>

#include "bench/common.hpp"
#include "core/quantize.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace nc;
  const auto& ds = bench::bench_dataset();

  // --- 1 & 2: train one BCAE-2D, then quantize / prune its encoder -------
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 2023);
  auto tc = bench::bench_trainer_config(false);
  bench::train_model(model, ds, tc);

  std::printf("\nAblation A — post-training encoder optimization (BCAE-2D)\n");
  bench::print_rule(96);
  std::printf("%-26s %10s %10s %10s %12s %14s\n", "configuration", "MAE",
              "precision", "recall", "sparsity", "enc wedges/s");
  bench::print_rule(96);

  auto report = [&](const char* label, core::Mode mode) {
    const auto m = bcae::evaluate_model(model, ds, ds.test(), mode, 8);
    const double thr = bench::bench_throughput(model, ds, mode);
    std::printf("%-26s %10.4f %10.3f %10.3f %12.3f %14.1f\n", label, m.mae,
                m.precision, m.recall,
                core::weight_sparsity(model.encoder_params()), thr);
  };

  report("fp32", core::Mode::kEval);
  report("fp16 (paper's mode)", core::Mode::kEvalHalf);
  report("int8 weights+activations", core::Mode::kEvalInt8);

  for (const double fraction : {0.5, 0.8}) {
    // Pruning is destructive; measure increasing sparsity on the same model.
    core::prune_by_magnitude(model.encoder_params(), fraction);
    model.invalidate_half_cache();
    char label[64];
    std::snprintf(label, sizeof(label), "pruned %.0f%% + fp32", fraction * 100);
    report(label, core::Mode::kEval);
  }
  bench::print_rule(96);
  std::printf("int8 weight storage: %.0fkB vs fp32 %.0fkB (4x smaller; code "
              "stream unchanged)\n",
              model.encoder_param_count() / 1024.0,
              model.encoder_param_count() * 4 / 1024.0);

  // --- 3: normalization ablation (§2.3) -----------------------------------
  std::printf("\nAblation B — §2.3 normalization removal: identical 3-D "
              "architecture trained with and without InstanceNorm\n");
  bench::print_rule(96);
  std::printf("%-26s %10s %10s %10s %14s %14s\n", "configuration", "MAE",
              "precision", "recall", "train s/epoch", "enc wedges/s");
  bench::print_rule(96);
  for (const bool use_norm : {false, true}) {
    bcae::Bcae3dConfig cfg = bcae::Bcae3dConfig::bcae_pp();
    cfg.use_norm = use_norm;
    auto m3 = bcae::make_bcae_3d(cfg, 2023, use_norm ? "with-norm" : "norm-free");
    auto tc3 = bench::bench_trainer_config(true);
    const double train_s = bench::train_model(m3, ds, tc3);
    const auto m = bcae::evaluate_model(m3, ds, ds.test(), core::Mode::kEval, 8);
    const double thr = bench::bench_throughput(m3, ds, core::Mode::kEval);
    std::printf("%-26s %10.4f %10.3f %10.3f %14.2f %14.1f\n",
                use_norm ? "with InstanceNorm" : "norm-free (BCAE++)", m.mae,
                m.precision, m.recall,
                train_s / static_cast<double>(tc3.epochs), thr);
  }
  bench::print_rule(96);
  std::printf("expected shape (§2.3): comparable accuracy, slower training "
              "and inference with normalization layers.\n");
  return 0;
}
