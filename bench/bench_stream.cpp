/// \file bench_stream.cpp
/// \brief Worker-count scaling sweep for both streaming directions and both
///        intake layers.
///
/// Measures wedges/s through StreamCompressor (encode) and
/// StreamDecompressor (decode, the offline-analysis side) as n_workers grows
/// from 1 to the hardware concurrency, once with the single shared
/// BoundedQueue and once with the sharded work-stealing intake, with OpenMP
/// pinned to one thread per worker so the only parallelism under test is the
/// worker pool itself.  The comparison is what the sharded intake claims: at
/// high worker counts the sharded rows should be no worse than the
/// single-queue rows (the shared queue's mutex is the contention point the
/// shards remove), and the `stolen` column shows the stealing actually
/// firing.
///
/// A burst sweep follows: a 4x-capacity try_submit burst with the spill
/// tier enabled, per intake mode — the lossless-backpressure claim
/// (wedges_dropped == 0, every spilled wedge replayed) measured rather than
/// assumed, with the spilled/replayed counts in the JSON trailer.
///
/// An elastic-vs-static comparison closes the run: the same bursty profile
/// (quiet trickle -> flood -> quiet trickle) through a static max-size pool
/// and an elastic pool (min 1, same ceiling), reporting burst drain
/// throughput, scale events and quiet-phase live workers — the elastic
/// pool's pitch is matching the static pool's burst throughput at strictly
/// fewer live workers when the detector is quiet.
///
/// The final stdout line is a single machine-readable JSON document
/// (wedges/s per worker count, both directions, both intakes, plus the
/// burst rows) so perf trajectories can be tracked across commits by
/// scraping `grep '^{'` from the output — CI uploads it as the
/// BENCH_stream.json artifact.
///
/// Run:  ./bench_stream [--wedges 64] [--batch 4] [--max-workers 0]
///       (--max-workers 0 = sweep up to hardware_concurrency, min 4)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "codec/stream.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

namespace {

struct SweepPoint {
  std::size_t workers = 0;
  double wall_s = 0.0;
  double wps = 0.0;
  double speedup = 0.0;
  double cpu_per_wall = 0.0;
  long long stolen = 0;
};

void print_point(const SweepPoint& p) {
  std::printf("  %-8zu %12.3f %12.1f %9.2fx %10.2f %8lld\n", p.workers,
              p.wall_s, p.wps, p.speedup, p.cpu_per_wall, p.stolen);
}

struct ElasticPoint {
  const char* mode = "";
  double burst_s = 0.0;     ///< burst submit -> last burst wedge sunk
  double burst_wps = 0.0;
  long long up = 0;         ///< scale-up events
  long long down = 0;       ///< scale-down events
  double avg_live = 0.0;    ///< time-weighted mean live workers (whole run)
  double quiet_live = 0.0;  ///< mean live workers sampled in quiet phases
};

std::string json_elastic(const ElasticPoint& p) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"mode\":\"%s\",\"burst_s\":%.4f,\"burst_wps\":%.2f,"
                "\"scale_up\":%lld,\"scale_down\":%lld,\"avg_live\":%.2f,"
                "\"quiet_live\":%.2f}",
                p.mode, p.burst_s, p.burst_wps, p.up, p.down, p.avg_live,
                p.quiet_live);
  return buf;
}

struct BurstPoint {
  std::size_t workers = 0;
  std::size_t capacity = 0;
  long long wedges = 0;
  double wall_s = 0.0;
  double wps = 0.0;
  long long spilled = 0;
  long long replayed = 0;
  long long dropped = 0;
};

std::string json_burst(const BurstPoint& p) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"workers\":%zu,\"capacity\":%zu,\"wedges\":%lld,"
                "\"wall_s\":%.4f,\"wps\":%.2f,\"spilled\":%lld,"
                "\"replayed\":%lld,\"dropped\":%lld}",
                p.workers, p.capacity, p.wedges, p.wall_s, p.wps, p.spilled,
                p.replayed, p.dropped);
  return buf;
}

std::string json_points(const std::vector<SweepPoint>& points) {
  std::string out = "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"workers\":%zu,\"wall_s\":%.4f,\"wps\":%.2f,"
                  "\"speedup\":%.3f,\"cpu_per_wall\":%.3f,\"stolen\":%lld}",
                  i ? "," : "", points[i].workers, points[i].wall_s,
                  points[i].wps, points[i].speedup, points[i].cpu_per_wall,
                  points[i].stolen);
    out += buf;
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("bench_stream",
                       "StreamCompressor/StreamDecompressor worker scaling sweep");
  args.add_option("wedges", "64", "wedges pushed through the pipeline per run");
  args.add_option("batch", "4", "codec batch size");
  args.add_option("max-workers", "0",
                  "sweep ceiling (0 = hardware_concurrency, min 4)");
  if (!args.parse(argc, argv)) return 1;

  tpc::DatasetConfig cfg;
  cfg.n_events = 2;
  cfg.geometry.scale = 0.125;
  cfg.train_fraction = 0.5;
  const auto dataset = tpc::WedgeDataset::generate(cfg);
  std::vector<core::Tensor> wedges;
  for (const auto& w : dataset.train()) {
    wedges.push_back(tpc::clip_horizontal(w, dataset.valid_horiz()));
  }

  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 7);
  codec::BcaeWedgeCodec wedge_codec(model, core::Mode::kEvalHalf);
  // Warm the fp16 weight caches (encoder and both decoder heads) so the
  // sweeps time steady-state throughput.
  (void)wedge_codec.decompress(wedge_codec.compress(wedges.front()));

  // The decode sweep replays pre-compressed wedges: storage -> analysis.
  std::vector<codec::WedgeEnvelope> stored;
  for (const auto& w : wedges) stored.push_back(wedge_codec.compress(w));

  // One OpenMP thread per worker: scaling must come from the worker pool,
  // not from intra-batch OpenMP fan-out fighting it for cores.
  util::set_num_threads(1);

  const unsigned hw = static_cast<unsigned>(util::hardware_threads());
  std::size_t max_workers = static_cast<std::size_t>(
      std::max<std::int64_t>(0, args.get_int("max-workers")));
  if (max_workers == 0) max_workers = std::max(4u, hw);
  const std::int64_t n_wedges = std::max<std::int64_t>(1, args.get_int("wedges"));
  const std::size_t batch =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("batch")));

  std::printf("bench_stream: %lld wedges of %s, batch %lld, hardware threads %u\n",
              static_cast<long long>(n_wedges),
              dataset.wedge_shape().to_string().c_str(),
              static_cast<long long>(batch), hw);

  std::vector<std::size_t> sweep;
  for (std::size_t w = 1; w <= max_workers; w *= 2) sweep.push_back(w);
  if (sweep.back() != max_workers) sweep.push_back(max_workers);

  const codec::IntakeMode intakes[] = {codec::IntakeMode::kSingleQueue,
                                       codec::IntakeMode::kSharded};

  // One run of either direction at a given worker count and intake mode;
  // returns the pipeline stats for the derived columns.  The speedup column
  // is relative to the single-queue 1-worker baseline of the direction, so
  // the two intake blocks are directly comparable.
  const auto run_sweep = [&](const char* label, auto&& run_one) {
    std::vector<std::vector<SweepPoint>> blocks;
    double base_wps = 0.0;
    for (const auto intake : intakes) {
      std::printf("\n%s direction, %s intake:\n", label,
                  codec::to_string(intake));
      std::printf("  %-8s %12s %12s %10s %10s %8s\n", "workers", "wall [s]",
                  "wps", "speedup", "cpu/wall", "stolen");
      std::vector<SweepPoint> points;
      for (const std::size_t n_workers : sweep) {
        codec::StreamOptions opt;
        opt.queue_capacity = std::max<std::size_t>(64, 4 * n_workers);
        opt.batch_size = batch;
        opt.n_workers = n_workers;
        opt.intake = intake;
        util::Timer wall;
        const codec::StreamStats stats = run_one(opt);
        const double wall_s = wall.elapsed_s();
        SweepPoint p;
        p.workers = n_workers;
        p.wall_s = wall_s;
        p.wps = wall_s > 0
                    ? static_cast<double>(stats.wedges_compressed) / wall_s
                    : 0.0;
        if (base_wps == 0.0) base_wps = p.wps;  // single-queue, 1 worker
        p.speedup = base_wps > 0 ? p.wps / base_wps : 0.0;
        p.cpu_per_wall =
            stats.elapsed_s > 0 ? stats.cpu_s / stats.elapsed_s : 0.0;
        p.stolen = static_cast<long long>(stats.batches_stolen);
        print_point(p);
        points.push_back(p);
        if (stats.wedges_compressed != n_wedges) {
          std::fprintf(stderr, "ERROR: %s processed %lld of %lld wedges\n",
                       label, static_cast<long long>(stats.wedges_compressed),
                       static_cast<long long>(n_wedges));
          std::exit(1);
        }
      }
      blocks.push_back(std::move(points));
    }
    return blocks;  // [0] = single queue, [1] = sharded
  };

  const auto compress_blocks =
      run_sweep("compress", [&](const codec::StreamOptions& opt) {
        // The unordered sink runs concurrently across workers: tally atomically.
        std::atomic<std::int64_t> bytes{0};
        codec::StreamCompressor stream(
            wedge_codec, opt, [&bytes](codec::WedgeEnvelope&& cw) {
              bytes.fetch_add(cw.payload_bytes(), std::memory_order_relaxed);
            });
        for (std::int64_t i = 0; i < n_wedges; ++i) {
          stream.submit(wedges[static_cast<std::size_t>(i) % wedges.size()]);
        }
        return stream.finish();
      });

  const auto decompress_blocks =
      run_sweep("decompress", [&](const codec::StreamOptions& opt) {
        std::atomic<std::int64_t> voxels{0};
        codec::StreamDecompressor stream(
            wedge_codec, opt, [&voxels](core::Tensor&& w) {
              voxels.fetch_add(w.numel(), std::memory_order_relaxed);
            });
        for (std::int64_t i = 0; i < n_wedges; ++i) {
          stream.submit(stored[static_cast<std::size_t>(i) % stored.size()]);
        }
        return stream.finish();
      });

  // Burst absorption: try_submit a 4x-capacity burst against the compress
  // pool with the spill tier enabled.  Drops or an unreplayed spill are
  // hard errors — this row *is* the lossless-backpressure claim.
  const auto spill_root =
      std::filesystem::temp_directory_path() /
      ("bench_stream_spill_" +
       std::to_string(std::chrono::steady_clock::now().time_since_epoch().count()));
  const std::size_t burst_workers = std::min<std::size_t>(4, max_workers);
  const auto run_burst = [&](codec::IntakeMode intake) {
    codec::StreamOptions opt;
    opt.queue_capacity = 16;
    opt.batch_size = batch;
    opt.n_workers = burst_workers;
    opt.intake = intake;
    opt.spill_dir = (spill_root / codec::to_string(intake)).string();
    const long long n_burst = 4 * static_cast<long long>(opt.queue_capacity);
    std::atomic<std::int64_t> bytes{0};
    util::Timer wall;
    codec::StreamCompressor stream(
        wedge_codec, opt, [&bytes](codec::WedgeEnvelope&& cw) {
          bytes.fetch_add(cw.payload_bytes(), std::memory_order_relaxed);
        });
    for (long long i = 0; i < n_burst; ++i) {
      (void)stream.try_submit(wedges[static_cast<std::size_t>(i) % wedges.size()]);
    }
    const codec::StreamStats stats = stream.finish();
    BurstPoint p;
    p.workers = opt.n_workers;
    p.capacity = opt.queue_capacity;
    p.wedges = n_burst;
    p.wall_s = wall.elapsed_s();
    p.wps = p.wall_s > 0
                ? static_cast<double>(stats.wedges_compressed) / p.wall_s
                : 0.0;
    p.spilled = static_cast<long long>(stats.wedges_spilled);
    p.replayed = static_cast<long long>(stats.wedges_replayed);
    p.dropped = static_cast<long long>(stats.wedges_dropped);
    std::printf("  %-8s %12.3f %12.1f %9lld %9lld %8lld\n",
                codec::to_string(intake), p.wall_s, p.wps, p.spilled,
                p.replayed, p.dropped);
    if (stats.wedges_compressed != n_burst || p.dropped != 0 ||
        p.replayed != p.spilled) {
      std::fprintf(stderr,
                   "ERROR: burst not lossless (%lld of %lld compressed, "
                   "%lld dropped, %lld/%lld replayed)\n",
                   static_cast<long long>(stats.wedges_compressed), n_burst,
                   p.dropped, p.replayed, p.spilled);
      std::error_code ec;
      std::filesystem::remove_all(spill_root, ec);  // don't strand temp files
      std::exit(1);
    }
    return p;
  };
  std::printf("\nburst (4x capacity, spill tier on, %zu workers):\n",
              burst_workers);
  std::printf("  %-8s %12s %12s %9s %9s %8s\n", "intake", "wall [s]", "wps",
              "spilled", "replayed", "dropped");
  const BurstPoint burst_single = run_burst(codec::IntakeMode::kSingleQueue);
  const BurstPoint burst_sharded = run_burst(codec::IntakeMode::kSharded);
  std::error_code cleanup_ec;
  std::filesystem::remove_all(spill_root, cleanup_ec);

  // Elastic vs static under a bursty profile: quiet trickle -> flood ->
  // quiet trickle.  The elastic claim is two-sided: burst drain time within
  // noise of the static pool (scale-up is a condvar notify, microseconds)
  // while the quiet phases run strictly fewer live workers.  Loss is the
  // only hard error; the throughput comparison is printed and left to the
  // reader / trend tracking (CI machines are too noisy for a ±10% gate).
  const std::size_t elastic_pool = std::min<std::size_t>(4, max_workers);
  const auto run_elastic = [&](bool elastic) {
    codec::StreamOptions opt;
    opt.queue_capacity = 16;
    opt.batch_size = batch;
    opt.intake = codec::IntakeMode::kSharded;
    if (elastic) {
      opt.elastic = true;
      opt.min_workers = 1;
      opt.max_workers = elastic_pool;
      opt.n_workers = 1;
      opt.scale_interval_s = 0.001;  // fast ticks: the run is ~100 ms
      opt.scale_window = 4;
      opt.scale_cooldown = 2;
    } else {
      opt.n_workers = elastic_pool;
    }
    const long long n_quiet = 16;
    const long long n_burst = 8 * static_cast<long long>(opt.queue_capacity);
    std::atomic<long long> sunk{0};
    codec::StreamCompressor stream(
        wedge_codec, opt, [&sunk](codec::WedgeEnvelope&&) {
          sunk.fetch_add(1, std::memory_order_relaxed);
        });
    double quiet_live_sum = 0.0;
    long long quiet_samples = 0;
    const auto quiet_phase = [&] {
      for (long long i = 0; i < n_quiet; ++i) {
        stream.submit(wedges[static_cast<std::size_t>(i) % wedges.size()]);
        quiet_live_sum += static_cast<double>(stream.live_workers());
        ++quiet_samples;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    };
    quiet_phase();
    // Burst: flood, then spin until the sink has swallowed everything —
    // that drain time is the scale-up-latency-inclusive number under test.
    util::Timer burst_wall;
    for (long long i = 0; i < n_burst; ++i) {
      stream.submit(wedges[static_cast<std::size_t>(i) % wedges.size()]);
    }
    while (sunk.load(std::memory_order_relaxed) < n_quiet + n_burst) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    const double burst_s = burst_wall.elapsed_s();
    quiet_phase();
    const codec::StreamStats stats = stream.finish();
    ElasticPoint p;
    p.mode = elastic ? "elastic" : "static";
    p.burst_s = burst_s;
    p.burst_wps =
        burst_s > 0 ? static_cast<double>(n_burst) / burst_s : 0.0;
    p.up = static_cast<long long>(stats.scale_up_events);
    p.down = static_cast<long long>(stats.scale_down_events);
    p.avg_live = stats.avg_live_workers;
    p.quiet_live =
        quiet_samples > 0 ? quiet_live_sum / static_cast<double>(quiet_samples)
                          : 0.0;
    std::printf("  %-8s %12.3f %12.1f %9lld %9lld %9.2f %11.2f\n", p.mode,
                p.burst_s, p.burst_wps, p.up, p.down, p.avg_live,
                p.quiet_live);
    const long long total = 2 * n_quiet + n_burst;
    if (stats.wedges_compressed != total || stats.wedges_dropped != 0) {
      std::fprintf(stderr,
                   "ERROR: %s bursty run lost wedges (%lld of %lld, "
                   "%lld dropped)\n",
                   p.mode, static_cast<long long>(stats.wedges_compressed),
                   total, static_cast<long long>(stats.wedges_dropped));
      std::exit(1);
    }
    return p;
  };
  std::printf("\nelastic vs static (quiet/burst/quiet, pool %zu, sharded "
              "intake):\n",
              elastic_pool);
  std::printf("  %-8s %12s %12s %9s %9s %9s %11s\n", "mode", "burst [s]",
              "burst wps", "scale-up", "scale-dn", "avg live", "quiet live");
  const ElasticPoint el_static = run_elastic(false);
  const ElasticPoint el_elastic = run_elastic(true);
  if (el_static.burst_wps > 0) {
    std::printf("  elastic burst throughput: %.0f%% of static, quiet-phase "
                "live workers %.2f vs %.2f\n",
                100.0 * el_elastic.burst_wps / el_static.burst_wps,
                el_elastic.quiet_live, el_static.quiet_live);
  }

  if (hw < 4) {
    std::printf("\nnote: only %u hardware thread(s) visible — worker scaling "
                "needs >= 4 cores to show the expected >1.5x at 4 workers "
                "(and single-vs-sharded contention differences).\n",
                hw);
  }

  // Machine-readable trailer (single line, greppable with '^{').
  std::printf("\n{\"bench\":\"stream\",\"wedges\":%lld,\"batch\":%lld,"
              "\"hardware_threads\":%u,"
              "\"compress\":{\"single\":%s,\"sharded\":%s},"
              "\"decompress\":{\"single\":%s,\"sharded\":%s},"
              "\"burst\":{\"single\":%s,\"sharded\":%s},"
              "\"elastic\":{\"static\":%s,\"elastic\":%s}}\n",
              static_cast<long long>(n_wedges), static_cast<long long>(batch),
              hw, json_points(compress_blocks[0]).c_str(),
              json_points(compress_blocks[1]).c_str(),
              json_points(decompress_blocks[0]).c_str(),
              json_points(decompress_blocks[1]).c_str(),
              json_burst(burst_single).c_str(),
              json_burst(burst_sharded).c_str(),
              json_elastic(el_static).c_str(),
              json_elastic(el_elastic).c_str());
  return 0;
}
