/// Extension experiment (motivated by §1 and the §4 future-work list):
/// BCAE against the learning-free lossy compressors on identical wedges —
/// compression ratio, reconstruction metrics and single-thread throughput.
///
/// Expected shape: the generic compressors need much lower ratios to reach
/// comparable error on sparse zero-suppressed wedges, which is the paper's
/// motivating observation for a learned, sparsity-aware codec.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/mgard_lite.hpp"
#include "baselines/sz_lite.hpp"
#include "baselines/zfp_lite.hpp"
#include "bench/common.hpp"
#include "codec/bcae_codec.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace nc;
  const auto& ds = bench::bench_dataset();

  // Evaluation pool: 16 unpadded test wedges.
  std::vector<core::Tensor> wedges;
  for (std::size_t i = 0; i < 16 && i < ds.test().size(); ++i) {
    wedges.push_back(tpc::clip_horizontal(ds.test()[i], ds.valid_horiz()));
  }
  const std::int64_t voxels = wedges.front().numel();

  std::printf("\nBaseline comparison — learning-free codecs vs BCAE on %zu "
              "wedges of %s\n",
              wedges.size(), ds.wedge_shape().to_string().c_str());
  bench::print_rule(100);
  std::printf("%-28s %10s %10s %10s %10s %14s\n", "codec", "ratio", "MAE",
              "precision", "recall", "wedges/s");
  bench::print_rule(100);

  auto run_codec = [&](baselines::LossyCodec& codec) {
    metrics::MetricsAccumulator acc;
    std::size_t total_bytes = 0;
    util::Timer timer;
    for (const auto& w : wedges) {
      const auto bytes = codec.compress(w);
      total_bytes += bytes.size();
      const auto back = codec.decompress(bytes);
      acc.add(metrics::evaluate_reconstruction(back, w), w.numel());
    }
    const double elapsed = timer.elapsed_s();
    const auto m = acc.result();
    const double ratio = baselines::baseline_compression_ratio(
        voxels * static_cast<std::int64_t>(wedges.size()), total_bytes);
    std::printf("%-28s %10.2f %10.4f %10.3f %10.3f %14.1f\n",
                codec.name().c_str(), ratio, m.mae, m.precision, m.recall,
                static_cast<double>(wedges.size()) / elapsed);
    return ratio;
  };

  baselines::SzLite sz_tight(0.1f), sz_loose(0.5f);
  baselines::ZfpLite zfp_low(2), zfp_high(8);
  baselines::MgardLite mgard(0.25f, 3);
  run_codec(sz_tight);
  run_codec(sz_loose);
  run_codec(zfp_low);
  run_codec(zfp_high);
  const double best_generic = std::max(
      {run_codec(mgard)});

  // BCAE row: briefly trained BCAE-2D through the production codec path.
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 2023);
  auto tc = bench::bench_trainer_config(false);
  bench::train_model(model, ds, tc);
  codec::BcaeCodec codec(model, core::Mode::kEvalHalf);
  metrics::MetricsAccumulator acc;
  util::Timer timer;
  double ratio = 0.0;
  for (const auto& w : wedges) {
    const auto cw = codec.compress(w);
    ratio = cw.compression_ratio();
    const auto back = codec.decompress(cw);
    acc.add(metrics::evaluate_reconstruction(back, w), w.numel());
  }
  const auto m = acc.result();
  std::printf("%-28s %10.2f %10.4f %10.3f %10.3f %14.1f\n",
              "BCAE-2D (fp16 code)", ratio, m.mae, m.precision, m.recall,
              static_cast<double>(wedges.size()) / timer.elapsed_s());
  bench::print_rule(100);
  std::printf("BCAE holds a fixed %.3f ratio; generic codecs at comparable "
              "error stay well below it on sparse wedges.\n", ratio);
  (void)best_generic;
  return 0;
}
