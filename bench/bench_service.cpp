/// \file bench_service.cpp
/// \brief Compression-service bench: session-scaling sweep plus the
///        overload acceptance demo for the degradation-ladder admission.
///
/// Part 1 — session scaling: a fixed shared pool compresses the same wedge
/// volume split across 1, 2, 4 and 8 sessions.  The multiplexing layer
/// (per-session staging, DRR scheduler, reorder cursors) should cost little:
/// wps per row ~flat.
///
/// Part 2 — overload demo (the PR's acceptance criteria, measured):
///  * rung-0 capacity is calibrated first (bcae-int8 through the service);
///  * one firehose session then offers a sustained 4x that rate, next to
///    polite sessions at a fraction of capacity, all on the default
///    bcae-int8 -> zfp ladder;
///  * the demo FAILS (exit 1) unless: the polite sessions shed nothing and
///    emit the identity sequence; the firehose degraded (hops counted)
///    before any shed (shed>0 only with the ladder exhausted); and the
///    polite stream is bit-exact against a per-session single-pipeline run
///    (a plain ordered StreamCompressor over the same wedges).
///
/// The final stdout line is a single machine-readable JSON document; CI
/// scrapes it with `grep '^{'` into the BENCH_service.json artifact.
///
/// Run:  ./bench_service [--wedges 96] [--batch 4] [--workers 2]
///                       [--seconds 2] [--overload 4]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bcae/model.hpp"
#include "codec/service.hpp"
#include "codec/stream.hpp"
#include "codec/wedge_codec.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using nc::codec::CompressionService;
using nc::codec::ServiceOptions;
using nc::codec::SessionOptions;
using nc::codec::SubmitResult;
using nc::codec::WedgeEnvelope;

struct SweepPoint {
  std::size_t sessions = 0;
  double wall_s = 0.0;
  double wps = 0.0;
};

/// Ordered per-session capture: seq -> envelope.
struct Capture {
  std::mutex mutex;
  std::map<std::uint64_t, WedgeEnvelope> out;
};

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "ACCEPTANCE FAILURE: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("bench_service",
                       "compression service: session scaling + overload demo");
  args.add_option("wedges", "96", "wedges per session-scaling run");
  args.add_option("batch", "4", "shared pool batch size");
  args.add_option("workers", "2", "shared pool worker threads");
  args.add_option("seconds", "2", "overload demo duration");
  args.add_option("overload", "4", "firehose rate as a multiple of capacity");
  if (!args.parse(argc, argv)) return 1;
  const std::int64_t n_wedges = std::max<std::int64_t>(8, args.get_int("wedges"));
  const std::size_t n_workers =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("workers")));
  const std::size_t batch =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("batch")));
  const double demo_s = std::max(0.5, args.get_double("seconds"));
  const double overload = std::max(1.5, args.get_double("overload"));

  // Tiny deterministic wedges (the bench measures the service layer, not
  // the codec), one shared model for every BCAE rung in the process.
  tpc::DatasetConfig cfg;
  cfg.n_events = 2;
  cfg.geometry.scale = 0.125;
  const auto dataset = tpc::WedgeDataset::generate(cfg);
  std::vector<core::Tensor> wedges;
  for (const auto& w : dataset.train()) {
    wedges.push_back(tpc::clip_horizontal(w, dataset.valid_horiz()));
  }
  auto model = bcae::make_bcae_ht(81);
  const auto int8 = codec::make_wedge_codec("bcae-int8", model);
  const auto zfp = codec::make_wedge_codec("zfp", model);
  const std::vector<const codec::WedgeCodec*> ladder = {int8.get(), zfp.get()};

  ServiceOptions base;
  base.pipeline.n_workers = n_workers;
  base.pipeline.batch_size = batch;
  base.pipeline.queue_capacity = 32;
  // Measurement runs (sweep + calibration) use pure blocking backpressure —
  // admission off so a transiently full staging queue on a one-rung ladder
  // can't latch shed and distort the numbers.  The demo re-enables it.
  ServiceOptions measured = base;
  measured.admission_interval_s = 0.0;

  // --- Part 1: session-scaling sweep (same volume, more sessions) ---------
  std::printf("session scaling: %lld wedges, %zu worker(s), batch %zu, "
              "codec %s\n",
              static_cast<long long>(n_wedges), n_workers, batch,
              zfp->name().c_str());
  std::printf("  %-10s %12s %12s\n", "sessions", "wall [s]", "wedges/s");
  std::vector<SweepPoint> sweep;
  for (const std::size_t n_sessions : {1u, 2u, 4u, 8u}) {
    CompressionService service(measured);
    std::vector<codec::SessionId> ids;
    for (std::size_t s = 0; s < n_sessions; ++s) {
      SessionOptions sopt;
      sopt.ladder = {zfp.get()};  // fast rung only: measures the service
      ids.push_back(service.open_session(std::move(sopt)));
    }
    util::Timer t;
    for (std::int64_t i = 0; i < n_wedges; ++i) {
      service.submit(ids[static_cast<std::size_t>(i) % n_sessions],
                     wedges[static_cast<std::size_t>(i) % wedges.size()]);
    }
    for (const auto id : ids) service.close_session(id);
    const double wall = t.elapsed_s();
    service.finish();
    sweep.push_back({n_sessions, wall,
                     wall > 0 ? static_cast<double>(n_wedges) / wall : 0.0});
    std::printf("  %-10zu %12.3f %12.1f\n", n_sessions, wall,
                sweep.back().wps);
  }

  // --- Part 2a: calibrate rung-0 capacity through the service --------------
  double capacity_wps = 0.0;
  {
    CompressionService service(measured);
    SessionOptions sopt;
    sopt.ladder = {int8.get()};
    const auto id = service.open_session(std::move(sopt));
    const std::int64_t n_cal = 16;
    util::Timer t;
    for (std::int64_t i = 0; i < n_cal; ++i) {
      service.submit(id, wedges[static_cast<std::size_t>(i) % wedges.size()]);
    }
    service.close_session(id);
    const double wall = t.elapsed_s();
    service.finish();
    capacity_wps = wall > 0 ? static_cast<double>(n_cal) / wall : 100.0;
  }
  std::printf("\noverload demo: rung-0 (%s) capacity %.1f wedges/s; firehose "
              "offers %.1fx that for %.1fs, ladder %s -> %s\n",
              int8->name().c_str(), capacity_wps, overload, demo_s,
              int8->name().c_str(), zfp->name().c_str());

  // --- Part 2b: the demo ----------------------------------------------------
  CompressionService service(base);

  // Two polite sessions at 1/8 capacity each; one captures for the
  // bit-exactness check.
  const int kPolite = 2;
  const std::int64_t polite_wedges = 24;
  const double polite_interval_s =
      std::min(0.05, 8.0 / std::max(1.0, capacity_wps));
  Capture polite_capture;
  std::vector<codec::SessionId> polite_ids;
  for (int p = 0; p < kPolite; ++p) {
    SessionOptions sopt;
    sopt.ladder = ladder;
    sopt.queue_capacity = 32;
    if (p == 0) {
      sopt.sink = [&](std::uint64_t seq, WedgeEnvelope&& env) {
        std::lock_guard<std::mutex> lock(polite_capture.mutex);
        polite_capture.out.emplace(seq, std::move(env));
      };
    }
    polite_ids.push_back(service.open_session(std::move(sopt)));
  }
  SessionOptions fire_opt;
  fire_opt.ladder = ladder;
  fire_opt.queue_capacity = 32;
  std::mutex fire_mutex;
  std::vector<std::uint64_t> fire_seqs;
  fire_opt.sink = [&](std::uint64_t seq, WedgeEnvelope&&) {
    std::lock_guard<std::mutex> lock(fire_mutex);
    fire_seqs.push_back(seq);
  };
  const auto fire_id = service.open_session(std::move(fire_opt));

  std::atomic<std::int64_t> fire_offered{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kPolite; ++p) {
    threads.emplace_back([&, p] {
      for (std::int64_t i = 0; i < polite_wedges; ++i) {
        service.submit(polite_ids[static_cast<std::size_t>(p)],
                       wedges[static_cast<std::size_t>(i) % wedges.size()]);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(polite_interval_s));
      }
    });
  }
  threads.emplace_back([&] {
    const auto interval = std::chrono::duration<double>(
        1.0 / std::max(1.0, overload * capacity_wps));
    const auto t_end = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(demo_s);
    std::size_t next = 0;
    while (std::chrono::steady_clock::now() < t_end) {
      (void)service.try_submit(fire_id, wedges[next]);
      fire_offered.fetch_add(1, std::memory_order_relaxed);
      next = (next + 1) % wedges.size();
      std::this_thread::sleep_for(interval);
    }
  });
  for (auto& t : threads) t.join();

  std::vector<codec::SessionStats> polite_stats;
  for (const auto id : polite_ids) {
    polite_stats.push_back(service.close_session(id));
  }
  const auto fire_stats = service.close_session(fire_id);
  const auto totals = service.finish();

  // --- Part 2c: acceptance checks ------------------------------------------
  bool ok = true;
  for (const auto& ps : polite_stats) {
    ok &= check(ps.shed == 0, "a polite session shed wedges");
    ok &= check(ps.compressed == polite_wedges,
                "a polite session lost wedges");
  }
  ok &= check(fire_stats.degradations >= 1,
              "sustained overload never tripped the ladder");
  if (fire_stats.shed > 0) {
    ok &= check(fire_stats.rung == ladder.size() - 1,
                "firehose shed while a cheaper rung was still available");
  }
  {
    std::lock_guard<std::mutex> lock(fire_mutex);
    ok &= check(std::is_sorted(fire_seqs.begin(), fire_seqs.end()) &&
                    std::adjacent_find(fire_seqs.begin(), fire_seqs.end()) ==
                        fire_seqs.end(),
                "firehose emission out of order or duplicated");
  }

  // Bit-exactness: the captured polite session against a per-session
  // single-pipeline run (ordered StreamCompressor, same codec, same wedges).
  std::map<std::uint64_t, WedgeEnvelope> reference;
  {
    codec::StreamOptions sopt;
    sopt.n_workers = n_workers;
    sopt.batch_size = batch;
    sopt.queue_capacity = 32;
    sopt.ordered = true;
    std::mutex ref_mutex;
    codec::StreamCompressor control(
        *int8, sopt, [&](std::uint64_t seq, WedgeEnvelope&& env) {
          std::lock_guard<std::mutex> lock(ref_mutex);
          reference.emplace(seq, std::move(env));
        });
    for (std::int64_t i = 0; i < polite_wedges; ++i) {
      control.submit(wedges[static_cast<std::size_t>(i) % wedges.size()]);
    }
    control.finish();
  }
  {
    std::lock_guard<std::mutex> lock(polite_capture.mutex);
    ok &= check(polite_capture.out.size() == reference.size(),
                "captured polite session size != single-pipeline reference");
    std::uint64_t expect_seq = 0;
    for (const auto& [seq, env] : polite_capture.out) {
      ok &= check(seq == expect_seq++, "polite emission has gaps");
      const auto ref = reference.find(seq);
      if (ref == reference.end()) continue;
      ok &= check(env.codec_id == ref->second.codec_id &&
                      env.payload == ref->second.payload,
                  "polite bitstream diverged from single-pipeline run");
    }
  }

  std::printf("  firehose: %lld offered, %lld submitted, %lld compressed, "
              "%lld shed, %lld degradation(s)\n",
              static_cast<long long>(fire_offered.load()),
              static_cast<long long>(fire_stats.submitted),
              static_cast<long long>(fire_stats.compressed),
              static_cast<long long>(fire_stats.shed),
              static_cast<long long>(fire_stats.degradations));
  std::printf("  polite:   %d session(s), shed %lld, bit-exact %s\n", kPolite,
              static_cast<long long>(polite_stats[0].shed +
                                     polite_stats[1].shed),
              ok ? "yes" : "NO");
  std::printf("  verdict:  %s\n", ok ? "PASS" : "FAIL");

  // Machine-readable trailer (single line, greppable with '^{').
  std::string sweep_json = "[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"sessions\":%zu,\"wall_s\":%.4f,\"wps\":%.2f}",
                  i ? "," : "", sweep[i].sessions, sweep[i].wall_s,
                  sweep[i].wps);
    sweep_json += buf;
  }
  sweep_json += "]";
  std::printf("\n{\"bench\":\"service\",\"wedges\":%lld,\"workers\":%zu,"
              "\"batch\":%zu,\"sweep\":%s,"
              "\"overload\":{\"capacity_wps\":%.2f,\"overload_factor\":%.1f,"
              "\"fire_submitted\":%lld,\"fire_compressed\":%lld,"
              "\"fire_shed\":%lld,\"fire_degradations\":%lld,"
              "\"polite_shed\":%lld,\"scheduled\":%lld,"
              "\"accepted\":%s}}\n",
              static_cast<long long>(n_wedges), n_workers, batch,
              sweep_json.c_str(), capacity_wps, overload,
              static_cast<long long>(fire_stats.submitted),
              static_cast<long long>(fire_stats.compressed),
              static_cast<long long>(fire_stats.shed),
              static_cast<long long>(fire_stats.degradations),
              static_cast<long long>(polite_stats[0].shed +
                                     polite_stats[1].shed),
              static_cast<long long>(totals.wedges_scheduled),
              ok ? "true" : "false");
  return ok ? 0 : 1;
}
