/// Regenerates Table 1: reconstruction accuracy (MAE, PSNR, precision,
/// recall), encoder size and encoder throughput for BCAE-2D, BCAE++,
/// BCAE-HT and the original BCAE — all evaluated in half precision, as the
/// paper reports.  Also prints §3.1's compression-ratio arithmetic.
///
/// Expected shape vs the paper (see EXPERIMENTS.md):
///   * BCAE++ best MAE/PSNR/precision/recall,
///   * BCAE-2D highest throughput, BCAE-HT in between,
///   * BCAE-HT's encoder ~5% the size of BCAE++'s,
///   * original BCAE worst accuracy,
///   * CR = 31.125 for the new variants at paper scale.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "metrics/metrics.hpp"
#include "tpc/geometry.hpp"

namespace {

struct Row {
  std::string model;
  nc::metrics::ReconstructionMetrics m;
  std::int64_t encoder_params_full_scale = 0;
  double throughput_half = 0.0;
  double paper_mae, paper_psnr, paper_precision, paper_recall;
  double paper_size_k, paper_throughput;
};

}  // namespace

int main() {
  using namespace nc;
  const auto& ds = bench::bench_dataset();

  struct Spec {
    std::string name;
    double paper[6];  // mae, psnr, prec, recall, size_k, throughput
  };

  std::vector<Row> rows;
  auto run = [&](bcae::BcaeModel&& model, std::int64_t full_scale_params,
                 const double (&paper)[6]) {
    auto tc = bench::bench_trainer_config(model.is_3d());
    const double train_s = bench::train_model(model, ds, tc);
    std::fprintf(stderr, "[bench] %s trained in %.1fs\n", model.name().c_str(),
                 train_s);
    Row r;
    r.model = model.name();
    r.m = bcae::evaluate_model(model, ds, ds.test(), core::Mode::kEvalHalf, 8);
    r.encoder_params_full_scale = full_scale_params;
    r.throughput_half = bench::bench_throughput(model, ds, core::Mode::kEvalHalf);
    r.paper_mae = paper[0];
    r.paper_psnr = paper[1];
    r.paper_precision = paper[2];
    r.paper_recall = paper[3];
    r.paper_size_k = paper[4];
    r.paper_throughput = paper[5];
    rows.push_back(std::move(r));
  };

  // Full-scale encoder parameter counts come from paper-scale constructions
  // (cheap: construction only, no training).
  const std::int64_t params_2d =
      bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 1).encoder_param_count();
  const std::int64_t params_pp = bcae::make_bcae_pp(1).encoder_param_count();
  const std::int64_t params_ht = bcae::make_bcae_ht(1).encoder_param_count();
  const std::int64_t params_orig =
      bcae::make_bcae_original(1).encoder_param_count();

  run(bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 2023), params_2d,
      {0.152, 11.726, 0.906, 0.907, 169.0, 6900});
  run(bcae::make_bcae_pp(2023), params_pp,
      {0.112, 14.325, 0.934, 0.936, 226.2, 2600});
  run(bcae::make_bcae_ht(2023), params_ht,
      {0.138, 12.376, 0.916, 0.915, 9.8, 4600});
  run(bcae::make_bcae_original(2023), params_orig,
      {0.198, 9.923, 0.878, 0.861, 201.7, 2400});

  std::printf("\nTable 1 — performance, encoder model size, throughput "
              "(half precision; measured at bench scale, paper values at "
              "full scale on an RTX A6000)\n");
  nc::bench::print_rule(118);
  std::printf("%-16s %18s %18s %20s %18s %16s %18s\n", "model",
              "MAE (paper)", "PSNR (paper)", "precision (paper)",
              "recall (paper)", "enc size (paper)", "thrpt w/s (paper)");
  nc::bench::print_rule(118);
  for (const auto& r : rows) {
    std::printf(
        "%-16s %8.4f (%6.3f) %8.3f (%6.3f) %10.3f (%6.3f) %8.3f (%6.3f) "
        "%7.1fk (%5.1fk) %8.0f (%5.0f)\n",
        r.model.c_str(), r.m.mae, r.paper_mae, r.m.psnr, r.paper_psnr,
        r.m.precision, r.paper_precision, r.m.recall, r.paper_recall,
        r.encoder_params_full_scale / 1000.0, r.paper_size_k,
        r.throughput_half, r.paper_throughput);
  }
  nc::bench::print_rule(118);

  // §3.1 compression ratios, at paper scale (pure arithmetic).
  const auto paper_wedge = nc::tpc::TpcGeometry::paper_scale().wedge_shape();
  std::printf("\n§3.1 compression ratio (paper scale):\n");
  std::printf("  new variants (code 24 576 elems): %.3f   [paper: 31.125]\n",
              nc::tpc::compression_ratio(paper_wedge, 24576));
  std::printf("  original BCAE (code 28 288 elems): %.3f  [paper: 27.041]\n",
              nc::tpc::compression_ratio(paper_wedge, 8 * 17 * 13 * 16));

  // Shape checks the reader should verify (also recorded in EXPERIMENTS.md):
  std::printf("\nshape checks: BCAE++ best MAE: %s | BCAE-2D fastest: %s | "
              "HT/++ size ratio: %.3f (paper 0.043)\n",
              (rows[1].m.mae <= rows[0].m.mae && rows[1].m.mae <= rows[2].m.mae &&
               rows[1].m.mae <= rows[3].m.mae)
                  ? "yes"
                  : "NO",
              (rows[0].throughput_half >= rows[1].throughput_half &&
               rows[0].throughput_half >= rows[2].throughput_half)
                  ? "yes"
                  : "NO",
              static_cast<double>(rows[2].encoder_params_full_scale) /
                  static_cast<double>(rows[1].encoder_params_full_scale));
  return 0;
}
