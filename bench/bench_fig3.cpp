/// Regenerates Figure 3: the distribution of log-ADC values.
///
/// Expected shape: a huge population at exactly 0 (zero-suppressed voxels),
/// an empty gap over (0, 6) — nothing survives below ADC 64 — and a
/// decaying tail from 6 to 10.  Rendered as an ASCII log-scale histogram
/// plus the raw counts (CSV on stdout for plotting).
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace nc;
  const auto& ds = bench::bench_dataset();

  const std::int64_t bins = 40;  // 0.25-wide bins over [0, 10]
  const auto hist = ds.log_adc_histogram(bins);

  std::printf("\nFigure 3 — log-ADC distribution (log-scale counts)\n");
  bench::print_rule(88);
  std::int64_t max_count = 1;
  for (auto c : hist) max_count = std::max(max_count, c);
  const double log_max = std::log10(static_cast<double>(max_count));
  for (std::int64_t b = 0; b < bins; ++b) {
    const double lo = 10.0 * static_cast<double>(b) / static_cast<double>(bins);
    const std::int64_t c = hist[static_cast<std::size_t>(b)];
    const int bar =
        c > 0 ? static_cast<int>(60.0 * std::log10(static_cast<double>(c) + 1.0) /
                                 (log_max + 1e-9))
              : 0;
    std::printf("%5.2f-%5.2f %10lld |", lo, lo + 10.0 / bins,
                static_cast<long long>(c));
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }
  bench::print_rule(88);

  // The three structural properties of Fig. 3:
  std::int64_t zeros = hist[0], gap = 0, tail = 0;
  for (std::int64_t b = 1; b < bins; ++b) {
    const double lo = 10.0 * static_cast<double>(b) / static_cast<double>(bins);
    (lo < 6.0 ? gap : tail) += hist[static_cast<std::size_t>(b)];
  }
  const double total = static_cast<double>(zeros + gap + tail);
  std::printf("zero fraction: %.4f (paper occupancy ~10.8%% => ~0.892)\n",
              zeros / total);
  std::printf("gap (0, 6) count: %lld (paper: 0 — hard zero-suppression edge)\n",
              static_cast<long long>(gap));
  std::printf("tail (6, 10] fraction: %.4f; tail is monotonically decaying: %s\n",
              tail / total,
              hist[25] >= hist[32] && hist[32] >= hist[38] ? "yes" : "NO");
  return 0;
}
