/// Self-contained microbenchmarks for the compute kernels underlying every
/// table and figure: fp32/fp16 GEMM, the runtime-dispatched int8 GEMM at
/// every ISA tier the host supports, and the quantization passes feeding it.
///
/// These isolate the substrate so regressions in the headline throughput
/// numbers (Table 1, Fig. 6) can be attributed: if the int8 fast path's
/// advantage over scalar disappears here, the kEvalInt8 speedup story
/// collapses there.  Per-tier columns report speedup vs the scalar reference
/// so the dispatch win is a number, not a claim.
///
/// Output ends with a one-line JSON trailer (grep '^{') consumed by CI as
/// BENCH_kernels.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/gemm.hpp"
#include "core/quantize.hpp"
#include "core/simd_dispatch.hpp"
#include "core/tensor.hpp"
#include "util/half.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using nc::core::Tensor;
using nc::core::simd::Isa;

Tensor random_tensor(nc::core::Shape shape, std::uint64_t seed) {
  nc::util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Best-of-3 throughput: run `fn` in timed batches of >= `min_s` seconds and
/// return work/second of the fastest batch (work = flops or bytes per call).
template <typename Fn>
double best_rate(double work_per_call, Fn&& fn, double min_s = 0.12) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    std::int64_t iters = 0;
    nc::util::Timer t;
    do {
      fn();
      ++iters;
    } while (t.elapsed_s() < min_s);
    const double rate =
        work_per_call * static_cast<double>(iters) / t.elapsed_s();
    best = std::max(best, rate);
  }
  return best;
}

/// Conv-forward shaped GEMMs: M = out channels, N = output pixels, K =
/// lowered patch size, at BCAE-representative shapes.
struct GemmShape {
  std::int64_t m, n, k;
  const char* what;
};

constexpr GemmShape kShapes[] = {
    {32, 3072, 784, "BCAE-2D L_in (k=7)"},
    {32, 768, 288, "BCAE-2D resblock conv"},
    {8, 12288, 48, "BCAE++ stage-1 downsample"},
    {2, 12288, 48, "BCAE-HT stage-1 downsample"},
};

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (nc::core::simd::isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

}  // namespace

int main() {
  const Isa active = nc::core::simd::active_isa();
  const char* env = std::getenv("NC_SIMD");
  std::printf("bench_kernels: simd dispatch resolved to %s (NC_SIMD=%s)\n",
              nc::core::simd::isa_name(active), env ? env : "auto");
  const std::vector<Isa> isas = supported_isas();

  // ---- GEMM family ---------------------------------------------------------
  std::printf("\nGEMM throughput [GFLOP/s] (int8 columns = dispatched qgemm "
              "per tier, speedup vs its scalar reference):\n");
  std::printf("  %-28s %8s %8s", "shape (m,n,k)", "sgemm", "hgemm");
  for (Isa isa : isas) {
    std::printf(" %10s", nc::core::simd::isa_name(isa));
  }
  std::printf(" %8s\n", "best/sc");

  // JSON accumulators: per-kernel GFLOP/s averaged over the shape set.
  double sum_sgemm = 0.0, sum_hgemm = 0.0;
  std::vector<double> sum_q(isas.size(), 0.0);

  for (const GemmShape& s : kShapes) {
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.n) * static_cast<double>(s.k);
    const Tensor a = random_tensor({s.m, s.k}, 1);
    const Tensor b = random_tensor({s.k, s.n}, 2);
    Tensor c({s.m, s.n});

    const double sgemm_g =
        best_rate(flops, [&] {
          nc::core::sgemm(false, false, s.m, s.n, s.k, 1.f, a.data(), s.k,
                          b.data(), s.n, 0.f, c.data(), s.n);
        }) / 1e9;

    std::vector<nc::util::half> ah(static_cast<std::size_t>(s.m * s.k));
    std::vector<nc::util::half> bh(static_cast<std::size_t>(s.k * s.n));
    nc::util::float_to_half_n(a.data(), ah.data(), s.m * s.k);
    nc::util::float_to_half_n(b.data(), bh.data(), s.k * s.n);
    const double hgemm_g =
        best_rate(flops, [&] {
          nc::core::hgemm(s.m, s.n, s.k, ah.data(), s.k, bh.data(), s.n,
                          c.data(), s.n);
        }) / 1e9;

    const auto qa = nc::core::quantize_rows(a.data(), s.m, s.k);
    std::vector<std::int8_t> qb(static_cast<std::size_t>(s.k * s.n));
    const float b_scale =
        nc::core::quantize_tensor(b.data(), s.k * s.n, qb.data());

    std::printf("  %3lld x %5lld x %4lld %-9s %8.2f %8.2f",
                static_cast<long long>(s.m), static_cast<long long>(s.n),
                static_cast<long long>(s.k), "", sgemm_g, hgemm_g);
    double scalar_g = 0.0, best_g = 0.0;
    for (std::size_t t = 0; t < isas.size(); ++t) {
      const auto& ker = nc::core::simd::kernels_for(isas[t]);
      const double g = best_rate(flops, [&] {
        ker.qgemm(s.m, s.n, s.k, qa.values.data(), qa.scales.data(), qb.data(),
                  b_scale, c.data(), s.n);
      }) / 1e9;
      if (isas[t] == Isa::kScalar) scalar_g = g;
      best_g = std::max(best_g, g);
      sum_q[t] += g;
      std::printf(" %10.2f", g);
    }
    std::printf(" %7.2fx  # %s\n", scalar_g > 0.0 ? best_g / scalar_g : 0.0,
                s.what);
    sum_sgemm += sgemm_g;
    sum_hgemm += hgemm_g;
  }

  // ---- quantization passes -------------------------------------------------
  const std::int64_t qn = 1 << 20;
  const Tensor x = random_tensor({qn}, 3);
  std::vector<std::int8_t> q8(static_cast<std::size_t>(qn));
  std::printf("\nquantize passes on %lld floats [Gelem/s]:\n",
              static_cast<long long>(qn));
  std::printf("  %-16s", "pass");
  for (Isa isa : isas) std::printf(" %10s", nc::core::simd::isa_name(isa));
  std::printf("\n");
  std::vector<double> maxabs_r(isas.size()), quant_r(isas.size());
  for (std::size_t t = 0; t < isas.size(); ++t) {
    const auto& ker = nc::core::simd::kernels_for(isas[t]);
    volatile float sink = 0.f;
    maxabs_r[t] = best_rate(static_cast<double>(qn), [&] {
      sink = ker.max_abs(x.data(), qn);
    }) / 1e9;
    (void)sink;
    quant_r[t] = best_rate(static_cast<double>(qn), [&] {
      ker.quantize_scaled(x.data(), qn, 127.f, q8.data());
    }) / 1e9;
  }
  std::printf("  %-16s", "max_abs");
  for (double r : maxabs_r) std::printf(" %10.2f", r);
  std::printf("\n  %-16s", "quantize_scaled");
  for (double r : quant_r) std::printf(" %10.2f", r);
  std::printf("\n");

  // ---- JSON trailer --------------------------------------------------------
  const double n_shapes = static_cast<double>(std::size(kShapes));
  std::string qjson, spdjson;
  double scalar_avg = 0.0;
  for (std::size_t t = 0; t < isas.size(); ++t) {
    if (isas[t] == Isa::kScalar) scalar_avg = sum_q[t] / n_shapes;
  }
  char buf[128];
  for (std::size_t t = 0; t < isas.size(); ++t) {
    const double avg = sum_q[t] / n_shapes;
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.3f", t ? "," : "",
                  nc::core::simd::isa_name(isas[t]), avg);
    qjson += buf;
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.3f", t ? "," : "",
                  nc::core::simd::isa_name(isas[t]),
                  scalar_avg > 0.0 ? avg / scalar_avg : 0.0);
    spdjson += buf;
  }
  std::printf(
      "\n{\"bench\":\"kernels\",\"isa\":\"%s\",\"sgemm_gflops\":%.3f,"
      "\"hgemm_gflops\":%.3f,\"qgemm_gflops\":{%s},"
      "\"qgemm_speedup_vs_scalar\":{%s},\"maxabs_gelems\":%.3f,"
      "\"quantize_gelems\":%.3f}\n",
      nc::core::simd::isa_name(active), sum_sgemm / n_shapes,
      sum_hgemm / n_shapes, qjson.c_str(), spdjson.c_str(), maxabs_r.back(),
      quant_r.back());
  return 0;
}
