/// Google-benchmark microbenchmarks for the compute kernels underlying every
/// table and figure: GEMM (fp32 + fp16-storage), im2col/vol2col lowering,
/// and the four convolution layers at BCAE-representative shapes.
///
/// These isolate the substrate so regressions in the headline throughput
/// numbers (Table 1, Fig. 6) can be attributed: if hgemm's advantage over
/// sgemm disappears here, the half-precision speedup story collapses there.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/conv.hpp"
#include "core/gemm.hpp"
#include "core/im2col.hpp"
#include "core/tensor.hpp"
#include "util/half.hpp"
#include "util/rng.hpp"

namespace {

using nc::core::Tensor;

Tensor random_tensor(nc::core::Shape shape, std::uint64_t seed) {
  nc::util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Conv-forward shaped GEMM: M = out channels, N = output pixels, K = lowered
/// patch size (BCAE-2D residual-block conv at bench scale).
void BM_SgemmConvShape(benchmark::State& state) {
  const std::int64_t m = state.range(0), n = state.range(1), k = state.range(2);
  const Tensor a = random_tensor({m, k}, 1);
  const Tensor b = random_tensor({k, n}, 2);
  Tensor c({m, n});
  for (auto _ : state) {
    nc::core::sgemm(false, false, m, n, k, 1.f, a.data(), k, b.data(), n, 0.f,
                    c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_SgemmConvShape)
    ->Args({32, 3072, 784})   // BCAE-2D L_in (k=7)
    ->Args({32, 768, 288})    // BCAE-2D resblock conv
    ->Args({8, 12288, 48})    // BCAE++ stage-1 downsample
    ->Args({2, 12288, 48});   // BCAE-HT stage-1 downsample (tiny M)

void BM_HgemmConvShape(benchmark::State& state) {
  const std::int64_t m = state.range(0), n = state.range(1), k = state.range(2);
  const Tensor a = random_tensor({m, k}, 1);
  const Tensor b = random_tensor({k, n}, 2);
  std::vector<nc::util::half> ah(static_cast<std::size_t>(m * k));
  std::vector<nc::util::half> bh(static_cast<std::size_t>(k * n));
  nc::util::float_to_half_n(a.data(), ah.data(), m * k);
  nc::util::float_to_half_n(b.data(), bh.data(), k * n);
  Tensor c({m, n});
  for (auto _ : state) {
    nc::core::hgemm(m, n, k, ah.data(), k, bh.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_HgemmConvShape)
    ->Args({32, 3072, 784})
    ->Args({32, 768, 288})
    ->Args({8, 12288, 48})
    ->Args({2, 12288, 48});

void BM_Im2col2d(benchmark::State& state) {
  nc::core::Conv2dGeom g;
  g.c = 32;
  g.h = 48;
  g.w = 64;
  g.kh = g.kw = 3;
  g.ph = g.pw = 1;
  const Tensor x = random_tensor({g.c * g.h * g.w}, 3);
  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  for (auto _ : state) {
    nc::core::im2col_2d(x.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(
                                                   cols.size() * sizeof(float)));
}
BENCHMARK(BM_Im2col2d);

void BM_Vol2col3dHalf(benchmark::State& state) {
  nc::core::Conv3dGeom g;
  g.c = 8;
  g.d = 16;
  g.h = 24;
  g.w = 32;
  g.kd = 3;
  g.kh = g.kw = 4;
  g.sd = 1;
  g.sh = g.sw = 2;
  g.pd = g.ph = g.pw = 1;
  const Tensor x = random_tensor({g.c * g.d * g.h * g.w}, 4);
  std::vector<nc::util::half> xh(static_cast<std::size_t>(x.numel()));
  nc::util::float_to_half_n(x.data(), xh.data(), x.numel());
  std::vector<nc::util::half> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  for (auto _ : state) {
    nc::core::vol2col_3d(xh.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(
                                                   cols.size() * sizeof(nc::util::half)));
}
BENCHMARK(BM_Vol2col3dHalf);

void BM_Conv2dForward(benchmark::State& state) {
  const bool half = state.range(0) != 0;
  nc::util::Rng rng(5);
  nc::core::Conv2d conv(16, 32, {7, 7}, {1, 1}, {3, 3}, true, rng);
  const Tensor x = random_tensor({4, 16, 48, 64}, 6);
  const auto mode = half ? nc::core::Mode::kEvalHalf : nc::core::Mode::kEval;
  for (auto _ : state) {
    auto y = conv.forward(x, mode);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 4);  // wedges
}
BENCHMARK(BM_Conv2dForward)->Arg(0)->Arg(1);

void BM_ConvTranspose3dForward(benchmark::State& state) {
  const bool half = state.range(0) != 0;
  nc::util::Rng rng(7);
  nc::core::ConvTranspose3d deconv(32, 32, {3, 4, 4}, {1, 2, 2}, {1, 1, 1},
                                   true, rng);
  const Tensor x = random_tensor({2, 32, 16, 6, 8}, 8);
  const auto mode = half ? nc::core::Mode::kEvalHalf : nc::core::Mode::kEval;
  for (auto _ : state) {
    auto y = deconv.forward(x, mode);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ConvTranspose3dForward)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
