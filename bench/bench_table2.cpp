/// Regenerates Table 2: reconstruction accuracy in full- vs half-precision
/// computation mode for BCAE-2D, BCAE++ and BCAE-HT.
///
/// The paper's claim — and the property that must reproduce exactly here,
/// because our fp16 path uses the same numerics contract as tensor cores
/// (binary16 operands, float32 accumulation) — is that half precision is
/// accuracy-neutral: MAE/precision/recall agree to ~4 decimal places.
#include <cstdio>

#include "bench/common.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace nc;
  const auto& ds = bench::bench_dataset();

  std::printf("\nTable 2 — reconstruction accuracy in full- and half-precision "
              "computation mode\n");
  bench::print_rule(88);
  std::printf("%-22s %-6s %12s %12s %12s %14s\n", "model", "mode", "MAE",
              "precision", "recall", "|Δ| vs full");
  bench::print_rule(88);

  auto run = [&](bcae::BcaeModel&& model) {
    auto tc = bench::bench_trainer_config(model.is_3d());
    tc.epochs = std::max<std::int64_t>(2, tc.epochs / 2);  // parity needs no
    bench::train_model(model, ds, tc);                     // long training
    const auto full =
        bcae::evaluate_model(model, ds, ds.test(), core::Mode::kEval, 8);
    const auto half =
        bcae::evaluate_model(model, ds, ds.test(), core::Mode::kEvalHalf, 8);
    std::printf("%-22s %-6s %12.6f %12.6f %12.6f %14s\n", model.name().c_str(),
                "full", full.mae, full.precision, full.recall, "");
    std::printf("%-22s %-6s %12.6f %12.6f %12.6f %14.2e\n", "", "half",
                half.mae, half.precision, half.recall,
                std::abs(half.mae - full.mae));
    const bool parity = std::abs(half.mae - full.mae) < 0.01 * (full.mae + 0.01) &&
                        std::abs(half.precision - full.precision) < 0.01 &&
                        std::abs(half.recall - full.recall) < 0.01;
    std::printf("%-22s parity within 1%%: %s\n", "", parity ? "yes" : "NO");
  };

  run(bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 2023));
  run(bcae::make_bcae_pp(2023));
  run(bcae::make_bcae_ht(2023));
  bench::print_rule(88);
  std::printf("paper (full scale): BCAE-2D 0.151937/0.905469/0.906916 full vs "
              "0.151965/0.905326/0.907050 half;\n"
              "BCAE++ 0.112347 vs 0.112342; BCAE-HT 0.138443 vs 0.138441 — "
              "differences at the 4th-5th decimal, i.e. accuracy-neutral.\n");
  return 0;
}
