/// Regenerates Figure 6:
///   Panels A-C — encoder throughput vs batch size in half- and
///                full-precision mode for BCAE-2D, BCAE++ and BCAE-HT.
///   Panel D   — the profiling diagnostic behind BCAE-HT's small
///               half-precision gain (tiny kernels; stands in for Nsight).
///   Panel E   — BCAE-2D(m, n=8, d=3) throughput for m = 3..7 with encoder
///               parameter counts at full scale.
///
/// Expected shapes: throughput grows with batch size and saturates (small
/// batches cannot occupy all compute units); half > full for the larger
/// models; BCAE-HT's half-precision advantage is the smallest because its
/// kernels are too small to amortize the wide data path (the CPU analogue
/// of "no tensor-core activity"); throughput falls as m grows.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/profiler.hpp"

int main() {
  using namespace nc;
  const auto& ds = bench::bench_dataset();
  const std::vector<std::int64_t> batches{1, 2, 4, 8, 16, 32, 48, 64, 96};

  auto sweep = [&](bcae::BcaeModel& model, const char* panel) {
    std::printf("\nPanel %s — %s: throughput (wedges/s) vs batch size\n",
                panel, model.name().c_str());
    bench::print_rule(72);
    std::printf("%8s %16s %16s %10s\n", "batch", "full", "half", "half/full");
    bench::print_rule(72);
    double last_ratio = 0.0;
    for (const auto b : batches) {
      const double full =
          bcae::encoder_throughput(model, ds, b, core::Mode::kEval, 0.4);
      const double half =
          bcae::encoder_throughput(model, ds, b, core::Mode::kEvalHalf, 0.4);
      last_ratio = half / full;
      std::printf("%8lld %16.1f %16.1f %9.2fx\n", static_cast<long long>(b),
                  full, half, last_ratio);
    }
    bench::print_rule(72);
    return last_ratio;
  };

  auto m2d = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 7);
  auto mpp = bcae::make_bcae_pp(7);
  auto mht = bcae::make_bcae_ht(7);
  const double r2d = sweep(m2d, "A (BCAE-2D)");
  const double rpp = sweep(mpp, "B (BCAE++)");
  const double rht = sweep(mht, "C (BCAE-HT)");
  std::printf("\nhalf-precision speedup at batch 96: 2D %.2fx, ++ %.2fx, "
              "HT %.2fx (paper: ~1.76-1.79x for 2D/++, markedly less for HT)\n",
              r2d, rpp, rht);
  std::printf("HT gains least from half precision: %s\n",
              (rht <= r2d && rht <= rpp) ? "yes" : "NO");

  // Panel D: per-layer kernel diagnostic for BCAE-HT vs BCAE++ (why HT's
  // half-precision speedup is small: its GEMMs are tiny).
  std::printf("\nPanel D — kernel diagnostic (stand-in for the Nsight trace): "
              "per-layer time and GEMM shapes, batch 32, half precision\n");
  for (auto* model : {&mht, &mpp}) {
    core::Profiler::instance().clear();
    core::Profiler::instance().set_enabled(true);
    (void)bcae::encoder_throughput(*model, ds, 32, core::Mode::kEvalHalf, 0.3);
    core::Profiler::instance().set_enabled(false);
    std::printf("\n%s encoder:\n%s", model->name().c_str(),
                core::Profiler::instance().report().c_str());
  }
  std::printf("\nreading: BCAE-HT's largest GEMM K dimension is an order of "
              "magnitude smaller than BCAE++'s — too little arithmetic per "
              "byte for the fp16 data path to pay off, the CPU analogue of "
              "the paper's 'no Tensor Core activity' finding.\n");

  // Panel E: BCAE-2D(m, 8, 3) throughput + full-scale encoder sizes.
  std::printf("\nPanel E — BCAE-2D(m, n=8, d=3) half-precision throughput\n");
  bench::print_rule(72);
  std::printf("%6s %22s %18s\n", "m", "encoder size (paper)", "throughput w/s");
  bench::print_rule(72);
  const double paper_sizes[] = {132.9, 169.0, 205.2, 241.3, 277.4};
  double prev = 0.0;
  bool monotone = true;
  for (std::int64_t m = 3; m <= 7; ++m) {
    bcae::Bcae2dConfig cfg;
    cfg.m = m;
    const std::int64_t full_params =
        bcae::make_bcae_2d(cfg, 1).encoder_param_count();
    auto model = bcae::make_bcae_2d(cfg, 7);
    const double thr =
        bcae::encoder_throughput(model, ds, 32, core::Mode::kEvalHalf, 0.4);
    std::printf("%6lld %13.1fk (%5.1fk) %18.1f\n", static_cast<long long>(m),
                full_params / 1000.0, paper_sizes[m - 3], thr);
    if (prev > 0.0 && thr > prev * 1.05) monotone = false;
    prev = thr;
  }
  bench::print_rule(72);
  std::printf("throughput decreases with encoder depth m: %s\n",
              monotone ? "yes" : "NO");
  return 0;
}
