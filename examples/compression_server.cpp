/// \file compression_server.cpp
/// \brief Multi-client compression service scenario: N concurrent client
///        streams multiplexed over ONE shared worker pool and ONE set of
///        model weights.
///
/// streaming_daq.cpp is one pipeline = one stream.  The deployment the paper
/// targets is a *service*: every fibre bundle (and every analysis consumer)
/// opens its own session against a shared CompressionService, which gives
/// each of them an independent sequence space with ordered emission, a fair
/// (deficit-round-robin) share of the pool, and a per-session degradation
/// ladder — under sustained overload a session hops to a cheaper registered
/// codec (e.g. bcae-int8 -> zfp) before a single wedge is shed.
///
/// Each simulated client is a thread: open_session -> paced submits ->
/// close_session, with the per-session stats printed as each client
/// finishes.  `--firehose` adds one misbehaving client submitting flat-out
/// with try_submit — run it to watch the ladder hop (and, with a one-rung
/// `--ladder`, shedding) hit ONLY the firehose while the polite clients'
/// rows stay clean.
///
/// Run:  ./compression_server [--clients 4] [--wedges 64] [--rate 200]
///                            [--workers 2] [--batch 8] [--queue 32]
///                            [--session-queue 32]
///                            [--ladder bcae-int8,zfp] [--firehose]
///                            [--spill-dir DIR]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "codec/service.hpp"
#include "codec/wedge_codec.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"

namespace {

/// Comma-separated registry names -> owned codecs + the borrowed-pointer
/// ladder the service wants.  Empty result = a name failed to resolve.
struct Ladder {
  std::vector<std::unique_ptr<nc::codec::WedgeCodec>> owned;
  std::vector<const nc::codec::WedgeCodec*> rungs;
};

Ladder build_ladder(const std::string& spec, nc::bcae::BcaeModel& model) {
  Ladder ladder;
  std::istringstream is(spec);
  std::string name;
  while (std::getline(is, name, ',')) {
    if (name.empty()) continue;
    try {
      ladder.owned.push_back(nc::codec::make_wedge_codec(name, model));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s (registered:", e.what());
      for (const auto& n : nc::codec::registered_codec_names()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, ")\n");
      return {};
    }
    ladder.rungs.push_back(ladder.owned.back().get());
  }
  return ladder;
}

void print_session_row(const char* tag, nc::codec::SessionId id,
                       const nc::codec::SessionStats& stats) {
  std::printf("  %-8s #%llu: %5lld submitted, %5lld compressed, %4lld shed, "
              "%3lld failed | %lld hop(s) down, %lld up, final %s | "
              "%lld payload bytes, staging hwm %lld\n",
              tag, static_cast<unsigned long long>(id),
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.compressed),
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.failed),
              static_cast<long long>(stats.degradations),
              static_cast<long long>(stats.recoveries), stats.codec.c_str(),
              static_cast<long long>(stats.payload_bytes),
              static_cast<long long>(stats.queue_depth_hwm));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("compression_server",
                       "multi-client session-multiplexed compression service");
  args.add_option("clients", "4", "concurrent polite client sessions");
  args.add_option("wedges", "64", "wedges each polite client submits");
  args.add_option("rate", "200", "per-client submit rate [wedges/s]");
  args.add_option("workers", "2", "shared pool worker threads");
  args.add_option("batch", "8", "shared pool batch size");
  args.add_option("queue", "32", "shared pool intake capacity");
  args.add_option("session-queue", "32", "per-session staging capacity");
  args.add_option("ladder", "bcae-int8,zfp",
                  "comma-separated codec degradation ladder, preferred "
                  "first (any registered codec)");
  args.add_flag("firehose",
                "add one flat-out try_submit client to overload the pool");
  args.add_option("spill-dir", "",
                  "shared pool spill tier directory (empty = off)");
  if (!args.parse(argc, argv)) return 1;

  const std::int64_t n_clients = args.get_int("clients");
  const std::int64_t n_wedges = args.get_int("wedges");
  const std::int64_t workers_flag = args.get_int("workers");
  const std::int64_t batch_flag = args.get_int("batch");
  const std::int64_t queue_flag = args.get_int("queue");
  const std::int64_t session_queue_flag = args.get_int("session-queue");
  if (n_clients <= 0 || n_wedges <= 0) {
    std::fprintf(stderr, "error: --clients and --wedges must be positive\n");
    return 1;
  }
  if (workers_flag <= 0 || batch_flag <= 0 || queue_flag <= 0 ||
      session_queue_flag <= 0) {
    std::fprintf(stderr, "error: --workers, --batch, --queue and "
                         "--session-queue must be positive\n");
    return 1;
  }

  // Stage wedges and the (shared!) model: every session's BCAE rungs run on
  // one set of weights — the whole point of multiplexing one service.
  tpc::DatasetConfig cfg;
  cfg.n_events = 4;
  const auto dataset = tpc::WedgeDataset::generate(cfg);
  std::vector<core::Tensor> wedges;
  for (const auto& w : dataset.train()) {
    wedges.push_back(tpc::clip_horizontal(w, dataset.valid_horiz()));
  }
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 7);
  Ladder ladder = build_ladder(args.get("ladder"), model);
  if (ladder.rungs.empty()) {
    std::fprintf(stderr, "error: --ladder must name at least one codec\n");
    return 1;
  }
  std::printf("service: %lld worker(s), intake %lld, ladder",
              static_cast<long long>(workers_flag),
              static_cast<long long>(queue_flag));
  for (const auto* rung : ladder.rungs) {
    std::printf(" %s", rung->name().c_str());
  }
  std::printf("%s\n", args.get_bool("firehose") ? " (+firehose)" : "");

  codec::ServiceOptions opt;
  opt.pipeline.n_workers = static_cast<std::size_t>(workers_flag);
  opt.pipeline.batch_size = static_cast<std::size_t>(batch_flag);
  opt.pipeline.queue_capacity = static_cast<std::size_t>(queue_flag);
  opt.pipeline.spill_dir = args.get("spill-dir");
  codec::CompressionService service(opt);

  std::mutex print_mutex;
  std::atomic<std::int64_t> stored_bytes{0};

  // Polite clients: paced blocking submits, one session each.
  const double rate = args.get_double("rate");
  const auto interval =
      std::chrono::duration<double>(rate > 0 ? 1.0 / rate : 0.0);
  std::vector<std::thread> clients;
  for (std::int64_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      codec::SessionOptions sopt;
      sopt.ladder = ladder.rungs;
      sopt.queue_capacity = static_cast<std::size_t>(session_queue_flag);
      sopt.sink = [&](std::uint64_t, codec::WedgeEnvelope&& env) {
        stored_bytes.fetch_add(env.payload_bytes(),
                               std::memory_order_relaxed);
      };
      const auto id = service.open_session(std::move(sopt));
      std::size_t next = static_cast<std::size_t>(c) % wedges.size();
      for (std::int64_t i = 0; i < n_wedges; ++i) {
        (void)service.submit(id, wedges[next]);
        next = (next + 1) % wedges.size();
        std::this_thread::sleep_for(interval);
      }
      const auto stats = service.close_session(id);
      std::lock_guard<std::mutex> lock(print_mutex);
      print_session_row("client", id, stats);
    });
  }

  // The misbehaving tenant: flat-out try_submit until the polite clients
  // are done — its ladder hops (and any shedding) stay its own problem.
  std::atomic<bool> stop_firehose{false};
  std::thread firehose;
  if (args.get_bool("firehose")) {
    firehose = std::thread([&] {
      codec::SessionOptions sopt;
      sopt.ladder = ladder.rungs;
      sopt.queue_capacity = static_cast<std::size_t>(session_queue_flag);
      const auto id = service.open_session(std::move(sopt));
      std::size_t next = 0;
      while (!stop_firehose.load(std::memory_order_relaxed)) {
        (void)service.try_submit(id, wedges[next]);
        next = (next + 1) % wedges.size();
      }
      const auto stats = service.close_session(id);
      std::lock_guard<std::mutex> lock(print_mutex);
      print_session_row("firehose", id, stats);
    });
  }

  for (auto& t : clients) t.join();
  stop_firehose.store(true);
  if (firehose.joinable()) firehose.join();

  const auto totals = service.finish();
  std::printf("service totals: %lld session(s), %lld wedges scheduled, "
              "%lld shed, %lld degradation(s), %lld recoveries\n",
              static_cast<long long>(totals.sessions_opened),
              static_cast<long long>(totals.wedges_scheduled),
              static_cast<long long>(totals.wedges_shed),
              static_cast<long long>(totals.degradations),
              static_cast<long long>(totals.recoveries));
  std::printf("shared pool:    %lld compressed at %.1f wedges/s, "
              "%lld spilled, %lld bytes stored\n",
              static_cast<long long>(totals.pipeline.wedges_compressed),
              totals.pipeline.throughput_wps(),
              static_cast<long long>(totals.pipeline.wedges_spilled),
              static_cast<long long>(stored_bytes.load()));
  // The service identity: every scheduled wedge either came out a session's
  // sink or was counted (shed/failed) — nothing vanishes.
  if (totals.pipeline.wedges_compressed + totals.pipeline.wedges_failed !=
      totals.wedges_scheduled) {
    std::fprintf(stderr, "ERROR: %lld scheduled but %lld accounted\n",
                 static_cast<long long>(totals.wedges_scheduled),
                 static_cast<long long>(totals.pipeline.wedges_compressed +
                                        totals.pipeline.wedges_failed));
    return 1;
  }
  return 0;
}
