/// \file train_and_checkpoint.cpp
/// \brief Full training workflow: choose a BCAE variant, train with the
///        paper's schedule, evaluate on the test split in both precision
///        modes, and save/restore a checkpoint.
///
/// Run:  ./train_and_checkpoint --variant bcae-2d --epochs 6
///           --checkpoint /tmp/bcae.ckpt
#include <cstdio>
#include <stdexcept>

#include "bcae/evaluator.hpp"
#include "bcae/model.hpp"
#include "bcae/trainer.hpp"
#include "core/checkpoint.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"

namespace {

nc::bcae::BcaeModel make_variant(const std::string& name, std::uint64_t seed) {
  if (name == "bcae-2d") return nc::bcae::make_bcae_2d({}, seed);
  if (name == "bcae++") return nc::bcae::make_bcae_pp(seed);
  if (name == "bcae-ht") return nc::bcae::make_bcae_ht(seed);
  if (name == "bcae") return nc::bcae::make_bcae_original(seed);
  throw std::invalid_argument("unknown variant: " + name +
                              " (bcae-2d | bcae++ | bcae-ht | bcae)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("train_and_checkpoint", "train a BCAE variant");
  args.add_option("variant", "bcae-2d", "bcae-2d | bcae++ | bcae-ht | bcae");
  args.add_option("events", "6", "simulated events");
  args.add_option("epochs", "6", "training epochs");
  args.add_option("checkpoint", "/tmp/bcae.ckpt", "checkpoint path");
  args.add_option("seed", "42", "init/shuffle seed");
  if (!args.parse(argc, argv)) return 1;

  tpc::DatasetConfig cfg;
  cfg.n_events = args.get_int("events");
  const auto dataset = tpc::WedgeDataset::generate(cfg);

  auto model = make_variant(args.get("variant"),
                            static_cast<std::uint64_t>(args.get_int("seed")));
  std::printf("training %s (%lld params) on %zu wedges\n",
              model.name().c_str(), static_cast<long long>(model.param_count()),
              dataset.train().size());

  // Paper schedule shape: flat warm period, then 5% decay steps (§2.5).
  bcae::TrainerConfig tc;
  tc.epochs = args.get_int("epochs");
  tc.flat_epochs = std::max<std::int64_t>(1, tc.epochs / 10);
  tc.decay_every = 1;
  bcae::Trainer trainer(model, dataset, tc);
  trainer.fit([](const bcae::EpochStats& s) {
    std::printf("  epoch %lld: seg %.4f reg %.4f (c=%.1f, lr=%.2e)\n",
                static_cast<long long>(s.epoch), s.seg_loss, s.reg_loss,
                s.coefficient, s.lr);
  });

  for (const auto mode : {core::Mode::kEval, core::Mode::kEvalHalf}) {
    const auto m = bcae::evaluate_model(model, dataset, dataset.test(), mode, 8);
    std::printf("test (%s): MAE %.4f  PSNR %.2f  precision %.3f  recall %.3f\n",
                mode == core::Mode::kEval ? "full" : "half", m.mae, m.psnr,
                m.precision, m.recall);
  }

  // Save, restore into a freshly-initialized model, verify equivalence.
  const std::string path = args.get("checkpoint");
  core::save_checkpoint_file(path, model.params());
  std::printf("checkpoint written to %s\n", path.c_str());

  auto restored = make_variant(args.get("variant"), /*seed=*/999);
  core::load_checkpoint_file(path, restored.params());
  const auto m1 = bcae::evaluate_model(model, dataset, dataset.test(),
                                       core::Mode::kEval, 8);
  const auto m2 = bcae::evaluate_model(restored, dataset, dataset.test(),
                                       core::Mode::kEval, 8);
  std::printf("restored model MAE %.6f vs original %.6f -> %s\n", m2.mae,
              m1.mae, std::abs(m1.mae - m2.mae) < 1e-9 ? "identical" : "MISMATCH");
  return 0;
}
