/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the library:
///        simulate TPC data -> train a small BCAE-2D -> compress a wedge
///        through the production codec -> decompress -> report quality.
///
/// Run:  ./quickstart [--events 4] [--epochs 4]
#include <cstdio>

#include "bcae/evaluator.hpp"
#include "bcae/model.hpp"
#include "bcae/trainer.hpp"
#include "codec/bcae_codec.hpp"
#include "metrics/metrics.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("quickstart", "BCAE compression in five steps");
  args.add_option("events", "4", "simulated Au+Au events");
  args.add_option("epochs", "4", "training epochs");
  args.add_option("scale", "0.25", "detector binning scale (1.0 = paper)");
  if (!args.parse(argc, argv)) return 1;

  // 1. Simulate collisions and slice the TPC outer layer group into wedges.
  tpc::DatasetConfig cfg;
  cfg.geometry.scale = args.get_double("scale");
  cfg.n_events = args.get_int("events");
  const auto dataset = tpc::WedgeDataset::generate(cfg);
  std::printf("dataset: %zu train / %zu test wedges of %s, occupancy %.1f%%\n",
              dataset.train().size(), dataset.test().size(),
              dataset.wedge_shape().to_string().c_str(),
              100.0 * dataset.occupancy());

  // 2. Build the default BCAE-2D model (Algorithms 1-2, m=4, n=8, d=3).
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, /*seed=*/42);
  std::printf("model: %s, encoder %lld params, total %lld params\n",
              model.name().c_str(),
              static_cast<long long>(model.encoder_param_count()),
              static_cast<long long>(model.param_count()));

  // 3. Train with the paper's recipe (AdamW, focal + masked-MAE loss,
  //    dynamic loss balancing) at a reduced epoch count.
  bcae::TrainerConfig tc;
  tc.epochs = args.get_int("epochs");
  bcae::Trainer trainer(model, dataset, tc);
  trainer.fit([](const bcae::EpochStats& s) {
    std::printf("  epoch %lld: seg loss %.4f, reg loss %.4f, c %.1f\n",
                static_cast<long long>(s.epoch), s.seg_loss, s.reg_loss,
                s.coefficient);
  });

  // 4. Compress one test wedge through the deployable codec (fp16 code).
  const core::Tensor wedge =
      tpc::clip_horizontal(dataset.test().front(), dataset.valid_horiz());
  codec::BcaeCodec wedge_codec(model, core::Mode::kEvalHalf);
  const auto compressed = wedge_codec.compress(wedge);
  std::printf("compressed: %lld voxels -> %lld bytes (ratio %.3f vs fp16)\n",
              static_cast<long long>(wedge.numel()),
              static_cast<long long>(compressed.payload_bytes()),
              compressed.compression_ratio());

  // 5. Decompress and score.
  const core::Tensor recon = wedge_codec.decompress(compressed);
  const auto m = metrics::evaluate_reconstruction(recon, wedge);
  std::printf("reconstruction: MAE %.4f, PSNR %.2f dB, precision %.3f, "
              "recall %.3f\n",
              m.mae, m.psnr, m.precision, m.recall);
  return 0;
}
