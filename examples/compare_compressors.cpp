/// \file compare_compressors.cpp
/// \brief Head-to-head of every compressor in the repository on the same
///        wedges: the BCAE codec vs the learning-free SZ/ZFP/MGARD-style
///        baselines — the comparison the paper's introduction motivates.
///
/// Run:  ./compare_compressors [--events 3] [--wedges 8] [--train-epochs 4]
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/mgard_lite.hpp"
#include "baselines/sz_lite.hpp"
#include "baselines/zfp_lite.hpp"
#include "bcae/trainer.hpp"
#include "codec/bcae_codec.hpp"
#include "metrics/metrics.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("compare_compressors", "BCAE vs learning-free codecs");
  args.add_option("events", "3", "simulated events");
  args.add_option("wedges", "8", "evaluation wedges");
  args.add_option("train-epochs", "4", "BCAE training epochs");
  if (!args.parse(argc, argv)) return 1;

  tpc::DatasetConfig cfg;
  cfg.n_events = args.get_int("events");
  const auto dataset = tpc::WedgeDataset::generate(cfg);

  std::vector<core::Tensor> wedges;
  const auto n_wedges = static_cast<std::size_t>(args.get_int("wedges"));
  for (std::size_t i = 0; i < n_wedges && i < dataset.test().size(); ++i) {
    wedges.push_back(
        tpc::clip_horizontal(dataset.test()[i], dataset.valid_horiz()));
  }

  std::printf("%-28s %10s %10s %12s %10s\n", "codec", "ratio", "MAE",
              "precision", "recall");
  auto report = [&](const std::string& name, double ratio,
                    const metrics::ReconstructionMetrics& m) {
    std::printf("%-28s %10.2f %10.4f %12.3f %10.3f\n", name.c_str(), ratio,
                m.mae, m.precision, m.recall);
  };

  // Learning-free codecs at a few operating points.
  std::vector<std::unique_ptr<baselines::LossyCodec>> codecs;
  codecs.push_back(std::make_unique<baselines::SzLite>(0.1f));
  codecs.push_back(std::make_unique<baselines::SzLite>(0.5f));
  codecs.push_back(std::make_unique<baselines::ZfpLite>(4));
  codecs.push_back(std::make_unique<baselines::MgardLite>(0.25f, 3));
  for (auto& codec : codecs) {
    metrics::MetricsAccumulator acc;
    std::size_t bytes = 0;
    std::int64_t voxels = 0;
    for (const auto& w : wedges) {
      const auto blob = codec->compress(w);
      bytes += blob.size();
      voxels += w.numel();
      acc.add(metrics::evaluate_reconstruction(codec->decompress(blob), w),
              w.numel());
    }
    report(codec->name(), baselines::baseline_compression_ratio(voxels, bytes),
           acc.result());
  }

  // The learned codec (briefly trained for the example).
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 42);
  bcae::TrainerConfig tc;
  tc.epochs = args.get_int("train-epochs");
  bcae::Trainer(model, dataset, tc).fit();
  codec::BcaeCodec bcae_codec(model, core::Mode::kEvalHalf);
  metrics::MetricsAccumulator acc;
  double ratio = 0.0;
  for (const auto& w : wedges) {
    const auto cw = bcae_codec.compress(w);
    ratio = cw.compression_ratio();
    acc.add(metrics::evaluate_reconstruction(bcae_codec.decompress(cw), w),
            w.numel());
  }
  report("BCAE-2D (fp16 code)", ratio, acc.result());

  std::printf("\nNote: BCAE's ratio is architectural (code-size) and constant;"
              " its accuracy improves with training epochs, while the"
              " baselines trade ratio for error explicitly.\n");
  return 0;
}
