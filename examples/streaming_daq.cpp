/// \file streaming_daq.cpp
/// \brief Streaming DAQ scenario: the two-sided deployment the paper
///        motivates (§1).
///
/// Default mode (write side): producer threads play the role of the sPHENIX
/// front-end electronics (one per fibre bundle), emitting wedges at a
/// configurable aggregate rate; a pool of compressor workers drains them
/// through the BCAE encoder in batches.  The example reports sustained
/// throughput, queue drops under backpressure, achieved data reduction and
/// the per-worker breakdown — the operational quantities of a
/// streaming-readout DAQ.
///
/// --roundtrip (both sides): a fixed number of wedges flow through the full
/// deployment path — compress pool -> serialized storage -> deserialize ->
/// decompress pool -> analysis sink — and the sink scores every
/// reconstruction against its original wedge (occupancy precision/recall,
/// MAE, PSNR via src/metrics), alongside both directions' throughput.
///
/// With `--spill-dir DIR` the intake gains the lossless spill tier: wedges
/// that would drop under backpressure are serialized raw to segment files
/// under DIR and replayed once the queue drains — the summary then reports
/// spilled/replayed counts and the on-disk high-water mark instead of data
/// loss.
///
/// The pipeline is codec-pluggable: `--codec` selects any registered
/// WedgeCodec (bcae-fp32 | bcae-fp16 | bcae-int8 | zfp | sz | mgard), so the
/// same deployment can run the learned codec or any of the paper's
/// learning-free baselines — the multi-backend story behind the
/// rate--distortion arena (bench_rd).
///
/// Elastic pool: `--workers 0` autoscales the live worker count between
/// `--min-workers` and `--max-workers` (default: every hardware thread) from
/// observed load; `--pin` / `--no-pin` control core pinning + NUMA shard
/// homing.  The resolved topology (cores, NUMA nodes, pinning map) prints at
/// startup and the scaling history (events, hwm/lwm, time-weighted average
/// live workers) joins the exit summary.
///
/// Run:  ./streaming_daq [--rate 200] [--seconds 5] [--batch 16]
///                       [--workers 1] [--producers 1] [--ordered]
///                       [--codec bcae-fp16] [--intake auto|single|sharded]
///                       [--spill-dir DIR]
///                       [--workers 0 [--min-workers N] [--max-workers N]
///                        [--pin | --no-pin]]
///       ./streaming_daq --roundtrip [--wedges 16] [--batch 4] [--workers 2]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "codec/stream.hpp"
#include "codec/wedge_codec.hpp"
#include "core/simd_dispatch.hpp"
#include "metrics/metrics.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"
#include "util/topology.hpp"

namespace {

/// Resolved topology + pinning decision, printed before the pool starts.
void print_topology(const nc::codec::StreamOptions& options) {
  const auto& topo = nc::util::system_topology();
  std::printf("topology: %zu allowed cpu(s), %d numa node(s)%s; pinning %s\n",
              topo.cpus.size(), topo.n_nodes,
              topo.numa_from_sysfs ? "" : " (no sysfs numa map)",
              !options.pin_workers        ? "off"
              : topo.affinity_supported   ? "on"
                                          : "unsupported (no-op)");
}

/// Worker-slot -> core pin map as the pipeline resolved it (empty when
/// pinning is off or unsupported).
void print_pin_map(const std::vector<nc::util::CpuInfo>& placement) {
  if (placement.empty()) return;
  std::printf("pin map:");
  for (std::size_t w = 0; w < placement.size(); ++w) {
    std::printf(" w%zu->cpu%d/n%d", w, placement[w].cpu, placement[w].node);
  }
  std::printf("\n");
}

/// Elastic scaling history (skipped for static pools: nothing moved).
void print_scaling(const char* label, const nc::codec::StreamStats& stats,
                   const nc::codec::StreamOptions& options) {
  if (!options.elastic) return;
  std::printf("  %s: %lld up / %lld down scale events, live workers "
              "%lld..%lld (avg %.2f), %lld pinned\n",
              label, static_cast<long long>(stats.scale_up_events),
              static_cast<long long>(stats.scale_down_events),
              static_cast<long long>(stats.workers_lwm),
              static_cast<long long>(stats.workers_hwm),
              stats.avg_live_workers,
              static_cast<long long>(stats.workers_pinned));
}

void print_stream_stats(const char* label, const nc::codec::StreamStats& stats) {
  std::printf("  %s: %lld wedges at %.1f wedges/s (%.2f busy-cores avg, "
              "%lld failed, %lld batches stolen, depth hwm %lld)\n",
              label, static_cast<long long>(stats.wedges_compressed),
              stats.throughput_wps(),
              stats.elapsed_s > 0 ? stats.cpu_s / stats.elapsed_s : 0.0,
              static_cast<long long>(stats.wedges_failed),
              static_cast<long long>(stats.batches_stolen),
              static_cast<long long>(stats.queue_depth_hwm));
  if (stats.wedges_spilled > 0) {
    std::printf("    spill: %lld spilled, %lld replayed, hwm %lld bytes\n",
                static_cast<long long>(stats.wedges_spilled),
                static_cast<long long>(stats.wedges_replayed),
                static_cast<long long>(stats.spill_bytes_hwm));
  }
}

/// Roundtrip mode: compress `n` wedges through the stream, persist each to
/// an in-memory byte store, then stream the bytes back through the
/// decompress pool and score reconstructions against the originals.
int run_roundtrip(const nc::codec::WedgeCodec& wedge_codec,
                  const std::vector<nc::core::Tensor>& wedges,
                  nc::codec::StreamOptions options, std::int64_t n) {
  using namespace nc;

  // -- write side: compress + serialize to "storage" -------------------------
  std::mutex store_mutex;
  std::map<std::uint64_t, std::string> storage;  // seq -> serialized bytes
  codec::StreamCompressor compressor(
      wedge_codec, options, [&](std::uint64_t seq, codec::WedgeEnvelope&& env) {
        std::ostringstream os;
        env.serialize(os);
        std::lock_guard<std::mutex> lock(store_mutex);
        storage.emplace(seq, os.str());
      });
  print_pin_map(compressor.placement());
  for (std::int64_t i = 0; i < n; ++i) {
    // Blocking submit: the offline path trades latency for zero drops, so
    // seq i maps back to wedges[i % wedges.size()].
    compressor.submit(wedges[static_cast<std::size_t>(i) % wedges.size()]);
  }
  const auto cstats = compressor.finish();

  std::int64_t stored_bytes = 0;
  for (const auto& [seq, bytes] : storage) {
    stored_bytes += static_cast<std::int64_t>(bytes.size());
  }

  // -- read side: deserialize + decompress + score ---------------------------
  // The decompressor renumbers submissions from 0, so map its seq back to
  // the compress-side seq (= wedge index): if a compress batch ever failed,
  // storage has gaps and the two numberings diverge.
  std::vector<std::uint64_t> stored_seqs;
  stored_seqs.reserve(storage.size());
  for (const auto& [seq, bytes] : storage) stored_seqs.push_back(seq);
  std::mutex metrics_mutex;
  metrics::MetricsAccumulator acc;
  codec::StreamDecompressor decompressor(
      wedge_codec, options, [&](std::uint64_t seq, core::Tensor&& recon) {
        const auto original = stored_seqs[static_cast<std::size_t>(seq)];
        const auto& truth =
            wedges[static_cast<std::size_t>(original) % wedges.size()];
        const auto m = metrics::evaluate_reconstruction(recon, truth);
        std::lock_guard<std::mutex> lock(metrics_mutex);
        acc.add(m, recon.numel());
      });
  for (const auto& [seq, bytes] : storage) {  // map iterates in seq order
    std::istringstream is(bytes);
    decompressor.submit(codec::WedgeEnvelope::deserialize(is));
  }
  const auto dstats = decompressor.finish();

  // -- report ----------------------------------------------------------------
  const std::int64_t raw_bytes =
      cstats.wedges_compressed * wedges.front().numel() * 2;  // fp16 accounting
  const auto m = acc.result();
  const double occupancy =
      acc.total_voxels() > 0
          ? static_cast<double>(m.actual_positive) / acc.total_voxels()
          : 0.0;
  std::printf("\nroundtrip summary (%lld wedges, codec %s, %zu worker(s), "
              "batch %zu, %s intake%s):\n",
              static_cast<long long>(n), wedge_codec.name().c_str(),
              options.n_workers, options.batch_size,
              nc::codec::to_string(compressor.options().intake),
              options.ordered ? ", ordered" : "");
  print_stream_stats("compress  ", cstats);
  print_scaling("scale(enc) ", cstats, options);
  print_stream_stats("decompress", dstats);
  print_scaling("scale(dec) ", dstats, options);
  std::printf("  storage:    %lld -> %lld bytes (%.2fx reduction, headers "
              "included)\n",
              static_cast<long long>(raw_bytes),
              static_cast<long long>(stored_bytes),
              stored_bytes ? static_cast<double>(raw_bytes) /
                                 static_cast<double>(stored_bytes)
                           : 0.0);
  std::printf("  quality:    MAE %.4f  PSNR %.2f dB over %lld voxels\n", m.mae,
              m.psnr, static_cast<long long>(acc.total_voxels()));
  std::printf("  occupancy:  %.2f%% of voxels occupied; precision %.4f  "
              "recall %.4f\n",
              100.0 * occupancy, m.precision, m.recall);
  // The deployment identity: everything compressed came back out.
  if (dstats.wedges_compressed != cstats.wedges_compressed) {
    std::fprintf(stderr, "ERROR: decompressed %lld of %lld stored wedges\n",
                 static_cast<long long>(dstats.wedges_compressed),
                 static_cast<long long>(cstats.wedges_compressed));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("streaming_daq", "DAQ-style streaming compression");
  args.add_option("rate", "200", "aggregate wedge arrival rate [wedges/s]");
  args.add_option("seconds", "5", "stream duration");
  args.add_option("batch", "16", "codec batch size");
  args.add_option("queue", "64", "input queue capacity (backpressure bound)");
  args.add_option("workers", "1",
                  "codec worker threads (0 = elastic: autoscale between "
                  "--min-workers and --max-workers from observed load)");
  args.add_option("min-workers", "1", "elastic mode: live worker floor");
  args.add_option("max-workers", "0",
                  "elastic mode: live worker ceiling (0 = all hardware "
                  "threads)");
  args.add_flag("pin",
                "pin workers to cores, home intake shards on NUMA nodes "
                "(default in elastic mode)");
  args.add_flag("no-pin", "disable pinning (overrides --pin / elastic default)");
  args.add_option("producers", "1", "front-end producer threads");
  args.add_option("wedges", "16", "roundtrip mode: wedges through the chain");
  args.add_option("codec", "bcae-fp16",
                  "wedge codec backing the pipeline: bcae-fp32 | bcae-fp16 | "
                  "bcae-int8 | zfp | sz | mgard");
  args.add_option("intake", "auto",
                  "intake layer: auto | single | sharded (auto = sharded "
                  "when --workers > 1)");
  args.add_option("spill-dir", "",
                  "spill tier directory (lossless backpressure: overflow "
                  "goes to disk instead of wedges_dropped; empty = off)");
  args.add_flag("ordered", "emit compressed wedges in submission order");
  args.add_flag("roundtrip",
                "compress -> store -> decompress, scoring reconstructions");
  if (!args.parse(argc, argv)) return 1;
  const bool roundtrip = args.get_bool("roundtrip");

  // Validate the pipeline shape up front (before the expensive dataset
  // staging) and reject misconfiguration loudly — a silently clamped flag
  // means the run measures a different pipeline than the one asked for.
  const std::int64_t batch_flag = args.get_int("batch");
  if (batch_flag <= 0) {
    std::fprintf(stderr, "error: --batch must be positive (got %lld)\n",
                 static_cast<long long>(batch_flag));
    return 1;
  }
  const std::int64_t queue_flag = args.get_int("queue");
  if (queue_flag <= 0) {
    std::fprintf(stderr, "error: --queue must be positive (got %lld)\n",
                 static_cast<long long>(queue_flag));
    return 1;
  }
  const std::int64_t workers_flag = args.get_int("workers");
  if (workers_flag < 0) {
    std::fprintf(stderr,
                 "error: --workers must be >= 0 (0 = elastic; got %lld)\n",
                 static_cast<long long>(workers_flag));
    return 1;
  }
  const std::int64_t min_workers_flag = args.get_int("min-workers");
  const std::int64_t max_workers_flag = args.get_int("max-workers");
  if (workers_flag == 0) {
    if (min_workers_flag <= 0) {
      std::fprintf(stderr, "error: --min-workers must be positive (got %lld)\n",
                   static_cast<long long>(min_workers_flag));
      return 1;
    }
    // An explicit ceiling of 0 with an elastic pool is a pool with no
    // workers, not "use the default" — refuse rather than guess.
    if (max_workers_flag <= 0 && args.was_set("max-workers")) {
      std::fprintf(stderr,
                   "error: --workers 0 (elastic) needs a positive "
                   "--max-workers (got %lld)\n",
                   static_cast<long long>(max_workers_flag));
      return 1;
    }
    const std::int64_t ceiling =
        max_workers_flag > 0
            ? max_workers_flag
            : static_cast<std::int64_t>(util::hardware_threads());
    if (min_workers_flag > ceiling) {
      std::fprintf(stderr,
                   "error: --min-workers %lld exceeds --max-workers %lld\n",
                   static_cast<long long>(min_workers_flag),
                   static_cast<long long>(ceiling));
      return 1;
    }
  }

  // Stage the detector data (in a real DAQ these arrive over fibre).
  tpc::DatasetConfig cfg;
  cfg.n_events = 4;
  const auto dataset = tpc::WedgeDataset::generate(cfg);
  std::vector<core::Tensor> wedges;
  for (const auto& w : dataset.train()) {
    wedges.push_back(tpc::clip_horizontal(w, dataset.valid_horiz()));
  }
  std::printf("staged %zu wedges of %s\n", wedges.size(),
              dataset.wedge_shape().to_string().c_str());
  // The SIMD tier the encode hot loops (int8/fp16 GEMM, quantization)
  // resolved to — worth a line in a throughput demo, since scalar-vs-vector
  // is a bigger lever here than any pipeline knob.
  const char* simd_env = std::getenv("NC_SIMD");
  std::printf("simd dispatch: %s kernels (NC_SIMD=%s)\n",
              core::simd::isa_name(core::simd::active_isa()),
              simd_env ? simd_env : "auto");

  // A pre-trained model would be loaded from a checkpoint here; for the
  // example an untrained BCAE-2D is fine (throughput is weight-independent,
  // and roundtrip metrics still exercise the full mask semantics).  The
  // saturating fp16 activation cast clamps the untrained decoder's
  // out-of-range intermediates, so even the half-precision roundtrip decode
  // stays finite.  The --codec registry hands back any registered backend;
  // the baselines ignore the model entirely.
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 7);
  std::unique_ptr<codec::WedgeCodec> wedge_codec;
  try {
    wedge_codec = codec::make_wedge_codec(args.get("codec"), model);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s (registered:", e.what());
    for (const auto& name : codec::registered_codec_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 1;
  }

  // Flags were validated above, so the size_t casts are safe.
  codec::StreamOptions options;
  options.queue_capacity = static_cast<std::size_t>(queue_flag);
  options.batch_size = static_cast<std::size_t>(batch_flag);
  if (workers_flag == 0) {
    // Elastic mode: start at the floor, let the controller grow the live
    // set toward the ceiling as the offered rate demands.
    options.elastic = true;
    options.min_workers = static_cast<std::size_t>(min_workers_flag);
    options.max_workers = max_workers_flag > 0
                              ? static_cast<std::size_t>(max_workers_flag)
                              : util::hardware_threads();
    options.n_workers = options.min_workers;
  } else {
    options.n_workers = static_cast<std::size_t>(workers_flag);
  }
  // Pinning defaults on in elastic mode (the topology-aware deployment the
  // mode exists for); --pin forces it for static pools, --no-pin wins.
  options.pin_workers =
      !args.get_bool("no-pin") && (args.get_bool("pin") || options.elastic);
  options.ordered = args.get_bool("ordered");
  options.spill_dir = args.get("spill-dir");
  const std::string intake = args.get("intake");
  if (intake == "single") {
    options.intake = codec::IntakeMode::kSingleQueue;
  } else if (intake == "sharded") {
    options.intake = codec::IntakeMode::kSharded;
  } else if (intake != "auto") {
    std::fprintf(stderr, "unknown --intake '%s' (auto | single | sharded)\n",
                 intake.c_str());
    return 1;
  }

  print_topology(options);

  if (roundtrip) {
    const std::int64_t n = std::max<std::int64_t>(1, args.get_int("wedges"));
    return run_roundtrip(*wedge_codec, wedges, options, n);
  }

  // With several workers the (unordered) sink runs concurrently: atomics.
  std::atomic<std::int64_t> stored_bytes{0};
  codec::StreamCompressor stream(
      *wedge_codec, options, [&](codec::WedgeEnvelope&& env) {
        stored_bytes.fetch_add(env.payload_bytes(), std::memory_order_relaxed);
      });
  print_pin_map(stream.placement());

  // Producers: fixed aggregate rate split across the front-end threads.
  const double rate = args.get_double("rate");
  const double duration = args.get_double("seconds");
  const int n_producers = std::max<int>(1, static_cast<int>(args.get_int("producers")));
  const auto interval = std::chrono::duration<double>(
      rate > 0 ? static_cast<double>(n_producers) / rate : 0.0);
  const auto t_end =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(duration);
  std::atomic<std::int64_t> offered{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < n_producers; ++p) {
    producers.emplace_back([&, p] {
      std::size_t next = static_cast<std::size_t>(p) % wedges.size();
      while (std::chrono::steady_clock::now() < t_end) {
        (void)stream.try_submit(wedges[next]);
        offered.fetch_add(1, std::memory_order_relaxed);
        next = (next + static_cast<std::size_t>(n_producers)) % wedges.size();
        std::this_thread::sleep_for(interval);
      }
    });
  }
  for (auto& t : producers) t.join();

  const auto stats = stream.finish();
  const std::int64_t raw_bytes = stats.wedges_compressed *
                                 wedges.front().numel() * 2;  // fp16 accounting
  const std::string workers_desc =
      options.elastic
          ? "elastic " + std::to_string(options.min_workers) + ".." +
                std::to_string(options.max_workers) + " worker(s)"
          : std::to_string(options.n_workers) + " worker(s)";
  std::printf("\nstream summary (%.1f s at %.0f wedges/s offered, codec %s, "
              "%d producer(s), %s, %s intake%s):\n",
              duration, rate, wedge_codec->name().c_str(), n_producers,
              workers_desc.c_str(),
              codec::to_string(stream.options().intake),
              options.ordered ? ", ordered sink" : "");
  std::printf("  offered:     %lld wedges\n",
              static_cast<long long>(offered.load()));
  std::printf("  accepted:    %lld\n", static_cast<long long>(stats.wedges_in));
  std::printf("  dropped:     %lld (backpressure)\n",
              static_cast<long long>(stats.wedges_dropped));
  if (!options.spill_dir.empty()) {
    std::printf("  spilled:     %lld (replayed %lld, spill hwm %lld bytes)\n",
                static_cast<long long>(stats.wedges_spilled),
                static_cast<long long>(stats.wedges_replayed),
                static_cast<long long>(stats.spill_bytes_hwm));
  }
  std::printf("  failed:      %lld (codec errors)\n",
              static_cast<long long>(stats.wedges_failed));
  std::printf("  compressed:  %lld (%.1f wedges/s sustained)\n",
              static_cast<long long>(stats.wedges_compressed),
              stats.throughput_wps());
  // Bytes as the storage sink saw them; equals stats.payload_bytes.
  const std::int64_t sunk_bytes = stored_bytes.load();
  std::printf("  data volume: %lld -> %lld bytes (%.2fx reduction)\n",
              static_cast<long long>(raw_bytes),
              static_cast<long long>(sunk_bytes),
              sunk_bytes ? static_cast<double>(raw_bytes) /
                               static_cast<double>(sunk_bytes)
                         : 0.0);
  std::printf("  parallelism: %.2f busy-cores avg (cpu %.2fs / active %.2fs)\n",
              stats.elapsed_s > 0 ? stats.cpu_s / stats.elapsed_s : 0.0,
              stats.cpu_s, stats.elapsed_s);
  // Effective capacity from the stats, not the requested knob: the sharded
  // intake rounds the bound up to a shard multiple.
  std::printf("  intake:      depth high-water %lld of %lld, %lld batches "
              "stolen across shards\n",
              static_cast<long long>(stats.queue_depth_hwm),
              static_cast<long long>(stats.queue_capacity),
              static_cast<long long>(stats.batches_stolen));
  print_scaling("scaling    ", stats, options);
  for (std::size_t w = 0; w < stats.per_worker.size(); ++w) {
    const auto& ws = stats.per_worker[w];
    std::printf("  worker %zu:    %lld wedges in %lld batches (%lld stolen), "
                "%.2fs active\n",
                w, static_cast<long long>(ws.wedges_compressed),
                static_cast<long long>(ws.batches),
                static_cast<long long>(ws.batches_stolen), ws.active_s);
  }
  return 0;
}
