/// \file streaming_daq.cpp
/// \brief Streaming DAQ scenario: the deployment the paper motivates (§1).
///
/// Producer threads play the role of the sPHENIX front-end electronics
/// (one per fibre bundle), emitting wedges at a configurable aggregate
/// rate; a pool of compressor workers drains them through the BCAE encoder
/// in batches.  The example reports sustained throughput, queue drops under
/// backpressure, achieved data reduction and the per-worker breakdown —
/// the operational quantities of a streaming-readout DAQ.
///
/// Run:  ./streaming_daq [--rate 200] [--seconds 5] [--batch 16]
///                       [--workers 1] [--producers 1] [--ordered]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "codec/stream.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("streaming_daq", "DAQ-style streaming compression");
  args.add_option("rate", "200", "aggregate wedge arrival rate [wedges/s]");
  args.add_option("seconds", "5", "stream duration");
  args.add_option("batch", "16", "compressor batch size");
  args.add_option("queue", "64", "input queue capacity (backpressure bound)");
  args.add_option("workers", "1", "compressor worker threads");
  args.add_option("producers", "1", "front-end producer threads");
  args.add_flag("ordered", "emit compressed wedges in submission order");
  args.add_flag("half", "use half-precision inference (default: on)");
  if (!args.parse(argc, argv)) return 1;

  // Stage the detector data (in a real DAQ these arrive over fibre).
  tpc::DatasetConfig cfg;
  cfg.n_events = 4;
  const auto dataset = tpc::WedgeDataset::generate(cfg);
  std::vector<core::Tensor> wedges;
  for (const auto& w : dataset.train()) {
    wedges.push_back(tpc::clip_horizontal(w, dataset.valid_horiz()));
  }
  std::printf("staged %zu wedges of %s\n", wedges.size(),
              dataset.wedge_shape().to_string().c_str());

  // A pre-trained encoder would be loaded from a checkpoint here; for the
  // example an untrained BCAE-2D is fine (throughput is weight-independent).
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 7);
  codec::BcaeCodec wedge_codec(model, core::Mode::kEvalHalf);

  // Clamp before the size_t casts: a negative flag value must not wrap into
  // an astronomically large queue or worker count.
  codec::StreamOptions options;
  options.queue_capacity =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("queue")));
  options.batch_size =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("batch")));
  options.n_workers =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("workers")));
  options.ordered = args.get_bool("ordered");

  // With several workers the (unordered) sink runs concurrently: atomics.
  std::atomic<std::int64_t> stored_bytes{0};
  codec::StreamCompressor stream(
      wedge_codec, options, [&](codec::CompressedWedge&& cw) {
        stored_bytes.fetch_add(cw.payload_bytes(), std::memory_order_relaxed);
      });

  // Producers: fixed aggregate rate split across the front-end threads.
  const double rate = args.get_double("rate");
  const double duration = args.get_double("seconds");
  const int n_producers = std::max<int>(1, static_cast<int>(args.get_int("producers")));
  const auto interval = std::chrono::duration<double>(
      rate > 0 ? static_cast<double>(n_producers) / rate : 0.0);
  const auto t_end =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(duration);
  std::atomic<std::int64_t> offered{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < n_producers; ++p) {
    producers.emplace_back([&, p] {
      std::size_t next = static_cast<std::size_t>(p) % wedges.size();
      while (std::chrono::steady_clock::now() < t_end) {
        (void)stream.try_submit(wedges[next]);
        offered.fetch_add(1, std::memory_order_relaxed);
        next = (next + static_cast<std::size_t>(n_producers)) % wedges.size();
        std::this_thread::sleep_for(interval);
      }
    });
  }
  for (auto& t : producers) t.join();

  const auto stats = stream.finish();
  const std::int64_t raw_bytes = stats.wedges_compressed *
                                 wedges.front().numel() * 2;  // fp16 accounting
  std::printf("\nstream summary (%.1f s at %.0f wedges/s offered, %d producer(s), "
              "%zu worker(s)%s):\n",
              duration, rate, n_producers, options.n_workers,
              options.ordered ? ", ordered sink" : "");
  std::printf("  offered:     %lld wedges\n",
              static_cast<long long>(offered.load()));
  std::printf("  accepted:    %lld\n", static_cast<long long>(stats.wedges_in));
  std::printf("  dropped:     %lld (backpressure)\n",
              static_cast<long long>(stats.wedges_dropped));
  std::printf("  failed:      %lld (codec errors)\n",
              static_cast<long long>(stats.wedges_failed));
  std::printf("  compressed:  %lld (%.1f wedges/s sustained)\n",
              static_cast<long long>(stats.wedges_compressed),
              stats.throughput_wps());
  // Bytes as the storage sink saw them; equals stats.payload_bytes.
  const std::int64_t sunk_bytes = stored_bytes.load();
  std::printf("  data volume: %lld -> %lld bytes (%.2fx reduction)\n",
              static_cast<long long>(raw_bytes),
              static_cast<long long>(sunk_bytes),
              sunk_bytes ? static_cast<double>(raw_bytes) /
                               static_cast<double>(sunk_bytes)
                         : 0.0);
  std::printf("  parallelism: %.2f busy-cores avg (cpu %.2fs / active %.2fs)\n",
              stats.elapsed_s > 0 ? stats.cpu_s / stats.elapsed_s : 0.0,
              stats.cpu_s, stats.elapsed_s);
  for (std::size_t w = 0; w < stats.per_worker.size(); ++w) {
    const auto& ws = stats.per_worker[w];
    std::printf("  worker %zu:    %lld wedges in %lld batches, %.2fs active\n",
                w, static_cast<long long>(ws.wedges_compressed),
                static_cast<long long>(ws.batches), ws.active_s);
  }
  return 0;
}
