/// \file streaming_daq.cpp
/// \brief Streaming DAQ scenario: the deployment the paper motivates (§1).
///
/// A producer thread plays the role of the sPHENIX front-end electronics,
/// emitting wedges at a configurable rate; the StreamCompressor drains them
/// through the BCAE encoder in batches.  The example reports sustained
/// throughput, queue drops under backpressure, and achieved data reduction —
/// the operational quantities of a streaming-readout DAQ.
///
/// Run:  ./streaming_daq [--rate 200] [--seconds 5] [--batch 16]
#include <chrono>
#include <cstdio>
#include <thread>

#include "codec/stream.hpp"
#include "tpc/dataset.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace nc;
  util::ArgParser args("streaming_daq", "DAQ-style streaming compression");
  args.add_option("rate", "200", "wedge arrival rate [wedges/s]");
  args.add_option("seconds", "5", "stream duration");
  args.add_option("batch", "16", "compressor batch size");
  args.add_option("queue", "64", "input queue capacity (backpressure bound)");
  args.add_flag("half", "use half-precision inference (default: on)");
  if (!args.parse(argc, argv)) return 1;

  // Stage the detector data (in a real DAQ these arrive over fibre).
  tpc::DatasetConfig cfg;
  cfg.n_events = 4;
  const auto dataset = tpc::WedgeDataset::generate(cfg);
  std::vector<core::Tensor> wedges;
  for (const auto& w : dataset.train()) {
    wedges.push_back(tpc::clip_horizontal(w, dataset.valid_horiz()));
  }
  std::printf("staged %zu wedges of %s\n", wedges.size(),
              dataset.wedge_shape().to_string().c_str());

  // A pre-trained encoder would be loaded from a checkpoint here; for the
  // example an untrained BCAE-2D is fine (throughput is weight-independent).
  auto model = bcae::make_bcae_2d(bcae::Bcae2dConfig{}, 7);
  codec::BcaeCodec wedge_codec(model, core::Mode::kEvalHalf);

  std::int64_t stored_bytes = 0;
  codec::StreamCompressor stream(
      wedge_codec, static_cast<std::size_t>(args.get_int("queue")),
      static_cast<std::size_t>(args.get_int("batch")),
      [&](codec::CompressedWedge&& cw) { stored_bytes += cw.payload_bytes(); });

  // Producer: fixed-rate wedge source.
  const double rate = args.get_double("rate");
  const double duration = args.get_double("seconds");
  const auto interval =
      std::chrono::duration<double>(rate > 0 ? 1.0 / rate : 0.0);
  const auto t_end =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(duration);
  std::size_t next = 0;
  std::int64_t offered = 0;
  while (std::chrono::steady_clock::now() < t_end) {
    (void)stream.try_submit(wedges[next]);
    ++offered;
    next = (next + 1) % wedges.size();
    std::this_thread::sleep_for(interval);
  }

  const auto stats = stream.finish();
  const std::int64_t raw_bytes = stats.wedges_compressed *
                                 wedges.front().numel() * 2;  // fp16 accounting
  std::printf("\nstream summary (%.1f s at %.0f wedges/s offered):\n", duration,
              rate);
  std::printf("  offered:     %lld wedges\n", static_cast<long long>(offered));
  std::printf("  accepted:    %lld\n", static_cast<long long>(stats.wedges_in));
  std::printf("  dropped:     %lld (backpressure)\n",
              static_cast<long long>(stats.wedges_dropped));
  std::printf("  compressed:  %lld (%.1f wedges/s sustained)\n",
              static_cast<long long>(stats.wedges_compressed),
              stats.throughput_wps());
  std::printf("  data volume: %lld -> %lld bytes (%.2fx reduction)\n",
              static_cast<long long>(raw_bytes),
              static_cast<long long>(stats.payload_bytes),
              stats.payload_bytes
                  ? static_cast<double>(raw_bytes) /
                        static_cast<double>(stats.payload_bytes)
                  : 0.0);
  return 0;
}
