/// \file det_main.cpp
/// \brief Deterministic structure-aware fuzz driver (the ctest half of the
///        fuzz harnesses — see fuzz_common.hpp for the contract).
///
/// Unlike libFuzzer this needs no special compiler support, so it runs on
/// every CI configuration — in particular inside the ASan+UBSan job, where
/// `-fno-sanitize-recover=all` turns any memory bug or UB hit by a mutated
/// input into a hard test failure.
///
/// Determinism: SplitMix64 seeded from --seed only, so a failure is exactly
/// reproducible from `--seed S`.  An escaping exception dumps the offending
/// input to crash-<fmt>.bin (ready to commit as a corpus regression) before
/// rethrowing; a sanitizer abort is reproduced by rerunning with the same
/// seed under a debugger.
///
/// Usage: fuzz_<fmt>_det [--iters N] [--seed S] [--dump-corpus DIR]
///                       [corpus_dir ...]
///   corpus dirs are replayed unmutated first (regression check), then
///   their entries join the generated corpus as mutation seeds.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_common.hpp"

namespace {

/// SplitMix64: tiny, seedable, and stable across platforms — the whole run
/// is a pure function of --seed.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, bound); bound must be nonzero.
  std::size_t below(std::size_t bound) {
    return static_cast<std::size_t>(next() % bound);
  }

 private:
  std::uint64_t state_;
};

using Bytes = std::vector<std::uint8_t>;

/// One structure-aware mutation. Seeds are valid wire buffers, so flips hit
/// live header fields and splices join two real messages mid-record.
Bytes mutate(const std::vector<Bytes>& seeds, Prng& rng) {
  Bytes buf = seeds[rng.below(seeds.size())];
  const std::size_t rounds = 1 + rng.below(4);
  for (std::size_t r = 0; r < rounds; ++r) {
    switch (rng.below(6)) {
      case 0:  // flip one bit
        if (!buf.empty()) {
          buf[rng.below(buf.size())] ^=
              static_cast<std::uint8_t>(1u << rng.below(8));
        }
        break;
      case 1:  // overwrite a short run with random bytes
        if (!buf.empty()) {
          const std::size_t at = rng.below(buf.size());
          const std::size_t len = 1 + rng.below(8);
          for (std::size_t i = at; i < buf.size() && i < at + len; ++i) {
            buf[i] = static_cast<std::uint8_t>(rng.next());
          }
        }
        break;
      case 2:  // truncate
        if (!buf.empty()) buf.resize(rng.below(buf.size()));
        break;
      case 3: {  // splice: our prefix + another seed's suffix
        const Bytes& other = seeds[rng.below(seeds.size())];
        const std::size_t cut = buf.empty() ? 0 : rng.below(buf.size());
        const std::size_t from = other.empty() ? 0 : rng.below(other.size());
        buf.resize(cut);
        buf.insert(buf.end(), other.begin() + static_cast<std::ptrdiff_t>(from),
                   other.end());
        break;
      }
      case 4: {  // insert a few random bytes
        const std::size_t at = buf.empty() ? 0 : rng.below(buf.size());
        const std::size_t len = 1 + rng.below(8);
        Bytes junk(len);
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
                   junk.end());
        break;
      }
      default:  // length-field attack: overwrite 8 aligned bytes with a
                // huge little-endian value (hunts unguarded allocations)
        if (buf.size() >= 8) {
          const std::size_t at = rng.below(buf.size() - 7);
          const std::uint64_t huge = rng.next() | (1ull << 62);
          std::memcpy(buf.data() + at, &huge, 8);
        }
        break;
    }
  }
  return buf;
}

void run_one(const Bytes& buf) {
  // The harness contains expected SerializeErrors itself; anything that
  // escapes (other exception types, sanitizer aborts) fails the driver.
  LLVMFuzzerTestOneInput(buf.data(), buf.size());
}

int dump_corpus(const std::vector<Bytes>& seeds, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::string path = dir + "/seed-" + std::to_string(i) + ".bin";
    std::ofstream os(path, std::ios::binary);
    os.write(reinterpret_cast<const char*>(seeds[i].data()),
             static_cast<std::streamsize>(seeds[i].size()));
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("wrote %zu corpus files to %s\n", seeds.size(), dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 10000;
  std::uint64_t seed = 1;
  std::string dump_dir;
  std::vector<std::string> corpus_dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iters" && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--dump-corpus" && i + 1 < argc) {
      dump_dir = argv[++i];
    } else {
      corpus_dirs.push_back(arg);
    }
  }

  std::vector<Bytes> seeds = nc::fuzz::corpus();
  if (!dump_dir.empty()) return dump_corpus(seeds, dump_dir);

  // Committed corpus files (seed corpus + crash regressions) are replayed
  // unmutated first: a past crasher that resurfaces fails immediately.
  std::size_t replayed = 0;
  for (const auto& dir : corpus_dirs) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream is(entry.path(), std::ios::binary);
      Bytes buf((std::istreambuf_iterator<char>(is)),
                std::istreambuf_iterator<char>());
      run_one(buf);
      seeds.push_back(std::move(buf));
      ++replayed;
    }
    if (ec) {
      std::fprintf(stderr, "cannot read corpus dir %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  if (seeds.empty()) {
    std::fprintf(stderr, "no corpus seeds\n");
    return 1;
  }

  Prng rng(seed);
  for (std::uint64_t i = 0; i < iters; ++i) {
    const Bytes buf = mutate(seeds, rng);
    try {
      run_one(buf);
    } catch (...) {
      const std::string path = "crash-" + std::to_string(seed) + "-" +
                               std::to_string(i) + ".bin";
      std::ofstream os(path, std::ios::binary);
      os.write(reinterpret_cast<const char*>(buf.data()),
               static_cast<std::streamsize>(buf.size()));
      std::fprintf(stderr,
                   "iteration %llu (seed %llu) escaped the harness; "
                   "input dumped to %s\n",
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(seed), path.c_str());
      throw;
    }
  }
  std::printf("ok: %zu corpus replays + %llu mutated iterations\n", replayed,
              static_cast<unsigned long long>(iters));
  return 0;
}
