/// \file fuzz_checkpoint.cpp
/// \brief Fuzz harness for the "CKPT" checkpoint format
///        (core::load_checkpoint) — see fuzz_common.hpp for the contract.
///
/// The harness loads into a fixed small parameter set, so name/shape
/// matching (the strictest part of the parser) is exercised as well as the
/// raw field parsing.  Acceptable outcomes: clean load or SerializeError.
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/layer.hpp"
#include "core/tensor.hpp"
#include "fuzz_common.hpp"
#include "util/serialize.hpp"

namespace {

/// Parameter set mirroring a miniature model; the corpus serializes exactly
/// these, so unmutated corpus entries load cleanly.
std::vector<nc::core::Param> make_params() {
  using nc::core::Param;
  using nc::core::Tensor;
  std::vector<Param> params;
  params.emplace_back("enc.conv0.w", Tensor::full({4, 1, 3, 3}, 0.5f));
  params.emplace_back("enc.conv0.b", Tensor::full({4}, -1.0f));
  params.emplace_back("dec.deconv0.w", Tensor::full({1, 4, 3, 3}, 0.25f));
  params.emplace_back("dec.norm.gamma", Tensor::full({4}, 1.0f));
  return params;
}

std::vector<nc::core::Param*> param_ptrs(std::vector<nc::core::Param>& ps) {
  std::vector<nc::core::Param*> ptrs;
  ptrs.reserve(ps.size());
  for (auto& p : ps) ptrs.push_back(&p);
  return ptrs;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Rebuilt per input: a partially-applied corrupt load must not leak state
  // into the next iteration's baseline.
  std::vector<nc::core::Param> params = make_params();
  const std::vector<nc::core::Param*> ptrs = param_ptrs(params);
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    nc::core::load_checkpoint(is, ptrs);
  } catch (const nc::util::SerializeError&) {
    // Expected rejection of corrupt input.
  }
  return 0;
}

namespace nc::fuzz {

std::vector<std::vector<std::uint8_t>> corpus() {
  std::vector<std::vector<std::uint8_t>> out;
  auto add = [&out](const std::vector<nc::core::Param*>& ptrs) {
    std::ostringstream os;
    nc::core::save_checkpoint(os, ptrs);
    const std::string s = os.str();
    out.emplace_back(s.begin(), s.end());
  };

  // 1. Exactly the harness's parameter set (loads cleanly).
  std::vector<nc::core::Param> full = make_params();
  add(param_ptrs(full));

  // 2. A subset (parses cleanly, then fails the missing-parameter check).
  std::vector<nc::core::Param*> subset = param_ptrs(full);
  subset.resize(2);
  add(subset);

  // 3. Empty parameter list (header + zero count).
  add({});

  // 4. A scalar (rank-0) and a high-rank parameter — boundary shapes.
  std::vector<nc::core::Param> odd;
  odd.emplace_back("scalar", nc::core::Tensor::full({}, 3.0f));
  odd.emplace_back("rank8",
                   nc::core::Tensor::full({1, 1, 2, 1, 1, 2, 1, 1}, 2.0f));
  add(param_ptrs(odd));

  return out;
}

}  // namespace nc::fuzz
