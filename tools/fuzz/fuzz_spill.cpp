/// \file fuzz_spill.cpp
/// \brief Fuzz harness for the "SPIL" spill-segment format
///        (read_spill_segment_header + read_spill_record, i.e. exactly the
///        SpillReader parse path) — see fuzz_common.hpp.
///
/// The corpus is produced by a real SpillLog writing segment files (keep
/// mode), so mutations hit genuine record boundaries and CRC trailers.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codec/spill.hpp"
#include "fuzz_common.hpp"
#include "util/serialize.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    nc::codec::read_spill_segment_header(is);
    // Same loop as SpillReader::next: parse records until clean EOF.
    while (is.peek() != std::char_traits<char>::eof()) {
      const nc::codec::SpillRecord rec = nc::codec::read_spill_record(is);
      // CRC covers header+payload, so a surviving record's length field
      // must agree with its payload — anything else is a parser bug.
      if (rec.payload.size() > (std::size_t{1} << 28)) {
        throw std::logic_error("spill record oversized payload accepted");
      }
    }
  } catch (const nc::util::SerializeError&) {
    // Expected rejection of corrupt input.
  }
  return 0;
}

namespace nc::fuzz {

std::vector<std::vector<std::uint8_t>> corpus() {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "nc_fuzz_spill_corpus";
  fs::remove_all(dir);

  // Two logs: one multi-record segment, one rolled into per-record
  // segments (distinct header/record layouts for the mutator to cut up).
  std::vector<std::vector<std::uint8_t>> out;
  for (const std::size_t segment_bytes : {std::size_t{1} << 20,
                                          std::size_t{1}}) {
    nc::codec::SpillOptions opt;
    opt.dir = (dir / std::to_string(segment_bytes)).string();
    opt.segment_bytes = segment_bytes;
    opt.keep = true;  // close() must leave the segments for us to read
    nc::codec::SpillLog log(opt);
    std::string payload;
    for (std::uint64_t seq = 0; seq < 4; ++seq) {
      log.append(seq, payload);
      payload += "wedge-bytes-" + std::to_string(seq);
    }
    const std::vector<std::string> segments = log.segment_paths();
    log.close();
    for (const auto& path : segments) {
      std::ifstream is(path, std::ios::binary);
      out.emplace_back((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
    }
  }
  fs::remove_all(dir);
  return out;
}

}  // namespace nc::fuzz
