/// \file fuzz_envelope.cpp
/// \brief Fuzz harness for the "WENV" codec-tagged stream format
///        (WedgeEnvelope::deserialize) — see fuzz_common.hpp.
///
/// Strengthened oracle: when a mutated buffer *does* parse, the result is
/// re-serialized and re-parsed, and the two envelopes must agree — a parse
/// that silently mangles fields is a bug even if it doesn't crash.
#include <sstream>
#include <string>
#include <vector>

#include "codec/wedge_codec.hpp"
#include "fuzz_common.hpp"
#include "util/serialize.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const nc::codec::WedgeEnvelope env =
        nc::codec::WedgeEnvelope::deserialize(is);
    // Round-trip stability: serialize(parse(x)) must parse back equal.
    std::ostringstream os;
    env.serialize(os);
    std::istringstream is2(os.str());
    const nc::codec::WedgeEnvelope env2 =
        nc::codec::WedgeEnvelope::deserialize(is2);
    if (env2.codec_id != env.codec_id ||
        env2.wedge_shape.radial != env.wedge_shape.radial ||
        env2.wedge_shape.azim != env.wedge_shape.azim ||
        env2.wedge_shape.horiz != env.wedge_shape.horiz ||
        env2.payload != env.payload) {
      throw std::logic_error("WedgeEnvelope round-trip mismatch");
    }
  } catch (const nc::util::SerializeError&) {
    // Expected rejection of corrupt input.
  }
  return 0;
}

namespace nc::fuzz {

std::vector<std::vector<std::uint8_t>> corpus() {
  std::vector<std::vector<std::uint8_t>> out;
  auto add = [&out](const nc::codec::WedgeEnvelope& env) {
    std::ostringstream os;
    env.serialize(os);
    const std::string s = os.str();
    out.emplace_back(s.begin(), s.end());
  };

  // One envelope per registered codec id, with distinct payload sizes so
  // truncation and length-field mutations land in different regimes.
  const std::uint8_t ids[] = {1, 2, 3, 16, 17, 18};
  std::size_t payload_len = 0;
  for (const std::uint8_t id : ids) {
    nc::codec::WedgeEnvelope env;
    env.codec_id = id;
    env.wedge_shape = nc::tpc::WedgeShape{4, 6, 9};
    env.payload.assign(payload_len, static_cast<std::uint8_t>(0xA5u ^ id));
    payload_len = payload_len * 3 + 1;  // 0, 1, 4, 13, 40, 121
    add(env);
  }

  // Paper-scale shape with a larger payload.
  nc::codec::WedgeEnvelope big;
  big.codec_id = 2;
  big.wedge_shape = nc::tpc::WedgeShape{16, 192, 249};
  big.payload.resize(2048);
  for (std::size_t i = 0; i < big.payload.size(); ++i) {
    big.payload[i] = static_cast<std::uint8_t>(i * 31u);
  }
  add(big);

  return out;
}

}  // namespace nc::fuzz
