/// \file fuzz_common.hpp
/// \brief Contract between the three wire-format fuzz harnesses and their
///        two drivers (libFuzzer and the deterministic ctest driver).
///
/// Each harness translation unit (fuzz_checkpoint.cpp, fuzz_envelope.cpp,
/// fuzz_spill.cpp) implements:
///
///   * `LLVMFuzzerTestOneInput` — feed one byte buffer to the format's
///     deserialize entry point.  The only acceptable outcomes are a clean
///     parse or `util::SerializeError`; any other exception, crash, hang or
///     unguarded giant allocation is a bug the driver surfaces.
///   * `nc::fuzz::corpus()` — valid buffers produced by the *real*
///     serializers.  They seed the structure-aware mutations (byte flips
///     land in real headers, splices join real records) and are what
///     `--dump-corpus` writes out as the committed seed corpus.
///
/// The same harness TU links either against libFuzzer (`-fsanitize=fuzzer`,
/// Clang-only, behind NC_BUILD_FUZZERS) or against det_main.cpp — the
/// fixed-PRNG driver that ctest runs on every CI configuration, sanitized
/// or not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace nc::fuzz {

/// Valid wire-format buffers from the real serializers (mutation seeds).
std::vector<std::vector<std::uint8_t>> corpus();

}  // namespace nc::fuzz
