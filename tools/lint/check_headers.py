#!/usr/bin/env python3
"""Repo lint: header self-containment + format coverage + syscall containment.

Four cheap, mechanical checks that have each caught real bugs in this tree:

1. **Header self-containment** — every public header under ``src/`` must
   compile as its own translation unit.  The repo has already shipped two
   missing-include bugs (``<vector>`` in codec/stream, ``<limits>`` in
   metrics) that only bit users including a header in a fresh context; this
   makes the property mechanical.

2. **Format coverage** — every on-disk format kind declared in ``src/``
   (the ``constexpr char kKind[4]`` next to its ``write_magic`` call) must
   have a registered version-gate test: a test that bumps the version field
   of a well-formed buffer and expects ``SerializeError``.  A new format
   fails this lint until its gate test is added and registered in
   ``FORMAT_GATES`` below — misparsing "v2 field soup as v1" is the exact
   class of bug the gates exist to block.

3. **SIMD containment** — ``<immintrin.h>`` (and kin) may only appear in the
   translation units listed in ``SIMD_TUS``, each of which must keep its
   ``NC_SIMD_BUILD_*`` guard macro.  The build passes no global ``-march``
   flags, so an intrinsics include anywhere else is either dead code behind
   an always-false ``#ifdef`` (the bug the runtime dispatcher replaced) or a
   TU that breaks on non-x86; headers may never include intrinsics because
   any TU could pull them in.

4. **Affinity containment** — thread-affinity syscalls
   (``pthread_setaffinity_np``, ``sched_getaffinity``, ``cpu_set_t``, ...)
   may only appear in ``util/topology.cpp``, the one TU that owns the
   graceful degradation story (non-Linux builds, ``NC_TOPOLOGY=off``).  A
   bare affinity call anywhere else either breaks portable builds or
   bypasses the escape hatch; same containment pattern as the SIMD check.

Exit status 0 iff all checks pass.  Run locally with::

    python3 tools/lint/check_headers.py            # from the repo root
    cmake --build build --target check_headers     # same, via CMake
"""
from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
import tempfile

# Registered version-gate tests: format kind -> (test file, test regex).
# The regex must match the TEST(...) declaration line in the file.
FORMAT_GATES = {
    "CKPT": ("tests/test_corrupt_io.cpp",
             r"TEST\(CorruptCheckpoint,\s*UnknownVersionRejected\)"),
    "CWDG": ("tests/test_corrupt_io.cpp",
             r"TEST\(CorruptWedge,\s*UnknownVersionRejected\)"),
    "WDGS": ("tests/test_corrupt_io.cpp",
             r"TEST\(CorruptDataset,\s*UnknownVersionRejected\)"),
    "WENV": ("tests/test_codec_arena.cpp",
             r"TEST\(WedgeEnvelope,\s*DeserializeRejectsVersionBump\)"),
    "SPIL": ("tests/test_spill.cpp",
             r"TEST\(SpillReader,\s*UnknownVersionRejected\)"),
}

KIND_RE = re.compile(
    r"char\s+\w*[Kk]ind\[4\]\s*=\s*\{\s*'(.)'\s*,\s*'(.)'\s*,\s*'(.)'\s*,\s*'(.)'\s*\}")

# The only TUs allowed to include intrinsics headers, with the guard macro
# each must test (the macro is defined per-file by src/CMakeLists.txt only
# when the compiler accepted the matching -m flags; a flagless build of the
# same file must fall back to its portable stub).
SIMD_TUS = {
    "src/core/simd_avx2.cpp": "NC_SIMD_BUILD_AVX2",
    "src/core/simd_avx512.cpp": "NC_SIMD_BUILD_AVX512",
    "src/util/half_f16c.cpp": "NC_SIMD_BUILD_F16C",
}

INTRIN_RE = re.compile(
    r'^\s*#\s*include\s*[<"](?:immintrin|x86intrin|emmintrin|smmintrin|'
    r'tmmintrin|nmmintrin|wmmintrin|avxintrin|xmmintrin|pmmintrin)\.h[>"]',
    re.MULTILINE)

# The only TU allowed to touch thread-affinity syscalls; everything else
# goes through the util/topology.hpp wrappers, which degrade gracefully on
# non-Linux hosts and honor the NC_TOPOLOGY=off escape hatch.
AFFINITY_TU = "src/util/topology.cpp"

AFFINITY_RE = re.compile(
    r"\b(?:pthread_(?:set|get)affinity_np|sched_(?:set|get)affinity|"
    r"cpu_set_t|CPU_ZERO|CPU_SET\b|CPU_ISSET)")


def find_headers(src_dir: str) -> list[str]:
    headers = []
    for root, _dirs, files in os.walk(src_dir):
        for name in sorted(files):
            if name.endswith((".hpp", ".h")):
                headers.append(os.path.join(root, name))
    return headers


def check_header(cxx: str, repo: str, header: str) -> tuple[str, str]:
    """Compile `#include "<header>"` as a standalone TU; '' means clean."""
    rel = os.path.relpath(header, os.path.join(repo, "src"))
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".cpp", delete=False) as tu:
        tu.write(f'#include "{rel}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [cxx, "-std=c++20", "-fsyntax-only",
             "-I", os.path.join(repo, "src"), "-I", repo,
             "-Wall", "-Wextra", tu_path],
            capture_output=True, text=True)
        return rel, "" if proc.returncode == 0 else proc.stderr.strip()
    finally:
        os.unlink(tu_path)


def check_self_containment(cxx: str, repo: str) -> int:
    headers = find_headers(os.path.join(repo, "src"))
    failures = 0
    with concurrent.futures.ThreadPoolExecutor() as pool:
        for rel, err in pool.map(
                lambda h: check_header(cxx, repo, h), headers):
            if err:
                failures += 1
                print(f"FAIL header not self-contained: src/{rel}\n{err}\n",
                      file=sys.stderr)
    print(f"self-containment: {len(headers) - failures}/{len(headers)} "
          f"headers compile standalone")
    return failures


def find_format_kinds(repo: str) -> dict[str, str]:
    """Discover every on-disk format kind declared under src/."""
    kinds: dict[str, str] = {}
    for root, _dirs, files in os.walk(os.path.join(repo, "src")):
        for name in sorted(files):
            if not name.endswith((".cpp", ".hpp", ".h")):
                continue
            path = os.path.join(root, name)
            with open(path, encoding="utf-8") as f:
                for match in KIND_RE.finditer(f.read()):
                    kinds["".join(match.groups())] = os.path.relpath(
                        path, repo)
    return kinds


def check_format_gates(repo: str) -> int:
    failures = 0
    kinds = find_format_kinds(repo)
    if not kinds:
        print("FAIL: no format kinds discovered under src/ — the lint's "
              "kind regex no longer matches the tree", file=sys.stderr)
        return 1
    for kind, declared_in in sorted(kinds.items()):
        gate = FORMAT_GATES.get(kind)
        if gate is None:
            failures += 1
            print(f"FAIL format '{kind}' ({declared_in}) has no registered "
                  f"version-gate test: add a bump-the-version test and "
                  f"register it in FORMAT_GATES "
                  f"(tools/lint/check_headers.py)", file=sys.stderr)
            continue
        test_file, test_re = gate
        path = os.path.join(repo, test_file)
        try:
            with open(path, encoding="utf-8") as f:
                content = f.read()
        except OSError:
            failures += 1
            print(f"FAIL format '{kind}': registered test file {test_file} "
                  f"does not exist", file=sys.stderr)
            continue
        if not re.search(test_re, content):
            failures += 1
            print(f"FAIL format '{kind}': {test_file} no longer contains a "
                  f"test matching {test_re}", file=sys.stderr)
    stale = sorted(set(FORMAT_GATES) - set(kinds))
    if stale:
        failures += len(stale)
        print(f"FAIL stale FORMAT_GATES entries (format no longer in src/): "
              f"{', '.join(stale)}", file=sys.stderr)
    print(f"format gates: {len(kinds)} formats discovered "
          f"({', '.join(sorted(kinds))}), {failures} uncovered")
    return failures


def check_simd_containment(repo: str) -> int:
    failures = 0
    offenders: list[str] = []
    for root, _dirs, files in os.walk(os.path.join(repo, "src")):
        for name in sorted(files):
            if not name.endswith((".cpp", ".hpp", ".h")):
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, repo).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                content = f.read()
            has_intrin = bool(INTRIN_RE.search(content))
            if rel in SIMD_TUS:
                macro = SIMD_TUS[rel]
                if not has_intrin:
                    failures += 1
                    print(f"FAIL {rel}: registered as a SIMD TU but includes "
                          f"no intrinsics header (update SIMD_TUS if it was "
                          f"de-vectorized)", file=sys.stderr)
                if macro not in content:
                    failures += 1
                    print(f"FAIL {rel}: must guard its intrinsics on "
                          f"defined({macro}) so a flagless build degrades to "
                          f"the portable stub", file=sys.stderr)
            elif has_intrin:
                failures += 1
                offenders.append(rel)
                print(f"FAIL {rel}: intrinsics header outside the dispatch "
                      f"TUs ({', '.join(sorted(SIMD_TUS))}); route the kernel "
                      f"through core/simd_dispatch.hpp instead", file=sys.stderr)
    missing = [tu for tu in SIMD_TUS
               if not os.path.exists(os.path.join(repo, tu))]
    if missing:
        failures += len(missing)
        print(f"FAIL SIMD_TUS entries missing from tree: "
              f"{', '.join(sorted(missing))}", file=sys.stderr)
    print(f"simd containment: intrinsics confined to {len(SIMD_TUS)} "
          f"dispatch TUs, {failures} violation(s)")
    return failures


def check_affinity_containment(repo: str) -> int:
    failures = 0
    tu_path = os.path.join(repo, AFFINITY_TU)
    if not os.path.exists(tu_path):
        print(f"FAIL affinity TU missing from tree: {AFFINITY_TU}",
              file=sys.stderr)
        return 1
    with open(tu_path, encoding="utf-8") as f:
        if not AFFINITY_RE.search(f.read()):
            failures += 1
            print(f"FAIL {AFFINITY_TU}: registered as the affinity TU but "
                  f"makes no affinity syscalls (update AFFINITY_TU if "
                  f"pinning moved)", file=sys.stderr)
    for root, _dirs, files in os.walk(os.path.join(repo, "src")):
        for name in sorted(files):
            if not name.endswith((".cpp", ".hpp", ".h")):
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, repo).replace(os.sep, "/")
            if rel == AFFINITY_TU:
                continue
            with open(path, encoding="utf-8") as f:
                if AFFINITY_RE.search(f.read()):
                    failures += 1
                    print(f"FAIL {rel}: affinity syscall outside "
                          f"{AFFINITY_TU}; go through the util/topology.hpp "
                          f"wrappers so non-Linux builds and NC_TOPOLOGY=off "
                          f"keep working", file=sys.stderr)
    print(f"affinity containment: syscalls confined to {AFFINITY_TU}, "
          f"{failures} violation(s)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=os.getcwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "g++"),
                        help="C++ compiler for the syntax-only checks")
    args = parser.parse_args()
    repo = os.path.abspath(args.repo)
    failures = check_self_containment(args.cxx, repo)
    failures += check_format_gates(repo)
    failures += check_simd_containment(repo)
    failures += check_affinity_containment(repo)
    if failures:
        print(f"check_headers: {failures} failure(s)", file=sys.stderr)
        return 1
    print("check_headers: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
