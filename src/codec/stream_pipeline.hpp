/// \file stream_pipeline.hpp
/// \brief Generic worker-pool streaming stage: the threading skeleton shared
///        by the write-side StreamCompressor and read-side StreamDecompressor.
///
/// The paper's deployment is two-sided: a real-time encoder keeps up with the
/// collision rate at the DAQ, and offline analysis later runs the decoder
/// heads over the stored bitstreams.  Both directions need the same
/// machinery — a bounded intake queue, a pool of workers draining it in
/// batches through some transform, sequence numbering, optional in-order
/// emission, failure containment and idempotent teardown — so that machinery
/// lives here once, parameterized by the batch transform:
///
///   StreamPipeline<In, Out>:  In items -> [BoundedQueue] -> n_workers x
///       transform(batch of In) -> Out items -> sink(seq, Out)
///
/// Concurrency model (identical for every instantiation):
///  * Every accepted item gets a sequence number matching queue (FIFO)
///    order; the sink receives it alongside the payload.  Workers drain the
///    queue in FIFO batches, so the sequence numbers within one batch are
///    contiguous and ascending — the reorder bound below relies on this.
///  * Unordered mode (default): workers invoke the sink as soon as a batch
///    finishes, possibly concurrently — the sink must be thread-safe when
///    `n_workers > 1`.
///  * Ordered mode: outputs pass through a reorder buffer and the sink sees
///    strictly increasing sequence numbers; sink invocations are serialized,
///    so the sink needs no internal locking.  `reorder_capacity` bounds how
///    far ahead of the emit cursor the buffer may grow: when it fills,
///    workers holding later sequence numbers block until the cursor advances
///    (the worker holding the next-to-emit batch always passes, so progress
///    is guaranteed).  The bound is per-batch soft — the passing batch may
///    overshoot by up to `batch_size` entries.
///  * A transform failure (throw, or wrong output count) drops the whole
///    batch into `wedges_failed` without killing the worker (a dead worker
///    turns blocking submits into a deadlock) or stalling the ordered cursor.
///  * `finish()` is idempotent (atomic exchange) and safe to call from any
///    thread, including implicitly via the destructor after an explicit
///    `finish()`.
///
/// Timing: per-worker `active_s` is thread-time spent in transform+sink; the
/// aggregate `elapsed_s` is the union of busy intervals (wall time during
/// which at least one worker was busy), so `throughput_wps()` reflects true
/// parallel throughput rather than summed thread-time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace nc::codec {

/// Thread-safe bounded FIFO.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue; false when the queue is full (backpressure).
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Blocking enqueue; false only when the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Blocking dequeue; false when the queue is closed and drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    cv_space_.notify_one();
    return true;
  }

  /// Blocking batch dequeue: appends 1..max_items items to `out` (blocking
  /// beyond the first element never happens — it takes what is there).
  /// Same terminal contract as pop: returns 0 *only* when the queue is
  /// closed and drained, never as a spurious wakeup, so a 0 return is a
  /// reliable shutdown signal at call sites.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    if (max_items == 0) max_items = 1;  // keep the 0-iff-closed contract
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    std::size_t n = 0;
    while (n < max_items && !queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++n;
    }
    cv_space_.notify_all();
    return n;
  }

  /// Block until the queue has free space or is closed; false when closed.
  /// Space is not reserved: a concurrent producer may claim it first, so
  /// callers combine this with try_push in a retry loop.
  bool wait_for_space() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    return !closed_;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_, cv_space_;
  std::deque<T> queue_;
  bool closed_ = false;
};

/// Pipeline configuration knobs (shared by both stream directions).
struct StreamOptions {
  std::size_t queue_capacity = 64;  ///< intake bound (backpressure threshold)
  std::size_t batch_size = 8;      ///< items per transform pass (Fig. 6)
  std::size_t n_workers = 1;       ///< worker threads draining the queue
  bool ordered = false;            ///< reorder output to submission order
  /// Ordered mode only: max outputs buffered ahead of the emit cursor before
  /// workers block (0 = unbounded).  Bounds memory when one worker stalls on
  /// a slow batch while the others race ahead; soft by up to one batch.
  std::size_t reorder_capacity = 0;
};

/// Per-worker accounting, reported in StreamStats::per_worker.  The counter
/// names keep the write-side vocabulary ("compressed" = items that made it
/// through the transform) so existing consumers read unchanged; for the
/// read-side pipeline they count decoded wedges.
struct WorkerStats {
  std::int64_t wedges_compressed = 0;
  std::int64_t batches = 0;
  std::int64_t payload_bytes = 0;
  double active_s = 0.0;  ///< thread-time spent in transform+sink
};

struct StreamStats {
  std::int64_t wedges_in = 0;        ///< accepted into the queue
  std::int64_t wedges_dropped = 0;   ///< lost: backpressure or submit after close
  std::int64_t wedges_compressed = 0;  ///< made it through the transform
  std::int64_t wedges_failed = 0;    ///< accepted but lost to a transform error
  std::int64_t payload_bytes = 0;
  double elapsed_s = 0.0;  ///< wall time with >=1 worker busy (parallel active time)
  double cpu_s = 0.0;      ///< summed per-worker active time
  std::vector<WorkerStats> per_worker;

  double throughput_wps() const {
    return elapsed_s > 0 ? wedges_compressed / elapsed_s : 0.0;
  }
};

namespace detail {
// Zero sizes are nonsensical (capacity 0 would deadlock blocking submits);
// clamp before the queue is constructed from them.
inline StreamOptions normalized_stream_options(StreamOptions options) {
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.batch_size == 0) options.batch_size = 1;
  if (options.n_workers == 0) options.n_workers = 1;
  return options;
}
}  // namespace detail

/// Generic multi-worker streaming stage: `n_workers` threads drain the input
/// queue in batches of `batch_size` through `transform` (batching is what
/// buys throughput on the encoder/decoder, Fig. 6) and hand every output to
/// the sink.  `StreamCompressor` and `StreamDecompressor` are thin adapters
/// over this class; tests instantiate it directly with synthetic transforms.
template <typename In, typename Out>
class StreamPipeline {
 public:
  /// Sink receiving each output alongside its submission sequence number.
  using SeqSink = std::function<void(std::uint64_t, Out&&)>;
  /// Batch transform: must return exactly one output per input, in input
  /// order.  A throw (or a wrong-sized return) fails the whole batch.
  using BatchFn = std::function<std::vector<Out>(std::vector<In>&&)>;
  /// Per-output byte accounting for StreamStats::payload_bytes (may be null).
  using ByteCounter = std::function<std::int64_t(const Out&)>;

  StreamPipeline(const StreamOptions& options, BatchFn transform,
                 ByteCounter payload_bytes, SeqSink sink)
      : options_(detail::normalized_stream_options(options)),
        transform_(std::move(transform)),
        payload_bytes_(std::move(payload_bytes)),
        sink_(std::move(sink)),
        queue_(options_.queue_capacity) {
    worker_stats_.resize(options_.n_workers);
    workers_.reserve(options_.n_workers);
    for (std::size_t w = 0; w < options_.n_workers; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~StreamPipeline() { (void)finish(); }

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Non-blocking submit with backpressure accounting.
  bool try_submit(In item) {
    // Counters update under the same lock as the push: a concurrent finish()
    // snapshot must never see a processed item missing from wedges_in.
    std::lock_guard<std::mutex> lock(submit_mutex_);
    const bool accepted = queue_.try_push(Item{next_seq_, std::move(item)});
    if (accepted) {
      // Sequence numbers are only consumed by accepted items, so the ordered
      // sink never waits on a gap left by a dropped one.
      ++next_seq_;
      wedges_in_.fetch_add(1, std::memory_order_relaxed);
    } else {
      wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return accepted;
  }

  /// Blocking submit (test/offline use).
  void submit(In item) {
    // Wait for space *outside* submit_mutex_: holding it across a blocking
    // push would stall concurrent try_submit callers (the real-time path)
    // behind an offline producer parked on a full queue.
    while (true) {
      {
        std::lock_guard<std::mutex> lock(submit_mutex_);
        if (queue_.try_push(Item{next_seq_, item})) {
          ++next_seq_;
          wedges_in_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      if (!queue_.wait_for_space()) {
        // Queue closed (submit after finish); the item is lost and must
        // show up in the drop count.
        wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Close the intake, drain the queue, join the workers and return totals
  /// plus the per-worker breakdown.  Idempotent: later calls return the same
  /// processing totals with up-to-date intake/drop counters.
  StreamStats finish() {
    std::lock_guard<std::mutex> lock(finish_mutex_);
    if (!finished_.exchange(true)) {
      queue_.close();
      for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
      }
      merged_.per_worker = worker_stats_;
      for (const auto& ws : worker_stats_) {
        merged_.wedges_compressed += ws.wedges_compressed;
        merged_.payload_bytes += ws.payload_bytes;
        merged_.cpu_s += ws.active_s;
      }
      merged_.elapsed_s = busy_s_;  // workers joined: no interval still open
    }
    StreamStats out = merged_;
    {
      // Snapshot under submit_mutex_: a producer parked between making its
      // item visible (try_push) and bumping wedges_in_ would otherwise let a
      // concurrent finish() report wedges_compressed > wedges_in.
      std::lock_guard<std::mutex> submit_lock(submit_mutex_);
      out.wedges_in = wedges_in_.load(std::memory_order_relaxed);
      out.wedges_dropped = wedges_dropped_.load(std::memory_order_relaxed);
    }
    out.wedges_failed = wedges_failed_.load(std::memory_order_relaxed);
    return out;
  }

  const StreamOptions& options() const { return options_; }

 private:
  /// A queued item tagged with its FIFO sequence number.
  struct Item {
    std::uint64_t seq = 0;
    In value;
  };

  void enter_busy() {
    std::lock_guard<std::mutex> lock(busy_mutex_);
    if (busy_workers_++ == 0) busy_timer_.reset();
  }

  void exit_busy() {
    std::lock_guard<std::mutex> lock(busy_mutex_);
    if (--busy_workers_ == 0) busy_s_ += busy_timer_.elapsed_s();
  }

  /// Ordered mode: block while the reorder buffer is at capacity, unless
  /// this batch can advance the emit cursor (its minimum sequence number is
  /// at or below next_emit_) — that batch must always pass or nothing would
  /// ever drain.  Sequence numbers within a batch are contiguous ascending
  /// (FIFO pop + FIFO numbering), so seqs.front() is the minimum.
  void wait_for_reorder_space_locked(std::unique_lock<std::mutex>& lock,
                                     std::uint64_t min_seq) {
    if (options_.reorder_capacity == 0) return;
    reorder_cv_.wait(lock, [&] {
      return min_seq <= next_emit_ ||
             reorder_.size() < options_.reorder_capacity;
    });
  }

  void emit_batch(const std::vector<std::uint64_t>& seqs,
                  std::vector<Out>&& outputs) {
    if (!options_.ordered) {
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        sink_(seqs[i], std::move(outputs[i]));
      }
      return;
    }
    std::unique_lock<std::mutex> lock(reorder_mutex_);
    wait_for_reorder_space_locked(lock, seqs.front());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      reorder_.emplace(seqs[i], std::move(outputs[i]));
    }
    drain_reorder_locked();
  }

  void skip_seqs(const std::vector<std::uint64_t>& seqs) {
    if (!options_.ordered || seqs.empty()) return;
    std::unique_lock<std::mutex> lock(reorder_mutex_);
    // Skips occupy reorder slots too (they hold the cursor open), so they
    // respect the same capacity bound as real outputs.
    wait_for_reorder_space_locked(lock, seqs.front());
    for (const auto seq : seqs) {
      // Defensive: today callers only skip never-emitted batches, but a seq
      // below the emit cursor would wedge the buffer on a key that can never
      // match next_emit_ again, so keep the guard.
      if (seq >= next_emit_) reorder_.emplace(seq, std::nullopt);
    }
    drain_reorder_locked();
  }

  void drain_reorder_locked() {  ///< caller holds reorder_mutex_
    bool advanced = false;
    while (!reorder_.empty() && reorder_.begin()->first == next_emit_) {
      auto node = reorder_.extract(reorder_.begin());
      // Advance the cursor before invoking the sink: if the sink throws,
      // that item is lost but the stream keeps flowing instead of stalling
      // on a sequence number that was already extracted.
      ++next_emit_;
      advanced = true;
      if (node.mapped().has_value()) {
        try {
          sink_(node.key(), std::move(*node.mapped()));
        } catch (const std::exception& e) {
          // Swallow here: drain runs from worker catch handlers too (via
          // skip_seqs), where a second throw would escape the thread and
          // terminate the process.
          NC_LOG_WARN << "ordered sink failed for item " << node.key() << ": "
                      << e.what();
        }
      }
    }
    // Freed slots / advanced cursor: wake workers parked on the capacity.
    if (advanced && options_.reorder_capacity != 0) reorder_cv_.notify_all();
  }

  void worker_loop(std::size_t worker_index) {
    WorkerStats& ws = worker_stats_[worker_index];
    std::vector<Item> items;
    std::vector<std::uint64_t> seqs;
    std::vector<In> batch;
    items.reserve(options_.batch_size);
    seqs.reserve(options_.batch_size);
    batch.reserve(options_.batch_size);
    while (true) {
      items.clear();
      seqs.clear();
      batch.clear();
      if (queue_.pop_batch(items, options_.batch_size) == 0) break;
      for (auto& item : items) {
        seqs.push_back(item.seq);
        batch.push_back(std::move(item.value));
      }
      enter_busy();
      // Time only the transform+sink work: counting from thread start would
      // fold queue-wait idle into active time and deflate throughput_wps().
      util::Timer timer;
      std::vector<Out> outputs;
      bool transform_ok = true;
      try {
        outputs = transform_(std::move(batch));
        if (outputs.size() != seqs.size()) {
          throw std::runtime_error("batch transform returned " +
                                   std::to_string(outputs.size()) +
                                   " outputs for " +
                                   std::to_string(seqs.size()) + " items");
        }
      } catch (const std::exception& e) {
        // A poisoned batch must not kill the worker (a dead worker turns
        // blocking submits into a deadlock) nor stall the ordered sink.
        transform_ok = false;
        NC_LOG_WARN << "stream worker " << worker_index
                    << ": dropping batch of " << seqs.size()
                    << " items: " << e.what();
        wedges_failed_.fetch_add(static_cast<std::int64_t>(seqs.size()),
                                 std::memory_order_relaxed);
        skip_seqs(seqs);
      }
      if (transform_ok) {
        // The items are processed whatever the sink does with them, so the
        // stats update precedes emission; a sink failure is logged but does
        // not land in wedges_failed (reserved for transform errors).
        std::int64_t bytes = 0;
        if (payload_bytes_) {
          for (const auto& out : outputs) bytes += payload_bytes_(out);
        }
        ws.wedges_compressed += static_cast<std::int64_t>(outputs.size());
        ws.payload_bytes += bytes;
        ++ws.batches;
        try {
          emit_batch(seqs, std::move(outputs));
        } catch (const std::exception& e) {
          // Only the unordered path throws here (the ordered drain swallows
          // sink errors per item); the rest of this batch is lost downstream.
          NC_LOG_WARN << "stream worker " << worker_index << ": sink error, "
                      << seqs.size() << " processed items may be lost "
                      << "downstream: " << e.what();
        }
      }
      ws.active_s += timer.elapsed_s();
      exit_busy();
    }
  }

  StreamOptions options_;
  BatchFn transform_;
  ByteCounter payload_bytes_;
  SeqSink sink_;
  BoundedQueue<Item> queue_;

  // Intake: the mutex makes sequence numbers match queue FIFO order.
  std::mutex submit_mutex_;
  std::uint64_t next_seq_ = 0;
  std::atomic<std::int64_t> wedges_in_{0};
  std::atomic<std::int64_t> wedges_dropped_{0};
  std::atomic<std::int64_t> wedges_failed_{0};

  // Busy-interval union: a clock that runs while >=1 worker is busy.
  std::mutex busy_mutex_;
  int busy_workers_ = 0;
  util::Timer busy_timer_;
  double busy_s_ = 0.0;

  // Ordered-sink reorder buffer.  nullopt marks a failed item whose
  // sequence number must still advance the emit cursor.
  std::mutex reorder_mutex_;
  std::condition_variable reorder_cv_;  ///< capacity waiters (ordered mode)
  std::map<std::uint64_t, std::optional<Out>> reorder_;
  std::uint64_t next_emit_ = 0;

  std::vector<WorkerStats> worker_stats_;
  std::vector<std::thread> workers_;

  std::atomic<bool> finished_{false};
  std::mutex finish_mutex_;
  StreamStats merged_;  ///< worker totals, filled once on first finish()
};

}  // namespace nc::codec
