/// \file stream_pipeline.hpp
/// \brief Generic worker-pool streaming stage: the threading skeleton shared
///        by the write-side StreamCompressor and read-side StreamDecompressor.
///
/// The paper's deployment is two-sided: a real-time encoder keeps up with the
/// collision rate at the DAQ, and offline analysis later runs the decoder
/// heads over the stored bitstreams.  Both directions need the same
/// machinery — a bounded intake, a pool of workers draining it in batches
/// through some transform, sequence numbering, optional in-order emission,
/// failure containment and idempotent teardown — so that machinery lives
/// here once, parameterized by the batch transform:
///
///   StreamPipeline<In, Out>:  In items -> [Intake] -> n_workers x
///       transform(batch of In) -> Out items -> sink(seq, Out)
///
/// The intake layer is pluggable (intake.hpp): `IntakeMode::kSingleQueue` is
/// the original shared BoundedQueue, `kSharded` gives every worker its own
/// bounded shard with batch work-stealing (sharded_queue.hpp), and `kAuto`
/// (the default) picks sharded whenever `n_workers > 1`.
///
/// Concurrency model (identical for every instantiation):
///  * Every accepted item gets a sequence number matching submission (FIFO)
///    order; the sink receives it alongside the payload.  A popped batch is
///    ascending in sequence number (per-source FIFO).  With the single
///    queue the numbers are also contiguous; sharded batches may have gaps
///    (items routed to sibling shards), which the reorder buffer tolerates.
///  * Adaptive batching (`StreamOptions::adaptive_batch`, on by default):
///    each worker sizes its next drain from the current intake depth —
///    toward `batch_size` when the pipeline is backed up (throughput),
///    toward 1 when lightly loaded (latency, and batches spread across
///    workers instead of one worker grabbing the whole trickle).
///  * Unordered mode (default): workers invoke the sink as soon as a batch
///    finishes, possibly concurrently — the sink must be thread-safe when
///    `n_workers > 1`.
///  * Ordered mode: outputs pass through a reorder buffer and the sink sees
///    strictly increasing sequence numbers; sink invocations are serialized,
///    so the sink needs no internal locking.  `reorder_capacity` bounds how
///    far ahead of the emit cursor the buffer may grow: when it fills,
///    workers holding later sequence numbers block until the cursor advances.
///    The bound is per-batch soft — a passing batch may overshoot by up to
///    `batch_size` entries.  Progress guarantee: the worker holding the
///    next-to-emit batch always passes, and if the next-to-emit item is
///    still in the intake while every other worker is parked on the bound,
///    the last arriving worker passes anyway (gate escape) and goes back to
///    pop — the sharded intake's `kOldestHead` steal policy then steers it
///    straight to that item, so the overshoot stays small.
///  * A transform failure (throw, or wrong output count) drops the whole
///    batch into `wedges_failed` without killing the worker (a dead worker
///    turns blocking submits into a deadlock) or stalling the ordered cursor.
///  * Spill tier (`StreamOptions::spill_dir`, off by default): when a submit
///    finds the intake full — and, with `spill_deadline_s`, space has not
///    appeared within the deadline — the item is serialized raw into an
///    append-only on-disk log (spill.hpp) instead of being dropped, keeping
///    its already-reserved sequence number.  A drainer thread replays
///    spilled items back into the intake (oldest first — spill appends are
///    serialized under the submit mutex, so spill order is seq order)
///    whenever depth falls to `spill_low_water`, and `finish()` replays
///    everything left before closing the intake, so backpressure is
///    lossless: `wedges_dropped` stays 0 unless the spill itself fails
///    (unwritable disk, `spill_max_bytes` quota — the disk-full containment
///    path) or the pipeline is already finishing.  Replayed items re-enter
///    the intake out of arrival order relative to fresh submissions; the
///    ordered mode tolerates that (the reorder gate keys on the true batch
///    minimum, and the gate escape keeps a bounded buffer live while the
///    next-to-emit item is still on disk), at the cost of reorder-buffer
///    overshoot proportional to the spilled backlog in the worst case.
///  * Elastic pool (`StreamOptions::elastic`, off by default): the pipeline
///    spawns `max_workers` threads up front and varies how many are *live*
///    between `min_workers` and `max_workers` — surplus workers park on a
///    condvar between batches, so scale-up is a notify (microseconds), not
///    a thread spawn.  A controller thread (autoscale.hpp holds the pure
///    decision policy) samples intake depth, busy fraction and spill
///    activity every `scale_interval_s`; `scale_interval_s == 0` is manual
///    mode, driven by `set_live_workers()`.  Parked workers leave the
///    ordered gate's `workers_alive_` count (the same protocol as worker
///    exit), so the gate escape and the spill drainer stay correct while
///    the live set changes.  With `pin_workers`, workers are pinned
///    node-major over the allowed CPU set (util/topology.hpp) and intake
///    shards are homed on their owner's NUMA node so depth-based steals
///    prefer same-node shards; unsupported platforms degrade to a no-op.
///  * `finish()` is idempotent (atomic exchange) and safe to call from any
///    thread, including implicitly via the destructor after an explicit
///    `finish()`.
///
/// Timing: per-worker `active_s` is thread-time spent in transform+sink; the
/// aggregate `elapsed_s` is the union of busy intervals (wall time during
/// which at least one worker was busy), so `throughput_wps()` reflects true
/// parallel throughput rather than summed thread-time.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "codec/autoscale.hpp"
#include "codec/intake.hpp"
#include "codec/sharded_queue.hpp"
#include "codec/spill.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

namespace nc::codec {

/// Pipeline configuration knobs (shared by both stream directions).
struct StreamOptions {
  std::size_t queue_capacity = 64;  ///< intake bound (backpressure threshold)
  std::size_t batch_size = 8;      ///< max items per transform pass (Fig. 6)
  std::size_t n_workers = 1;       ///< worker threads draining the intake
  bool ordered = false;            ///< reorder output to submission order
  /// Ordered mode only: max outputs buffered ahead of the emit cursor before
  /// workers block (0 = unbounded).  Bounds memory when one worker stalls on
  /// a slow batch while the others race ahead; soft by up to one batch.
  std::size_t reorder_capacity = 0;
  /// Intake implementation; kAuto = sharded iff n_workers > 1.
  IntakeMode intake = IntakeMode::kAuto;
  /// Sharded intake only: shard count (0 = one shard per worker).  The
  /// aggregate capacity is queue_capacity rounded up to a shard multiple.
  std::size_t n_shards = 0;
  /// Scale each worker's drain batch with intake depth: up to batch_size
  /// when backed up, down to 1 when lightly loaded (bounded latency).
  bool adaptive_batch = true;
  /// Spill tier: when non-empty, submits that would drop on a full intake
  /// are serialized into segment files under this directory instead
  /// (lossless backpressure) and replayed once depth falls back to
  /// spill_low_water.  Requires a SpillCodec at pipeline construction.
  /// Give each pipeline its own directory (segments are instance-prefixed,
  /// so sharing one merely mixes unrelated files).
  std::string spill_dir;
  /// Spill enabled: how long a submit may wait for intake space before
  /// diverting to disk (0 = spill immediately).  Applies to try_submit and
  /// submit alike — with a spill tier, even the blocking submit never
  /// blocks past the deadline.
  double spill_deadline_s = 0.0;
  /// Replay threshold: the drainer re-injects spilled items whenever intake
  /// depth is at or below this (0 = half the effective intake capacity).
  std::size_t spill_low_water = 0;
  /// Cap on on-disk spill bytes (0 = unbounded).  An append that would
  /// exceed it fails that wedge into wedges_dropped — the disk-full
  /// containment path — without poisoning the tier.
  std::size_t spill_max_bytes = 0;
  /// Keep fully-replayed spill segments on disk after finish() (audit /
  /// replay-after-close via SpillReader) instead of deleting as they drain.
  bool spill_keep = false;
  /// Codec id stamped into each spill segment header (0 = untagged) so a
  /// kept log replayed under a different codec is rejected at open instead
  /// of failing per-wedge downstream.  StreamCompressor/StreamDecompressor
  /// fill this from their codec automatically.
  std::uint32_t spill_codec_id = 0;

  // --- Elastic, topology-aware pool (autoscale.hpp / util/topology.hpp) ---
  /// Autoscale the live worker count in [min_workers, max_workers] from
  /// observed load.  The pipeline spawns max_workers threads up front and
  /// parks surplus ones on a condvar (scale-up is a notify, not a thread
  /// spawn); n_workers becomes the *initial* live count.  Off (default):
  /// the pool is the static n_workers it always was.
  bool elastic = false;
  std::size_t min_workers = 0;  ///< elastic floor (0 = 1)
  std::size_t max_workers = 0;  ///< elastic ceiling / pool size (0 = n_workers)
  /// Controller sampling period.  0 with elastic = manual mode: no
  /// controller thread runs and scaling is driven via set_live_workers()
  /// (deterministic tests, external controllers).
  double scale_interval_s = 0.02;
  std::size_t scale_window = 8;    ///< samples per scaling decision
  std::size_t scale_cooldown = 4;  ///< hold ticks after a decision (hysteresis)
  double scale_up_depth = 0.5;     ///< avg depth fraction triggering scale-up
  double scale_down_busy = 0.25;   ///< avg busy fraction allowing scale-down
  /// Pin each worker to a core (node-major over the allowed CPU set) and
  /// home each intake shard on its owner's NUMA node, so steals prefer
  /// same-node shards.  Graceful no-op where affinity is unsupported (or
  /// NC_TOPOLOGY=off): workers run unpinned, placement stays advisory.
  bool pin_workers = false;
  /// Observability: invoked once per scaling decision (from the controller
  /// thread, or the set_live_workers caller).  Must not call back into
  /// finish().
  ScaleEventHook on_scale_event;
};

/// Per-worker accounting, reported in StreamStats::per_worker.  The counter
/// names keep the write-side vocabulary ("compressed" = items that made it
/// through the transform) so existing consumers read unchanged; for the
/// read-side pipeline they count decoded wedges.
struct WorkerStats {
  std::int64_t wedges_compressed = 0;
  std::int64_t batches = 0;
  std::int64_t batches_stolen = 0;  ///< pops served from a sibling's shard
  std::int64_t payload_bytes = 0;
  double active_s = 0.0;  ///< thread-time spent in transform+sink
};

struct StreamStats {
  std::int64_t wedges_in = 0;        ///< accepted into the intake
  std::int64_t wedges_dropped = 0;   ///< lost: backpressure or submit after close
  std::int64_t wedges_compressed = 0;  ///< made it through the transform
  std::int64_t wedges_failed = 0;    ///< accepted but lost to a transform error
  std::int64_t payload_bytes = 0;
  std::int64_t batches_stolen = 0;   ///< pops served off-shard for a dry shard
  std::int64_t wedges_spilled = 0;   ///< diverted to the spill tier on a full intake
  std::int64_t wedges_replayed = 0;  ///< spilled wedges re-injected into the intake
  std::int64_t spill_bytes_hwm = 0;  ///< deepest the on-disk spill tier ever got
  std::int64_t queue_depth_hwm = 0;  ///< deepest the intake ever got
  /// Effective intake capacity: queue_capacity, rounded up to a shard
  /// multiple by the sharded intake (the bound queue_depth_hwm runs under).
  std::int64_t queue_capacity = 0;
  double elapsed_s = 0.0;  ///< wall time with >=1 worker busy (parallel active time)
  double cpu_s = 0.0;      ///< summed per-worker active time
  // Elastic pool: scaling decisions as first-class observability.  In a
  // static pool hwm == lwm == n_workers, events are 0 and avg is exact.
  std::int64_t scale_up_events = 0;    ///< live target raised (incl. spill jumps)
  std::int64_t scale_down_events = 0;  ///< live target lowered
  std::int64_t workers_hwm = 0;        ///< highest live worker target reached
  std::int64_t workers_lwm = 0;        ///< lowest live worker target reached
  std::int64_t workers_pinned = 0;     ///< workers whose core pin succeeded
  /// Time-weighted mean of the live worker target over the pipeline's
  /// lifetime (construction to finish) — the quiet-phase CPU saving, as a
  /// number.
  double avg_live_workers = 0.0;
  std::vector<WorkerStats> per_worker;

  double throughput_wps() const {
    return elapsed_s > 0 ? wedges_compressed / elapsed_s : 0.0;
  }
};

namespace detail {
// Zero sizes are nonsensical (capacity 0 would deadlock blocking submits);
// clamp before the intake is constructed from them, and resolve kAuto so
// options() reports the mode actually running.
inline StreamOptions normalized_stream_options(StreamOptions options) {
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.batch_size == 0) options.batch_size = 1;
  if (options.n_workers == 0) options.n_workers = 1;
  if (options.elastic) {
    if (options.max_workers == 0) options.max_workers = options.n_workers;
    if (options.min_workers == 0) options.min_workers = 1;
    options.min_workers = std::min(options.min_workers, options.max_workers);
    // n_workers is the initial live count, inside the elastic range.
    options.n_workers = std::clamp(options.n_workers, options.min_workers,
                                   options.max_workers);
  } else {
    // Static pool: the range collapses to a point so every consumer of
    // min/max (pool sizing, clamps, stats) reads one consistent story.
    options.min_workers = options.n_workers;
    options.max_workers = options.n_workers;
  }
  if (options.intake == IntakeMode::kAuto) {
    // Keyed on the pool ceiling, not the initial live count: an elastic
    // pipeline born with one live worker still scales to max_workers.
    options.intake = options.max_workers > 1 ? IntakeMode::kSharded
                                             : IntakeMode::kSingleQueue;
  }
  if (options.n_shards == 0) options.n_shards = options.max_workers;
  return options;
}

template <typename T>
std::unique_ptr<Intake<T>> make_intake(const StreamOptions& options) {
  if (options.intake == IntakeMode::kSharded) {
    // Ordered pipelines with a bounded reorder buffer pop oldest-first so
    // the buffer stays shallow and the gate escape resolves quickly;
    // everything else steals by depth for throughput.
    const StealPolicy policy = (options.ordered && options.reorder_capacity > 0)
                                   ? StealPolicy::kOldestHead
                                   : StealPolicy::kDeepest;
    return std::make_unique<ShardedQueue<T>>(options.n_shards,
                                             options.queue_capacity, policy);
  }
  return std::make_unique<SingleQueueIntake<T>>(options.queue_capacity);
}
}  // namespace detail

/// Generic multi-worker streaming stage: `n_workers` threads drain the
/// intake in batches of up to `batch_size` through `transform` (batching is
/// what buys throughput on the encoder/decoder, Fig. 6) and hand every
/// output to the sink.  `StreamCompressor` and `StreamDecompressor` are thin
/// adapters over this class; tests instantiate it directly with synthetic
/// transforms.
template <typename In, typename Out>
class StreamPipeline {
 public:
  /// Sink receiving each output alongside its submission sequence number.
  using SeqSink = std::function<void(std::uint64_t, Out&&)>;
  /// Batch transform: must return exactly one output per input, in input
  /// order.  A throw (or a wrong-sized return) fails the whole batch.
  using BatchFn = std::function<std::vector<Out>(std::vector<In>&&)>;
  /// Per-output byte accounting for StreamStats::payload_bytes (may be null).
  using ByteCounter = std::function<std::int64_t(const Out&)>;

  /// Raw serializer pair for the spill tier: encode turns an input item
  /// into the record payload SpillLog stores, decode inverts it on replay.
  /// Only consulted when StreamOptions::spill_dir is set.
  struct SpillCodec {
    std::function<std::string(const In&)> encode;
    std::function<In(const std::string&)> decode;
    explicit operator bool() const {
      return static_cast<bool>(encode) && static_cast<bool>(decode);
    }
  };

  StreamPipeline(const StreamOptions& options, BatchFn transform,
                 ByteCounter payload_bytes, SeqSink sink,
                 SpillCodec spill_codec = {})
      : options_(detail::normalized_stream_options(options)),
        transform_(std::move(transform)),
        payload_bytes_(std::move(payload_bytes)),
        sink_(std::move(sink)),
        spill_codec_(std::move(spill_codec)),
        intake_(detail::make_intake<Item>(options_)),
        workers_alive_(options_.max_workers) {
    // Stand the spill tier up before any thread exists: a SpillLog failure
    // (unwritable dir) must abort construction cleanly, not orphan workers.
    if (!options_.spill_dir.empty()) {
      if (!spill_codec_) {
        throw std::invalid_argument(
            "StreamPipeline: spill_dir set but no spill codec provided");
      }
      SpillOptions sopt;
      sopt.dir = options_.spill_dir;
      sopt.max_bytes = options_.spill_max_bytes;
      sopt.keep = options_.spill_keep;
      sopt.codec_id = options_.spill_codec_id;
      spill_ = std::make_unique<SpillLog>(sopt);
      spill_low_water_ =
          options_.spill_low_water != 0
              ? std::min(options_.spill_low_water, intake_->capacity())
              : intake_->capacity() / 2;
      drainer_ = std::thread([this] { drainer_loop(); });
    }
    // Topology plan (before any worker exists: placement_ and shard homes
    // are written once here and read without synchronization afterwards).
    sharded_ = dynamic_cast<ShardedQueue<Item>*>(intake_.get());
    if (options_.pin_workers) {
      const util::Topology& topo = util::system_topology();
      if (topo.affinity_supported && !topo.cpus.empty()) {
        // Claim a process-wide contiguous run of core slots (node-major):
        // the always-live low-index workers land on one node first, so a
        // mostly scaled-down elastic pool stays NUMA-compact, and two
        // pipelines built in one process get disjoint cores instead of both
        // pinning worker 0 to cpu 0.
        placement_ = util::claim_cpu_slots(options_.max_workers);
        if (sharded_ && !placement_.empty()) {
          // Home each shard on its owner slot's node so kDeepest steals can
          // prefer same-node shards.
          std::vector<int> nodes(options_.n_shards);
          for (std::size_t s = 0; s < nodes.size(); ++s) {
            nodes[s] = placement_[s % placement_.size()].node;
          }
          sharded_->set_shard_nodes(std::move(nodes));
        }
      }
    }
    intake_->set_active_workers(options_.n_workers);
    // The pool is always max_workers threads; elasticity is which of them
    // are live (the rest park on scale_cv_).  A static pool has
    // max_workers == n_workers, so nothing changes for it.
    worker_stats_.resize(options_.max_workers);
    workers_.reserve(options_.max_workers);
    for (std::size_t w = 0; w < options_.max_workers; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
    if (options_.elastic && options_.scale_interval_s > 0) {
      controller_ = std::thread([this] { controller_loop(); });
    }
  }

  ~StreamPipeline() { (void)finish(); }

  StreamPipeline(const StreamPipeline&) = delete;
  StreamPipeline& operator=(const StreamPipeline&) = delete;

  /// Non-blocking submit with backpressure accounting.  With the spill
  /// tier enabled, a full intake diverts the item to disk (after waiting up
  /// to spill_deadline_s for space) instead of dropping it, so `false`
  /// means the item is truly lost: spill failure or submit after finish.
  bool try_submit(In item) {
    // Counters update under the same lock as the push: a concurrent finish()
    // snapshot must never see a processed item missing from wedges_in.  The
    // lock also serializes pushes, so intake order matches seq order — the
    // property the ordered mode's progress argument rests on.
    {
      std::lock_guard<std::mutex> lock(submit_mutex_);
      if (!spill_) {
        const bool accepted = push_locked(item);
        if (!accepted) wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
        return accepted;
      }
      // A failed push leaves `item` intact for the spill path (try_push
      // moves only on success).
      if (push_locked(item)) return true;
    }
    return spill_or_drop(std::move(item));
  }

  /// Blocking submit (test/offline use).  With the spill tier enabled this
  /// blocks at most spill_deadline_s before spilling — disk absorbs the
  /// burst instead of the producer's latency.
  void submit(In item) {
    if (spill_) {
      (void)try_submit(std::move(item));
      return;
    }
    // Wait for space *outside* submit_mutex_: holding it across a blocking
    // push would stall concurrent try_submit callers (the real-time path)
    // behind an offline producer parked on a full intake.
    while (true) {
      {
        std::lock_guard<std::mutex> lock(submit_mutex_);
        if (push_locked(item)) return;
      }
      if (!intake_->wait_for_space()) {
        // Intake closed (submit after finish); the item is lost and must
        // show up in the drop count.
        wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Close the intake, drain it, join the workers and return totals plus
  /// the per-worker breakdown.  Idempotent: later calls return the same
  /// processing totals with up-to-date intake/drop counters.
  StreamStats finish() {
    std::lock_guard<std::mutex> lock(finish_mutex_);
    if (!finished_.exchange(true)) {
      // Quiesce scaling first: close the integral, stop the controller, and
      // wake parked workers so they rejoin the pool and help drain the
      // intake (pop_batch returning 0 is what ends them, same as always).
      {
        std::lock_guard<std::mutex> scale_lock(scale_mutex_);
        scale_closing_.store(true, std::memory_order_release);
        integrate_live_locked();
      }
      ctrl_cv_.notify_all();
      scale_cv_.notify_all();
      if (controller_.joinable()) controller_.join();
      if (spill_) {
        // Seal the spill tier before draining it: once spill_closed_ is
        // observed (under submit_mutex_, mutually exclusive with every
        // append), a late submit drops instead of spilling into a log
        // nobody will replay.  Only then may the drainer's final sweep
        // treat "pending == 0" as terminal.
        {
          std::lock_guard<std::mutex> submit_lock(submit_mutex_);
          spill_closed_ = true;
        }
        {
          std::lock_guard<std::mutex> drainer_lock(drainer_mutex_);
          final_drain_ = true;
        }
        drainer_cv_.notify_all();
        if (drainer_.joinable()) drainer_.join();
        merged_.spill_bytes_hwm = static_cast<std::int64_t>(spill_->bytes_hwm());
        spill_->close();
      }
      intake_->close();
      for (auto& worker : workers_) {
        if (worker.joinable()) worker.join();
      }
      merged_.per_worker = worker_stats_;
      for (const auto& ws : worker_stats_) {
        merged_.wedges_compressed += ws.wedges_compressed;
        merged_.payload_bytes += ws.payload_bytes;
        merged_.batches_stolen += ws.batches_stolen;
        merged_.cpu_s += ws.active_s;
      }
      merged_.elapsed_s = busy_s_;  // workers joined: no interval still open
      merged_.queue_depth_hwm =
          static_cast<std::int64_t>(intake_->depth_high_water());
      merged_.queue_capacity = static_cast<std::int64_t>(intake_->capacity());
      {
        // Writers are quiescent (controller joined, set_live_workers bails
        // on scale_closing_); the lock is belt-and-braces for a racing call
        // that entered before the seal.
        std::lock_guard<std::mutex> scale_lock(scale_mutex_);
        merged_.scale_up_events = scale_up_events_;
        merged_.scale_down_events = scale_down_events_;
        merged_.workers_hwm = static_cast<std::int64_t>(workers_hwm_);
        merged_.workers_lwm = static_cast<std::int64_t>(workers_lwm_);
        merged_.avg_live_workers =
            live_mark_s_ > 0
                ? live_integral_ / live_mark_s_
                : static_cast<double>(
                      live_target_.load(std::memory_order_relaxed));
      }
      merged_.workers_pinned = workers_pinned_.load(std::memory_order_relaxed);
    }
    StreamStats out = merged_;
    {
      // Snapshot under submit_mutex_: a producer parked between making its
      // item visible (try_push) and bumping wedges_in_ would otherwise let a
      // concurrent finish() report wedges_compressed > wedges_in.
      std::lock_guard<std::mutex> submit_lock(submit_mutex_);
      out.wedges_in = wedges_in_.load(std::memory_order_relaxed);
      out.wedges_dropped = wedges_dropped_.load(std::memory_order_relaxed);
      out.wedges_spilled = wedges_spilled_.load(std::memory_order_relaxed);
    }
    out.wedges_failed = wedges_failed_.load(std::memory_order_relaxed);
    out.wedges_replayed = wedges_replayed_.load(std::memory_order_relaxed);
    return out;
  }

  const StreamOptions& options() const { return options_; }

  /// Set the live worker target.  Clamps to [min_workers, max_workers]
  /// (a static pool's range is a point, so this is a no-op there), wakes
  /// parked workers on scale-up, re-routes fresh intake pushes onto live
  /// workers' shards, and fires on_scale_event.  Safe from any thread —
  /// this is both the controller's apply path and the manual scaling entry
  /// point when scale_interval_s == 0.  Returns the applied target; a call
  /// racing finish() leaves the target unchanged.
  std::size_t set_live_workers(std::size_t n, const char* reason = "manual") {
    n = std::clamp(n, options_.min_workers, options_.max_workers);
    std::size_t prev;
    {
      std::lock_guard<std::mutex> lock(scale_mutex_);
      if (scale_closing_.load(std::memory_order_relaxed)) {
        return live_target_.load(std::memory_order_relaxed);
      }
      prev = live_target_.load(std::memory_order_relaxed);
      if (n == prev) return prev;
      integrate_live_locked();
      live_target_.store(n, std::memory_order_release);
      if (n > prev) {
        ++scale_up_events_;
        workers_hwm_ = std::max(workers_hwm_, n);
      } else {
        ++scale_down_events_;
        workers_lwm_ = std::min(workers_lwm_, n);
      }
    }
    scale_cv_.notify_all();  // scale-up: wake parked workers
    intake_->set_active_workers(n);
    if (options_.on_scale_event) {
      ScaleEvent event;
      event.t_s = lifetime_.elapsed_s();
      event.from = prev;
      event.to = n;
      event.reason = reason;
      options_.on_scale_event(event);
    }
    return n;
  }

  /// Current live worker target (surplus parked workers excluded).
  std::size_t live_workers() const {
    return live_target_.load(std::memory_order_relaxed);
  }

  /// Per-worker-slot core placement when pinning is active; empty when
  /// pin_workers is off, affinity is unsupported, or NC_TOPOLOGY=off.
  const std::vector<util::CpuInfo>& placement() const { return placement_; }

  // --- Live load observability (lock-free monitoring; values are instant
  // snapshots and may be stale by one operation) ------------------------
  /// Wedges diverted to the spill tier so far.
  std::int64_t wedges_spilled() const {
    return wedges_spilled_.load(std::memory_order_relaxed);
  }
  /// Spilled records written but not yet replayed (0 without a spill tier).
  std::size_t spill_pending() const { return spill_ ? spill_->pending() : 0; }
  /// Bytes currently held in spill segment files (0 without a spill tier).
  std::size_t spill_bytes_on_disk() const {
    return spill_ ? spill_->bytes_on_disk() : 0;
  }
  /// Items queued at the intake right now.
  std::size_t intake_depth() const { return intake_->size(); }
  /// The intake's effective capacity (sharding may round it up).
  std::size_t intake_capacity() const { return intake_->capacity(); }

 private:
  /// A queued item tagged with its FIFO sequence number.
  struct Item {
    std::uint64_t seq = 0;
    In value;
  };

  /// Push under submit_mutex_ (caller holds it); true when accepted.  The
  /// item is moved into the intake on success and restored on failure —
  /// no deep copy on either path, so retry loops (blocking submit, the
  /// spill deadline wait) and the spill fallback stay cheap.
  bool push_locked(In& item) {
    Item queued{next_seq_, std::move(item)};
    if (!intake_->try_push(std::move(queued))) {
      item = std::move(queued.value);  // failed push left `queued` intact
      return false;
    }
    ++next_seq_;
    wedges_in_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Slow path of a spill-enabled submit whose first push failed: wait up
  /// to the deadline for intake space, then serialize to the spill log.
  /// Returns false only when the item is truly lost (counted dropped).
  bool spill_or_drop(In&& item) {
    using clock = std::chrono::steady_clock;
    if (options_.spill_deadline_s > 0) {
      const auto deadline =
          clock::now() + std::chrono::duration_cast<clock::duration>(
                             std::chrono::duration<double>(
                                 options_.spill_deadline_s));
      while (true) {
        const auto now = clock::now();
        if (now >= deadline) break;
        const SpaceWait wait = intake_->wait_for_space_for(
            std::chrono::duration_cast<std::chrono::nanoseconds>(deadline -
                                                                 now));
        if (wait == SpaceWait::kClosed) break;  // finishing: drop below
        std::lock_guard<std::mutex> lock(submit_mutex_);
        if (push_locked(item)) return true;
        // kTimeout still retries the push once (space may have appeared
        // between the wait expiring and the lock), then falls out.
        if (wait == SpaceWait::kTimeout) break;
      }
    }
    // Serialize outside submit_mutex_ — encoding is the CPU-heavy part and
    // must not stall concurrent real-time submitters.
    std::string bytes;
    try {
      bytes = spill_codec_.encode(item);
    } catch (const std::exception& e) {
      NC_LOG_WARN << "spill encode failed, wedge dropped: " << e.what();
      wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    std::lock_guard<std::mutex> lock(submit_mutex_);
    // Late space beats disk; also re-checked here because the deadline wait
    // ran unlocked.
    if (push_locked(item)) return true;
    if (spill_closed_) {
      // finish() already sealed the tier: a spilled record would never be
      // replayed, so this is a drop, exactly like submit-after-close.
      wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    try {
      // Appends run under submit_mutex_ — deliberately, although that puts
      // a disk write on the overflow path of concurrent submitters: the
      // append must be atomic with the spill_closed_ check above (a record
      // landing after finish()'s final drain sweep would be silently lost)
      // and with seq consumption (consumed only on success, so a failed
      // append leaves no gap for the ordered cursor to hang on).  It also
      // makes record order seq order, keeping replay oldest-first.  Only
      // the pre-encoded bytes are written here; the CPU-heavy encode ran
      // outside the lock.
      spill_->append(next_seq_, bytes);
    } catch (const util::SerializeError& e) {
      NC_LOG_WARN << "spill append failed, wedge dropped: " << e.what();
      wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ++next_seq_;
    wedges_in_.fetch_add(1, std::memory_order_relaxed);
    wedges_spilled_.fetch_add(1, std::memory_order_relaxed);
    {
      // Notify under drainer_mutex_: an idle drainer waits indefinitely,
      // so this wakeup must not race past its pending-count check.
      std::lock_guard<std::mutex> drainer_lock(drainer_mutex_);
      drainer_cv_.notify_all();
    }
    return true;
  }

  /// True when the drainer should replay now: something is pending and
  /// either the pipeline is finishing or the intake has drained to the
  /// low-water mark.
  bool should_replay_locked() const {  ///< caller holds drainer_mutex_
    return spill_->pending() > 0 &&
           (final_drain_ || intake_->size() <= spill_low_water_);
  }

  /// Spill drainer: with nothing pending it parks indefinitely (a spill
  /// append or finish() wakes it — both notify under drainer_mutex_, so
  /// the wakeup cannot slip between the pending check and the wait); with
  /// a backlog it polls on a 1 ms tick, because workers draining the
  /// intake past the low-water mark emit no push-side signal.  Exits once
  /// finish() has sealed the tier and the backlog is gone.
  void drainer_loop() {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(drainer_mutex_);
        if (final_drain_ && spill_->pending() == 0) return;
        if (!should_replay_locked()) {
          if (spill_->pending() == 0) {
            drainer_cv_.wait(lock, [&] {
              return final_drain_ || spill_->pending() > 0;
            });
          } else {
            drainer_cv_.wait_for(lock, std::chrono::milliseconds(1));
          }
          continue;
        }
      }
      replay_one();
    }
  }

  /// Re-inject the oldest spilled item into the intake under its original
  /// sequence number.  A record that fails to read back or decode is
  /// accounted like a transform failure — counted and, in ordered mode,
  /// skipped — so a corrupt spill can never wedge the emit cursor.
  void replay_one() {
    const auto rec = spill_->pop();
    if (!rec) return;
    if (!rec->ok) {
      NC_LOG_WARN << "spill record for item " << rec->seq
                  << " unreadable, counted as failed";
      fail_replayed(rec->seq);
      return;
    }
    In value;
    try {
      value = spill_codec_.decode(rec->payload);
    } catch (const std::exception& e) {
      NC_LOG_WARN << "spill decode failed for item " << rec->seq << ": "
                  << e.what();
      fail_replayed(rec->seq);
      return;
    }
    // The intake only closes after this thread is joined, so the wait can
    // fail only on a logic error upstream; treat it like a lost record
    // rather than hanging or leaking the seq.  A failed try_push leaves
    // `queued` intact, so the retry loop never re-reads or copies.
    Item queued{rec->seq, std::move(value)};
    while (!intake_->try_push(std::move(queued))) {
      if (!intake_->wait_for_space()) {
        fail_replayed(rec->seq);
        return;
      }
    }
    wedges_replayed_.fetch_add(1, std::memory_order_relaxed);
  }

  void fail_replayed(std::uint64_t seq) {
    wedges_failed_.fetch_add(1, std::memory_order_relaxed);
    skip_seqs({seq});
  }

  void enter_busy() {
    // busy_count_ mirrors busy_workers_ lock-free for the autoscale
    // controller, which must never contend on the workers' hot-path mutex.
    busy_count_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(busy_mutex_);
    if (busy_workers_++ == 0) busy_timer_.reset();
  }

  void exit_busy() {
    busy_count_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(busy_mutex_);
    if (--busy_workers_ == 0) busy_s_ += busy_timer_.elapsed_s();
  }

  /// Park this worker until the live target includes its index again (or
  /// shutdown).  A parked worker leaves workers_alive_ under reorder_mutex_
  /// — the same protocol as worker exit — so the ordered gate escape keeps
  /// counting only workers that can actually pop; without that, a
  /// scale-down with a full reorder buffer would deadlock the gate waiting
  /// for a popper that is asleep.
  void park_for_scale(std::size_t worker_index) {
    {
      std::lock_guard<std::mutex> lock(reorder_mutex_);
      --workers_alive_;
    }
    reorder_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(scale_mutex_);
      scale_cv_.wait(lock, [&] {
        return scale_closing_.load(std::memory_order_relaxed) ||
               worker_index < live_target_.load(std::memory_order_relaxed);
      });
    }
    {
      std::lock_guard<std::mutex> lock(reorder_mutex_);
      ++workers_alive_;
    }
  }

  /// Elastic controller thread: the thin impure driver around the pure
  /// AutoscaleController — samples real counters every scale_interval_s
  /// and applies the returned target.  finish() joins this thread first,
  /// so scaling is quiescent before any teardown step.
  void controller_loop() {
    AutoscaleConfig cfg;
    cfg.min_workers = options_.min_workers;
    cfg.max_workers = options_.max_workers;
    cfg.window = options_.scale_window;
    cfg.cooldown = options_.scale_cooldown;
    cfg.up_depth = options_.scale_up_depth;
    cfg.down_busy = options_.scale_down_busy;
    AutoscaleController ctl(cfg, live_target_.load(std::memory_order_relaxed));
    const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(options_.scale_interval_s));
    std::int64_t spilled_seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(scale_mutex_);
        if (ctrl_cv_.wait_for(lock, interval, [&] {
              return scale_closing_.load(std::memory_order_relaxed);
            })) {
          return;
        }
      }
      AutoscaleSample sample;
      const double capacity = static_cast<double>(intake_->capacity());
      sample.depth_fraction =
          capacity > 0 ? static_cast<double>(intake_->size()) / capacity : 0.0;
      const double live =
          static_cast<double>(live_target_.load(std::memory_order_relaxed));
      sample.busy_fraction =
          live > 0
              ? static_cast<double>(busy_count_.load(std::memory_order_relaxed)) /
                    live
              : 0.0;
      // "Spilling" = the tier grew since last tick OR still holds a backlog
      // (replay pressure keeps the intake full even with no fresh spills).
      const std::int64_t spilled =
          wedges_spilled_.load(std::memory_order_relaxed);
      sample.spilling =
          spilled != spilled_seen || (spill_ && spill_->pending() > 0);
      spilled_seen = spilled;
      const std::size_t target = ctl.observe(sample);
      if (target != live_target_.load(std::memory_order_relaxed)) {
        set_live_workers(target, ctl.last_reason());
      }
    }
  }

  /// Ordered mode: block while the reorder buffer is at capacity, unless
  /// this batch can advance the emit cursor (its minimum sequence number is
  /// at or below next_emit_) — that batch must always pass or nothing would
  /// ever drain.  Without the spill tier a batch's sequence numbers are
  /// ascending (FIFO pop within its source shard) and seqs.front() is the
  /// minimum; a replayed spill item re-enters the intake with an *older*
  /// seq than its shard neighbours, so callers pass the true minimum.
  ///
  /// Gate escape: with a sharded intake, pops are not globally FIFO, so the
  /// next-to-emit item can still sit in a shard while every live worker
  /// holds a later batch — without an escape that is a deadlock (everyone
  /// parked here, nobody left to pop it).  The last free worker therefore
  /// passes the gate anyway (detected as gate_waiters_ == workers_alive_ at
  /// wait entry: nobody else can pop), overshooting the bound by its batch,
  /// and returns to the intake — where the kOldestHead steal policy sends
  /// it to the oldest pending item, i.e. toward next_emit_.
  void wait_for_reorder_space_locked(std::unique_lock<std::mutex>& lock,
                                     std::uint64_t min_seq) {
    if (options_.reorder_capacity == 0) return;
    ++gate_waiters_;
    reorder_cv_.wait(lock, [&] {
      return min_seq <= next_emit_ ||
             reorder_.size() < options_.reorder_capacity ||
             gate_waiters_ >= workers_alive_;
    });
    --gate_waiters_;
  }

  void emit_batch(const std::vector<std::uint64_t>& seqs,
                  std::vector<Out>&& outputs) {
    if (!options_.ordered) {
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        sink_(seqs[i], std::move(outputs[i]));
      }
      return;
    }
    std::unique_lock<std::mutex> lock(reorder_mutex_);
    wait_for_reorder_space_locked(lock,
                                  *std::min_element(seqs.begin(), seqs.end()));
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      reorder_.emplace(seqs[i], std::move(outputs[i]));
    }
    drain_reorder_locked();
  }

  void skip_seqs(const std::vector<std::uint64_t>& seqs) {
    if (!options_.ordered || seqs.empty()) return;
    std::unique_lock<std::mutex> lock(reorder_mutex_);
    // Skips occupy reorder slots too (they hold the cursor open), so they
    // respect the same capacity bound as real outputs.
    wait_for_reorder_space_locked(lock,
                                  *std::min_element(seqs.begin(), seqs.end()));
    for (const auto seq : seqs) {
      // Defensive: today callers only skip never-emitted batches, but a seq
      // below the emit cursor would wedge the buffer on a key that can never
      // match next_emit_ again, so keep the guard.
      if (seq >= next_emit_) reorder_.emplace(seq, std::nullopt);
    }
    drain_reorder_locked();
  }

  void drain_reorder_locked() {  ///< caller holds reorder_mutex_
    bool advanced = false;
    while (!reorder_.empty() && reorder_.begin()->first == next_emit_) {
      auto node = reorder_.extract(reorder_.begin());
      // Advance the cursor before invoking the sink: if the sink throws,
      // that item is lost but the stream keeps flowing instead of stalling
      // on a sequence number that was already extracted.
      ++next_emit_;
      advanced = true;
      if (node.mapped().has_value()) {
        try {
          sink_(node.key(), std::move(*node.mapped()));
        } catch (const std::exception& e) {
          // Swallow here: drain runs from worker catch handlers too (via
          // skip_seqs), where a second throw would escape the thread and
          // terminate the process.
          NC_LOG_WARN << "ordered sink failed for item " << node.key() << ": "
                      << e.what();
        }
      }
    }
    // Freed slots / advanced cursor: wake workers parked on the capacity.
    if (advanced && options_.reorder_capacity != 0) reorder_cv_.notify_all();
  }

  void worker_loop(std::size_t worker_index) {
    if (worker_index < placement_.size() &&
        util::pin_current_thread(placement_[worker_index].cpu)) {
      workers_pinned_.fetch_add(1, std::memory_order_relaxed);
    }
    WorkerStats& ws = worker_stats_[worker_index];
    std::vector<Item> items;
    std::vector<std::uint64_t> seqs;
    std::vector<In> batch;
    items.reserve(options_.batch_size);
    seqs.reserve(options_.batch_size);
    batch.reserve(options_.batch_size);
    while (true) {
      // Elastic park point: a worker scaled out of the live set sleeps here
      // between batches (never mid-batch, so no output is ever stranded).
      // A worker blocked in pop_batch when the target drops processes at
      // most one more batch before landing back here — self-correcting.
      if (worker_index >= live_target_.load(std::memory_order_acquire) &&
          !scale_closing_.load(std::memory_order_acquire)) {
        park_for_scale(worker_index);
        continue;
      }
      items.clear();
      seqs.clear();
      batch.clear();
      bool stolen = false;
      // Adaptive batching happens inside the intake, on the depth observed
      // at pop time: a fair share of the backlog per worker, clamped to
      // [1, batch_size] — full batches when backed up (throughput), single
      // items on a trickle (latency, and the trickle spreads across
      // workers instead of one grabbing it all).
      const std::size_t share =
          options_.adaptive_batch
              ? live_target_.load(std::memory_order_relaxed)
              : 0;
      if (intake_->pop_batch(worker_index, items, options_.batch_size, share,
                             &stolen) == 0) {
        break;
      }
      if (stolen) ++ws.batches_stolen;
      for (auto& item : items) {
        seqs.push_back(item.seq);
        batch.push_back(std::move(item.value));
      }
      enter_busy();
      // Time only the transform+sink work: counting from thread start would
      // fold intake-wait idle into active time and deflate throughput_wps().
      util::Timer timer;
      std::vector<Out> outputs;
      bool transform_ok = true;
      try {
        outputs = transform_(std::move(batch));
        if (outputs.size() != seqs.size()) {
          throw std::runtime_error("batch transform returned " +
                                   std::to_string(outputs.size()) +
                                   " outputs for " +
                                   std::to_string(seqs.size()) + " items");
        }
      } catch (const std::exception& e) {
        // A poisoned batch must not kill the worker (a dead worker turns
        // blocking submits into a deadlock) nor stall the ordered sink.
        transform_ok = false;
        NC_LOG_WARN << "stream worker " << worker_index
                    << ": dropping batch of " << seqs.size()
                    << " items: " << e.what();
        wedges_failed_.fetch_add(static_cast<std::int64_t>(seqs.size()),
                                 std::memory_order_relaxed);
        skip_seqs(seqs);
      }
      if (transform_ok) {
        // The items are processed whatever the sink does with them, so the
        // stats update precedes emission; a sink failure is logged but does
        // not land in wedges_failed (reserved for transform errors).
        std::int64_t bytes = 0;
        if (payload_bytes_) {
          for (const auto& out : outputs) bytes += payload_bytes_(out);
        }
        ws.wedges_compressed += static_cast<std::int64_t>(outputs.size());
        ws.payload_bytes += bytes;
        ++ws.batches;
        try {
          emit_batch(seqs, std::move(outputs));
        } catch (const std::exception& e) {
          // Only the unordered path throws here (the ordered drain swallows
          // sink errors per item); the rest of this batch is lost downstream.
          NC_LOG_WARN << "stream worker " << worker_index << ": sink error, "
                      << seqs.size() << " processed items may be lost "
                      << "downstream: " << e.what();
        }
      }
      ws.active_s += timer.elapsed_s();
      exit_busy();
    }
    // This thread is done popping: shrink the live-worker count the gate
    // escape compares against and re-evaluate any parked waiter, so a
    // shutdown can never strand a worker waiting for a popper that exited.
    {
      std::lock_guard<std::mutex> lock(reorder_mutex_);
      --workers_alive_;
    }
    reorder_cv_.notify_all();
  }

  StreamOptions options_;
  BatchFn transform_;
  ByteCounter payload_bytes_;
  SeqSink sink_;
  SpillCodec spill_codec_;
  std::unique_ptr<Intake<Item>> intake_;

  // Intake sequencing: the mutex makes seq numbers match submission order.
  std::mutex submit_mutex_;
  std::uint64_t next_seq_ = 0;
  std::atomic<std::int64_t> wedges_in_{0};
  std::atomic<std::int64_t> wedges_dropped_{0};
  std::atomic<std::int64_t> wedges_failed_{0};

  // Spill tier (null when disabled).  spill_closed_ is guarded by
  // submit_mutex_ (sealed by finish() before the final drain, mutually
  // exclusive with every append); final_drain_ by drainer_mutex_.
  std::unique_ptr<SpillLog> spill_;
  std::size_t spill_low_water_ = 0;
  bool spill_closed_ = false;
  std::mutex drainer_mutex_;
  std::condition_variable drainer_cv_;
  bool final_drain_ = false;
  std::thread drainer_;
  std::atomic<std::int64_t> wedges_spilled_{0};
  std::atomic<std::int64_t> wedges_replayed_{0};

  // Busy-interval union: a clock that runs while >=1 worker is busy.
  std::mutex busy_mutex_;
  int busy_workers_ = 0;
  util::Timer busy_timer_;
  double busy_s_ = 0.0;

  // Ordered-sink reorder buffer.  nullopt marks a failed item whose
  // sequence number must still advance the emit cursor.
  std::mutex reorder_mutex_;
  std::condition_variable reorder_cv_;  ///< capacity waiters (ordered mode)
  std::map<std::uint64_t, std::optional<Out>> reorder_;
  std::uint64_t next_emit_ = 0;
  std::size_t gate_waiters_ = 0;   ///< workers parked on the reorder bound
  std::size_t workers_alive_ = 0;  ///< workers still popping (gate escape)

  std::vector<WorkerStats> worker_stats_;
  std::vector<std::thread> workers_;

  /// Advance the live-worker time integral to now (caller holds
  /// scale_mutex_).  Called on every target change and once at finish, so
  /// avg_live_workers is exact piecewise-constant integration.
  void integrate_live_locked() {
    const double now = lifetime_.elapsed_s();
    live_integral_ +=
        static_cast<double>(live_target_.load(std::memory_order_relaxed)) *
        (now - live_mark_s_);
    live_mark_s_ = now;
  }

  // Elastic pool.  In a static pool live_target_ == max_workers forever:
  // the park branch never triggers, no controller thread runs, and the
  // machinery below is inert.  live_target_ is atomic so workers poll it
  // lock-free; the event counters, hwm/lwm and the time integral are
  // guarded by scale_mutex_.
  std::atomic<std::size_t> live_target_{options_.n_workers};
  std::atomic<bool> scale_closing_{false};
  std::mutex scale_mutex_;
  std::condition_variable scale_cv_;  ///< parks surplus workers
  std::condition_variable ctrl_cv_;   ///< controller interval / shutdown
  std::size_t workers_hwm_ = options_.n_workers;
  std::size_t workers_lwm_ = options_.n_workers;
  std::int64_t scale_up_events_ = 0;
  std::int64_t scale_down_events_ = 0;
  double live_integral_ = 0.0;  ///< ∫ live target dt since construction
  double live_mark_s_ = 0.0;    ///< lifetime_ time of the last integration
  util::Timer lifetime_;        ///< construction-relative clock (events, avg)
  std::atomic<int> busy_count_{0};  ///< lock-free mirror of busy_workers_
  std::vector<util::CpuInfo> placement_;  ///< per-slot core pin (may be empty)
  std::atomic<std::int64_t> workers_pinned_{0};
  ShardedQueue<Item>* sharded_ = nullptr;  ///< non-null iff intake is sharded
  std::thread controller_;

  std::atomic<bool> finished_{false};
  std::mutex finish_mutex_;
  StreamStats merged_;  ///< worker totals, filled once on first finish()
};

}  // namespace nc::codec
