#include "codec/stream.hpp"

#include <sstream>

#include "util/serialize.hpp"

namespace nc::codec {

namespace {

// --- spill codecs -----------------------------------------------------------
// Raw (uncompressed) serializers for the overflow tier: spilling exists
// precisely because the encoder cannot keep up, so the bytes written under
// pressure must cost no model forwards.  Caps mirror WedgeEnvelope
// deserialization: corrupt spill payloads throw SerializeError (the drainer
// counts them as failed) instead of driving giant allocations.

constexpr std::int64_t kMaxSpillDim = std::int64_t{1} << 20;
constexpr std::int64_t kMaxSpillElems = std::int64_t{1} << 28;

std::string encode_wedge_spill(const core::Tensor& wedge) {
  std::ostringstream os;
  const auto& shape = wedge.shape();
  util::write_u64(os, shape.size());
  for (const auto d : shape) util::write_i64(os, d);
  util::write_bytes(os, wedge.data(),
                    static_cast<std::size_t>(wedge.numel()) * sizeof(float));
  return os.str();
}

core::Tensor decode_wedge_spill(const std::string& bytes) {
  std::istringstream is(bytes);
  const std::uint64_t rank = util::read_u64(is);
  if (rank > 8) {
    throw util::SerializeError("spilled wedge rank implausible: " +
                               std::to_string(rank));
  }
  core::Shape shape(rank);
  std::int64_t numel = 1;
  for (auto& d : shape) {
    d = util::read_i64(is);
    if (d <= 0 || d > kMaxSpillDim) {
      throw util::SerializeError("spilled wedge dim implausible: " +
                                 std::to_string(d));
    }
    if (numel > kMaxSpillElems / d) {
      throw util::SerializeError("spilled wedge element count implausible");
    }
    numel *= d;
  }
  core::Tensor wedge(std::move(shape));
  util::read_bytes(is, wedge.data(),
                   static_cast<std::size_t>(numel) * sizeof(float));
  return wedge;
}

std::string encode_envelope_spill(const WedgeEnvelope& env) {
  std::ostringstream os;
  env.serialize(os);
  return os.str();
}

WedgeEnvelope decode_envelope_spill(const std::string& bytes) {
  std::istringstream is(bytes);
  return WedgeEnvelope::deserialize(is);
}

StreamPipeline<core::Tensor, WedgeEnvelope>::BatchFn compress_fn(
    const WedgeCodec& codec) {
  return [&codec](std::vector<core::Tensor>&& batch) {
    return codec.compress_batch(batch);
  };
}

StreamPipeline<WedgeEnvelope, core::Tensor>::BatchFn decompress_fn(
    const WedgeCodec& codec) {
  return [&codec](std::vector<WedgeEnvelope>&& batch) {
    return codec.decompress_batch(batch);
  };
}

// Decoded-wedge volume with the paper's fp16 accounting (§3.1), mirroring
// payload_bytes() on the compressed side so the two directions report
// comparable byte totals.
std::int64_t decoded_bytes(const core::Tensor& wedge) {
  return wedge.numel() * 2;
}

// Stamp the codec's wire id into the pipeline options so every spill
// segment this stream writes is tagged with the codec it was running.
StreamOptions stamped(StreamOptions options, const WedgeCodec& codec) {
  options.spill_codec_id = codec.codec_id();
  return options;
}

}  // namespace

StreamCompressor::StreamCompressor(const WedgeCodec& codec,
                                   const StreamOptions& options, SeqSink sink)
    : pipeline_(stamped(options, codec), compress_fn(codec),
                [](const WedgeEnvelope& env) { return env.payload_bytes(); },
                std::move(sink), {encode_wedge_spill, decode_wedge_spill}) {}

StreamCompressor::StreamCompressor(const WedgeCodec& codec,
                                   const StreamOptions& options, Sink sink)
    : StreamCompressor(codec, options,
                       SeqSink([s = std::move(sink)](std::uint64_t,
                                                     WedgeEnvelope&& env) {
                         s(std::move(env));
                       })) {}

StreamCompressor::StreamCompressor(const WedgeCodec& codec,
                                   std::size_t queue_capacity,
                                   std::size_t batch_size, Sink sink)
    : StreamCompressor(
          codec,
          [&] {
            // Legacy single-worker shape: one worker resolves kAuto to the
            // single shared queue, exactly the pre-sharding behavior.
            StreamOptions opt;
            opt.queue_capacity = queue_capacity;
            opt.batch_size = batch_size;
            opt.n_workers = 1;
            return opt;
          }(),
          std::move(sink)) {}

StreamDecompressor::StreamDecompressor(const WedgeCodec& codec,
                                       const StreamOptions& options,
                                       SeqSink sink)
    : pipeline_(stamped(options, codec), decompress_fn(codec), decoded_bytes,
                std::move(sink),
                {encode_envelope_spill,
                 // Replay gate: a spilled envelope that names a different
                 // codec than this stream decodes with is rejected here
                 // (counted as failed with its seq) instead of handing a
                 // foreign payload to the decoder.
                 [id = codec.codec_id()](const std::string& bytes) {
                   WedgeEnvelope env = decode_envelope_spill(bytes);
                   if (env.codec_id != id) {
                     throw util::SerializeError(
                         "spilled envelope codec id " +
                         std::to_string(env.codec_id) +
                         " does not match stream codec id " +
                         std::to_string(id));
                   }
                   return env;
                 }}) {}

StreamDecompressor::StreamDecompressor(const WedgeCodec& codec,
                                       const StreamOptions& options, Sink sink)
    : StreamDecompressor(codec, options,
                         SeqSink([s = std::move(sink)](std::uint64_t,
                                                       core::Tensor&& wedge) {
                           s(std::move(wedge));
                         })) {}

}  // namespace nc::codec
