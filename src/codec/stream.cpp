#include "codec/stream.hpp"

#include "util/logging.hpp"

namespace nc::codec {

namespace {
// Zero sizes are nonsensical (capacity 0 would deadlock blocking submits);
// clamp before the queue is constructed from them.
StreamOptions normalized(StreamOptions options) {
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.batch_size == 0) options.batch_size = 1;
  if (options.n_workers == 0) options.n_workers = 1;
  return options;
}
}  // namespace

StreamCompressor::StreamCompressor(BcaeCodec& codec,
                                   const StreamOptions& options, SeqSink sink)
    : codec_(codec),
      options_(normalized(options)),
      sink_(std::move(sink)),
      queue_(options_.queue_capacity) {
  worker_stats_.resize(options_.n_workers);
  workers_.reserve(options_.n_workers);
  for (std::size_t w = 0; w < options_.n_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

StreamCompressor::StreamCompressor(BcaeCodec& codec,
                                   const StreamOptions& options, Sink sink)
    : StreamCompressor(codec, options,
                       SeqSink([s = std::move(sink)](std::uint64_t,
                                                     CompressedWedge&& cw) {
                         s(std::move(cw));
                       })) {}

StreamCompressor::StreamCompressor(BcaeCodec& codec, std::size_t queue_capacity,
                                   std::size_t batch_size, Sink sink)
    : StreamCompressor(
          codec,
          StreamOptions{queue_capacity, batch_size, /*n_workers=*/1,
                        /*ordered=*/false},
          std::move(sink)) {}

StreamCompressor::~StreamCompressor() { (void)finish(); }

bool StreamCompressor::try_submit(core::Tensor wedge) {
  // Counters update under the same lock as the push: a concurrent finish()
  // snapshot must never see a compressed wedge missing from wedges_in.
  std::lock_guard<std::mutex> lock(submit_mutex_);
  const bool accepted = queue_.try_push(Item{next_seq_, std::move(wedge)});
  if (accepted) {
    // Sequence numbers are only consumed by accepted wedges, so the ordered
    // sink never waits on a gap left by a dropped one.
    ++next_seq_;
    wedges_in_.fetch_add(1, std::memory_order_relaxed);
  } else {
    wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return accepted;
}

void StreamCompressor::submit(core::Tensor wedge) {
  // Wait for space *outside* submit_mutex_: holding it across a blocking
  // push would stall concurrent try_submit callers (the real-time path)
  // behind an offline producer parked on a full queue.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(submit_mutex_);
      if (queue_.try_push(Item{next_seq_, wedge})) {
        ++next_seq_;
        wedges_in_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    if (!queue_.wait_for_space()) {
      // Queue closed (submit after finish); the wedge is lost and must
      // show up in the drop count.
      wedges_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void StreamCompressor::enter_busy() {
  std::lock_guard<std::mutex> lock(busy_mutex_);
  if (busy_workers_++ == 0) busy_timer_.reset();
}

void StreamCompressor::exit_busy() {
  std::lock_guard<std::mutex> lock(busy_mutex_);
  if (--busy_workers_ == 0) busy_s_ += busy_timer_.elapsed_s();
}

void StreamCompressor::emit_batch(const std::vector<std::uint64_t>& seqs,
                                  std::vector<CompressedWedge>&& compressed) {
  if (!options_.ordered) {
    for (std::size_t i = 0; i < compressed.size(); ++i) {
      sink_(seqs[i], std::move(compressed[i]));
    }
    return;
  }
  std::lock_guard<std::mutex> lock(reorder_mutex_);
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    reorder_.emplace(seqs[i], std::move(compressed[i]));
  }
  drain_reorder_locked();
}

void StreamCompressor::skip_seqs(const std::vector<std::uint64_t>& seqs) {
  if (!options_.ordered) return;
  std::lock_guard<std::mutex> lock(reorder_mutex_);
  for (const auto seq : seqs) {
    // Defensive: today callers only skip never-emitted batches, but a seq
    // below the emit cursor would wedge the buffer on a key that can never
    // match next_emit_ again, so keep the guard.
    if (seq >= next_emit_) reorder_.emplace(seq, std::nullopt);
  }
  drain_reorder_locked();
}

void StreamCompressor::drain_reorder_locked() {
  while (!reorder_.empty() && reorder_.begin()->first == next_emit_) {
    auto node = reorder_.extract(reorder_.begin());
    // Advance the cursor before invoking the sink: if the sink throws, that
    // wedge is lost but the stream keeps flowing instead of stalling on a
    // sequence number that was already extracted.
    ++next_emit_;
    if (node.mapped().has_value()) {
      try {
        sink_(node.key(), std::move(*node.mapped()));
      } catch (const std::exception& e) {
        // Swallow here: drain runs from worker catch handlers too (via
        // skip_seqs), where a second throw would escape the thread and
        // terminate the process.
        NC_LOG_WARN << "ordered sink failed for wedge " << node.key() << ": "
                    << e.what();
      }
    }
  }
}

void StreamCompressor::worker_loop(std::size_t worker_index) {
  WorkerStats& ws = worker_stats_[worker_index];
  std::vector<Item> items;
  std::vector<std::uint64_t> seqs;
  std::vector<core::Tensor> batch;
  items.reserve(options_.batch_size);
  seqs.reserve(options_.batch_size);
  batch.reserve(options_.batch_size);
  while (true) {
    items.clear();
    seqs.clear();
    batch.clear();
    if (queue_.pop_batch(items, options_.batch_size) == 0) break;
    for (auto& item : items) {
      seqs.push_back(item.seq);
      batch.push_back(std::move(item.wedge));
    }
    enter_busy();
    // Time only the compress+sink work: counting from thread start would
    // fold queue-wait idle into active time and deflate throughput_wps().
    util::Timer timer;
    std::vector<CompressedWedge> compressed;
    bool codec_ok = true;
    try {
      compressed = codec_.compress_batch(batch);
    } catch (const std::exception& e) {
      // A poisoned batch must not kill the worker (a dead worker turns
      // blocking submits into a deadlock) nor stall the ordered sink.
      codec_ok = false;
      NC_LOG_WARN << "stream worker " << worker_index << ": dropping batch of "
                  << seqs.size() << " wedges: " << e.what();
      wedges_failed_.fetch_add(static_cast<std::int64_t>(seqs.size()),
                               std::memory_order_relaxed);
      skip_seqs(seqs);
    }
    if (codec_ok) {
      // The wedges are compressed whatever the sink does with them, so the
      // stats update precedes emission; a sink failure is logged but does
      // not land in wedges_failed (reserved for codec errors).
      std::int64_t bytes = 0;
      for (const auto& cw : compressed) bytes += cw.payload_bytes();
      ws.wedges_compressed += static_cast<std::int64_t>(compressed.size());
      ws.payload_bytes += bytes;
      ++ws.batches;
      try {
        emit_batch(seqs, std::move(compressed));
      } catch (const std::exception& e) {
        // Only the unordered path throws here (the ordered drain swallows
        // sink errors per wedge); the rest of this batch is lost downstream.
        NC_LOG_WARN << "stream worker " << worker_index << ": sink error, "
                    << seqs.size() << " compressed wedges may be lost "
                    << "downstream: " << e.what();
      }
    }
    ws.active_s += timer.elapsed_s();
    exit_busy();
  }
}

StreamStats StreamCompressor::finish() {
  std::lock_guard<std::mutex> lock(finish_mutex_);
  if (!finished_.exchange(true)) {
    queue_.close();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    merged_.per_worker = worker_stats_;
    for (const auto& ws : worker_stats_) {
      merged_.wedges_compressed += ws.wedges_compressed;
      merged_.payload_bytes += ws.payload_bytes;
      merged_.cpu_s += ws.active_s;
    }
    merged_.elapsed_s = busy_s_;  // workers joined: no interval still open
  }
  StreamStats out = merged_;
  {
    // Snapshot under submit_mutex_: a producer parked between making its
    // wedge visible (try_push) and bumping wedges_in_ would otherwise let a
    // concurrent finish() report wedges_compressed > wedges_in.
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    out.wedges_in = wedges_in_.load(std::memory_order_relaxed);
    out.wedges_dropped = wedges_dropped_.load(std::memory_order_relaxed);
  }
  out.wedges_failed = wedges_failed_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace nc::codec
