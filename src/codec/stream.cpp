#include "codec/stream.hpp"

#include "util/timer.hpp"

namespace nc::codec {

StreamCompressor::StreamCompressor(BcaeCodec& codec, std::size_t queue_capacity,
                                   std::size_t batch_size, Sink sink)
    : codec_(codec),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      sink_(std::move(sink)),
      queue_(queue_capacity) {
  worker_ = std::thread([this] { worker_loop(); });
}

StreamCompressor::~StreamCompressor() {
  if (!finished_) (void)finish();
}

bool StreamCompressor::try_submit(core::Tensor wedge) {
  const bool accepted = queue_.try_push(std::move(wedge));
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (accepted) {
    ++stats_.wedges_in;
  } else {
    ++stats_.wedges_dropped;
  }
  return accepted;
}

void StreamCompressor::submit(core::Tensor wedge) {
  const bool accepted = queue_.push(std::move(wedge));
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (accepted) {
    ++stats_.wedges_in;
  } else {
    // push() only fails when the queue is closed (submit after finish);
    // the wedge is lost either way, so it must show up in the drop count.
    ++stats_.wedges_dropped;
  }
}

void StreamCompressor::worker_loop() {
  util::Timer timer;
  std::vector<core::Tensor> batch;
  batch.reserve(batch_size_);
  while (true) {
    batch.clear();
    if (queue_.pop_batch(batch, batch_size_) == 0) break;
    // Time only the compress+sink work: counting from thread start would
    // fold queue-wait idle into elapsed_s and deflate throughput_wps().
    timer.reset();
    auto compressed = codec_.compress_batch(batch);
    std::int64_t bytes = 0;
    for (auto& cw : compressed) {
      bytes += cw.payload_bytes();
      sink_(std::move(cw));
    }
    const double batch_s = timer.elapsed_s();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.wedges_compressed += static_cast<std::int64_t>(compressed.size());
    stats_.payload_bytes += bytes;
    stats_.elapsed_s += batch_s;
  }
}

StreamStats StreamCompressor::finish() {
  finished_ = true;
  queue_.close();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace nc::codec
