#include "codec/stream.hpp"

namespace nc::codec {

namespace {

StreamPipeline<core::Tensor, CompressedWedge>::BatchFn compress_fn(
    BcaeCodec& codec) {
  return [&codec](std::vector<core::Tensor>&& batch) {
    return codec.compress_batch(batch);
  };
}

StreamPipeline<CompressedWedge, core::Tensor>::BatchFn decompress_fn(
    BcaeCodec& codec) {
  return [&codec](std::vector<CompressedWedge>&& batch) {
    return codec.decompress_batch(batch);
  };
}

// Decoded-wedge volume with the paper's fp16 accounting (§3.1), mirroring
// payload_bytes() on the compressed side so the two directions report
// comparable byte totals.
std::int64_t decoded_bytes(const core::Tensor& wedge) {
  return wedge.numel() * 2;
}

}  // namespace

StreamCompressor::StreamCompressor(BcaeCodec& codec,
                                   const StreamOptions& options, SeqSink sink)
    : pipeline_(options, compress_fn(codec),
                [](const CompressedWedge& cw) { return cw.payload_bytes(); },
                std::move(sink)) {}

StreamCompressor::StreamCompressor(BcaeCodec& codec,
                                   const StreamOptions& options, Sink sink)
    : StreamCompressor(codec, options,
                       SeqSink([s = std::move(sink)](std::uint64_t,
                                                     CompressedWedge&& cw) {
                         s(std::move(cw));
                       })) {}

StreamCompressor::StreamCompressor(BcaeCodec& codec, std::size_t queue_capacity,
                                   std::size_t batch_size, Sink sink)
    : StreamCompressor(
          codec,
          [&] {
            // Legacy single-worker shape: one worker resolves kAuto to the
            // single shared queue, exactly the pre-sharding behavior.
            StreamOptions opt;
            opt.queue_capacity = queue_capacity;
            opt.batch_size = batch_size;
            opt.n_workers = 1;
            return opt;
          }(),
          std::move(sink)) {}

StreamDecompressor::StreamDecompressor(BcaeCodec& codec,
                                       const StreamOptions& options,
                                       SeqSink sink)
    : pipeline_(options, decompress_fn(codec), decoded_bytes,
                std::move(sink)) {}

StreamDecompressor::StreamDecompressor(BcaeCodec& codec,
                                       const StreamOptions& options, Sink sink)
    : StreamDecompressor(codec, options,
                         SeqSink([s = std::move(sink)](std::uint64_t,
                                                       core::Tensor&& wedge) {
                           s(std::move(wedge));
                         })) {}

}  // namespace nc::codec
