/// \file spill.hpp
/// \brief Spill-to-disk overflow tier for the streaming intake: a segmented
///        append-only record log plus a standalone recovery reader.
///
/// When the bounded intake saturates, the pipeline used to *drop* wedges —
/// unacceptable for a DAQ path whose traffic is bursty but whose data is
/// irreplaceable.  `SpillLog` is the secondary tier that makes backpressure
/// lossless: overflow wedges are serialized raw into append-only segment
/// files and replayed into the intake once depth falls back below a
/// low-water mark (StreamPipeline owns the drainer; this class owns the
/// bytes).
///
/// On-disk format (version-gated like checkpoints, see util/serialize.hpp):
///
///   segment   := magic("NCMP" "SPIL", u32 version) u32 codec_id record*
///   record    := u64 seq | u64 payload_len | payload bytes | u32 crc32
///
/// v2 added the codec_id header field: the wedge codec the spilling
/// pipeline was configured with (WedgeCodec wire id; 0 = untagged).  A
/// keep-mode log written under one codec and replayed under another used to
/// feed foreign payloads to the decoder and fail per-wedge downstream;
/// SpillReader now rejects the mismatch at open, before a single payload is
/// decoded.
///
/// The CRC covers the 16-byte little-endian (seq, payload_len) header plus
/// the payload, so a flipped bit anywhere in a record — header or body —
/// fails that record loudly instead of replaying garbage.  Records are
/// opaque byte strings: the pipeline's SpillCodec decides how a wedge
/// becomes bytes, the log only guarantees integrity and FIFO order.
///
/// Segmenting: the writer rolls to a new segment file every
/// `segment_bytes`; a fully-replayed segment that is no longer the write
/// tail is deleted immediately (unless `keep`), so steady-state disk usage
/// is bounded by the pending backlog plus one segment of slack.  A failed
/// record write (disk full, I/O error) poisons only the tail segment: the
/// writer closes it and rolls on the next append, and every record already
/// indexed stays replayable.
///
/// Concurrency: public methods are thread-safe behind one mutex, with one
/// restriction — `pop` supports a single consumer (StreamPipeline's
/// drainer), which lets it perform the record's disk read *outside* the
/// mutex so replay I/O never stalls an appender (and, transitively, the
/// pipeline's real-time submit path).  `pop` is served from an in-memory
/// FIFO index of (seq, segment, offset) — O(pending) small — so even a
/// corrupt record still reports *which* sequence number was lost, letting
/// an ordered pipeline skip it instead of stalling forever.
///
/// `SpillReader` is the offline half: it parses one segment file from
/// scratch (no index), validating magic, version and per-record CRC, for
/// replay-after-close recovery and the fault-injection tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace nc::codec {

struct SpillOptions {
  std::string dir;  ///< segment directory (created if missing)
  /// Roll to a new segment file after this many bytes (min one record).
  std::size_t segment_bytes = std::size_t{4} << 20;
  /// Cap on total on-disk spill bytes (0 = unbounded).  An append that
  /// would exceed it throws SerializeError — the disk-full containment
  /// path; callers count the wedge as dropped.
  std::size_t max_bytes = 0;
  /// Keep fully-replayed segments on disk (audit / replay-after-close)
  /// instead of deleting them as they drain.
  bool keep = false;
  /// Codec id stamped into every segment header (0 = untagged): identifies
  /// the wedge codec whose pipeline wrote this log, so replay under a
  /// different codec is rejected at open instead of per-wedge downstream.
  std::uint32_t codec_id = 0;
};

/// One logical spill record: the wedge's pipeline sequence number and its
/// serialized bytes.
struct SpillRecord {
  std::uint64_t seq = 0;
  std::string payload;
};

/// Parse one record at the current stream position (after the segment
/// header).  Throws util::SerializeError on truncation, an implausible
/// length, or a CRC mismatch.
SpillRecord read_spill_record(std::istream& is);

/// Parsed segment header fields (everything after the magic).
struct SpillSegmentHeader {
  std::uint32_t version = 0;
  std::uint32_t codec_id = 0;  ///< writing pipeline's wedge codec (0 = untagged)
};

/// Validate a segment's magic + version header and return the parsed
/// fields.  Throws util::SerializeError on a bad magic, an unsupported
/// version, or truncation.  Shared by SpillReader and the fuzz harness so
/// in-memory fuzzing drives exactly the file-open code path.
SpillSegmentHeader read_spill_segment_header(std::istream& is);

/// Disk-backed FIFO of spill records (see file comment).
class SpillLog {
 public:
  static constexpr std::uint32_t kFormatVersion = 2;  ///< v2: codec_id header

  /// Creates `options.dir` if missing; throws util::SerializeError when the
  /// directory cannot be created or written.
  explicit SpillLog(SpillOptions options);
  ~SpillLog();

  SpillLog(const SpillLog&) = delete;
  SpillLog& operator=(const SpillLog&) = delete;

  /// Append one record (flushed before return so a reader — or a crash
  /// post-mortem — sees every acknowledged record).  Throws
  /// util::SerializeError on an I/O failure or when `max_bytes` would be
  /// exceeded; a throw leaves the log usable and the record unrecorded.
  void append(std::uint64_t seq, const std::string& payload);

  /// Oldest pending record, popped from the index.  `ok` is false when the
  /// record's bytes failed to read back (truncation, CRC mismatch) — the
  /// seq is still valid, so the caller can account the loss per sequence
  /// number.  nullopt when nothing is pending.
  struct Popped {
    std::uint64_t seq = 0;
    std::string payload;
    bool ok = false;
  };
  std::optional<Popped> pop();

  /// Records appended but not yet popped.
  std::size_t pending() const;
  /// Current total size of the live segment files.
  std::uint64_t bytes_on_disk() const;
  /// Deepest bytes_on_disk has ever been (StreamStats::spill_bytes_hwm).
  std::uint64_t bytes_hwm() const;
  /// Live segment files, oldest first (tests / recovery tooling).
  std::vector<std::string> segment_paths() const;

  /// Close the writer; deletes every remaining segment unless `keep`.
  /// Idempotent; called by the destructor.
  void close();

 private:
  struct PendingRec {
    std::uint64_t seq = 0;
    std::size_t segment_id = 0;
    std::uint64_t offset = 0;  ///< record start within the segment
  };
  struct Segment {
    std::size_t id = 0;
    std::string path;
    std::uint64_t bytes = 0;
    std::size_t pending = 0;  ///< records appended - records popped
  };

  void roll_segment_locked();
  void reap_drained_segments_locked();
  std::string segment_path(std::size_t id) const;

  SpillOptions options_;
  std::string prefix_;  ///< per-instance, so pipelines may share a dir
  mutable std::mutex mutex_;
  std::deque<PendingRec> index_;
  std::deque<Segment> segments_;  ///< live segments, oldest first
  std::ofstream out_;             ///< tail writer (segments_.back())
  std::size_t next_segment_id_ = 0;
  std::uint64_t bytes_on_disk_ = 0;
  std::uint64_t bytes_hwm_ = 0;
  bool closed_ = false;
};

/// Sequential reader over one segment file: validates magic + version in
/// the constructor and per-record CRC in next().  Throws
/// util::SerializeError on any corruption; next() returns false at a clean
/// end of file.
class SpillReader {
 public:
  /// Opens and validates the segment.  When `expected_codec_id` is non-zero
  /// and the segment is tagged (header codec_id non-zero), a mismatch
  /// throws util::SerializeError — replaying one codec's payloads into
  /// another's decoder fails here, at open, not per-wedge downstream.
  explicit SpillReader(const std::string& path,
                       std::uint32_t expected_codec_id = 0);

  bool next(SpillRecord& out);

  /// The validated segment header (codec id etc.).
  const SpillSegmentHeader& header() const { return header_; }

 private:
  std::ifstream in_;
  std::string path_;
  SpillSegmentHeader header_;
};

}  // namespace nc::codec
