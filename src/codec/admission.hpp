/// \file admission.hpp
/// \brief Deterministic per-session admission policy for the compression
///        service: degrade down the codec ladder first, shed last.
///
/// The service's overload story (see service.hpp) is *not* "spill until
/// spill_max_bytes": a session that persistently offers more than its fair
/// share is first hopped down a configurable codec degradation ladder
/// (e.g. bcae-int8 -> zfp; legal mid-stream because every codec speaks
/// WedgeEnvelope), and only once the ladder is exhausted does the service
/// start shedding that session's wedges — predictable, counted, early
/// per-session drops instead of unbounded disk growth.
///
/// Like codec/autoscale.hpp, the policy is a pure sample-in / decision-out
/// state machine with no clocks, threads or sleeps — one `observe()` call is
/// one tick — so unit tests drive it with injected depth/spill samples and
/// assert exact decision sequences (tests/test_admission.cpp).  The service
/// owns one controller per session and is the thin impure driver that
/// samples real staging-queue depths every `admission_interval_s` and
/// applies the returned decisions.
///
/// Decision shape (per tick):
///
///   pipeline spilling AND depth >= spill_depth
///   AND a rung is left ──────────────────────────▶ kDegrade
///                                                   (emergency: the shared
///                                                    tier is already on
///                                                    disk; bypasses window
///                                                    AND cooldown)
///
///   avg depth over `window` >= degrade_depth
///   AND a rung is left ──────────────────────────▶ kDegrade
///
///   avg depth >= shed_depth AND ladder
///   exhausted ───────────────────────────────────▶ kShed (latched: every
///                                                   submit drops until
///                                                   kStopShed)
///
///   shedding AND avg depth <= recover_depth ─────▶ kStopShed
///
///   not shedding, a rung used, avg depth <=
///   recover_depth for `recover_window` straight
///   windows ─────────────────────────────────────▶ kRecover (climb one
///                                                   rung back; 0 = never)
///
/// Hysteresis mirrors the autoscaler: after any non-hold decision the
/// controller holds for `cooldown` ticks (samples during the hold are
/// discarded) and every windowed decision needs a full fresh `window`.
/// Shed is strictly last: kShed can only fire with `rungs_left == 0`, so a
/// session with any ladder headroom is always degraded before a single
/// wedge is dropped.
#pragma once

#include <cstddef>

namespace nc::codec {

/// Admission tuning (surfaces as ServiceOptions::admission).
struct AdmissionConfig {
  std::size_t window = 4;    ///< samples averaged per windowed decision
  std::size_t cooldown = 4;  ///< ticks held after a decision (hysteresis)
  /// Avg staging-depth fraction at/above which a session hops one rung down
  /// its ladder.
  double degrade_depth = 0.75;
  /// With the shared pipeline spilling, a single sample at/above this depth
  /// degrades immediately (no window, no cooldown) — disk pressure means
  /// the gradual path has already lost.
  double spill_depth = 0.5;
  /// Avg depth at/above which a ladder-exhausted session starts shedding.
  double shed_depth = 0.95;
  /// Avg depth at/below which shedding stops, and below which quiet windows
  /// count toward climbing a rung back up.
  double recover_depth = 0.125;
  /// Consecutive quiet windows required before climbing one rung back
  /// toward the preferred codec (0 = never recover, degradations stick).
  std::size_t recover_window = 0;
};

/// One admission tick's worth of observed per-session load.
struct AdmissionSample {
  double depth_fraction = 0.0;  ///< staging depth / staging capacity, [0, 1]
  bool spilling = false;        ///< the shared pipeline's spill tier is active
  std::size_t rungs_left = 0;   ///< ladder rungs below the current codec
  std::size_t rungs_used = 0;   ///< ladder rungs already descended
};

/// What the service should do to the session this tick.
enum class AdmissionDecision {
  kHold,      ///< no change
  kDegrade,   ///< hop one rung down the codec ladder
  kShed,      ///< start dropping this session's submits (ladder exhausted)
  kStopShed,  ///< stop dropping (depth recovered)
  kRecover,   ///< climb one rung back toward the preferred codec
};

/// Deterministic per-session admission state machine (see file comment).
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config)
      : cfg_(normalized(config)) {}

  /// Feed one tick of observed load; returns the decision the service
  /// should apply.  Pure: same sample sequence, same decisions.
  AdmissionDecision observe(const AdmissionSample& sample) {
    if (sample.spilling && sample.depth_fraction >= cfg_.spill_depth &&
        sample.rungs_left > 0) {
      // Emergency path: overflow is already landing on disk while this
      // session holds a deep backlog — a cheaper codec now beats a
      // windowed deliberation later.  Starts a cooldown like any decision.
      return decide(AdmissionDecision::kDegrade);
    }
    if (cooldown_ > 0) {
      // Hysteresis hold: discard the sample so the next decision rests
      // only on evidence gathered after the previous one took effect.
      --cooldown_;
      return AdmissionDecision::kHold;
    }
    depth_sum_ += sample.depth_fraction;
    if (++n_samples_ < cfg_.window) return AdmissionDecision::kHold;
    const double depth = depth_sum_ / static_cast<double>(n_samples_);
    reset_window();
    if (shedding_) {
      if (depth <= cfg_.recover_depth) {
        shedding_ = false;
        return decide(AdmissionDecision::kStopShed);
      }
      return AdmissionDecision::kHold;
    }
    if (depth >= cfg_.degrade_depth && sample.rungs_left > 0) {
      quiet_windows_ = 0;
      return decide(AdmissionDecision::kDegrade);
    }
    if (depth >= cfg_.shed_depth && sample.rungs_left == 0) {
      // Strictly the last rung: reachable only with the ladder exhausted.
      quiet_windows_ = 0;
      shedding_ = true;
      return decide(AdmissionDecision::kShed);
    }
    if (depth <= cfg_.recover_depth && sample.rungs_used > 0 &&
        cfg_.recover_window > 0) {
      if (++quiet_windows_ >= cfg_.recover_window) {
        quiet_windows_ = 0;
        return decide(AdmissionDecision::kRecover);
      }
    } else {
      quiet_windows_ = 0;
    }
    return AdmissionDecision::kHold;
  }

  bool shedding() const { return shedding_; }
  const AdmissionConfig& config() const { return cfg_; }

 private:
  static AdmissionConfig normalized(AdmissionConfig cfg) {
    if (cfg.window == 0) cfg.window = 1;
    if (cfg.shed_depth < cfg.degrade_depth) cfg.shed_depth = cfg.degrade_depth;
    return cfg;
  }

  AdmissionDecision decide(AdmissionDecision decision) {
    cooldown_ = cfg_.cooldown;
    reset_window();
    return decision;
  }

  void reset_window() {
    depth_sum_ = 0.0;
    n_samples_ = 0;
  }

  AdmissionConfig cfg_;
  bool shedding_ = false;
  std::size_t cooldown_ = 0;
  std::size_t n_samples_ = 0;
  std::size_t quiet_windows_ = 0;
  double depth_sum_ = 0.0;
};

}  // namespace nc::codec
