/// \file service.hpp
/// \brief Multi-stream compression service: many client sessions multiplexed
///        over one shared elastic StreamPipeline and one set of model
///        weights.
///
/// Everything below this layer is "a pipeline": one intake, one global
/// sequence space, one sink.  The deployment the paper targets is "a
/// system" — thousands of concurrent client streams (one per fibre bundle /
/// analysis consumer) sharing a worker pool sized for the aggregate rate,
/// not per client.  `CompressionService` is that layer:
///
///   open_session(ladder, sink) -> submit(wedge)* -> close_session()
///
///  * **Per-session sequence spaces + ordered emission.**  Every session
///    numbers its accepted submits 0,1,2,... independently, and its sink
///    sees envelopes in exactly that order — a per-session reorder cursor
///    keyed on {session, seq}, layered over the shared *unordered* pipeline
///    (global ordering across unrelated clients would be a false
///    dependency).  Shed and failed wedges consume their sequence number
///    and emit nothing: the sink sees a gap, never a reordering.
///  * **Fair scheduling.**  Submits land in a bounded per-session staging
///    queue; a deficit-round-robin scheduler moves up to `drr_quantum`
///    wedges per session per round into the shared pipeline, so one
///    firehose client saturates its own staging queue (and only then its
///    own admission ladder) instead of starving every polite session at a
///    shared intake.
///  * **Degradation-ladder admission.**  Each session brings a codec
///    *ladder* (e.g. bcae-int8 -> zfp, any registered WedgeCodec) — legal
///    mid-stream because every codec speaks WedgeEnvelope.  A pure
///    per-session AdmissionController (admission.hpp) watches staging depth
///    and shared-pipeline spill pressure: under sustained overload the
///    session hops one rung down (cheaper codec, ~100x on the measured
///    bcae->zfp hop), and only with the ladder exhausted does it *shed* —
///    early, counted, per-session drops, instead of spilling blindly until
///    `spill_max_bytes` kills the whole process.
///
/// Concurrency/contract notes:
///  * submit/try_submit are safe from any number of client threads (one or
///    more per session).  Per-session sinks are never invoked concurrently
///    with themselves; sinks of different sessions may run concurrently.
///    A sink must not call back into the service for its own session.
///  * Codec hops apply at *schedule* time: wedges already handed to the
///    pipeline finish under the codec they were scheduled with, so a hop
///    never corrupts in-flight work.  Each emitted envelope carries its
///    codec id, so mixed-rung streams decode normally.
///  * The shared pipeline runs unordered (the service owns ordering);
///    `ServiceOptions::pipeline.ordered` is ignored.  The spill tier and
///    elastic pool compose unchanged.  One caveat: a spill record whose
///    CRC fails on replay (physical disk corruption while running) loses
///    that wedge at the pipeline layer without a per-session notification,
///    which would stall that one session's close_session() drain — every
///    software failure path (codec throw, decode error) instead flows
///    through the transform and advances the session cursor as `failed`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "codec/admission.hpp"
#include "codec/stream_pipeline.hpp"
#include "codec/wedge_codec.hpp"
#include "core/tensor.hpp"

namespace nc::codec {

using SessionId = std::uint64_t;

/// Per-session configuration, fixed at open_session.
struct SessionOptions {
  /// Codec degradation ladder, preferred first (rung 0).  Must be non-empty;
  /// every codec is borrowed and must outlive the session.  A single-entry
  /// ladder never degrades — overload goes straight to shedding.
  std::vector<const WedgeCodec*> ladder;
  /// Staging-queue bound: wedges accepted but not yet scheduled into the
  /// shared pipeline.  This is the depth the admission controller watches.
  std::size_t queue_capacity = 64;
  /// Ordered per-session delivery: called with the session sequence number
  /// and the compressed envelope, in strictly increasing seq order (gaps =
  /// shed/failed wedges).  May be empty (stats-only session).
  std::function<void(std::uint64_t, WedgeEnvelope&&)> sink;
};

/// Outcome of one submit.
enum class SubmitResult {
  kAccepted,   ///< staged; will be compressed and emitted in seq order
  kShed,       ///< admission is shedding this session; wedge dropped, counted
  kQueueFull,  ///< try_submit only: staging queue full right now
  kClosed,     ///< session closed / service finishing; wedge not accepted
};

/// Per-session accounting, snapshot at close_session (or session_stats).
struct SessionStats {
  std::int64_t submitted = 0;   ///< accepted + shed (seq space consumed)
  std::int64_t compressed = 0;  ///< envelopes delivered to the sink
  std::int64_t shed = 0;        ///< dropped by admission (counted gaps)
  std::int64_t failed = 0;      ///< lost to codec errors (counted gaps)
  std::int64_t payload_bytes = 0;
  std::int64_t degradations = 0;  ///< ladder hops down
  std::int64_t recoveries = 0;    ///< ladder hops back up
  std::size_t rung = 0;           ///< current ladder position
  std::string codec;              ///< current codec name
  std::int64_t queue_depth_hwm = 0;  ///< deepest the staging queue ever got
};

/// Service-wide configuration.
struct ServiceOptions {
  /// Shared worker-pool configuration (workers, intake, batch, spill tier,
  /// elastic autoscaling).  `ordered` is forced off — ordering is
  /// per-session, owned by the service.
  StreamOptions pipeline;
  /// Deficit-round-robin quantum: wedges one session may move into the
  /// shared pipeline per scheduler round while others wait.
  std::size_t drr_quantum = 8;
  /// Admission sampling period.  0 = manual mode: no admission thread runs
  /// and ticks are driven via admission_tick() (deterministic tests).
  double admission_interval_s = 0.005;
  /// Per-session admission policy knobs (admission.hpp).
  AdmissionConfig admission;
};

/// Service-wide totals, filled by finish().
struct ServiceStats {
  std::int64_t sessions_opened = 0;
  std::int64_t wedges_scheduled = 0;  ///< moved from staging into the pipeline
  std::int64_t wedges_shed = 0;       ///< across all sessions
  std::int64_t degradations = 0;      ///< ladder hops down, all sessions
  std::int64_t recoveries = 0;        ///< ladder hops up, all sessions
  StreamStats pipeline;               ///< the shared pool's own accounting
};

/// The session-multiplexing compression service (see file comment).
class CompressionService {
 public:
  explicit CompressionService(const ServiceOptions& options);
  ~CompressionService();

  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  /// Register a new session.  Throws std::invalid_argument on an empty (or
  /// null-holding) ladder.  Safe from any thread, including while other
  /// sessions are streaming.
  SessionId open_session(SessionOptions options);

  /// Blocking submit: waits for staging space (bounded by the session's own
  /// queue, never by other sessions' backlogs), unless the session is
  /// shedding or closed — those return immediately.
  SubmitResult submit(SessionId id, core::Tensor wedge);
  /// Non-blocking submit: a full staging queue returns kQueueFull.
  SubmitResult try_submit(SessionId id, core::Tensor wedge);

  /// Seal the session, drain everything it has in flight (staging, pipeline,
  /// reorder cursor) and return its final stats.  Blocking submits wake with
  /// kClosed.  Throws std::invalid_argument on an unknown id.
  SessionStats close_session(SessionId id);

  /// Point-in-time snapshot of a live session's stats (monitoring).
  SessionStats session_stats(SessionId id) const;

  /// One manual admission pass over every open session (admission_interval_s
  /// == 0).  Deterministic: sessions are visited in id order.
  void admission_tick();

  /// Seal the whole service: stop admitting, schedule every staged wedge,
  /// drain the shared pipeline, join all threads.  Idempotent; sessions not
  /// yet closed can still be close_session()'d afterwards (their cursors are
  /// complete by then).
  ServiceStats finish();

  const ServiceOptions& options() const { return options_; }
  /// Sessions currently open (opened - closed).
  std::size_t open_sessions() const;

 private:
  struct Session;

  /// One wedge in flight through the shared pipeline, tagged with its
  /// session and session-local sequence number.
  struct ServiceItem {
    std::shared_ptr<Session> session;
    std::uint64_t seq = 0;
    const WedgeCodec* codec = nullptr;
    core::Tensor wedge;
    /// Spill replay found the wedge bytes corrupt: the transform fails this
    /// item (advancing the session cursor) instead of compressing garbage.
    bool poisoned = false;
  };
  struct ServiceOut {
    std::shared_ptr<Session> session;
    std::uint64_t seq = 0;
    WedgeEnvelope envelope;
    bool ok = false;
  };
  using Pipeline = StreamPipeline<ServiceItem, ServiceOut>;

  static StreamOptions pipeline_options(const ServiceOptions& options);

  /// The shared pipeline's batch transform: groups a mixed-session batch by
  /// codec, runs each group through compress_batch, and NEVER throws —
  /// per-group failures become ok=false outputs, so every session cursor
  /// still advances (pipeline-level batch failure would strand them).
  static std::vector<ServiceOut> run_batch(std::vector<ServiceItem>&& batch);

  std::shared_ptr<Session> find_session(SessionId id) const;
  SubmitResult submit_impl(SessionId id, core::Tensor&& wedge, bool blocking);
  /// Sorted snapshot of the open sessions (scheduler / admission rounds).
  std::vector<std::shared_ptr<Session>> session_round() const;

  /// Record one pipeline completion and advance the session's emit cursor.
  void deliver(ServiceOut&& out);
  /// Drain the session's ready prefix through its sink.  The lock is
  /// released around each sink call; `emitting` keeps drainers exclusive so
  /// per-session sink calls stay serialized and in order.
  static void emit_ready(const std::shared_ptr<Session>& session,
                         std::unique_lock<std::mutex>& lock);

  void scheduler_loop();
  void admission_loop();
  void admission_pass();

  std::string encode_spill(const ServiceItem& item) const;
  ServiceItem decode_spill(const std::string& bytes) const;

  ServiceOptions options_;

  mutable std::mutex sessions_mutex_;
  std::map<SessionId, std::shared_ptr<Session>> sessions_;
  SessionId next_session_id_ = 1;

  std::atomic<std::int64_t> sessions_opened_{0};
  std::atomic<std::int64_t> wedges_scheduled_{0};
  std::atomic<std::int64_t> wedges_shed_{0};
  std::atomic<std::int64_t> degradations_{0};
  std::atomic<std::int64_t> recoveries_{0};

  /// Service-wide seal.  Checked under each session's mutex; finish()
  /// flips it and then takes every session mutex once (a barrier flushing
  /// in-flight submits) before the scheduler's final sweep.
  std::atomic<bool> closing_{false};

  std::mutex sched_mutex_;
  std::condition_variable sched_cv_;
  bool sched_closing_ = false;

  std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  bool admission_closing_ = false;
  std::int64_t spilled_seen_ = 0;  ///< admission thread only

  Pipeline pipeline_;  ///< after the state its callbacks touch
  std::thread scheduler_;
  std::thread admission_thread_;

  std::atomic<bool> finished_{false};
  std::mutex finish_mutex_;
  ServiceStats final_;
};

}  // namespace nc::codec
