#include "codec/wedge_codec.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "baselines/mgard_lite.hpp"
#include "baselines/sz_lite.hpp"
#include "baselines/zfp_lite.hpp"
#include "util/serialize.hpp"

namespace nc::codec {

namespace {

constexpr char kEnvelopeKind[4] = {'W', 'E', 'N', 'V'};
constexpr std::uint32_t kEnvelopeVersion = 1;

// Plausibility caps mirroring CompressedWedge deserialization: a paper-scale
// wedge is (16, 192, 249) and its payload a few hundred kB; corrupt headers
// must fail loudly, not drive giant allocations.
constexpr std::int64_t kMaxWedgeDim = std::int64_t{1} << 20;
constexpr std::int64_t kMaxPayloadBytes = std::int64_t{1} << 29;  // 512 MiB

std::int64_t read_checked_dim(std::istream& is, const char* what) {
  const std::int64_t d = util::read_i64(is);
  if (d <= 0 || d > kMaxWedgeDim) {
    throw util::SerializeError(std::string(what) + " dim implausible: " +
                               std::to_string(d));
  }
  return d;
}

/// Shared by every adapter: an envelope handed to the wrong codec must fail
/// that wedge (the pipeline contains it as wedges_failed), never decode
/// garbage bytes with the wrong mechanism.
void check_envelope_codec(const WedgeEnvelope& env, std::uint8_t expected,
                          const std::string& codec_name) {
  if (env.codec_id != expected) {
    throw std::invalid_argument(
        "decompress: envelope carries codec id " +
        std::to_string(static_cast<int>(env.codec_id)) + " but codec '" +
        codec_name + "' has id " + std::to_string(static_cast<int>(expected)));
  }
}

}  // namespace

bool known_codec_id(std::uint8_t id) {
  switch (static_cast<WedgeCodecId>(id)) {
    case WedgeCodecId::kBcaeFp32:
    case WedgeCodecId::kBcaeFp16:
    case WedgeCodecId::kBcaeInt8:
    case WedgeCodecId::kZfp:
    case WedgeCodecId::kSz:
    case WedgeCodecId::kMgard:
      return true;
  }
  return false;
}

std::string codec_id_name(std::uint8_t id) {
  switch (static_cast<WedgeCodecId>(id)) {
    case WedgeCodecId::kBcaeFp32: return "bcae-fp32";
    case WedgeCodecId::kBcaeFp16: return "bcae-fp16";
    case WedgeCodecId::kBcaeInt8: return "bcae-int8";
    case WedgeCodecId::kZfp: return "zfp";
    case WedgeCodecId::kSz: return "sz";
    case WedgeCodecId::kMgard: return "mgard";
  }
  throw std::invalid_argument("unknown wedge codec id " +
                              std::to_string(static_cast<int>(id)));
}

void WedgeEnvelope::serialize(std::ostream& os) const {
  util::write_magic(os, kEnvelopeKind, kEnvelopeVersion);
  util::write_u32(os, codec_id);
  util::write_i64(os, wedge_shape.radial);
  util::write_i64(os, wedge_shape.azim);
  util::write_i64(os, wedge_shape.horiz);
  util::write_u64(os, payload.size());
  util::write_bytes(os, payload.data(), payload.size());
}

WedgeEnvelope WedgeEnvelope::deserialize(std::istream& is) {
  // Version-gate before touching any field: a future format bump must fail
  // loudly here, not be misparsed as v1 field soup.
  const std::uint32_t version = util::read_magic(is, kEnvelopeKind);
  if (version != kEnvelopeVersion) {
    throw util::SerializeError("unsupported WedgeEnvelope version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kEnvelopeVersion) + ")");
  }
  WedgeEnvelope out;
  const std::uint32_t id = util::read_u32(is);
  if (id > 0xFF || !known_codec_id(static_cast<std::uint8_t>(id))) {
    throw util::SerializeError("unknown wedge codec id " + std::to_string(id));
  }
  out.codec_id = static_cast<std::uint8_t>(id);
  out.wedge_shape.radial = read_checked_dim(is, "wedge radial");
  out.wedge_shape.azim = read_checked_dim(is, "wedge azim");
  out.wedge_shape.horiz = read_checked_dim(is, "wedge horiz");
  const std::uint64_t n = util::read_u64(is);
  if (n > static_cast<std::uint64_t>(kMaxPayloadBytes)) {
    throw util::SerializeError("envelope payload size implausible: " +
                               std::to_string(n));
  }
  out.payload.resize(static_cast<std::size_t>(n));
  util::read_bytes(is, out.payload.data(), out.payload.size());
  return out;
}

WedgeEnvelope WedgeCodec::compress(const core::Tensor& wedge) const {
  auto batch = compress_batch({wedge});
  return std::move(batch.front());
}

core::Tensor WedgeCodec::decompress(const WedgeEnvelope& envelope) const {
  auto batch = decompress_batch({envelope});
  return std::move(batch.front());
}

// --- BCAE adapter -----------------------------------------------------------

namespace {
core::Mode checked_bcae_mode(core::Mode mode) {
  if (mode != core::Mode::kEval && mode != core::Mode::kEvalHalf &&
      mode != core::Mode::kEvalInt8) {
    throw std::invalid_argument("BcaeWedgeCodec: not an inference mode");
  }
  return mode;
}

std::uint8_t bcae_mode_id(core::Mode mode) {
  switch (mode) {
    case core::Mode::kEval:
      return static_cast<std::uint8_t>(WedgeCodecId::kBcaeFp32);
    case core::Mode::kEvalHalf:
      return static_cast<std::uint8_t>(WedgeCodecId::kBcaeFp16);
    default:
      return static_cast<std::uint8_t>(WedgeCodecId::kBcaeInt8);
  }
}
}  // namespace

BcaeWedgeCodec::BcaeWedgeCodec(bcae::BcaeModel& model, core::Mode mode,
                               float threshold)
    : codec_(model, checked_bcae_mode(mode), threshold),
      id_(bcae_mode_id(mode)) {}

std::string BcaeWedgeCodec::name() const { return codec_id_name(id_); }

std::vector<WedgeEnvelope> BcaeWedgeCodec::compress_batch(
    const std::vector<core::Tensor>& wedges) const {
  const auto compressed = codec_.compress_batch(wedges);
  std::vector<WedgeEnvelope> out;
  out.reserve(compressed.size());
  for (const auto& cw : compressed) {
    WedgeEnvelope env;
    env.codec_id = id_;
    env.wedge_shape = cw.wedge_shape;
    std::ostringstream os;
    cw.serialize(os);
    const std::string bytes = os.str();
    env.payload.assign(bytes.begin(), bytes.end());
    out.push_back(std::move(env));
  }
  return out;
}

std::vector<core::Tensor> BcaeWedgeCodec::decompress_batch(
    const std::vector<WedgeEnvelope>& envelopes) const {
  std::vector<CompressedWedge> compressed;
  compressed.reserve(envelopes.size());
  for (const auto& env : envelopes) {
    check_envelope_codec(env, id_, name());
    std::istringstream is(std::string(env.payload.begin(), env.payload.end()));
    CompressedWedge cw;
    try {
      cw = CompressedWedge::deserialize(is);
    } catch (const util::SerializeError& e) {
      // The streaming contract for a corrupt payload is invalid_argument
      // (same as a header/payload mismatch): the batch fails, the worker
      // survives.
      throw std::invalid_argument(std::string("decompress: corrupt BCAE "
                                              "payload: ") + e.what());
    }
    if (cw.wedge_shape != env.wedge_shape) {
      throw std::invalid_argument(
          "decompress: envelope wedge shape disagrees with payload header");
    }
    compressed.push_back(std::move(cw));
  }
  return codec_.decompress_batch(compressed);
}

// --- baseline adapter -------------------------------------------------------

BaselineWedgeCodec::BaselineWedgeCodec(
    WedgeCodecId id, std::unique_ptr<baselines::LossyCodec> impl)
    : id_(static_cast<std::uint8_t>(id)), impl_(std::move(impl)) {
  if (!impl_) {
    throw std::invalid_argument("BaselineWedgeCodec: null implementation");
  }
}

std::string BaselineWedgeCodec::name() const { return codec_id_name(id_); }

std::vector<WedgeEnvelope> BaselineWedgeCodec::compress_batch(
    const std::vector<core::Tensor>& wedges) const {
  std::vector<WedgeEnvelope> out;
  out.reserve(wedges.size());
  for (const auto& w : wedges) {
    if (w.ndim() != 3) {
      throw std::invalid_argument(
          "compress: wedge must be (radial, azim, horiz)");
    }
    WedgeEnvelope env;
    env.codec_id = id_;
    env.wedge_shape = tpc::WedgeShape{w.dim(0), w.dim(1), w.dim(2)};
    env.payload = impl_->compress(w);
    out.push_back(std::move(env));
  }
  return out;
}

std::vector<core::Tensor> BaselineWedgeCodec::decompress_batch(
    const std::vector<WedgeEnvelope>& envelopes) const {
  std::vector<core::Tensor> out;
  out.reserve(envelopes.size());
  for (const auto& env : envelopes) {
    check_envelope_codec(env, id_, name());
    core::Tensor wedge;
    try {
      wedge = impl_->decompress(env.payload);
    } catch (const std::exception& e) {
      throw std::invalid_argument(std::string("decompress: corrupt ") +
                                  name() + " payload: " + e.what());
    }
    const core::Shape expect{env.wedge_shape.radial, env.wedge_shape.azim,
                             env.wedge_shape.horiz};
    if (wedge.shape() != expect) {
      throw std::invalid_argument(
          "decompress: envelope wedge shape disagrees with payload header");
    }
    out.push_back(std::move(wedge));
  }
  return out;
}

// --- registry ---------------------------------------------------------------

std::vector<std::string> registered_codec_names() {
  return {"bcae-fp32", "bcae-fp16", "bcae-int8", "zfp", "sz", "mgard"};
}

std::unique_ptr<WedgeCodec> make_wedge_codec(const std::string& name,
                                             bcae::BcaeModel& model) {
  if (name == "bcae-fp32") {
    return std::make_unique<BcaeWedgeCodec>(model, core::Mode::kEval);
  }
  if (name == "bcae-fp16") {
    return std::make_unique<BcaeWedgeCodec>(model, core::Mode::kEvalHalf);
  }
  if (name == "bcae-int8") {
    return std::make_unique<BcaeWedgeCodec>(model, core::Mode::kEvalInt8);
  }
  if (name == "zfp") {
    return std::make_unique<BaselineWedgeCodec>(
        WedgeCodecId::kZfp, std::make_unique<baselines::ZfpLite>());
  }
  if (name == "sz") {
    return std::make_unique<BaselineWedgeCodec>(
        WedgeCodecId::kSz, std::make_unique<baselines::SzLite>());
  }
  if (name == "mgard") {
    return std::make_unique<BaselineWedgeCodec>(
        WedgeCodecId::kMgard, std::make_unique<baselines::MgardLite>());
  }
  throw std::invalid_argument("unknown wedge codec '" + name + "'");
}

}  // namespace nc::codec
