/// \file sharded_queue.hpp
/// \brief Sharded work-stealing intake: per-worker bounded shards behind the
///        generic `Intake` contract (intake.hpp).
///
/// The single BoundedQueue serializes every producer and every worker on one
/// mutex; at high worker counts that lock is the pipeline's contention point
/// (the ROADMAP scaling item this class closes).  Here the intake splits
/// into `n_shards` independently-locked FIFOs:
///
///  * Producers submit round-robin (by push ticket) so load spreads without
///    coordination; when the round-robin target is full they fall back to
///    the shallowest shard with space, so one slow worker's backlog doesn't
///    fail submits while sibling shards sit empty.  try_push fails only when
///    every shard is full — the same backpressure threshold as a single
///    queue of the aggregate capacity (rounded up to a shard multiple).
///  * Workers drain their own shard first and steal a batch from the
///    deepest sibling when it runs dry (`StealPolicy::kDeepest`, the
///    throughput policy).  Under `kOldestHead` (used by ordered pipelines
///    with a bounded reorder buffer) every pop instead targets the shard
///    holding the globally oldest item — an approximate global FIFO that
///    keeps the reorder buffer shallow and steers workers toward the
///    next-to-emit sequence number.
///
/// Ordering: every push gets a monotonic ticket.  When pushes are
/// externally serialized — as StreamPipeline's submit paths are, under
/// submit_mutex_ — items within one shard are FIFO in submission order, so
/// a popped batch is ascending in submission order (the property the
/// pipeline's reorder buffer relies on; batches are no longer *contiguous*,
/// which it tolerates) and kOldestHead is exact.  Fully concurrent
/// producers still get correct delivery, backpressure and shutdown, but
/// ticket assignment and shard insertion are then separate steps, so
/// per-shard ticket order (and with it batch ascendingness and the
/// oldest-head heuristic) is only approximate — do not feed an ordered
/// pipeline from producers that bypass its submit serialization.
/// The `pop_batch` terminal contract matches BoundedQueue: 0 is returned
/// only when the intake is closed AND every shard is drained — a worker
/// never parks while any sibling shard still holds items, so no wedge can
/// be stranded in the shard of a stalled worker.
///
/// Locking: push/pop touch only one shard mutex on the fast path; the
/// shared `park_mutex_` is taken only to sleep (empty intake) or to wake
/// sleepers, never per item under load.
///
/// Elastic/topology hooks (used by the elastic StreamPipeline pool):
/// `set_active_workers(k)` re-homes fresh pushes onto the shards of the k
/// live workers so a scaled-down worker's shard drains instead of queueing
/// behind a sleeping owner, and `set_shard_nodes` records each shard's NUMA
/// node so kDeepest steals prefer same-node victims.  Neither affects
/// capacity, backpressure or the pop_batch terminal contract.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <vector>

#include "codec/intake.hpp"

namespace nc::codec {

/// Victim-selection policy for cross-shard pops (see file comment).
enum class StealPolicy {
  kDeepest,     ///< own shard first, steal from the deepest sibling
  kOldestHead,  ///< always pop the shard holding the oldest item
};

template <typename T>
class ShardedQueue final : public Intake<T> {
 public:
  ShardedQueue(std::size_t n_shards, std::size_t capacity, StealPolicy policy)
      : policy_(policy), shards_(n_shards == 0 ? 1 : n_shards) {
    shard_capacity_ = (capacity + shards_.size() - 1) / shards_.size();
    if (shard_capacity_ == 0) shard_capacity_ = 1;
  }

  using Intake<T>::try_push;
  bool try_push(T&& item) override {
    if (closed_.load()) return false;
    const std::uint64_t ticket = next_ticket_.fetch_add(1);
    const std::size_t n = shards_.size();
    // Elastic routing: round-robin (and the least-depth fallback) target
    // only the shards owned by live workers, so a scaled-down worker's
    // shard receives nothing new and drains to empty via steals.  The
    // full-capacity sweep below still covers every shard — routing never
    // tightens backpressure, it only moves fresh items off parked shards.
    const std::size_t route = route_limit_.load(std::memory_order_relaxed);
    const std::size_t primary = static_cast<std::size_t>(ticket % route);
    if (push_to(primary, ticket, item)) return true;
    // Round-robin target full: fall back to the shallowest live shard with
    // space.
    std::size_t best = n;
    std::size_t best_depth = std::numeric_limits<std::size_t>::max();
    for (std::size_t s = 0; s < route; ++s) {
      if (s == primary) continue;
      const std::size_t d = shards_[s].depth.load();
      if (d < shard_capacity_ && d < best_depth) {
        best = s;
        best_depth = d;
      }
    }
    if (best < n && push_to(best, ticket, item)) return true;
    // The shallowest candidate raced full (or none had space): try the rest
    // so failure really means "every shard full", not "lost a race".
    for (std::size_t s = 0; s < n; ++s) {
      if (s == primary || s == best) continue;
      if (push_to(s, ticket, item)) return true;
    }
    return false;
  }

  bool wait_for_space() override {
    std::unique_lock<std::mutex> lock(park_mutex_);
    ++space_sleepers_;
    space_cv_.wait(lock, [&] { return closed_.load() || has_space(); });
    --space_sleepers_;
    return !closed_.load();
  }

  SpaceWait wait_for_space_for(std::chrono::nanoseconds timeout) override {
    std::unique_lock<std::mutex> lock(park_mutex_);
    ++space_sleepers_;
    const bool woken = space_cv_.wait_for(
        lock, timeout, [&] { return closed_.load() || has_space(); });
    --space_sleepers_;
    if (!woken) return SpaceWait::kTimeout;
    return closed_.load() ? SpaceWait::kClosed : SpaceWait::kReady;
  }

  std::size_t pop_batch(std::size_t worker_index, std::vector<T>& out,
                        std::size_t max_items, std::size_t adaptive_share,
                        bool* stolen) override {
    if (max_items == 0) max_items = 1;  // keep the 0-iff-closed contract
    const std::size_t n = shards_.size();
    const std::size_t own = worker_index % n;
    while (true) {
      // Recomputed every retry so the drain after an idle park is sized by
      // the burst that woke the worker, not the emptiness before it.
      const std::size_t cap = detail::adaptive_drain_cap(
          total_items_.load(), adaptive_share, max_items);
      // "Stolen" means serving a sibling's backlog because this worker's
      // own shard was dry — the fairness event worth counting.  Under
      // kOldestHead an off-shard pop with items still at home is just the
      // ordering policy at work, not a steal.
      const bool own_empty = shards_[own].depth.load() == 0;
      const std::size_t source = pick_shard(own);
      if (source < n) {
        if (const std::size_t got = take_from(source, out, cap)) {
          if (stolen) *stolen = (source != own) && own_empty;
          return got;
        }
        continue;  // lost a race to another worker: rescan before parking
      }
      // Every shard looked empty: park until a push or close.  Re-check the
      // totals under park_mutex_ — a producer increments total_items_ before
      // checking pop_sleepers_, so registering as a sleeper first makes the
      // wakeup race-free.
      std::unique_lock<std::mutex> lock(park_mutex_);
      if (total_items_.load() > 0) continue;
      if (closed_.load()) {
        // Drop park_mutex_ before the shard sweep (push_to takes shard
        // then park: holding both here would be an ordering inversion).
        lock.unlock();
        if (verified_drained()) return 0;  // closed AND drained: terminal
        continue;  // an accepted push was still in flight: go take it
      }
      ++pop_sleepers_;
      park_cv_.wait(lock,
                    [&] { return total_items_.load() > 0 || closed_.load(); });
      --pop_sleepers_;
    }
  }

  void close() override {
    std::lock_guard<std::mutex> lock(park_mutex_);
    closed_.store(true);
    park_cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Elastic routing hint (see Intake): fresh pushes target shards owned by
  /// workers [0, n_live).  Items already sitting in a deactivated shard are
  /// still popped/stolen — pop_batch always scans every shard.
  void set_active_workers(std::size_t n_live) override {
    route_limit_.store(std::clamp<std::size_t>(n_live, 1, shards_.size()),
                       std::memory_order_relaxed);
  }

  /// Topology hint: NUMA node per shard (index = shard).  Under kDeepest a
  /// worker whose own shard runs dry steals from the deepest *same-node*
  /// shard before crossing nodes.  Must be set before workers start popping
  /// (the pipeline constructor does) — it is read without synchronization.
  /// kOldestHead ignores it: ordered-mode progress (steering the puller to
  /// the next-to-emit item) outranks locality.
  void set_shard_nodes(std::vector<int> nodes) {
    shard_nodes_ = std::move(nodes);
    shard_nodes_.resize(shards_.size(), 0);
  }

  std::size_t size() const override { return total_items_.load(); }
  /// Requested capacity rounded up to a shard multiple.
  std::size_t capacity() const override {
    return shard_capacity_ * shards_.size();
  }
  std::size_t depth_high_water() const override {
    return depth_high_water_.load();
  }
  std::size_t n_shards() const { return shards_.size(); }

 private:
  static constexpr std::uint64_t kNoTicket =
      std::numeric_limits<std::uint64_t>::max();

  struct Entry {
    std::uint64_t ticket = 0;
    T value;
  };

  /// One lock + FIFO per shard, padded so neighbouring shard mutexes don't
  /// share a cache line.  `depth` and `head_ticket` mirror the locked state
  /// for lock-free victim selection (heuristic reads only — takes re-check
  /// under the shard lock).
  struct alignas(64) Shard {
    mutable std::mutex m;
    std::deque<Entry> q;
    std::atomic<std::size_t> depth{0};
    std::atomic<std::uint64_t> head_ticket{kNoTicket};
  };

  bool push_to(std::size_t s, std::uint64_t ticket, T& item) {
    Shard& sh = shards_[s];
    {
      std::lock_guard<std::mutex> lock(sh.m);
      if (closed_.load() || sh.q.size() >= shard_capacity_) return false;
      if (sh.q.empty()) sh.head_ticket.store(ticket);
      sh.q.push_back(Entry{ticket, std::move(item)});
      sh.depth.store(sh.q.size());
      // Inside the shard lock: an item visible in the deque is always
      // counted, so take_from's decrement (which needs this lock first)
      // can never run ahead of the increment and wrap the counter.
      const std::size_t total = total_items_.fetch_add(1) + 1;
      // High-water mark: exact when producers are serialized (as
      // StreamPipeline's submit path is), approximate under free-for-all.
      std::size_t hwm = depth_high_water_.load();
      while (total > hwm &&
             !depth_high_water_.compare_exchange_weak(hwm, total)) {
      }
    }
    // Wake outside the shard lock: park_mutex_ after sh.m would invert
    // against nothing today, but keeping the two uncoupled stays deadlock-
    // safe whatever the sweep below does.
    if (pop_sleepers_.load() > 0) {
      std::lock_guard<std::mutex> lock(park_mutex_);
      park_cv_.notify_all();
    }
    return true;
  }

  /// Authoritative terminal check: closed_ is already observed true, so any
  /// producer that acquires a shard lock from here on rejects its push, and
  /// any producer already inside push_to has inserted before we can take
  /// that same lock — locking each shard once and finding it empty proves
  /// no item exists or can ever appear.  (The lock-free total_items_ /
  /// depth counters alone cannot prove this: a producer that passed the
  /// closed_ check may still be mid-insert when they read 0.)
  bool verified_drained() {
    for (auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.m);
      if (!sh.q.empty()) return false;
    }
    return true;
  }

  std::size_t take_from(std::size_t s, std::vector<T>& out,
                        std::size_t max_items) {
    Shard& sh = shards_[s];
    std::size_t got = 0;
    {
      std::lock_guard<std::mutex> lock(sh.m);
      while (got < max_items && !sh.q.empty()) {
        out.push_back(std::move(sh.q.front().value));
        sh.q.pop_front();
        ++got;
      }
      sh.depth.store(sh.q.size());
      sh.head_ticket.store(sh.q.empty() ? kNoTicket : sh.q.front().ticket);
    }
    if (got > 0) {
      total_items_.fetch_sub(got);
      if (space_sleepers_.load() > 0) {
        std::lock_guard<std::mutex> lock(park_mutex_);
        space_cv_.notify_all();
      }
    }
    return got;
  }

  /// Pick the shard to pop from; returns n_shards() when all look empty.
  std::size_t pick_shard(std::size_t own) const {
    const std::size_t n = shards_.size();
    if (policy_ == StealPolicy::kOldestHead) {
      std::size_t best = n;
      std::uint64_t best_ticket = kNoTicket;
      for (std::size_t s = 0; s < n; ++s) {
        if (shards_[s].depth.load() == 0) continue;
        const std::uint64_t t = shards_[s].head_ticket.load();
        if (best == n || t < best_ticket || (t == best_ticket && s == own)) {
          best = s;
          best_ticket = t;
        }
      }
      return best;
    }
    // kDeepest: drain the worker's own shard first, then the deepest shard
    // on the worker's own NUMA node (cheap steal: the deque's lines are
    // already local), then the deepest anywhere.
    if (shards_[own].depth.load() > 0) return own;
    const bool have_nodes = !shard_nodes_.empty();
    const int own_node = have_nodes ? shard_nodes_[own] : 0;
    std::size_t best = n, best_local = n;
    std::size_t best_depth = 0, best_local_depth = 0;
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t d = shards_[s].depth.load();
      if (d > best_depth) {
        best = s;
        best_depth = d;
      }
      if (have_nodes && shard_nodes_[s] == own_node && d > best_local_depth) {
        best_local = s;
        best_local_depth = d;
      }
    }
    return best_local < n ? best_local : best;
  }

  bool has_space() const {
    for (const auto& sh : shards_) {
      if (sh.depth.load() < shard_capacity_) return true;
    }
    return false;
  }

  StealPolicy policy_;
  std::vector<Shard> shards_;
  std::size_t shard_capacity_ = 1;
  /// NUMA node per shard (empty = no topology hint); written once before
  /// workers start, read-only afterwards.
  std::vector<int> shard_nodes_;
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::size_t> total_items_{0};
  std::atomic<std::size_t> depth_high_water_{0};
  std::atomic<bool> closed_{false};
  /// Fresh pushes route round-robin over shards [0, route_limit_); starts
  /// at "all shards" and tracks the elastic pool's live worker count.
  std::atomic<std::size_t> route_limit_{shards_.size()};

  // Sleep/wake layer: taken only when a producer or worker must park.
  std::mutex park_mutex_;
  std::condition_variable park_cv_;    ///< pop-side waiters (empty intake)
  std::condition_variable space_cv_;   ///< push-side waiters (full intake)
  std::atomic<int> pop_sleepers_{0};
  std::atomic<int> space_sleepers_{0};
};

}  // namespace nc::codec
