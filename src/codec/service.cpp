#include "codec/service.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace nc::codec {

namespace {

// Raw wedge serialization for the service's spill tier, mirroring the
// stream.cpp spill codecs: bytes written under pressure cost no model
// forwards, and the read-back path is hardened so a corrupt record throws
// instead of driving a giant allocation.
constexpr std::int64_t kMaxSpillDim = std::int64_t{1} << 20;
constexpr std::int64_t kMaxSpillElems = std::int64_t{1} << 28;

void write_wedge(std::ostream& os, const core::Tensor& wedge) {
  const auto& shape = wedge.shape();
  util::write_u64(os, shape.size());
  for (const auto d : shape) util::write_i64(os, d);
  util::write_bytes(os, wedge.data(),
                    static_cast<std::size_t>(wedge.numel()) * sizeof(float));
}

core::Tensor read_wedge(std::istream& is) {
  const std::uint64_t rank = util::read_u64(is);
  if (rank > 8) {
    throw util::SerializeError("spilled wedge rank implausible: " +
                               std::to_string(rank));
  }
  core::Shape shape(rank);
  std::int64_t numel = 1;
  for (auto& d : shape) {
    d = util::read_i64(is);
    if (d <= 0 || d > kMaxSpillDim) {
      throw util::SerializeError("spilled wedge dim implausible: " +
                                 std::to_string(d));
    }
    if (numel > kMaxSpillElems / d) {
      throw util::SerializeError("spilled wedge element count implausible");
    }
    numel *= d;
  }
  core::Tensor wedge(std::move(shape));
  util::read_bytes(is, wedge.data(),
                   static_cast<std::size_t>(numel) * sizeof(float));
  return wedge;
}

}  // namespace

/// All mutable per-session state lives behind one mutex: the staging queue
/// the scheduler drains, the sequence space, the reorder cursor the pipeline
/// sink advances, and the admission controller's knobs (rung, shedding).
struct CompressionService::Session {
  Session(SessionId sid, SessionOptions o, const AdmissionConfig& cfg)
      : id(sid), opt(std::move(o)), admission(cfg) {}

  const SessionId id;
  SessionOptions opt;
  AdmissionController admission;

  std::mutex mutex;
  std::condition_variable space_cv;  ///< staging space / shed / close wakeups
  std::condition_variable done_cv;   ///< close_session drain

  struct Staged {
    std::uint64_t seq = 0;
    core::Tensor wedge;
  };
  std::deque<Staged> staging;
  std::uint64_t next_seq = 0;   ///< session sequence space (submit order)
  std::uint64_t next_emit = 0;  ///< ordered emission cursor
  /// Completed-but-not-yet-emitted outputs; nullopt = shed/failed gap whose
  /// seq must still advance the cursor.
  std::map<std::uint64_t, std::optional<WedgeEnvelope>> reorder;
  bool emitting = false;  ///< one sink drainer at a time (sink runs unlocked)

  std::size_t rung = 0;    ///< current ladder position
  bool shedding = false;   ///< admission latched into shedding
  bool closed = false;     ///< no further submits accepted
  std::size_t deficit = 0; ///< DRR credit carried across rounds

  SessionStats stats;

  SessionStats snapshot_locked() const {
    SessionStats out = stats;
    out.rung = rung;
    out.codec = opt.ladder[rung]->name();
    return out;
  }
  /// Everything submitted has been scheduled, compressed (or gapped) and
  /// emitted — the close_session() wait predicate.
  bool drained_locked() const {
    return staging.empty() && next_emit == next_seq && !emitting;
  }
};

StreamOptions CompressionService::pipeline_options(
    const ServiceOptions& options) {
  StreamOptions opt = options.pipeline;
  // The service owns ordering (per-session cursors); a globally ordered
  // pipeline would serialize unrelated sessions behind each other.
  opt.ordered = false;
  opt.reorder_capacity = 0;
  return opt;
}

CompressionService::CompressionService(const ServiceOptions& options)
    : options_(options),
      pipeline_(
          pipeline_options(options),
          [](std::vector<ServiceItem>&& batch) {
            return run_batch(std::move(batch));
          },
          [](const ServiceOut& out) {
            return out.ok ? out.envelope.payload_bytes() : 0;
          },
          [this](std::uint64_t, ServiceOut&& out) { deliver(std::move(out)); },
          Pipeline::SpillCodec{
              [this](const ServiceItem& item) { return encode_spill(item); },
              [this](const std::string& bytes) { return decode_spill(bytes); }}) {
  if (options_.drr_quantum == 0) options_.drr_quantum = 1;
  scheduler_ = std::thread([this] { scheduler_loop(); });
  if (options_.admission_interval_s > 0) {
    admission_thread_ = std::thread([this] { admission_loop(); });
  }
}

CompressionService::~CompressionService() { (void)finish(); }

SessionId CompressionService::open_session(SessionOptions options) {
  if (options.ladder.empty()) {
    throw std::invalid_argument(
        "CompressionService: session ladder must name at least one codec");
  }
  for (const auto* codec : options.ladder) {
    if (codec == nullptr) {
      throw std::invalid_argument(
          "CompressionService: null codec in session ladder");
    }
  }
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const SessionId id = next_session_id_++;
  sessions_.emplace(id, std::make_shared<Session>(id, std::move(options),
                                                  options_.admission));
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::shared_ptr<CompressionService::Session> CompressionService::find_session(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const auto it = sessions_.find(id);
  return it != sessions_.end() ? it->second : nullptr;
}

std::vector<std::shared_ptr<CompressionService::Session>>
CompressionService::session_round() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  std::vector<std::shared_ptr<Session>> round;
  round.reserve(sessions_.size());
  // Map iteration = ascending id: rounds visit sessions in a deterministic
  // order, which the DRR quanta then keep fair.
  for (const auto& [id, session] : sessions_) round.push_back(session);
  return round;
}

std::size_t CompressionService::open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

SubmitResult CompressionService::submit(SessionId id, core::Tensor wedge) {
  return submit_impl(id, std::move(wedge), /*blocking=*/true);
}

SubmitResult CompressionService::try_submit(SessionId id, core::Tensor wedge) {
  return submit_impl(id, std::move(wedge), /*blocking=*/false);
}

SubmitResult CompressionService::submit_impl(SessionId id, core::Tensor&& wedge,
                                             bool blocking) {
  const auto session = find_session(id);
  if (!session) return SubmitResult::kClosed;
  std::unique_lock<std::mutex> lock(session->mutex);
  while (true) {
    if (session->closed || closing_.load(std::memory_order_acquire)) {
      return SubmitResult::kClosed;
    }
    if (session->shedding) {
      // Predictable early drop: the seq is consumed so ordered emission is
      // preserved across the gap, the drop is counted, nothing is queued.
      ++session->stats.submitted;
      ++session->stats.shed;
      wedges_shed_.fetch_add(1, std::memory_order_relaxed);
      session->reorder.emplace(session->next_seq++, std::nullopt);
      emit_ready(session, lock);
      return SubmitResult::kShed;
    }
    if (session->staging.size() < session->opt.queue_capacity) {
      ++session->stats.submitted;
      session->staging.push_back(
          Session::Staged{session->next_seq++, std::move(wedge)});
      session->stats.queue_depth_hwm =
          std::max(session->stats.queue_depth_hwm,
                   static_cast<std::int64_t>(session->staging.size()));
      lock.unlock();
      sched_cv_.notify_one();
      return SubmitResult::kAccepted;
    }
    if (!blocking) return SubmitResult::kQueueFull;
    // Bounded by this session's own queue: backpressure here never depends
    // on other sessions' backlogs (their staging is theirs).
    session->space_cv.wait(lock);
  }
}

void CompressionService::deliver(ServiceOut&& out) {
  const std::shared_ptr<Session> session = std::move(out.session);
  if (!session) return;
  std::unique_lock<std::mutex> lock(session->mutex);
  if (out.ok) {
    ++session->stats.compressed;
    session->stats.payload_bytes += out.envelope.payload_bytes();
    session->reorder.emplace(out.seq, std::move(out.envelope));
  } else {
    ++session->stats.failed;
    session->reorder.emplace(out.seq, std::nullopt);
  }
  emit_ready(session, lock);
}

void CompressionService::emit_ready(const std::shared_ptr<Session>& session,
                                    std::unique_lock<std::mutex>& lock) {
  if (session->emitting) return;  // the active drainer picks up new arrivals
  session->emitting = true;
  while (!session->reorder.empty() &&
         session->reorder.begin()->first == session->next_emit) {
    auto node = session->reorder.extract(session->reorder.begin());
    ++session->next_emit;
    if (node.mapped().has_value() && session->opt.sink) {
      // The sink runs unlocked so a slow consumer never stalls pipeline
      // workers; `emitting` keeps this session's calls serialized, and
      // inserts that land while we are unlocked are picked up on re-check.
      lock.unlock();
      try {
        session->opt.sink(node.key(), std::move(*node.mapped()));
      } catch (const std::exception& e) {
        NC_LOG_WARN << "session " << session->id << " sink failed for wedge "
                    << node.key() << ": " << e.what();
      }
      lock.lock();
    }
  }
  session->emitting = false;
  session->done_cv.notify_all();
}

void CompressionService::scheduler_loop() {
  std::vector<ServiceItem> items;
  while (true) {
    std::size_t moved = 0;
    for (const auto& session : session_round()) {
      items.clear();
      {
        std::lock_guard<std::mutex> lock(session->mutex);
        if (session->staging.empty()) {
          session->deficit = 0;  // DRR: an empty queue carries no credit
          continue;
        }
        session->deficit += options_.drr_quantum;
        const std::size_t take =
            std::min(session->deficit, session->staging.size());
        // The codec is resolved at schedule time: an admission hop applies
        // to later-scheduled wedges only, never to in-flight work.
        const WedgeCodec* codec = session->opt.ladder[session->rung];
        for (std::size_t i = 0; i < take; ++i) {
          auto& staged = session->staging.front();
          items.push_back(ServiceItem{session, staged.seq, codec,
                                      std::move(staged.wedge), false});
          session->staging.pop_front();
        }
        session->deficit -= take;
        if (session->staging.empty()) session->deficit = 0;
      }
      session->space_cv.notify_all();
      // Blocking submits into the shared pool: its backpressure stalls the
      // scheduler — all sessions equally, which is exactly the fairness
      // story — and with a spill tier configured the stall is bounded by
      // spill_deadline_s (overflow lands on disk instead).
      for (auto& item : items) pipeline_.submit(std::move(item));
      moved += items.size();
    }
    wedges_scheduled_.fetch_add(static_cast<std::int64_t>(moved),
                                std::memory_order_relaxed);
    if (moved > 0) continue;
    std::unique_lock<std::mutex> lock(sched_mutex_);
    if (sched_closing_) {
      // Final sweep: finish()'s closing_ barrier guarantees no new submits,
      // so once every staging queue reads empty the intake side is done.
      bool empty = true;
      for (const auto& session : session_round()) {
        std::lock_guard<std::mutex> slock(session->mutex);
        if (!session->staging.empty()) {
          empty = false;
          break;
        }
      }
      if (empty) return;
      continue;
    }
    sched_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void CompressionService::admission_loop() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(options_.admission_interval_s));
  while (true) {
    {
      std::unique_lock<std::mutex> lock(admission_mutex_);
      if (admission_cv_.wait_for(lock, interval,
                                 [&] { return admission_closing_; })) {
        return;
      }
    }
    admission_pass();
  }
}

void CompressionService::admission_tick() { admission_pass(); }

void CompressionService::admission_pass() {
  // Spill pressure is service-global: the shared tier grew since the last
  // pass, or still holds a backlog.  Every session's sample sees it; only
  // the deep ones react (AdmissionConfig::spill_depth).
  const std::int64_t spilled = pipeline_.wedges_spilled();
  const bool spilling = spilled != spilled_seen_ || pipeline_.spill_pending() > 0;
  spilled_seen_ = spilled;
  for (const auto& session : session_round()) {
    std::lock_guard<std::mutex> lock(session->mutex);
    if (session->closed) continue;
    AdmissionSample sample;
    sample.depth_fraction =
        static_cast<double>(session->staging.size()) /
        static_cast<double>(session->opt.queue_capacity);
    sample.spilling = spilling;
    sample.rungs_left = session->opt.ladder.size() - 1 - session->rung;
    sample.rungs_used = session->rung;
    switch (session->admission.observe(sample)) {
      case AdmissionDecision::kDegrade:
        ++session->rung;
        ++session->stats.degradations;
        degradations_.fetch_add(1, std::memory_order_relaxed);
        NC_LOG_INFO << "session " << session->id << " degraded to codec '"
                    << session->opt.ladder[session->rung]->name() << "' (rung "
                    << session->rung << ")";
        break;
      case AdmissionDecision::kShed:
        session->shedding = true;
        NC_LOG_WARN << "session " << session->id
                    << " shedding (ladder exhausted at '"
                    << session->opt.ladder[session->rung]->name() << "')";
        // Blocked submitters shed immediately instead of waiting for space.
        session->space_cv.notify_all();
        break;
      case AdmissionDecision::kStopShed:
        session->shedding = false;
        NC_LOG_INFO << "session " << session->id << " stopped shedding";
        break;
      case AdmissionDecision::kRecover:
        --session->rung;
        ++session->stats.recoveries;
        recoveries_.fetch_add(1, std::memory_order_relaxed);
        NC_LOG_INFO << "session " << session->id << " recovered to codec '"
                    << session->opt.ladder[session->rung]->name() << "' (rung "
                    << session->rung << ")";
        break;
      case AdmissionDecision::kHold:
        break;
    }
  }
}

SessionStats CompressionService::close_session(SessionId id) {
  const auto session = find_session(id);
  if (!session) {
    throw std::invalid_argument("CompressionService: unknown session " +
                                std::to_string(id));
  }
  SessionStats stats;
  {
    std::unique_lock<std::mutex> lock(session->mutex);
    session->closed = true;
    session->space_cv.notify_all();  // blocked submits wake with kClosed
    sched_cv_.notify_one();          // schedule whatever is still staged
    session->done_cv.wait(lock, [&] { return session->drained_locked(); });
    stats = session->snapshot_locked();
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.erase(id);
  }
  return stats;
}

SessionStats CompressionService::session_stats(SessionId id) const {
  const auto session = find_session(id);
  if (!session) {
    throw std::invalid_argument("CompressionService: unknown session " +
                                std::to_string(id));
  }
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->snapshot_locked();
}

ServiceStats CompressionService::finish() {
  std::lock_guard<std::mutex> finish_lock(finish_mutex_);
  if (!finished_.exchange(true)) {
    closing_.store(true, std::memory_order_release);
    // Barrier: a submit that read closing_ == false is still inside its
    // session mutex; taking each one once flushes those in-flight pushes,
    // so the scheduler's final sweep observes the complete staging state.
    for (const auto& session : session_round()) {
      std::lock_guard<std::mutex> lock(session->mutex);
      session->space_cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(admission_mutex_);
      admission_closing_ = true;
    }
    admission_cv_.notify_all();
    if (admission_thread_.joinable()) admission_thread_.join();
    {
      std::lock_guard<std::mutex> lock(sched_mutex_);
      sched_closing_ = true;
    }
    sched_cv_.notify_all();
    if (scheduler_.joinable()) scheduler_.join();
    // Every staged wedge is in the pipeline; finishing it drains the spill
    // tier and delivers every output, completing all session cursors.
    final_.pipeline = pipeline_.finish();
    final_.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
    final_.wedges_scheduled = wedges_scheduled_.load(std::memory_order_relaxed);
    final_.wedges_shed = wedges_shed_.load(std::memory_order_relaxed);
    final_.degradations = degradations_.load(std::memory_order_relaxed);
    final_.recoveries = recoveries_.load(std::memory_order_relaxed);
  }
  return final_;
}

std::vector<CompressionService::ServiceOut> CompressionService::run_batch(
    std::vector<ServiceItem>&& batch) {
  std::vector<ServiceOut> out(batch.size());
  // Bucket by codec, preserving per-bucket input order.  std::map keys on
  // the pointer — fine, grouping needs identity, not a stable order.
  std::map<const WedgeCodec*, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    out[i].session = std::move(batch[i].session);
    out[i].seq = batch[i].seq;
    if (!batch[i].poisoned && batch[i].codec != nullptr) {
      groups[batch[i].codec].push_back(i);
    }
  }
  for (auto& [codec, idx] : groups) {
    std::vector<core::Tensor> wedges;
    wedges.reserve(idx.size());
    for (const auto i : idx) wedges.push_back(std::move(batch[i].wedge));
    try {
      auto envelopes = codec->compress_batch(wedges);
      if (envelopes.size() != idx.size()) {
        throw std::runtime_error("codec returned " +
                                 std::to_string(envelopes.size()) +
                                 " envelopes for " +
                                 std::to_string(idx.size()) + " wedges");
      }
      for (std::size_t j = 0; j < idx.size(); ++j) {
        out[idx[j]].envelope = std::move(envelopes[j]);
        out[idx[j]].ok = true;
      }
    } catch (const std::exception& e) {
      // Contained per codec group: these wedges land in their sessions'
      // `failed` counts (ok stays false), the rest of the batch survives.
      NC_LOG_WARN << "compression service: " << idx.size()
                  << " wedge(s) failed in codec '" << codec->name()
                  << "': " << e.what();
    }
  }
  return out;
}

std::string CompressionService::encode_spill(const ServiceItem& item) const {
  std::ostringstream os;
  util::write_u64(os, item.session ? item.session->id : 0);
  util::write_u64(os, item.seq);
  // The codec pointer cannot survive the disk roundtrip; the rung index
  // can, and the ladder it indexes is immutable for the session's life.
  std::uint32_t rung = 0;
  if (item.session) {
    const auto& ladder = item.session->opt.ladder;
    for (std::size_t r = 0; r < ladder.size(); ++r) {
      if (ladder[r] == item.codec) {
        rung = static_cast<std::uint32_t>(r);
        break;
      }
    }
  }
  util::write_u32(os, rung);
  write_wedge(os, item.wedge);
  return os.str();
}

CompressionService::ServiceItem CompressionService::decode_spill(
    const std::string& bytes) const {
  std::istringstream is(bytes);
  const std::uint64_t sid = util::read_u64(is);
  const std::uint64_t seq = util::read_u64(is);
  const std::uint32_t rung = util::read_u32(is);
  const auto session = find_session(sid);
  if (!session) {
    // Sessions are only erased after their cursor fully drains (which needs
    // every spilled wedge back), so an unknown id means a corrupt header.
    throw util::SerializeError("spilled wedge names unknown session " +
                               std::to_string(sid));
  }
  ServiceItem item;
  item.session = session;
  item.seq = seq;
  {
    std::lock_guard<std::mutex> lock(session->mutex);
    const auto& ladder = session->opt.ladder;
    item.codec = ladder[std::min<std::size_t>(rung, ladder.size() - 1)];
  }
  try {
    item.wedge = read_wedge(is);
  } catch (const util::SerializeError& e) {
    // The routing header parsed, so the session cursor can still advance:
    // poison the item and let the transform fail it (counted per session)
    // instead of throwing the whole record away at the pipeline layer.
    NC_LOG_WARN << "spilled wedge " << seq << " of session " << sid
                << " unreadable, failing it: " << e.what();
    item.poisoned = true;
  }
  return item;
}

}  // namespace nc::codec
