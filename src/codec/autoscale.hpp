/// \file autoscale.hpp
/// \brief Deterministic worker-count autoscaling policy for the elastic
///        StreamPipeline pool.
///
/// The policy is deliberately split from the pipeline's controller thread:
/// `AutoscaleController` is a pure sample-in / target-out state machine
/// with no clocks, threads or sleeps — one `observe()` call is one tick —
/// so unit tests drive it with injected depth/busy/spill samples and assert
/// exact decision sequences (tests/test_autoscale.cpp).  The pipeline's
/// controller thread is the thin impure driver that samples real counters
/// every `StreamOptions::scale_interval_s` and applies the returned target.
///
/// Decision shape (per tick):
///
///   spill observed ──────────────────────────────▶ jump to max_workers
///   (the backlog already overflowed to disk;        ("spill", bypasses
///    ramping +1 at a time is already too late)       window AND cooldown)
///
///   avg depth over `window` ticks >= up_depth ───▶ double the target
///                                                   ("backlog": geometric
///                                                    ramp-up so a burst is
///                                                    met before the spill
///                                                    tier engages)
///
///   avg depth <= up_depth/4 AND
///   avg busy  <= down_busy over `window` ticks ──▶ target - 1
///                                                   ("quiet": conservative
///                                                    step-down on a trickle)
///
/// Hysteresis: after any change the controller holds for `cooldown` ticks
/// (samples during the hold are discarded, so a decision never fires on
/// evidence that predates the previous one), and every non-spill decision
/// needs a full fresh `window` of samples.  Targets always clamp to
/// [min_workers, max_workers].
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

namespace nc::codec {

/// Autoscaler tuning (a subset surfaces as StreamOptions scale_* knobs).
struct AutoscaleConfig {
  std::size_t min_workers = 1;  ///< floor the pool spins down to on a trickle
  std::size_t max_workers = 1;  ///< ceiling (the pool's thread count)
  std::size_t window = 8;       ///< samples averaged per decision
  std::size_t cooldown = 4;     ///< ticks held after a decision (hysteresis)
  double up_depth = 0.5;        ///< avg intake-depth fraction triggering scale-up
  double down_busy = 0.25;      ///< avg busy fraction at/below which to scale down
  /// Scale-down also requires the intake to be near-empty; 0 derives the
  /// threshold as up_depth / 4.
  double down_depth = 0.0;
};

/// One controller tick's worth of observed load.
struct AutoscaleSample {
  double depth_fraction = 0.0;  ///< intake depth / effective capacity, [0, 1]
  double busy_fraction = 0.0;   ///< busy workers / live workers, [0, 1]
  bool spilling = false;        ///< spill tier grew (or holds a backlog) since last tick
};

/// A scaling decision, as surfaced to the StreamOptions::on_scale_event
/// observability hook.
struct ScaleEvent {
  double t_s = 0.0;        ///< seconds since pipeline construction
  std::size_t from = 0;    ///< live worker target before the decision
  std::size_t to = 0;      ///< live worker target after the decision
  const char* reason = ""; ///< "spill" | "backlog" | "quiet" | "manual"
};

using ScaleEventHook = std::function<void(const ScaleEvent&)>;

/// Deterministic autoscaling state machine (see file comment).
class AutoscaleController {
 public:
  AutoscaleController(const AutoscaleConfig& config, std::size_t initial)
      : cfg_(normalized(config)),
        target_(std::clamp(initial, cfg_.min_workers, cfg_.max_workers)) {}

  /// Feed one tick of observed load; returns the (possibly unchanged)
  /// live-worker target.  Pure: same sample sequence, same targets.
  std::size_t observe(const AutoscaleSample& sample) {
    if (sample.spilling) {
      if (target_ < cfg_.max_workers) {
        // Emergency path: items are already landing on disk, so the gradual
        // ramp (and any cooldown hold) has demonstrably lost the race.
        decide(cfg_.max_workers, "spill");
        return target_;
      }
      // Already at the ceiling: no decision to make, but refresh the hold —
      // spilling ticks must not burn the cooldown, or a transient spill
      // could step back down ("quiet") the instant the backlog drains and
      // thrash up/down within one scale interval.
      cooldown_ = cfg_.cooldown;
      reset_window();
      return target_;
    }
    if (cooldown_ > 0) {
      // Hysteresis hold: discard the sample so the next decision rests
      // only on evidence gathered after the previous one took effect.
      --cooldown_;
      return target_;
    }
    depth_sum_ += sample.depth_fraction;
    busy_sum_ += sample.busy_fraction;
    if (++n_samples_ < cfg_.window) return target_;
    const double depth = depth_sum_ / static_cast<double>(n_samples_);
    const double busy = busy_sum_ / static_cast<double>(n_samples_);
    reset_window();
    if (depth >= cfg_.up_depth && target_ < cfg_.max_workers) {
      // Geometric ramp: a backlog that survives a whole window deserves a
      // doubling, not a +1 crawl — the point is to win before spilling.
      decide(std::min(cfg_.max_workers, target_ * 2), "backlog");
    } else if (depth <= cfg_.down_depth && busy <= cfg_.down_busy &&
               target_ > cfg_.min_workers) {
      decide(target_ - 1, "quiet");
    }
    return target_;
  }

  std::size_t target() const { return target_; }
  /// Reason of the most recent change ("" before the first decision).
  const char* last_reason() const { return last_reason_; }
  const AutoscaleConfig& config() const { return cfg_; }

 private:
  static AutoscaleConfig normalized(AutoscaleConfig cfg) {
    if (cfg.min_workers == 0) cfg.min_workers = 1;
    cfg.max_workers = std::max(cfg.max_workers, cfg.min_workers);
    if (cfg.window == 0) cfg.window = 1;
    if (cfg.down_depth <= 0.0) cfg.down_depth = cfg.up_depth / 4.0;
    return cfg;
  }

  void decide(std::size_t target, const char* reason) {
    target_ = target;
    last_reason_ = reason;
    cooldown_ = cfg_.cooldown;
    reset_window();
  }

  void reset_window() {
    depth_sum_ = 0.0;
    busy_sum_ = 0.0;
    n_samples_ = 0;
  }

  AutoscaleConfig cfg_;
  std::size_t target_;
  std::size_t cooldown_ = 0;
  std::size_t n_samples_ = 0;
  double depth_sum_ = 0.0;
  double busy_sum_ = 0.0;
  const char* last_reason_ = "";
};

}  // namespace nc::codec
