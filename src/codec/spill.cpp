#include "codec/spill.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/serialize.hpp"

namespace nc::codec {

namespace {
constexpr char kSpillKind[4] = {'S', 'P', 'I', 'L'};
// "NCMP" "SPIL" u32 version u32 codec_id
constexpr std::uint64_t kSegmentHeaderBytes = 16;
constexpr std::uint64_t kRecordOverheadBytes = 16 + 4;  // header + crc
// Spilled wedges are at most a few MB each; the cap — checked BEFORE the
// payload allocation — keeps a corrupt length field from driving a giant
// allocation ahead of the CRC check, while leaving orders of magnitude of
// headroom over any real record.
constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t{1} << 28;  // 256 MiB
}  // namespace

SpillRecord read_spill_record(std::istream& is) {
  // The 16-byte (seq, payload_len) header is read raw so the CRC can cover
  // exactly the bytes on disk.
  char hdr[16];
  is.read(hdr, sizeof(hdr));
  if (is.gcount() != static_cast<std::streamsize>(sizeof(hdr))) {
    throw util::SerializeError("spill record truncated");
  }
  std::uint64_t seq = 0, len = 0;
  std::memcpy(&seq, hdr, 8);
  std::memcpy(&len, hdr + 8, 8);
  if (len > kMaxPayloadBytes) {
    throw util::SerializeError("spill record length implausible: " +
                               std::to_string(len));
  }
  SpillRecord rec;
  rec.seq = seq;
  rec.payload.resize(static_cast<std::size_t>(len));
  util::read_bytes(is, rec.payload.data(), rec.payload.size());
  const std::uint32_t stored = util::read_u32(is);
  std::uint32_t crc = util::crc32(hdr, sizeof(hdr));
  crc = util::crc32(rec.payload.data(), rec.payload.size(), crc);
  if (crc != stored) {
    throw util::SerializeError("spill record CRC mismatch (seq " +
                               std::to_string(seq) + ")");
  }
  return rec;
}

SpillLog::SpillLog(SpillOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw util::SerializeError("spill dir not set");
  }
  if (options_.segment_bytes == 0) options_.segment_bytes = 1;  // roll per record
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec || !std::filesystem::is_directory(options_.dir)) {
    throw util::SerializeError("cannot create spill dir '" + options_.dir +
                               "': " + (ec ? ec.message() : "not a directory"));
  }
  // Per-instance file prefix so two pipelines pointed at the same directory
  // never interleave segments.
  static std::atomic<std::uint64_t> instance{0};
  prefix_ = "spill-" + std::to_string(instance.fetch_add(1)) + "-";
}

SpillLog::~SpillLog() { close(); }

std::string SpillLog::segment_path(std::size_t id) const {
  char num[16];
  std::snprintf(num, sizeof(num), "%06zu", id);
  return options_.dir + "/" + prefix_ + num + ".seg";
}

void SpillLog::roll_segment_locked() {
  if (out_.is_open()) out_.close();
  out_.clear();
  Segment seg;
  seg.id = next_segment_id_++;
  seg.path = segment_path(seg.id);
  out_.open(seg.path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    out_.clear();
    throw util::SerializeError("cannot open spill segment: " + seg.path);
  }
  util::write_magic(out_, kSpillKind, kFormatVersion);
  util::write_u32(out_, options_.codec_id);
  out_.flush();
  if (!out_) {
    out_.close();
    out_.clear();
    // The file exists but was never tracked in segments_ — delete it now or
    // nothing ever will (reap and close() only walk segments_).
    std::error_code ec;
    std::filesystem::remove(seg.path, ec);
    throw util::SerializeError("spill segment header write failed: " + seg.path);
  }
  seg.bytes = kSegmentHeaderBytes;
  bytes_on_disk_ += kSegmentHeaderBytes;
  if (bytes_on_disk_ > bytes_hwm_) bytes_hwm_ = bytes_on_disk_;
  segments_.push_back(std::move(seg));
}

void SpillLog::append(std::uint64_t seq, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) throw util::SerializeError("spill log is closed");
  const std::uint64_t rec_bytes = kRecordOverheadBytes + payload.size();
  const bool roll = !out_.is_open() ||
                    segments_.back().bytes >= options_.segment_bytes;
  // Quota check up front: an over-quota append must leave the log exactly
  // as it was (the caller counts the wedge as dropped and moves on).
  const std::uint64_t grow = rec_bytes + (roll ? kSegmentHeaderBytes : 0);
  if (options_.max_bytes != 0 && bytes_on_disk_ + grow > options_.max_bytes) {
    throw util::SerializeError(
        "spill quota exceeded (" + std::to_string(bytes_on_disk_) + " + " +
        std::to_string(grow) + " > " + std::to_string(options_.max_bytes) +
        " bytes)");
  }
  if (roll) roll_segment_locked();
  Segment& tail = segments_.back();
  const std::uint64_t offset = tail.bytes;
  char hdr[16];
  const std::uint64_t len = payload.size();
  std::memcpy(hdr, &seq, 8);
  std::memcpy(hdr + 8, &len, 8);
  out_.write(hdr, sizeof(hdr));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::uint32_t crc = util::crc32(hdr, sizeof(hdr));
  crc = util::crc32(payload.data(), payload.size(), crc);
  util::write_u32(out_, crc);
  // Flush before acknowledging: a record the caller counts as spilled must
  // be bytes a reader can see.
  out_.flush();
  if (!out_) {
    // Short write: the tail now ends in a partial record.  Poison only the
    // tail — close the writer so the next append rolls to a fresh segment;
    // every record already indexed lives below `offset` and stays readable.
    out_.close();
    out_.clear();
    throw util::SerializeError("spill write failed: " + tail.path);
  }
  tail.bytes += rec_bytes;
  ++tail.pending;
  bytes_on_disk_ += rec_bytes;
  if (bytes_on_disk_ > bytes_hwm_) bytes_hwm_ = bytes_on_disk_;
  index_.push_back(PendingRec{seq, tail.id, offset});
}

std::optional<SpillLog::Popped> SpillLog::pop() {
  PendingRec rec;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.empty()) return std::nullopt;
    rec = index_.front();
    index_.pop_front();
    for (const auto& s : segments_) {
      if (s.id == rec.segment_id) {
        path = s.path;
        break;
      }
    }
  }
  Popped out;
  out.seq = rec.seq;
  if (!path.empty()) {
    // The record read runs UNLOCKED: an appender holding the pipeline's
    // submit mutex blocks on mutex_, so holding it across disk I/O would
    // leak replay latency into the real-time submit path.  Safe because
    // pop has a single consumer (class comment): nobody else removes the
    // segment before the post-read bookkeeping below, and appends only
    // ever extend the file past this record.  A fresh read handle per pop
    // keeps the writer's ofstream and the reader decoupled (no sticky EOF
    // state on a growing tail).
    std::ifstream in(path, std::ios::binary);
    if (in) {
      in.seekg(static_cast<std::streamoff>(rec.offset));
      try {
        SpillRecord parsed = read_spill_record(in);
        if (parsed.seq == rec.seq) {
          out.payload = std::move(parsed.payload);
          out.ok = true;
        }
      } catch (const util::SerializeError&) {
        // out.ok stays false: the caller knows which seq was lost.
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& s : segments_) {
      if (s.id == rec.segment_id) {
        if (s.pending > 0) --s.pending;
        break;
      }
    }
    reap_drained_segments_locked();
  }
  return out;
}

void SpillLog::reap_drained_segments_locked() {
  if (options_.keep) return;
  while (!segments_.empty() && segments_.front().pending == 0) {
    // Never delete the open write tail out from under the ofstream.
    if (segments_.front().id == segments_.back().id && out_.is_open()) break;
    std::error_code ec;
    std::filesystem::remove(segments_.front().path, ec);
    bytes_on_disk_ -= std::min(bytes_on_disk_, segments_.front().bytes);
    segments_.pop_front();
  }
}

std::size_t SpillLog::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

std::uint64_t SpillLog::bytes_on_disk() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_on_disk_;
}

std::uint64_t SpillLog::bytes_hwm() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_hwm_;
}

std::vector<std::string> SpillLog::segment_paths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> paths;
  paths.reserve(segments_.size());
  for (const auto& seg : segments_) paths.push_back(seg.path);
  return paths;
}

void SpillLog::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  if (out_.is_open()) out_.close();
  if (!options_.keep) {
    for (const auto& seg : segments_) {
      std::error_code ec;
      std::filesystem::remove(seg.path, ec);
    }
    segments_.clear();
    index_.clear();
    bytes_on_disk_ = 0;
  }
}

SpillSegmentHeader read_spill_segment_header(std::istream& is) {
  SpillSegmentHeader hdr;
  hdr.version = util::read_magic(is, kSpillKind);
  if (hdr.version != SpillLog::kFormatVersion) {
    throw util::SerializeError(
        "unsupported spill segment version " + std::to_string(hdr.version) +
        " (expected " + std::to_string(SpillLog::kFormatVersion) + ")");
  }
  hdr.codec_id = util::read_u32(is);
  return hdr;
}

SpillReader::SpillReader(const std::string& path,
                         std::uint32_t expected_codec_id)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) {
    throw util::SerializeError("cannot open spill segment: " + path);
  }
  header_ = read_spill_segment_header(in_);
  // Untagged on either side (pre-tagging writer, or a reader that does not
  // care) skips the gate; two non-zero ids must agree.
  if (header_.codec_id != 0 && expected_codec_id != 0 &&
      header_.codec_id != expected_codec_id) {
    throw util::SerializeError(
        "spill segment '" + path + "' was written under codec id " +
        std::to_string(header_.codec_id) + " but replay expects codec id " +
        std::to_string(expected_codec_id));
  }
}

bool SpillReader::next(SpillRecord& out) {
  if (in_.peek() == std::char_traits<char>::eof()) return false;
  out = read_spill_record(in_);
  return true;
}

}  // namespace nc::codec
