/// \file stream.hpp
/// \brief DAQ-style streaming compression pipeline.
///
/// Models the deployment the paper targets (§1): wedges arrive continuously
/// from front-end electronics; a real-time compressor must keep up with the
/// collision rate.  The pipeline is a bounded-queue producer/consumer:
/// producers enqueue wedges (the "detector"), a pool of `n_workers`
/// compressor threads drains them in batches through the BCAE encoder, and
/// compressed wedges are handed to a sink callback (the "storage").
/// Backpressure is explicit — if the compressors cannot keep up,
/// `try_submit` fails and the drop is counted, which is exactly the
/// operational metric a streaming DAQ cares about.
///
/// Concurrency model:
///  * Every accepted wedge gets a sequence number matching queue (FIFO)
///    order; the sink receives it alongside the payload.
///  * Unordered mode (default): workers invoke the sink as soon as a batch
///    finishes, possibly concurrently — the sink must be thread-safe when
///    `n_workers > 1`.
///  * Ordered mode: compressed wedges pass through a reorder buffer and the
///    sink sees strictly increasing sequence numbers; sink invocations are
///    serialized, so the sink needs no internal locking.
///  * `finish()` is idempotent (atomic exchange) and safe to call from any
///    thread, including implicitly via the destructor after an explicit
///    `finish()`.
///
/// Timing: per-worker `active_s` is thread-time spent compressing; the
/// aggregate `elapsed_s` is the union of busy intervals (wall time during
/// which at least one worker was compressing), so `throughput_wps()`
/// reflects true parallel throughput rather than summed thread-time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "codec/bcae_codec.hpp"
#include "util/timer.hpp"

namespace nc::codec {

/// Thread-safe bounded FIFO.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue; false when the queue is full (backpressure).
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Blocking enqueue; false only when the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Blocking dequeue; false when the queue is closed and drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    cv_space_.notify_one();
    return true;
  }

  /// Dequeue up to `max_items` without blocking beyond the first element.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    std::size_t n = 0;
    while (n < max_items && !queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++n;
    }
    cv_space_.notify_all();
    return n;
  }

  /// Block until the queue has free space or is closed; false when closed.
  /// Space is not reserved: a concurrent producer may claim it first, so
  /// callers combine this with try_push in a retry loop.
  bool wait_for_space() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    return !closed_;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_, cv_space_;
  std::deque<T> queue_;
  bool closed_ = false;
};

/// Pipeline configuration knobs.
struct StreamOptions {
  std::size_t queue_capacity = 64;  ///< intake bound (backpressure threshold)
  std::size_t batch_size = 8;      ///< wedges per encoder pass (Fig. 6)
  std::size_t n_workers = 1;       ///< compressor threads draining the queue
  bool ordered = false;            ///< reorder output to submission order
};

/// Per-worker accounting, reported in StreamStats::per_worker.
struct WorkerStats {
  std::int64_t wedges_compressed = 0;
  std::int64_t batches = 0;
  std::int64_t payload_bytes = 0;
  double active_s = 0.0;  ///< thread-time spent in compress+sink
};

struct StreamStats {
  std::int64_t wedges_in = 0;        ///< accepted into the queue
  std::int64_t wedges_dropped = 0;   ///< lost: backpressure or submit after close
  std::int64_t wedges_compressed = 0;
  std::int64_t wedges_failed = 0;    ///< accepted but lost to a codec error
  std::int64_t payload_bytes = 0;
  double elapsed_s = 0.0;  ///< wall time with >=1 worker busy (parallel active time)
  double cpu_s = 0.0;      ///< summed per-worker active time
  std::vector<WorkerStats> per_worker;

  double throughput_wps() const {
    return elapsed_s > 0 ? wedges_compressed / elapsed_s : 0.0;
  }
};

/// Multi-worker streaming pipeline: `n_workers` compressor threads drain the
/// input queue in batches of `batch_size` (batching is what buys encoder
/// throughput, Fig. 6) and hand every compressed wedge to the sink.
class StreamCompressor {
 public:
  using Sink = std::function<void(CompressedWedge&&)>;
  /// Sink receiving the wedge's submission sequence number.
  using SeqSink = std::function<void(std::uint64_t, CompressedWedge&&)>;

  StreamCompressor(BcaeCodec& codec, const StreamOptions& options, SeqSink sink);
  StreamCompressor(BcaeCodec& codec, const StreamOptions& options, Sink sink);
  /// Legacy single-worker construction (unordered).
  StreamCompressor(BcaeCodec& codec, std::size_t queue_capacity,
                   std::size_t batch_size, Sink sink);
  ~StreamCompressor();

  StreamCompressor(const StreamCompressor&) = delete;
  StreamCompressor& operator=(const StreamCompressor&) = delete;

  /// Non-blocking submit with backpressure accounting.
  bool try_submit(core::Tensor wedge);
  /// Blocking submit (test/offline use).
  void submit(core::Tensor wedge);

  /// Close the intake, drain the queue, join the workers and return totals
  /// plus the per-worker breakdown.  Idempotent: later calls return the same
  /// compression totals with up-to-date intake/drop counters.
  StreamStats finish();

  const StreamOptions& options() const { return options_; }

 private:
  /// A queued wedge tagged with its FIFO sequence number.
  struct Item {
    std::uint64_t seq = 0;
    core::Tensor wedge;
  };

  void worker_loop(std::size_t worker_index);
  void emit_batch(const std::vector<std::uint64_t>& seqs,
                  std::vector<CompressedWedge>&& compressed);
  void skip_seqs(const std::vector<std::uint64_t>& seqs);
  void drain_reorder_locked();  ///< caller holds reorder_mutex_
  void enter_busy();
  void exit_busy();

  BcaeCodec& codec_;
  StreamOptions options_;
  SeqSink sink_;
  BoundedQueue<Item> queue_;

  // Intake: the mutex makes sequence numbers match queue FIFO order.
  std::mutex submit_mutex_;
  std::uint64_t next_seq_ = 0;
  std::atomic<std::int64_t> wedges_in_{0};
  std::atomic<std::int64_t> wedges_dropped_{0};
  std::atomic<std::int64_t> wedges_failed_{0};

  // Busy-interval union: a clock that runs while >=1 worker is compressing.
  std::mutex busy_mutex_;
  int busy_workers_ = 0;
  util::Timer busy_timer_;
  double busy_s_ = 0.0;

  // Ordered-sink reorder buffer.  nullopt marks a failed wedge whose
  // sequence number must still advance the emit cursor.
  std::mutex reorder_mutex_;
  std::map<std::uint64_t, std::optional<CompressedWedge>> reorder_;
  std::uint64_t next_emit_ = 0;

  std::vector<WorkerStats> worker_stats_;
  std::vector<std::thread> workers_;

  std::atomic<bool> finished_{false};
  std::mutex finish_mutex_;
  StreamStats merged_;  ///< worker totals, filled once on first finish()
};

}  // namespace nc::codec
