/// \file stream.hpp
/// \brief DAQ-style streaming codec stages: both sides of the deployment.
///
/// Models the two-sided deployment the paper targets (§1): wedges arrive
/// continuously from front-end electronics and a real-time compressor must
/// keep up with the collision rate (`StreamCompressor`); later, offline
/// analysis streams the stored bitstreams back through the decoder
/// (`StreamDecompressor`).  Both are thin adapters over the generic
/// `StreamPipeline` worker pool (see stream_pipeline.hpp for the concurrency
/// model: pluggable bounded intake — a shared queue or per-worker
/// work-stealing shards, `StreamOptions::intake` — with explicit
/// backpressure, adaptively-sized batched transforms, sequence numbering,
/// optional in-order emission, failure containment and idempotent finish()).
/// Both directions inherit the sharded intake and its steal/depth
/// observability (`StreamStats::batches_stolen` / `queue_depth_hwm`) for
/// free, since the intake lives below the transform.  They likewise both
/// support the lossless spill tier (`StreamOptions::spill_dir`,
/// spill.hpp): the write side spills raw fp32 wedges, the read side spills
/// serialized WedgeEnvelope bytes, and in either case a burst beyond the
/// intake bound lands on disk and is replayed — `wedges_dropped` stays 0.
///
/// Since the codec-pluggable refactor, both stages are parameterized by a
/// `WedgeCodec` (wedge_codec.hpp) rather than hard-wired to the BCAE: any
/// registered codec — bcae-fp32/fp16/int8 or the zfp/sz/mgard baselines —
/// can back the same deployment, and the stream's unit of exchange is the
/// codec-tagged `WedgeEnvelope`.  The codec is borrowed and must outlive
/// the stage; its batched methods are invoked concurrently from all
/// `n_workers` threads (the WedgeCodec thread-safety contract).
#pragma once

#include <cstdint>
#include <functional>

#include "codec/stream_pipeline.hpp"
#include "codec/wedge_codec.hpp"

namespace nc::codec {

/// Write side: raw wedges in, codec-tagged envelopes out through the codec's
/// batched encoder.  `n_workers` threads drain the queue in batches of
/// `batch_size` (batching is what buys encoder throughput, Fig. 6).
class StreamCompressor {
 public:
  using Sink = std::function<void(WedgeEnvelope&&)>;
  /// Sink receiving the wedge's submission sequence number.
  using SeqSink = std::function<void(std::uint64_t, WedgeEnvelope&&)>;

  StreamCompressor(const WedgeCodec& codec, const StreamOptions& options,
                   SeqSink sink);
  StreamCompressor(const WedgeCodec& codec, const StreamOptions& options,
                   Sink sink);
  /// Legacy single-worker construction (unordered).
  StreamCompressor(const WedgeCodec& codec, std::size_t queue_capacity,
                   std::size_t batch_size, Sink sink);

  StreamCompressor(const StreamCompressor&) = delete;
  StreamCompressor& operator=(const StreamCompressor&) = delete;

  /// Non-blocking submit with backpressure accounting.
  bool try_submit(core::Tensor wedge) { return pipeline_.try_submit(std::move(wedge)); }
  /// Blocking submit (test/offline use).
  void submit(core::Tensor wedge) { pipeline_.submit(std::move(wedge)); }

  /// Close the intake, drain the queue, join the workers and return totals
  /// plus the per-worker breakdown.  Idempotent: later calls return the same
  /// compression totals with up-to-date intake/drop counters.
  StreamStats finish() { return pipeline_.finish(); }

  const StreamOptions& options() const { return pipeline_.options(); }

  /// Elastic pool passthroughs (see StreamPipeline): manual/observed live
  /// worker count and the resolved core placement when pinning is active.
  std::size_t set_live_workers(std::size_t n, const char* reason = "manual") {
    return pipeline_.set_live_workers(n, reason);
  }
  std::size_t live_workers() const { return pipeline_.live_workers(); }
  const std::vector<util::CpuInfo>& placement() const {
    return pipeline_.placement();
  }

 private:
  StreamPipeline<core::Tensor, WedgeEnvelope> pipeline_;
};

/// Read side: codec-tagged envelopes in, decoded tensors out through the
/// codec's batched decoder — the offline-analysis twin of
/// `StreamCompressor`.  Stats vocabulary is shared with the write side:
/// `wedges_compressed` counts decoded wedges and `payload_bytes` the
/// fp16-accounted bytes of the reconstructed wedges (the volume handed to
/// the analysis sink).  A wedge whose payload fails to decode (wrong codec
/// id, corrupt payload, truncated bitstream) fails its whole batch into
/// `wedges_failed` — the same wholesale containment as the write side —
/// without killing its worker or stalling the ordered cursor; run
/// corrupt-prone streams with `batch_size = 1` to contain the loss to the
/// poisoned wedge.
class StreamDecompressor {
 public:
  using Sink = std::function<void(core::Tensor&&)>;
  /// Sink receiving the wedge's submission sequence number.
  using SeqSink = std::function<void(std::uint64_t, core::Tensor&&)>;

  StreamDecompressor(const WedgeCodec& codec, const StreamOptions& options,
                     SeqSink sink);
  StreamDecompressor(const WedgeCodec& codec, const StreamOptions& options,
                     Sink sink);

  StreamDecompressor(const StreamDecompressor&) = delete;
  StreamDecompressor& operator=(const StreamDecompressor&) = delete;

  /// Non-blocking submit with backpressure accounting.
  bool try_submit(WedgeEnvelope envelope) {
    return pipeline_.try_submit(std::move(envelope));
  }
  /// Blocking submit (test/offline use).
  void submit(WedgeEnvelope envelope) { pipeline_.submit(std::move(envelope)); }

  /// Close the intake, drain the queue, join the workers and return totals
  /// plus the per-worker breakdown (idempotent, like the write side).
  StreamStats finish() { return pipeline_.finish(); }

  const StreamOptions& options() const { return pipeline_.options(); }

  /// Elastic pool passthroughs (see StreamPipeline).
  std::size_t set_live_workers(std::size_t n, const char* reason = "manual") {
    return pipeline_.set_live_workers(n, reason);
  }
  std::size_t live_workers() const { return pipeline_.live_workers(); }
  const std::vector<util::CpuInfo>& placement() const {
    return pipeline_.placement();
  }

 private:
  StreamPipeline<WedgeEnvelope, core::Tensor> pipeline_;
};

}  // namespace nc::codec
