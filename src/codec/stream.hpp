/// \file stream.hpp
/// \brief DAQ-style streaming compression pipeline.
///
/// Models the deployment the paper targets (§1): wedges arrive continuously
/// from front-end electronics; a real-time compressor must keep up with the
/// collision rate.  The pipeline is a bounded-queue producer/consumer:
/// producers enqueue wedges (the "detector"), one compressor drains them in
/// batches through the BCAE encoder, and compressed wedges are handed to a
/// sink callback (the "storage").  Backpressure is explicit — if the
/// compressor cannot keep up, `try_submit` fails and the drop is counted,
/// which is exactly the operational metric a streaming DAQ cares about.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "codec/bcae_codec.hpp"

namespace nc::codec {

/// Thread-safe bounded FIFO.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue; false when the queue is full (backpressure).
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Blocking enqueue; false only when the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Blocking dequeue; false when the queue is closed and drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    cv_space_.notify_one();
    return true;
  }

  /// Dequeue up to `max_items` without blocking beyond the first element.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    std::size_t n = 0;
    while (n < max_items && !queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++n;
    }
    cv_space_.notify_all();
    return n;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_, cv_space_;
  std::deque<T> queue_;
  bool closed_ = false;
};

struct StreamStats {
  std::int64_t wedges_in = 0;        ///< accepted into the queue
  std::int64_t wedges_dropped = 0;   ///< lost: backpressure or submit after close
  std::int64_t wedges_compressed = 0;
  std::int64_t payload_bytes = 0;
  double elapsed_s = 0.0;           ///< active compress+sink time (excludes queue-wait idle)
  double throughput_wps() const {
    return elapsed_s > 0 ? wedges_compressed / elapsed_s : 0.0;
  }
};

/// Single-compressor streaming pipeline.  The compressor thread drains the
/// input queue in batches of `batch_size` (batching is what buys encoder
/// throughput, Fig. 6) and invokes `sink` for every compressed wedge.
class StreamCompressor {
 public:
  using Sink = std::function<void(CompressedWedge&&)>;

  StreamCompressor(BcaeCodec& codec, std::size_t queue_capacity,
                   std::size_t batch_size, Sink sink);
  ~StreamCompressor();

  StreamCompressor(const StreamCompressor&) = delete;
  StreamCompressor& operator=(const StreamCompressor&) = delete;

  /// Non-blocking submit with backpressure accounting.
  bool try_submit(core::Tensor wedge);
  /// Blocking submit (test/offline use).
  void submit(core::Tensor wedge);

  /// Close the intake, drain the queue, join the worker and return totals.
  StreamStats finish();

 private:
  void worker_loop();

  BcaeCodec& codec_;
  std::size_t batch_size_;
  Sink sink_;
  BoundedQueue<core::Tensor> queue_;
  std::thread worker_;
  std::mutex stats_mutex_;
  StreamStats stats_;
  bool finished_ = false;
};

}  // namespace nc::codec
