#include "codec/bcae_codec.hpp"

#include <istream>
#include <ostream>

#include "tpc/dataset.hpp"
#include "util/serialize.hpp"

namespace nc::codec {

namespace {
constexpr char kKind[4] = {'C', 'W', 'D', 'G'};
constexpr std::uint32_t kVersion = 1;

// Plausibility caps for deserialization.  A full-scale wedge is (16, 192,
// 249) and its code a few hundred kB; the caps leave orders of magnitude of
// headroom while keeping corrupt headers from driving giant allocations or
// overflowing the element-count arithmetic.
constexpr std::int64_t kMaxDim = std::int64_t{1} << 20;
constexpr std::int64_t kMaxCodeElems = std::int64_t{1} << 28;  // 512 MiB of fp16

std::int64_t read_checked_dim(std::istream& is, const char* what) {
  const std::int64_t d = util::read_i64(is);
  if (d <= 0 || d > kMaxDim) {
    throw util::SerializeError(std::string(what) + " dim implausible: " +
                               std::to_string(d));
  }
  return d;
}
}  // namespace

void CompressedWedge::serialize(std::ostream& os) const {
  util::write_magic(os, kKind, kVersion);
  util::write_i64(os, wedge_shape.radial);
  util::write_i64(os, wedge_shape.azim);
  util::write_i64(os, wedge_shape.horiz);
  util::write_u64(os, code_shape.size());
  for (auto d : code_shape) util::write_i64(os, d);
  util::write_u64(os, code.size());
  util::write_bytes(os, code.data(), code.size() * sizeof(util::half));
}

CompressedWedge CompressedWedge::deserialize(std::istream& is) {
  // Version-gate the payload parsing: a future format bump must fail loudly
  // here, not be misparsed as v1 field soup.
  const std::uint32_t version = util::read_magic(is, kKind);
  if (version != kVersion) {
    throw util::SerializeError("unsupported CompressedWedge version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kVersion) + ")");
  }
  CompressedWedge out;
  out.wedge_shape.radial = read_checked_dim(is, "wedge radial");
  out.wedge_shape.azim = read_checked_dim(is, "wedge azim");
  out.wedge_shape.horiz = read_checked_dim(is, "wedge horiz");
  const std::uint64_t rank = util::read_u64(is);
  if (rank == 0 || rank > 8) throw util::SerializeError("code rank implausible");
  out.code_shape.resize(rank);
  // Validate each dim and guard the product so corrupt shapes can neither
  // overflow shape_numel nor sneak past the payload-size consistency check.
  std::int64_t numel = 1;
  for (auto& d : out.code_shape) {
    d = read_checked_dim(is, "code shape");
    if (numel > kMaxCodeElems / d) {
      throw util::SerializeError("code element count implausible");
    }
    numel *= d;
  }
  const std::uint64_t n = util::read_u64(is);
  if (n != static_cast<std::uint64_t>(numel)) {
    throw util::SerializeError("code size inconsistent with shape");
  }
  out.code.resize(n);
  util::read_bytes(is, out.code.data(), n * sizeof(util::half));
  return out;
}

BcaeCodec::BcaeCodec(bcae::BcaeModel& model, core::Mode mode, float threshold)
    : model_(model), mode_(mode), threshold_(threshold) {
  if (mode == core::Mode::kTrain) {
    throw std::invalid_argument("BcaeCodec: kTrain is not an inference mode");
  }
}

core::Tensor BcaeCodec::to_padded_batch(
    const std::vector<core::Tensor>& wedges) const {
  const std::int64_t n = static_cast<std::int64_t>(wedges.size());
  const auto& first = wedges.front();
  const std::int64_t radial = first.dim(0), azim = first.dim(1), horiz = first.dim(2);
  const std::int64_t ph = tpc::WedgeShape{radial, azim, horiz}.padded_horiz();

  core::Tensor batch = model_.is_3d()
                           ? core::Tensor({n, 1, radial, azim, ph})
                           : core::Tensor({n, radial, azim, ph});
  const std::int64_t stride = radial * azim * ph;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto& w = wedges[static_cast<std::size_t>(i)];
    if (w.dim(0) != radial || w.dim(1) != azim || w.dim(2) != horiz) {
      throw std::invalid_argument("compress_batch: inhomogeneous wedge shapes");
    }
    const core::Tensor padded = tpc::pad_wedge(w, ph);
    std::copy(padded.data(), padded.data() + stride, batch.data() + i * stride);
  }
  return batch;
}

CompressedWedge BcaeCodec::compress(const core::Tensor& wedge) const {
  auto batch = compress_batch({wedge});
  return std::move(batch.front());
}

std::vector<CompressedWedge> BcaeCodec::compress_batch(
    const std::vector<core::Tensor>& wedges) const {
  if (wedges.empty()) return {};
  for (const auto& w : wedges) {
    if (w.ndim() != 3) {
      throw std::invalid_argument("compress: wedge must be (radial, azim, horiz)");
    }
  }
  const core::Tensor batch = to_padded_batch(wedges);
  const core::Tensor codes = model_.encode(batch, mode_);

  const std::int64_t n = static_cast<std::int64_t>(wedges.size());
  core::Shape code_shape(codes.shape().begin() + 1, codes.shape().end());
  const std::int64_t code_numel = codes.numel() / n;

  std::vector<CompressedWedge> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    auto& cw = out[static_cast<std::size_t>(i)];
    const auto& w = wedges[static_cast<std::size_t>(i)];
    cw.wedge_shape = tpc::WedgeShape{w.dim(0), w.dim(1), w.dim(2)};
    cw.code_shape = code_shape;
    cw.code.resize(static_cast<std::size_t>(code_numel));
    util::float_to_half_n(codes.data() + i * code_numel, cw.code.data(),
                          code_numel);
  }
  return out;
}

namespace {
// Validate a header against its payload before any decoding: a poisoned
// wedge (hand-crafted or bit-rotted past the serializer checks) must throw,
// never read out of bounds.
void check_decodable(const CompressedWedge& cw) {
  if (cw.code_shape.empty()) {
    throw std::invalid_argument("decompress: empty code shape");
  }
  const std::int64_t numel = core::shape_numel(cw.code_shape);
  if (numel <= 0 || static_cast<std::uint64_t>(numel) != cw.code.size()) {
    throw std::invalid_argument("decompress: code size inconsistent with shape");
  }
  const auto& ws = cw.wedge_shape;
  if (ws.radial <= 0 || ws.azim <= 0 || ws.horiz <= 0) {
    throw std::invalid_argument("decompress: non-positive wedge dim");
  }
}
}  // namespace

core::Tensor BcaeCodec::decompress(const CompressedWedge& compressed) const {
  check_decodable(compressed);
  auto decoded = decode_group({&compressed});
  return std::move(decoded.front());
}

std::vector<core::Tensor> BcaeCodec::decompress_batch(
    const std::vector<CompressedWedge>& compressed) const {
  for (const auto& cw : compressed) check_decodable(cw);
  std::vector<core::Tensor> out(compressed.size());

  // One padded decoder forward per (wedge_shape, code_shape) group: a
  // homogeneous batch — the common streaming case — decodes in a single
  // pass, mirroring compress_batch; mixed shapes fall back to one pass per
  // group without losing input order.
  std::vector<bool> done(compressed.size(), false);
  std::vector<std::size_t> indices;
  std::vector<const CompressedWedge*> group;
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    if (done[i]) continue;
    indices.clear();
    group.clear();
    for (std::size_t j = i; j < compressed.size(); ++j) {
      if (!done[j] &&
          compressed[j].wedge_shape == compressed[i].wedge_shape &&
          compressed[j].code_shape == compressed[i].code_shape) {
        indices.push_back(j);
        group.push_back(&compressed[j]);
      }
    }
    auto decoded = decode_group(group);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      out[indices[k]] = std::move(decoded[k]);
      done[indices[k]] = true;
    }
  }
  return out;
}

std::vector<core::Tensor> BcaeCodec::decode_group(
    const std::vector<const CompressedWedge*>& group) const {
  const auto& first = *group.front();
  const std::int64_t n = static_cast<std::int64_t>(group.size());
  const std::int64_t code_numel = core::shape_numel(first.code_shape);
  core::Shape batched = first.code_shape;
  batched.insert(batched.begin(), n);

  // Widen the stored binary16 codes and run both decoder heads once.
  core::Tensor code(batched);
  for (std::int64_t k = 0; k < n; ++k) {
    util::half_to_float_n(group[static_cast<std::size_t>(k)]->code.data(),
                          code.data() + k * code_numel, code_numel);
  }
  const auto heads = model_.decode(code, mode_);
  const core::Tensor recon = bcae::BcaeModel::reconstruct(heads, threshold_);

  // Collapse the batch (and 3-D channel) dims, then clip the padding.
  const auto& ws = first.wedge_shape;
  const std::int64_t ph = recon.dim(recon.ndim() - 1);
  const std::int64_t stride = ws.radial * ws.azim * ph;
  if (recon.numel() != n * stride || ws.horiz > ph) {
    throw std::invalid_argument(
        "decompress: decoder output inconsistent with wedge shape");
  }
  // Clip the horizontal padding while scattering each wedge out of the
  // batched reconstruction: one row-wise copy straight from the decoder
  // output, no padded intermediate tensor.
  std::vector<core::Tensor> out;
  out.reserve(group.size());
  const std::int64_t rows = ws.radial * ws.azim;
  for (std::int64_t k = 0; k < n; ++k) {
    core::Tensor wedge({ws.radial, ws.azim, ws.horiz});
    const float* src = recon.data() + k * stride;
    float* dst = wedge.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      std::copy(src + r * ph, src + r * ph + ws.horiz, dst + r * ws.horiz);
    }
    out.push_back(std::move(wedge));
  }
  return out;
}

}  // namespace nc::codec
