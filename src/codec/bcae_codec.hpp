/// \file bcae_codec.hpp
/// \brief Deployable wedge compressor built on a trained BCAE model.
///
/// This is the production-facing API of the library: raw log-ADC wedges go
/// in, compact bitstreams come out.  Matching the paper's accounting (§3.1),
/// the code is stored as 16-bit floats, so the on-the-wire compression ratio
/// equals the element-count ratio (31.125 at paper scale) plus a fixed
/// ~30-byte header.
///
/// Thread/precision notes: compression uses the encoder only (the real-time
/// path); decompression runs both decoder heads and applies the mask —
/// intended for offline analysis, exactly as the paper deploys it.
/// `compress` / `compress_batch` / `decompress` / `decompress_batch` are
/// const and safe for concurrent callers sharing one codec: eval-mode
/// forwards use per-thread scratch and the layers' derived-weight caches
/// publish atomically (core/layer.hpp LazyCache).  Training on the borrowed
/// model or invalidating its caches must not run concurrently with either
/// direction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "baselines/lossy_codec.hpp"
#include "bcae/model.hpp"
#include "tpc/geometry.hpp"

namespace nc::codec {

/// One compressed wedge: header metadata + binary16 code payload.
struct CompressedWedge {
  tpc::WedgeShape wedge_shape;       ///< unpadded original shape
  core::Shape code_shape;            ///< encoder output shape (no batch dim)
  std::vector<util::half> code;      ///< binary16 payload

  /// Compressed size in bytes (payload only, as the paper counts it).
  std::int64_t payload_bytes() const {
    return static_cast<std::int64_t>(code.size()) * 2;
  }
  /// Achieved ratio vs the fp16-stored unpadded wedge (§3.1): the same
  /// bytes-over-bytes accounting every codec uses (WedgeEnvelope, the
  /// baseline benches).  Since the code is binary16, this equals the
  /// element-count ratio tpc::compression_ratio reports (31.125 at paper
  /// scale).
  double compression_ratio() const {
    return baselines::fp16_storage_ratio(wedge_shape.voxels(),
                                         payload_bytes());
  }

  void serialize(std::ostream& os) const;
  static CompressedWedge deserialize(std::istream& is);
};

class BcaeCodec {
 public:
  /// The codec borrows the model (does not own it); the model must outlive
  /// the codec.  `mode` selects full- or half-precision inference.
  BcaeCodec(bcae::BcaeModel& model, core::Mode mode = core::Mode::kEvalHalf,
            float threshold = bcae::kDefaultThreshold);

  /// Compress one unpadded wedge (radial, azim, horiz).
  CompressedWedge compress(const core::Tensor& wedge) const;

  /// Compress a batch of wedges in one encoder pass (higher throughput).
  std::vector<CompressedWedge> compress_batch(
      const std::vector<core::Tensor>& wedges) const;

  /// Decompress back to an unpadded wedge (radial, azim, horiz).
  core::Tensor decompress(const CompressedWedge& compressed) const;

  /// Decompress a batch in one padded decoder forward per shape group (one
  /// pass for a homogeneous batch — the common streaming case — mirroring
  /// compress_batch); outputs keep input order.  Throws std::invalid_argument
  /// on a wedge whose header is inconsistent with its payload.
  std::vector<core::Tensor> decompress_batch(
      const std::vector<CompressedWedge>& compressed) const;

  bcae::BcaeModel& model() { return model_; }
  core::Mode mode() const { return mode_; }

 private:
  core::Tensor to_padded_batch(const std::vector<core::Tensor>& wedges) const;
  /// Decode same-shaped wedges in one decoder forward (callers validated).
  std::vector<core::Tensor> decode_group(
      const std::vector<const CompressedWedge*>& group) const;

  bcae::BcaeModel& model_;
  core::Mode mode_;
  float threshold_;
};

}  // namespace nc::codec
