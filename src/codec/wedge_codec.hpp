/// \file wedge_codec.hpp
/// \brief Uniform codec interface for the streaming pipeline: any compressor
///        that can turn wedges into byte payloads (and back) can sit behind
///        StreamCompressor/StreamDecompressor.
///
/// The paper's central claim (§1) is that the learned BCAE beats generic
/// lossy compressors (SZ/ZFP/MGARD) on sparse zero-suppressed TPC wedges.
/// Demonstrating that under realistic load requires running *every* codec
/// through the same streaming deployment, so this header extracts the
/// contract the pipeline actually needs:
///
///   WedgeCodec — batched compress/decompress over a codec-tagged envelope,
///                a stable wire id, and a human-readable name.
///
/// Two adapter families implement it:
///   * BcaeWedgeCodec     — the learned codec in any eval mode (fp32 /
///                          fp16 / int8); payload = serialized
///                          CompressedWedge bytes.
///   * BaselineWedgeCodec — any nc::baselines::LossyCodec (zfp_lite,
///                          sz_lite, mgard_lite); payload = the baseline's
///                          own bitstream.
///
/// Thread-safety contract: `compress_batch` / `decompress_batch` are const
/// and MUST be safe for concurrent callers sharing one codec instance —
/// the stream pipeline calls them from `n_workers` threads at once.  Both
/// adapters honor this: BcaeCodec's eval forwards use per-thread scratch
/// (codec/bcae_codec.hpp), and the lite baselines keep only immutable
/// configuration (baselines/lossy_codec.hpp).
///
/// The envelope is the single on-the-wire unit: a version-gated header
/// tagging the payload with its codec id and original wedge shape, so
/// mixed-codec streams round-trip through the existing serialize / spill /
/// reorder machinery unchanged.  An unknown codec id or implausible header
/// throws util::SerializeError at deserialization (same containment as
/// CompressedWedge); a payload that later fails to decode lands the wedge
/// in `wedges_failed` without killing its worker.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "baselines/lossy_codec.hpp"
#include "codec/bcae_codec.hpp"
#include "tpc/geometry.hpp"

namespace nc::codec {

/// Stable wire identifiers.  Values are part of the serialized format and
/// must never be renumbered; add new codecs at unused values.  Learned
/// codecs live below 16, learning-free baselines at 16+.
enum class WedgeCodecId : std::uint8_t {
  kBcaeFp32 = 1,  ///< BCAE, full-precision inference (core::Mode::kEval)
  kBcaeFp16 = 2,  ///< BCAE, half-precision inference (kEvalHalf)
  kBcaeInt8 = 3,  ///< BCAE, int8-quantized inference (kEvalInt8)
  kZfp = 16,      ///< baselines::ZfpLite (fixed-rate block transform)
  kSz = 17,       ///< baselines::SzLite (error-bounded Lorenzo prediction)
  kMgard = 18,    ///< baselines::MgardLite (multilevel decimation)
};

/// True iff `id` names a codec this build knows how to construct.
bool known_codec_id(std::uint8_t id);

/// Registry name for a wire id ("bcae-fp16", "zfp", ...); throws
/// std::invalid_argument on an unknown id.
std::string codec_id_name(std::uint8_t id);

/// One compressed wedge on the wire: codec id + original shape + opaque
/// payload.  The shape rides in the envelope so compression accounting
/// (ratio vs the fp16-stored unpadded wedge, §3.1) needs no decode and is
/// computed identically for every codec.
struct WedgeEnvelope {
  std::uint8_t codec_id = 0;         ///< WedgeCodecId of the payload
  tpc::WedgeShape wedge_shape;       ///< unpadded original shape
  std::vector<std::uint8_t> payload; ///< codec-specific bitstream

  /// Compressed size in bytes (payload only, as the paper counts it).
  std::int64_t payload_bytes() const {
    return static_cast<std::int64_t>(payload.size());
  }
  /// Achieved ratio vs the fp16-stored unpadded wedge — the one accounting
  /// every codec shares (baselines::fp16_storage_ratio).
  double compression_ratio() const {
    return baselines::fp16_storage_ratio(wedge_shape.voxels(),
                                         payload_bytes());
  }

  /// Version-gated serialization.  deserialize() throws util::SerializeError
  /// on a bad magic/version, an unknown codec id, an implausible shape or a
  /// truncated payload — corrupt storage must fail loudly, never allocate
  /// wildly or decode garbage.
  void serialize(std::ostream& os) const;
  static WedgeEnvelope deserialize(std::istream& is);
};

/// Abstract compressor the streaming pipeline is parameterized over.
class WedgeCodec {
 public:
  virtual ~WedgeCodec() = default;

  /// Stable wire id stamped into every envelope this codec produces.
  virtual std::uint8_t codec_id() const = 0;
  /// Registry / display name ("bcae-fp16", "zfp", ...).
  virtual std::string name() const = 0;

  /// Compress a batch of unpadded (radial, azim, horiz) wedges.  Returns
  /// one envelope per wedge, in input order.  Const and safe for concurrent
  /// callers (see the header comment for the exact contract).
  virtual std::vector<WedgeEnvelope> compress_batch(
      const std::vector<core::Tensor>& wedges) const = 0;

  /// Decompress a batch of envelopes, in input order.  Throws
  /// std::invalid_argument on an envelope tagged with a different codec id
  /// (wrong-codec decode) or a payload inconsistent with its header; the
  /// stream pipeline contains such a throw as `wedges_failed`.
  virtual std::vector<core::Tensor> decompress_batch(
      const std::vector<WedgeEnvelope>& envelopes) const = 0;

  // Single-wedge conveniences on top of the batched core.
  WedgeEnvelope compress(const core::Tensor& wedge) const;
  core::Tensor decompress(const WedgeEnvelope& envelope) const;
};

/// BCAE behind the uniform interface.  Borrows the model (it must outlive
/// the adapter); `mode` picks the eval precision and thereby the wire id:
/// kEval -> bcae-fp32, kEvalHalf -> bcae-fp16, kEvalInt8 -> bcae-int8.
/// The payload is the serialized CompressedWedge (header + binary16 code),
/// so existing hardened parsing is reused verbatim.
class BcaeWedgeCodec final : public WedgeCodec {
 public:
  explicit BcaeWedgeCodec(bcae::BcaeModel& model,
                          core::Mode mode = core::Mode::kEvalHalf,
                          float threshold = bcae::kDefaultThreshold);

  std::uint8_t codec_id() const override { return id_; }
  std::string name() const override;
  std::vector<WedgeEnvelope> compress_batch(
      const std::vector<core::Tensor>& wedges) const override;
  std::vector<core::Tensor> decompress_batch(
      const std::vector<WedgeEnvelope>& envelopes) const override;

  const BcaeCodec& bcae() const { return codec_; }

 private:
  BcaeCodec codec_;
  std::uint8_t id_;
};

/// Any learning-free LossyCodec behind the uniform interface.  Owns its
/// implementation; the payload is the baseline's own bitstream (which
/// already embeds the shape it needs to reconstruct).  Safe for concurrent
/// workers because the lite baselines hold only immutable configuration.
class BaselineWedgeCodec final : public WedgeCodec {
 public:
  BaselineWedgeCodec(WedgeCodecId id,
                     std::unique_ptr<baselines::LossyCodec> impl);

  std::uint8_t codec_id() const override { return id_; }
  std::string name() const override;
  std::vector<WedgeEnvelope> compress_batch(
      const std::vector<core::Tensor>& wedges) const override;
  std::vector<core::Tensor> decompress_batch(
      const std::vector<WedgeEnvelope>& envelopes) const override;

  const baselines::LossyCodec& impl() const { return *impl_; }

 private:
  std::uint8_t id_;
  std::unique_ptr<baselines::LossyCodec> impl_;
};

/// Names of every codec the factory can construct, in registry order:
/// bcae-fp32, bcae-fp16, bcae-int8, zfp, sz, mgard.
std::vector<std::string> registered_codec_names();

/// Build a codec by registry name.  BCAE entries borrow `model` (which must
/// outlive the codec); baseline entries ignore it and use their default
/// knobs (zfp rate 4 bps, sz/mgard error bound 0.25).  Throws
/// std::invalid_argument on an unknown name.
std::unique_ptr<WedgeCodec> make_wedge_codec(const std::string& name,
                                             bcae::BcaeModel& model);

}  // namespace nc::codec
