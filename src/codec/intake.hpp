/// \file intake.hpp
/// \brief Pluggable intake layer for StreamPipeline: the bounded FIFO that
///        producers submit into and workers drain from.
///
/// PR 2/3 hard-wired every worker to one `BoundedQueue` behind one mutex —
/// fine up to a few workers, a contention point beyond that.  This header
/// extracts the intake contract the pipeline actually relies on so the queue
/// becomes swappable (`StreamOptions::intake`):
///
///  * `try_push` — non-blocking enqueue; false means backpressure (or closed).
///  * `wait_for_space` — park until space might exist or the intake closes;
///    space is not reserved, so callers retry try_push in a loop.
///  * `pop_batch` — blocking batch dequeue with the terminal contract every
///    worker loop depends on: it returns 0 *only* when the intake is closed
///    AND fully drained, never as a spurious wakeup.  When pushes are
///    serialized (StreamPipeline submits under one mutex), items handed to
///    one caller come out in FIFO order relative to each other (per pop
///    source), so their sequence numbers are ascending within a batch —
///    sharded implementations only guarantee this under that serialization.
///  * `close` — idempotent; unblocks every parked producer and worker.
///
/// Implementations: `SingleQueueIntake` (this file) wraps the original
/// `BoundedQueue`; `ShardedQueue` (sharded_queue.hpp) splits the intake into
/// per-worker shards with batch work-stealing.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace nc::codec {

/// Intake selector (StreamOptions::intake).
enum class IntakeMode {
  kAuto,         ///< sharded when n_workers > 1, single queue otherwise
  kSingleQueue,  ///< one BoundedQueue shared by all workers
  kSharded,      ///< per-worker shards with batch work-stealing
};

/// Outcome of a timed space wait (`Intake::wait_for_space_for`) — the
/// spill-deadline path needs to distinguish "space may exist, retry" from
/// "closed, give up" from "deadline hit, divert to the spill tier".
enum class SpaceWait {
  kReady,    ///< space may exist (not reserved: retry try_push)
  kClosed,   ///< intake closed while waiting
  kTimeout,  ///< still full when the timeout expired
};

inline const char* to_string(IntakeMode mode) {
  switch (mode) {
    case IntakeMode::kAuto: return "auto";
    case IntakeMode::kSingleQueue: return "single";
    case IntakeMode::kSharded: return "sharded";
  }
  return "?";
}

namespace detail {
/// Depth-adaptive drain sizing shared by every intake: a fair share of the
/// observed backlog per worker, clamped to [1, max_items].  share == 0
/// disables adaptivity (always max_items).  One definition so single-queue
/// and sharded pipelines can never drift apart on batch-size behavior.
inline std::size_t adaptive_drain_cap(std::size_t depth, std::size_t share,
                                      std::size_t max_items) {
  if (share == 0) return max_items;
  const std::size_t fair = (depth + share - 1) / share;
  return std::clamp<std::size_t>(fair, 1, max_items);
}
}  // namespace detail

/// Thread-safe bounded FIFO (the original single-mutex intake; also used
/// directly by tests as a plain concurrent queue).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue; false when the queue is full (backpressure).
  /// Moves from `item` only on success — a failed push leaves it intact,
  /// so overflow paths (the spill tier) can reuse it without a deep copy.
  bool try_push(T&& item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(item));
    if (queue_.size() > high_water_) high_water_ = queue_.size();
    depth_.store(queue_.size(), std::memory_order_relaxed);
    cv_.notify_one();
    return true;
  }

  /// Copying convenience for producers that keep their item.
  bool try_push(const T& item) {
    T copy = item;
    return try_push(std::move(copy));
  }

  /// Blocking enqueue; false only when the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    if (queue_.size() > high_water_) high_water_ = queue_.size();
    depth_.store(queue_.size(), std::memory_order_relaxed);
    cv_.notify_one();
    return true;
  }

  /// Blocking dequeue; false when the queue is closed and drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    depth_.store(queue_.size(), std::memory_order_relaxed);
    cv_space_.notify_one();
    return true;
  }

  /// Blocking batch dequeue: appends 1..max_items items to `out` (blocking
  /// beyond the first element never happens — it takes what is there).
  /// Same terminal contract as pop: returns 0 *only* when the queue is
  /// closed and drained, never as a spurious wakeup, so a 0 return is a
  /// reliable shutdown signal at call sites.
  ///
  /// `adaptive_share` > 0 enables depth-adaptive sizing: the effective cap
  /// becomes clamp(ceil(depth / share), 1, max_items), computed on the
  /// depth observed AFTER the blocking wait — so the first drain after an
  /// idle park sees the burst that woke it, not the emptiness before it.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items,
                        std::size_t adaptive_share = 0) {
    if (max_items == 0) max_items = 1;  // keep the 0-iff-closed contract
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    max_items =
        detail::adaptive_drain_cap(queue_.size(), adaptive_share, max_items);
    std::size_t n = 0;
    while (n < max_items && !queue_.empty()) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
      ++n;
    }
    depth_.store(queue_.size(), std::memory_order_relaxed);
    cv_space_.notify_all();
    return n;
  }

  /// Block until the queue has free space or is closed; false when closed.
  /// Space is not reserved: a concurrent producer may claim it first, so
  /// callers combine this with try_push in a retry loop.
  bool wait_for_space() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_space_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    return !closed_;
  }

  /// Timed wait_for_space (the spill-deadline path): same no-reservation
  /// caveat, but gives up after `timeout`.
  SpaceWait wait_for_space_for(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool woken = cv_space_.wait_for(
        lock, timeout, [&] { return closed_ || queue_.size() < capacity_; });
    if (!woken) return SpaceWait::kTimeout;
    return closed_ ? SpaceWait::kClosed : SpaceWait::kReady;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
    cv_space_.notify_all();
  }

  /// Approximate current depth (a racy snapshot, like any concurrent
  /// size).  Lock-free so observers never contend with producers/workers
  /// on the queue mutex.
  std::size_t size() const {
    return depth_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }

  /// Deepest the queue has ever been (the DAQ headroom metric).
  std::size_t depth_high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_, cv_space_;
  std::deque<T> queue_;
  std::atomic<std::size_t> depth_{0};  ///< mirrors queue_.size() (lock-free reads)
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

/// Intake contract consumed by StreamPipeline (see file comment).  Workers
/// identify themselves by index so sharded implementations can give each its
/// own shard; `stolen` (may be null) reports whether a pop crossed shards.
template <typename T>
class Intake {
 public:
  virtual ~Intake() = default;

  /// Non-blocking enqueue; false means backpressure (or closed).  Moves
  /// from `item` only on success — a failed push leaves it intact so the
  /// caller (e.g. the spill tier) can reuse it without a deep copy.
  virtual bool try_push(T&& item) = 0;
  /// Copying convenience for producers that keep their item.
  bool try_push(const T& item) {
    T copy = item;
    return try_push(std::move(copy));
  }
  virtual bool wait_for_space() = 0;
  /// Timed wait_for_space; kReady does not reserve space (retry try_push).
  virtual SpaceWait wait_for_space_for(std::chrono::nanoseconds timeout) = 0;
  /// `adaptive_share` > 0 scales the drain toward max_items when the intake
  /// is backed up and toward 1 when lightly loaded, evaluated on the depth
  /// observed at pop time (after any blocking wait); 0 always drains up to
  /// max_items.
  virtual std::size_t pop_batch(std::size_t worker_index, std::vector<T>& out,
                                std::size_t max_items,
                                std::size_t adaptive_share, bool* stolen) = 0;
  /// Elastic-pool hint: workers [0, n_live) are the ones currently popping.
  /// Sharded intakes re-home fresh pushes onto live workers' shards so a
  /// scaled-down worker's shard drains and stays empty instead of parking
  /// items behind a sleeping owner; a single queue has nothing to re-home.
  /// Safe to call concurrently with pushes/pops; purely a routing hint —
  /// capacity, backpressure and delivery guarantees are unaffected.
  virtual void set_active_workers(std::size_t /*n_live*/) {}
  virtual void close() = 0;
  /// Approximate items currently queued.
  virtual std::size_t size() const = 0;
  /// Effective aggregate capacity (sharded intakes round the requested
  /// capacity up to a shard multiple).
  virtual std::size_t capacity() const = 0;
  /// Deepest the intake has ever been across all shards.
  virtual std::size_t depth_high_water() const = 0;
};

/// The original intake: one shared BoundedQueue, one mutex.  Still the right
/// choice for a single worker and the baseline the sharded intake is
/// benchmarked against.
template <typename T>
class SingleQueueIntake final : public Intake<T> {
 public:
  explicit SingleQueueIntake(std::size_t capacity) : queue_(capacity) {}

  using Intake<T>::try_push;
  bool try_push(T&& item) override { return queue_.try_push(std::move(item)); }
  bool wait_for_space() override { return queue_.wait_for_space(); }
  SpaceWait wait_for_space_for(std::chrono::nanoseconds timeout) override {
    return queue_.wait_for_space_for(timeout);
  }
  std::size_t pop_batch(std::size_t /*worker_index*/, std::vector<T>& out,
                        std::size_t max_items, std::size_t adaptive_share,
                        bool* stolen) override {
    if (stolen) *stolen = false;  // one shared queue: nothing to steal
    return queue_.pop_batch(out, max_items, adaptive_share);
  }
  void close() override { queue_.close(); }
  std::size_t size() const override { return queue_.size(); }
  std::size_t capacity() const override { return queue_.capacity(); }
  std::size_t depth_high_water() const override {
    return queue_.depth_high_water();
  }

 private:
  BoundedQueue<T> queue_;
};

}  // namespace nc::codec
