#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

namespace nc::util {

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{"false", help, /*is_flag=*/true};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
      print_usage();
      return false;
    }
    if (it->second.is_flag) {
      values_[name] = has_value ? value : "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: --%s expects a value\n", name.c_str());
          return false;
        }
        value = argv[++i];
      }
      values_[name] = value;
    }
  }
  return true;
}

std::string ArgParser::get(const std::string& name) const {
  if (auto it = values_.find(name); it != values_.end()) return it->second;
  if (auto it = options_.find(name); it != options_.end())
    return it->second.default_value;
  throw std::invalid_argument("unregistered option: " + name);
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

void ArgParser::print_usage() const {
  std::fprintf(stderr, "%s — %s\n\noptions:\n", program_.c_str(),
               description_.c_str());
  for (const auto& [name, opt] : options_) {
    if (opt.is_flag) {
      std::fprintf(stderr, "  --%-24s %s\n", name.c_str(), opt.help.c_str());
    } else {
      std::fprintf(stderr, "  --%-24s %s (default: %s)\n",
                   (name + " <v>").c_str(), opt.help.c_str(),
                   opt.default_value.c_str());
    }
  }
}

}  // namespace nc::util
