/// \file cli.hpp
/// \brief Tiny command-line flag parser used by the example binaries.
///
/// Supports `--name value`, `--name=value` and boolean `--flag` forms.
/// Unknown flags raise an error listing the registered options, so examples
/// are self-documenting via `--help`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nc::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register an option with a default value (rendered in --help).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Register a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv.  Returns false if --help was requested (usage printed) or
  /// an unknown/malformed flag was seen (error printed).
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True when the option appeared explicitly on the command line (defaults
  /// are resolved in get(), so values_ holds only parsed flags).  Lets
  /// validation distinguish "--max-workers 0" from the 0 default.
  bool was_set(const std::string& name) const {
    return values_.count(name) != 0;
  }

  /// Positional arguments left after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  void print_usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace nc::util
