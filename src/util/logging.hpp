/// \file logging.hpp
/// \brief Minimal leveled logger writing to stderr.
///
/// The library itself logs sparingly (trainer progress, codec warnings);
/// benches and examples use INFO-level progress lines.  Thread-safe via an
/// internal mutex; formatting uses iostreams to avoid a fmt dependency.
#pragma once

#include <sstream>
#include <string>

namespace nc::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (thread-safe).  Prefer the NC_LOG_* macros.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace nc::util

#define NC_LOG_DEBUG ::nc::util::detail::LogLine(::nc::util::LogLevel::kDebug)
#define NC_LOG_INFO ::nc::util::detail::LogLine(::nc::util::LogLevel::kInfo)
#define NC_LOG_WARN ::nc::util::detail::LogLine(::nc::util::LogLevel::kWarn)
#define NC_LOG_ERROR ::nc::util::detail::LogLine(::nc::util::LogLevel::kError)
