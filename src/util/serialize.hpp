/// \file serialize.hpp
/// \brief Little-endian binary serialization helpers and a simple chunked
///        container format used for datasets, checkpoints and compressed
///        streams.
///
/// Format: every file starts with an 8-byte magic and a version; the payload
/// is a sequence of (tag, byte-length, bytes) chunks.  Readers validate
/// lengths so truncated files fail loudly rather than yielding garbage.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace nc::util {

/// Error thrown on malformed/truncated input streams.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- primitive writers -----------------------------------------------------

void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);
void write_i64(std::ostream& os, std::int64_t v);
void write_f32(std::ostream& os, float v);
void write_f64(std::ostream& os, double v);
void write_string(std::ostream& os, const std::string& s);
void write_bytes(std::ostream& os, const void* data, std::size_t n);

// --- primitive readers (throw SerializeError on EOF) -----------------------

std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);
std::int64_t read_i64(std::istream& is);
float read_f32(std::istream& is);
double read_f64(std::istream& is);
std::string read_string(std::istream& is);
void read_bytes(std::istream& is, void* data, std::size_t n);

// --- vector helpers ---------------------------------------------------------

template <typename T>
void write_pod_vector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_u64(os, v.size());
  write_bytes(os, v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T> read_pod_vector(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t n = read_u64(is);
  // Guard against absurd lengths from corrupt files (16 GiB cap).  Compare
  // in element units: `n * sizeof(T)` can wrap at 2^64 and smuggle a huge
  // count straight into the allocation below.
  if (n > (1ull << 34) / sizeof(T)) {
    throw SerializeError("pod vector length implausible: " + std::to_string(n));
  }
  std::vector<T> v(static_cast<std::size_t>(n));
  read_bytes(is, v.data(), static_cast<std::size_t>(n) * sizeof(T));
  return v;
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// Pass a previous return value as `seed` to chain buffers (zlib-style);
/// start with 0.  Used for per-record integrity in the spill tier.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Write a magic header ("NCMP" + 4-char kind) and format version.
void write_magic(std::ostream& os, const char kind[4], std::uint32_t version);

/// Read and validate a magic header; returns the version.
std::uint32_t read_magic(std::istream& is, const char kind[4]);

}  // namespace nc::util
