#include "util/half.hpp"

#include <cstdlib>
#include <cstring>

namespace nc::util {

namespace {

/// Runtime selection of the F16C bulk converters (half_f16c.cpp, the only
/// util TU built with -mf16c).  Resolved once; honors NC_SIMD=scalar so a
/// forced-scalar run exercises the software conversion end to end.  Safe to
/// flip either way because all paths round to nearest-even and agree
/// bit-for-bit (tests/test_util.cpp round-trips every half bit pattern).
bool use_f16c() {
  static const bool enabled = [] {
    if (!detail::half_f16c_compiled()) return false;
    const char* env = std::getenv("NC_SIMD");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx") && __builtin_cpu_supports("f16c");
#else
    return false;
#endif
  }();
  return enabled;
}

}  // namespace

void float_to_half_n(const float* src, half* dst, std::int64_t n) {
  if (use_f16c()) {
    detail::float_to_half_f16c(src, dst, n);
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) dst[i] = half(src[i]);
}

void float_to_half_sat_n(const float* src, half* dst, std::int64_t n) {
  if (use_f16c()) {
    detail::float_to_half_sat_f16c(src, dst, n);
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    float f = src[i];
    // NaN fails both comparisons and propagates unchanged.
    if (f > kHalfMax) f = kHalfMax;
    else if (f < -kHalfMax) f = -kHalfMax;
    dst[i] = half(f);
  }
}

void half_to_float_n(const half* src, float* dst, std::int64_t n) {
  if (use_f16c()) {
    detail::half_to_float_f16c(src, dst, n);
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

}  // namespace nc::util
