#include "util/half.hpp"

#if defined(__F16C__) && defined(__AVX2__)
#include <immintrin.h>
#define NC_HALF_F16C 1
#else
#define NC_HALF_F16C 0
#endif

namespace nc::util {

void float_to_half_n(const float* src, half* dst, std::int64_t n) {
  std::int64_t i = 0;
#if NC_HALF_F16C
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_loadu_ps(src + i);
    const __m128i h = _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
#endif
  for (; i < n; ++i) dst[i] = half(src[i]);
}

void float_to_half_sat_n(const float* src, half* dst, std::int64_t n) {
  std::int64_t i = 0;
#if NC_HALF_F16C
  // Clamp before the narrowing convert.  Operand order matters: VMIN/VMAXPS
  // return the second operand on an unordered compare, so putting the limit
  // first lets NaN inputs flow through to the converter unchanged.
  const __m256 lo = _mm256_set1_ps(-kHalfMax);
  const __m256 hi = _mm256_set1_ps(kHalfMax);
  for (; i + 8 <= n; i += 8) {
    __m256 f = _mm256_loadu_ps(src + i);
    f = _mm256_min_ps(hi, _mm256_max_ps(lo, f));
    const __m128i h = _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
#endif
  for (; i < n; ++i) {
    float f = src[i];
    // NaN fails both comparisons and propagates unchanged.
    if (f > kHalfMax) f = kHalfMax;
    else if (f < -kHalfMax) f = -kHalfMax;
    dst[i] = half(f);
  }
}

void half_to_float_n(const half* src, float* dst, std::int64_t n) {
  std::int64_t i = 0;
#if NC_HALF_F16C
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
#endif
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

}  // namespace nc::util
