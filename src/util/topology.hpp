/// \file topology.hpp
/// \brief CPU topology discovery and thread placement for the elastic,
///        topology-aware worker pool.
///
/// The streaming pipeline's deployment target is a DAQ host: workers should
/// land on specific cores (so a pipeline can own a socket) and each worker's
/// intake shard should live on that worker's NUMA node.  This layer wraps
/// the three platform facts the pipeline needs:
///
///  * `hardware_threads()` — `std::thread::hardware_concurrency()` with the
///    0-return guarded (the standard allows 0 = "unknown"; every call site
///    in this tree goes through here instead of hand-rolling the clamp).
///  * `system_topology()` — the CPUs this *process* may run on (the
///    scheduler-allowed set where that is knowable, so cgroup/cpuset
///    restrictions are respected), each tagged with its NUMA node from
///    `/sys/devices/system/node/node*/cpulist`.  Hosts without sysfs NUMA
///    information degrade to a single flat node.
///  * `pin_current_thread(cpu)` — the pthread affinity syscall where
///    available; a graceful `false` no-op everywhere else.  Affinity
///    syscalls live only in topology.cpp (enforced by
///    tools/lint/check_headers.py, the same containment pattern as the
///    SIMD intrinsics TUs).
///
/// Setting the environment variable `NC_TOPOLOGY=off` disables discovery
/// and pinning process-wide (flat single-node topology, every pin a no-op)
/// — the portable-degradation path CI exercises explicitly, and an
/// operator escape hatch when an external placement tool owns affinity.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nc::util {

/// One schedulable CPU and the NUMA node it belongs to.
struct CpuInfo {
  int cpu = 0;   ///< kernel CPU id (valid for pin_current_thread)
  int node = 0;  ///< NUMA node id; 0 on hosts without NUMA information
};

/// The process-visible CPU set, node-major (node 0's CPUs first), plus how
/// much of it was actually discovered vs assumed.
struct Topology {
  std::vector<CpuInfo> cpus;  ///< allowed CPUs, node-major order
  int n_nodes = 1;            ///< distinct NUMA nodes covering `cpus`
  bool numa_from_sysfs = false;   ///< node ids read from /sys (vs flat fallback)
  bool affinity_supported = false;  ///< pin_current_thread can succeed here
};

/// `std::thread::hardware_concurrency()` with the 0 = "unknown" return
/// clamped to 1.  The one shared guard for every call site in the tree.
std::size_t hardware_threads();

/// Parse a sysfs-style CPU list ("0-3,8,10-11") into CPU ids, ascending.
/// Malformed input yields an empty vector (never throws) — the caller's
/// fallback path handles it like a missing file.
std::vector<int> parse_cpu_list(const std::string& text);

/// Pure detection core, exposed for tests: build a Topology from an
/// allowed-CPU set and per-node cpulist strings (index = node id; empty
/// string = node absent).  An empty `node_cpulists` produces the flat
/// single-node fallback.
Topology detect_topology(const std::vector<int>& allowed_cpus,
                         const std::vector<std::string>& node_cpulists,
                         bool affinity_supported);

/// The cached process topology (detected once, first call).  Honors
/// `NC_TOPOLOGY=off`.
const Topology& system_topology();

/// Claim `n` consecutive worker-slot placements from a process-wide cursor
/// over `system_topology().cpus` (node-major, wrapping).  Two pipelines
/// built in one process get disjoint cores until the claimed total exceeds
/// the CPU count — without this, every pool independently starts at slot 0
/// and double-books the low cores.  Thread-safe; returns an empty vector
/// when affinity is unsupported or disabled (callers then run unpinned).
std::vector<CpuInfo> claim_cpu_slots(std::size_t n);

/// Pin the calling thread to one CPU.  Returns false — leaving the thread's
/// affinity untouched — when pinning is unsupported, disabled via
/// `NC_TOPOLOGY=off`, or the syscall fails (e.g. the CPU left the cpuset);
/// callers treat false as "run unpinned", never as an error.
bool pin_current_thread(int cpu);

/// Restore the calling thread's affinity to every allowed CPU (undo a pin).
/// Same graceful-false contract as pin_current_thread.
bool unpin_current_thread();

}  // namespace nc::util
