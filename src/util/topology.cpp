/// \file topology.cpp
/// \brief CPU/NUMA discovery and thread pinning (see topology.hpp).
///
/// This is the only translation unit in the tree allowed to touch the
/// affinity syscalls (`pthread_setaffinity_np`, `sched_getaffinity`,
/// `cpu_set_t`) — tools/lint/check_headers.py enforces the containment so
/// no header can leak a platform dependency into arbitrary TUs.
#include "util/topology.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#define NC_TOPOLOGY_HAVE_AFFINITY 1
#else
#define NC_TOPOLOGY_HAVE_AFFINITY 0
#endif

namespace nc::util {
namespace {

bool topology_disabled() {
  const char* env = std::getenv("NC_TOPOLOGY");
  return env != nullptr && std::string(env) == "off";
}

/// CPUs the scheduler currently allows this process to run on; falls back
/// to 0..hardware_threads()-1 where the allowed set is unknowable.
std::vector<int> allowed_cpus() {
#if NC_TOPOLOGY_HAVE_AFFINITY
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    std::vector<int> cpus;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
    if (!cpus.empty()) return cpus;
  }
#endif
  std::vector<int> cpus(hardware_threads());
  for (std::size_t i = 0; i < cpus.size(); ++i) cpus[i] = static_cast<int>(i);
  return cpus;
}

/// Per-node cpulist strings from /sys/devices/system/node (index = node
/// id, "" = node id absent).  Empty on hosts without the sysfs tree.
std::vector<std::string> sysfs_node_cpulists() {
  std::vector<std::string> lists;
  const std::filesystem::path root = "/sys/devices/system/node";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0) continue;
    const std::string id_text = name.substr(4);
    if (id_text.empty() ||
        !std::all_of(id_text.begin(), id_text.end(),
                     [](unsigned char ch) { return std::isdigit(ch); })) {
      continue;
    }
    const auto node = static_cast<std::size_t>(std::stoul(id_text));
    if (node > 4096) continue;  // defensive: garbage dir name
    std::ifstream in(entry.path() / "cpulist");
    if (!in) continue;
    std::string line;
    std::getline(in, line);
    if (lists.size() <= node) lists.resize(node + 1);
    lists[node] = line;
  }
  return lists;
}

Topology detect_system_topology() {
  if (topology_disabled()) {
    return detect_topology(allowed_cpus(), {}, /*affinity_supported=*/false);
  }
  return detect_topology(allowed_cpus(), sysfs_node_cpulists(),
                         NC_TOPOLOGY_HAVE_AFFINITY != 0);
}

}  // namespace

std::size_t hardware_threads() {
  // The standard allows hardware_concurrency() == 0 ("not computable");
  // every consumer in this tree needs a positive thread count.
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ',')) {
    // Trim whitespace (sysfs lines end in '\n' and may hold spaces).
    const auto first = token.find_first_not_of(" \t\n\r");
    if (first == std::string::npos) continue;
    const auto last = token.find_last_not_of(" \t\n\r");
    token = token.substr(first, last - first + 1);
    int lo = 0;
    int hi = 0;
    char dash = 0;
    std::stringstream tok(token);
    if (!(tok >> lo) || lo < 0) return {};
    if (tok >> dash) {
      if (dash != '-' || !(tok >> hi) || hi < lo) return {};
    } else {
      hi = lo;
    }
    if (hi - lo > 65536) return {};  // defensive: corrupt range
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology detect_topology(const std::vector<int>& allowed,
                         const std::vector<std::string>& node_cpulists,
                         bool affinity_supported) {
  std::map<int, int> node_of;  // cpu -> NUMA node
  bool any_sysfs = false;
  for (std::size_t node = 0; node < node_cpulists.size(); ++node) {
    const auto cpus = parse_cpu_list(node_cpulists[node]);
    if (cpus.empty()) continue;
    any_sysfs = true;
    for (const int c : cpus) node_of[c] = static_cast<int>(node);
  }
  Topology topo;
  topo.numa_from_sysfs = any_sysfs;
  topo.affinity_supported = affinity_supported;
  for (const int c : allowed) {
    const auto it = node_of.find(c);
    // A CPU missing from every cpulist (or no sysfs at all) lands on node
    // 0 — placement still works, it just loses locality information.
    topo.cpus.push_back(CpuInfo{c, it != node_of.end() ? it->second : 0});
  }
  if (topo.cpus.empty()) topo.cpus.push_back(CpuInfo{0, 0});
  // Node-major, CPU-ascending: workers filled in index order pack one node
  // before spilling onto the next, so the always-live low-index workers
  // (the elastic floor) share locality.
  std::stable_sort(topo.cpus.begin(), topo.cpus.end(),
                   [](const CpuInfo& a, const CpuInfo& b) {
                     return a.node != b.node ? a.node < b.node : a.cpu < b.cpu;
                   });
  std::vector<int> nodes;
  for (const auto& c : topo.cpus) nodes.push_back(c.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  topo.n_nodes = static_cast<int>(nodes.size());
  return topo;
}

const Topology& system_topology() {
  static const Topology topo = detect_system_topology();
  return topo;
}

std::vector<CpuInfo> claim_cpu_slots(std::size_t n) {
  const Topology& topo = system_topology();
  if (!topo.affinity_supported || topo.cpus.empty() || n == 0) return {};
  // One fetch_add claims the whole contiguous run, so concurrent claimers
  // can interleave pipelines but never a single pipeline's slots.
  static std::atomic<std::size_t> cursor{0};
  const std::size_t base = cursor.fetch_add(n, std::memory_order_relaxed);
  std::vector<CpuInfo> slots;
  slots.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots.push_back(topo.cpus[(base + i) % topo.cpus.size()]);
  }
  return slots;
}

bool pin_current_thread(int cpu) {
  if (cpu < 0 || !system_topology().affinity_supported) return false;
#if NC_TOPOLOGY_HAVE_AFFINITY
  if (cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

bool unpin_current_thread() {
  const Topology& topo = system_topology();
  if (!topo.affinity_supported) return false;
#if NC_TOPOLOGY_HAVE_AFFINITY
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const auto& c : topo.cpus) {
    if (c.cpu >= 0 && c.cpu < CPU_SETSIZE) CPU_SET(c.cpu, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace nc::util
