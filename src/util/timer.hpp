/// \file timer.hpp
/// \brief Wall-clock timing utilities for throughput measurement.
#pragma once

#include <chrono>
#include <cstdint>

namespace nc::util {

/// Monotonic stopwatch.  `elapsed_s()` returns seconds since construction or
/// the last `reset()`.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }
  double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer: sums durations across start/stop windows.
/// Used by the per-layer profiler.
class Accumulator {
 public:
  void start() { t_.reset(); }
  void stop() {
    total_s_ += t_.elapsed_s();
    ++count_;
  }
  double total_s() const { return total_s_; }
  std::uint64_t count() const { return count_; }
  double mean_s() const { return count_ ? total_s_ / static_cast<double>(count_) : 0.0; }
  void clear() {
    total_s_ = 0.0;
    count_ = 0;
  }

 private:
  Timer t_;
  double total_s_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace nc::util
