/// \file half_f16c.cpp
/// \brief F16C bulk half<->float conversions, compiled with per-file target
///        flags (-mavx2 -mf16c) and selected at runtime by half.cpp.
///
/// These used to live in half.cpp behind a compile-time `__F16C__` gate —
/// dead code in every default (no -march) build.  Isolating them in their
/// own translation unit lets default-flag binaries still pick the hardware
/// converter on capable CPUs, mirroring the core/simd_dispatch.cpp scheme.
#include "util/half.hpp"

#if defined(NC_SIMD_BUILD_F16C) && defined(__F16C__) && defined(__AVX__)

#include <immintrin.h>

namespace nc::util::detail {

bool half_f16c_compiled() { return true; }

void float_to_half_f16c(const float* src, half* dst, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_loadu_ps(src + i);
    const __m128i h = _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = half(src[i]);
}

void float_to_half_sat_f16c(const float* src, half* dst, std::int64_t n) {
  // Clamp before the narrowing convert.  Operand order matters: VMIN/VMAXPS
  // return the second operand on an unordered compare, so putting the limit
  // first lets NaN inputs flow through to the converter unchanged.
  const __m256 lo = _mm256_set1_ps(-kHalfMax);
  const __m256 hi = _mm256_set1_ps(kHalfMax);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 f = _mm256_loadu_ps(src + i);
    f = _mm256_min_ps(hi, _mm256_max_ps(lo, f));
    const __m128i h = _mm256_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) {
    float f = src[i];
    // NaN fails both comparisons and propagates unchanged.
    if (f > kHalfMax) f = kHalfMax;
    else if (f < -kHalfMax) f = -kHalfMax;
    dst[i] = half(f);
  }
}

void half_to_float_f16c(const half* src, float* dst, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

}  // namespace nc::util::detail

#else  // TU built without F16C target support (non-x86 or old compiler)

namespace nc::util::detail {

bool half_f16c_compiled() { return false; }

// Scalar bodies so the symbols always link; never selected at runtime when
// half_f16c_compiled() is false.
void float_to_half_f16c(const float* src, half* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = half(src[i]);
}

void float_to_half_sat_f16c(const float* src, half* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    float f = src[i];
    if (f > kHalfMax) f = kHalfMax;
    else if (f < -kHalfMax) f = -kHalfMax;
    dst[i] = half(f);
  }
}

void half_to_float_f16c(const half* src, float* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

}  // namespace nc::util::detail

#endif
