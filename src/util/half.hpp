/// \file half.hpp
/// \brief IEEE-754 binary16 ("half") storage type used by the half-precision
///        inference path.
///
/// The paper's half-precision mode casts encoder weights and inputs to 16-bit
/// floats while GEMM accumulation stays in higher precision (tensor-core
/// semantics).  We reproduce the same contract on CPU: `half` is a pure
/// storage format; arithmetic always round-trips through `float`.
///
/// On x86-64 gcc/clang provide the native `_Float16` type (lowered to F16C
/// VCVTPH2PS/VCVTPS2PH when available), which we use when present.  A
/// bit-exact software conversion is provided as fallback so the library works
/// on any target.
#pragma once

#include <cstdint>
#include <cstring>

namespace nc::util {

#if defined(__FLT16_MANT_DIG__)
#define NC_NATIVE_FP16 1
using native_half_t = _Float16;
#else
#define NC_NATIVE_FP16 0
#endif

/// Software float -> binary16 conversion (round-to-nearest-even).
/// Used by the fallback path and by tests to validate the native path.
constexpr std::uint16_t float_to_half_bits_sw(float f) {
  std::uint32_t x = 0;
  // constexpr-friendly bit_cast
  if (__builtin_is_constant_evaluated()) {
    x = __builtin_bit_cast(std::uint32_t, f);
  } else {
    std::memcpy(&x, &f, sizeof(x));
  }
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFFu) - 127;
  std::uint32_t mant = x & 0x007FFFFFu;

  if (exp == 128) {  // Inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x0200u : 0u));
  }
  if (exp > 15) {  // overflow -> Inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exp >= -14) {  // normal range
    std::uint32_t half_mant = mant >> 13;
    const std::uint32_t rem = mant & 0x1FFFu;
    std::uint16_t h = static_cast<std::uint16_t>(
        sign | (static_cast<std::uint32_t>(exp + 15) << 10) | half_mant);
    // round to nearest even
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) ++h;
    return h;
  }
  if (exp >= -25) {  // subnormal half
    mant |= 0x00800000u;  // implicit leading 1
    const int shift = -exp - 14 + 13;
    std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint16_t h = static_cast<std::uint16_t>(sign | half_mant);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++h;
    return h;
  }
  return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
}

/// Software binary16 -> float conversion (exact).
constexpr float half_bits_to_float_sw(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;
  std::uint32_t out = 0;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // subnormal: normalize
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      out = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
            ((m & 0x3FFu) << 13);
    }
  } else if (exp == 31) {
    out = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  if (__builtin_is_constant_evaluated()) {
    return __builtin_bit_cast(float, out);
  }
  float f = 0.f;
  std::memcpy(&f, &out, sizeof(f));
  return f;
}

/// 16-bit floating point storage type.
///
/// Implicitly converts to/from `float`; all arithmetic happens in `float`.
/// `sizeof(half) == 2` and the type is trivially copyable so tensors of
/// `half` can be memcpy'd and serialized directly.
class half {
 public:
  half() = default;

  half(float f) {  // NOLINT(google-explicit-constructor): storage type
#if NC_NATIVE_FP16
    value_ = static_cast<native_half_t>(f);
#else
    bits_ = float_to_half_bits_sw(f);
#endif
  }

  operator float() const {  // NOLINT(google-explicit-constructor)
#if NC_NATIVE_FP16
    return static_cast<float>(value_);
#else
    return half_bits_to_float_sw(bits_);
#endif
  }

  /// Raw bit pattern (for serialization and tests).
  std::uint16_t bits() const { return __builtin_bit_cast(std::uint16_t, *this); }

  static half from_bits(std::uint16_t b) {
    return __builtin_bit_cast(half, b);
  }

 private:
#if NC_NATIVE_FP16
  native_half_t value_ = 0;
#else
  std::uint16_t bits_ = 0;
#endif
};

static_assert(sizeof(half) == 2, "half must be 2 bytes");

/// Largest finite binary16 value.
inline constexpr float kHalfMax = 65504.f;

/// Bulk float32 -> binary16 conversion.  Uses F16C (8 lanes per VCVTPS2PH)
/// when the CPU supports it — probed at runtime, overridable with
/// NC_SIMD=scalar; scalar native/software conversion otherwise.  All paths
/// round to nearest-even and agree bit-for-bit.
void float_to_half_n(const float* src, half* dst, std::int64_t n);

/// Saturating bulk conversion: out-of-range values clamp to +/-kHalfMax
/// instead of overflowing to infinity (tensor-core saturating-cast
/// semantics); NaN still propagates, and every in-range value converts
/// bit-identically to float_to_half_n.  Used for the half-precision
/// inference activations, where one out-of-range intermediate (untrained or
/// extreme weights) would otherwise poison the whole forward with
/// non-finite values.
void float_to_half_sat_n(const float* src, half* dst, std::int64_t n);

/// Bulk binary16 -> float32 conversion (VCVTPH2PS under F16C).
void half_to_float_n(const half* src, float* dst, std::int64_t n);

namespace detail {
/// Internal F16C bulk-conversion entry points, defined in half_f16c.cpp
/// (the only util TU compiled with -mf16c) and selected at runtime by
/// half.cpp after a CPUID probe.  Not part of the public API.
bool half_f16c_compiled();
void float_to_half_f16c(const float* src, half* dst, std::int64_t n);
void float_to_half_sat_f16c(const float* src, half* dst, std::int64_t n);
void half_to_float_f16c(const half* src, float* dst, std::int64_t n);
}  // namespace detail

}  // namespace nc::util
