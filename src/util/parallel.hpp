/// \file parallel.hpp
/// \brief Thin OpenMP wrappers so the rest of the library stays readable and
///        compiles (serially) without OpenMP.
#pragma once

#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nc::util {

/// Number of worker threads OpenMP will use for parallel regions.
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the OpenMP thread count (no-op without OpenMP).
inline void set_num_threads(int n) {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Index of the calling thread inside a parallel region.
inline int thread_index() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// parallel_for over [begin, end) with a body taking the index.
/// `grain` suppresses parallelism for small trip counts where the fork/join
/// overhead would dominate (important for the tiny BCAE-HT layers).
template <typename F>
void parallel_for(std::int64_t begin, std::int64_t end, F&& body,
                  std::int64_t grain = 1) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
#ifdef _OPENMP
  if (n >= grain * 2 && omp_get_max_threads() > 1 && !omp_in_parallel()) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
#else
  (void)grain;
#endif
  for (std::int64_t i = begin; i < end; ++i) body(i);
}

}  // namespace nc::util
