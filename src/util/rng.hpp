/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation for the simulator,
///        parameter init and data shuffling.
///
/// Everything stochastic in this repository flows through `Rng` with an
/// explicit seed, so every table/figure regenerates bit-identically.
/// The core generator is xoshiro256** (Blackman & Vigna), which is fast,
/// has a 2^256-1 period, and passes BigCrush — more than adequate for
/// Monte-Carlo detector simulation.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace nc::util {

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-seed via SplitMix64 so that nearby seeds give uncorrelated streams.
  void reseed(std::uint64_t seed) {
    for (auto& si : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform float in [0, 1).
  float uniform_f() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given mean.
  double exponential(double mean) {
    double u = 0.0;
    do {
      u = uniform();
    } while (u <= 1e-300);
    return -mean * std::log(u);
  }

  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  int poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda > 64.0) {
      const double v = normal(lambda, std::sqrt(lambda));
      return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
    }
    const double limit = std::exp(-lambda);
    double p = 1.0;
    int k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }

  /// Power-law sample x^(-alpha) on [xmin, xmax], alpha != 1.
  /// Used for the charged-particle transverse-momentum spectrum.
  double power_law(double alpha, double xmin, double xmax) {
    const double u = uniform();
    const double a1 = 1.0 - alpha;
    const double lo = std::pow(xmin, a1);
    const double hi = std::pow(xmax, a1);
    return std::pow(lo + u * (hi - lo), 1.0 / a1);
  }

  /// Fisher-Yates shuffle of an index range.
  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const std::uint64_t j = uniform_int(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

  /// Split off an independent child stream (for per-thread generators).
  Rng split() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace nc::util
