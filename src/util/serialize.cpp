#include "util/serialize.hpp"

#include <array>
#include <cstring>

namespace nc::util {

namespace {
template <typename T>
void write_raw(std::ostream& os, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  os.write(buf, sizeof(T));
}

template <typename T>
T read_raw(std::istream& is) {
  char buf[sizeof(T)];
  is.read(buf, sizeof(T));
  if (is.gcount() != static_cast<std::streamsize>(sizeof(T))) {
    throw SerializeError("unexpected end of stream");
  }
  T v;
  std::memcpy(&v, buf, sizeof(T));
  return v;
}
}  // namespace

void write_u32(std::ostream& os, std::uint32_t v) { write_raw(os, v); }
void write_u64(std::ostream& os, std::uint64_t v) { write_raw(os, v); }
void write_i64(std::ostream& os, std::int64_t v) { write_raw(os, v); }
void write_f32(std::ostream& os, float v) { write_raw(os, v); }
void write_f64(std::ostream& os, double v) { write_raw(os, v); }

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void write_bytes(std::ostream& os, const void* data, std::size_t n) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

std::uint32_t read_u32(std::istream& is) { return read_raw<std::uint32_t>(is); }
std::uint64_t read_u64(std::istream& is) { return read_raw<std::uint64_t>(is); }
std::int64_t read_i64(std::istream& is) { return read_raw<std::int64_t>(is); }
float read_f32(std::istream& is) { return read_raw<float>(is); }
double read_f64(std::istream& is) { return read_raw<double>(is); }

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  // Serialized strings are parameter names — a corrupt length must not buy
  // a giant allocation (1 MiB is orders of magnitude above any real name).
  if (n > (1ull << 20)) throw SerializeError("string length implausible");
  std::string s(n, '\0');
  read_bytes(is, s.data(), n);
  return s;
}

void read_bytes(std::istream& is, void* data, std::size_t n) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (is.gcount() != static_cast<std::streamsize>(n)) {
    throw SerializeError("unexpected end of stream");
  }
}

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

void write_magic(std::ostream& os, const char kind[4], std::uint32_t version) {
  os.write("NCMP", 4);
  os.write(kind, 4);
  write_u32(os, version);
}

std::uint32_t read_magic(std::istream& is, const char kind[4]) {
  char buf[8];
  is.read(buf, 8);
  if (is.gcount() != 8 || std::memcmp(buf, "NCMP", 4) != 0 ||
      std::memcmp(buf + 4, kind, 4) != 0) {
    throw SerializeError("bad magic header");
  }
  return read_u32(is);
}

}  // namespace nc::util
