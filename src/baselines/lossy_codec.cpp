#include "baselines/lossy_codec.hpp"

#include "baselines/bitstream.hpp"

namespace nc::baselines {

void write_shape(ByteWriter& w, const core::Shape& shape) {
  w.put_varint(shape.size());
  for (auto d : shape) w.put_i64(d);
}

core::Shape read_shape(ByteReader& r) {
  const std::uint64_t rank = r.get_varint();
  if (rank > 8) throw std::runtime_error("shape rank implausible");
  core::Shape shape(rank);
  for (auto& d : shape) d = r.get_i64();
  return shape;
}

}  // namespace nc::baselines
