/// \file bitstream.hpp
/// \brief Byte-oriented token stream shared by the learning-free codecs:
///        varint + zigzag integers, raw floats, and zero-run tokens.
///
/// Sparse TPC data is mostly runs of exact zeros; run-length tokens give the
/// predictive coders their entropy stage without a full arithmetic coder.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace nc::baselines {

class ByteWriter {
 public:
  void put_u8(std::uint8_t b) { bytes_.push_back(b); }

  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Signed integer via zigzag mapping (small magnitudes -> short codes).
  void put_svarint(std::int64_t v) {
    put_varint((static_cast<std::uint64_t>(v) << 1) ^
               static_cast<std::uint64_t>(v >> 63));
  }

  void put_f32(float f) {
    std::uint8_t buf[4];
    std::memcpy(buf, &f, 4);
    bytes_.insert(bytes_.end(), buf, buf + 4);
  }

  void put_u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void put_i64(std::int64_t v) {
    std::uint8_t buf[8];
    std::memcpy(buf, &v, 8);
    bytes_.insert(bytes_.end(), buf, buf + 8);
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  std::uint8_t get_u8() {
    check(1);
    return data_[pos_++];
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      check(1);
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
      if (shift > 63) throw std::runtime_error("varint overflow");
    }
    return v;
  }

  std::int64_t get_svarint() {
    const std::uint64_t u = get_varint();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  float get_f32() {
    check(4);
    float f;
    std::memcpy(&f, data_ + pos_, 4);
    pos_ += 4;
    return f;
  }

  std::uint16_t get_u16() {
    check(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::int64_t get_i64() {
    check(8);
    std::int64_t v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  void check(std::size_t n) const {
    if (pos_ + n > size_) throw std::runtime_error("bitstream underrun");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Compact encoder for streams of quantization bins dominated by zeros.
/// Wire format (all varints):
///   zigzag(bin)            for bin != 0   (zigzag of nonzero is >= 1)
///   0, run                 for `run` consecutive zero bins (run >= 1)
///   0, 0, f32              for a literal (unpredictable) value
class QuantEncoder {
 public:
  explicit QuantEncoder(ByteWriter& w) : w_(w) {}
  ~QuantEncoder() { flush(); }

  void put_bin(std::int64_t bin) {
    if (bin == 0) {
      ++run_;
      return;
    }
    flush();
    w_.put_varint((static_cast<std::uint64_t>(bin) << 1) ^
                  static_cast<std::uint64_t>(bin >> 63));
  }

  void put_literal(float f) {
    flush();
    w_.put_varint(0);
    w_.put_varint(0);
    w_.put_f32(f);
  }

  void flush() {
    if (run_) {
      w_.put_varint(0);
      w_.put_varint(run_);
      run_ = 0;
    }
  }

 private:
  ByteWriter& w_;
  std::uint64_t run_ = 0;
};

/// Decoder counterpart of QuantEncoder.
class QuantDecoder {
 public:
  explicit QuantDecoder(ByteReader& r) : r_(r) {}

  struct Event {
    enum class Kind { kBin, kZeroRun, kLiteral } kind;
    std::int64_t bin = 0;
    std::uint64_t run = 0;
    float literal = 0.f;
  };

  Event next() {
    Event e{};
    const std::uint64_t v = r_.get_varint();
    if (v != 0) {
      e.kind = Event::Kind::kBin;
      e.bin = static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
      return e;
    }
    const std::uint64_t run = r_.get_varint();
    if (run != 0) {
      e.kind = Event::Kind::kZeroRun;
      e.run = run;
      return e;
    }
    e.kind = Event::Kind::kLiteral;
    e.literal = r_.get_f32();
    return e;
  }

 private:
  ByteReader& r_;
};

}  // namespace nc::baselines
