/// \file mgard_lite.hpp
/// \brief Multilevel decimation compressor in the style of MGARD
///        (Ainsworth et al.): a coarse-grid representation plus
///        error-quantized multilevel correction terms.
///
/// Levels decimate the azimuthal and horizontal axes by 2 (radial stays,
/// matching the TPC wedge anisotropy).  The coarsest grid is stored as
/// binary16; each finer level stores the residual between the true grid and
/// the upsampled coarser reconstruction, quantized to the error bound and
/// entropy-coded with the shared zero-run token stream.  Guarantees
/// |recon - x| <= error_bound on every voxel (tested).
#pragma once

#include "baselines/lossy_codec.hpp"

namespace nc::baselines {

class MgardLite final : public LossyCodec {
 public:
  explicit MgardLite(float error_bound = 0.25f, int levels = 3)
      : eb_(error_bound), levels_(levels) {}

  std::vector<std::uint8_t> compress(const core::Tensor& wedge) const override;
  core::Tensor decompress(const std::vector<std::uint8_t>& bytes) const override;
  std::string name() const override;

 private:
  float eb_;
  int levels_;
};

}  // namespace nc::baselines
