/// \file lossy_codec.hpp
/// \brief Common interface for the learning-free lossy compressors the
///        paper positions BCAE against (SZ, ZFP, MGARD — §1).
///
/// These are faithful-in-spirit "lite" re-implementations: each uses its
/// original's core mechanism (error-bounded Lorenzo prediction for SZ,
/// fixed-rate block transform coding for ZFP, multilevel decimation with
/// error-quantized corrections for MGARD), with a shared run-length/varint
/// entropy stage instead of the originals' custom coders.  They exist so
/// the repository can *demonstrate* the paper's motivating claim — generic
/// lossy compressors handle sparse zero-suppressed TPC wedges poorly — not
/// to reproduce the exact SZ/ZFP/MGARD numbers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace nc::baselines {

class LossyCodec {
 public:
  virtual ~LossyCodec() = default;

  /// Compress a log-ADC wedge (any-rank tensor; shape is stored).
  virtual std::vector<std::uint8_t> compress(const core::Tensor& wedge) = 0;

  /// Reconstruct; the returned tensor has the original shape.
  virtual core::Tensor decompress(const std::vector<std::uint8_t>& bytes) = 0;

  virtual std::string name() const = 0;
};

/// Ratio vs storing the input as 16-bit floats — the same accounting used
/// for the BCAE code (§3.1), so baseline and BCAE ratios are comparable.
inline double baseline_compression_ratio(std::int64_t voxels,
                                         std::size_t compressed_bytes) {
  return compressed_bytes
             ? static_cast<double>(voxels * 2) /
                   static_cast<double>(compressed_bytes)
             : 0.0;
}

/// Write / read a tensor shape header.
void write_shape(class ByteWriter& w, const core::Shape& shape);
core::Shape read_shape(class ByteReader& r);

}  // namespace nc::baselines
