/// \file lossy_codec.hpp
/// \brief Common interface for the learning-free lossy compressors the
///        paper positions BCAE against (SZ, ZFP, MGARD — §1).
///
/// These are faithful-in-spirit "lite" re-implementations: each uses its
/// original's core mechanism (error-bounded Lorenzo prediction for SZ,
/// fixed-rate block transform coding for ZFP, multilevel decimation with
/// error-quantized corrections for MGARD), with a shared run-length/varint
/// entropy stage instead of the originals' custom coders.  They exist so
/// the repository can *demonstrate* the paper's motivating claim — generic
/// lossy compressors handle sparse zero-suppressed TPC wedges poorly — not
/// to reproduce the exact SZ/ZFP/MGARD numbers.
///
/// Thread-safety contract: `compress` / `decompress` are const and must be
/// safe for concurrent callers sharing one codec — the streaming pipeline
/// runs them from several workers at once (codec/wedge_codec.hpp).  The
/// three lite implementations satisfy this by construction: their only
/// state is immutable configuration (error bound / rate / level count) and
/// all working buffers are locals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/bitstream.hpp"
#include "core/tensor.hpp"

namespace nc::baselines {

class LossyCodec {
 public:
  virtual ~LossyCodec() = default;

  /// Compress a log-ADC wedge (any-rank tensor; shape is stored).
  virtual std::vector<std::uint8_t> compress(const core::Tensor& wedge) const = 0;

  /// Reconstruct; the returned tensor has the original shape.
  virtual core::Tensor decompress(const std::vector<std::uint8_t>& bytes) const = 0;

  virtual std::string name() const = 0;
};

/// The one compression-ratio accounting every codec in the tree shares
/// (§3.1): bytes of the input stored as 16-bit floats over compressed
/// payload bytes.  Identical to the BCAE element-count ratio (voxels /
/// code elements) when the payload is binary16, so learned and
/// learning-free ratios — and the rate–distortion arena built on them —
/// are directly comparable.
inline double fp16_storage_ratio(std::int64_t voxels,
                                 std::int64_t compressed_bytes) {
  return compressed_bytes > 0
             ? static_cast<double>(voxels) * 2.0 /
                   static_cast<double>(compressed_bytes)
             : 0.0;
}

/// Back-compat spelling used by the offline benches; same accounting.
inline double baseline_compression_ratio(std::int64_t voxels,
                                         std::size_t compressed_bytes) {
  return fp16_storage_ratio(voxels,
                            static_cast<std::int64_t>(compressed_bytes));
}

/// Write / read a tensor shape header (ByteWriter/ByteReader are the real
/// bitstream.hpp types — previously bare forward declarations whose
/// in-parameter-scope injection was one namespace tweak away from breaking).
void write_shape(ByteWriter& w, const core::Shape& shape);
core::Shape read_shape(ByteReader& r);

}  // namespace nc::baselines
