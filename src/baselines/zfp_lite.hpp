/// \file zfp_lite.hpp
/// \brief Fixed-rate block-transform compressor in the style of ZFP
///        (Lindstrom, TVCG'14): 4x4x4 blocks, block-floating-point
///        alignment, the ZFP integer lifting transform, and fixed-rate
///        coefficient coding.
///
/// Differences from real ZFP, documented for honesty: coefficients are kept
/// by zonal selection (lowest-frequency `kept_coefficients()` at 16 bits
/// each) rather than embedded bit-plane coding, and all-zero blocks are
/// stored as a 1-byte flag — a large win on sparse TPC data that real ZFP
/// does not get, so this baseline is if anything *flattered* here.
#pragma once

#include "baselines/lossy_codec.hpp"

namespace nc::baselines {

class ZfpLite final : public LossyCodec {
 public:
  /// `rate_bits` is the nominal budget in bits per value for non-empty
  /// blocks (1..16); kept coefficients = rate_bits * 64 / 16.
  explicit ZfpLite(int rate_bits = 4) : rate_bits_(rate_bits) {}

  std::vector<std::uint8_t> compress(const core::Tensor& wedge) const override;
  core::Tensor decompress(const std::vector<std::uint8_t>& bytes) const override;
  std::string name() const override;

  int kept_coefficients() const { return rate_bits_ * 64 / 16; }

 private:
  int rate_bits_;
};

}  // namespace nc::baselines
