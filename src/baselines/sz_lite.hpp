/// \file sz_lite.hpp
/// \brief Error-bounded predictive compressor in the style of SZ
///        (Di & Cappello, IPDPS'16): Lorenzo prediction + error-controlled
///        quantization + entropy stage.
///
/// Guarantee: every reconstructed value differs from the original by at
/// most `error_bound` (absolute, in log-ADC units) — verified by tests.
/// Prediction runs along the horizontal (drift-time) axis, the most
/// correlated direction of a TPC wedge.
#pragma once

#include "baselines/lossy_codec.hpp"

namespace nc::baselines {

class SzLite final : public LossyCodec {
 public:
  explicit SzLite(float error_bound = 0.25f) : eb_(error_bound) {}

  std::vector<std::uint8_t> compress(const core::Tensor& wedge) const override;
  core::Tensor decompress(const std::vector<std::uint8_t>& bytes) const override;
  std::string name() const override;

  float error_bound() const { return eb_; }

 private:
  float eb_;
};

}  // namespace nc::baselines
