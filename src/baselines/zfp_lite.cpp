#include "baselines/zfp_lite.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "baselines/bitstream.hpp"

namespace nc::baselines {

namespace {

/// ZFP's 4-point forward lifting transform (integer, in-place).
inline void fwd_lift(std::int32_t* p, std::ptrdiff_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x += w;
  x >>= 1;
  w -= x;
  z += y;
  z >>= 1;
  y -= z;
  x += z;
  x >>= 1;
  z -= x;
  w += y;
  w >>= 1;
  y -= w;
  w += y >> 1;
  y -= w >> 1;
  p[0 * s] = x;
  p[1 * s] = y;
  p[2 * s] = z;
  p[3 * s] = w;
}

/// Inverse of fwd_lift.
inline void inv_lift(std::int32_t* p, std::ptrdiff_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y += w >> 1;
  w -= y >> 1;
  y += w;
  w <<= 1;
  w -= y;
  z += x;
  x <<= 1;
  x -= z;
  y += z;
  z <<= 1;
  z -= y;
  w += x;
  x <<= 1;
  x -= w;
  p[0 * s] = x;
  p[1 * s] = y;
  p[2 * s] = z;
  p[3 * s] = w;
}

/// Coefficient visiting order: ascending total frequency (i+j+k), the 3-D
/// analogue of JPEG's zigzag.  Computed once.
const std::array<int, 64>& zonal_order() {
  static const std::array<int, 64> order = [] {
    std::array<int, 64> idx{};
    for (int i = 0; i < 64; ++i) idx[static_cast<std::size_t>(i)] = i;
    std::stable_sort(idx.begin(), idx.end(), [](int a, int b) {
      const int fa = (a & 3) + ((a >> 2) & 3) + ((a >> 4) & 3);
      const int fb = (b & 3) + ((b >> 2) & 3) + ((b >> 4) & 3);
      return fa < fb;
    });
    return idx;
  }();
  return order;
}

constexpr std::int32_t kQuantRange = 1 << 14;  // int16-safe after transform

}  // namespace

std::string ZfpLite::name() const {
  return "zfp-lite(rate=" + std::to_string(rate_bits_) + "bps)";
}

std::vector<std::uint8_t> ZfpLite::compress(const core::Tensor& wedge) const {
  if (wedge.ndim() != 3) {
    throw std::invalid_argument("zfp-lite: expects a 3-D wedge");
  }
  const std::int64_t d0 = wedge.dim(0), d1 = wedge.dim(1), d2 = wedge.dim(2);
  const std::int64_t b0 = (d0 + 3) / 4, b1 = (d1 + 3) / 4, b2 = (d2 + 3) / 4;

  ByteWriter w;
  write_shape(w, wedge.shape());
  w.put_u8(static_cast<std::uint8_t>(rate_bits_));

  const int kept = kept_coefficients();
  const auto& order = zonal_order();
  const float* x = wedge.data();

  for (std::int64_t bi = 0; bi < b0; ++bi) {
    for (std::int64_t bj = 0; bj < b1; ++bj) {
      for (std::int64_t bk = 0; bk < b2; ++bk) {
        // Gather the 4x4x4 block (zero padded at the far edges).
        float vals[64];
        float max_abs = 0.f;
        for (int i = 0; i < 4; ++i) {
          for (int j = 0; j < 4; ++j) {
            for (int k = 0; k < 4; ++k) {
              const std::int64_t gi = bi * 4 + i, gj = bj * 4 + j, gk = bk * 4 + k;
              float v = 0.f;
              if (gi < d0 && gj < d1 && gk < d2) {
                v = x[(gi * d1 + gj) * d2 + gk];
              }
              vals[(i * 4 + j) * 4 + k] = v;
              max_abs = std::max(max_abs, std::abs(v));
            }
          }
        }
        if (max_abs == 0.f) {
          w.put_u8(0);  // empty block: the sparse-data fast path
          continue;
        }
        w.put_u8(1);

        // Block-floating-point alignment to a power of two.
        const int emax = std::ilogb(max_abs);
        w.put_u8(static_cast<std::uint8_t>(emax + 128));
        const float scale = std::ldexp(1.f, -emax) * static_cast<float>(kQuantRange / 2);

        std::int32_t q[64];
        for (int i = 0; i < 64; ++i) {
          q[i] = static_cast<std::int32_t>(std::lround(vals[i] * scale));
        }
        // Separable lifting along k, j, i.
        for (int i = 0; i < 4; ++i)
          for (int j = 0; j < 4; ++j) fwd_lift(q + (i * 4 + j) * 4, 1);
        for (int i = 0; i < 4; ++i)
          for (int k = 0; k < 4; ++k) fwd_lift(q + i * 16 + k, 4);
        for (int j = 0; j < 4; ++j)
          for (int k = 0; k < 4; ++k) fwd_lift(q + j * 4 + k, 16);

        // Zonal selection: keep the `kept` lowest-frequency coefficients.
        for (int c = 0; c < kept; ++c) {
          const std::int32_t v = q[order[static_cast<std::size_t>(c)]];
          const std::int32_t clamped =
              std::clamp<std::int32_t>(v, -32768, 32767);
          w.put_u16(static_cast<std::uint16_t>(static_cast<std::int16_t>(clamped)));
        }
      }
    }
  }
  return w.take();
}

core::Tensor ZfpLite::decompress(const std::vector<std::uint8_t>& bytes) const {
  ByteReader r(bytes);
  const core::Shape shape = read_shape(r);
  const int rate = r.get_u8();
  const int kept = rate * 64 / 16;

  core::Tensor out(shape);
  const std::int64_t d0 = shape[0], d1 = shape[1], d2 = shape[2];
  const std::int64_t b0 = (d0 + 3) / 4, b1 = (d1 + 3) / 4, b2 = (d2 + 3) / 4;
  const auto& order = zonal_order();
  float* y = out.data();

  for (std::int64_t bi = 0; bi < b0; ++bi) {
    for (std::int64_t bj = 0; bj < b1; ++bj) {
      for (std::int64_t bk = 0; bk < b2; ++bk) {
        if (r.get_u8() == 0) continue;  // empty block, output stays zero
        const int emax = static_cast<int>(r.get_u8()) - 128;

        std::int32_t q[64] = {};
        for (int c = 0; c < kept; ++c) {
          q[order[static_cast<std::size_t>(c)]] =
              static_cast<std::int16_t>(r.get_u16());
        }
        // Inverse lifting in reverse axis order.
        for (int j = 0; j < 4; ++j)
          for (int k = 0; k < 4; ++k) inv_lift(q + j * 4 + k, 16);
        for (int i = 0; i < 4; ++i)
          for (int k = 0; k < 4; ++k) inv_lift(q + i * 16 + k, 4);
        for (int i = 0; i < 4; ++i)
          for (int j = 0; j < 4; ++j) inv_lift(q + (i * 4 + j) * 4, 1);

        const float inv_scale =
            std::ldexp(1.f, emax) / static_cast<float>(kQuantRange / 2);
        for (int i = 0; i < 4; ++i) {
          for (int j = 0; j < 4; ++j) {
            for (int k = 0; k < 4; ++k) {
              const std::int64_t gi = bi * 4 + i, gj = bj * 4 + j, gk = bk * 4 + k;
              if (gi < d0 && gj < d1 && gk < d2) {
                y[(gi * d1 + gj) * d2 + gk] =
                    static_cast<float>(q[(i * 4 + j) * 4 + k]) * inv_scale;
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace nc::baselines
