#include "baselines/sz_lite.hpp"

#include <cmath>

#include "baselines/bitstream.hpp"

namespace nc::baselines {

namespace {
constexpr std::int64_t kMaxBin = 1 << 20;  ///< beyond this: literal fallback
}  // namespace

std::string SzLite::name() const {
  return "sz-lite(eb=" + std::to_string(eb_) + ")";
}

std::vector<std::uint8_t> SzLite::compress(const core::Tensor& wedge) const {
  ByteWriter w;
  write_shape(w, wedge.shape());
  w.put_f32(eb_);

  const std::int64_t row = wedge.ndim() >= 1 ? wedge.dim(wedge.ndim() - 1) : 1;
  const std::int64_t rows = row ? wedge.numel() / row : 0;
  const float* x = wedge.data();
  const double two_eb = 2.0 * static_cast<double>(eb_);

  QuantEncoder enc(w);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* px = x + r * row;
    // Prediction restarts per row so rows stay independently decodable and
    // azimuthally-adjacent tracks don't leak across row boundaries.
    double pred = 0.0;
    for (std::int64_t i = 0; i < row; ++i) {
      const double residual = static_cast<double>(px[i]) - pred;
      const auto bin = static_cast<std::int64_t>(std::llround(residual / two_eb));
      if (std::abs(bin) >= kMaxBin) {
        enc.put_literal(px[i]);
        pred = px[i];
        continue;
      }
      enc.put_bin(bin);
      // Track the *decoder's* reconstruction to prevent error drift.
      pred += static_cast<double>(bin) * two_eb;
    }
  }
  enc.flush();
  return w.take();
}

core::Tensor SzLite::decompress(const std::vector<std::uint8_t>& bytes) const {
  ByteReader r(bytes);
  const core::Shape shape = read_shape(r);
  const float eb = r.get_f32();
  const double two_eb = 2.0 * static_cast<double>(eb);

  core::Tensor out(shape);
  const std::int64_t row = out.ndim() >= 1 ? out.dim(out.ndim() - 1) : 1;
  const std::int64_t n = out.numel();
  float* y = out.data();

  QuantDecoder dec(r);
  double pred = 0.0;
  std::int64_t i = 0;
  std::uint64_t pending_zero = 0;
  while (i < n) {
    if (i % row == 0) pred = 0.0;  // row restart, mirrors the encoder
    if (pending_zero) {
      --pending_zero;
      y[i++] = static_cast<float>(pred);
      continue;
    }
    const auto e = dec.next();
    switch (e.kind) {
      case QuantDecoder::Event::Kind::kBin:
        pred += static_cast<double>(e.bin) * two_eb;
        y[i++] = static_cast<float>(pred);
        break;
      case QuantDecoder::Event::Kind::kZeroRun:
        pending_zero = e.run;
        break;
      case QuantDecoder::Event::Kind::kLiteral:
        pred = e.literal;
        y[i++] = static_cast<float>(pred);
        break;
    }
  }
  return out;
}

}  // namespace nc::baselines
