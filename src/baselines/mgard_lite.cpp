#include "baselines/mgard_lite.hpp"

#include <cmath>

#include "baselines/bitstream.hpp"
#include "util/half.hpp"

namespace nc::baselines {

namespace {

/// Average-pool the last two axes by 2 (ceil extents, edge replication).
core::Tensor downsample(const core::Tensor& t) {
  const std::int64_t d0 = t.dim(0), d1 = t.dim(1), d2 = t.dim(2);
  const std::int64_t o1 = (d1 + 1) / 2, o2 = (d2 + 1) / 2;
  core::Tensor out({d0, o1, o2});
  for (std::int64_t i = 0; i < d0; ++i) {
    for (std::int64_t j = 0; j < o1; ++j) {
      for (std::int64_t k = 0; k < o2; ++k) {
        double acc = 0.0;
        int cnt = 0;
        for (std::int64_t dj = 0; dj < 2; ++dj) {
          for (std::int64_t dk = 0; dk < 2; ++dk) {
            const std::int64_t j2 = j * 2 + dj, k2 = k * 2 + dk;
            if (j2 < d1 && k2 < d2) {
              acc += static_cast<double>(t.at({i, j2, k2}));
              ++cnt;
            }
          }
        }
        out.at({i, j, k}) = static_cast<float>(acc / cnt);
      }
    }
  }
  return out;
}

/// Nearest-neighbour upsample of the last two axes to the given extents.
core::Tensor upsample(const core::Tensor& t, std::int64_t d1, std::int64_t d2) {
  const std::int64_t d0 = t.dim(0);
  core::Tensor out({d0, d1, d2});
  for (std::int64_t i = 0; i < d0; ++i) {
    for (std::int64_t j = 0; j < d1; ++j) {
      for (std::int64_t k = 0; k < d2; ++k) {
        out.at({i, j, k}) = t.at({i, j / 2, k / 2});
      }
    }
  }
  return out;
}

/// Quantize `residual = truth - base` into the token stream and apply the
/// reconstruction in place (base += bin * 2eb), so encoder and decoder see
/// identical grids at every level.
void encode_residual(ByteWriter& w, core::Tensor& base,
                     const core::Tensor& truth, double two_eb) {
  QuantEncoder enc(w);
  for (std::int64_t i = 0; i < truth.numel(); ++i) {
    const double res =
        static_cast<double>(truth[i]) - static_cast<double>(base[i]);
    const auto bin = static_cast<std::int64_t>(std::llround(res / two_eb));
    enc.put_bin(bin);
    if (bin != 0) base[i] += static_cast<float>(bin * two_eb);
  }
  enc.flush();
}

void decode_residual(ByteReader& r, core::Tensor& base, double two_eb) {
  QuantDecoder dec(r);
  std::int64_t i = 0;
  const std::int64_t n = base.numel();
  while (i < n) {
    const auto e = dec.next();
    switch (e.kind) {
      case QuantDecoder::Event::Kind::kBin:
        base[i] += static_cast<float>(e.bin * two_eb);
        ++i;
        break;
      case QuantDecoder::Event::Kind::kZeroRun:
        i += static_cast<std::int64_t>(e.run);
        break;
      case QuantDecoder::Event::Kind::kLiteral:
        throw std::runtime_error("mgard-lite: unexpected literal token");
    }
  }
}

}  // namespace

std::string MgardLite::name() const {
  return "mgard-lite(eb=" + std::to_string(eb_) + ",L=" + std::to_string(levels_) + ")";
}

std::vector<std::uint8_t> MgardLite::compress(const core::Tensor& wedge) const {
  if (wedge.ndim() != 3) {
    throw std::invalid_argument("mgard-lite: expects a 3-D wedge");
  }
  ByteWriter w;
  write_shape(w, wedge.shape());
  w.put_f32(eb_);
  w.put_u8(static_cast<std::uint8_t>(levels_));

  // Build the grid hierarchy fine -> coarse.
  std::vector<core::Tensor> pyramid{wedge};
  for (int l = 0; l < levels_; ++l) pyramid.push_back(downsample(pyramid.back()));

  // Coarsest grid: store as binary16 (its quantization error is << eb for
  // log-ADC magnitudes <= 10).
  // Coarsest grid is stored in binary16; the encoder must continue from the
  // *quantized* values so encoder and decoder reconstructions stay
  // bit-identical (otherwise the fp16 rounding would leak past the error
  // bound of the final correction level).
  const core::Tensor& coarse = pyramid.back();
  core::Tensor recon = coarse.clone();
  for (std::int64_t i = 0; i < coarse.numel(); ++i) {
    const util::half h(coarse[i]);
    w.put_u16(h.bits());
    recon[i] = static_cast<float>(h);
  }
  for (int l = levels_ - 1; l >= 0; --l) {
    const core::Tensor& truth = pyramid[static_cast<std::size_t>(l)];
    core::Tensor up = upsample(recon, truth.dim(1), truth.dim(2));
    const double level_eb =
        (l == 0) ? static_cast<double>(eb_) : static_cast<double>(eb_) * 0.5;
    encode_residual(w, up, truth, 2.0 * level_eb);
    recon = std::move(up);
  }
  return w.take();
}

core::Tensor MgardLite::decompress(const std::vector<std::uint8_t>& bytes) const {
  ByteReader r(bytes);
  const core::Shape shape = read_shape(r);
  const float eb = r.get_f32();
  const int levels = r.get_u8();

  // Recover the level extents.
  std::vector<std::pair<std::int64_t, std::int64_t>> dims;
  dims.emplace_back(shape[1], shape[2]);
  for (int l = 0; l < levels; ++l) {
    dims.emplace_back((dims.back().first + 1) / 2, (dims.back().second + 1) / 2);
  }

  core::Tensor recon({shape[0], dims.back().first, dims.back().second});
  for (std::int64_t i = 0; i < recon.numel(); ++i) {
    recon[i] = static_cast<float>(util::half::from_bits(r.get_u16()));
  }

  for (int l = levels - 1; l >= 0; --l) {
    core::Tensor up = upsample(recon, dims[static_cast<std::size_t>(l)].first,
                               dims[static_cast<std::size_t>(l)].second);
    const double level_eb =
        (l == 0) ? static_cast<double>(eb) : static_cast<double>(eb) * 0.5;
    decode_residual(r, up, 2.0 * level_eb);
    recon = std::move(up);
  }
  return recon.reshaped(shape);
}

}  // namespace nc::baselines
