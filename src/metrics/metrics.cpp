#include "metrics/metrics.hpp"

#include <cmath>
#include <limits>

#include "core/ops.hpp"

namespace nc::metrics {

ReconstructionMetrics evaluate_reconstruction(const core::Tensor& recon,
                                              const core::Tensor& truth,
                                              double peak,
                                              double positive_threshold) {
  core::check_same_shape(recon, truth, "evaluate_reconstruction");
  const std::int64_t n = recon.numel();
  const float* rp = recon.data();
  const float* tp = truth.data();

  double abs_sum = 0.0, sq_sum = 0.0;
  std::int64_t tp_count = 0, pred_pos = 0, actual_pos = 0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : abs_sum, sq_sum, tp_count, pred_pos, \
                                       actual_pos) schedule(static) if (n > (1 << 16))
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(rp[i]) - static_cast<double>(tp[i]);
    abs_sum += std::abs(d);
    sq_sum += d * d;
    const bool pred = rp[i] > 0.f;
    const bool actual = static_cast<double>(tp[i]) > positive_threshold;
    pred_pos += pred ? 1 : 0;
    actual_pos += actual ? 1 : 0;
    tp_count += (pred && actual) ? 1 : 0;
  }

  ReconstructionMetrics m;
  m.mae = n ? abs_sum / static_cast<double>(n) : 0.0;
  m.mse = n ? sq_sum / static_cast<double>(n) : 0.0;
  m.psnr = m.mse > 0.0 ? 10.0 * std::log10(peak * peak / m.mse)
                       : std::numeric_limits<double>::infinity();
  m.true_positive = tp_count;
  m.predicted_positive = pred_pos;
  m.actual_positive = actual_pos;
  m.precision = pred_pos ? static_cast<double>(tp_count) / static_cast<double>(pred_pos) : 0.0;
  m.recall = actual_pos ? static_cast<double>(tp_count) / static_cast<double>(actual_pos) : 0.0;
  return m;
}

void MetricsAccumulator::add(const ReconstructionMetrics& m, std::int64_t voxels) {
  abs_sum_ += m.mae * static_cast<double>(voxels);
  sq_sum_ += m.mse * static_cast<double>(voxels);
  voxels_ += voxels;
  tp_ += m.true_positive;
  pred_pos_ += m.predicted_positive;
  actual_pos_ += m.actual_positive;
}

ReconstructionMetrics MetricsAccumulator::result(double peak) const {
  ReconstructionMetrics m;
  if (voxels_ == 0) return m;
  m.mae = abs_sum_ / static_cast<double>(voxels_);
  m.mse = sq_sum_ / static_cast<double>(voxels_);
  m.psnr = m.mse > 0.0 ? 10.0 * std::log10(peak * peak / m.mse)
                       : std::numeric_limits<double>::infinity();
  m.true_positive = tp_;
  m.predicted_positive = pred_pos_;
  m.actual_positive = actual_pos_;
  m.precision = pred_pos_ ? static_cast<double>(tp_) / static_cast<double>(pred_pos_) : 0.0;
  m.recall = actual_pos_ ? static_cast<double>(tp_) / static_cast<double>(actual_pos_) : 0.0;
  return m;
}

}  // namespace nc::metrics
