/// \file metrics.hpp
/// \brief Reconstruction-quality metrics (§3.3).
///
/// The paper evaluates four metrics on the test wedges, all reproduced here:
///   MAE   — mean |recon - truth| over all voxels (lower better)
///   PSNR  — 10 log10(peak^2 / MSE) with peak = 10 (the log-ADC range)
///   precision / recall — voxel classification of "occupied", where the
///     prediction is positive when the segmentation mask fired (equivalently
///     recon > 0, since the regression transform keeps values above 6) and
///     ground truth is positive when the true log-ADC exceeds 6.
#pragma once

#include <cstdint>

#include "core/tensor.hpp"

namespace nc::metrics {

struct ReconstructionMetrics {
  double mae = 0.0;
  double mse = 0.0;
  double psnr = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  std::int64_t true_positive = 0;
  std::int64_t predicted_positive = 0;
  std::int64_t actual_positive = 0;
};

/// Evaluate a reconstruction against ground truth.  `positive_threshold` is
/// the log-ADC cut defining an occupied voxel in the *truth* (6, the zero-
/// suppression edge); a *predicted* voxel counts as positive when its
/// reconstruction is nonzero (the BCAE mask semantics — also correct for
/// the learning-free baselines, which reconstruct suppressed voxels as 0).
ReconstructionMetrics evaluate_reconstruction(const core::Tensor& recon,
                                              const core::Tensor& truth,
                                              double peak = 10.0,
                                              double positive_threshold = 6.0);

/// Merge per-batch metrics into a running aggregate (weighted by voxel and
/// classification counts so the result equals a single global evaluation).
class MetricsAccumulator {
 public:
  void add(const ReconstructionMetrics& m, std::int64_t voxels);
  ReconstructionMetrics result(double peak = 10.0) const;
  std::int64_t total_voxels() const { return voxels_; }

 private:
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  std::int64_t voxels_ = 0;
  std::int64_t tp_ = 0, pred_pos_ = 0, actual_pos_ = 0;
};

}  // namespace nc::metrics
