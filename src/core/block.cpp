#include "core/block.hpp"

#include "core/act.hpp"
#include "core/conv.hpp"
#include "core/norm.hpp"
#include "core/ops.hpp"

namespace nc::core {

Sequential& Sequential::add(LayerPtr layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, Mode mode) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, mode);
  return h;
}

Tensor Sequential::backward(const Tensor& gy) {
  Tensor g = gy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

void Sequential::invalidate_half_cache() {
  for (auto& layer : layers_) layer->invalidate_half_cache();
}

// ---------------------------------------------------------------------------
// ResBlock
// ---------------------------------------------------------------------------

ResBlock::ResBlock(LayerPtr conv1, LayerPtr conv2, LayerPtr skip,
                   LayerPtr norm1, LayerPtr norm2, LayerPtr norm_skip,
                   std::string label)
    : conv1_(std::move(conv1)),
      conv2_(std::move(conv2)),
      skip_(std::move(skip)),
      norm1_(std::move(norm1)),
      norm2_(std::move(norm2)),
      norm_skip_(std::move(norm_skip)),
      act1_(std::make_unique<LeakyReLU>(0.01f, label + ".act1")),
      act2_(std::make_unique<LeakyReLU>(0.01f, label + ".act2")),
      label_(std::move(label)) {}

LayerPtr ResBlock::make_2d(std::int64_t in_c, std::int64_t out_c,
                           std::int64_t kernel, std::int64_t pad, bool use_norm,
                           util::Rng& rng, std::string label) {
  auto conv1 = std::make_unique<Conv2d>(
      in_c, out_c, std::array<std::int64_t, 2>{kernel, kernel},
      std::array<std::int64_t, 2>{1, 1}, std::array<std::int64_t, 2>{pad, pad},
      /*with_bias=*/true, rng, label + ".conv1");
  auto conv2 = std::make_unique<Conv2d>(
      out_c, out_c, std::array<std::int64_t, 2>{kernel, kernel},
      std::array<std::int64_t, 2>{1, 1}, std::array<std::int64_t, 2>{pad, pad},
      /*with_bias=*/true, rng, label + ".conv2");
  LayerPtr skip;
  if (in_c != out_c) {
    skip = std::make_unique<Conv2d>(
        in_c, out_c, std::array<std::int64_t, 2>{1, 1},
        std::array<std::int64_t, 2>{1, 1}, std::array<std::int64_t, 2>{0, 0},
        /*with_bias=*/true, rng, label + ".skip");
  }
  LayerPtr n1, n2, ns;
  if (use_norm) {
    n1 = std::make_unique<InstanceNorm>(out_c, 1e-5f, label + ".norm1");
    n2 = std::make_unique<InstanceNorm>(out_c, 1e-5f, label + ".norm2");
    if (skip) ns = std::make_unique<InstanceNorm>(out_c, 1e-5f, label + ".norm_skip");
  }
  return LayerPtr(new ResBlock(std::move(conv1), std::move(conv2),
                               std::move(skip), std::move(n1), std::move(n2),
                               std::move(ns), std::move(label)));
}

LayerPtr ResBlock::make_3d(std::int64_t in_c, std::int64_t out_c,
                           std::array<std::int64_t, 3> kernel,
                           std::array<std::int64_t, 3> pad, bool use_norm,
                           util::Rng& rng, std::string label) {
  auto conv1 = std::make_unique<Conv3d>(in_c, out_c, kernel,
                                        std::array<std::int64_t, 3>{1, 1, 1},
                                        pad, /*with_bias=*/true, rng,
                                        label + ".conv1");
  auto conv2 = std::make_unique<Conv3d>(out_c, out_c, kernel,
                                        std::array<std::int64_t, 3>{1, 1, 1},
                                        pad, /*with_bias=*/true, rng,
                                        label + ".conv2");
  LayerPtr skip;
  if (in_c != out_c) {
    skip = std::make_unique<Conv3d>(in_c, out_c,
                                    std::array<std::int64_t, 3>{1, 1, 1},
                                    std::array<std::int64_t, 3>{1, 1, 1},
                                    std::array<std::int64_t, 3>{0, 0, 0},
                                    /*with_bias=*/true, rng, label + ".skip");
  }
  LayerPtr n1, n2, ns;
  if (use_norm) {
    n1 = std::make_unique<InstanceNorm>(out_c, 1e-5f, label + ".norm1");
    n2 = std::make_unique<InstanceNorm>(out_c, 1e-5f, label + ".norm2");
    if (skip) ns = std::make_unique<InstanceNorm>(out_c, 1e-5f, label + ".norm_skip");
  }
  return LayerPtr(new ResBlock(std::move(conv1), std::move(conv2),
                               std::move(skip), std::move(n1), std::move(n2),
                               std::move(ns), std::move(label)));
}

Tensor ResBlock::forward(const Tensor& x, Mode mode) {
  Tensor h = conv1_->forward(x, mode);
  h = act1_->forward(h, mode);
  if (norm1_) h = norm1_->forward(h, mode);
  h = conv2_->forward(h, mode);
  if (norm2_) h = norm2_->forward(h, mode);

  Tensor s = skip_ ? skip_->forward(x, mode) : x;
  if (norm_skip_) s = norm_skip_->forward(s, mode);

  add_inplace(h, s);
  return act2_->forward(h, mode);
}

Tensor ResBlock::backward(const Tensor& gy) {
  Tensor g = act2_->backward(gy);

  // Skip branch gradient.
  Tensor gs = g;
  if (norm_skip_) gs = norm_skip_->backward(gs);
  Tensor gx_skip = skip_ ? skip_->backward(gs) : gs;

  // Main branch gradient.
  Tensor gm = g;
  if (norm2_) gm = norm2_->backward(gm);
  gm = conv2_->backward(gm);
  if (norm1_) gm = norm1_->backward(gm);
  gm = act1_->backward(gm);
  Tensor gx_main = conv1_->backward(gm);

  add_inplace(gx_main, gx_skip);
  return gx_main;
}

void ResBlock::collect_params(std::vector<Param*>& out) {
  conv1_->collect_params(out);
  conv2_->collect_params(out);
  if (skip_) skip_->collect_params(out);
  if (norm1_) norm1_->collect_params(out);
  if (norm2_) norm2_->collect_params(out);
  if (norm_skip_) norm_skip_->collect_params(out);
}

void ResBlock::invalidate_half_cache() {
  conv1_->invalidate_half_cache();
  conv2_->invalidate_half_cache();
  if (skip_) skip_->invalidate_half_cache();
}

}  // namespace nc::core
