/// \file init.hpp
/// \brief Parameter initialization schemes.
#pragma once

#include "core/tensor.hpp"
#include "util/rng.hpp"

namespace nc::core {

/// Kaiming/He normal init for conv weights feeding (leaky-)ReLU:
/// std = gain / sqrt(fan_in).  `fan_in` = in_channels * prod(kernel).
void kaiming_normal(Tensor& w, std::int64_t fan_in, util::Rng& rng,
                    double gain = std::numbers::sqrt2);

/// Uniform in [-bound, bound] (PyTorch's default conv bias init uses
/// bound = 1/sqrt(fan_in)).
void uniform_init(Tensor& w, double bound, util::Rng& rng);

}  // namespace nc::core
