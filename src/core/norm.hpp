/// \file norm.hpp
/// \brief Instance normalization with affine parameters.
///
/// Present only to reproduce the *original* BCAE baseline: the paper's
/// second modification (§2.3) removes all normalization layers from
/// BCAE++/BCAE-HT/BCAE-2D, citing unchanged accuracy after long training
/// but faster training and inference.  Keeping the layer lets the Table 1
/// "BCAE" row be an honest re-implementation and makes the speed claim
/// checkable as an ablation.
#pragma once

#include "core/layer.hpp"
#include "util/rng.hpp"

namespace nc::core {

/// Per-sample per-channel normalization over all trailing spatial dims;
/// works for both (N, C, H, W) and (N, C, D, H, W) inputs.
class InstanceNorm final : public Layer {
 public:
  explicit InstanceNorm(std::int64_t channels, float eps = 1e-5f,
                        std::string label = "instancenorm");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return label_; }

 private:
  std::int64_t channels_;
  float eps_;
  Param gamma_;  ///< scale, init 1
  Param beta_;   ///< shift, init 0
  std::string label_;

  // backward cache
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  ///< per (n, c)
};

}  // namespace nc::core
