#include "core/pool.hpp"

#include "util/parallel.hpp"

namespace nc::core {

Tensor AvgPool2d::forward(const Tensor& x, Mode mode) {
  if (x.ndim() != 4) throw std::invalid_argument(label_ + ": expected 4-D input");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (h % k_ != 0 || w % k_ != 0) {
    throw std::invalid_argument(label_ + ": spatial dims must be divisible by kernel");
  }
  const std::int64_t oh = h / k_, ow = w / k_;
  Tensor out({n, c, oh, ow});
  const float inv = 1.f / static_cast<float>(k_ * k_);
  const float* xp = x.data();
  float* op = out.data();
  util::parallel_for(
      0, n * c,
      [&](std::int64_t plane) {
        const float* in_p = xp + plane * h * w;
        float* out_p = op + plane * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            float acc = 0.f;
            for (std::int64_t ky = 0; ky < k_; ++ky) {
              const float* row = in_p + (oy * k_ + ky) * w + ox * k_;
              for (std::int64_t kx = 0; kx < k_; ++kx) acc += row[kx];
            }
            out_p[oy * ow + ox] = acc * inv;
          }
        }
      },
      1);
  if (mode == Mode::kTrain) cached_in_shape_ = x.shape();
  return out;
}

Tensor AvgPool2d::backward(const Tensor& gy) {
  const Shape& in_shape = cached_in_shape_;
  const std::int64_t n = in_shape[0], c = in_shape[1], h = in_shape[2], w = in_shape[3];
  const std::int64_t oh = h / k_, ow = w / k_;
  Tensor gx(in_shape);
  const float inv = 1.f / static_cast<float>(k_ * k_);
  const float* gp = gy.data();
  float* op = gx.data();
  util::parallel_for(
      0, n * c,
      [&](std::int64_t plane) {
        const float* g_p = gp + plane * oh * ow;
        float* out_p = op + plane * h * w;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const float g = g_p[oy * ow + ox] * inv;
            for (std::int64_t ky = 0; ky < k_; ++ky) {
              float* row = out_p + (oy * k_ + ky) * w + ox * k_;
              for (std::int64_t kx = 0; kx < k_; ++kx) row[kx] = g;
            }
          }
        }
      },
      1);
  return gx;
}

Tensor Upsample2d::forward(const Tensor& x, Mode mode) {
  if (x.ndim() != 4) throw std::invalid_argument(label_ + ": expected 4-D input");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = h * scale_, ow = w * scale_;
  Tensor out({n, c, oh, ow});
  const float* xp = x.data();
  float* op = out.data();
  util::parallel_for(
      0, n * c,
      [&](std::int64_t plane) {
        const float* in_p = xp + plane * h * w;
        float* out_p = op + plane * oh * ow;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const float* in_row = in_p + (oy / scale_) * w;
          float* out_row = out_p + oy * ow;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            out_row[ox] = in_row[ox / scale_];
          }
        }
      },
      1);
  if (mode == Mode::kTrain) cached_in_shape_ = x.shape();
  return out;
}

Tensor Upsample2d::backward(const Tensor& gy) {
  const Shape& in_shape = cached_in_shape_;
  const std::int64_t n = in_shape[0], c = in_shape[1], h = in_shape[2], w = in_shape[3];
  const std::int64_t oh = h * scale_, ow = w * scale_;
  Tensor gx(in_shape);
  const float* gp = gy.data();
  float* op = gx.data();
  util::parallel_for(
      0, n * c,
      [&](std::int64_t plane) {
        const float* g_p = gp + plane * oh * ow;
        float* out_p = op + plane * h * w;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const float* g_row = g_p + oy * ow;
          float* out_row = out_p + (oy / scale_) * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            out_row[ox / scale_] += g_row[ox];
          }
        }
      },
      1);
  return gx;
}

Tensor AvgPool3d::forward(const Tensor& x, Mode mode) {
  if (x.ndim() != 5) throw std::invalid_argument(label_ + ": expected 5-D input");
  const std::int64_t n = x.dim(0), c = x.dim(1), d = x.dim(2), h = x.dim(3), w = x.dim(4);
  const auto [kd, kh, kw] = k_;
  if (d % kd != 0 || h % kh != 0 || w % kw != 0) {
    throw std::invalid_argument(label_ + ": dims must be divisible by kernel");
  }
  const std::int64_t od = d / kd, oh = h / kh, ow = w / kw;
  Tensor out({n, c, od, oh, ow});
  const float inv = 1.f / static_cast<float>(kd * kh * kw);
  const float* xp = x.data();
  float* op = out.data();
  util::parallel_for(
      0, n * c,
      [&](std::int64_t plane) {
        const float* in_p = xp + plane * d * h * w;
        float* out_p = op + plane * od * oh * ow;
        for (std::int64_t oz = 0; oz < od; ++oz) {
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              float acc = 0.f;
              for (std::int64_t kz = 0; kz < kd; ++kz) {
                for (std::int64_t ky = 0; ky < kh; ++ky) {
                  const float* row =
                      in_p + ((oz * kd + kz) * h + oy * kh + ky) * w + ox * kw;
                  for (std::int64_t kx = 0; kx < kw; ++kx) acc += row[kx];
                }
              }
              out_p[(oz * oh + oy) * ow + ox] = acc * inv;
            }
          }
        }
      },
      1);
  if (mode == Mode::kTrain) cached_in_shape_ = x.shape();
  return out;
}

Tensor AvgPool3d::backward(const Tensor& gy) {
  const Shape& in_shape = cached_in_shape_;
  const std::int64_t n = in_shape[0], c = in_shape[1], d = in_shape[2],
                     h = in_shape[3], w = in_shape[4];
  const auto [kd, kh, kw] = k_;
  const std::int64_t od = d / kd, oh = h / kh, ow = w / kw;
  Tensor gx(in_shape);
  const float inv = 1.f / static_cast<float>(kd * kh * kw);
  const float* gp = gy.data();
  float* op = gx.data();
  util::parallel_for(
      0, n * c,
      [&](std::int64_t plane) {
        const float* g_p = gp + plane * od * oh * ow;
        float* out_p = op + plane * d * h * w;
        for (std::int64_t oz = 0; oz < od; ++oz) {
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const float g = g_p[(oz * oh + oy) * ow + ox] * inv;
              for (std::int64_t kz = 0; kz < kd; ++kz) {
                for (std::int64_t ky = 0; ky < kh; ++ky) {
                  float* row =
                      out_p + ((oz * kd + kz) * h + oy * kh + ky) * w + ox * kw;
                  for (std::int64_t kx = 0; kx < kw; ++kx) row[kx] = g;
                }
              }
            }
          }
        }
      },
      1);
  return gx;
}

Tensor Upsample3d::forward(const Tensor& x, Mode mode) {
  if (x.ndim() != 5) throw std::invalid_argument(label_ + ": expected 5-D input");
  const std::int64_t n = x.dim(0), c = x.dim(1), d = x.dim(2), h = x.dim(3), w = x.dim(4);
  const auto [sd, sh, sw] = scale_;
  const std::int64_t od = d * sd, oh = h * sh, ow = w * sw;
  Tensor out({n, c, od, oh, ow});
  const float* xp = x.data();
  float* op = out.data();
  util::parallel_for(
      0, n * c,
      [&](std::int64_t plane) {
        const float* in_p = xp + plane * d * h * w;
        float* out_p = op + plane * od * oh * ow;
        for (std::int64_t oz = 0; oz < od; ++oz) {
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const float* in_row = in_p + ((oz / sd) * h + oy / sh) * w;
            float* out_row = out_p + (oz * oh + oy) * ow;
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              out_row[ox] = in_row[ox / sw];
            }
          }
        }
      },
      1);
  if (mode == Mode::kTrain) cached_in_shape_ = x.shape();
  return out;
}

Tensor Upsample3d::backward(const Tensor& gy) {
  const Shape& in_shape = cached_in_shape_;
  const std::int64_t n = in_shape[0], c = in_shape[1], d = in_shape[2],
                     h = in_shape[3], w = in_shape[4];
  const auto [sd, sh, sw] = scale_;
  const std::int64_t od = d * sd, oh = h * sh, ow = w * sw;
  Tensor gx(in_shape);
  const float* gp = gy.data();
  float* op = gx.data();
  util::parallel_for(
      0, n * c,
      [&](std::int64_t plane) {
        const float* g_p = gp + plane * od * oh * ow;
        float* out_p = op + plane * d * h * w;
        for (std::int64_t oz = 0; oz < od; ++oz) {
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const float* g_row = g_p + (oz * oh + oy) * ow;
            float* out_row = out_p + ((oz / sd) * h + oy / sh) * w;
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              out_row[ox / sw] += g_row[ox];
            }
          }
        }
      },
      1);
  return gx;
}

}  // namespace nc::core
