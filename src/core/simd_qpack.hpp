/// \file simd_qpack.hpp
/// \brief Shared packed-B panel layout for the int8 GEMM kernels.
///
/// Both vector ISAs consume the same panel format, built once per `qgemm`
/// call (i.e. once per im2col buffer) and amortized over all M weight rows:
///
///   * columns are grouped into j-tiles of kQTileJ = 16 lanes;
///   * within a tile, k advances in quads of kQQuadK = 4, stored
///     interleaved: byte [(j - j0) * 4 + r] of quad-row q holds
///     B[4q + r, j];
///   * both dimensions are zero-padded up to the tile/quad boundary.
///
/// One 64-byte quad-row is exactly one AVX-512 register (16 lanes x 4
/// bytes — the native operand shape of `vpdpbusd`), and exactly two AVX2
/// registers of 8 lanes each (the operand shape of the `vpmaddubsw` +
/// `vpmaddwd` pair).  The layout turns the inner loop of both kernels into
/// contiguous 32/64-byte loads with no shuffles.
///
/// Intrinsics-free on purpose.  `pack_b_quad16` below is the portable
/// reference packer (and the bytewise ground truth for the vectorized
/// `pack_b_panel` copies inside the per-ISA TUs — at small m the pack is a
/// significant fraction of the GEMM, so the hot kernels use an SSE 4x16
/// byte interleave instead).
#pragma once

#include <cstdint>
#include <vector>

namespace nc::core::simd::detail {

inline constexpr std::int64_t kQTileJ = 16;  ///< columns per packed j-tile
inline constexpr std::int64_t kQQuadK = 4;   ///< k values per interleaved quad

/// Bytes required to pack a (k x n) row-major int8 matrix.
std::int64_t packed_b_bytes(std::int64_t k, std::int64_t n);

/// Pack row-major B (k x n, leading dimension n) into the quad-k/16-j panel
/// layout described above.  `packed` must hold `packed_b_bytes(k, n)` bytes;
/// padding lanes are zero-filled.
void pack_b_quad16(const std::int8_t* b, std::int64_t k, std::int64_t n,
                   std::int8_t* packed);

/// Thread-local scratch buffers (capacity retained across calls so
/// steady-state inference performs no allocation; thread_local keeps the
/// buffers private to each OpenMP/pipeline worker).
std::vector<std::int8_t>& qpack_scratch();    ///< packed B panels
std::vector<std::int8_t>& qpad_a_scratch();   ///< A rows padded to a quad multiple
std::vector<std::int32_t>& qrow_sum_scratch();///< per-row weight sums (VNNI bias fix)

}  // namespace nc::core::simd::detail
