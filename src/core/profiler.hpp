/// \file profiler.hpp
/// \brief Per-layer CPU time + GEMM-shape accounting.
///
/// Stands in for the paper's Nsight Systems profile (Fig. 6D): the paper's
/// diagnostic is that BCAE-HT's convolutions are too small to engage tensor
/// cores; our analogue records each conv's GEMM dimensions and time share so
/// the same "kernels too small to amortize the parallel machinery"
/// conclusion can be read off a table.
///
/// Disabled by default (zero overhead beyond one branch); enable around a
/// measurement window.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace nc::core {

struct ProfileEntry {
  double total_s = 0.0;
  std::uint64_t calls = 0;
  double flops = 0.0;        ///< accumulated FLOPs (2*M*N*K per GEMM)
  std::int64_t gemm_m = 0;   ///< last-seen GEMM dims (diagnostic)
  std::int64_t gemm_n = 0;
  std::int64_t gemm_k = 0;
};

class Profiler {
 public:
  static Profiler& instance();

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Record one kernel invocation under `label`.
  void record(const std::string& label, double seconds, double flops,
              std::int64_t m = 0, std::int64_t n = 0, std::int64_t k = 0);

  void clear();

  /// Snapshot sorted by descending total time.
  std::vector<std::pair<std::string, ProfileEntry>> entries() const;

  /// Render an aligned text table (label, time share, GFLOP/s, GEMM dims).
  std::string report() const;

 private:
  Profiler() = default;
  // Atomic: read on every conv forward, possibly from concurrent eval
  // threads while another toggles a measurement window.
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, ProfileEntry> entries_;
};

}  // namespace nc::core
