#include "core/init.hpp"

#include <cmath>

namespace nc::core {

void kaiming_normal(Tensor& w, std::int64_t fan_in, util::Rng& rng,
                    double gain) {
  const double std = gain / std::sqrt(static_cast<double>(fan_in > 0 ? fan_in : 1));
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal(0.0, std));
  }
}

void uniform_init(Tensor& w, double bound, util::Rng& rng) {
  float* p = w.data();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    p[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

}  // namespace nc::core
