#include "core/im2col.hpp"

namespace nc::core {

// col2im parallelizes over *input channels*: every column row (c, ky, kx)
// with the same c scatters into the same channel plane, so binning rows by
// channel keeps writes disjoint across threads without atomics.
void col2im_2d(const float* cols, const Conv2dGeom& g, float* out) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  util::parallel_for(
      0, g.c,
      [&](std::int64_t c_i) {
        float* out_c = out + c_i * g.h * g.w;
        for (std::int64_t kh_i = 0; kh_i < g.kh; ++kh_i) {
          for (std::int64_t kw_i = 0; kw_i < g.kw; ++kw_i) {
            const std::int64_t r = (c_i * g.kh + kh_i) * g.kw + kw_i;
            const float* src = cols + r * (oh * ow);
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              const std::int64_t iy = oy * g.sh - g.ph + kh_i;
              if (iy < 0 || iy >= g.h) {
                src += ow;
                continue;
              }
              float* out_row = out_c + iy * g.w;
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                const std::int64_t ix = ox * g.sw - g.pw + kw_i;
                if (ix >= 0 && ix < g.w) out_row[ix] += src[ox];
              }
              src += ow;
            }
          }
        }
      },
      1);
}

void col2vol_3d(const float* cols, const Conv3dGeom& g, float* out) {
  const std::int64_t od = g.out_d(), oh = g.out_h(), ow = g.out_w();
  util::parallel_for(
      0, g.c,
      [&](std::int64_t c_i) {
        float* out_c = out + c_i * g.d * g.h * g.w;
        for (std::int64_t kd_i = 0; kd_i < g.kd; ++kd_i) {
          for (std::int64_t kh_i = 0; kh_i < g.kh; ++kh_i) {
            for (std::int64_t kw_i = 0; kw_i < g.kw; ++kw_i) {
              const std::int64_t r =
                  ((c_i * g.kd + kd_i) * g.kh + kh_i) * g.kw + kw_i;
              const float* src = cols + r * (od * oh * ow);
              for (std::int64_t oz = 0; oz < od; ++oz) {
                const std::int64_t iz = oz * g.sd - g.pd + kd_i;
                if (iz < 0 || iz >= g.d) {
                  src += oh * ow;
                  continue;
                }
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                  const std::int64_t iy = oy * g.sh - g.ph + kh_i;
                  if (iy < 0 || iy >= g.h) {
                    src += ow;
                    continue;
                  }
                  float* out_row = out_c + (iz * g.h + iy) * g.w;
                  for (std::int64_t ox = 0; ox < ow; ++ox) {
                    const std::int64_t ix = ox * g.sw - g.pw + kw_i;
                    if (ix >= 0 && ix < g.w) out_row[ix] += src[ox];
                  }
                  src += ow;
                }
              }
            }
          }
        }
      },
      1);
}

}  // namespace nc::core
