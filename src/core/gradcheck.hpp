/// \file gradcheck.hpp
/// \brief Numerical gradient verification harness.
///
/// Every layer's analytic backward is validated in the test suite against
/// central finite differences of a randomized scalar objective
/// L = Σ out ⊙ R (R a fixed random tensor), which exercises arbitrary
/// upstream gradients.
#pragma once

#include "core/layer.hpp"
#include "util/rng.hpp"

namespace nc::core {

struct GradCheckResult {
  double max_abs_err = 0.0;   ///< worst |analytic - numeric|
  double max_rel_err = 0.0;   ///< worst |a - n| / max(1, |a|, |n|)
  std::string worst_param;    ///< "input" or parameter name
};

/// Check d(Σ out⊙R)/d(input) and d/d(params) for `layer` at input `x`.
/// `eps` is the finite-difference step (float32 => ~1e-2..1e-3 works best).
GradCheckResult gradcheck_layer(Layer& layer, const Tensor& x,
                                std::uint64_t seed, double eps = 1e-2);

}  // namespace nc::core
