/// \file tensor.hpp
/// \brief Dense N-dimensional float tensor — the data currency of the NN
///        substrate.
///
/// Design notes:
///  * Contiguous row-major storage only.  The BCAE graphs never need strided
///    views; keeping tensors contiguous keeps every kernel a flat loop.
///  * Storage is shared (`std::shared_ptr`) so reshapes and pipeline
///    hand-offs are O(1); `clone()` gives a deep copy when isolation is
///    needed.
///  * A parallel 16-bit variant (`HalfTensor`) exists purely as a storage
///    format for the half-precision inference path.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/half.hpp"

namespace nc::core {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "(a, b, c)" rendering for diagnostics.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (numel 0, rank 0).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// Adopt values (size must match shape).
  static Tensor from_vector(Shape shape, std::vector<float> values);

  // -- geometry --------------------------------------------------------------

  const Shape& shape() const { return shape_; }
  std::int64_t ndim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t i) const { return shape_.at(static_cast<std::size_t>(i)); }
  std::int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  /// O(1) metadata-only reshape sharing storage; total size must match.
  Tensor reshaped(Shape new_shape) const;

  /// Deep copy.
  Tensor clone() const;

  // -- element access ---------------------------------------------------------

  float* data() { return data_ ? data_->data() : nullptr; }
  const float* data() const { return data_ ? data_->data() : nullptr; }

  float& operator[](std::int64_t i) { return (*data_)[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return (*data_)[static_cast<std::size_t>(i)]; }

  /// Bounds-checked multi-index access (tests / small code paths only).
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  /// True when two tensors share the same storage buffer.
  bool shares_storage_with(const Tensor& other) const {
    return data_ != nullptr && data_ == other.data_;
  }

 private:
  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::int64_t numel_ = 0;
  std::shared_ptr<std::vector<float>> data_;
};

/// 16-bit storage tensor for the half-precision path.  No arithmetic —
/// kernels convert to float on load (F16C hardware conversion where
/// available via the native _Float16 type).
class HalfTensor {
 public:
  HalfTensor() = default;
  explicit HalfTensor(Shape shape);

  /// Cast a float tensor element-wise to binary16 (round-to-nearest-even).
  static HalfTensor from_float(const Tensor& t);

  /// Widen back to float32.
  Tensor to_float() const;

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return numel_; }

  util::half* data() { return data_.data(); }
  const util::half* data() const { return data_.data(); }

 private:
  Shape shape_;
  std::int64_t numel_ = 0;
  std::vector<util::half> data_;
};

}  // namespace nc::core
