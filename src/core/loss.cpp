#include "core/loss.hpp"

#include <cmath>

#include "core/ops.hpp"

namespace nc::core {

namespace {
constexpr double kLn2 = 0.6931471805599453;

inline double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

/// log(sigmoid(z)) = -softplus(-z), computed without overflow.
inline double log_sigmoid(double z) {
  return z >= 0.0 ? -std::log1p(std::exp(-z)) : z - std::log1p(std::exp(z));
}
}  // namespace

LossValue focal_loss_with_logits(const Tensor& logits, const Tensor& labels,
                                 float gamma) {
  check_same_shape(logits, labels, "focal_loss");
  const std::int64_t m = logits.numel();
  LossValue out;
  out.grad = Tensor(logits.shape());
  const float* zp = logits.data();
  const float* lp = labels.data();
  float* gp = out.grad.data();
  const double g = gamma;
  const double inv_m = 1.0 / static_cast<double>(m);
  double acc = 0.0;

#ifdef _OPENMP
#pragma omp parallel for reduction(+ : acc) schedule(static) if (m > (1 << 14))
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    const double z = zp[i];
    const double p = sigmoid(z);
    if (lp[i] > 0.5f) {
      // positive voxel: -log2(p) * (1-p)^gamma
      const double log2p = log_sigmoid(z) / kLn2;
      const double w = std::pow(1.0 - p, g);
      acc += -log2p * w;
      // d/dz [ log2(p) (1-p)^g ] = (1-p)^g [ (1-p)/ln2 - g p log2(p) ]
      const double df = w * ((1.0 - p) / kLn2 - g * p * log2p);
      gp[i] = static_cast<float>(-inv_m * df);
    } else {
      // negative voxel: -log2(1-p) * p^gamma
      const double log2q = log_sigmoid(-z) / kLn2;
      const double w = std::pow(p, g);
      acc += -log2q * w;
      // d/dz [ log2(1-p) p^g ] = -p^{g+1}/ln2 + g p^g (1-p) log2(1-p)
      const double dg = -w * p / kLn2 + g * w * (1.0 - p) * log2q;
      gp[i] = static_cast<float>(-inv_m * dg);
    }
  }
  out.value = acc * inv_m;
  return out;
}

LossValue bce_loss_with_logits(const Tensor& logits, const Tensor& labels) {
  check_same_shape(logits, labels, "bce_loss");
  const std::int64_t m = logits.numel();
  LossValue out;
  out.grad = Tensor(logits.shape());
  const float* zp = logits.data();
  const float* lp = labels.data();
  float* gp = out.grad.data();
  const double inv_m = 1.0 / static_cast<double>(m);
  double acc = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : acc) schedule(static) if (m > (1 << 14))
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    const double z = zp[i];
    const double l = lp[i];
    acc += -(l * log_sigmoid(z) + (1.0 - l) * log_sigmoid(-z));
    gp[i] = static_cast<float>(inv_m * (sigmoid(z) - l));
  }
  out.value = acc * inv_m;
  return out;
}

LossValue masked_mae_loss(const Tensor& pred, const Tensor& target,
                          const Tensor& seg_logits, float threshold) {
  check_same_shape(pred, target, "masked_mae(pred,target)");
  check_same_shape(pred, seg_logits, "masked_mae(pred,logits)");
  const std::int64_t m = pred.numel();
  LossValue out;
  out.grad = Tensor(pred.shape());
  const float* vp = pred.data();
  const float* tp = target.data();
  const float* zp = seg_logits.data();
  float* gp = out.grad.data();
  // sigma(z) > h  <=>  z > logit(h); avoids per-voxel exp.
  const float z_cut = std::log(threshold / (1.f - threshold));
  const double inv_m = 1.0 / static_cast<double>(m);
  double acc = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : acc) schedule(static) if (m > (1 << 14))
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    if (zp[i] > z_cut) {
      const double d = static_cast<double>(vp[i]) - static_cast<double>(tp[i]);
      acc += std::abs(d);
      gp[i] = static_cast<float>(inv_m * (d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)));
    } else {
      acc += std::abs(static_cast<double>(tp[i]));  // masked-to-zero voxel
      gp[i] = 0.f;
    }
  }
  out.value = acc * inv_m;
  return out;
}

LossValue mae_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mae_loss");
  const std::int64_t m = pred.numel();
  LossValue out;
  out.grad = Tensor(pred.shape());
  const float* vp = pred.data();
  const float* tp = target.data();
  float* gp = out.grad.data();
  const double inv_m = 1.0 / static_cast<double>(m);
  double acc = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : acc) schedule(static) if (m > (1 << 14))
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    const double d = static_cast<double>(vp[i]) - static_cast<double>(tp[i]);
    acc += std::abs(d);
    gp[i] = static_cast<float>(inv_m * (d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)));
  }
  out.value = acc * inv_m;
  return out;
}

LossValue mse_loss(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mse_loss");
  const std::int64_t m = pred.numel();
  LossValue out;
  out.grad = Tensor(pred.shape());
  const float* vp = pred.data();
  const float* tp = target.data();
  float* gp = out.grad.data();
  const double inv_m = 1.0 / static_cast<double>(m);
  double acc = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : acc) schedule(static) if (m > (1 << 14))
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    const double d = static_cast<double>(vp[i]) - static_cast<double>(tp[i]);
    acc += d * d;
    gp[i] = static_cast<float>(inv_m * 2.0 * d);
  }
  out.value = acc * inv_m;
  return out;
}

double next_seg_coefficient(double c_t, double rho_seg, double rho_reg) {
  if (rho_seg <= 0.0) return 0.5 * c_t;
  return 0.5 * c_t + (rho_reg / rho_seg) * 1.5;
}

Tensor apply_segmentation_mask(const Tensor& pred, const Tensor& seg_logits,
                               float threshold) {
  check_same_shape(pred, seg_logits, "apply_segmentation_mask");
  Tensor out(pred.shape());
  const float* vp = pred.data();
  const float* zp = seg_logits.data();
  float* op = out.data();
  const float z_cut = std::log(threshold / (1.f - threshold));
  for (std::int64_t i = 0; i < pred.numel(); ++i) {
    op[i] = zp[i] > z_cut ? vp[i] : 0.f;
  }
  return out;
}

}  // namespace nc::core
