/// \file simd_dispatch.hpp
/// \brief Runtime-dispatched SIMD kernel layer for the encode hot loops.
///
/// The build passes no `-march` flags, so a compile-time `#ifdef __AVX2__`
/// gate means "dead code in every default build" (that was the fate of the
/// original F16C half-GEMM path).  This layer fixes the pattern structurally:
///
///   * the hot kernels (int8 GEMM, fp16 GEMM tile, activation quantization)
///     live behind per-kernel function pointers in a `Kernels` table;
///   * per-ISA implementations are compiled in dedicated translation units
///     with per-file target flags (`simd_avx2.cpp` with `-mavx2 -mfma
///     -mf16c`, `simd_avx512.cpp` with `-mavx512f -mavx512bw -mavx512vnni`)
///     so the rest of the library stays portable baseline x86-64 (or any
///     other architecture — the scalar table is always available);
///   * the table is resolved once per process from a CPUID feature probe
///     (`__builtin_cpu_supports`), overridable with `NC_SIMD=scalar|avx2|
///     avx512|auto` for testing and CI.
///
/// Numerics contract: every dispatched kernel must agree with the scalar
/// reference — bit-for-bit for the integer kernels (`qgemm`, `max_abs`,
/// `quantize_scaled`), ULP-bounded for `tile_hh` where FMA contraction
/// legitimately reassociates.  tests/test_simd_kernels.cpp enforces this for
/// every ISA the host supports.
///
/// This header is intrinsics-free on purpose: it must compile standalone on
/// any target (tools/lint/check_headers.py also enforces that `<immintrin.h>`
/// appears only inside the per-ISA translation units).
#pragma once

#include <cstdint>

#include "util/half.hpp"

namespace nc::core::simd {

/// Instruction-set tiers, ordered: a higher tier inherits every kernel the
/// lower tiers provide and overrides the ones it accelerates further.
enum class Isa : int {
  kScalar = 0,  ///< portable C++ (always available, the reference semantics)
  kAvx2 = 1,    ///< AVX2 + FMA + F16C (256-bit int8 dot, fp16 widening)
  kAvx512 = 2,  ///< AVX-512 F/BW + VNNI (512-bit `vpdpbusd` int8 dot)
};

/// Lower-case tier name ("scalar", "avx2", "avx512") for logs and JSON.
const char* isa_name(Isa isa);

/// The dispatched kernel table.  All pointers are non-null in any table
/// returned by `kernels()`/`kernels_for()`.
struct Kernels {
  /// C (m x n, leading dim ldc) = diag(a_scales) * (A8 * B8) * b_scale with
  /// int32 accumulation; same contract as `nc::core::qgemm`.  A8 is the
  /// quantized weight (lda = k) with entries in [-127, 127] (the
  /// `quantize_rows` guarantee; -128 weights would break the AVX2
  /// sign-transfer trick), B8 the quantized activation panel (full int8
  /// range accepted).  Bit-exact across ISAs.
  void (*qgemm)(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int8_t* a, const float* a_scales,
                const std::int8_t* b, float b_scale, float* c,
                std::int64_t ldc) = nullptr;

  /// max_i |x_i| over n floats (0.f for n <= 0).  Finite inputs assumed.
  float (*max_abs)(const float* x, std::int64_t n) = nullptr;

  /// out_i = int8(round_to_nearest_even(clamp(x_i * inv_scale, ±127))).
  /// Round-to-nearest-even is the native rounding of VCVTPS2DQ; the scalar
  /// reference uses std::nearbyintf to match bit-for-bit.
  void (*quantize_scaled)(const float* x, std::int64_t n, float inv_scale,
                          std::int8_t* out) = nullptr;

  /// Half-storage GEMM microkernel on one tile:
  /// C[i0:i1, j0:j1] += float(A[i, kk]) * float(B[kk, j0:j1]) over kk < k.
  /// The AVX2 implementation widens B eight lanes at a time (VCVTPH2PS +
  /// FMA); FMA contraction makes this ULP-close (not bit-equal) to scalar.
  void (*tile_hh)(std::int64_t i0, std::int64_t i1, std::int64_t j0,
                  std::int64_t j1, std::int64_t k, const util::half* a,
                  std::int64_t lda, const util::half* b, std::int64_t ldb,
                  float* c, std::int64_t ldc) = nullptr;
};

/// True iff `isa` is usable here: compiled into this binary AND reported by
/// the CPU at runtime.  kScalar is always supported.
bool isa_supported(Isa isa);

/// Highest supported tier on this host.
Isa best_isa();

/// Resolve a tier request ("scalar" | "avx2" | "avx512" | "auto" | null).
/// "auto"/null/empty pick `best_isa()`.  A request above what the host
/// supports clamps down to the best supported tier at most the request
/// (with a warning); an unrecognized string warns and falls back to auto.
/// Exposed for tests; `active_isa()` applies it to the NC_SIMD env var.
Isa resolve_isa(const char* request);

/// The process-wide tier: `resolve_isa(getenv("NC_SIMD"))`, resolved once on
/// first use and fixed thereafter (kernel pointers must not change under a
/// running pipeline).
Isa active_isa();

/// Kernel table for an explicit tier (requires `isa_supported(isa)`;
/// unsupported tiers fall back to the best supported one below them).
/// Entries a tier does not override are inherited from the tier below, so
/// every returned table is fully populated.
const Kernels& kernels_for(Isa isa);

/// Kernel table for `active_isa()` — the one hot paths use.
const Kernels& kernels();

namespace detail {
/// Per-ISA providers, each defined in its own translation unit.  Entries
/// left null are inherited from the next-lower tier at merge time; the
/// AVX2/AVX-512 providers return an empty table when their TU was built
/// without the per-file target flags (non-x86 or ancient compiler).
Kernels scalar_kernels();
Kernels avx2_kernels();
Kernels avx512_kernels();
bool avx2_compiled();
bool avx512_compiled();
}  // namespace detail

}  // namespace nc::core::simd
