#include "core/checkpoint.hpp"

#include <fstream>
#include <map>

#include "util/serialize.hpp"

namespace nc::core {

namespace {
constexpr char kKind[4] = {'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

// A corrupt file must fail with SerializeError before any allocation, not
// with bad_alloc (or silent overflow) inside std::vector.  The largest BCAE
// parameter is a few MB; 2^24 floats (64 MiB) leaves 16x headroom while
// bounding what a corrupt-but-in-range dims field can make us allocate —
// the fuzzer showed the previous 1 GiB cap let mutated checkpoints spend
// seconds in page-zeroing, a cheap DoS on the load path.
constexpr std::int64_t kMaxTensorElems = std::int64_t{1} << 24;
}  // namespace

void save_checkpoint(std::ostream& os, const std::vector<Param*>& params) {
  util::write_magic(os, kKind, kVersion);
  util::write_u64(os, params.size());
  for (const auto* p : params) {
    util::write_string(os, p->name);
    util::write_u64(os, static_cast<std::uint64_t>(p->value.ndim()));
    for (std::int64_t d = 0; d < p->value.ndim(); ++d) {
      util::write_i64(os, p->value.dim(d));
    }
    util::write_bytes(os, p->value.data(),
                      static_cast<std::size_t>(p->value.numel()) * sizeof(float));
  }
}

void save_checkpoint_file(const std::string& path,
                          const std::vector<Param*>& params) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_checkpoint(os, params);
}

void load_checkpoint(std::istream& is, const std::vector<Param*>& params) {
  // Version-gate the payload parsing: read_magic validates the magic but
  // returns the version for the caller to judge — a future format bump must
  // be rejected here, not misparsed as v1 field soup.
  const std::uint32_t version = util::read_magic(is, kKind);
  if (version != kVersion) {
    throw util::SerializeError("unsupported checkpoint version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kVersion) + ")");
  }
  const std::uint64_t count = util::read_u64(is);
  std::map<std::string, std::pair<Shape, std::vector<float>>> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = util::read_string(is);
    const std::uint64_t rank = util::read_u64(is);
    if (rank > 8) throw util::SerializeError("checkpoint rank implausible");
    Shape shape(rank);
    std::int64_t numel = 1;
    for (auto& d : shape) {
      d = util::read_i64(is);
      if (d < 0) {
        throw util::SerializeError("checkpoint dim negative for " + name +
                                   ": " + std::to_string(d));
      }
      if (d > 0 && numel > kMaxTensorElems / d) {
        throw util::SerializeError("checkpoint tensor implausibly large for " +
                                   name);
      }
      numel *= d;
    }
    std::vector<float> data(static_cast<std::size_t>(numel));
    util::read_bytes(is, data.data(), data.size() * sizeof(float));
    entries[name] = {std::move(shape), std::move(data)};
  }

  for (auto* p : params) {
    auto it = entries.find(p->name);
    if (it == entries.end()) {
      throw util::SerializeError("checkpoint missing parameter: " + p->name);
    }
    if (it->second.first != p->value.shape()) {
      throw util::SerializeError("checkpoint shape mismatch for " + p->name +
                                 ": file " + shape_to_string(it->second.first) +
                                 " vs model " + shape_to_string(p->value.shape()));
    }
    std::copy(it->second.second.begin(), it->second.second.end(), p->value.data());
  }
}

void load_checkpoint_file(const std::string& path,
                          const std::vector<Param*>& params) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  load_checkpoint(is, params);
}

}  // namespace nc::core
