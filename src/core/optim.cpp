#include "core/optim.hpp"

#include <cmath>

#include "util/parallel.hpp"

namespace nc::core {

AdamW::AdamW(std::vector<Param*> params, AdamWConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void AdamW::step() {
  ++t_;
  const double b1 = config_.beta1, b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = config_.lr;
  const double eps = config_.eps;
  const double wd = config_.weight_decay;

  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const std::int64_t n = p.value.numel();
    util::parallel_for(
        0, n,
        [&](std::int64_t i) {
          const double gi = g[i];
          const double mi = b1 * static_cast<double>(m[i]) + (1.0 - b1) * gi;
          const double vi = b2 * static_cast<double>(v[i]) + (1.0 - b2) * gi * gi;
          m[i] = static_cast<float>(mi);
          v[i] = static_cast<float>(vi);
          const double mhat = mi / bias1;
          const double vhat = vi / bias2;
          // decoupled weight decay, then the Adam update
          double wi = static_cast<double>(w[i]) * (1.0 - lr * wd);
          wi -= lr * mhat / (std::sqrt(vhat) + eps);
          w[i] = static_cast<float>(wi);
        },
        1 << 14);
  }
}

double StepDecaySchedule::lr_for_epoch(std::int64_t epoch) const {
  if (epoch < flat_epochs_) return initial_lr_;
  const std::int64_t decays = (epoch - flat_epochs_) / decay_every_ + 1;
  return initial_lr_ * std::pow(factor_, static_cast<double>(decays));
}

}  // namespace nc::core
