#include "core/simd_dispatch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "core/simd_qpack.hpp"
#include "util/logging.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nc::core::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels.  These define the semantics every vector ISA is
// tested against; they are also the only kernels on non-x86 targets and
// under NC_SIMD=scalar.
// ---------------------------------------------------------------------------

void qgemm_scalar(std::int64_t m, std::int64_t n, std::int64_t k,
                  const std::int8_t* a, const float* a_scales,
                  const std::int8_t* b, float b_scale, float* c,
                  std::int64_t ldc) {
  // i-k-j with an int32 accumulator panel per row; the widening int8
  // multiply vectorizes under -O3.  A per-row int32 scratch keeps the
  // accumulation exact (int8*int8 sums stay well inside int32 for the
  // K values used by BCAE encoders).
  constexpr std::int64_t kNB = 256;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (m > 1 && !omp_in_parallel())
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* ai = a + i * k;
    float* ci = c + i * ldc;
    std::int32_t acc[kNB];
    for (std::int64_t j0 = 0; j0 < n; j0 += kNB) {
      const std::int64_t j1 = std::min(n, j0 + kNB);
      const std::int64_t width = j1 - j0;
      std::fill(acc, acc + width, 0);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::int32_t av = ai[kk];
        if (av == 0) continue;
        const std::int8_t* bk = b + kk * n + j0;
#ifdef _OPENMP
#pragma omp simd
#endif
        for (std::int64_t j = 0; j < width; ++j) {
          acc[j] += av * static_cast<std::int32_t>(bk[j]);
        }
      }
      const float scale = a_scales[i] * b_scale;
      for (std::int64_t j = 0; j < width; ++j) {
        ci[j0 + j] = static_cast<float>(acc[j]) * scale;
      }
    }
  }
}

float max_abs_scalar(const float* x, std::int64_t n) {
  float max_abs = 0.f;
  for (std::int64_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::abs(x[i]));
  }
  return max_abs;
}

void quantize_scaled_scalar(const float* x, std::int64_t n, float inv_scale,
                            std::int8_t* out) {
  for (std::int64_t i = 0; i < n; ++i) {
    // Clamp-then-round in round-to-nearest-even, matching VCVTPS2DQ on the
    // vector paths bit-for-bit (std::nearbyintf honours the current FP
    // rounding mode, which is round-to-nearest-even by default; nothing in
    // this library changes it).
    const float v = std::clamp(x[i] * inv_scale, -127.f, 127.f);
    out[i] = static_cast<std::int8_t>(
        static_cast<std::int32_t>(std::nearbyintf(v)));
  }
}

void tile_hh_scalar(std::int64_t i0, std::int64_t i1, std::int64_t j0,
                    std::int64_t j1, std::int64_t k, const util::half* a,
                    std::int64_t lda, const util::half* b, std::int64_t ldb,
                    float* c, std::int64_t ldc) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const util::half* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = static_cast<float>(ai[kk]);
      if (av == 0.f) continue;
      const util::half* bk = b + kk * ldb;
      for (std::int64_t j = j0; j < j1; ++j) {
        ci[j] += av * static_cast<float>(bk[j]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CPUID feature probe.  __builtin_cpu_supports requires string literals and
// only exists on x86 gcc/clang; other targets run scalar.
// ---------------------------------------------------------------------------

#if defined(__x86_64__) || defined(__i386__)
bool cpu_supports_avx2_tier() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
}
bool cpu_supports_avx512_tier() {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vnni");
}
#else
bool cpu_supports_avx2_tier() { return false; }
bool cpu_supports_avx512_tier() { return false; }
#endif

/// Overlay non-null entries of `over` onto `base`.
Kernels merge(Kernels base, const Kernels& over) {
  if (over.qgemm) base.qgemm = over.qgemm;
  if (over.max_abs) base.max_abs = over.max_abs;
  if (over.quantize_scaled) base.quantize_scaled = over.quantize_scaled;
  if (over.tile_hh) base.tile_hh = over.tile_hh;
  return base;
}

}  // namespace

namespace detail {

Kernels scalar_kernels() {
  Kernels t;
  t.qgemm = &qgemm_scalar;
  t.max_abs = &max_abs_scalar;
  t.quantize_scaled = &quantize_scaled_scalar;
  t.tile_hh = &tile_hh_scalar;
  return t;
}

// -- packed-B panel layout (shared by the AVX2 and AVX-512 kernels) ---------

std::int64_t packed_b_bytes(std::int64_t k, std::int64_t n) {
  const std::int64_t kp = (k + kQQuadK - 1) / kQQuadK * kQQuadK;
  const std::int64_t tiles = (n + kQTileJ - 1) / kQTileJ;
  return tiles * kp * kQTileJ;
}

void pack_b_quad16(const std::int8_t* b, std::int64_t k, std::int64_t n,
                   std::int8_t* packed) {
  const std::int64_t quads = (k + kQQuadK - 1) / kQQuadK;
  const std::int64_t tiles = (n + kQTileJ - 1) / kQTileJ;
  for (std::int64_t t = 0; t < tiles; ++t) {
    const std::int64_t j0 = t * kQTileJ;
    const std::int64_t jw = std::min<std::int64_t>(kQTileJ, n - j0);
    std::int8_t* tile = packed + t * quads * kQQuadK * kQTileJ;
    for (std::int64_t q = 0; q < quads; ++q) {
      std::int8_t* dst = tile + q * kQQuadK * kQTileJ;
      for (std::int64_t r = 0; r < kQQuadK; ++r) {
        const std::int64_t kk = q * kQQuadK + r;
        if (kk >= k) {
          for (std::int64_t j = 0; j < kQTileJ; ++j) dst[j * kQQuadK + r] = 0;
          continue;
        }
        const std::int8_t* src = b + kk * n + j0;
        for (std::int64_t j = 0; j < jw; ++j) dst[j * kQQuadK + r] = src[j];
        for (std::int64_t j = jw; j < kQTileJ; ++j) dst[j * kQQuadK + r] = 0;
      }
    }
  }
}

std::vector<std::int8_t>& qpack_scratch() {
  thread_local std::vector<std::int8_t> buf;
  return buf;
}

std::vector<std::int8_t>& qpad_a_scratch() {
  thread_local std::vector<std::int8_t> buf;
  return buf;
}

std::vector<std::int32_t>& qrow_sum_scratch() {
  thread_local std::vector<std::int32_t> buf;
  return buf;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatch resolution
// ---------------------------------------------------------------------------

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kScalar:
      return "scalar";
  }
  return "scalar";
}

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return detail::avx2_compiled() && cpu_supports_avx2_tier();
    case Isa::kAvx512:
      // The AVX-512 table inherits its non-qgemm entries from AVX2, so the
      // tier requires the AVX2 tier too (true on all real AVX-512 parts).
      return detail::avx512_compiled() && cpu_supports_avx512_tier() &&
             detail::avx2_compiled() && cpu_supports_avx2_tier();
  }
  return false;
}

Isa best_isa() {
  if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

Isa resolve_isa(const char* request) {
  const Isa best = best_isa();
  if (request == nullptr) return best;
  const std::string_view req(request);
  if (req.empty() || req == "auto") return best;
  Isa want;
  if (req == "scalar") {
    want = Isa::kScalar;
  } else if (req == "avx2") {
    want = Isa::kAvx2;
  } else if (req == "avx512") {
    want = Isa::kAvx512;
  } else {
    NC_LOG_WARN << "NC_SIMD=" << req
                << " not recognized (scalar|avx2|avx512|auto); using "
                << isa_name(best);
    return best;
  }
  if (isa_supported(want)) return want;
  const Isa got = std::min(best, want);
  NC_LOG_WARN << "NC_SIMD=" << req
              << " not supported on this host/build; using " << isa_name(got);
  return got;
}

Isa active_isa() {
  static const Isa isa = resolve_isa(std::getenv("NC_SIMD"));
  return isa;
}

const Kernels& kernels_for(Isa isa) {
  // Magic statics: each merged table is built once, thread-safely.
  static const Kernels scalar = detail::scalar_kernels();
  static const Kernels avx2 = merge(scalar, detail::avx2_kernels());
  static const Kernels avx512 = merge(avx2, detail::avx512_kernels());
  switch (isa) {
    case Isa::kAvx512:
      if (isa_supported(Isa::kAvx512)) return avx512;
      [[fallthrough]];
    case Isa::kAvx2:
      if (isa_supported(Isa::kAvx2)) return avx2;
      [[fallthrough]];
    case Isa::kScalar:
      break;
  }
  return scalar;
}

const Kernels& kernels() { return kernels_for(active_isa()); }

}  // namespace nc::core::simd
