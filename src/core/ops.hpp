/// \file ops.hpp
/// \brief Elementwise and reduction primitives over Tensor.
///
/// These are the small glue kernels the layers compose; all hot loops are
/// flat over contiguous storage and OpenMP-parallel above a grain size.
#pragma once

#include "core/tensor.hpp"

namespace nc::core {

// -- in-place elementwise -----------------------------------------------------

void fill(Tensor& t, float value);
void scale(Tensor& t, float alpha);            ///< t *= alpha
void add_scalar(Tensor& t, float alpha);       ///< t += alpha
void axpy(float alpha, const Tensor& x, Tensor& y);  ///< y += alpha * x
void add_inplace(Tensor& y, const Tensor& x);        ///< y += x
void mul_inplace(Tensor& y, const Tensor& x);        ///< y *= x (Hadamard)

// -- out-of-place -------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

// -- reductions ---------------------------------------------------------------

double sum(const Tensor& t);
double mean(const Tensor& t);
float max_value(const Tensor& t);
float min_value(const Tensor& t);
/// Mean of |a - b| (used pervasively in metrics).
double mean_abs_diff(const Tensor& a, const Tensor& b);

/// Count of elements strictly greater than `threshold`.
std::int64_t count_greater(const Tensor& t, float threshold);

/// Throws std::invalid_argument when shapes differ (kernel precondition).
void check_same_shape(const Tensor& a, const Tensor& b, const char* what);

}  // namespace nc::core
