/// \file gemm.hpp
/// \brief OpenMP-parallel row-major GEMM kernels.
///
/// Every convolution in this library (forward, backward-data — which is also
/// transposed-convolution forward — and backward-weight) lowers to one of
/// these two routines, mirroring the im2col+GEMM strategy of cuDNN-class
/// GPU libraries.  `sgemm` is the float32 workhorse; `hgemm` is the
/// half-precision-storage inference kernel (binary16 operands, float32
/// accumulation — the same numerics contract as GPU tensor cores, which is
/// why Table 2's accuracy parity reproduces on CPU).
///
/// Parallelization: 2-D tiling over (row block, column block) with an OpenMP
/// `collapse(2)` loop.  Tiling over columns as well as rows matters because
/// conv GEMMs here are "short and fat" (M = out-channels is tiny, N = output
/// pixels is huge); row-only parallelism would idle most cores.
#pragma once

#include <cstdint>

#include "util/half.hpp"

namespace nc::core {

/// C = alpha * op(A) * op(B) + beta * C, row-major.
/// op(A) is M x K, op(B) is K x N, C is M x N.
/// lda/ldb/ldc are leading dimensions of the *stored* matrices.
void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc);

/// C = A * B with binary16 operands and float32 accumulation (no transposes —
/// the inference path pre-packs weights in the orientation it needs).
/// C is overwritten.
void hgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const util::half* a, std::int64_t lda, const util::half* b,
           std::int64_t ldb, float* c, std::int64_t ldc);

}  // namespace nc::core
