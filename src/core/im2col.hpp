/// \file im2col.hpp
/// \brief im2col / col2im (2-D) and vol2col / col2vol (3-D) lowering.
///
/// Layout conventions (all row-major, per sample — batching is handled by the
/// calling layer):
///   2-D image:  (C, H, W);      column matrix: (C*KH*KW, OH*OW)
///   3-D volume: (C, D, H, W);   column matrix: (C*KD*KH*KW, OD*OH*OW)
///
/// The templated destination type lets the half-precision inference path
/// lower activations directly into a binary16 column buffer (halving the
/// bytes the GEMM streams) without a separate conversion pass.
#pragma once

#include <cstdint>

#include "util/half.hpp"
#include "util/parallel.hpp"

namespace nc::core {

/// Spatial hyper-parameters of a 2-D convolution.
struct Conv2dGeom {
  std::int64_t c = 0, h = 0, w = 0;      ///< input channels / height / width
  std::int64_t kh = 0, kw = 0;           ///< kernel
  std::int64_t sh = 1, sw = 1;           ///< stride
  std::int64_t ph = 0, pw = 0;           ///< zero padding

  std::int64_t out_h() const { return (h + 2 * ph - kh) / sh + 1; }
  std::int64_t out_w() const { return (w + 2 * pw - kw) / sw + 1; }
  std::int64_t rows() const { return c * kh * kw; }
  std::int64_t cols() const { return out_h() * out_w(); }
};

/// Spatial hyper-parameters of a 3-D convolution (depth = TPC radial dim).
struct Conv3dGeom {
  std::int64_t c = 0, d = 0, h = 0, w = 0;
  std::int64_t kd = 0, kh = 0, kw = 0;
  std::int64_t sd = 1, sh = 1, sw = 1;
  std::int64_t pd = 0, ph = 0, pw = 0;

  std::int64_t out_d() const { return (d + 2 * pd - kd) / sd + 1; }
  std::int64_t out_h() const { return (h + 2 * ph - kh) / sh + 1; }
  std::int64_t out_w() const { return (w + 2 * pw - kw) / sw + 1; }
  std::int64_t rows() const { return c * kd * kh * kw; }
  std::int64_t cols() const { return out_d() * out_h() * out_w(); }
};

/// Expand image `in` into column matrix `cols` (size rows() x cols()).
/// TSrc == TDst == half on the half-precision path (the caller pre-converts
/// the input once, so lowering is a pure 2-byte gather — half the bytes of
/// the fp32 path with no per-element conversion).
template <typename TSrc, typename TDst>
void im2col_2d(const TSrc* in, const Conv2dGeom& g, TDst* cols) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t n_rows = g.rows();
  util::parallel_for(
      0, n_rows,
      [&](std::int64_t r) {
        const std::int64_t kw_i = r % g.kw;
        const std::int64_t kh_i = (r / g.kw) % g.kh;
        const std::int64_t c_i = r / (g.kw * g.kh);
        const TSrc* in_c = in + c_i * g.h * g.w;
        TDst* dst = cols + r * (oh * ow);
        const TDst zero(0.f);
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.sh - g.ph + kh_i;
          if (iy < 0 || iy >= g.h) {
            for (std::int64_t ox = 0; ox < ow; ++ox) *dst++ = zero;
            continue;
          }
          const TSrc* in_row = in_c + iy * g.w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.sw - g.pw + kw_i;
            *dst++ = (ix >= 0 && ix < g.w) ? TDst(in_row[ix]) : zero;
          }
        }
      },
      4);
}

/// Scatter-accumulate column matrix back into an image (backward of
/// im2col_2d; also the core of transposed-convolution forward).
/// `out` must be pre-zeroed by the caller when accumulation starts fresh.
void col2im_2d(const float* cols, const Conv2dGeom& g, float* out);

/// 3-D analogue of im2col_2d.
template <typename TSrc, typename TDst>
void vol2col_3d(const TSrc* in, const Conv3dGeom& g, TDst* cols) {
  const std::int64_t od = g.out_d(), oh = g.out_h(), ow = g.out_w();
  const std::int64_t n_rows = g.rows();
  util::parallel_for(
      0, n_rows,
      [&](std::int64_t r) {
        const std::int64_t kw_i = r % g.kw;
        const std::int64_t kh_i = (r / g.kw) % g.kh;
        const std::int64_t kd_i = (r / (g.kw * g.kh)) % g.kd;
        const std::int64_t c_i = r / (g.kw * g.kh * g.kd);
        const TSrc* in_c = in + c_i * g.d * g.h * g.w;
        TDst* dst = cols + r * (od * oh * ow);
        const TDst zero(0.f);
        for (std::int64_t oz = 0; oz < od; ++oz) {
          const std::int64_t iz = oz * g.sd - g.pd + kd_i;
          const bool z_ok = (iz >= 0 && iz < g.d);
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const std::int64_t iy = oy * g.sh - g.ph + kh_i;
            if (!z_ok || iy < 0 || iy >= g.h) {
              for (std::int64_t ox = 0; ox < ow; ++ox) *dst++ = zero;
              continue;
            }
            const TSrc* in_row = in_c + (iz * g.h + iy) * g.w;
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const std::int64_t ix = ox * g.sw - g.pw + kw_i;
              *dst++ = (ix >= 0 && ix < g.w) ? TDst(in_row[ix]) : zero;
            }
          }
        }
      },
      4);
}

/// Scatter-accumulate 3-D column matrix back into a volume.
void col2vol_3d(const float* cols, const Conv3dGeom& g, float* out);

}  // namespace nc::core
