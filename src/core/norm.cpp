#include "core/norm.hpp"

#include <cmath>

#include "core/ops.hpp"
#include "util/parallel.hpp"

namespace nc::core {

InstanceNorm::InstanceNorm(std::int64_t channels, float eps, std::string label)
    : channels_(channels),
      eps_(eps),
      gamma_(label + ".gamma", Tensor::full({channels}, 1.f)),
      beta_(label + ".beta", Tensor({channels})),
      label_(std::move(label)) {}

Tensor InstanceNorm::forward(const Tensor& x, Mode mode) {
  if (x.ndim() < 3 || x.dim(1) != channels_) {
    throw std::invalid_argument(label_ + ": expected (N, " +
                                std::to_string(channels_) + ", spatial...), got " +
                                shape_to_string(x.shape()));
  }
  const std::int64_t n = x.dim(0);
  std::int64_t spatial = 1;
  for (std::int64_t d = 2; d < x.ndim(); ++d) spatial *= x.dim(d);

  Tensor out(x.shape());
  Tensor xhat(x.shape());
  std::vector<float> inv_std(static_cast<std::size_t>(n * channels_));

  const float* xp = x.data();
  float* op = out.data();
  float* hp = xhat.data();
  const float* gamma = gamma_.value.data();
  const float* beta = beta_.value.data();
  const float eps = eps_;

  util::parallel_for(
      0, n * channels_,
      [&](std::int64_t plane) {
        const std::int64_t c = plane % channels_;
        const float* in_p = xp + plane * spatial;
        float* out_p = op + plane * spatial;
        float* hat_p = hp + plane * spatial;
        double s = 0.0, s2 = 0.0;
        for (std::int64_t i = 0; i < spatial; ++i) {
          const double xi = in_p[i];
          s += xi;
          s2 += xi * xi;
        }
        const double mean = s / static_cast<double>(spatial);
        const double var = s2 / static_cast<double>(spatial) - mean * mean;
        const float istd = 1.f / std::sqrt(static_cast<float>(var) + eps);
        inv_std[static_cast<std::size_t>(plane)] = istd;
        const float g = gamma[c], b = beta[c];
        const float m = static_cast<float>(mean);
        for (std::int64_t i = 0; i < spatial; ++i) {
          const float h = (in_p[i] - m) * istd;
          hat_p[i] = h;
          out_p[i] = g * h + b;
        }
      },
      1);

  if (mode == Mode::kTrain) {
    cached_xhat_ = xhat;
    cached_inv_std_ = std::move(inv_std);
  }
  return out;
}

Tensor InstanceNorm::backward(const Tensor& gy) {
  const Tensor& xhat = cached_xhat_;
  const std::int64_t n = xhat.dim(0);
  std::int64_t spatial = 1;
  for (std::int64_t d = 2; d < xhat.ndim(); ++d) spatial *= xhat.dim(d);

  Tensor gx(xhat.shape());
  const float* gp = gy.data();
  const float* hp = xhat.data();
  float* op = gx.data();
  const float* gamma = gamma_.value.data();
  float* ggamma = gamma_.grad.data();
  float* gbeta = beta_.grad.data();

  // Parameter gradients first (reduce over samples, serial over channels to
  // stay race-free, parallel inside).
  for (std::int64_t c = 0; c < channels_; ++c) {
    double gg = 0.0, gb = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const std::int64_t plane = s * channels_ + c;
      const float* g_p = gp + plane * spatial;
      const float* h_p = hp + plane * spatial;
      for (std::int64_t i = 0; i < spatial; ++i) {
        gg += static_cast<double>(g_p[i]) * static_cast<double>(h_p[i]);
        gb += static_cast<double>(g_p[i]);
      }
    }
    ggamma[c] += static_cast<float>(gg);
    gbeta[c] += static_cast<float>(gb);
  }

  util::parallel_for(
      0, n * channels_,
      [&](std::int64_t plane) {
        const std::int64_t c = plane % channels_;
        const float* g_p = gp + plane * spatial;
        const float* h_p = hp + plane * spatial;
        float* out_p = op + plane * spatial;
        double sum_g = 0.0, sum_gh = 0.0;
        for (std::int64_t i = 0; i < spatial; ++i) {
          sum_g += static_cast<double>(g_p[i]);
          sum_gh += static_cast<double>(g_p[i]) * static_cast<double>(h_p[i]);
        }
        const float mg = static_cast<float>(sum_g / static_cast<double>(spatial));
        const float mgh = static_cast<float>(sum_gh / static_cast<double>(spatial));
        const float scale =
            gamma[c] * cached_inv_std_[static_cast<std::size_t>(plane)];
        for (std::int64_t i = 0; i < spatial; ++i) {
          out_p[i] = scale * (g_p[i] - mg - h_p[i] * mgh);
        }
      },
      1);

  cached_xhat_ = Tensor();
  cached_inv_std_.clear();
  return gx;
}

void InstanceNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace nc::core
