#include "core/tensor.hpp"

#include <sstream>

#include "util/parallel.hpp"

namespace nc::core {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ')';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(numel_), 0.f)) {}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  auto* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) p[i] = value;
  return t;
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> values) {
  const std::int64_t n = shape_numel(shape);
  if (static_cast<std::int64_t>(values.size()) != n) {
    throw std::invalid_argument("from_vector: size mismatch: shape " +
                                shape_to_string(shape) + " needs " +
                                std::to_string(n) + " values, got " +
                                std::to_string(values.size()));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = n;
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel_) {
    throw std::invalid_argument("reshape: numel mismatch: " +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape));
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.data_ = data_;
  return t;
}

Tensor Tensor::clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  t.data_ = data_ ? std::make_shared<std::vector<float>>(*data_) : nullptr;
  return t;
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  if (static_cast<std::int64_t>(idx.size()) != ndim()) {
    throw std::invalid_argument("at(): rank mismatch");
  }
  std::int64_t flat = 0;
  std::size_t d = 0;
  for (auto i : idx) {
    const std::int64_t extent = shape_[d];
    if (i < 0 || i >= extent) throw std::out_of_range("at(): index out of range");
    flat = flat * extent + i;
    ++d;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return (*data_)[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return (*data_)[static_cast<std::size_t>(flat_index(idx))];
}

HalfTensor::HalfTensor(Shape shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  data_.resize(static_cast<std::size_t>(numel_));
}

HalfTensor HalfTensor::from_float(const Tensor& t) {
  HalfTensor h(t.shape());
  util::float_to_half_n(t.data(), h.data(), t.numel());
  return h;
}

Tensor HalfTensor::to_float() const {
  Tensor t(shape_);
  util::half_to_float_n(data_.data(), t.data(), numel_);
  return t;
}

}  // namespace nc::core
