#include "core/profiler.hpp"

#include <algorithm>
#include <cstdio>

namespace nc::core {

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::record(const std::string& label, double seconds, double flops,
                      std::int64_t m, std::int64_t n, std::int64_t k) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& e = entries_[label];
  e.total_s += seconds;
  e.calls += 1;
  e.flops += flops;
  if (m) {
    e.gemm_m = m;
    e.gemm_n = n;
    e.gemm_k = k;
  }
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::vector<std::pair<std::string, ProfileEntry>> Profiler::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, ProfileEntry>> out(entries_.begin(),
                                                        entries_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total_s > b.second.total_s;
  });
  return out;
}

std::string Profiler::report() const {
  const auto es = entries();
  double total = 0.0;
  for (const auto& [_, e] : es) total += e.total_s;
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-28s %8s %7s %9s %6s %18s\n", "layer",
                "time_ms", "share", "GFLOP/s", "calls", "GEMM MxNxK");
  out += buf;
  for (const auto& [label, e] : es) {
    const double gflops = e.total_s > 0 ? e.flops / e.total_s / 1e9 : 0.0;
    std::snprintf(buf, sizeof(buf), "%-28s %8.2f %6.1f%% %9.2f %6llu %6lldx%lldx%lld\n",
                  label.c_str(), e.total_s * 1e3,
                  total > 0 ? 100.0 * e.total_s / total : 0.0, gflops,
                  static_cast<unsigned long long>(e.calls),
                  static_cast<long long>(e.gemm_m),
                  static_cast<long long>(e.gemm_n),
                  static_cast<long long>(e.gemm_k));
    out += buf;
  }
  return out;
}

}  // namespace nc::core
