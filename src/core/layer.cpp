#include "core/layer.hpp"

#include "core/ops.hpp"

namespace nc::core {

void zero_grads(const std::vector<Param*>& params) {
  for (auto* p : params) fill(p->grad, 0.f);
}

}  // namespace nc::core
