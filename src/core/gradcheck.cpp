#include "core/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "core/ops.hpp"

namespace nc::core {

namespace {

double weighted_sum(const Tensor& out, const Tensor& r) {
  const float* op = out.data();
  const float* rp = r.data();
  double acc = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    acc += static_cast<double>(op[i]) * static_cast<double>(rp[i]);
  }
  return acc;
}

}  // namespace

GradCheckResult gradcheck_layer(Layer& layer, const Tensor& x,
                                std::uint64_t seed, double eps) {
  util::Rng rng(seed);

  // Fixed random upstream weighting R.
  Tensor probe = layer.forward(x, Mode::kEval);
  Tensor r(probe.shape());
  for (std::int64_t i = 0; i < r.numel(); ++i) {
    r[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }

  // Analytic gradients.
  std::vector<Param*> params;
  layer.collect_params(params);
  zero_grads(params);
  Tensor x_train = x.clone();
  Tensor out = layer.forward(x_train, Mode::kTrain);
  Tensor gx = layer.backward(r);

  GradCheckResult res;
  auto update = [&](double analytic, double numeric, const std::string& who) {
    const double abs_err = std::abs(analytic - numeric);
    const double rel_err =
        abs_err / std::max({1.0, std::abs(analytic), std::abs(numeric)});
    if (rel_err > res.max_rel_err) {
      res.max_rel_err = rel_err;
      res.worst_param = who;
    }
    res.max_abs_err = std::max(res.max_abs_err, abs_err);
  };

  // Numeric input gradient.
  Tensor x_mut = x.clone();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x_mut[i];
    x_mut[i] = orig + static_cast<float>(eps);
    const double lp = weighted_sum(layer.forward(x_mut, Mode::kEval), r);
    x_mut[i] = orig - static_cast<float>(eps);
    const double lm = weighted_sum(layer.forward(x_mut, Mode::kEval), r);
    x_mut[i] = orig;
    update(gx[i], (lp - lm) / (2.0 * eps), "input");
  }

  // Numeric parameter gradients.
  for (auto* p : params) {
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(eps);
      layer.invalidate_half_cache();
      const double lp = weighted_sum(layer.forward(x_mut, Mode::kEval), r);
      p->value[i] = orig - static_cast<float>(eps);
      const double lm = weighted_sum(layer.forward(x_mut, Mode::kEval), r);
      p->value[i] = orig;
      update(p->grad[i], (lp - lm) / (2.0 * eps), p->name);
    }
  }
  layer.invalidate_half_cache();
  return res;
}

}  // namespace nc::core
