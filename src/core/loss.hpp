/// \file loss.hpp
/// \brief BCAE training losses (§2.2, Eq. 1–2).
///
/// The bicephalous loss has two heads:
///  * Segmentation: focal loss (log base 2, focusing parameter γ) on the
///    voxel-wise zero/non-zero classification — focal because only ~10.8% of
///    voxels are occupied.
///  * Regression: MAE between the *masked* prediction ṽ = v̂ · 1[p̂ > h] and
///    the target.  The mask comes from the segmentation head and is treated
///    as non-differentiable (no gradient flows from the regression loss into
///    the segmentation decoder), matching the reference implementation.
///
/// Both take raw segmentation logits rather than probabilities so the
/// sigmoid+log composition stays numerically stable.
#pragma once

#include "core/tensor.hpp"

namespace nc::core {

/// Scalar loss value plus gradient w.r.t. the tensor it was computed from.
struct LossValue {
  double value = 0.0;
  Tensor grad;
};

/// Focal loss, Eq. (1), on logits.  `labels` hold 0/1 voxel occupancy.
/// Returns the loss and dL/d(logits).
LossValue focal_loss_with_logits(const Tensor& logits, const Tensor& labels,
                                 float gamma);

/// Plain binary cross-entropy on logits (γ = 0 focal without the log2 scale
/// change is BCE/ln2; provided for ablations).
LossValue bce_loss_with_logits(const Tensor& logits, const Tensor& labels);

/// Masked MAE, Eq. (2).  `pred` is the regression head output (already
/// transformed), `target` the ground-truth log-ADC wedge, `seg_logits` the
/// segmentation head output.  A voxel contributes |v̂ - v| where the
/// predicted occupancy probability exceeds `threshold` and |0 - v| = v
/// elsewhere.  The returned gradient is w.r.t. `pred` only (masked voxels
/// get zero gradient).
LossValue masked_mae_loss(const Tensor& pred, const Tensor& target,
                          const Tensor& seg_logits, float threshold);

/// Unmasked MAE plus gradient (for plain-autoencoder baselines/ablations).
LossValue mae_loss(const Tensor& pred, const Tensor& target);

/// Unmasked MSE plus gradient.
LossValue mse_loss(const Tensor& pred, const Tensor& target);

/// Dynamic loss balancing (§2.5): coefficient of the segmentation loss for
/// the next epoch from this epoch's mean segmentation / regression losses.
///   c_{t+1} = 0.5 * c_t + (rho_reg / rho_seg) * 1.5
double next_seg_coefficient(double c_t, double rho_seg, double rho_reg);

/// Apply the decision rule ṽ = v̂ · 1[σ(z) > h] to form a reconstruction.
Tensor apply_segmentation_mask(const Tensor& pred, const Tensor& seg_logits,
                               float threshold);

}  // namespace nc::core
