/// \file quantize.hpp
/// \brief Post-training optimization of trained networks — the paper's §4
///        future-work list ("network pruning, quantization, and sparse CNN
///        techniques"), implemented for the encoder deployment path.
///
/// Quantization: symmetric int8 with per-output-channel weight scales and
/// dynamic per-tensor activation scales (the standard PTQ recipe).  Conv
/// layers expose it through `Mode::kEvalInt8`; layers without weights pass
/// float32 through unchanged, so a whole encoder can run quantized without
/// calibration data.
///
/// Pruning: global magnitude pruning across a parameter set.  The fp32 GEMM
/// microkernel already skips zero weight entries (see gemm.cpp), so pruning
/// translates directly into inference speedup without a sparse format.
#pragma once

#include <cstdint>
#include <vector>

#include "core/layer.hpp"
#include "core/tensor.hpp"

namespace nc::core {

/// Row-quantized int8 matrix: row i stores w[i,k] ≈ values[i*k + k] * scale[i].
struct QuantizedRows {
  std::vector<std::int8_t> values;
  std::vector<float> scales;  ///< one per row
  std::int64_t rows = 0;
  std::int64_t cols = 0;
};

/// Symmetric per-row quantization of a (rows x cols) weight matrix.
/// Values are clamped to [-127, 127] (never -128 — the int8 GEMM's AVX2
/// sign-transfer kernel relies on that headroom) and rounded to nearest-even.
QuantizedRows quantize_rows(const float* w, std::int64_t rows, std::int64_t cols);

/// Symmetric per-tensor quantization of activations (dynamic): returns the
/// dequantization scale; `out` receives round-to-nearest-even(x / scale)
/// clamped to ±127.  Both passes (max-abs scan + quantize) run through the
/// runtime SIMD dispatcher (core/simd_dispatch.hpp) and are bit-identical
/// across ISA tiers.
float quantize_tensor(const float* x, std::int64_t n, std::int8_t* out);

/// C (M x N) = diag(a_scales) * (A8 * B8) * b_scale, int32 accumulation.
/// A8 is the quantized weight (lda = k) with entries in [-127, 127], B8 the
/// quantized activation panel (full int8 range).  Runtime-dispatched to the
/// best SIMD tier (AVX2 vpmaddubsw / AVX-512 vpdpbusd) with the portable
/// scalar loop as fallback; all tiers produce bit-identical results
/// (tests/test_simd_kernels.cpp).
void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, const float* a_scales, const std::int8_t* b,
           float b_scale, float* c, std::int64_t ldc);

// -- pruning ------------------------------------------------------------------

/// Zero the smallest-magnitude `fraction` of all weights across `params`
/// (global threshold; biases and 1-element params are skipped).  Returns the
/// number of weights zeroed.
std::int64_t prune_by_magnitude(const std::vector<Param*>& params,
                                double fraction);

/// Fraction of exactly-zero weights across the parameter set.
double weight_sparsity(const std::vector<Param*>& params);

}  // namespace nc::core
