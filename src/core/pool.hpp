/// \file pool.hpp
/// \brief Spatial resampling layers: average pooling (encoder downsampling in
///        Algorithm 1) and nearest-neighbour upsampling (decoder upsampling
///        in Algorithm 2).
#pragma once

#include <array>

#include "core/layer.hpp"

namespace nc::core {

/// 2-D average pooling over (N, C, H, W) with square kernel == stride
/// (the only configuration the BCAE-2D encoder uses: k = s = 2).
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::int64_t kernel = 2, std::string label = "avgpool2d")
      : k_(kernel), label_(std::move(label)) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return label_; }

 private:
  std::int64_t k_;
  std::string label_;
  Shape cached_in_shape_;
};

/// 2-D nearest-neighbour upsampling by an integer scale factor.
class Upsample2d final : public Layer {
 public:
  explicit Upsample2d(std::int64_t scale = 2, std::string label = "upsample2d")
      : scale_(scale), label_(std::move(label)) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return label_; }

 private:
  std::int64_t scale_;
  std::string label_;
  Shape cached_in_shape_;
};

/// 3-D average pooling (kernel == stride), pooling H/W only or all of D/H/W.
class AvgPool3d final : public Layer {
 public:
  AvgPool3d(std::array<std::int64_t, 3> kernel, std::string label = "avgpool3d")
      : k_(kernel), label_(std::move(label)) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return label_; }

 private:
  std::array<std::int64_t, 3> k_;
  std::string label_;
  Shape cached_in_shape_;
};

/// 3-D nearest-neighbour upsampling with independent per-axis scales.
class Upsample3d final : public Layer {
 public:
  Upsample3d(std::array<std::int64_t, 3> scale, std::string label = "upsample3d")
      : scale_(scale), label_(std::move(label)) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return label_; }

 private:
  std::array<std::int64_t, 3> scale_;
  std::string label_;
  Shape cached_in_shape_;
};

}  // namespace nc::core
