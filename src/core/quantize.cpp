#include "core/quantize.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nc::core {

QuantizedRows quantize_rows(const float* w, std::int64_t rows, std::int64_t cols) {
  QuantizedRows q;
  q.rows = rows;
  q.cols = cols;
  q.values.resize(static_cast<std::size_t>(rows * cols));
  q.scales.resize(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float max_abs = 0.f;
    for (std::int64_t k = 0; k < cols; ++k) {
      max_abs = std::max(max_abs, std::abs(row[k]));
    }
    const float scale = max_abs > 0.f ? max_abs / 127.f : 1.f;
    q.scales[static_cast<std::size_t>(r)] = scale;
    std::int8_t* out = q.values.data() + r * cols;
    const float inv = 1.f / scale;
    for (std::int64_t k = 0; k < cols; ++k) {
      const float v = std::round(row[k] * inv);
      out[k] = static_cast<std::int8_t>(std::clamp(v, -127.f, 127.f));
    }
  }
  return q;
}

float quantize_tensor(const float* x, std::int64_t n, std::int8_t* out) {
  float max_abs = 0.f;
  for (std::int64_t i = 0; i < n; ++i) max_abs = std::max(max_abs, std::abs(x[i]));
  const float scale = max_abs > 0.f ? max_abs / 127.f : 1.f;
  const float inv = 1.f / scale;
  for (std::int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::int8_t>(
        std::clamp(std::round(x[i] * inv), -127.f, 127.f));
  }
  return scale;
}

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, const float* a_scales, const std::int8_t* b,
           float b_scale, float* c, std::int64_t ldc) {
  // i-k-j with an int32 accumulator panel per row; the widening int8
  // multiply vectorizes under -O3.  A per-row int32 scratch keeps the
  // accumulation exact (int8*int8 sums stay well inside int32 for the
  // K values used by BCAE encoders).
  constexpr std::int64_t kNB = 256;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (m > 1 && !omp_in_parallel())
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* ai = a + i * k;
    float* ci = c + i * ldc;
    std::int32_t acc[kNB];
    for (std::int64_t j0 = 0; j0 < n; j0 += kNB) {
      const std::int64_t j1 = std::min(n, j0 + kNB);
      const std::int64_t width = j1 - j0;
      std::fill(acc, acc + width, 0);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::int32_t av = ai[kk];
        if (av == 0) continue;
        const std::int8_t* bk = b + kk * n + j0;
#ifdef _OPENMP
#pragma omp simd
#endif
        for (std::int64_t j = 0; j < width; ++j) {
          acc[j] += av * static_cast<std::int32_t>(bk[j]);
        }
      }
      const float scale = a_scales[i] * b_scale;
      for (std::int64_t j = 0; j < width; ++j) {
        ci[j0 + j] = static_cast<float>(acc[j]) * scale;
      }
    }
  }
}

std::int64_t prune_by_magnitude(const std::vector<Param*>& params,
                                double fraction) {
  if (fraction <= 0.0) return 0;
  // Collect magnitudes of all prunable weights (skip biases/norm params —
  // anything 1-D — as is standard practice).
  std::vector<float> mags;
  for (const auto* p : params) {
    if (p->value.ndim() < 2) continue;
    const float* w = p->value.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      mags.push_back(std::abs(w[i]));
    }
  }
  if (mags.empty()) return 0;
  const auto k = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(mags.size()),
                       fraction * static_cast<double>(mags.size())));
  if (k == 0) return 0;
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   mags.end());
  const float threshold = mags[k - 1];

  std::int64_t zeroed = 0;
  for (auto* p : params) {
    if (p->value.ndim() < 2) continue;
    float* w = p->value.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (std::abs(w[i]) <= threshold && w[i] != 0.f) {
        w[i] = 0.f;
        ++zeroed;
      }
    }
  }
  return zeroed;
}

double weight_sparsity(const std::vector<Param*>& params) {
  std::int64_t zeros = 0, total = 0;
  for (const auto* p : params) {
    if (p->value.ndim() < 2) continue;
    const float* w = p->value.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      zeros += (w[i] == 0.f) ? 1 : 0;
    }
    total += p->value.numel();
  }
  return total ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

}  // namespace nc::core
