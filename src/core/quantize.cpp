#include "core/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "core/simd_dispatch.hpp"

namespace nc::core {

// The two quantization passes (max-abs scan, scaled round+clamp) and the
// int8 GEMM itself run through the runtime SIMD dispatcher; the scalar
// reference implementations live in core/simd_dispatch.cpp.  Rounding is
// round-to-nearest-even on every tier (VCVTPS2DQ semantics — the scalar
// fallback uses std::nearbyintf to match bit-for-bit).

QuantizedRows quantize_rows(const float* w, std::int64_t rows, std::int64_t cols) {
  const simd::Kernels& ker = simd::kernels();
  QuantizedRows q;
  q.rows = rows;
  q.cols = cols;
  q.values.resize(static_cast<std::size_t>(rows * cols));
  q.scales.resize(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    const float max_abs = ker.max_abs(row, cols);
    const float scale = max_abs > 0.f ? max_abs / 127.f : 1.f;
    q.scales[static_cast<std::size_t>(r)] = scale;
    ker.quantize_scaled(row, cols, 1.f / scale, q.values.data() + r * cols);
  }
  return q;
}

float quantize_tensor(const float* x, std::int64_t n, std::int8_t* out) {
  const simd::Kernels& ker = simd::kernels();
  const float max_abs = ker.max_abs(x, n);
  const float scale = max_abs > 0.f ? max_abs / 127.f : 1.f;
  ker.quantize_scaled(x, n, 1.f / scale, out);
  return scale;
}

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, const float* a_scales, const std::int8_t* b,
           float b_scale, float* c, std::int64_t ldc) {
  simd::kernels().qgemm(m, n, k, a, a_scales, b, b_scale, c, ldc);
}

std::int64_t prune_by_magnitude(const std::vector<Param*>& params,
                                double fraction) {
  if (fraction <= 0.0) return 0;
  // Collect magnitudes of all prunable weights (skip biases/norm params —
  // anything 1-D — as is standard practice).
  std::vector<float> mags;
  for (const auto* p : params) {
    if (p->value.ndim() < 2) continue;
    const float* w = p->value.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      mags.push_back(std::abs(w[i]));
    }
  }
  if (mags.empty()) return 0;
  const auto k = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(mags.size()),
                       fraction * static_cast<double>(mags.size())));
  if (k == 0) return 0;
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   mags.end());
  const float threshold = mags[k - 1];

  std::int64_t zeroed = 0;
  for (auto* p : params) {
    if (p->value.ndim() < 2) continue;
    float* w = p->value.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      if (std::abs(w[i]) <= threshold && w[i] != 0.f) {
        w[i] = 0.f;
        ++zeroed;
      }
    }
  }
  return zeroed;
}

double weight_sparsity(const std::vector<Param*>& params) {
  std::int64_t zeros = 0, total = 0;
  for (const auto* p : params) {
    if (p->value.ndim() < 2) continue;
    const float* w = p->value.data();
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      zeros += (w[i] == 0.f) ? 1 : 0;
    }
    total += p->value.numel();
  }
  return total ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

}  // namespace nc::core
