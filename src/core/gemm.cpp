#include "core/gemm.hpp"

#include <algorithm>
#include <vector>

#include "core/simd_dispatch.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nc::core {

namespace {

// Tile sizes.  Conv GEMMs here are "short and fat" (M = out-channels is
// small, N = output pixels is large), so the column tile must be small
// enough that collapse(2) still yields >= #cores tiles for a single GEMM.
constexpr std::int64_t kMB = 16;
constexpr std::int64_t kNB = 128;

/// Scale (or clear) C by beta.
void apply_beta(std::int64_t m, std::int64_t n, float beta, float* c,
                std::int64_t ldc) {
  if (beta == 1.f) return;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (m * n > (1 << 15) && !omp_in_parallel())
#endif
  for (std::int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    if (beta == 0.f) {
      std::fill(ci, ci + n, 0.f);
    } else {
      for (std::int64_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
}

/// NN microkernel on one (rows x cols) tile: C += alpha * A * B.
/// i-k-j loop order: the j loop is a contiguous FMA stream the compiler
/// vectorizes; the A element is a scalar broadcast.
inline void tile_nn(std::int64_t i0, std::int64_t i1, std::int64_t j0,
                    std::int64_t j1, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* b,
                    std::int64_t ldb, float* c, std::int64_t ldc) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = alpha * ai[kk];
      if (av == 0.f) continue;
      const float* bk = b + kk * ldb;
#ifdef _OPENMP
#pragma omp simd
#endif
      for (std::int64_t j = j0; j < j1; ++j) ci[j] += av * bk[j];
    }
  }
}

/// NT microkernel: C += alpha * A * B^T  (dot products of contiguous rows).
inline void tile_nt(std::int64_t i0, std::int64_t i1, std::int64_t j0,
                    std::int64_t j1, std::int64_t k, float alpha,
                    const float* a, std::int64_t lda, const float* b,
                    std::int64_t ldb, float* c, std::int64_t ldc) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (std::int64_t j = j0; j < j1; ++j) {
      const float* bj = b + j * ldb;
      float acc = 0.f;
#ifdef _OPENMP
#pragma omp simd reduction(+ : acc)
#endif
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] += alpha * acc;
    }
  }
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc) {
  apply_beta(m, n, beta, c, ldc);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.f) return;

  // Transposed-A cases: pack op(A) once (A is always the small conv-weight
  // side in this library, so the pack is cheap) and fall through to NN/NT.
  std::vector<float> packed_a;
  const float* a_eff = a;
  std::int64_t lda_eff = lda;
  if (trans_a) {
    packed_a.resize(static_cast<std::size_t>(m * k));
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* src = a + kk * lda;
      for (std::int64_t i = 0; i < m; ++i) packed_a[i * k + kk] = src[i];
    }
    a_eff = packed_a.data();
    lda_eff = k;
  }

  const std::int64_t n_row_blocks = (m + kMB - 1) / kMB;
  const std::int64_t n_col_blocks = (n + kNB - 1) / kNB;

#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static) \
    if (n_row_blocks * n_col_blocks > 1 && !omp_in_parallel())
#endif
  for (std::int64_t rb = 0; rb < n_row_blocks; ++rb) {
    for (std::int64_t cb = 0; cb < n_col_blocks; ++cb) {
      const std::int64_t i0 = rb * kMB;
      const std::int64_t i1 = std::min(m, i0 + kMB);
      const std::int64_t j0 = cb * kNB;
      const std::int64_t j1 = std::min(n, j0 + kNB);
      if (!trans_b) {
        tile_nn(i0, i1, j0, j1, k, alpha, a_eff, lda_eff, b, ldb, c, ldc);
      } else {
        tile_nt(i0, i1, j0, j1, k, alpha, a_eff, lda_eff, b, ldb, c, ldc);
      }
    }
  }
}

void hgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const util::half* a, std::int64_t lda, const util::half* b,
           std::int64_t ldb, float* c, std::int64_t ldc) {
  apply_beta(m, n, 0.f, c, ldc);
  if (m == 0 || n == 0 || k == 0) return;

  // Half-storage microkernel: C += float(A[i,k]) * float(B[k, j0:j1]),
  // runtime-dispatched.  On F16C hardware the B row is widened 8 lanes at a
  // time (VCVTPH2PS + FMA), streaming half the bytes of the fp32 kernel —
  // the CPU analogue of the paper's tensor-core half-precision mode.  The
  // old compile-time __F16C__ gate made this dead code in default builds;
  // the dispatcher selects it per-process instead.
  const auto tile_hh = simd::kernels().tile_hh;

  const std::int64_t n_row_blocks = (m + kMB - 1) / kMB;
  const std::int64_t n_col_blocks = (n + kNB - 1) / kNB;

#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static) \
    if (n_row_blocks * n_col_blocks > 1 && !omp_in_parallel())
#endif
  for (std::int64_t rb = 0; rb < n_row_blocks; ++rb) {
    for (std::int64_t cb = 0; cb < n_col_blocks; ++cb) {
      const std::int64_t i0 = rb * kMB;
      const std::int64_t i1 = std::min(m, i0 + kMB);
      const std::int64_t j0 = cb * kNB;
      const std::int64_t j1 = std::min(n, j0 + kNB);
      tile_hh(i0, i1, j0, j1, k, a, lda, b, ldb, c, ldc);
    }
  }
}

}  // namespace nc::core
