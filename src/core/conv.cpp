#include "core/conv.hpp"

#include <cmath>
#include <vector>

#include "core/gemm.hpp"
#include "core/init.hpp"
#include "core/ops.hpp"
#include "core/profiler.hpp"
#include "util/timer.hpp"

namespace nc::core {

namespace {

// Per-thread scratch for column matrices.  thread_local gives every OpenMP
// worker its own buffer; capacity is retained across calls so steady-state
// inference performs no allocation.
std::vector<float>& f32_scratch() {
  thread_local std::vector<float> buf;
  return buf;
}
std::vector<util::half>& f16_scratch() {
  thread_local std::vector<util::half> buf;
  return buf;
}
// Second fp16 buffer: the half path needs the converted input and the
// lowered column matrix alive at the same time.
std::vector<util::half>& f16_scratch_b() {
  thread_local std::vector<util::half> buf;
  return buf;
}
std::vector<std::int8_t>& i8_scratch() {
  thread_local std::vector<std::int8_t> buf;
  return buf;
}

void add_bias_rows(float* mat, const float* bias, std::int64_t rows,
                   std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float b = bias[r];
    float* row = mat + r * cols;
    for (std::int64_t j = 0; j < cols; ++j) row[j] += b;
  }
}

void accum_bias_grad(const float* gy_mat, float* gb, std::int64_t rows,
                     std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = gy_mat + r * cols;
    double acc = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) acc += static_cast<double>(row[j]);
    gb[r] += static_cast<float>(acc);
  }
}

void record_profile(const std::string& label, double seconds, std::int64_t m,
                    std::int64_t n, std::int64_t k, std::int64_t batch) {
  Profiler::instance().record(label, seconds,
                              2.0 * static_cast<double>(m) *
                                  static_cast<double>(n) *
                                  static_cast<double>(k) *
                                  static_cast<double>(batch),
                              m, n, k);
}

}  // namespace

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

Conv2d::Conv2d(std::int64_t in_c, std::int64_t out_c,
               std::array<std::int64_t, 2> kernel,
               std::array<std::int64_t, 2> stride,
               std::array<std::int64_t, 2> pad, bool with_bias, util::Rng& rng,
               std::string label)
    : in_c_(in_c),
      out_c_(out_c),
      k_(kernel),
      s_(stride),
      p_(pad),
      weight_(label + ".weight", Tensor({out_c, in_c, kernel[0], kernel[1]})),
      label_(std::move(label)) {
  const std::int64_t fan_in = in_c * kernel[0] * kernel[1];
  kaiming_normal(weight_.value, fan_in, rng);
  if (with_bias) {
    bias_.emplace(label_ + ".bias", Tensor({out_c}));
    uniform_init(bias_->value, 1.0 / std::sqrt(static_cast<double>(fan_in)), rng);
  }
}

Conv2dGeom Conv2d::geom_for(const Tensor& x) const {
  if (x.ndim() != 4 || x.dim(1) != in_c_) {
    throw std::invalid_argument(label_ + ": expected (N, " +
                                std::to_string(in_c_) + ", H, W), got " +
                                shape_to_string(x.shape()));
  }
  Conv2dGeom g;
  g.c = in_c_;
  g.h = x.dim(2);
  g.w = x.dim(3);
  g.kh = k_[0];
  g.kw = k_[1];
  g.sh = s_[0];
  g.sw = s_[1];
  g.ph = p_[0];
  g.pw = p_[1];
  return g;
}

std::array<std::int64_t, 2> Conv2d::out_hw(std::array<std::int64_t, 2> in_hw) const {
  return {(in_hw[0] + 2 * p_[0] - k_[0]) / s_[0] + 1,
          (in_hw[1] + 2 * p_[1] - k_[1]) / s_[1] + 1};
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  const Conv2dGeom g = geom_for(x);
  const std::int64_t n = x.dim(0);
  const std::int64_t rows = g.rows(), cols = g.cols();
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor out({n, out_c_, oh, ow});

  if (mode == Mode::kTrain) cached_input_ = x;

  const bool half_mode = (mode == Mode::kEvalHalf);
  const HalfTensor* whalf =
      half_mode ? &weight_half_.get(
                      [&] { return HalfTensor::from_float(weight_.value); })
                : nullptr;
  const bool int8_mode = (mode == Mode::kEvalInt8);
  const QuantizedRows* wq =
      int8_mode ? &weight_q_.get([&] {
        return quantize_rows(weight_.value.data(), out_c_, rows);
      })
                : nullptr;

  const float* bias = bias_ ? bias_->value.data() : nullptr;
  const bool prof = Profiler::instance().enabled();
  util::Timer timer;

  // 1x1 stride-1 unpadded convolutions are pure channel mixes: the column
  // matrix equals the input, so skip the im2col lowering entirely.
  const bool is_1x1 = (k_[0] == 1 && k_[1] == 1 && s_[0] == 1 && s_[1] == 1 &&
                       p_[0] == 0 && p_[1] == 0);
  const std::int64_t in_stride = in_c_ * g.h * g.w;
  const std::int64_t out_stride = out_c_ * oh * ow;
  util::parallel_for(
      0, n,
      [&](std::int64_t sample) {
        const float* in_s = x.data() + sample * in_stride;
        float* out_s = out.data() + sample * out_stride;
        if (half_mode) {
          auto& inh = f16_scratch_b();
          inh.resize(static_cast<std::size_t>(in_stride));
          // Saturating cast: an activation past the fp16 range (untrained or
          // extreme weights, decoder heads especially) clamps to +/-65504
          // instead of turning the rest of the forward non-finite.
          util::float_to_half_sat_n(in_s, inh.data(), in_stride);
          auto& colbuf = f16_scratch();
          colbuf.resize(static_cast<std::size_t>(rows * cols));
          im2col_2d(inh.data(), g, colbuf.data());
          hgemm(out_c_, cols, rows, whalf->data(), rows, colbuf.data(),
                cols, out_s, cols);
        } else if (int8_mode) {
          auto& colbuf = f32_scratch();
          colbuf.resize(static_cast<std::size_t>(rows * cols));
          im2col_2d(in_s, g, colbuf.data());
          auto& q = i8_scratch();
          q.resize(static_cast<std::size_t>(rows * cols));
          const float act_scale = quantize_tensor(colbuf.data(), rows * cols, q.data());
          qgemm(out_c_, cols, rows, wq->values.data(),
                wq->scales.data(), q.data(), act_scale, out_s, cols);
        } else if (is_1x1) {
          sgemm(false, false, out_c_, cols, rows, 1.f, weight_.value.data(),
                rows, in_s, cols, 0.f, out_s, cols);
        } else {
          auto& colbuf = f32_scratch();
          colbuf.resize(static_cast<std::size_t>(rows * cols));
          im2col_2d(in_s, g, colbuf.data());
          sgemm(false, false, out_c_, cols, rows, 1.f, weight_.value.data(),
                rows, colbuf.data(), cols, 0.f, out_s, cols);
        }
        if (bias) add_bias_rows(out_s, bias, out_c_, cols);
      },
      mode == Mode::kTrain ? n + 1 : 1);  // train: serial sample loop

  if (prof) record_profile(label_, timer.elapsed_s(), out_c_, cols, rows, n);
  return out;
}

Tensor Conv2d::backward(const Tensor& gy) {
  if (cached_input_.empty()) {
    throw std::logic_error(label_ + ": backward before kTrain forward");
  }
  const Tensor& x = cached_input_;
  const Conv2dGeom g = geom_for(x);
  const std::int64_t n = x.dim(0);
  const std::int64_t rows = g.rows(), cols = g.cols();
  Tensor gx(x.shape());

  auto& colbuf = f32_scratch();
  colbuf.resize(static_cast<std::size_t>(rows * cols));
  std::vector<float> gcol(static_cast<std::size_t>(rows * cols));

  const std::int64_t in_stride = in_c_ * g.h * g.w;
  const std::int64_t out_stride = out_c_ * cols;
  for (std::int64_t sample = 0; sample < n; ++sample) {
    const float* x_s = x.data() + sample * in_stride;
    const float* gy_s = gy.data() + sample * out_stride;
    float* gx_s = gx.data() + sample * in_stride;

    im2col_2d(x_s, g, colbuf.data());
    // gW (out_c, rows) += gy_mat (out_c, cols) x colsᵀ
    sgemm(false, true, out_c_, rows, cols, 1.f, gy_s, cols, colbuf.data(),
          cols, 1.f, weight_.grad.data(), rows);
    if (bias_) accum_bias_grad(gy_s, bias_->grad.data(), out_c_, cols);
    // gcols (rows, cols) = Wᵀ x gy_mat
    sgemm(true, false, rows, cols, out_c_, 1.f, weight_.value.data(), rows,
          gy_s, cols, 0.f, gcol.data(), cols);
    col2im_2d(gcol.data(), g, gx_s);
  }
  cached_input_ = Tensor();
  return gx;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

// ---------------------------------------------------------------------------
// Conv3d
// ---------------------------------------------------------------------------

Conv3d::Conv3d(std::int64_t in_c, std::int64_t out_c,
               std::array<std::int64_t, 3> kernel,
               std::array<std::int64_t, 3> stride,
               std::array<std::int64_t, 3> pad, bool with_bias, util::Rng& rng,
               std::string label)
    : in_c_(in_c),
      out_c_(out_c),
      k_(kernel),
      s_(stride),
      p_(pad),
      weight_(label + ".weight",
              Tensor({out_c, in_c, kernel[0], kernel[1], kernel[2]})),
      label_(std::move(label)) {
  const std::int64_t fan_in = in_c * kernel[0] * kernel[1] * kernel[2];
  kaiming_normal(weight_.value, fan_in, rng);
  if (with_bias) {
    bias_.emplace(label_ + ".bias", Tensor({out_c}));
    uniform_init(bias_->value, 1.0 / std::sqrt(static_cast<double>(fan_in)), rng);
  }
}

Conv3dGeom Conv3d::geom_for(const Tensor& x) const {
  if (x.ndim() != 5 || x.dim(1) != in_c_) {
    throw std::invalid_argument(label_ + ": expected (N, " +
                                std::to_string(in_c_) + ", D, H, W), got " +
                                shape_to_string(x.shape()));
  }
  Conv3dGeom g;
  g.c = in_c_;
  g.d = x.dim(2);
  g.h = x.dim(3);
  g.w = x.dim(4);
  g.kd = k_[0];
  g.kh = k_[1];
  g.kw = k_[2];
  g.sd = s_[0];
  g.sh = s_[1];
  g.sw = s_[2];
  g.pd = p_[0];
  g.ph = p_[1];
  g.pw = p_[2];
  return g;
}

Tensor Conv3d::forward(const Tensor& x, Mode mode) {
  const Conv3dGeom g = geom_for(x);
  const std::int64_t n = x.dim(0);
  const std::int64_t rows = g.rows(), cols = g.cols();
  const std::int64_t od = g.out_d(), oh = g.out_h(), ow = g.out_w();
  Tensor out({n, out_c_, od, oh, ow});

  if (mode == Mode::kTrain) cached_input_ = x;

  const bool half_mode = (mode == Mode::kEvalHalf);
  const HalfTensor* whalf =
      half_mode ? &weight_half_.get(
                      [&] { return HalfTensor::from_float(weight_.value); })
                : nullptr;
  const bool int8_mode = (mode == Mode::kEvalInt8);
  const QuantizedRows* wq =
      int8_mode ? &weight_q_.get([&] {
        return quantize_rows(weight_.value.data(), out_c_, rows);
      })
                : nullptr;

  const float* bias = bias_ ? bias_->value.data() : nullptr;
  const bool prof = Profiler::instance().enabled();
  util::Timer timer;

  const bool is_1x1 = (k_[0] == 1 && k_[1] == 1 && k_[2] == 1 && s_[0] == 1 &&
                       s_[1] == 1 && s_[2] == 1 && p_[0] == 0 && p_[1] == 0 &&
                       p_[2] == 0);
  const std::int64_t in_stride = in_c_ * g.d * g.h * g.w;
  const std::int64_t out_stride = out_c_ * cols;
  util::parallel_for(
      0, n,
      [&](std::int64_t sample) {
        const float* in_s = x.data() + sample * in_stride;
        float* out_s = out.data() + sample * out_stride;
        if (half_mode) {
          auto& inh = f16_scratch_b();
          inh.resize(static_cast<std::size_t>(in_stride));
          util::float_to_half_sat_n(in_s, inh.data(), in_stride);
          auto& colbuf = f16_scratch();
          colbuf.resize(static_cast<std::size_t>(rows * cols));
          vol2col_3d(inh.data(), g, colbuf.data());
          hgemm(out_c_, cols, rows, whalf->data(), rows, colbuf.data(),
                cols, out_s, cols);
        } else if (int8_mode) {
          auto& colbuf = f32_scratch();
          colbuf.resize(static_cast<std::size_t>(rows * cols));
          vol2col_3d(in_s, g, colbuf.data());
          auto& q = i8_scratch();
          q.resize(static_cast<std::size_t>(rows * cols));
          const float act_scale = quantize_tensor(colbuf.data(), rows * cols, q.data());
          qgemm(out_c_, cols, rows, wq->values.data(),
                wq->scales.data(), q.data(), act_scale, out_s, cols);
        } else if (is_1x1) {
          sgemm(false, false, out_c_, cols, rows, 1.f, weight_.value.data(),
                rows, in_s, cols, 0.f, out_s, cols);
        } else {
          auto& colbuf = f32_scratch();
          colbuf.resize(static_cast<std::size_t>(rows * cols));
          vol2col_3d(in_s, g, colbuf.data());
          sgemm(false, false, out_c_, cols, rows, 1.f, weight_.value.data(),
                rows, colbuf.data(), cols, 0.f, out_s, cols);
        }
        if (bias) add_bias_rows(out_s, bias, out_c_, cols);
      },
      mode == Mode::kTrain ? n + 1 : 1);

  if (prof) record_profile(label_, timer.elapsed_s(), out_c_, cols, rows, n);
  return out;
}

Tensor Conv3d::backward(const Tensor& gy) {
  if (cached_input_.empty()) {
    throw std::logic_error(label_ + ": backward before kTrain forward");
  }
  const Tensor& x = cached_input_;
  const Conv3dGeom g = geom_for(x);
  const std::int64_t n = x.dim(0);
  const std::int64_t rows = g.rows(), cols = g.cols();
  Tensor gx(x.shape());

  auto& colbuf = f32_scratch();
  colbuf.resize(static_cast<std::size_t>(rows * cols));
  std::vector<float> gcol(static_cast<std::size_t>(rows * cols));

  const std::int64_t in_stride = in_c_ * g.d * g.h * g.w;
  const std::int64_t out_stride = out_c_ * cols;
  for (std::int64_t sample = 0; sample < n; ++sample) {
    const float* x_s = x.data() + sample * in_stride;
    const float* gy_s = gy.data() + sample * out_stride;
    float* gx_s = gx.data() + sample * in_stride;

    vol2col_3d(x_s, g, colbuf.data());
    sgemm(false, true, out_c_, rows, cols, 1.f, gy_s, cols, colbuf.data(),
          cols, 1.f, weight_.grad.data(), rows);
    if (bias_) accum_bias_grad(gy_s, bias_->grad.data(), out_c_, cols);
    sgemm(true, false, rows, cols, out_c_, 1.f, weight_.value.data(), rows,
          gy_s, cols, 0.f, gcol.data(), cols);
    col2vol_3d(gcol.data(), g, gx_s);
  }
  cached_input_ = Tensor();
  return gx;
}

void Conv3d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

// ---------------------------------------------------------------------------
// ConvTranspose2d
// ---------------------------------------------------------------------------

ConvTranspose2d::ConvTranspose2d(std::int64_t in_c, std::int64_t out_c,
                                 std::array<std::int64_t, 2> kernel,
                                 std::array<std::int64_t, 2> stride,
                                 std::array<std::int64_t, 2> pad,
                                 bool with_bias, util::Rng& rng,
                                 std::string label)
    : in_c_(in_c),
      out_c_(out_c),
      k_(kernel),
      s_(stride),
      p_(pad),
      weight_(label + ".weight", Tensor({in_c, out_c, kernel[0], kernel[1]})),
      label_(std::move(label)) {
  const std::int64_t fan_in = in_c * kernel[0] * kernel[1];
  kaiming_normal(weight_.value, fan_in, rng);
  if (with_bias) {
    bias_.emplace(label_ + ".bias", Tensor({out_c}));
    uniform_init(bias_->value, 1.0 / std::sqrt(static_cast<double>(fan_in)), rng);
  }
}

Conv2dGeom ConvTranspose2d::geom_for_output(
    std::array<std::int64_t, 2> out_hw) const {
  Conv2dGeom g;
  g.c = out_c_;
  g.h = out_hw[0];
  g.w = out_hw[1];
  g.kh = k_[0];
  g.kw = k_[1];
  g.sh = s_[0];
  g.sw = s_[1];
  g.ph = p_[0];
  g.pw = p_[1];
  return g;
}

Tensor ConvTranspose2d::forward(const Tensor& x, Mode mode) {
  if (x.ndim() != 4 || x.dim(1) != in_c_) {
    throw std::invalid_argument(label_ + ": expected (N, " +
                                std::to_string(in_c_) + ", H, W), got " +
                                shape_to_string(x.shape()));
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t ih = x.dim(2), iw = x.dim(3);
  const std::int64_t oh = (ih - 1) * s_[0] - 2 * p_[0] + k_[0];
  const std::int64_t ow = (iw - 1) * s_[1] - 2 * p_[1] + k_[1];
  const Conv2dGeom g = geom_for_output({oh, ow});
  if (g.out_h() != ih || g.out_w() != iw) {
    throw std::invalid_argument(label_ + ": inconsistent deconv geometry");
  }
  const std::int64_t rows = g.rows();      // out_c * kh * kw
  const std::int64_t cols = ih * iw;       // input positions
  Tensor out({n, out_c_, oh, ow});

  if (mode == Mode::kTrain) cached_input_ = x;

  // Transposed convolutions run on the offline decompression path; int8
  // mode falls back to full precision here.
  const bool half_mode = (mode == Mode::kEvalHalf);
  const HalfTensor* whalf =
      half_mode ? &weight_t_half_.get([&] {
        // Pack Wᵀ as (out_c*kh*kw, in_c) so the half GEMM needs no transpose.
        HalfTensor wt(Shape{rows, in_c_});
        const float* w = weight_.value.data();
        for (std::int64_t i = 0; i < in_c_; ++i) {
          for (std::int64_t r = 0; r < rows; ++r) {
            wt.data()[r * in_c_ + i] = util::half(w[i * rows + r]);
          }
        }
        return wt;
      })
                : nullptr;

  const float* bias = bias_ ? bias_->value.data() : nullptr;
  const bool prof = Profiler::instance().enabled();
  util::Timer timer;

  const std::int64_t in_stride = in_c_ * cols;
  const std::int64_t out_stride = out_c_ * oh * ow;
  util::parallel_for(
      0, n,
      [&](std::int64_t sample) {
        const float* x_s = x.data() + sample * in_stride;
        float* out_s = out.data() + sample * out_stride;
        auto& gcol = f32_scratch();
        gcol.resize(static_cast<std::size_t>(rows * cols));
        if (half_mode) {
          auto& xh = f16_scratch();
          xh.resize(static_cast<std::size_t>(in_c_ * cols));
          util::float_to_half_sat_n(x_s, xh.data(), in_c_ * cols);
          hgemm(rows, cols, in_c_, whalf->data(), in_c_, xh.data(),
                cols, gcol.data(), cols);
        } else {
          sgemm(true, false, rows, cols, in_c_, 1.f, weight_.value.data(),
                rows, x_s, cols, 0.f, gcol.data(), cols);
        }
        col2im_2d(gcol.data(), g, out_s);
        if (bias) add_bias_rows(out_s, bias, out_c_, oh * ow);
      },
      mode == Mode::kTrain ? n + 1 : 1);

  if (prof) record_profile(label_, timer.elapsed_s(), rows, cols, in_c_, n);
  return out;
}

Tensor ConvTranspose2d::backward(const Tensor& gy) {
  if (cached_input_.empty()) {
    throw std::logic_error(label_ + ": backward before kTrain forward");
  }
  const Tensor& x = cached_input_;
  const std::int64_t n = x.dim(0);
  const std::int64_t ih = x.dim(2), iw = x.dim(3);
  const Conv2dGeom g = geom_for_output({gy.dim(2), gy.dim(3)});
  const std::int64_t rows = g.rows();
  const std::int64_t cols = ih * iw;
  Tensor gx(x.shape());

  auto& colbuf = f32_scratch();
  colbuf.resize(static_cast<std::size_t>(rows * cols));

  const std::int64_t in_stride = in_c_ * cols;
  const std::int64_t out_stride = out_c_ * g.h * g.w;
  for (std::int64_t sample = 0; sample < n; ++sample) {
    const float* x_s = x.data() + sample * in_stride;
    const float* gy_s = gy.data() + sample * out_stride;
    float* gx_s = gx.data() + sample * in_stride;

    im2col_2d(gy_s, g, colbuf.data());
    // gx (in_c, cols) = W (in_c, rows) x colbuf (rows, cols)
    sgemm(false, false, in_c_, cols, rows, 1.f, weight_.value.data(), rows,
          colbuf.data(), cols, 0.f, gx_s, cols);
    // gW (in_c, rows) += x_mat (in_c, cols) x colbufᵀ
    sgemm(false, true, in_c_, rows, cols, 1.f, x_s, cols, colbuf.data(), cols,
          1.f, weight_.grad.data(), rows);
    if (bias_) accum_bias_grad(gy_s, bias_->grad.data(), out_c_, g.h * g.w);
  }
  cached_input_ = Tensor();
  return gx;
}

void ConvTranspose2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

// ---------------------------------------------------------------------------
// ConvTranspose3d
// ---------------------------------------------------------------------------

ConvTranspose3d::ConvTranspose3d(std::int64_t in_c, std::int64_t out_c,
                                 std::array<std::int64_t, 3> kernel,
                                 std::array<std::int64_t, 3> stride,
                                 std::array<std::int64_t, 3> pad,
                                 bool with_bias, util::Rng& rng,
                                 std::string label)
    : in_c_(in_c),
      out_c_(out_c),
      k_(kernel),
      s_(stride),
      p_(pad),
      weight_(label + ".weight",
              Tensor({in_c, out_c, kernel[0], kernel[1], kernel[2]})),
      label_(std::move(label)) {
  const std::int64_t fan_in = in_c * kernel[0] * kernel[1] * kernel[2];
  kaiming_normal(weight_.value, fan_in, rng);
  if (with_bias) {
    bias_.emplace(label_ + ".bias", Tensor({out_c}));
    uniform_init(bias_->value, 1.0 / std::sqrt(static_cast<double>(fan_in)), rng);
  }
}

Conv3dGeom ConvTranspose3d::geom_for_output(
    std::array<std::int64_t, 3> out_dhw) const {
  Conv3dGeom g;
  g.c = out_c_;
  g.d = out_dhw[0];
  g.h = out_dhw[1];
  g.w = out_dhw[2];
  g.kd = k_[0];
  g.kh = k_[1];
  g.kw = k_[2];
  g.sd = s_[0];
  g.sh = s_[1];
  g.sw = s_[2];
  g.pd = p_[0];
  g.ph = p_[1];
  g.pw = p_[2];
  return g;
}

Tensor ConvTranspose3d::forward(const Tensor& x, Mode mode) {
  if (x.ndim() != 5 || x.dim(1) != in_c_) {
    throw std::invalid_argument(label_ + ": expected (N, " +
                                std::to_string(in_c_) + ", D, H, W), got " +
                                shape_to_string(x.shape()));
  }
  const std::int64_t n = x.dim(0);
  const std::int64_t id = x.dim(2), ih = x.dim(3), iw = x.dim(4);
  const std::int64_t od = (id - 1) * s_[0] - 2 * p_[0] + k_[0];
  const std::int64_t oh = (ih - 1) * s_[1] - 2 * p_[1] + k_[1];
  const std::int64_t ow = (iw - 1) * s_[2] - 2 * p_[2] + k_[2];
  const Conv3dGeom g = geom_for_output({od, oh, ow});
  if (g.out_d() != id || g.out_h() != ih || g.out_w() != iw) {
    throw std::invalid_argument(label_ + ": inconsistent deconv geometry");
  }
  const std::int64_t rows = g.rows();
  const std::int64_t cols = id * ih * iw;
  Tensor out({n, out_c_, od, oh, ow});

  if (mode == Mode::kTrain) cached_input_ = x;

  const bool half_mode = (mode == Mode::kEvalHalf);
  const HalfTensor* whalf =
      half_mode ? &weight_t_half_.get([&] {
        HalfTensor wt(Shape{rows, in_c_});
        const float* w = weight_.value.data();
        for (std::int64_t i = 0; i < in_c_; ++i) {
          for (std::int64_t r = 0; r < rows; ++r) {
            wt.data()[r * in_c_ + i] = util::half(w[i * rows + r]);
          }
        }
        return wt;
      })
                : nullptr;

  const float* bias = bias_ ? bias_->value.data() : nullptr;
  const bool prof = Profiler::instance().enabled();
  util::Timer timer;

  const std::int64_t in_stride = in_c_ * cols;
  const std::int64_t out_stride = out_c_ * od * oh * ow;
  util::parallel_for(
      0, n,
      [&](std::int64_t sample) {
        const float* x_s = x.data() + sample * in_stride;
        float* out_s = out.data() + sample * out_stride;
        auto& gcol = f32_scratch();
        gcol.resize(static_cast<std::size_t>(rows * cols));
        if (half_mode) {
          auto& xh = f16_scratch();
          xh.resize(static_cast<std::size_t>(in_c_ * cols));
          util::float_to_half_sat_n(x_s, xh.data(), in_c_ * cols);
          hgemm(rows, cols, in_c_, whalf->data(), in_c_, xh.data(),
                cols, gcol.data(), cols);
        } else {
          sgemm(true, false, rows, cols, in_c_, 1.f, weight_.value.data(),
                rows, x_s, cols, 0.f, gcol.data(), cols);
        }
        col2vol_3d(gcol.data(), g, out_s);
        if (bias) add_bias_rows(out_s, bias, out_c_, od * oh * ow);
      },
      mode == Mode::kTrain ? n + 1 : 1);

  if (prof) record_profile(label_, timer.elapsed_s(), rows, cols, in_c_, n);
  return out;
}

Tensor ConvTranspose3d::backward(const Tensor& gy) {
  if (cached_input_.empty()) {
    throw std::logic_error(label_ + ": backward before kTrain forward");
  }
  const Tensor& x = cached_input_;
  const std::int64_t n = x.dim(0);
  const std::int64_t id = x.dim(2), ih = x.dim(3), iw = x.dim(4);
  const Conv3dGeom g = geom_for_output({gy.dim(2), gy.dim(3), gy.dim(4)});
  const std::int64_t rows = g.rows();
  const std::int64_t cols = id * ih * iw;
  Tensor gx(x.shape());

  auto& colbuf = f32_scratch();
  colbuf.resize(static_cast<std::size_t>(rows * cols));

  const std::int64_t in_stride = in_c_ * cols;
  const std::int64_t out_stride = out_c_ * g.d * g.h * g.w;
  for (std::int64_t sample = 0; sample < n; ++sample) {
    const float* x_s = x.data() + sample * in_stride;
    const float* gy_s = gy.data() + sample * out_stride;
    float* gx_s = gx.data() + sample * in_stride;

    vol2col_3d(gy_s, g, colbuf.data());
    sgemm(false, false, in_c_, cols, rows, 1.f, weight_.value.data(), rows,
          colbuf.data(), cols, 0.f, gx_s, cols);
    sgemm(false, true, in_c_, rows, cols, 1.f, x_s, cols, colbuf.data(), cols,
          1.f, weight_.grad.data(), rows);
    if (bias_) accum_bias_grad(gy_s, bias_->grad.data(), out_c_, g.d * g.h * g.w);
  }
  cached_input_ = Tensor();
  return gx;
}

void ConvTranspose3d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (bias_) out.push_back(&*bias_);
}

}  // namespace nc::core
