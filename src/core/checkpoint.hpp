/// \file checkpoint.hpp
/// \brief Save / load named parameter sets (model checkpoints).
///
/// Format "CKPT": magic, version, count, then (name, shape, float32 data)
/// per parameter.  Loading matches strictly by name and shape so that a
/// checkpoint from a differently-configured model fails loudly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/layer.hpp"

namespace nc::core {

void save_checkpoint(std::ostream& os, const std::vector<Param*>& params);
void save_checkpoint_file(const std::string& path,
                          const std::vector<Param*>& params);

/// Loads values into `params`; throws util::SerializeError on mismatch.
void load_checkpoint(std::istream& is, const std::vector<Param*>& params);
void load_checkpoint_file(const std::string& path,
                          const std::vector<Param*>& params);

}  // namespace nc::core
