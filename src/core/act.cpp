#include "core/act.hpp"

#include <cmath>

#include "util/parallel.hpp"

namespace nc::core {

namespace {
constexpr std::int64_t kGrain = 1 << 15;
}

Tensor ReLU::forward(const Tensor& x, Mode mode) {
  Tensor out(x.shape());
  const float* xp = x.data();
  float* op = out.data();
  util::parallel_for(
      0, x.numel(), [&](std::int64_t i) { op[i] = xp[i] > 0.f ? xp[i] : 0.f; },
      kGrain);
  if (mode == Mode::kTrain) cached_input_ = x;
  return out;
}

Tensor ReLU::backward(const Tensor& gy) {
  Tensor gx(gy.shape());
  const float* xp = cached_input_.data();
  const float* gp = gy.data();
  float* op = gx.data();
  util::parallel_for(
      0, gy.numel(),
      [&](std::int64_t i) { op[i] = xp[i] > 0.f ? gp[i] : 0.f; }, kGrain);
  cached_input_ = Tensor();
  return gx;
}

Tensor LeakyReLU::forward(const Tensor& x, Mode mode) {
  Tensor out(x.shape());
  const float* xp = x.data();
  float* op = out.data();
  const float slope = slope_;
  util::parallel_for(
      0, x.numel(),
      [&](std::int64_t i) { op[i] = xp[i] > 0.f ? xp[i] : slope * xp[i]; },
      kGrain);
  if (mode == Mode::kTrain) cached_input_ = x;
  return out;
}

Tensor LeakyReLU::backward(const Tensor& gy) {
  Tensor gx(gy.shape());
  const float* xp = cached_input_.data();
  const float* gp = gy.data();
  float* op = gx.data();
  const float slope = slope_;
  util::parallel_for(
      0, gy.numel(),
      [&](std::int64_t i) { op[i] = xp[i] > 0.f ? gp[i] : slope * gp[i]; },
      kGrain);
  cached_input_ = Tensor();
  return gx;
}

Tensor Sigmoid::forward(const Tensor& x, Mode mode) {
  Tensor out(x.shape());
  const float* xp = x.data();
  float* op = out.data();
  util::parallel_for(
      0, x.numel(),
      [&](std::int64_t i) { op[i] = 1.f / (1.f + std::exp(-xp[i])); }, kGrain);
  if (mode == Mode::kTrain) cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& gy) {
  Tensor gx(gy.shape());
  const float* yp = cached_output_.data();
  const float* gp = gy.data();
  float* op = gx.data();
  util::parallel_for(
      0, gy.numel(),
      [&](std::int64_t i) { op[i] = gp[i] * yp[i] * (1.f - yp[i]); }, kGrain);
  cached_output_ = Tensor();
  return gx;
}

Tensor OutputTransform::forward(const Tensor& x, Mode mode) {
  Tensor out(x.shape());
  const float* xp = x.data();
  float* op = out.data();
  const float offset = offset_, scale = scale_, clamp = clamp_;
  util::parallel_for(
      0, x.numel(),
      [&](std::int64_t i) {
        op[i] = offset + scale * std::exp(std::min(xp[i], clamp));
      },
      kGrain);
  if (mode == Mode::kTrain) cached_output_ = out;
  return out;
}

Tensor OutputTransform::backward(const Tensor& gy) {
  // dT/dx = scale * exp(x) = y - offset (zero where the clamp saturated the
  // input — negligible in practice, matches a clamped-exp autograd).
  Tensor gx(gy.shape());
  const float* yp = cached_output_.data();
  const float* gp = gy.data();
  float* op = gx.data();
  const float offset = offset_;
  util::parallel_for(
      0, gy.numel(),
      [&](std::int64_t i) { op[i] = gp[i] * (yp[i] - offset); }, kGrain);
  cached_output_ = Tensor();
  return gx;
}

}  // namespace nc::core
