#include "core/ops.hpp"

#include <cmath>

#include "util/parallel.hpp"

namespace nc::core {

namespace {
constexpr std::int64_t kGrain = 1 << 15;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

void fill(Tensor& t, float value) {
  float* p = t.data();
  util::parallel_for(0, t.numel(), [&](std::int64_t i) { p[i] = value; }, kGrain);
}

void scale(Tensor& t, float alpha) {
  float* p = t.data();
  util::parallel_for(0, t.numel(), [&](std::int64_t i) { p[i] *= alpha; }, kGrain);
}

void add_scalar(Tensor& t, float alpha) {
  float* p = t.data();
  util::parallel_for(0, t.numel(), [&](std::int64_t i) { p[i] += alpha; }, kGrain);
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  check_same_shape(x, y, "axpy");
  const float* xp = x.data();
  float* yp = y.data();
  util::parallel_for(
      0, x.numel(), [&](std::int64_t i) { yp[i] += alpha * xp[i]; }, kGrain);
}

void add_inplace(Tensor& y, const Tensor& x) { axpy(1.f, x, y); }

void mul_inplace(Tensor& y, const Tensor& x) {
  check_same_shape(x, y, "mul_inplace");
  const float* xp = x.data();
  float* yp = y.data();
  util::parallel_for(
      0, x.numel(), [&](std::int64_t i) { yp[i] *= xp[i]; }, kGrain);
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  util::parallel_for(
      0, a.numel(), [&](std::int64_t i) { op[i] = ap[i] - bp[i]; }, kGrain);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  mul_inplace(out, b);
  return out;
}

double sum(const Tensor& t) {
  const float* p = t.data();
  const std::int64_t n = t.numel();
  double acc = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : acc) schedule(static) if (n > (1 << 16))
#endif
  for (std::int64_t i = 0; i < n; ++i) acc += static_cast<double>(p[i]);
  return acc;
}

double mean(const Tensor& t) {
  return t.numel() ? sum(t) / static_cast<double>(t.numel()) : 0.0;
}

float max_value(const Tensor& t) {
  if (t.empty()) throw std::invalid_argument("max_value: empty tensor");
  const float* p = t.data();
  float m = p[0];
  for (std::int64_t i = 1; i < t.numel(); ++i) m = std::max(m, p[i]);
  return m;
}

float min_value(const Tensor& t) {
  if (t.empty()) throw std::invalid_argument("min_value: empty tensor");
  const float* p = t.data();
  float m = p[0];
  for (std::int64_t i = 1; i < t.numel(); ++i) m = std::min(m, p[i]);
  return m;
}

double mean_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mean_abs_diff");
  const float* ap = a.data();
  const float* bp = b.data();
  const std::int64_t n = a.numel();
  double acc = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : acc) schedule(static) if (n > (1 << 16))
#endif
  for (std::int64_t i = 0; i < n; ++i)
    acc += std::abs(static_cast<double>(ap[i]) - static_cast<double>(bp[i]));
  return n ? acc / static_cast<double>(n) : 0.0;
}

std::int64_t count_greater(const Tensor& t, float threshold) {
  const float* p = t.data();
  const std::int64_t n = t.numel();
  std::int64_t count = 0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : count) schedule(static) if (n > (1 << 16))
#endif
  for (std::int64_t i = 0; i < n; ++i) count += (p[i] > threshold) ? 1 : 0;
  return count;
}

}  // namespace nc::core
