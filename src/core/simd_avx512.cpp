/// \file simd_avx512.cpp
/// \brief AVX-512 VNNI int8 GEMM tier, compiled with per-file target flags
///        (-mavx512f -mavx512bw -mavx512vnni) and selected at runtime.
///
/// `vpdpbusd` computes a u8 x s8 quad dot-product accumulated directly into
/// i32 lanes — no saturating i16 midpoint — so here the classic "+128 bias"
/// form IS exact: quantized activations b are biased to unsigned u = b + 128
/// (one XOR with 0x80), the weights ride the signed operand unchanged, and
/// the surplus 128 * sum_k a[i,k] is subtracted per output row via a
/// precomputed weight row-sum:
///
///     sum_k (b_k + 128) * a_k  =  sum_k a_k * b_k  +  128 * sum_k a_k
///
/// Every step stays in exact i32 arithmetic, so the result is bit-identical
/// to the scalar reference for the *full* int8 range of both operands.
/// (Contrast with the AVX2 tier, which must use sign-transfer to dodge
/// `vpmaddubsw` saturation — see simd_avx2.cpp.)
///
/// Only `qgemm` is overridden at this tier; max_abs / quantize_scaled /
/// tile_hh are inherited from the AVX2 table, whose 256-bit forms already
/// saturate the load ports at these panel sizes.
#include "core/simd_dispatch.hpp"

#if defined(NC_SIMD_BUILD_AVX512) && defined(__AVX512F__) && \
    defined(__AVX512BW__) && defined(__AVX512VNNI__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "core/simd_qpack.hpp"

// GCC's unmasked AVX-512 intrinsics deliberately pass an uninitialized
// passthrough operand (`__Y` in avx512fintrin.h); with -O2 + OpenMP
// outlining GCC 12 reports it as -Wmaybe-uninitialized *inside the system
// header*.  Silence that single diagnostic for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nc::core::simd {
namespace {

using detail::kQQuadK;
using detail::kQTileJ;

/// Scalar pack of one (possibly partial) j-tile — mirrors the portable
/// detail::pack_b_quad16 per-tile loop; used for the edges the vector pack
/// below cannot cover.
void pack_tile_scalar(const std::int8_t* b, std::int64_t k, std::int64_t n,
                      std::int64_t j0, std::int8_t* tile) {
  const std::int64_t quads = (k + kQQuadK - 1) / kQQuadK;
  const std::int64_t jw = std::min<std::int64_t>(kQTileJ, n - j0);
  for (std::int64_t q = 0; q < quads; ++q) {
    std::int8_t* dst = tile + q * kQQuadK * kQTileJ;
    for (std::int64_t r = 0; r < kQQuadK; ++r) {
      const std::int64_t kk = q * kQQuadK + r;
      if (kk >= k) {
        for (std::int64_t j = 0; j < kQTileJ; ++j) dst[j * kQQuadK + r] = 0;
        continue;
      }
      const std::int8_t* src = b + kk * n + j0;
      for (std::int64_t j = 0; j < jw; ++j) dst[j * kQQuadK + r] = src[j];
      for (std::int64_t j = jw; j < kQTileJ; ++j) dst[j * kQQuadK + r] = 0;
    }
  }
}

/// Vectorized B pack: one SSE 4x16 byte interleave per 64-byte quad-row.
/// Bytewise identical to the portable packer; deliberately duplicated from
/// simd_avx2.cpp because intrinsics must stay inside the per-ISA TUs
/// (tools/lint/check_headers.py enforces this) and this TU must not assume
/// the AVX2 TU compiled.
void pack_b_panel(const std::int8_t* b, std::int64_t k, std::int64_t n,
                  std::int8_t* packed) {
  const std::int64_t full_quads = k / kQQuadK;
  const std::int64_t full_tiles = n / kQTileJ;
  const std::int64_t quads = (k + kQQuadK - 1) / kQQuadK;
  const std::int64_t tile_bytes = quads * kQQuadK * kQTileJ;
  for (std::int64_t t = 0; t < full_tiles; ++t) {
    const std::int8_t* src = b + t * kQTileJ;
    std::int8_t* dst = packed + t * tile_bytes;
    for (std::int64_t q = 0; q < full_quads; ++q, src += 4 * n, dst += 64) {
      const __m128i r0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
      const __m128i r1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + n));
      const __m128i r2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 2 * n));
      const __m128i r3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 3 * n));
      // 4x16 interleave: out byte [j*4 + r] = row_r[j].
      const __m128i t0 = _mm_unpacklo_epi8(r0, r1);
      const __m128i t1 = _mm_unpackhi_epi8(r0, r1);
      const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
      const __m128i t3 = _mm_unpackhi_epi8(r2, r3);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                       _mm_unpacklo_epi16(t0, t2));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                       _mm_unpackhi_epi16(t0, t2));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32),
                       _mm_unpacklo_epi16(t1, t3));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48),
                       _mm_unpackhi_epi16(t1, t3));
    }
    if (full_quads < quads) {  // partial trailing k-quad: scalar + zero pad
      for (std::int64_t r = 0; r < kQQuadK; ++r) {
        const std::int64_t kk = full_quads * kQQuadK + r;
        if (kk >= k) {
          for (std::int64_t j = 0; j < kQTileJ; ++j) dst[j * kQQuadK + r] = 0;
          continue;
        }
        const std::int8_t* row = b + kk * n + t * kQTileJ;
        for (std::int64_t j = 0; j < kQTileJ; ++j) dst[j * kQQuadK + r] = row[j];
      }
    }
  }
  if (full_tiles * kQTileJ < n) {  // partial trailing j-tile
    pack_tile_scalar(b, k, n, full_tiles * kQTileJ,
                     packed + full_tiles * tile_bytes);
  }
}

void qgemm_avx512(std::int64_t m, std::int64_t n, std::int64_t k,
                  const std::int8_t* a, const float* a_scales,
                  const std::int8_t* b, float b_scale, float* c,
                  std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float v = 0.f * (a_scales[i] * b_scale);
      std::fill(c + i * ldc, c + i * ldc + n, v);
    }
    return;
  }
  const std::int64_t quads = (k + kQQuadK - 1) / kQQuadK;
  const std::int64_t kp = quads * kQQuadK;
  const std::int64_t tiles = (n + kQTileJ - 1) / kQTileJ;

  auto& packed = detail::qpack_scratch();
  packed.resize(static_cast<std::size_t>(detail::packed_b_bytes(k, n)));
  pack_b_panel(b, k, n, packed.data());

  const std::int8_t* a_eff = a;
  std::int64_t lda = k;
  if (kp != k) {
    auto& apad = detail::qpad_a_scratch();
    apad.assign(static_cast<std::size_t>(m * kp), 0);
    for (std::int64_t i = 0; i < m; ++i) {
      std::memcpy(apad.data() + i * kp, a + i * k,
                  static_cast<std::size_t>(k));
    }
    a_eff = apad.data();
    lda = kp;
  }

  // Row sums of A over the real k range, for the +128 bias correction.
  // (Zero-padded A lanes sum to zero, and padded B lanes do bias the
  // accumulator — by 128 * a_pad = 0 — so padding never skews the fix.)
  auto& row_sums = detail::qrow_sum_scratch();
  row_sums.resize(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    std::int32_t s = 0;
    const std::int8_t* ai = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) s += ai[kk];
    row_sums[static_cast<std::size_t>(i)] = s;
  }

  const std::int8_t* pk = packed.data();
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  // Register-block 4 weight rows per pass: each packed quad-row is loaded
  // and biased (+128 XOR) once for 4 rows of output.  Rows keep independent
  // accumulators, so the int32 result is unchanged.
  constexpr std::int64_t kRowBlk = 4;
  const std::int64_t row_blocks = (m + kRowBlk - 1) / kRowBlk;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (row_blocks > 1 && !omp_in_parallel())
#endif
  for (std::int64_t rb = 0; rb < row_blocks; ++rb) {
    const std::int64_t i0 = rb * kRowBlk;
    const std::int64_t rows = std::min<std::int64_t>(kRowBlk, m - i0);
    for (std::int64_t t = 0; t < tiles; ++t) {
      const std::int8_t* blk = pk + t * quads * kQQuadK * kQTileJ;
      __m512i acc[kRowBlk];
      for (std::int64_t r = 0; r < rows; ++r) acc[r] = _mm512_setzero_si512();
      for (std::int64_t q = 0; q < quads; ++q) {
        const __m512i bv = _mm512_loadu_si512(blk + q * 64);
        // b + 128 as unsigned bytes: one XOR against 0x80.
        const __m512i ub = _mm512_xor_si512(bv, bias);
        for (std::int64_t r = 0; r < rows; ++r) {
          std::int32_t aq;
          std::memcpy(&aq, a_eff + (i0 + r) * lda + q * kQQuadK, sizeof(aq));
          // All-zero weight quad (pruning): its true contribution is 0 and
          // its bias term is 128 * 0 = 0, so skipping is exact.
          if (aq == 0) continue;
          acc[r] = _mm512_dpbusd_epi32(acc[r], ub, _mm512_set1_epi32(aq));
        }
      }
      const std::int64_t j0 = t * kQTileJ;
      for (std::int64_t r = 0; r < rows; ++r) {
        const __m512i correction = _mm512_set1_epi32(
            128 * row_sums[static_cast<std::size_t>(i0 + r)]);
        const float scale = a_scales[i0 + r] * b_scale;
        float* ci = c + (i0 + r) * ldc;
        const __m512i fixed = _mm512_sub_epi32(acc[r], correction);
        const __m512 f = _mm512_mul_ps(_mm512_cvtepi32_ps(fixed),
                                       _mm512_set1_ps(scale));
        if (j0 + kQTileJ <= n) {
          _mm512_storeu_ps(ci + j0, f);
        } else {
          alignas(64) float tmp[kQTileJ];
          _mm512_store_ps(tmp, f);
          std::memcpy(ci + j0, tmp,
                      static_cast<std::size_t>(n - j0) * sizeof(float));
        }
      }
    }
  }
}

}  // namespace

namespace detail {

Kernels avx512_kernels() {
  Kernels t;
  t.qgemm = &qgemm_avx512;
  return t;
}

bool avx512_compiled() { return true; }

}  // namespace detail
}  // namespace nc::core::simd

#else  // TU built without AVX-512 VNNI target support

namespace nc::core::simd::detail {

Kernels avx512_kernels() { return {}; }
bool avx512_compiled() { return false; }

}  // namespace nc::core::simd::detail

#endif
