/// \file act.hpp
/// \brief Elementwise activation layers.
///
/// Includes the BCAE regression-output transformation T(x) = 6 + 3·exp(x)
/// (§2.2): it pins every regression prediction above the zero-suppression
/// edge at log-ADC 6, so zeros in the reconstruction can only come from the
/// segmentation mask.
#pragma once

#include "core/layer.hpp"

namespace nc::core {

/// max(x, 0).
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string label = "relu") : label_(std::move(label)) {}
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return label_; }

 private:
  std::string label_;
  Tensor cached_input_;
};

/// x > 0 ? x : slope * x.  Default slope matches PyTorch (0.01).
class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f, std::string label = "leaky_relu")
      : slope_(slope), label_(std::move(label)) {}
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return label_; }

 private:
  float slope_;
  std::string label_;
  Tensor cached_input_;
};

/// 1 / (1 + exp(-x)).
class Sigmoid final : public Layer {
 public:
  explicit Sigmoid(std::string label = "sigmoid") : label_(std::move(label)) {}
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return label_; }

 private:
  std::string label_;
  Tensor cached_output_;
};

/// Pass-through (the regression decoder's output activation in Algorithm 2).
class Identity final : public Layer {
 public:
  explicit Identity(std::string label = "identity") : label_(std::move(label)) {}
  Tensor forward(const Tensor& x, Mode) override { return x; }
  Tensor backward(const Tensor& gy) override { return gy; }
  std::string name() const override { return label_; }

 private:
  std::string label_;
};

/// T(x) = offset + scale * exp(x)  — BCAE regression output transform with
/// offset 6, scale 3 per the paper.  exp input is clamped at `clamp` to keep
/// half-precision evaluation finite on untrained networks.
class OutputTransform final : public Layer {
 public:
  explicit OutputTransform(float offset = 6.f, float scale = 3.f,
                           float clamp = 4.f,
                           std::string label = "output_transform")
      : offset_(offset), scale_(scale), clamp_(clamp), label_(std::move(label)) {}
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  std::string name() const override { return label_; }

 private:
  float offset_, scale_, clamp_;
  std::string label_;
  Tensor cached_output_;
};

}  // namespace nc::core
