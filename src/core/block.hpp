/// \file block.hpp
/// \brief Composite layers: Sequential chains and the BCAE residual block.
#pragma once

#include <array>

#include "core/layer.hpp"
#include "util/rng.hpp"

namespace nc::core {

/// Ordered chain of layers.  forward runs front-to-back, backward back-to-
/// front; parameter collection and cache invalidation recurse.
class Sequential final : public Layer {
 public:
  explicit Sequential(std::string label = "sequential")
      : label_(std::move(label)) {}

  /// Append a layer; returns *this for chaining during model construction.
  Sequential& add(LayerPtr layer);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  void invalidate_half_cache() override;
  std::string name() const override { return label_; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
  std::string label_;
};

/// Residual block (Fig. 4): a two-convolution main branch and a skip branch
/// joined by addition, followed by an activation.
///
///   main: conv(k) -> act -> [norm] -> conv(k) -> [norm]
///   skip: identity when channels match, else 1x1(x1) conv [-> norm]
///   out:  act(main + skip)
///
/// `use_norm` inserts InstanceNorm after each conv — used only by the
/// original-BCAE baseline; the ++/HT/2D variants run norm-free (§2.3).
class ResBlock final : public Layer {
 public:
  /// 2-D residual block over (N, C, H, W).  kernel/pad apply to both axes.
  static LayerPtr make_2d(std::int64_t in_c, std::int64_t out_c,
                          std::int64_t kernel, std::int64_t pad, bool use_norm,
                          util::Rng& rng, std::string label = "resblock2d");

  /// 3-D residual block over (N, C, D, H, W).
  static LayerPtr make_3d(std::int64_t in_c, std::int64_t out_c,
                          std::array<std::int64_t, 3> kernel,
                          std::array<std::int64_t, 3> pad, bool use_norm,
                          util::Rng& rng, std::string label = "resblock3d");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  void invalidate_half_cache() override;
  std::string name() const override { return label_; }

 private:
  ResBlock(LayerPtr conv1, LayerPtr conv2, LayerPtr skip, LayerPtr norm1,
           LayerPtr norm2, LayerPtr norm_skip, std::string label);

  LayerPtr conv1_, conv2_, skip_;          // skip_ may be null (identity)
  LayerPtr norm1_, norm2_, norm_skip_;     // may be null (norm-free variants)
  LayerPtr act1_, act2_;                   // leaky ReLU instances
  std::string label_;
};

}  // namespace nc::core
