/// \file conv.hpp
/// \brief Convolution layers: Conv2d / Conv3d / ConvTranspose2d /
///        ConvTranspose3d.
///
/// All four lower to GEMM through the im2col/vol2col machinery:
///   conv forward        : out  = W · cols(x)
///   conv backward-data  : gx   = col2im(Wᵀ · g)
///   conv backward-weight: gW   = g · cols(x)ᵀ
///   deconv forward      : out  = col2im(Wᵀ · x)      (≡ conv backward-data)
///   deconv backward-data: gx   = W · cols(g)         (≡ conv forward)
///
/// Half-precision inference keeps a cached binary16 copy of the weight in
/// the orientation its GEMM consumes and lowers activations into a binary16
/// column buffer, so the GEMM streams half the bytes of the fp32 path.
/// Derived-weight caches (fp16 / int8) build lazily behind a LazyCache, so
/// concurrent eval-mode forwards (the multi-worker streaming pipeline) are
/// safe; only kTrain forwards and cache invalidation mutate layer state and
/// must be externally serialized.
///
/// Batch handling: training runs samples serially with parallel kernels
/// (gradient accumulation stays race-free); eval runs samples in an OpenMP
/// loop with serial inner kernels, which is what makes encoder throughput
/// grow with batch size (Fig. 6 A–C) — small batches cannot occupy all
/// cores, exactly as small kernels cannot occupy a GPU.
#pragma once

#include <array>
#include <optional>

#include "core/im2col.hpp"
#include "core/layer.hpp"
#include "core/quantize.hpp"
#include "util/rng.hpp"

namespace nc::core {

/// 2-D convolution over (N, C, H, W).
class Conv2d final : public Layer {
 public:
  /// kernel/stride/pad are (height, width) pairs.
  Conv2d(std::int64_t in_c, std::int64_t out_c, std::array<std::int64_t, 2> kernel,
         std::array<std::int64_t, 2> stride, std::array<std::int64_t, 2> pad,
         bool with_bias, util::Rng& rng, std::string label = "conv2d");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  void invalidate_half_cache() override {
    weight_half_.invalidate();
    weight_q_.invalidate();
  }
  std::string name() const override { return label_; }

  const Param& weight() const { return weight_; }

  /// Output spatial shape for a given input spatial shape.
  std::array<std::int64_t, 2> out_hw(std::array<std::int64_t, 2> in_hw) const;

 private:
  Conv2dGeom geom_for(const Tensor& x) const;

  std::int64_t in_c_, out_c_;
  std::array<std::int64_t, 2> k_, s_, p_;
  Param weight_;  ///< (out_c, in_c, kh, kw)
  std::optional<Param> bias_;
  std::string label_;

  Tensor cached_input_;
  LazyCache<HalfTensor> weight_half_;
  LazyCache<QuantizedRows> weight_q_;
};

/// 3-D convolution over (N, C, D, H, W); D is the TPC radial dimension.
class Conv3d final : public Layer {
 public:
  Conv3d(std::int64_t in_c, std::int64_t out_c, std::array<std::int64_t, 3> kernel,
         std::array<std::int64_t, 3> stride, std::array<std::int64_t, 3> pad,
         bool with_bias, util::Rng& rng, std::string label = "conv3d");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  void invalidate_half_cache() override {
    weight_half_.invalidate();
    weight_q_.invalidate();
  }
  std::string name() const override { return label_; }

  const Param& weight() const { return weight_; }

 private:
  Conv3dGeom geom_for(const Tensor& x) const;

  std::int64_t in_c_, out_c_;
  std::array<std::int64_t, 3> k_, s_, p_;
  Param weight_;  ///< (out_c, in_c, kd, kh, kw)
  std::optional<Param> bias_;
  std::string label_;

  Tensor cached_input_;
  LazyCache<HalfTensor> weight_half_;
  LazyCache<QuantizedRows> weight_q_;
};

/// 2-D transposed convolution (a.k.a. deconvolution) over (N, C, H, W).
/// Output spatial size: (in - 1) * stride - 2 * pad + kernel.
class ConvTranspose2d final : public Layer {
 public:
  ConvTranspose2d(std::int64_t in_c, std::int64_t out_c,
                  std::array<std::int64_t, 2> kernel,
                  std::array<std::int64_t, 2> stride,
                  std::array<std::int64_t, 2> pad, bool with_bias,
                  util::Rng& rng, std::string label = "deconv2d");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  void invalidate_half_cache() override { weight_t_half_.invalidate(); }
  std::string name() const override { return label_; }

 private:
  /// Geometry of the *equivalent forward conv* mapping output -> input.
  Conv2dGeom geom_for_output(std::array<std::int64_t, 2> out_hw) const;

  std::int64_t in_c_, out_c_;
  std::array<std::int64_t, 2> k_, s_, p_;
  Param weight_;  ///< (in_c, out_c, kh, kw)  (PyTorch deconv convention)
  std::optional<Param> bias_;
  std::string label_;

  Tensor cached_input_;
  LazyCache<HalfTensor> weight_t_half_;  ///< transposed weight (out_c*kh*kw, in_c)
};

/// 3-D transposed convolution over (N, C, D, H, W).
class ConvTranspose3d final : public Layer {
 public:
  ConvTranspose3d(std::int64_t in_c, std::int64_t out_c,
                  std::array<std::int64_t, 3> kernel,
                  std::array<std::int64_t, 3> stride,
                  std::array<std::int64_t, 3> pad, bool with_bias,
                  util::Rng& rng, std::string label = "deconv3d");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& gy) override;
  void collect_params(std::vector<Param*>& out) override;
  void invalidate_half_cache() override { weight_t_half_.invalidate(); }
  std::string name() const override { return label_; }

 private:
  Conv3dGeom geom_for_output(std::array<std::int64_t, 3> out_dhw) const;

  std::int64_t in_c_, out_c_;
  std::array<std::int64_t, 3> k_, s_, p_;
  Param weight_;  ///< (in_c, out_c, kd, kh, kw)
  std::optional<Param> bias_;
  std::string label_;

  Tensor cached_input_;
  LazyCache<HalfTensor> weight_t_half_;
};

}  // namespace nc::core
