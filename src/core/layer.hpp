/// \file layer.hpp
/// \brief Layer abstraction: explicit forward/backward graph nodes.
///
/// The BCAE networks are simple DAGs (sequential trunks, residual adds, two
/// decoder heads), so instead of a tape-based autograd we use classic
/// layer-owned backprop: `forward(x, Mode::kTrain)` caches whatever the
/// layer needs, `backward(gy)` consumes the cache, accumulates parameter
/// gradients and returns the input gradient.  This keeps peak memory
/// deterministic and makes every layer independently grad-checkable.
///
/// Modes:
///   kTrain    — float32, caches activations for backward.
///   kEval     — float32, no caching (inference benchmark "full precision").
///   kEvalHalf — binary16 storage / float32 accumulate (inference benchmark
///               "half precision"); layers with weights maintain a cached
///               fp16 copy invalidated by `invalidate_half_cache()` after
///               optimizer steps.
///   kEvalInt8 — post-training int8 quantization (§4 future work): conv
///               layers run per-channel int8 weights against dynamically
///               quantized activations; weight-free layers and transposed
///               convolutions (offline decoder path) fall back to float32.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace nc::core {

enum class Mode { kTrain, kEval, kEvalHalf, kEvalInt8 };

/// Lazily-built derived weight cache (fp16 / int8 copies) that is safe to
/// initialize from concurrent eval-mode forwards: the double-checked build
/// runs exactly once and later readers see a fully published value.
/// `invalidate()` must be externally synchronized with forwards (it is
/// called between optimizer steps, never during concurrent inference).
template <typename T>
class LazyCache {
 public:
  template <typename Build>
  const T& get(Build&& build) {
    if (!ready_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!ready_.load(std::memory_order_relaxed)) {
        value_ = build();
        ready_.store(true, std::memory_order_release);
      }
    }
    return value_;
  }

  void invalidate() { ready_.store(false, std::memory_order_release); }

 private:
  T value_;
  std::atomic<bool> ready_{false};
  std::mutex mutex_;
};

/// A learnable tensor plus its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  std::int64_t numel() const { return value.numel(); }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute the layer output.  Under kTrain the layer caches activations
  /// needed by `backward`; under the eval modes no state is retained.
  virtual Tensor forward(const Tensor& x, Mode mode) = 0;

  /// Propagate the loss gradient.  Only valid after a kTrain forward; param
  /// gradients are *accumulated* (callers zero them between steps).
  virtual Tensor backward(const Tensor& gy) = 0;

  /// Append pointers to this layer's learnable parameters.
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  /// Drop cached fp16 weight copies (call after parameter updates).
  virtual void invalidate_half_cache() {}

  /// Diagnostic label ("conv2d_3", "resblock3d_1", ...).
  virtual std::string name() const = 0;

  /// Total learnable parameter count in this subtree.
  std::int64_t param_count() {
    std::vector<Param*> ps;
    collect_params(ps);
    std::int64_t n = 0;
    for (const auto* p : ps) n += p->numel();
    return n;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Zero the gradients of a parameter set (between optimizer steps).
void zero_grads(const std::vector<Param*>& params);

}  // namespace nc::core
