/// \file simd_avx2.cpp
/// \brief AVX2 + FMA + F16C kernel tier, compiled with per-file target flags
///        (-mavx2 -mfma -mf16c) and selected at runtime by simd_dispatch.
///
/// int8 GEMM exactness: AVX2's u8*s8 instruction pair (`vpmaddubsw` +
/// `vpmaddwd`) saturates its intermediate i16 pair-sum, so the textbook
/// "bias the activation by +128" trick is NOT exact here (two biased
/// products can reach 2*255*127 = 64770 > 32767).  We use the
/// *sign-transfer* form instead: per byte,
///
///     u = |b|                (unsigned operand, <= 128)
///     s = a * sgn(b)         (vpsignb: negate a where b < 0, zero where b = 0)
///     u * s = a * b          (exactly)
///
/// so every pair-sum is bounded by 2*128*127 = 32512 < 32767 — no
/// saturation for any activation byte (including -128) as long as the
/// weights stay in [-127, 127], which `quantize_rows` guarantees.  The
/// result is bit-identical to the scalar int32 reference; the AVX-512 tier
/// uses the +128-bias form instead (see simd_avx512.cpp) because `vpdpbusd`
/// accumulates straight into i32 without the saturating midpoint.
#include "core/simd_dispatch.hpp"

#if defined(NC_SIMD_BUILD_AVX2) && defined(__AVX2__) && defined(__FMA__) && \
    defined(__F16C__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/simd_qpack.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace nc::core::simd {
namespace {

using detail::kQQuadK;
using detail::kQTileJ;

/// Fill C's valid region with 0.f * scale per row (the k = 0 degenerate
/// case, kept expression-identical to the scalar kernel).
void fill_k0(std::int64_t m, std::int64_t n, const float* a_scales,
             float b_scale, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float v = 0.f * (a_scales[i] * b_scale);
    std::fill(c + i * ldc, c + i * ldc + n, v);
  }
}

/// Scalar pack of one (possibly partial) j-tile — mirrors the portable
/// detail::pack_b_quad16 per-tile loop; used for the edges the vector pack
/// below cannot cover.
void pack_tile_scalar(const std::int8_t* b, std::int64_t k, std::int64_t n,
                      std::int64_t j0, std::int8_t* tile) {
  const std::int64_t quads = (k + kQQuadK - 1) / kQQuadK;
  const std::int64_t jw = std::min<std::int64_t>(kQTileJ, n - j0);
  for (std::int64_t q = 0; q < quads; ++q) {
    std::int8_t* dst = tile + q * kQQuadK * kQTileJ;
    for (std::int64_t r = 0; r < kQQuadK; ++r) {
      const std::int64_t kk = q * kQQuadK + r;
      if (kk >= k) {
        for (std::int64_t j = 0; j < kQTileJ; ++j) dst[j * kQQuadK + r] = 0;
        continue;
      }
      const std::int8_t* src = b + kk * n + j0;
      for (std::int64_t j = 0; j < jw; ++j) dst[j * kQQuadK + r] = src[j];
      for (std::int64_t j = jw; j < kQTileJ; ++j) dst[j * kQQuadK + r] = 0;
    }
  }
}

/// Vectorized B pack: one SSE 4x16 byte interleave per 64-byte quad-row.
/// The scalar pack was costing more than the GEMM it feeds at small-m
/// shapes (m = 2 stage-1 downsample: the O(k*n) pack vs O(2*n*k) MACs), so
/// it has to run at memory speed.  Bytewise identical to the portable
/// packer; duplicated in simd_avx512.cpp because intrinsics must stay
/// inside the per-ISA TUs (tools/lint/check_headers.py enforces this).
void pack_b_panel(const std::int8_t* b, std::int64_t k, std::int64_t n,
                  std::int8_t* packed) {
  const std::int64_t full_quads = k / kQQuadK;
  const std::int64_t full_tiles = n / kQTileJ;
  const std::int64_t quads = (k + kQQuadK - 1) / kQQuadK;
  const std::int64_t tile_bytes = quads * kQQuadK * kQTileJ;
  for (std::int64_t t = 0; t < full_tiles; ++t) {
    const std::int8_t* src = b + t * kQTileJ;
    std::int8_t* dst = packed + t * tile_bytes;
    for (std::int64_t q = 0; q < full_quads; ++q, src += 4 * n, dst += 64) {
      const __m128i r0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
      const __m128i r1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + n));
      const __m128i r2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 2 * n));
      const __m128i r3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 3 * n));
      // 4x16 interleave: out byte [j*4 + r] = row_r[j].
      const __m128i t0 = _mm_unpacklo_epi8(r0, r1);
      const __m128i t1 = _mm_unpackhi_epi8(r0, r1);
      const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
      const __m128i t3 = _mm_unpackhi_epi8(r2, r3);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                       _mm_unpacklo_epi16(t0, t2));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16),
                       _mm_unpackhi_epi16(t0, t2));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32),
                       _mm_unpacklo_epi16(t1, t3));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48),
                       _mm_unpackhi_epi16(t1, t3));
    }
    if (full_quads < quads) {  // partial trailing k-quad: scalar + zero pad
      for (std::int64_t r = 0; r < kQQuadK; ++r) {
        const std::int64_t kk = full_quads * kQQuadK + r;
        if (kk >= k) {
          for (std::int64_t j = 0; j < kQTileJ; ++j) dst[j * kQQuadK + r] = 0;
          continue;
        }
        const std::int8_t* row = b + kk * n + t * kQTileJ;
        for (std::int64_t j = 0; j < kQTileJ; ++j) dst[j * kQQuadK + r] = row[j];
      }
    }
  }
  if (full_tiles * kQTileJ < n) {  // partial trailing j-tile
    pack_tile_scalar(b, k, n, full_tiles * kQTileJ,
                     packed + full_tiles * tile_bytes);
  }
}

void qgemm_avx2(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int8_t* a, const float* a_scales,
                const std::int8_t* b, float b_scale, float* c,
                std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    fill_k0(m, n, a_scales, b_scale, c, ldc);
    return;
  }
  const std::int64_t quads = (k + kQQuadK - 1) / kQQuadK;
  const std::int64_t kp = quads * kQQuadK;
  const std::int64_t tiles = (n + kQTileJ - 1) / kQTileJ;

  // Packed B panels: built once per call (= once per im2col buffer),
  // amortized over all m weight rows.
  auto& packed = detail::qpack_scratch();
  packed.resize(static_cast<std::size_t>(detail::packed_b_bytes(k, n)));
  pack_b_panel(b, k, n, packed.data());

  // Pad A rows to a whole number of quads so the inner loop can always read
  // aligned 4-byte groups.
  const std::int8_t* a_eff = a;
  std::int64_t lda = k;
  if (kp != k) {
    auto& apad = detail::qpad_a_scratch();
    apad.assign(static_cast<std::size_t>(m * kp), 0);
    for (std::int64_t i = 0; i < m; ++i) {
      std::memcpy(apad.data() + i * kp, a + i * k,
                  static_cast<std::size_t>(k));
    }
    a_eff = apad.data();
    lda = kp;
  }

  const std::int8_t* pk = packed.data();
  const __m256i ones16 = _mm256_set1_epi16(1);
  // Register-block 4 weight rows per pass so each 64-byte packed quad-row is
  // loaded (and |b| computed) once for 4 rows of output instead of once per
  // row.  Each row keeps its own accumulator pair and its own add chain, so
  // the int32 result is identical to the one-row-at-a-time loop.
  constexpr std::int64_t kRowBlk = 4;
  const std::int64_t row_blocks = (m + kRowBlk - 1) / kRowBlk;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) \
    if (row_blocks > 1 && !omp_in_parallel())
#endif
  for (std::int64_t rb = 0; rb < row_blocks; ++rb) {
    const std::int64_t i0 = rb * kRowBlk;
    const std::int64_t rows = std::min<std::int64_t>(kRowBlk, m - i0);
    for (std::int64_t t = 0; t < tiles; ++t) {
      const std::int8_t* blk = pk + t * quads * kQQuadK * kQTileJ;
      __m256i acc0[kRowBlk];  // lanes j0 .. j0+7, one per blocked row
      __m256i acc1[kRowBlk];  // lanes j0+8 .. j0+15
      for (std::int64_t r = 0; r < rows; ++r) {
        acc0[r] = _mm256_setzero_si256();
        acc1[r] = _mm256_setzero_si256();
      }
      for (std::int64_t q = 0; q < quads; ++q) {
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(blk + q * 64));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(blk + q * 64 + 32));
        const __m256i ab0 = _mm256_abs_epi8(b0);
        const __m256i ab1 = _mm256_abs_epi8(b1);
        for (std::int64_t r = 0; r < rows; ++r) {
          std::int32_t aq;
          std::memcpy(&aq, a_eff + (i0 + r) * lda + q * kQQuadK, sizeof(aq));
          if (aq == 0) continue;  // zero weight quad (pruning) contributes 0
          const __m256i av = _mm256_set1_epi32(aq);
          // Sign-transfer: maddubs(|b|, a*sgn(b)) == sum of exact a*b pairs.
          const __m256i p0 =
              _mm256_maddubs_epi16(ab0, _mm256_sign_epi8(av, b0));
          const __m256i p1 =
              _mm256_maddubs_epi16(ab1, _mm256_sign_epi8(av, b1));
          acc0[r] = _mm256_add_epi32(acc0[r], _mm256_madd_epi16(p0, ones16));
          acc1[r] = _mm256_add_epi32(acc1[r], _mm256_madd_epi16(p1, ones16));
        }
      }
      const std::int64_t j0 = t * kQTileJ;
      for (std::int64_t r = 0; r < rows; ++r) {
        const float scale = a_scales[i0 + r] * b_scale;
        float* ci = c + (i0 + r) * ldc;
        const __m256 vscale = _mm256_set1_ps(scale);
        const __m256 f0 = _mm256_mul_ps(_mm256_cvtepi32_ps(acc0[r]), vscale);
        const __m256 f1 = _mm256_mul_ps(_mm256_cvtepi32_ps(acc1[r]), vscale);
        if (j0 + kQTileJ <= n) {
          _mm256_storeu_ps(ci + j0, f0);
          _mm256_storeu_ps(ci + j0 + 8, f1);
        } else {
          alignas(32) float tmp[kQTileJ];
          _mm256_store_ps(tmp, f0);
          _mm256_store_ps(tmp + 8, f1);
          std::memcpy(ci + j0, tmp,
                      static_cast<std::size_t>(n - j0) * sizeof(float));
        }
      }
    }
  }
}

float max_abs_avx2(const float* x, std::int64_t n) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 vmax = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vmax = _mm256_max_ps(vmax, _mm256_and_ps(_mm256_loadu_ps(x + i), abs_mask));
  }
  const __m128 lo = _mm256_castps256_ps128(vmax);
  const __m128 hi = _mm256_extractf128_ps(vmax, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  float max_abs = _mm_cvtss_f32(m);
  for (; i < n; ++i) max_abs = std::max(max_abs, std::abs(x[i]));
  return max_abs;
}

void quantize_scaled_avx2(const float* x, std::int64_t n, float inv_scale,
                          std::int8_t* out) {
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 vlo = _mm256_set1_ps(-127.f);
  const __m256 vhi = _mm256_set1_ps(127.f);
  // Dword permutation fixing the 128-bit-lane interleave of the two packs.
  const __m256i fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i q[4];
    for (int g = 0; g < 4; ++g) {
      __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * g), vinv);
      v = _mm256_min_ps(vhi, _mm256_max_ps(vlo, v));
      // VCVTPS2DQ rounds to nearest-even — the semantics the scalar
      // reference mirrors with std::nearbyintf.
      q[g] = _mm256_cvtps_epi32(v);
    }
    // i32 -> i16 -> i8; values already in [-127, 127] so the saturating
    // packs narrow losslessly.
    const __m256i p16a = _mm256_packs_epi32(q[0], q[1]);
    const __m256i p16b = _mm256_packs_epi32(q[2], q[3]);
    const __m256i p8 = _mm256_packs_epi16(p16a, p16b);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_permutevar8x32_epi32(p8, fix));
  }
  for (; i < n; ++i) {
    const float v = std::clamp(x[i] * inv_scale, -127.f, 127.f);
    out[i] = static_cast<std::int8_t>(
        static_cast<std::int32_t>(std::nearbyintf(v)));
  }
}

void tile_hh_avx2(std::int64_t i0, std::int64_t i1, std::int64_t j0,
                  std::int64_t j1, std::int64_t k, const util::half* a,
                  std::int64_t lda, const util::half* b, std::int64_t ldb,
                  float* c, std::int64_t ldc) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const util::half* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = static_cast<float>(ai[kk]);
      if (av == 0.f) continue;
      const util::half* bk = b + kk * ldb;
      const __m256 av8 = _mm256_set1_ps(av);
      std::int64_t j = j0;
      for (; j + 16 <= j1; j += 16) {
        const __m128i raw0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bk + j));
        const __m128i raw1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bk + j + 8));
        __m256 c0 = _mm256_loadu_ps(ci + j);
        __m256 c1 = _mm256_loadu_ps(ci + j + 8);
        c0 = _mm256_fmadd_ps(av8, _mm256_cvtph_ps(raw0), c0);
        c1 = _mm256_fmadd_ps(av8, _mm256_cvtph_ps(raw1), c1);
        _mm256_storeu_ps(ci + j, c0);
        _mm256_storeu_ps(ci + j + 8, c1);
      }
      for (; j + 8 <= j1; j += 8) {
        const __m128i raw =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bk + j));
        __m256 cc = _mm256_loadu_ps(ci + j);
        cc = _mm256_fmadd_ps(av8, _mm256_cvtph_ps(raw), cc);
        _mm256_storeu_ps(ci + j, cc);
      }
      for (; j < j1; ++j) ci[j] += av * static_cast<float>(bk[j]);
    }
  }
}

}  // namespace

namespace detail {

Kernels avx2_kernels() {
  Kernels t;
  t.qgemm = &qgemm_avx2;
  t.max_abs = &max_abs_avx2;
  t.quantize_scaled = &quantize_scaled_avx2;
  t.tile_hh = &tile_hh_avx2;
  return t;
}

bool avx2_compiled() { return true; }

}  // namespace detail
}  // namespace nc::core::simd

#else  // TU built without AVX2 target support (non-x86 or old compiler)

namespace nc::core::simd::detail {

Kernels avx2_kernels() { return {}; }
bool avx2_compiled() { return false; }

}  // namespace nc::core::simd::detail

#endif
