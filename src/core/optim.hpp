/// \file optim.hpp
/// \brief AdamW optimizer and the paper's step-decay LR schedules (§2.5).
#pragma once

#include <cstdint>
#include <vector>

#include "core/layer.hpp"

namespace nc::core {

struct AdamWConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.01;  ///< decoupled (applied to weights, not grads)
};

/// Decoupled-weight-decay Adam (Loshchilov & Hutter), the optimizer all BCAE
/// variants train with: (β1, β2) = (0.9, 0.999), weight decay 0.01.
class AdamW {
 public:
  AdamW(std::vector<Param*> params, AdamWConfig config = {});

  /// Apply one update from the accumulated gradients, then it is the
  /// caller's job to zero them (`zero_grads`).
  void step();

  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }
  std::int64_t steps_taken() const { return t_; }

 private:
  std::vector<Param*> params_;
  AdamWConfig config_;
  std::vector<Tensor> m_, v_;
  std::int64_t t_ = 0;
};

/// Piecewise LR schedule used for every BCAE training run: constant for the
/// first `flat_epochs`, then multiplied by `factor` every `decay_every`
/// epochs.  BCAE++/HT: flat 100, decay 5% every 20 (of 1000 epochs);
/// BCAE-2D: flat 50, decay 5% every 10 (of 500 epochs).
class StepDecaySchedule {
 public:
  StepDecaySchedule(double initial_lr, std::int64_t flat_epochs,
                    std::int64_t decay_every, double factor = 0.95)
      : initial_lr_(initial_lr),
        flat_epochs_(flat_epochs),
        decay_every_(decay_every),
        factor_(factor) {}

  double lr_for_epoch(std::int64_t epoch) const;

 private:
  double initial_lr_;
  std::int64_t flat_epochs_;
  std::int64_t decay_every_;
  double factor_;
};

}  // namespace nc::core
