/// \file model.hpp
/// \brief The bicephalous autoencoder: one encoder, two decoder heads.
///
/// Head semantics (§2.2):
///  * The segmentation decoder emits raw logits; sigmoid is folded into the
///    focal loss (numerics) and into the masking rule at inference
///    (σ(z) > h  ⇔  z > logit(h)).
///  * The regression decoder ends with the output transform
///    T(x) = 6 + 3 exp(x), pinning predictions above the zero-suppression
///    edge; reconstruction zeros can only come from the mask.
///
/// The reconstruction is ṽ = v̂ · 1[σ(z) > h].
#pragma once

#include <memory>
#include <string>

#include "bcae/config.hpp"
#include "core/block.hpp"
#include "core/tensor.hpp"

namespace nc::bcae {

using core::Mode;
using core::Tensor;

class BcaeModel {
 public:
  struct Heads {
    Tensor seg_logits;  ///< segmentation head output (pre-sigmoid)
    Tensor reg;         ///< regression head output (post-transform, >= 6)
  };

  BcaeModel(std::string name, bool is_3d,
            std::unique_ptr<core::Sequential> encoder,
            std::unique_ptr<core::Sequential> dec_seg,
            std::unique_ptr<core::Sequential> dec_reg);

  /// Compress: input batch -> code.  2-D models take (N, 16, H, W); 3-D
  /// models take (N, 1, 16, H, W).
  Tensor encode(const Tensor& x, Mode mode) { return encoder_->forward(x, mode); }

  /// Decompress: code -> both heads.
  Heads decode(const Tensor& code, Mode mode);

  /// encode + decode.
  Heads forward(const Tensor& x, Mode mode) { return decode(encode(x, mode), mode); }

  /// Reconstruction from heads (mask applied at threshold h).
  static Tensor reconstruct(const Heads& heads, float threshold = kDefaultThreshold);

  /// Backprop the two head gradients through decoders and encoder.
  /// Only valid after a kTrain forward.
  void backward(const Tensor& g_seg, const Tensor& g_reg);

  std::vector<core::Param*> params();
  std::vector<core::Param*> encoder_params();
  std::int64_t encoder_param_count() { return encoder_->param_count(); }
  std::int64_t param_count();

  /// Drop cached fp16 weights after parameter updates.
  void invalidate_half_cache();

  const std::string& name() const { return name_; }
  bool is_3d() const { return is_3d_; }

  core::Sequential& encoder() { return *encoder_; }
  core::Sequential& decoder_seg() { return *dec_seg_; }
  core::Sequential& decoder_reg() { return *dec_reg_; }

 private:
  std::string name_;
  bool is_3d_;
  std::unique_ptr<core::Sequential> encoder_, dec_seg_, dec_reg_;
};

// -- factories ---------------------------------------------------------------

/// Algorithm 1 + 2: BCAE-2D(m, n, d).
BcaeModel make_bcae_2d(const Bcae2dConfig& config, std::uint64_t seed);

/// 3-D variants; `name` should be "BCAE++", "BCAE-HT" or "BCAE".
BcaeModel make_bcae_3d(const Bcae3dConfig& config, std::uint64_t seed,
                       std::string name);

inline BcaeModel make_bcae_pp(std::uint64_t seed) {
  return make_bcae_3d(Bcae3dConfig::bcae_pp(), seed, "BCAE++");
}
inline BcaeModel make_bcae_ht(std::uint64_t seed) {
  return make_bcae_3d(Bcae3dConfig::bcae_ht(), seed, "BCAE-HT");
}
inline BcaeModel make_bcae_original(std::uint64_t seed) {
  return make_bcae_3d(Bcae3dConfig::bcae_original(), seed, "BCAE");
}

/// Code shape produced for a given padded wedge, excluding the batch dim.
/// 2-D: (code_c, azim/2^d, horiz/2^d); 3-D: (code_c, 16, azim/16, horiz/16).
core::Shape code_shape_2d(const Bcae2dConfig& config, std::int64_t azim,
                          std::int64_t padded_horiz);
core::Shape code_shape_3d(const Bcae3dConfig& config, std::int64_t radial,
                          std::int64_t azim, std::int64_t padded_horiz);

}  // namespace nc::bcae
