/// \file config.hpp
/// \brief Hyper-parameter descriptions of the four BCAE variants.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace nc::bcae {

/// BCAE-2D(m, n, d) per Algorithms 1–2: the TPC radial dimension becomes the
/// channel dimension of a 2-D image.
struct Bcae2dConfig {
  std::int64_t m = 4;   ///< encoder blocks (grid-searched 3..7 in Fig. 6E/7)
  std::int64_t n = 8;   ///< decoder blocks (grid-searched 3..11 in Fig. 7)
  std::int64_t d = 3;   ///< down/upsampling layers (fixed at 3 => CR 31.125)
  std::int64_t width = 32;          ///< trunk feature width
  std::int64_t code_channels = 32;  ///< §3.1: code shape (32, H/8, W/8)
  std::int64_t input_channels = 16; ///< radial layers of a wedge

  std::string to_string() const {
    return "BCAE-2D(m=" + std::to_string(m) + ",n=" + std::to_string(n) +
           ",d=" + std::to_string(d) + ")";
  }
};

/// 3-D variants (BCAE++ / BCAE-HT / original BCAE).  Input is the wedge as a
/// single-channel volume (1, 16, azim, horiz); four stages halve the
/// azimuthal and horizontal axes (never the 16-layer radial axis), giving
/// code shape (code_channels, 16, azim/16, horiz/16) — (8, 16, 12, 16) at
/// paper scale (§3.1).
struct Bcae3dConfig {
  /// Output features of the four encoder stages.
  /// BCAE++ / original: (8, 16, 32, 32);  BCAE-HT: (2, 4, 4, 8)  (§2.3).
  std::array<std::int64_t, 4> features{8, 16, 32, 32};
  std::int64_t code_channels = 8;
  /// Decoder stage widths, innermost first (mirrors the encoder by default).
  std::array<std::int64_t, 4> decoder_features{32, 32, 16, 8};
  /// Original BCAE keeps normalization layers (§2.3 removes them in ++/HT).
  bool use_norm = false;

  static Bcae3dConfig bcae_pp() { return Bcae3dConfig{}; }
  static Bcae3dConfig bcae_ht() {
    Bcae3dConfig c;
    c.features = {2, 4, 4, 8};
    c.decoder_features = {8, 4, 4, 2};
    return c;
  }
  static Bcae3dConfig bcae_original() {
    Bcae3dConfig c;
    c.use_norm = true;
    return c;
  }
};

/// Classification threshold h for the segmentation mask (ṽ = v̂·1[p̂ > h]);
/// the paper fixes h = 0.5 for training and testing (§2.5).
inline constexpr float kDefaultThreshold = 0.5f;

/// Focal-loss focusing parameter γ (§2.2).
inline constexpr float kDefaultGamma = 2.0f;

}  // namespace nc::bcae
