#include "bcae/evaluator.hpp"

#include "util/timer.hpp"

namespace nc::bcae {

metrics::ReconstructionMetrics evaluate_model(
    BcaeModel& model, const tpc::WedgeDataset& dataset,
    const std::vector<core::Tensor>& pool, Mode mode, std::int64_t batch_size,
    float threshold) {
  metrics::MetricsAccumulator acc;
  const std::int64_t n = static_cast<std::int64_t>(pool.size());
  const std::int64_t vh = dataset.valid_horiz();
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const std::int64_t end = std::min(n, start + batch_size);
    std::vector<std::int64_t> idx;
    for (std::int64_t i = start; i < end; ++i) idx.push_back(i);
    const Tensor batch = model.is_3d() ? dataset.batch_3d(pool, idx)
                                       : dataset.batch_2d(pool, idx);
    auto heads = model.forward(batch, mode);
    const Tensor recon = BcaeModel::reconstruct(heads, threshold);
    // Clip the horizontal zero padding before scoring (§2.3).
    const Tensor recon_v = tpc::clip_horizontal(recon, vh);
    const Tensor truth_v = tpc::clip_horizontal(batch, vh);
    acc.add(metrics::evaluate_reconstruction(recon_v, truth_v), recon_v.numel());
  }
  return acc.result();
}

double encoder_throughput(BcaeModel& model, const tpc::WedgeDataset& dataset,
                          std::int64_t batch, Mode mode, double min_seconds) {
  const auto& pool = !dataset.test().empty() ? dataset.test() : dataset.train();
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < batch; ++i) {
    idx.push_back(i % static_cast<std::int64_t>(pool.size()));
  }
  const Tensor input =
      model.is_3d() ? dataset.batch_3d(pool, idx) : dataset.batch_2d(pool, idx);

  // Warmup: populates fp16 weight caches and thread-local scratch.
  (void)model.encode(input, mode);

  util::Timer timer;
  std::int64_t wedges = 0;
  do {
    (void)model.encode(input, mode);
    wedges += batch;
  } while (timer.elapsed_s() < min_seconds);
  return static_cast<double>(wedges) / timer.elapsed_s();
}

}  // namespace nc::bcae
