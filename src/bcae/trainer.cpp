#include "bcae/trainer.hpp"

#include <numeric>

#include "core/loss.hpp"
#include "core/ops.hpp"
#include "util/logging.hpp"

namespace nc::bcae {

Tensor occupancy_labels(const Tensor& batch) {
  Tensor labels(batch.shape());
  const float* xp = batch.data();
  float* lp = labels.data();
  for (std::int64_t i = 0; i < batch.numel(); ++i) {
    lp[i] = xp[i] > 0.f ? 1.f : 0.f;
  }
  return labels;
}

Trainer::Trainer(BcaeModel& model, const tpc::WedgeDataset& dataset,
                 TrainerConfig config)
    : model_(model),
      dataset_(dataset),
      config_(config),
      optimizer_(model.params(),
                 core::AdamWConfig{config.lr, 0.9, 0.999, 1e-8, 0.01}),
      shuffle_rng_(config.shuffle_seed) {}

Tensor Trainer::make_batch(const std::vector<std::int64_t>& indices) const {
  return model_.is_3d() ? dataset_.batch_3d(dataset_.train(), indices)
                        : dataset_.batch_2d(dataset_.train(), indices);
}

std::pair<double, double> Trainer::train_step(const Tensor& batch,
                                              double seg_coeff) {
  auto heads = model_.forward(batch, Mode::kTrain);

  const Tensor labels = occupancy_labels(batch);
  auto seg = core::focal_loss_with_logits(heads.seg_logits, labels, config_.gamma);
  auto reg = core::masked_mae_loss(heads.reg, batch, heads.seg_logits,
                                   config_.threshold);

  // Total loss L = c * Lseg + Lreg: scale the segmentation gradient by c.
  core::scale(seg.grad, static_cast<float>(seg_coeff));
  model_.backward(seg.grad, reg.grad);

  optimizer_.step();
  core::zero_grads(model_.params());
  model_.invalidate_half_cache();
  return {seg.value, reg.value};
}

std::vector<EpochStats> Trainer::fit(
    const std::function<void(const EpochStats&)>& on_epoch) {
  const auto& train = dataset_.train();
  if (train.empty()) throw std::invalid_argument("Trainer: empty train split");

  std::vector<std::int64_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  core::StepDecaySchedule schedule(config_.lr, config_.flat_epochs,
                                   config_.decay_every, config_.decay_factor);

  double coeff = config_.c0;
  std::vector<EpochStats> history;
  history.reserve(static_cast<std::size_t>(config_.epochs));

  for (std::int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffle_rng_.shuffle(order.begin(), order.end());
    const double lr = schedule.lr_for_epoch(epoch);
    optimizer_.set_lr(lr);

    std::int64_t limit = static_cast<std::int64_t>(order.size());
    if (config_.max_wedges_per_epoch > 0) {
      limit = std::min(limit, config_.max_wedges_per_epoch);
    }

    double seg_sum = 0.0, reg_sum = 0.0;
    std::int64_t batches = 0;
    for (std::int64_t start = 0; start + config_.batch_size <= limit;
         start += config_.batch_size) {
      std::vector<std::int64_t> idx(order.begin() + start,
                                    order.begin() + start + config_.batch_size);
      const Tensor batch = make_batch(idx);
      auto [seg_loss, reg_loss] = train_step(batch, coeff);
      seg_sum += seg_loss;
      reg_sum += reg_loss;
      ++batches;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.seg_loss = batches ? seg_sum / static_cast<double>(batches) : 0.0;
    stats.reg_loss = batches ? reg_sum / static_cast<double>(batches) : 0.0;
    stats.coefficient = coeff;
    stats.lr = lr;
    history.push_back(stats);
    if (on_epoch) on_epoch(stats);

    coeff = core::next_seg_coefficient(coeff, stats.seg_loss, stats.reg_loss);
  }
  return history;
}

}  // namespace nc::bcae
