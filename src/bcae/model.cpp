#include "bcae/model.hpp"

#include "core/loss.hpp"
#include "core/ops.hpp"

namespace nc::bcae {

BcaeModel::BcaeModel(std::string name, bool is_3d,
                     std::unique_ptr<core::Sequential> encoder,
                     std::unique_ptr<core::Sequential> dec_seg,
                     std::unique_ptr<core::Sequential> dec_reg)
    : name_(std::move(name)),
      is_3d_(is_3d),
      encoder_(std::move(encoder)),
      dec_seg_(std::move(dec_seg)),
      dec_reg_(std::move(dec_reg)) {}

BcaeModel::Heads BcaeModel::decode(const Tensor& code, Mode mode) {
  Heads h;
  h.seg_logits = dec_seg_->forward(code, mode);
  h.reg = dec_reg_->forward(code, mode);
  return h;
}

Tensor BcaeModel::reconstruct(const Heads& heads, float threshold) {
  return core::apply_segmentation_mask(heads.reg, heads.seg_logits, threshold);
}

void BcaeModel::backward(const Tensor& g_seg, const Tensor& g_reg) {
  Tensor g_code = dec_seg_->backward(g_seg);
  Tensor g_code_reg = dec_reg_->backward(g_reg);
  core::add_inplace(g_code, g_code_reg);
  encoder_->backward(g_code);
}

std::vector<core::Param*> BcaeModel::params() {
  std::vector<core::Param*> out;
  encoder_->collect_params(out);
  dec_seg_->collect_params(out);
  dec_reg_->collect_params(out);
  return out;
}

std::vector<core::Param*> BcaeModel::encoder_params() {
  std::vector<core::Param*> out;
  encoder_->collect_params(out);
  return out;
}

std::int64_t BcaeModel::param_count() {
  std::int64_t n = 0;
  for (const auto* p : params()) n += p->numel();
  return n;
}

void BcaeModel::invalidate_half_cache() {
  encoder_->invalidate_half_cache();
  dec_seg_->invalidate_half_cache();
  dec_reg_->invalidate_half_cache();
}

core::Shape code_shape_2d(const Bcae2dConfig& config, std::int64_t azim,
                          std::int64_t padded_horiz) {
  const std::int64_t f = std::int64_t{1} << config.d;
  return {config.code_channels, azim / f, padded_horiz / f};
}

core::Shape code_shape_3d(const Bcae3dConfig& config, std::int64_t radial,
                          std::int64_t azim, std::int64_t padded_horiz) {
  return {config.code_channels, radial, azim / 16, padded_horiz / 16};
}

}  // namespace nc::bcae
