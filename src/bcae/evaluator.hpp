/// \file evaluator.hpp
/// \brief Test-set evaluation and encoder-throughput measurement.
#pragma once

#include "bcae/model.hpp"
#include "metrics/metrics.hpp"
#include "tpc/dataset.hpp"

namespace nc::bcae {

/// Evaluate reconstruction metrics over a wedge pool (§3.3).  Horizontal
/// zero-padding is clipped before computing metrics, "so reconstruction
/// accuracy metrics are not inflated" (§2.3).
metrics::ReconstructionMetrics evaluate_model(
    BcaeModel& model, const tpc::WedgeDataset& dataset,
    const std::vector<core::Tensor>& pool, Mode mode,
    std::int64_t batch_size = 8, float threshold = kDefaultThreshold);

/// Encoder-only compression throughput in wedges/second (§3.2): runs
/// `batch`-sized encode calls for at least `min_seconds` after a warmup and
/// divides wedges processed by wall time.  Matches the paper's protocol of
/// excluding file IO and host-device transfer: the input batch is prepared
/// once, outside the timed region.
double encoder_throughput(BcaeModel& model, const tpc::WedgeDataset& dataset,
                          std::int64_t batch, Mode mode,
                          double min_seconds = 0.5);

}  // namespace nc::bcae
