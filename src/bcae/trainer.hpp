/// \file trainer.hpp
/// \brief BCAE training procedure (§2.5).
///
/// Reproduces the paper's recipe: AdamW (β = (0.9, 0.999), weight decay
/// 0.01), batch size 4, step-decay LR schedule (constant warm period, then
/// ×0.95 every `decay_every` epochs), classification threshold h = 0.5, and
/// the dynamic balancing of the segmentation coefficient
///   c_{t+1} = 0.5 c_t + (ρ_reg / ρ_seg)·1.5,  c_0 = 2000.
///
/// Epoch counts are configurable; the paper trains 1000 epochs (3-D) / 500
/// epochs (2-D) on 25 152 wedges — the bench harness uses proportionally
/// shorter runs on the scaled geometry (see DESIGN.md).
#pragma once

#include <functional>
#include <vector>

#include "bcae/model.hpp"
#include "core/optim.hpp"
#include "tpc/dataset.hpp"

namespace nc::bcae {

struct TrainerConfig {
  std::int64_t epochs = 8;
  std::int64_t batch_size = 4;           ///< paper: 4
  double lr = 1e-3;                      ///< paper: 1e-3
  std::int64_t flat_epochs = 2;          ///< paper: 100 (3-D) / 50 (2-D)
  std::int64_t decay_every = 1;          ///< paper: 20 (3-D) / 10 (2-D)
  double decay_factor = 0.95;            ///< paper: 5% decay
  float gamma = kDefaultGamma;           ///< focal focusing parameter
  float threshold = kDefaultThreshold;   ///< mask threshold h
  double c0 = 2000.0;                    ///< initial segmentation coefficient
  std::uint64_t shuffle_seed = 7;
  /// Optional cap on train wedges per epoch (0 = all); lets large datasets
  /// drive short calibration runs.
  std::int64_t max_wedges_per_epoch = 0;
};

struct EpochStats {
  std::int64_t epoch = 0;
  double seg_loss = 0.0;   ///< mean focal loss over the epoch
  double reg_loss = 0.0;   ///< mean masked-MAE over the epoch
  double coefficient = 0.0;  ///< c_t used this epoch
  double lr = 0.0;
};

class Trainer {
 public:
  Trainer(BcaeModel& model, const tpc::WedgeDataset& dataset,
          TrainerConfig config);

  /// Run the configured number of epochs; returns per-epoch statistics.
  /// `on_epoch` (optional) is invoked after each epoch (progress logging).
  std::vector<EpochStats> fit(
      const std::function<void(const EpochStats&)>& on_epoch = {});

  /// One gradient step on a prepared batch; returns (seg_loss, reg_loss).
  /// Exposed for tests that need to assert loss decrease step-by-step.
  std::pair<double, double> train_step(const Tensor& batch, double seg_coeff);

  const TrainerConfig& config() const { return config_; }

 private:
  Tensor make_batch(const std::vector<std::int64_t>& indices) const;

  BcaeModel& model_;
  const tpc::WedgeDataset& dataset_;
  TrainerConfig config_;
  core::AdamW optimizer_;
  util::Rng shuffle_rng_;
};

/// Voxel occupancy labels for a batch: 1 where the log-ADC value is nonzero.
Tensor occupancy_labels(const Tensor& batch);

}  // namespace nc::bcae
