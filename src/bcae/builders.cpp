/// \file builders.cpp
/// \brief Network construction for all BCAE variants.
///
/// 2-D builders follow Algorithm 1 (encoder) and Algorithm 2 (decoders)
/// verbatim, except that the encoder's output convolution emits
/// `code_channels` = 32 features: Algorithm 1 prints o=16, but §3.1's code
/// shape (32, 24, 32) and the 31.125 compression ratio require 32 (see
/// DESIGN.md "Paper inconsistencies").
///
/// 3-D builders implement the §2.3 description: four stages, each a strided
/// downsampling convolution (kernel 4, stride 2, pad 1 on the azimuthal and
/// horizontal axes; the 16-layer radial axis is never downsampled) followed
/// by a residual block, with stage features (8, 16, 32, 32) for BCAE++ /
/// original BCAE and (2, 4, 4, 8) for BCAE-HT.  This reproduces the paper's
/// code shape (8, 16, 12, 16) and encoder sizes (our counts: ~215k for
/// BCAE++ vs paper 226.2k; 9 974 for BCAE-HT vs paper 9.8k).
#include <memory>

#include "bcae/model.hpp"
#include "core/act.hpp"
#include "core/conv.hpp"
#include "core/norm.hpp"
#include "core/pool.hpp"
#include "util/rng.hpp"

namespace nc::bcae {

namespace {

using core::Conv2d;
using core::Conv3d;
using core::ConvTranspose3d;
using core::InstanceNorm;
using core::LayerPtr;
using core::LeakyReLU;
using core::ResBlock;
using core::Sequential;

using A2 = std::array<std::int64_t, 2>;
using A3 = std::array<std::int64_t, 3>;

/// Algorithm 1: BCAE_encoder_2D(m, d).
std::unique_ptr<Sequential> build_encoder_2d(const Bcae2dConfig& cfg,
                                             util::Rng& rng) {
  auto net = std::make_unique<Sequential>("encoder2d");
  // L_in = Conv2D(i=16, o=32, k=7, p=3)
  net->add(std::make_unique<Conv2d>(cfg.input_channels, cfg.width, A2{7, 7},
                                    A2{1, 1}, A2{3, 3}, true, rng, "enc.in"));
  net->add(std::make_unique<LeakyReLU>(0.01f, "enc.in.act"));
  for (std::int64_t i = 1; i <= cfg.m; ++i) {
    const std::string tag = "enc.b" + std::to_string(i);
    if (i <= cfg.d) net->add(std::make_unique<core::AvgPool2d>(2, tag + ".pool"));
    // two residual blocks Res(i=32, o=32, k=3, p=1)
    net->add(ResBlock::make_2d(cfg.width, cfg.width, 3, 1, false, rng, tag + ".res1"));
    net->add(ResBlock::make_2d(cfg.width, cfg.width, 3, 1, false, rng, tag + ".res2"));
  }
  // L_out: 1x1 conv to the code channels (see file comment re o=16 vs 32).
  net->add(std::make_unique<Conv2d>(cfg.width, cfg.code_channels, A2{1, 1},
                                    A2{1, 1}, A2{0, 0}, true, rng, "enc.out"));
  return net;
}

/// Algorithm 2: BCAE_decoder_2D(n, d, A).  `transform_output` appends the
/// regression transform T; the segmentation head leaves raw logits (sigmoid
/// is folded into loss/mask).
std::unique_ptr<Sequential> build_decoder_2d(const Bcae2dConfig& cfg,
                                             util::Rng& rng, bool transform_output,
                                             const std::string& label) {
  auto net = std::make_unique<Sequential>(label);
  // The code has code_channels features; bring them to the trunk width.
  net->add(std::make_unique<Conv2d>(cfg.code_channels, cfg.width, A2{1, 1},
                                    A2{1, 1}, A2{0, 0}, true, rng, label + ".in"));
  net->add(std::make_unique<LeakyReLU>(0.01f, label + ".in.act"));
  for (std::int64_t i = 1; i <= cfg.n; ++i) {
    const std::string tag = label + ".b" + std::to_string(i);
    if (i <= cfg.d) net->add(std::make_unique<core::Upsample2d>(2, tag + ".up"));
    net->add(ResBlock::make_2d(cfg.width, cfg.width, 3, 1, false, rng, tag + ".res1"));
    net->add(ResBlock::make_2d(cfg.width, cfg.width, 3, 1, false, rng, tag + ".res2"));
  }
  // L_out = Conv2D(i=32, o=16, k=1), then the output activation A.
  net->add(std::make_unique<Conv2d>(cfg.width, cfg.input_channels, A2{1, 1},
                                    A2{1, 1}, A2{0, 0}, true, rng, label + ".out"));
  if (transform_output) {
    net->add(std::make_unique<core::OutputTransform>(6.f, 3.f, 4.f, label + ".T"));
  }
  return net;
}

/// 3-D encoder: 4 stages of [down-conv + act (+norm) + resblock], then the
/// code convolution.
std::unique_ptr<Sequential> build_encoder_3d(const Bcae3dConfig& cfg,
                                             util::Rng& rng) {
  auto net = std::make_unique<Sequential>("encoder3d");
  std::int64_t in_c = 1;
  for (int i = 0; i < 4; ++i) {
    const std::int64_t out_c = cfg.features[static_cast<std::size_t>(i)];
    const std::string tag = "enc.s" + std::to_string(i);
    // kernel (3,4,4), stride (1,2,2), pad (1,1,1): halves azim/horiz only.
    net->add(std::make_unique<Conv3d>(in_c, out_c, A3{3, 4, 4}, A3{1, 2, 2},
                                      A3{1, 1, 1}, true, rng, tag + ".down"));
    net->add(std::make_unique<LeakyReLU>(0.01f, tag + ".act"));
    if (cfg.use_norm) {
      net->add(std::make_unique<InstanceNorm>(out_c, 1e-5f, tag + ".norm"));
    }
    net->add(ResBlock::make_3d(out_c, out_c, A3{3, 3, 3}, A3{1, 1, 1},
                               cfg.use_norm, rng, tag + ".res"));
    in_c = out_c;
  }
  net->add(std::make_unique<Conv3d>(in_c, cfg.code_channels, A3{3, 3, 3},
                                    A3{1, 1, 1}, A3{1, 1, 1}, true, rng,
                                    "enc.out"));
  return net;
}

/// 3-D decoder: code conv up to the widest feature, 4 stages of
/// [resblock + transposed conv + act (+norm)], final 1-channel conv.
std::unique_ptr<Sequential> build_decoder_3d(const Bcae3dConfig& cfg,
                                             util::Rng& rng, bool transform_output,
                                             const std::string& label) {
  auto net = std::make_unique<Sequential>(label);
  std::int64_t in_c = cfg.code_channels;
  for (int i = 0; i < 4; ++i) {
    const std::int64_t out_c = cfg.decoder_features[static_cast<std::size_t>(i)];
    const std::string tag = label + ".s" + std::to_string(i);
    net->add(ResBlock::make_3d(in_c, in_c, A3{3, 3, 3}, A3{1, 1, 1},
                               cfg.use_norm, rng, tag + ".res"));
    net->add(std::make_unique<ConvTranspose3d>(in_c, out_c, A3{3, 4, 4},
                                               A3{1, 2, 2}, A3{1, 1, 1}, true,
                                               rng, tag + ".up"));
    net->add(std::make_unique<LeakyReLU>(0.01f, tag + ".act"));
    if (cfg.use_norm) {
      net->add(std::make_unique<InstanceNorm>(out_c, 1e-5f, tag + ".norm"));
    }
    in_c = out_c;
  }
  net->add(std::make_unique<Conv3d>(in_c, 1, A3{3, 3, 3}, A3{1, 1, 1},
                                    A3{1, 1, 1}, true, rng, label + ".out"));
  if (transform_output) {
    net->add(std::make_unique<core::OutputTransform>(6.f, 3.f, 4.f, label + ".T"));
  }
  return net;
}

}  // namespace

BcaeModel make_bcae_2d(const Bcae2dConfig& config, std::uint64_t seed) {
  util::Rng rng(seed);
  auto encoder = build_encoder_2d(config, rng);
  auto dec_seg = build_decoder_2d(config, rng, /*transform_output=*/false, "dseg");
  auto dec_reg = build_decoder_2d(config, rng, /*transform_output=*/true, "dreg");
  return BcaeModel(config.to_string(), /*is_3d=*/false, std::move(encoder),
                   std::move(dec_seg), std::move(dec_reg));
}

BcaeModel make_bcae_3d(const Bcae3dConfig& config, std::uint64_t seed,
                       std::string name) {
  util::Rng rng(seed);
  auto encoder = build_encoder_3d(config, rng);
  auto dec_seg = build_decoder_3d(config, rng, /*transform_output=*/false, "dseg");
  auto dec_reg = build_decoder_3d(config, rng, /*transform_output=*/true, "dreg");
  return BcaeModel(std::move(name), /*is_3d=*/true, std::move(encoder),
                   std::move(dec_seg), std::move(dec_reg));
}

}  // namespace nc::bcae
