/// \file event_gen.hpp
/// \brief Monte-Carlo event generator — the HIJING + Geant4 substitute.
///
/// Simulates what the paper's dataset pipeline produces: central Au+Au
/// collisions with pile-up, tracked through the TPC outer layer group and
/// digitized to zero-suppressed 10-bit ADC grids.
///
/// Physics model (deliberately simple but shape-faithful):
///  * Primary vertex z ~ N(0, vertex_z_sigma); multiplicity ~ Poisson.
///  * Track kinematics: pT from a power law on [pt_min, pt_max], eta
///    uniform in ±eta_max, phi uniform, charge ±1.
///  * Helix propagation to each layer radius (see track.hpp).
///  * Ionization: per-crossing charge Q = q_min + Exp(q_mean), inflated by
///    the path-length factor cosh(eta) for inclined tracks.
///  * Drift diffusion: gaussian spread in azimuth and z with
///    sigma = sigma0 + D * sqrt(drift distance), drift measured from the
///    crossing to the endcap readout.
///  * Pile-up (§2.1 uses 170 kHz): Poisson number of min-bias events with
///    smaller multiplicity and vertices smeared across the drift window.
///
/// This produces sparse, track-correlated wedges whose occupancy (~10%) and
/// log-ADC distribution (zero spike + sharp edge at 6 + decaying tail)
/// match Fig. 3 — the properties BCAE's two heads are designed for.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"
#include "tpc/digitizer.hpp"
#include "tpc/geometry.hpp"
#include "tpc/track.hpp"
#include "util/rng.hpp"

namespace nc::tpc {

struct EventGenConfig {
  // multiplicities
  double mean_primary_tracks = 1400.0;  ///< central Au+Au in TPC acceptance
  double mean_pileup_events = 10.0;     ///< in-drift-window pile-up collisions
  double pileup_tracks_min = 40.0;     ///< min-bias multiplicity range
  double pileup_tracks_max = 700.0;

  // kinematics
  double pt_min = 0.15;   ///< GeV/c (lower: curls up before the outer group)
  double pt_max = 8.0;
  double pt_alpha = 2.7;  ///< power-law exponent of the pT spectrum
  double eta_max = 1.1;   ///< TPC acceptance
  double vertex_z_sigma = 5.0;  ///< cm

  // ionization + drift
  double charge_min = 90.0;       ///< Landau-ish floor (arb. units)
  double charge_mean = 260.0;     ///< exponential tail mean
  double sigma0_azim = 0.35;      ///< cm, intrinsic transverse spread
  double sigma0_z = 0.80;         ///< cm, intrinsic longitudinal spread
  double diffusion = 0.012;       ///< cm per sqrt(cm) of drift

  DigitizerConfig digitizer;
};

/// One simulated event: the outer-layer-group ADC grid, laid out
/// (radial, azim, z) with z spanning both halves [-z_half, +z_half).
struct EventAdc {
  std::int64_t radial = 0, azim = 0, z = 0;
  std::vector<std::uint16_t> adc;  ///< zero-suppressed 10-bit values

  std::uint16_t at(std::int64_t r, std::int64_t a, std::int64_t zz) const {
    return adc[static_cast<std::size_t>((r * azim + a) * z + zz)];
  }
};

class EventGenerator {
 public:
  EventGenerator(TpcGeometry geom, EventGenConfig config, std::uint64_t seed);

  /// Simulate one full event (primaries + pile-up) and digitize.
  EventAdc generate_event();

  /// Slice an event grid into its 24 wedges (12 sectors x 2 sides) of
  /// log-ADC tensors with shape (radial, azim/sectors, z/2), unpadded.
  std::vector<core::Tensor> slice_wedges(const EventAdc& event) const;

  /// Convenience: generate and slice in one call.
  std::vector<core::Tensor> generate_wedges() { return slice_wedges(generate_event()); }

  const TpcGeometry& geometry() const { return geom_; }
  const EventGenConfig& config() const { return config_; }

 private:
  void deposit_track(const TrackParams& track, std::vector<float>& charge);
  void deposit_crossing(int layer, const LayerCrossing& crossing, double charge_total,
                        std::vector<float>& charge);

  TpcGeometry geom_;
  EventGenConfig config_;
  Digitizer digitizer_;
  util::Rng rng_;
};

}  // namespace nc::tpc
