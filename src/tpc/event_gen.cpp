#include "tpc/event_gen.hpp"

#include <cmath>
#include <numbers>

namespace nc::tpc {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

EventGenerator::EventGenerator(TpcGeometry geom, EventGenConfig config,
                               std::uint64_t seed)
    : geom_(geom), config_(config), digitizer_(config.digitizer), rng_(seed) {}

EventAdc EventGenerator::generate_event() {
  const std::int64_t radial = geom_.layers_per_group;
  const std::int64_t azim = geom_.azim_bins();
  const std::int64_t zbins = geom_.z_bins();
  std::vector<float> charge(static_cast<std::size_t>(radial * azim * zbins), 0.f);

  // --- primary (triggered, central) collision ------------------------------
  const double vertex_z = rng_.normal(0.0, config_.vertex_z_sigma);
  const int n_primary = rng_.poisson(config_.mean_primary_tracks);
  for (int t = 0; t < n_primary; ++t) {
    TrackParams track;
    track.pt = rng_.power_law(config_.pt_alpha, config_.pt_min, config_.pt_max);
    track.eta = rng_.uniform(-config_.eta_max, config_.eta_max);
    track.phi0 = rng_.uniform(0.0, kTwoPi);
    track.charge = rng_.uniform() < 0.5 ? 1 : -1;
    track.z0 = vertex_z;
    deposit_track(track, charge);
  }

  // --- pile-up: min-bias collisions elsewhere in the drift window ----------
  const int n_pileup = rng_.poisson(config_.mean_pileup_events);
  for (int e = 0; e < n_pileup; ++e) {
    // Out-of-time pile-up appears shifted along the drift (z/time) axis, so
    // an effective vertex anywhere in the drift volume is the right model.
    const double pileup_z =
        rng_.uniform(-0.9 * geom_.z_half_length, 0.9 * geom_.z_half_length);
    const int n_tracks = static_cast<int>(
        rng_.uniform(config_.pileup_tracks_min, config_.pileup_tracks_max));
    for (int t = 0; t < n_tracks; ++t) {
      TrackParams track;
      track.pt = rng_.power_law(config_.pt_alpha, config_.pt_min, config_.pt_max);
      track.eta = rng_.uniform(-config_.eta_max, config_.eta_max);
      track.phi0 = rng_.uniform(0.0, kTwoPi);
      track.charge = rng_.uniform() < 0.5 ? 1 : -1;
      track.z0 = pileup_z;
      deposit_track(track, charge);
    }
  }

  EventAdc event;
  event.radial = radial;
  event.azim = azim;
  event.z = zbins;
  digitizer_.digitize(charge, event.adc, rng_);
  return event;
}

void EventGenerator::deposit_track(const TrackParams& track,
                                   std::vector<float>& charge) {
  const Helix helix(track, geom_.b_field);
  // Path-length inflation for inclined tracks: dE ∝ ds = dr * cosh(eta).
  const double incline = std::cosh(track.eta);
  for (int l = 0; l < geom_.layers_per_group; ++l) {
    const double r = geom_.layer_radius(LayerGroup::kOuter, l);
    const auto crossing = helix.cross_layer(r, geom_.z_half_length);
    if (!crossing) break;  // curled up or left the volume; no further layers
    const double q =
        (config_.charge_min + rng_.exponential(config_.charge_mean)) * incline;
    deposit_crossing(l, *crossing, q, charge);
  }
}

void EventGenerator::deposit_crossing(int layer, const LayerCrossing& crossing,
                                      double charge_total,
                                      std::vector<float>& charge) {
  const std::int64_t azim = geom_.azim_bins();
  const std::int64_t zbins = geom_.z_bins();
  const double r = geom_.layer_radius(LayerGroup::kOuter, layer);

  // Bin pitches in cm.
  const double azim_pitch = kTwoPi * r / static_cast<double>(azim);
  const double z_pitch = 2.0 * geom_.z_half_length / static_cast<double>(zbins);

  // Drift distance: electrons drift from the crossing to the nearer endcap.
  const double drift = geom_.z_half_length - std::abs(crossing.z);
  const double sqrt_drift = std::sqrt(std::max(drift, 0.0));
  const double sigma_a = config_.sigma0_azim + config_.diffusion * sqrt_drift;
  const double sigma_z = config_.sigma0_z + config_.diffusion * sqrt_drift;

  // Fractional bin coordinates of the deposit center.
  const double a_center = crossing.phi / kTwoPi * static_cast<double>(azim);
  const double z_center =
      (crossing.z + geom_.z_half_length) / (2.0 * geom_.z_half_length) *
      static_cast<double>(zbins);

  const double sigma_a_bins = std::max(sigma_a / azim_pitch, 1e-3);
  const double sigma_z_bins = std::max(sigma_z / z_pitch, 1e-3);
  const std::int64_t half_a =
      std::min<std::int64_t>(3, static_cast<std::int64_t>(3.0 * sigma_a_bins) + 1);
  const std::int64_t half_z =
      std::min<std::int64_t>(3, static_cast<std::int64_t>(3.0 * sigma_z_bins) + 1);

  const std::int64_t a0 = static_cast<std::int64_t>(std::floor(a_center));
  const std::int64_t z0 = static_cast<std::int64_t>(std::floor(z_center));

  // Separable gaussian weights, normalized over the stamp so the total
  // deposited charge is exactly charge_total regardless of stamp clipping.
  double wa[7], wz[7];
  double wa_sum = 0.0, wz_sum = 0.0;
  for (std::int64_t i = -half_a; i <= half_a; ++i) {
    const double d = (static_cast<double>(a0 + i) + 0.5 - a_center) / sigma_a_bins;
    wa[i + half_a] = std::exp(-0.5 * d * d);
    wa_sum += wa[i + half_a];
  }
  for (std::int64_t j = -half_z; j <= half_z; ++j) {
    const double d = (static_cast<double>(z0 + j) + 0.5 - z_center) / sigma_z_bins;
    wz[j + half_z] = std::exp(-0.5 * d * d);
    wz_sum += wz[j + half_z];
  }
  const double norm = charge_total / (wa_sum * wz_sum);

  float* plane = charge.data() + static_cast<std::size_t>(layer) * azim * zbins;
  for (std::int64_t i = -half_a; i <= half_a; ++i) {
    // Azimuth wraps around the cylinder.
    std::int64_t a = (a0 + i) % azim;
    if (a < 0) a += azim;
    const double wrow = norm * wa[i + half_a];
    for (std::int64_t j = -half_z; j <= half_z; ++j) {
      const std::int64_t zz = z0 + j;
      if (zz < 0 || zz >= zbins) continue;  // charge lost past the endcap
      plane[a * zbins + zz] += static_cast<float>(wrow * wz[j + half_z]);
    }
  }
}

std::vector<core::Tensor> EventGenerator::slice_wedges(const EventAdc& event) const {
  const WedgeShape shape = geom_.wedge_shape();
  const std::int64_t radial = shape.radial;
  const std::int64_t wa = shape.azim;
  const std::int64_t wh = shape.horiz;
  const std::int64_t half = event.z / 2;

  std::vector<core::Tensor> wedges;
  wedges.reserve(static_cast<std::size_t>(geom_.sectors) * 2);
  for (int sector = 0; sector < geom_.sectors; ++sector) {
    for (int side = 0; side < 2; ++side) {
      core::Tensor w({radial, wa, wh});
      float* wp = w.data();
      for (std::int64_t r = 0; r < radial; ++r) {
        for (std::int64_t a = 0; a < wa; ++a) {
          const std::int64_t ga = sector * wa + a;
          for (std::int64_t h = 0; h < wh; ++h) {
            // Horizontal index 0 sits at the central membrane on both sides,
            // growing toward the endcap.
            const std::int64_t gz = side == 0 ? (half - 1 - h) : (half + h);
            wp[(r * wa + a) * wh + h] = log_adc(event.at(r, ga, gz));
          }
        }
      }
      wedges.push_back(std::move(w));
    }
  }
  return wedges;
}

}  // namespace nc::tpc
