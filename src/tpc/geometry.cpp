#include "tpc/geometry.hpp"

#include <sstream>

namespace nc::tpc {

std::string WedgeShape::to_string() const {
  std::ostringstream os;
  os << '(' << radial << ", " << azim << ", " << horiz << ')';
  return os.str();
}

double compression_ratio(const WedgeShape& wedge, std::int64_t code_numel) {
  // Input and code are both treated as 16-bit floats (§3.1), so the ratio is
  // a pure element-count ratio over the *unpadded* wedge.
  return static_cast<double>(wedge.voxels()) / static_cast<double>(code_numel);
}

}  // namespace nc::tpc
