#include "tpc/digitizer.hpp"

namespace nc::tpc {

void Digitizer::digitize(const std::vector<float>& charge,
                         std::vector<std::uint16_t>& adc,
                         util::Rng& rng) const {
  adc.resize(charge.size());
  for (std::size_t i = 0; i < charge.size(); ++i) {
    adc[i] = digitize_voxel(charge[i], rng);
  }
}

}  // namespace nc::tpc
