/// \file track.hpp
/// \brief Charged-particle helix model in the TPC solenoid field.
///
/// A charged track from the collision vertex follows a helix: a circle in
/// the transverse (x, y) plane of radius R = pT / (0.003 |q| B) (pT in
/// GeV/c, B in Tesla, R in cm) and uniform motion along z with slope
/// dz/ds_T = sinh(eta).  For a circle through the origin, the crossing of a
/// detector cylinder of radius r (< 2R) is analytic — no stepping needed:
///   phi(r) = phi0 + q * asin(r / 2R),   arc s_T(r) = 2R asin(r / 2R),
///   z(r)   = z0 + s_T(r) * sinh(eta).
#pragma once

#include <cmath>
#include <optional>

namespace nc::tpc {

/// Kinematic track parameters at the vertex.
struct TrackParams {
  double pt = 1.0;      ///< transverse momentum [GeV/c]
  double eta = 0.0;     ///< pseudo-rapidity
  double phi0 = 0.0;    ///< initial azimuth [rad]
  int charge = 1;       ///< +-1
  double z0 = 0.0;      ///< vertex z [cm]
};

/// Point where a helix crosses a cylinder of radius r.
struct LayerCrossing {
  double phi = 0.0;     ///< azimuth of the crossing [rad], wrapped to [0, 2pi)
  double z = 0.0;       ///< z of the crossing [cm]
  double path = 0.0;    ///< transverse arc length from the vertex [cm]
};

class Helix {
 public:
  Helix(const TrackParams& params, double b_field);

  /// Crossing with the cylinder of radius `r`, or nullopt when the track
  /// curls up before reaching it (r >= 2R) or exits the drift volume
  /// (|z| > z_half).
  std::optional<LayerCrossing> cross_layer(double r, double z_half) const;

  double curvature_radius() const { return radius_; }
  const TrackParams& params() const { return params_; }

 private:
  TrackParams params_;
  double radius_;       ///< transverse curvature radius [cm]
  double sinh_eta_;
};

}  // namespace nc::tpc
